# Empty compiler generated dependencies file for repair_cli.
# This may be replaced when dependencies are built.
