file(REMOVE_RECURSE
  "CMakeFiles/token_ring.dir/token_ring.cpp.o"
  "CMakeFiles/token_ring.dir/token_ring.cpp.o.d"
  "token_ring"
  "token_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
