# Empty dependencies file for stabilizing_chain.
# This may be replaced when dependencies are built.
