file(REMOVE_RECURSE
  "CMakeFiles/stabilizing_chain.dir/stabilizing_chain.cpp.o"
  "CMakeFiles/stabilizing_chain.dir/stabilizing_chain.cpp.o.d"
  "stabilizing_chain"
  "stabilizing_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stabilizing_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
