file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_expandgroup.dir/bench_ablation_expandgroup.cpp.o"
  "CMakeFiles/bench_ablation_expandgroup.dir/bench_ablation_expandgroup.cpp.o.d"
  "bench_ablation_expandgroup"
  "bench_ablation_expandgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_expandgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
