# Empty compiler generated dependencies file for bench_ablation_expandgroup.
# This may be replaced when dependencies are built.
