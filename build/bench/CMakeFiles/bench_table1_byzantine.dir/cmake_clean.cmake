file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_byzantine.dir/bench_table1_byzantine.cpp.o"
  "CMakeFiles/bench_table1_byzantine.dir/bench_table1_byzantine.cpp.o.d"
  "bench_table1_byzantine"
  "bench_table1_byzantine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_byzantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
