# Empty dependencies file for bench_table3_chain.
# This may be replaced when dependencies are built.
