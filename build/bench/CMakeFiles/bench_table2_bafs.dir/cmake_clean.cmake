file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_bafs.dir/bench_table2_bafs.cpp.o"
  "CMakeFiles/bench_table2_bafs.dir/bench_table2_bafs.cpp.o.d"
  "bench_table2_bafs"
  "bench_table2_bafs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_bafs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
