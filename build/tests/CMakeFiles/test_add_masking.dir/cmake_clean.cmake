file(REMOVE_RECURSE
  "CMakeFiles/test_add_masking.dir/repair/test_add_masking.cpp.o"
  "CMakeFiles/test_add_masking.dir/repair/test_add_masking.cpp.o.d"
  "test_add_masking"
  "test_add_masking.pdb"
  "test_add_masking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_add_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
