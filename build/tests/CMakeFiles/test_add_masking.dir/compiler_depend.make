# Empty compiler generated dependencies file for test_add_masking.
# This may be replaced when dependencies are built.
