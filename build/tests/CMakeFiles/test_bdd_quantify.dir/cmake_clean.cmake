file(REMOVE_RECURSE
  "CMakeFiles/test_bdd_quantify.dir/bdd/test_bdd_quantify.cpp.o"
  "CMakeFiles/test_bdd_quantify.dir/bdd/test_bdd_quantify.cpp.o.d"
  "test_bdd_quantify"
  "test_bdd_quantify.pdb"
  "test_bdd_quantify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd_quantify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
