# Empty compiler generated dependencies file for test_bdd_quantify.
# This may be replaced when dependencies are built.
