file(REMOVE_RECURSE
  "CMakeFiles/test_groups_property.dir/program/test_groups_property.cpp.o"
  "CMakeFiles/test_groups_property.dir/program/test_groups_property.cpp.o.d"
  "test_groups_property"
  "test_groups_property.pdb"
  "test_groups_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_groups_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
