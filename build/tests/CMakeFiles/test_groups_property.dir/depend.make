# Empty dependencies file for test_groups_property.
# This may be replaced when dependencies are built.
