# Empty dependencies file for test_bdd_reorder.
# This may be replaced when dependencies are built.
