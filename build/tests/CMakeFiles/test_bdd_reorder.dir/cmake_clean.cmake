file(REMOVE_RECURSE
  "CMakeFiles/test_bdd_reorder.dir/bdd/test_bdd_reorder.cpp.o"
  "CMakeFiles/test_bdd_reorder.dir/bdd/test_bdd_reorder.cpp.o.d"
  "test_bdd_reorder"
  "test_bdd_reorder.pdb"
  "test_bdd_reorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
