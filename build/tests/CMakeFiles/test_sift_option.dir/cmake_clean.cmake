file(REMOVE_RECURSE
  "CMakeFiles/test_sift_option.dir/repair/test_sift_option.cpp.o"
  "CMakeFiles/test_sift_option.dir/repair/test_sift_option.cpp.o.d"
  "test_sift_option"
  "test_sift_option.pdb"
  "test_sift_option[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sift_option.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
