# Empty compiler generated dependencies file for test_sift_option.
# This may be replaced when dependencies are built.
