file(REMOVE_RECURSE
  "CMakeFiles/test_describe.dir/repair/test_describe.cpp.o"
  "CMakeFiles/test_describe.dir/repair/test_describe.cpp.o.d"
  "test_describe"
  "test_describe.pdb"
  "test_describe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_describe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
