# Empty dependencies file for test_lazy_repair.
# This may be replaced when dependencies are built.
