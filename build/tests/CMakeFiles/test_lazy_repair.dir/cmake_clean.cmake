file(REMOVE_RECURSE
  "CMakeFiles/test_lazy_repair.dir/repair/test_lazy_repair.cpp.o"
  "CMakeFiles/test_lazy_repair.dir/repair/test_lazy_repair.cpp.o.d"
  "test_lazy_repair"
  "test_lazy_repair.pdb"
  "test_lazy_repair[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lazy_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
