file(REMOVE_RECURSE
  "CMakeFiles/test_bdd_basic.dir/bdd/test_bdd_basic.cpp.o"
  "CMakeFiles/test_bdd_basic.dir/bdd/test_bdd_basic.cpp.o.d"
  "test_bdd_basic"
  "test_bdd_basic.pdb"
  "test_bdd_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
