file(REMOVE_RECURSE
  "CMakeFiles/test_bdd_gc.dir/bdd/test_bdd_gc.cpp.o"
  "CMakeFiles/test_bdd_gc.dir/bdd/test_bdd_gc.cpp.o.d"
  "test_bdd_gc"
  "test_bdd_gc.pdb"
  "test_bdd_gc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
