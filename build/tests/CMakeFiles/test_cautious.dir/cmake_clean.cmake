file(REMOVE_RECURSE
  "CMakeFiles/test_cautious.dir/repair/test_cautious.cpp.o"
  "CMakeFiles/test_cautious.dir/repair/test_cautious.cpp.o.d"
  "test_cautious"
  "test_cautious.pdb"
  "test_cautious[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cautious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
