# Empty dependencies file for test_cautious.
# This may be replaced when dependencies are built.
