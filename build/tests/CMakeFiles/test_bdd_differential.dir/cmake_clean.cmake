file(REMOVE_RECURSE
  "CMakeFiles/test_bdd_differential.dir/bdd/test_bdd_differential.cpp.o"
  "CMakeFiles/test_bdd_differential.dir/bdd/test_bdd_differential.cpp.o.d"
  "test_bdd_differential"
  "test_bdd_differential.pdb"
  "test_bdd_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
