# Empty dependencies file for test_bdd_differential.
# This may be replaced when dependencies are built.
