# Empty compiler generated dependencies file for test_tolerance_levels.
# This may be replaced when dependencies are built.
