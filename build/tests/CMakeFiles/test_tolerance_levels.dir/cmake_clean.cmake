file(REMOVE_RECURSE
  "CMakeFiles/test_tolerance_levels.dir/repair/test_tolerance_levels.cpp.o"
  "CMakeFiles/test_tolerance_levels.dir/repair/test_tolerance_levels.cpp.o.d"
  "test_tolerance_levels"
  "test_tolerance_levels.pdb"
  "test_tolerance_levels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tolerance_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
