# Empty dependencies file for test_partitioned_reach.
# This may be replaced when dependencies are built.
