file(REMOVE_RECURSE
  "CMakeFiles/test_partitioned_reach.dir/symbolic/test_partitioned_reach.cpp.o"
  "CMakeFiles/test_partitioned_reach.dir/symbolic/test_partitioned_reach.cpp.o.d"
  "test_partitioned_reach"
  "test_partitioned_reach.pdb"
  "test_partitioned_reach[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partitioned_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
