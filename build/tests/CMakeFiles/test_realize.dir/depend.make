# Empty dependencies file for test_realize.
# This may be replaced when dependencies are built.
