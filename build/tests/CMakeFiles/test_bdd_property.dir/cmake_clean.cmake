file(REMOVE_RECURSE
  "CMakeFiles/test_bdd_property.dir/bdd/test_bdd_property.cpp.o"
  "CMakeFiles/test_bdd_property.dir/bdd/test_bdd_property.cpp.o.d"
  "test_bdd_property"
  "test_bdd_property.pdb"
  "test_bdd_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdd_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
