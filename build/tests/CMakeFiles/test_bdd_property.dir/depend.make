# Empty dependencies file for test_bdd_property.
# This may be replaced when dependencies are built.
