# Empty dependencies file for test_explicit_cross.
# This may be replaced when dependencies are built.
