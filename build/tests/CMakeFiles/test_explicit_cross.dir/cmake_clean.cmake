file(REMOVE_RECURSE
  "CMakeFiles/test_explicit_cross.dir/explicit_model/test_explicit_cross.cpp.o"
  "CMakeFiles/test_explicit_cross.dir/explicit_model/test_explicit_cross.cpp.o.d"
  "test_explicit_cross"
  "test_explicit_cross.pdb"
  "test_explicit_cross[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_explicit_cross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
