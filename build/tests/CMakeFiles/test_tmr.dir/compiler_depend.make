# Empty compiler generated dependencies file for test_tmr.
# This may be replaced when dependencies are built.
