file(REMOVE_RECURSE
  "CMakeFiles/test_tmr.dir/casestudies/test_tmr.cpp.o"
  "CMakeFiles/test_tmr.dir/casestudies/test_tmr.cpp.o.d"
  "test_tmr"
  "test_tmr.pdb"
  "test_tmr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
