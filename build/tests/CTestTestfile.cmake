# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bdd_basic[1]_include.cmake")
include("/root/repo/build/tests/test_bdd_quantify[1]_include.cmake")
include("/root/repo/build/tests/test_bdd_property[1]_include.cmake")
include("/root/repo/build/tests/test_bdd_gc[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_space[1]_include.cmake")
include("/root/repo/build/tests/test_expr[1]_include.cmake")
include("/root/repo/build/tests/test_program[1]_include.cmake")
include("/root/repo/build/tests/test_lazy_repair[1]_include.cmake")
include("/root/repo/build/tests/test_explicit_cross[1]_include.cmake")
include("/root/repo/build/tests/test_casestudies[1]_include.cmake")
include("/root/repo/build/tests/test_add_masking[1]_include.cmake")
include("/root/repo/build/tests/test_realize[1]_include.cmake")
include("/root/repo/build/tests/test_cautious[1]_include.cmake")
include("/root/repo/build/tests/test_theorems[1]_include.cmake")
include("/root/repo/build/tests/test_groups_property[1]_include.cmake")
include("/root/repo/build/tests/test_describe[1]_include.cmake")
include("/root/repo/build/tests/test_tolerance_levels[1]_include.cmake")
include("/root/repo/build/tests/test_tmr[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_bdd_differential[1]_include.cmake")
include("/root/repo/build/tests/test_partitioned_reach[1]_include.cmake")
include("/root/repo/build/tests/test_random_models[1]_include.cmake")
include("/root/repo/build/tests/test_export[1]_include.cmake")
include("/root/repo/build/tests/test_bdd_reorder[1]_include.cmake")
include("/root/repo/build/tests/test_sift_option[1]_include.cmake")
