# Empty dependencies file for lazyrepair.
# This may be replaced when dependencies are built.
