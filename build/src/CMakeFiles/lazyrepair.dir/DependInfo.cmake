
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/manager.cpp" "src/CMakeFiles/lazyrepair.dir/bdd/manager.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/bdd/manager.cpp.o.d"
  "/root/repo/src/bdd/ops.cpp" "src/CMakeFiles/lazyrepair.dir/bdd/ops.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/bdd/ops.cpp.o.d"
  "/root/repo/src/bdd/reorder.cpp" "src/CMakeFiles/lazyrepair.dir/bdd/reorder.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/bdd/reorder.cpp.o.d"
  "/root/repo/src/casestudies/byzantine.cpp" "src/CMakeFiles/lazyrepair.dir/casestudies/byzantine.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/casestudies/byzantine.cpp.o.d"
  "/root/repo/src/casestudies/chain.cpp" "src/CMakeFiles/lazyrepair.dir/casestudies/chain.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/casestudies/chain.cpp.o.d"
  "/root/repo/src/casestudies/tmr.cpp" "src/CMakeFiles/lazyrepair.dir/casestudies/tmr.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/casestudies/tmr.cpp.o.d"
  "/root/repo/src/casestudies/token_ring.cpp" "src/CMakeFiles/lazyrepair.dir/casestudies/token_ring.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/casestudies/token_ring.cpp.o.d"
  "/root/repo/src/explicit_model/explicit_model.cpp" "src/CMakeFiles/lazyrepair.dir/explicit_model/explicit_model.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/explicit_model/explicit_model.cpp.o.d"
  "/root/repo/src/lang/action.cpp" "src/CMakeFiles/lazyrepair.dir/lang/action.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/lang/action.cpp.o.d"
  "/root/repo/src/lang/expr.cpp" "src/CMakeFiles/lazyrepair.dir/lang/expr.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/lang/expr.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/lazyrepair.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/lang/parser.cpp.o.d"
  "/root/repo/src/program/distributed_program.cpp" "src/CMakeFiles/lazyrepair.dir/program/distributed_program.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/program/distributed_program.cpp.o.d"
  "/root/repo/src/repair/add_masking.cpp" "src/CMakeFiles/lazyrepair.dir/repair/add_masking.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/repair/add_masking.cpp.o.d"
  "/root/repo/src/repair/cautious.cpp" "src/CMakeFiles/lazyrepair.dir/repair/cautious.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/repair/cautious.cpp.o.d"
  "/root/repo/src/repair/describe.cpp" "src/CMakeFiles/lazyrepair.dir/repair/describe.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/repair/describe.cpp.o.d"
  "/root/repo/src/repair/export.cpp" "src/CMakeFiles/lazyrepair.dir/repair/export.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/repair/export.cpp.o.d"
  "/root/repo/src/repair/lazy.cpp" "src/CMakeFiles/lazyrepair.dir/repair/lazy.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/repair/lazy.cpp.o.d"
  "/root/repo/src/repair/realize.cpp" "src/CMakeFiles/lazyrepair.dir/repair/realize.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/repair/realize.cpp.o.d"
  "/root/repo/src/repair/verify.cpp" "src/CMakeFiles/lazyrepair.dir/repair/verify.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/repair/verify.cpp.o.d"
  "/root/repo/src/support/cli.cpp" "src/CMakeFiles/lazyrepair.dir/support/cli.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/support/cli.cpp.o.d"
  "/root/repo/src/support/stopwatch.cpp" "src/CMakeFiles/lazyrepair.dir/support/stopwatch.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/support/stopwatch.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/lazyrepair.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/support/table.cpp.o.d"
  "/root/repo/src/symbolic/space.cpp" "src/CMakeFiles/lazyrepair.dir/symbolic/space.cpp.o" "gcc" "src/CMakeFiles/lazyrepair.dir/symbolic/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
