file(REMOVE_RECURSE
  "liblazyrepair.a"
)
