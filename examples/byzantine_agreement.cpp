// Byzantine agreement (Section VI of the paper): builds BA^n, repairs it
// with lazy repair (default) or the cautious baseline, prints the repaired
// actions of one non-general, and cross-verifies the result.
//
// Usage:
//   byzantine_agreement [--n=3] [--failstop] [--cautious] [--oneshot]
//                       [--no-verify]

#include <cstdio>
#include <iostream>

#include "casestudies/byzantine.hpp"
#include "repair/cautious.hpp"
#include "repair/describe.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const lr::support::CommandLine cli(argc, argv);
  lr::cs::ByzantineOptions model;
  model.non_generals = static_cast<std::size_t>(cli.get_int("n", 3));
  model.fail_stop = cli.has("failstop");

  auto program = lr::cs::make_byzantine(model);
  std::printf("model: %s, state space %.3g states\n",
              program->name().c_str(), program->space().state_space_size());

  lr::repair::Options options;
  if (cli.has("oneshot")) {
    options.group_method = lr::repair::GroupMethod::kOneShot;
  }

  lr::support::Stopwatch watch;
  const lr::repair::RepairResult result =
      cli.has("cautious") ? lr::repair::cautious_repair(*program, options)
                          : lr::repair::lazy_repair(*program, options);
  const double elapsed = watch.seconds();
  if (!result.success) {
    std::printf("repair failed: %s\n", result.failure_reason.c_str());
    return 1;
  }

  lr::support::Table table({"metric", "value"});
  table.add_row({"algorithm", cli.has("cautious") ? "cautious" : "lazy"});
  table.add_row({"total time", lr::support::format_duration(elapsed)});
  table.add_row({"step 1 (Add-Masking)",
                 lr::support::format_duration(result.stats.step1_seconds)});
  table.add_row({"step 2 (Algorithm 2)",
                 lr::support::format_duration(result.stats.step2_seconds)});
  table.add_row({"reachable states",
                 lr::support::format_state_count(result.stats.reachable_states)});
  table.add_row({"invariant S' states",
                 lr::support::format_state_count(result.stats.invariant_states)});
  table.add_row({"fault-span states",
                 lr::support::format_state_count(result.stats.span_states)});
  table.add_row({"outer iterations",
                 std::to_string(result.stats.outer_iterations)});
  table.add_row({"group-loop iterations",
                 std::to_string(result.stats.group_iterations)});
  table.print(std::cout);

  std::printf("\nrepaired actions of process p0 (within the fault span):\n");
  for (const std::string& line : lr::repair::describe_process_program(
           *program, 0, result.process_deltas[0], result.fault_span, 24)) {
    std::printf("  %s\n", line.c_str());
  }

  if (!cli.has("no-verify")) {
    const lr::repair::VerifyReport report =
        lr::repair::verify_masking(*program, result);
    std::printf("\nverification: %s\n", report.ok ? "OK" : "FAILED");
    for (const std::string& failure : report.failures) {
      std::printf("  %s\n", failure.c_str());
    }
    return report.ok ? 0 : 1;
  }
  return 0;
}
