// Quickstart: the complete lazy-repair workflow on a three-line program.
//
// We model a tiny system with one process and one counter x ∈ {0, 1, 2}:
//   * legitimate behavior: x stays 0;
//   * a transient fault bumps x from 0 to 1;
//   * x = 2 is catastrophic (a bad state).
// The fault-intolerant program has a reset action, but nothing guarantees
// recovery. lazy_repair() adds masking fault-tolerance: the result is a set
// of per-process transition predicates that (a) tolerate the fault and
// (b) respect the read/write restrictions, verified independently.

#include <cstdio>

#include "lang/action.hpp"
#include "program/distributed_program.hpp"
#include "repair/describe.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"
#include "support/stopwatch.hpp"

int main() {
  using lr::lang::Expr;
  using lr::lang::action;

  // 1. Declare the program: variables, processes (with read/write sets),
  //    faults, invariant, and safety specification.
  lr::prog::DistributedProgram program("quickstart");
  const lr::sym::VarId x = program.add_variable("x", 3);

  lr::prog::Process worker;
  worker.name = "worker";
  worker.reads = {x};
  worker.writes = {x};
  worker.actions.push_back(
      action("reset", Expr::var(x) == 1u).assign(x, Expr::constant(0)));
  program.add_process(std::move(worker));

  program.add_fault(
      action("glitch", Expr::var(x) == 0u).assign(x, Expr::constant(1)));
  program.set_invariant(Expr::var(x) == 0u);
  program.add_bad_states(Expr::var(x) == 2u);

  // 2. Repair.
  lr::support::Stopwatch watch;
  const lr::repair::RepairResult result = lr::repair::lazy_repair(program);
  if (!result.success) {
    std::printf("repair failed: %s\n", result.failure_reason.c_str());
    return 1;
  }
  std::printf("repair succeeded in %.3fs (step 1: %.3fs, step 2: %.3fs)\n",
              watch.seconds(), result.stats.step1_seconds,
              result.stats.step2_seconds);
  std::printf("invariant states: %.0f, fault-span states: %.0f\n",
              result.stats.invariant_states, result.stats.span_states);

  // 3. Inspect the synthesized program.
  std::printf("\nrepaired program for process 'worker':\n");
  for (const std::string& line : lr::repair::describe_process_program(
           program, 0, result.process_deltas[0], result.fault_span)) {
    std::printf("  %s\n", line.c_str());
  }

  // 4. Verify the result independently (Theorems 1 and 2).
  const lr::repair::VerifyReport report =
      lr::repair::verify_masking(program, result);
  std::printf("\nindependent verification: %s\n",
              report.ok ? "masking fault-tolerant and realizable"
                        : "FAILED");
  for (const std::string& failure : report.failures) {
    std::printf("  failure: %s\n", failure.c_str());
  }
  return report.ok ? 0 : 1;
}
