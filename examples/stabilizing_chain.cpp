// Stabilizing chain (the paper's Sc^n rows): repairs a chain of processes
// that copy their left neighbor, under transient corruption of any
// variable, and reports how the synthesis time scales.
//
// Usage:
//   stabilizing_chain [--length=6] [--domain=4] [--sweep] [--no-verify]
//
// With --sweep, lengths 4..length are repaired and printed as one table
// (verification is skipped for the larger instances automatically: the
// explicit spans grow beyond what the checker should chew on).

#include <cstdio>
#include <iostream>

#include "casestudies/chain.hpp"
#include "repair/describe.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

struct RunResult {
  bool ok = false;
  double seconds = 0;
  lr::repair::Stats stats;
};

RunResult run_one(std::size_t length, std::uint32_t domain, bool verify) {
  auto program = lr::cs::make_chain({.length = length, .domain = domain});
  lr::support::Stopwatch watch;
  const lr::repair::RepairResult result = lr::repair::lazy_repair(*program);
  RunResult out;
  out.seconds = watch.seconds();
  out.stats = result.stats;
  out.ok = result.success;
  if (result.success && verify) {
    out.ok = lr::repair::verify_masking(*program, result).ok;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const lr::support::CommandLine cli(argc, argv);
  const auto length = static_cast<std::size_t>(cli.get_int("length", 6));
  const auto domain = static_cast<std::uint32_t>(cli.get_int("domain", 4));
  const bool verify = !cli.has("no-verify");

  if (cli.has("sweep")) {
    lr::support::Table table({"instance", "states", "step 1", "step 2",
                              "total", "verified"});
    for (std::size_t n = 4; n <= length; n += 2) {
      const bool verify_this = verify && n <= 6 && domain <= 4;
      const RunResult r = run_one(n, domain, verify_this);
      table.add_row(
          {"Sc^" + std::to_string(n),
           lr::support::format_state_count(r.stats.reachable_states),
           lr::support::format_duration(r.stats.step1_seconds),
           lr::support::format_duration(r.stats.step2_seconds),
           lr::support::format_duration(r.seconds),
           r.ok ? (verify_this ? "yes" : "n/a") : "FAILED"});
    }
    table.print(std::cout);
    return 0;
  }

  auto program = lr::cs::make_chain({.length = length, .domain = domain});
  std::printf("model: %s, state space %.3g states\n",
              program->name().c_str(), program->space().state_space_size());
  lr::support::Stopwatch watch;
  const lr::repair::RepairResult result = lr::repair::lazy_repair(*program);
  if (!result.success) {
    std::printf("repair failed: %s\n", result.failure_reason.c_str());
    return 1;
  }
  std::printf("repaired in %s (step 1 %s, step 2 %s)\n",
              lr::support::format_duration(watch.seconds()).c_str(),
              lr::support::format_duration(result.stats.step1_seconds).c_str(),
              lr::support::format_duration(result.stats.step2_seconds).c_str());

  std::printf("\nrepaired actions of process p1 (within the fault span):\n");
  for (const std::string& line : lr::repair::describe_process_program(
           *program, 0, result.process_deltas[0], result.fault_span, 16)) {
    std::printf("  %s\n", line.c_str());
  }

  if (verify && program->space().state_space_size() <= 1 << 20) {
    const lr::repair::VerifyReport report =
        lr::repair::verify_masking(*program, result);
    std::printf("\nverification: %s\n", report.ok ? "OK" : "FAILED");
    return report.ok ? 0 : 1;
  }
  return 0;
}
