// Command-line front end: repair a model written in the textual format
// (see models/*.lr) without writing any C++.
//
// Usage:
//   repair_cli MODEL.lr [--cautious] [--oneshot] [--no-heuristic]
//              [--level=masking|failsafe|nonmasking]
//              [--print-program] [--no-verify] [--stats]
//              [--journal=FILE] [--explain]
//              [--trace-out=FILE] [--metrics-json=FILE] [--log-level=LEVEL]
//   repair_cli --batch DIR [--jobs=N] [--resume] [--manifest=FILE]
//              [--task-timeout=SECS] [--retries=N] [shared options]
//
// The flag table lives in src/repair/cli_spec.cpp (single source of truth
// for --help, unknown-flag rejection and the README table; sync is
// regression-tested).
//
// Batch mode repairs every DIR/*.lr concurrently on a fixed-size thread
// pool (one BDD manager per task) and prints one deterministic per-model
// report: the stdout of `--jobs 8` is byte-identical to `--jobs 1`, and the
// stdout of a killed-and-resumed sweep is byte-identical to an
// uninterrupted one (timing goes to stderr and the metrics report only).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "bdd/meminfo.hpp"
#include "bdd/order.hpp"
#include "bdd/profile.hpp"
#include "casestudies/chain.hpp"
#include "lang/parser.hpp"
#include "repair/batch.hpp"
#include "repair/cautious.hpp"
#include "repair/cli_spec.hpp"
#include "repair/describe.hpp"
#include "repair/export.hpp"
#include "repair/journal.hpp"
#include "repair/lazy.hpp"
#include "repair/order_setup.hpp"
#include "repair/relation_setup.hpp"
#include "repair/report.hpp"
#include "repair/verify.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/progress.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace {

/// Batch mode: repair every *.lr under `dir` across the thread pool and
/// print a deterministic per-model report (sorted by file name, no timing
/// on stdout).
int run_batch_mode(const lr::support::CommandLine& cli,
                   const lr::repair::Options& options,
                   const std::string& trace_path,
                   const std::string& metrics_path) {
  namespace fs = std::filesystem;
  const std::string dir = cli.get("batch", "");
  std::vector<fs::path> models;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".lr") models.push_back(entry.path());
  }
  if (ec) {
    std::fprintf(stderr, "cannot read directory %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  if (models.empty()) {
    std::fprintf(stderr, "no *.lr models under %s\n", dir.c_str());
    return 2;
  }
  std::sort(models.begin(), models.end());

  lr::repair::BatchOptions batch_options;
  batch_options.jobs = static_cast<std::size_t>(std::max<std::int64_t>(
      1, cli.get_int("jobs",
                     static_cast<std::int64_t>(
                         lr::support::ThreadPool::hardware_threads()))));
  batch_options.intra_jobs = static_cast<std::size_t>(
      std::max<std::int64_t>(0, cli.get_int("par-intra", 0)));
  batch_options.task_timeout_seconds =
      std::atof(cli.get("task-timeout", "0").c_str());
  batch_options.task_retries = static_cast<std::size_t>(
      std::max<std::int64_t>(0, cli.get_int("retries", 0)));
  batch_options.resume = cli.has("resume");
  // Checkpointing is opt-in (--resume or --manifest): a plain batch run
  // writes nothing next to the models.
  if (batch_options.resume || cli.has("manifest")) {
    batch_options.manifest_path = cli.get(
        "manifest", (fs::path(dir) / "batch.manifest.json").string());
  }

  // Repaired-model exports back resume validation; they live in a
  // subdirectory, which the (non-recursive) model enumeration above never
  // picks up.
  std::string export_dir;
  if (!batch_options.manifest_path.empty()) {
    export_dir = cli.get("export-dir", (fs::path(dir) / "repaired").string());
    std::error_code mk_ec;
    fs::create_directories(export_dir, mk_ec);
    if (mk_ec) {
      std::fprintf(stderr, "cannot create export dir %s: %s\n",
                   export_dir.c_str(), mk_ec.message().c_str());
      return 2;
    }
  }

  // Per-task journal files: the journal contents depend only on the task,
  // so a DIR/<name>.journal.jsonl layout is deterministic across --jobs.
  std::string journal_dir = cli.get("journal", "");
  if (!journal_dir.empty()) {
    std::error_code mk_ec;
    fs::create_directories(journal_dir, mk_ec);
    if (mk_ec) {
      std::fprintf(stderr, "cannot create journal dir %s: %s\n",
                   journal_dir.c_str(), mk_ec.message().c_str());
      return 2;
    }
  }

  // --order=file:DIR points at a directory of per-model profiles in batch
  // mode; --order-out=DIR writes one NAME.order.json per model (before the
  // export restores the creation order).
  const std::string order_out_dir = cli.get("order-out", "");
  if (!order_out_dir.empty()) {
    std::error_code mk_ec;
    fs::create_directories(order_out_dir, mk_ec);
    if (mk_ec) {
      std::fprintf(stderr, "cannot create order profile dir %s: %s\n",
                   order_out_dir.c_str(), mk_ec.message().c_str());
      return 2;
    }
  }

  const bool cautious = cli.has("cautious");
  const bool verify = !cli.has("no-verify");
  std::vector<lr::repair::BatchTask> tasks;
  tasks.reserve(models.size());
  for (const fs::path& path : models) {
    lr::repair::BatchTask task;
    task.name = path.stem().string();
    task.options = options;
    task.algorithm = cautious ? lr::repair::BatchTask::Algorithm::kCautious
                              : lr::repair::BatchTask::Algorithm::kLazy;
    task.verify = verify;
    task.make_program = [file = path.string()] {
      return lr::lang::parse_program_file(file);
    };
    // Predicted cost drives longest-first dispatch; the report stays in
    // file-name order regardless.
    task.predicted_cost = lr::lang::estimate_state_space_file(path.string());
    task.input_path = path.string();
    if (!export_dir.empty()) {
      task.export_path =
          (fs::path(export_dir) / (task.name + ".lr")).string();
    }
    if (!journal_dir.empty()) {
      task.journal_path =
          (fs::path(journal_dir) / (task.name + ".journal.jsonl")).string();
    }
    if (task.options.order_mode == lr::sym::order::Mode::kFile) {
      const fs::path profile =
          fs::path(options.order_file) / (task.name + ".order.json");
      std::error_code exists_ec;
      if (fs::exists(profile, exists_ec)) {
        task.options.order_file = profile.string();
      } else {
        // Warm-start profiles are an optimization, not an input: a model
        // without one (new file, renamed model) runs in declaration order.
        std::fprintf(stderr,
                     "batch: no order profile %s for %s, "
                     "falling back to declaration order\n",
                     profile.string().c_str(), task.name.c_str());
        task.options.order_mode = lr::sym::order::Mode::kDecl;
        task.options.order_file.clear();
      }
    }
    if (!order_out_dir.empty()) {
      task.order_out_path =
          (fs::path(order_out_dir) / (task.name + ".order.json")).string();
    }
    tasks.push_back(std::move(task));
  }

  const lr::repair::BatchReport report =
      lr::repair::run_batch(tasks, batch_options);

  std::printf("batch: %zu models from %s, algorithm %s\n",
              models.size(), dir.c_str(), cautious ? "cautious" : "lazy");
  for (const lr::repair::BatchItemResult& item : report.items) {
    std::printf("\nmodel: %s", item.name.c_str());
    if (item.build_ok) {
      std::printf(" (%s states)\n",
                  lr::support::format_state_count(item.model_states).c_str());
    } else {
      std::printf("\n  error: %s\n", item.failure_reason.c_str());
      continue;
    }
    if (!item.success) {
      std::printf("  result: repair failed: %s\n",
                  item.failure_reason.c_str());
      continue;
    }
    std::printf("  result: ok\n");
    std::printf("  invariant S' states: %s\n",
                lr::support::format_state_count(item.stats.invariant_states)
                    .c_str());
    std::printf("  fault-span states: %s\n",
                lr::support::format_state_count(item.stats.span_states)
                    .c_str());
    if (item.verified) {
      std::printf("  verification: %s\n", item.verify_ok ? "OK" : "FAILED");
      for (const std::string& failure : item.verify_failures) {
        std::printf("    %s\n", failure.c_str());
      }
    }
  }
  std::printf("\nbatch summary: %zu/%zu ok\n", report.ok_count(),
              report.items.size());
  if (report.failed_count() > 0) {
    // One line, task order, deterministic: scripts can grep it and a
    // resumed sweep prints the same line as an uninterrupted one.
    std::string failures;
    for (const lr::repair::BatchItemResult& item : report.items) {
      if (item.ok()) continue;
      if (!failures.empty()) failures += "; ";
      failures += item.name + " (" + item.status() + ")";
    }
    std::printf("batch failures: %s\n", failures.c_str());
  }
  // Timing is real but nondeterministic; stderr keeps stdout byte-stable
  // across --jobs values and across resume.
  std::fprintf(stderr, "batch wall time: %.3fs (jobs=%zu)\n",
               report.wall_seconds, report.jobs);
  if (batch_options.resume) {
    std::fprintf(stderr, "batch resume: %zu/%zu tasks skipped (manifest %s)\n",
                 report.skipped_count(), report.items.size(),
                 batch_options.manifest_path.c_str());
  }

  bool reports_ok = true;
  if (!trace_path.empty()) {
    lr::support::trace::stop();
    if (!lr::support::trace::write_chrome_json_file(trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      reports_ok = false;
    }
  }
  if (!metrics_path.empty() &&
      !lr::repair::write_metrics_report(metrics_path)) {
    std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
    reports_ok = false;
  }
  if (!reports_ok) return 1;
  return report.failed_count() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const lr::support::CommandLine cli(argc, argv);
  if (cli.has("help")) {
    std::fputs(lr::repair::repair_cli_usage(cli.program()).c_str(), stdout);
    return 0;
  }
  if (cli.has("help-markdown")) {
    std::fputs(lr::repair::repair_cli_flags_markdown().c_str(), stdout);
    return 0;
  }
  // Reject typos instead of silently ignoring them: every accepted flag is
  // declared in repair_cli_flag_specs().
  for (const std::string& name : cli.option_names()) {
    const auto& specs = lr::repair::repair_cli_flag_specs();
    const bool known =
        std::any_of(specs.begin(), specs.end(),
                    [&name](const lr::support::FlagSpec& spec) {
                      return spec.name == name;
                    });
    if (!known) {
      std::fprintf(stderr, "unknown option --%s (see --help)\n", name.c_str());
      return 2;
    }
  }
  if (cli.positional().empty() && !cli.has("batch") && !cli.has("chain")) {
    std::fputs(lr::repair::repair_cli_usage(cli.program()).c_str(), stdout);
    return 2;
  }

  const std::string log_level = cli.get("log-level", "");
  if (!log_level.empty()) {
    const auto parsed = lr::support::parse_log_level(log_level);
    if (!parsed) {
      std::fprintf(stderr, "unknown log level '%s'\n", log_level.c_str());
      return 2;
    }
    lr::support::set_log_level(*parsed);
  }
  const std::string trace_path = cli.get("trace-out", "");
  if (!trace_path.empty()) lr::support::trace::start();

  if (cli.has("progress")) {
    const std::string secs = cli.get("progress", "");
    lr::support::progress::configure(
        secs.empty() ? lr::support::progress::kDefaultIntervalSeconds
                     : std::atof(secs.c_str()));
  } else {
    lr::support::progress::init_from_env();
  }
  // --stats and --flamegraph grow the call-path BDD profile; collection
  // must be on before any BDD work happens.
  const std::string flame_path = cli.get("flamegraph", "");
  lr::bdd::profile::FlameWeight flame_weight =
      lr::bdd::profile::FlameWeight::kSteps;
  if (cli.has("flamegraph-weight")) {
    const std::string weight_name = cli.get("flamegraph-weight", "steps");
    const auto parsed = lr::bdd::profile::parse_flame_weight(weight_name);
    if (!parsed) {
      std::fprintf(stderr,
                   "unknown flamegraph weight '%s' (steps|seconds|nodes)\n",
                   weight_name.c_str());
      return 2;
    }
    flame_weight = *parsed;
  }
  if (cli.has("stats") || !flame_path.empty()) {
    lr::bdd::profile::set_enabled(true);
  }

  lr::repair::Options options;
  if (cli.has("oneshot")) {
    options.group_method = lr::repair::GroupMethod::kOneShot;
  }
  if (cli.has("no-heuristic")) options.restrict_to_reachable = false;
  if (cli.has("sift")) options.sift_before_repair = true;
  if (cli.has("order")) {
    const std::string order_arg = cli.get("order", "");
    if (order_arg.rfind("file:", 0) == 0) {
      options.order_mode = lr::sym::order::Mode::kFile;
      options.order_file = order_arg.substr(5);
      if (options.order_file.empty()) {
        std::fprintf(stderr, "--order=file: needs a path (see --help)\n");
        return 2;
      }
    } else {
      const auto parsed = lr::sym::order::parse_mode(order_arg);
      if (!parsed) {
        std::fprintf(stderr,
                     "unknown order mode '%s' "
                     "(decl|auto|interleave|adjacency|file:PATH)\n",
                     order_arg.c_str());
        return 2;
      }
      options.order_mode = *parsed;
    }
  }
  if (cli.has("rel")) {
    const std::string rel_arg = cli.get("rel", "");
    const auto parsed = lr::sym::parse_relation_mode(rel_arg);
    if (!parsed) {
      std::fprintf(stderr, "unknown relation mode '%s' (auto|mono|partition)\n",
                   rel_arg.c_str());
      return 2;
    }
    options.relation_mode = *parsed;
  }
  options.intra_jobs = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("par-intra", 1)));
  const std::string level = cli.get("level", "masking");
  if (level == "failsafe") {
    options.level = lr::repair::ToleranceLevel::kFailsafe;
  } else if (level == "nonmasking") {
    options.level = lr::repair::ToleranceLevel::kNonmasking;
  } else if (level != "masking") {
    std::fprintf(stderr, "unknown tolerance level '%s'\n", level.c_str());
    return 2;
  }

  const std::string metrics_path_early = cli.get("metrics-json", "");
  if (cli.has("batch")) {
    if (cli.has("explain")) {
      std::fprintf(stderr,
                   "--explain needs a single model (use --journal=DIR with "
                   "--batch and inspect the per-model journals)\n");
      return 2;
    }
    if (!flame_path.empty()) {
      std::fprintf(stderr,
                   "--flamegraph needs a single model (batch tasks each have "
                   "their own profiler)\n");
      return 2;
    }
    return run_batch_mode(cli, options, trace_path, metrics_path_early);
  }

  std::unique_ptr<lr::prog::DistributedProgram> program;
  try {
    if (cli.has("chain")) {
      lr::cs::ChainOptions chain;
      chain.length = static_cast<std::size_t>(
          std::max<std::int64_t>(1, cli.get_int("chain", 5)));
      chain.domain = static_cast<std::uint32_t>(
          std::max<std::int64_t>(2, cli.get_int("domain", 4)));
      program = lr::cs::make_chain(chain);
    } else {
      program = lr::lang::parse_program_file(cli.positional()[0]);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: %s\n",
                 cli.has("chain") ? "--chain" : cli.positional()[0].c_str(),
                 error.what());
    return 2;
  }

  std::printf("model: %s (%.3g states)\n", program->name().c_str(),
              program->space().state_space_size());

  // Fail fast on a bad --order=file: profile (unreadable, wrong model)
  // instead of letting the repair entry point throw mid-run.
  if (options.order_mode == lr::sym::order::Mode::kFile) {
    try {
      (void)lr::repair::order_plan(*program, options);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "--order: %s\n", error.what());
      return 2;
    }
  }

  const double task_timeout = std::atof(cli.get("task-timeout", "0").c_str());
  if (task_timeout > 0.0) {
    options.cancel = lr::repair::CancelToken::with_timeout(task_timeout);
  }

  // Declared after `program`: journal events hold Bdd handles and must not
  // outlive the program's Space.
  lr::repair::Journal journal;
  const std::string journal_path = cli.get("journal", "");
  const bool explain = cli.has("explain");
  if (!journal_path.empty() || explain) {
    journal.meta("model", program->name());
    options.journal = &journal;
  }
  const auto write_journal = [&journal, &journal_path] {
    if (journal_path.empty()) return true;
    if (!journal.save(journal_path)) {
      std::fprintf(stderr, "cannot write %s\n", journal_path.c_str());
      return false;
    }
    return true;
  };

  lr::support::Stopwatch watch;
  lr::repair::RepairResult result;
  try {
    result = cli.has("cautious") ? lr::repair::cautious_repair(*program, options)
                                 : lr::repair::lazy_repair(*program, options);
  } catch (const lr::repair::Cancelled&) {
    std::printf("repair failed: timed out (task-timeout %.3gs)\n",
                task_timeout);
    write_journal();
    return 1;
  }

  lr::repair::record_run_metrics(result.stats);
  if (!flame_path.empty()) {
    const lr::bdd::profile::Profiler& profiler =
        program->space().manager().profiler();
    if (!lr::bdd::profile::write_collapsed_file(profiler, flame_path,
                                                flame_weight)) {
      std::fprintf(stderr, "cannot write %s\n", flame_path.c_str());
      return 1;
    }
  }
  const std::string metrics_path = cli.get("metrics-json", "");
  const auto write_reports = [&trace_path, &metrics_path] {
    bool ok = true;
    if (!trace_path.empty()) {
      lr::support::trace::stop();
      if (!lr::support::trace::write_chrome_json_file(trace_path)) {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        ok = false;
      }
    }
    if (!metrics_path.empty() &&
        !lr::repair::write_metrics_report(metrics_path)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      ok = false;
    }
    return ok;
  };

  if (!result.success) {
    std::printf("repair failed: %s\n", result.failure_reason.c_str());
    if (explain) {
      std::printf("\n");
      for (const std::string& line : lr::repair::describe_journal(journal)) {
        std::printf("%s\n", line.c_str());
      }
    }
    write_journal();
    write_reports();
    return 1;
  }

  lr::support::Table table({"metric", "value"});
  table.add_row({"algorithm", cli.has("cautious") ? "cautious" : "lazy"});
  table.add_row({"tolerance level", level});
  table.add_row({"total time", lr::support::format_duration(watch.seconds())});
  table.add_row({"step 1", lr::support::format_duration(result.stats.step1_seconds)});
  table.add_row({"step 2", lr::support::format_duration(result.stats.step2_seconds)});
  table.add_row({"invariant S' states",
                 lr::support::format_state_count(result.stats.invariant_states)});
  table.add_row({"fault-span states",
                 lr::support::format_state_count(result.stats.span_states)});
  table.print(std::cout);

  if (cli.has("stats")) {
    std::printf("\nengine statistics:\n");
    for (const std::string& line : lr::repair::describe_stats(result.stats)) {
      std::printf("  %s\n", line.c_str());
    }
    const lr::bdd::profile::Profiler& profiler =
        program->space().manager().profiler();
    if (!profiler.empty()) {
      std::printf("\nBDD attribution (per trace span):\n");
      lr::bdd::profile::write_attribution_table(profiler, std::cout);
      lr::bdd::profile::record_metrics(profiler);
    }
    const lr::bdd::Manager& manager = program->space().manager();
    const lr::bdd::meminfo::MemInfo mem = lr::bdd::meminfo::collect(manager);
    std::printf("\n");
    lr::bdd::meminfo::write_report(mem, std::cout);
    lr::bdd::meminfo::record_metrics(mem);
    lr::bdd::meminfo::write_gc_report(manager, std::cout);
    lr::bdd::meminfo::write_reorder_report(manager, std::cout);
    lr::bdd::meminfo::record_reorder_metrics(manager);
    std::printf("\n");
    lr::repair::write_relation_report(*program, options, std::cout);
    if (cli.has("order")) {
      std::printf("\n");
      lr::repair::write_order_report(*program, options, std::cout);
    }
  }

  if (explain) {
    std::printf("\n");
    for (const std::string& line : lr::repair::describe_journal(journal)) {
      std::printf("%s\n", line.c_str());
    }
  }
  if (!write_journal()) {
    write_reports();
    return 1;
  }

  if (cli.has("print-program")) {
    for (std::size_t j = 0; j < program->process_count(); ++j) {
      std::printf("\nprocess %s:\n", program->process(j).name.c_str());
      for (const std::string& line : lr::repair::describe_process_program(
               *program, j, result.process_deltas[j], result.fault_span)) {
        std::printf("  %s\n", line.c_str());
      }
    }
  }

  // The profile must be captured before the export: export_model restores
  // the creation order to keep exports canonical.
  const std::string order_out_path = cli.get("order-out", "");
  if (!order_out_path.empty()) {
    const lr::bdd::order::OrderProfile profile =
        lr::repair::capture_order_profile(*program, options);
    if (!lr::bdd::order::save_profile(profile, order_out_path)) {
      std::fprintf(stderr, "cannot write %s\n", order_out_path.c_str());
      write_reports();
      return 1;
    }
    std::printf("\norder profile written to %s\n", order_out_path.c_str());
  }

  const std::string export_path = cli.get("export", "");
  if (!export_path.empty()) {
    if (!lr::repair::export_model_file(*program, result, export_path)) {
      std::fprintf(stderr, "cannot write %s\n", export_path.c_str());
      write_reports();
      return 1;
    }
    std::printf("\nsynthesized model written to %s\n", export_path.c_str());
  }

  bool verify_ok = true;
  if (!cli.has("no-verify")) {
    const lr::repair::VerifyReport report =
        lr::repair::verify_masking(*program, result, options.level);
    std::printf("\nverification: %s\n", report.ok ? "OK" : "FAILED");
    for (const std::string& failure : report.failures) {
      std::printf("  %s\n", failure.c_str());
    }
    verify_ok = report.ok;
  }
  if (!write_reports()) return 1;
  return verify_ok ? 0 : 1;
}
