// Command-line front end: repair a model written in the textual format
// (see models/*.lr) without writing any C++.
//
// Usage:
//   repair_cli MODEL.lr [--cautious] [--oneshot] [--no-heuristic]
//              [--level=masking|failsafe|nonmasking]
//              [--print-program] [--no-verify]

#include <cstdio>
#include <fstream>
#include <iostream>

#include "lang/parser.hpp"
#include "repair/cautious.hpp"
#include "repair/describe.hpp"
#include "repair/export.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const lr::support::CommandLine cli(argc, argv);
  if (cli.positional().empty()) {
    std::printf("usage: %s MODEL.lr [--cautious] [--oneshot] "
                "[--no-heuristic] [--level=masking|failsafe|nonmasking] "
                "[--print-program] [--export=OUT.lr] [--no-verify]\n",
                cli.program().c_str());
    return 2;
  }

  std::unique_ptr<lr::prog::DistributedProgram> program;
  try {
    program = lr::lang::parse_program_file(cli.positional()[0]);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: %s\n", cli.positional()[0].c_str(),
                 error.what());
    return 2;
  }

  lr::repair::Options options;
  if (cli.has("oneshot")) {
    options.group_method = lr::repair::GroupMethod::kOneShot;
  }
  if (cli.has("no-heuristic")) options.restrict_to_reachable = false;
  const std::string level = cli.get("level", "masking");
  if (level == "failsafe") {
    options.level = lr::repair::ToleranceLevel::kFailsafe;
  } else if (level == "nonmasking") {
    options.level = lr::repair::ToleranceLevel::kNonmasking;
  } else if (level != "masking") {
    std::fprintf(stderr, "unknown tolerance level '%s'\n", level.c_str());
    return 2;
  }

  std::printf("model: %s (%.3g states)\n", program->name().c_str(),
              program->space().state_space_size());

  lr::support::Stopwatch watch;
  const lr::repair::RepairResult result =
      cli.has("cautious") ? lr::repair::cautious_repair(*program, options)
                          : lr::repair::lazy_repair(*program, options);
  if (!result.success) {
    std::printf("repair failed: %s\n", result.failure_reason.c_str());
    return 1;
  }

  lr::support::Table table({"metric", "value"});
  table.add_row({"algorithm", cli.has("cautious") ? "cautious" : "lazy"});
  table.add_row({"tolerance level", level});
  table.add_row({"total time", lr::support::format_duration(watch.seconds())});
  table.add_row({"step 1", lr::support::format_duration(result.stats.step1_seconds)});
  table.add_row({"step 2", lr::support::format_duration(result.stats.step2_seconds)});
  table.add_row({"invariant S' states",
                 lr::support::format_state_count(result.stats.invariant_states)});
  table.add_row({"fault-span states",
                 lr::support::format_state_count(result.stats.span_states)});
  table.print(std::cout);

  if (cli.has("print-program")) {
    for (std::size_t j = 0; j < program->process_count(); ++j) {
      std::printf("\nprocess %s:\n", program->process(j).name.c_str());
      for (const std::string& line : lr::repair::describe_process_program(
               *program, j, result.process_deltas[j], result.fault_span)) {
        std::printf("  %s\n", line.c_str());
      }
    }
  }

  const std::string export_path = cli.get("export", "");
  if (!export_path.empty()) {
    std::ofstream out(export_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", export_path.c_str());
      return 1;
    }
    out << lr::repair::export_model(*program, result);
    std::printf("\nsynthesized model written to %s\n", export_path.c_str());
  }

  if (!cli.has("no-verify")) {
    const lr::repair::VerifyReport report =
        lr::repair::verify_masking(*program, result, options.level);
    std::printf("\nverification: %s\n", report.ok ? "OK" : "FAILED");
    for (const std::string& failure : report.failures) {
      std::printf("  %s\n", failure.c_str());
    }
    return report.ok ? 0 : 1;
  }
  return 0;
}
