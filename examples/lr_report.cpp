// Compares two --metrics-json run reports and gates on regressions, diffs
// two repair decision journals, two collapsed flamegraphs, or two
// persisted variable-order profiles.
//
// Usage:
//   lr_report BASELINE.json CURRENT.json [options]
//   lr_report CURRENT.json [options]          (baseline: BENCH_seed.json)
//   lr_report --journal A.jsonl B.jsonl       (decision-journal diff)
//   lr_report --flame A.collapsed B.collapsed (call-path profile diff)
//   lr_report --order A.json B.json           (order-profile diff)
//
//   --key=NAME        gate metric (default bench.wall_seconds)
//   --max-ratio=R     fail when current/baseline of the gate metric
//                     exceeds R (default 2.0); with --flame the gate is
//                     the total collapsed weight
//   --filter=SUBSTR   only list keys containing SUBSTR
//   --all             list every shared key (default: only keys whose
//                     ratio moved by >= 10%, plus the gate metric)
//   --top=N           with --flame: list the N fastest-growing and
//                     fastest-shrinking call paths (default 10)
//   --journal         treat the two positionals as repair journals
//                     (repair_cli --journal output) and print a
//                     side-by-side decision comparison
//   --flame           treat the two positionals as collapsed-stack
//                     flamegraphs (repair_cli --flamegraph output)
//   --order           treat the two positionals as persisted order
//                     profiles (repair_cli --order-out output): compare
//                     the summary stats and list the levels whose
//                     variable or node population moved
//
// Prints an aligned diff table (key, baseline, current, ratio) and exits
// 0 when the gate metric is within bounds, 1 on a regression, 2 on a
// usage or parse error. Keys present on only one side and ratios with a
// zero baseline print "n/a" instead of being skipped or dividing by
// zero; a zero-baseline gate with a nonzero current fails the gate. CI
// runs this against the committed BENCH_seed.json so a slowdown in the
// repair engine fails the build instead of landing silently.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bdd/order.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

constexpr const char* kDefaultBaseline = "BENCH_seed.json";
constexpr const char* kDefaultKey = "bench.wall_seconds";
constexpr double kListThreshold = 0.10;  ///< |ratio - 1| to list by default

/// Flattens the "counters" and "gauges" objects of a metrics report into
/// one key -> value map. Returns false on unreadable or malformed input.
bool load_report(const std::string& path, std::map<std::string, double>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "lr_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto doc = lr::support::json_parse(buffer.str());
  if (!doc || !doc->is_object()) {
    std::fprintf(stderr, "lr_report: %s is not a JSON object\n", path.c_str());
    return false;
  }
  for (const char* section : {"counters", "gauges"}) {
    const lr::support::JsonValue* group = doc->find(section);
    if (group == nullptr) continue;
    if (!group->is_object()) {
      std::fprintf(stderr, "lr_report: %s: \"%s\" is not an object\n",
                   path.c_str(), section);
      return false;
    }
    for (const auto& [key, value] : group->object) {
      if (value.is_number()) out[key] = value.number;
    }
  }
  return true;
}

std::string format_value(double value) {
  char buffer[64];
  if (std::nearbyint(value) == value && std::fabs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  }
  return buffer;
}

std::string format_ratio(double baseline, double current) {
  // A zero baseline has no meaningful ratio: "n/a", never a division.
  if (baseline == 0.0) return current == 0.0 ? "1.00" : "n/a";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", current / baseline);
  return buffer;
}

/// Decision-relevant aggregates of one repair journal (repair_cli
/// --journal output): what the side-by-side lazy-vs-cautious table shows.
struct JournalSummary {
  std::string algorithm = "?";
  std::string model;
  std::string result = "?";
  double rounds = 0;
  double groups_accepted = 0;
  double groups_rejected = 0;
  double trans_accepted = 0;
  /// Transitions pruned during the pre-Repair analysis ("analysis.*"
  /// phases: cautious group closure) vs during the Repair phase itself
  /// ("repair.*" phases: realize closure, livelock elimination). The
  /// lazy-vs-cautious contrast the paper claims is exactly
  /// analysis-pruned(cautious) >> analysis-pruned(lazy) == 0.
  double analysis_pruned_trans = 0;
  double repair_pruned_trans = 0;
  double deadlock_rounds = 0;
  double deadlock_states = 0;
};

bool load_journal(const std::string& path, JournalSummary& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "lr_report: cannot open %s\n", path.c_str());
    return false;
  }
  const auto num = [](const lr::support::JsonValue& event, const char* key) {
    const lr::support::JsonValue* value = event.find(key);
    return value != nullptr && value->is_number() ? value->number : 0.0;
  };
  const auto text = [](const lr::support::JsonValue& event, const char* key) {
    const lr::support::JsonValue* value = event.find(key);
    return value != nullptr && value->is_string() ? value->string
                                                  : std::string();
  };
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto event = lr::support::json_parse(line);
    if (!event || !event->is_object()) {
      std::fprintf(stderr, "lr_report: %s:%zu: not a JSON object\n",
                   path.c_str(), line_no);
      return false;
    }
    const std::string kind = text(*event, "event");
    if (kind == "journal") {  // header line
      out.algorithm = text(*event, "algorithm");
      out.model = text(*event, "model");
    } else if (kind == "round_start") {
      out.rounds += 1;
    } else if (kind == "group" || kind == "prune") {
      const std::string phase = text(*event, "phase");
      const bool rejected =
          kind == "prune" || text(*event, "decision") == "rejected";
      if (kind == "group" && !rejected) {
        out.groups_accepted += 1;
        out.trans_accepted += num(*event, "trans");
      }
      if (rejected) {
        if (kind == "group") out.groups_rejected += 1;
        if (phase.rfind("analysis.", 0) == 0) {
          out.analysis_pruned_trans += num(*event, "trans");
        } else {
          out.repair_pruned_trans += num(*event, "trans");
        }
      }
    } else if (kind == "deadlock_round") {
      out.deadlock_rounds += 1;
      out.deadlock_states += num(*event, "states");
    } else if (kind == "run_end") {
      out.result = num(*event, "success") != 0.0 ? "success" : "failed";
    }
  }
  if (line_no == 0) {
    std::fprintf(stderr, "lr_report: %s is empty\n", path.c_str());
    return false;
  }
  return true;
}

/// `--journal A B`: side-by-side decision comparison of two repair
/// journals (typically lazy vs cautious on the same model).
int run_journal_diff(const std::string& path_a, const std::string& path_b) {
  JournalSummary a;
  JournalSummary b;
  if (!load_journal(path_a, a) || !load_journal(path_b, b)) return 2;
  std::string col_a = a.algorithm;
  std::string col_b = b.algorithm;
  if (col_a == col_b) {  // same algorithm twice: fall back to the paths
    col_a = path_a;
    col_b = path_b;
  }
  std::printf("journal diff: %s vs %s\n", path_a.c_str(), path_b.c_str());
  lr::support::Table table({"decision metric", col_a, col_b});
  table.add_row({"model", a.model, b.model});
  table.add_row({"result", a.result, b.result});
  table.add_row({"rounds", format_value(a.rounds), format_value(b.rounds)});
  table.add_row({"groups accepted", format_value(a.groups_accepted),
                 format_value(b.groups_accepted)});
  table.add_row({"groups rejected", format_value(a.groups_rejected),
                 format_value(b.groups_rejected)});
  table.add_row({"transitions accepted", format_value(a.trans_accepted),
                 format_value(b.trans_accepted)});
  table.add_row({"transitions pruned pre-Repair (analysis)",
                 format_value(a.analysis_pruned_trans),
                 format_value(b.analysis_pruned_trans)});
  table.add_row({"transitions pruned in Repair phase",
                 format_value(a.repair_pruned_trans),
                 format_value(b.repair_pruned_trans)});
  table.add_row({"deadlock rounds", format_value(a.deadlock_rounds),
                 format_value(b.deadlock_rounds)});
  table.add_row({"deadlock states banned", format_value(a.deadlock_states),
                 format_value(b.deadlock_states)});
  table.print(std::cout);
  return 0;
}

/// Parses a collapsed-stack flamegraph ("a;b;c <weight>" per line) into a
/// path -> weight map. Duplicate paths accumulate.
bool load_collapsed(const std::string& path,
                    std::map<std::string, double>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "lr_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::size_t split = line.rfind(' ');
    if (split == std::string::npos || split == 0) {
      std::fprintf(stderr, "lr_report: %s:%zu: expected \"path weight\"\n",
                   path.c_str(), line_no);
      return false;
    }
    char* end = nullptr;
    const std::string weight_text = line.substr(split + 1);
    const double weight = std::strtod(weight_text.c_str(), &end);
    if (end == weight_text.c_str() || *end != '\0' || weight < 0.0) {
      std::fprintf(stderr, "lr_report: %s:%zu: bad weight '%s'\n",
                   path.c_str(), line_no, weight_text.c_str());
      return false;
    }
    out[line.substr(0, split)] += weight;
  }
  return true;
}

/// `--flame A B`: diff two collapsed flamegraphs — total-weight gate plus
/// the top-N growing and shrinking call paths.
int run_flame_diff(const std::string& path_a, const std::string& path_b,
                   double max_ratio, std::size_t top) {
  std::map<std::string, double> base;
  std::map<std::string, double> cur;
  if (!load_collapsed(path_a, base) || !load_collapsed(path_b, cur)) return 2;

  double base_total = 0.0;
  double cur_total = 0.0;
  for (const auto& [path, weight] : base) base_total += weight;
  for (const auto& [path, weight] : cur) cur_total += weight;

  // Union of paths with signed weight deltas; one-sided paths count with
  // an implicit 0 on the missing side (they appeared or vanished).
  std::vector<std::pair<std::string, double>> deltas;
  for (const auto& [path, weight] : base) {
    const auto it = cur.find(path);
    deltas.emplace_back(path, (it == cur.end() ? 0.0 : it->second) - weight);
  }
  for (const auto& [path, weight] : cur) {
    if (base.find(path) == base.end()) deltas.emplace_back(path, weight);
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  std::printf("flame diff: %s (baseline, total %s) vs %s (total %s)\n",
              path_a.c_str(), format_value(base_total).c_str(),
              path_b.c_str(), format_value(cur_total).c_str());
  const auto list = [&deltas, &base, &cur](bool growing, std::size_t limit) {
    lr::support::Table table({"call path", "baseline", "current", "delta"});
    std::size_t shown = 0;
    const std::size_t n = deltas.size();
    for (std::size_t i = 0; i < n && shown < limit; ++i) {
      const auto& [path, delta] = deltas[growing ? i : n - 1 - i];
      if (growing ? delta <= 0.0 : delta >= 0.0) break;
      const auto base_it = base.find(path);
      const auto cur_it = cur.find(path);
      table.add_row(
          {path,
           base_it == base.end() ? "n/a" : format_value(base_it->second),
           cur_it == cur.end() ? "n/a" : format_value(cur_it->second),
           format_value(delta)});
      ++shown;
    }
    return std::make_pair(std::move(table), shown);
  };
  auto [growing_table, growing_count] = list(true, top);
  if (growing_count > 0) {
    std::printf("top growing paths:\n");
    growing_table.print(std::cout);
  }
  auto [shrinking_table, shrinking_count] = list(false, top);
  if (shrinking_count > 0) {
    std::printf("top shrinking paths:\n");
    shrinking_table.print(std::cout);
  }
  if (growing_count == 0 && shrinking_count == 0) {
    std::printf("no call-path weight changed\n");
  }

  // Same gate semantics as the metrics mode: a zero baseline with nonzero
  // current is a regression (the profile appeared from nothing).
  const bool gate_ok = base_total == 0.0 ? cur_total == 0.0
                                         : cur_total / base_total <= max_ratio;
  std::printf("gate: total weight ratio %s (max %.2f) -> %s\n",
              format_ratio(base_total, cur_total).c_str(), max_ratio,
              gate_ok ? "OK" : "FAIL");
  return gate_ok ? 0 : 1;
}

/// `--order A B`: diff two persisted order profiles (repair_cli
/// --order-out output) — summary stats plus the bit levels whose position
/// or node population changed, biggest movers first.
int run_order_diff(const std::string& path_a, const std::string& path_b,
                   std::size_t top) {
  const auto base = lr::bdd::order::load_profile(path_a);
  const auto cur = lr::bdd::order::load_profile(path_b);
  if (!base) {
    std::fprintf(stderr, "lr_report: cannot load order profile %s\n",
                 path_a.c_str());
    return 2;
  }
  if (!cur) {
    std::fprintf(stderr, "lr_report: cannot load order profile %s\n",
                 path_b.c_str());
    return 2;
  }

  std::printf("order profile diff: %s (baseline) vs %s\n", path_a.c_str(),
              path_b.c_str());
  lr::support::Table summary({"field", "baseline", "current"});
  summary.add_row({"model", base->model, cur->model});
  summary.add_row({"source mode", base->source, cur->source});
  summary.add_row({"levels", format_value(double(base->levels.size())),
                   format_value(double(cur->levels.size()))});
  summary.add_row({"live nodes", format_value(double(base->live_nodes)),
                   format_value(double(cur->live_nodes))});
  summary.add_row({"peak nodes", format_value(double(base->peak_nodes)),
                   format_value(double(cur->peak_nodes))});
  summary.add_row({"reorder runs", format_value(double(base->reorder_runs)),
                   format_value(double(cur->reorder_runs))});
  summary.print(std::cout);

  // Per-label comparison: where did each bit sit, how many nodes lived on
  // its level. A label on one side only means the profiles are for
  // different models (still listed, with "n/a").
  struct LevelInfo {
    std::size_t level = 0;
    std::size_t nodes = 0;
  };
  std::map<std::string, LevelInfo> base_levels;
  std::map<std::string, LevelInfo> cur_levels;
  for (std::size_t i = 0; i < base->levels.size(); ++i) {
    base_levels[base->levels[i].label] = {i, base->levels[i].nodes};
  }
  for (std::size_t i = 0; i < cur->levels.size(); ++i) {
    cur_levels[cur->levels[i].label] = {i, cur->levels[i].nodes};
  }
  struct Mover {
    std::string label;
    const LevelInfo* base = nullptr;
    const LevelInfo* cur = nullptr;
    /// |level delta|, with one-sided labels sorted first.
    std::size_t magnitude = 0;
  };
  std::vector<Mover> movers;
  std::size_t unchanged = 0;
  std::map<std::string, char> labels;  // union, sorted
  for (const auto& [label, info] : base_levels) labels.emplace(label, 0);
  for (const auto& [label, info] : cur_levels) labels.emplace(label, 0);
  for (const auto& [label, ignored] : labels) {
    const auto base_it = base_levels.find(label);
    const auto cur_it = cur_levels.find(label);
    Mover mover;
    mover.label = label;
    if (base_it != base_levels.end()) mover.base = &base_it->second;
    if (cur_it != cur_levels.end()) mover.cur = &cur_it->second;
    if (mover.base != nullptr && mover.cur != nullptr) {
      if (mover.base->level == mover.cur->level &&
          mover.base->nodes == mover.cur->nodes) {
        ++unchanged;
        continue;
      }
      mover.magnitude = mover.base->level > mover.cur->level
                            ? mover.base->level - mover.cur->level
                            : mover.cur->level - mover.base->level;
    } else {
      mover.magnitude = labels.size();  // one-sided: sort first
    }
    movers.push_back(std::move(mover));
  }
  std::sort(movers.begin(), movers.end(), [](const Mover& a, const Mover& b) {
    if (a.magnitude != b.magnitude) return a.magnitude > b.magnitude;
    return a.label < b.label;
  });
  if (movers.empty()) {
    std::printf("level order and node histogram identical (%zu levels)\n",
                unchanged);
    return 0;
  }
  lr::support::Table table(
      {"bit", "baseline level", "current level", "baseline nodes",
       "current nodes"});
  const std::size_t shown = std::min(top, movers.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const Mover& mover = movers[i];
    table.add_row(
        {mover.label,
         mover.base == nullptr ? "n/a"
                               : format_value(double(mover.base->level)),
         mover.cur == nullptr ? "n/a" : format_value(double(mover.cur->level)),
         mover.base == nullptr ? "n/a"
                               : format_value(double(mover.base->nodes)),
         mover.cur == nullptr ? "n/a"
                              : format_value(double(mover.cur->nodes))});
  }
  std::printf("%zu levels moved (%zu unchanged):\n", movers.size(), unchanged);
  table.print(std::cout);
  if (shown < movers.size()) {
    std::printf("(%zu of %zu movers listed; --top=N for more)\n", shown,
                movers.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const lr::support::CommandLine cli(argc, argv);
  const double max_ratio = [&cli] {
    const std::string text = cli.get("max-ratio", "2.0");
    char* end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    return (end != text.c_str() && parsed > 0.0) ? parsed : -1.0;
  }();
  if (max_ratio <= 0.0) {
    std::fprintf(stderr, "lr_report: bad --max-ratio value\n");
    return 2;
  }
  if (cli.has("order")) {
    // Same parser quirk as --journal/--flame: "--order A" binds A as the
    // flag's value.
    std::vector<std::string> paths;
    const std::string flag_value = cli.get("order", "");
    if (!flag_value.empty()) paths.push_back(flag_value);
    paths.insert(paths.end(), cli.positional().begin(),
                 cli.positional().end());
    if (paths.size() != 2) {
      std::fprintf(stderr, "usage: %s --order A.order.json B.order.json\n",
                   cli.program().c_str());
      return 2;
    }
    const std::size_t top = static_cast<std::size_t>(
        std::max<std::int64_t>(1, cli.get_int("top", 10)));
    return run_order_diff(paths[0], paths[1], top);
  }
  if (cli.has("flame")) {
    // Same parser quirk as --journal: "--flame A" binds A as the flag's
    // value; the collapsed files are that value plus the positionals.
    std::vector<std::string> paths;
    const std::string flag_value = cli.get("flame", "");
    if (!flag_value.empty()) paths.push_back(flag_value);
    paths.insert(paths.end(), cli.positional().begin(),
                 cli.positional().end());
    if (paths.size() != 2) {
      std::fprintf(stderr, "usage: %s --flame A.collapsed B.collapsed\n",
                   cli.program().c_str());
      return 2;
    }
    const std::size_t top = static_cast<std::size_t>(
        std::max<std::int64_t>(1, cli.get_int("top", 10)));
    return run_flame_diff(paths[0], paths[1], max_ratio, top);
  }
  if (cli.has("journal")) {
    // The parser binds "--journal A" as the flag's value; the journal
    // paths are that value (when present) plus the positionals.
    std::vector<std::string> paths;
    const std::string flag_value = cli.get("journal", "");
    if (!flag_value.empty()) paths.push_back(flag_value);
    paths.insert(paths.end(), cli.positional().begin(),
                 cli.positional().end());
    if (paths.size() != 2) {
      std::fprintf(stderr, "usage: %s --journal A.jsonl B.jsonl\n",
                   cli.program().c_str());
      return 2;
    }
    return run_journal_diff(paths[0], paths[1]);
  }
  if (cli.positional().empty() || cli.positional().size() > 2) {
    std::fprintf(stderr,
                 "usage: %s [BASELINE.json] CURRENT.json [--key=NAME]\n"
                 "       [--max-ratio=R] [--filter=SUBSTR] [--all]\n"
                 "       %s --journal A.jsonl B.jsonl\n"
                 "(one positional compares against %s)\n",
                 cli.program().c_str(), cli.program().c_str(),
                 kDefaultBaseline);
    return 2;
  }
  const bool have_baseline = cli.positional().size() == 2;
  const std::string baseline_path =
      have_baseline ? cli.positional()[0] : kDefaultBaseline;
  const std::string current_path =
      have_baseline ? cli.positional()[1] : cli.positional()[0];
  const std::string gate_key = cli.get("key", kDefaultKey);
  const std::string filter = cli.get("filter", "");
  const bool all = cli.has("all");

  std::map<std::string, double> baseline;
  std::map<std::string, double> current;
  if (!load_report(baseline_path, baseline) ||
      !load_report(current_path, current)) {
    return 2;
  }

  lr::support::Table table({"metric", "baseline", "current", "ratio"});
  std::size_t shared = 0;
  std::size_t listed = 0;     ///< shared keys that made the table
  std::size_t one_sided = 0;  ///< keys on one side only (always listed)
  // Union of both key sets: a key present on only one side is reported
  // with "n/a" on the other (it appeared or vanished — that is a change
  // worth listing), never silently skipped.
  std::map<std::string, char> keys;  // value unused
  for (const auto& [key, value] : baseline) keys.emplace(key, 0);
  for (const auto& [key, value] : current) keys.emplace(key, 0);
  for (const auto& [key, ignored] : keys) {
    const auto base_it = baseline.find(key);
    const auto cur_it = current.find(key);
    if (!filter.empty() && key.find(filter) == std::string::npos) {
      if (base_it != baseline.end() && cur_it != current.end()) ++shared;
      continue;
    }
    if (base_it == baseline.end() || cur_it == current.end()) {
      // One-sided keys are always listed but never counted as shared:
      // the "N of M shared keys" summary must compare like with like.
      ++one_sided;
      table.add_row(
          {key,
           base_it == baseline.end() ? "n/a" : format_value(base_it->second),
           cur_it == current.end() ? "n/a" : format_value(cur_it->second),
           "n/a"});
      continue;
    }
    ++shared;
    const double base_value = base_it->second;
    const double cur_value = cur_it->second;
    const bool moved =
        base_value == 0.0
            ? cur_value != 0.0
            : std::fabs(cur_value / base_value - 1.0) >= kListThreshold;
    if (!all && !moved && key != gate_key) continue;
    ++listed;
    table.add_row({key, format_value(base_value), format_value(cur_value),
                   format_ratio(base_value, cur_value)});
  }
  std::printf("comparing %s (baseline) vs %s\n", baseline_path.c_str(),
              current_path.c_str());
  if (listed + one_sided == 0) {
    std::printf("no %s keys to list (%zu shared)\n",
                filter.empty() ? "moved" : "matching", shared);
  } else {
    table.print(std::cout);
    if (!all && listed < shared) {
      std::printf("(%zu of %zu shared keys listed; --all for the rest)\n",
                  listed, shared);
    }
  }

  const auto base_gate = baseline.find(gate_key);
  const auto cur_gate = current.find(gate_key);
  if (base_gate == baseline.end() || cur_gate == current.end()) {
    std::fprintf(stderr, "lr_report: gate metric %s missing from %s\n",
                 gate_key.c_str(),
                 base_gate == baseline.end() ? baseline_path.c_str()
                                             : current_path.c_str());
    return 2;
  }
  // A zero baseline with a nonzero current has no finite ratio; it is
  // reported as n/a and treated as a regression (the metric appeared).
  const bool gate_ok =
      base_gate->second == 0.0
          ? cur_gate->second == 0.0
          : cur_gate->second / base_gate->second <= max_ratio;
  std::printf("gate: %s ratio %s (max %.2f) -> %s\n", gate_key.c_str(),
              format_ratio(base_gate->second, cur_gate->second).c_str(),
              max_ratio, gate_ok ? "OK" : "FAIL");
  return gate_ok ? 0 : 1;
}
