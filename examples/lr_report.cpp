// Compares two --metrics-json run reports and gates on regressions.
//
// Usage:
//   lr_report BASELINE.json CURRENT.json [options]
//   lr_report CURRENT.json [options]          (baseline: BENCH_seed.json)
//
//   --key=NAME        gate metric (default bench.wall_seconds)
//   --max-ratio=R     fail when current/baseline of the gate metric
//                     exceeds R (default 2.0)
//   --filter=SUBSTR   only list keys containing SUBSTR
//   --all             list every shared key (default: only keys whose
//                     ratio moved by >= 10%, plus the gate metric)
//
// Prints an aligned diff table (key, baseline, current, ratio) and exits
// 0 when the gate metric is within bounds, 1 on a regression, 2 on a
// usage or parse error. CI runs this against the committed BENCH_seed.json
// so a slowdown in the repair engine fails the build instead of landing
// silently.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

constexpr const char* kDefaultBaseline = "BENCH_seed.json";
constexpr const char* kDefaultKey = "bench.wall_seconds";
constexpr double kListThreshold = 0.10;  ///< |ratio - 1| to list by default

/// Flattens the "counters" and "gauges" objects of a metrics report into
/// one key -> value map. Returns false on unreadable or malformed input.
bool load_report(const std::string& path, std::map<std::string, double>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "lr_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto doc = lr::support::json_parse(buffer.str());
  if (!doc || !doc->is_object()) {
    std::fprintf(stderr, "lr_report: %s is not a JSON object\n", path.c_str());
    return false;
  }
  for (const char* section : {"counters", "gauges"}) {
    const lr::support::JsonValue* group = doc->find(section);
    if (group == nullptr) continue;
    if (!group->is_object()) {
      std::fprintf(stderr, "lr_report: %s: \"%s\" is not an object\n",
                   path.c_str(), section);
      return false;
    }
    for (const auto& [key, value] : group->object) {
      if (value.is_number()) out[key] = value.number;
    }
  }
  return true;
}

std::string format_value(double value) {
  char buffer[64];
  if (std::nearbyint(value) == value && std::fabs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  }
  return buffer;
}

std::string format_ratio(double baseline, double current) {
  if (baseline == 0.0) return current == 0.0 ? "1.00" : "inf";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", current / baseline);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const lr::support::CommandLine cli(argc, argv);
  if (cli.positional().empty() || cli.positional().size() > 2) {
    std::fprintf(stderr,
                 "usage: %s [BASELINE.json] CURRENT.json [--key=NAME]\n"
                 "       [--max-ratio=R] [--filter=SUBSTR] [--all]\n"
                 "(one positional compares against %s)\n",
                 cli.program().c_str(), kDefaultBaseline);
    return 2;
  }
  const bool have_baseline = cli.positional().size() == 2;
  const std::string baseline_path =
      have_baseline ? cli.positional()[0] : kDefaultBaseline;
  const std::string current_path =
      have_baseline ? cli.positional()[1] : cli.positional()[0];
  const std::string gate_key = cli.get("key", kDefaultKey);
  const std::string filter = cli.get("filter", "");
  const bool all = cli.has("all");
  const double max_ratio = [&cli] {
    const std::string text = cli.get("max-ratio", "2.0");
    char* end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    return (end != text.c_str() && parsed > 0.0) ? parsed : -1.0;
  }();
  if (max_ratio <= 0.0) {
    std::fprintf(stderr, "lr_report: bad --max-ratio value\n");
    return 2;
  }

  std::map<std::string, double> baseline;
  std::map<std::string, double> current;
  if (!load_report(baseline_path, baseline) ||
      !load_report(current_path, current)) {
    return 2;
  }

  lr::support::Table table({"metric", "baseline", "current", "ratio"});
  std::size_t shared = 0;
  std::size_t listed = 0;
  for (const auto& [key, base_value] : baseline) {
    const auto it = current.find(key);
    if (it == current.end()) continue;
    ++shared;
    if (!filter.empty() && key.find(filter) == std::string::npos) continue;
    const double ratio =
        base_value == 0.0 ? (it->second == 0.0 ? 1.0 : HUGE_VAL)
                          : it->second / base_value;
    const bool moved = std::fabs(ratio - 1.0) >= kListThreshold;
    if (!all && !moved && key != gate_key) continue;
    ++listed;
    table.add_row({key, format_value(base_value), format_value(it->second),
                   format_ratio(base_value, it->second)});
  }
  std::printf("comparing %s (baseline) vs %s\n", baseline_path.c_str(),
              current_path.c_str());
  if (listed == 0) {
    std::printf("no %s keys to list (%zu shared)\n",
                filter.empty() ? "moved" : "matching", shared);
  } else {
    table.print(std::cout);
    if (!all && listed < shared) {
      std::printf("(%zu of %zu shared keys listed; --all for the rest)\n",
                  listed, shared);
    }
  }

  const auto base_gate = baseline.find(gate_key);
  const auto cur_gate = current.find(gate_key);
  if (base_gate == baseline.end() || cur_gate == current.end()) {
    std::fprintf(stderr, "lr_report: gate metric %s missing from %s\n",
                 gate_key.c_str(),
                 base_gate == baseline.end() ? baseline_path.c_str()
                                             : current_path.c_str());
    return 2;
  }
  const double gate_ratio = base_gate->second == 0.0
                                ? (cur_gate->second == 0.0 ? 1.0 : HUGE_VAL)
                                : cur_gate->second / base_gate->second;
  std::printf("gate: %s ratio %.2f (max %.2f) -> %s\n", gate_key.c_str(),
              gate_ratio, max_ratio, gate_ratio <= max_ratio ? "OK" : "FAIL");
  return gate_ratio <= max_ratio ? 0 : 1;
}
