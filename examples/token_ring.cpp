// Token ring: adds masking tolerance against counter corruption to
// Dijkstra's K-state ring and shows the synthesized stabilization.
//
// Usage:
//   token_ring [--processes=4] [--domain=4] [--no-verify]

#include <cstdio>
#include <iostream>

#include "casestudies/token_ring.hpp"
#include "repair/describe.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const lr::support::CommandLine cli(argc, argv);
  lr::cs::TokenRingOptions model;
  model.processes = static_cast<std::size_t>(cli.get_int("processes", 4));
  model.domain = static_cast<std::uint32_t>(cli.get_int("domain", 4));

  auto program = lr::cs::make_token_ring(model);
  std::printf("model: %s, state space %.3g states\n",
              program->name().c_str(), program->space().state_space_size());

  lr::support::Stopwatch watch;
  const lr::repair::RepairResult result = lr::repair::lazy_repair(*program);
  if (!result.success) {
    std::printf("repair failed: %s\n", result.failure_reason.c_str());
    std::printf(
        "(Dijkstra's ring needs domain >= processes to stabilize; try a "
        "bigger --domain)\n");
    return 1;
  }

  lr::support::Table table({"metric", "value"});
  table.add_row({"total time", lr::support::format_duration(watch.seconds())});
  table.add_row({"invariant S' states",
                 lr::support::format_state_count(result.stats.invariant_states)});
  table.add_row({"fault-span states",
                 lr::support::format_state_count(result.stats.span_states)});
  table.add_row({"recovery layers",
                 std::to_string(result.stats.recovery_layers)});
  table.print(std::cout);

  std::printf("\nrepaired actions of the root (within the fault span):\n");
  for (const std::string& line : lr::repair::describe_process_program(
           *program, 0, result.process_deltas[0], result.fault_span, 16)) {
    std::printf("  %s\n", line.c_str());
  }

  if (!cli.has("no-verify")) {
    const lr::repair::VerifyReport report =
        lr::repair::verify_masking(*program, result);
    std::printf("\nverification: %s\n", report.ok ? "OK" : "FAILED");
    for (const std::string& failure : report.failures) {
      std::printf("  %s\n", failure.c_str());
    }
    return report.ok ? 0 : 1;
  }
  return 0;
}
