#include "lang/expr.hpp"

#include <stdexcept>

namespace lr::lang {

namespace {

[[noreturn]] void type_error(const std::string& what) {
  throw std::invalid_argument("Expr: " + what);
}

}  // namespace

// --- Construction ---------------------------------------------------------------

Expr Expr::make(Kind kind, std::vector<Expr> children) {
  for (const Expr& c : children) {
    if (c.empty()) type_error("operand is an empty expression");
  }
  auto node = std::make_shared<Node>();
  node->kind = kind;
  node->children = std::move(children);
  return Expr(std::move(node));
}

Expr Expr::constant(std::uint32_t value) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kIntConst;
  node->value = value;
  return Expr(std::move(node));
}

Expr Expr::bool_const(bool value) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kBoolConst;
  node->value = value ? 1 : 0;
  return Expr(std::move(node));
}

Expr Expr::var(sym::VarId v) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kVar;
  node->value = v;
  node->version = sym::Version::kCurrent;
  return Expr(std::move(node));
}

Expr Expr::next(sym::VarId v) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kVar;
  node->value = v;
  node->version = sym::Version::kNext;
  return Expr(std::move(node));
}

Expr Expr::ite(const Expr& cond, const Expr& then_e, const Expr& else_e) {
  return make(Kind::kIte, {cond, then_e, else_e});
}

const Expr::Node& Expr::node() const {
  if (node_ == nullptr) type_error("use of empty expression");
  return *node_;
}

Expr::Kind Expr::kind() const { return node().kind; }

bool Expr::is_boolean() const {
  switch (node().kind) {
    case Kind::kBoolConst:
    case Kind::kNot:
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kImplies:
    case Kind::kIff:
    case Kind::kEq:
    case Kind::kNe:
    case Kind::kLt:
    case Kind::kLe:
    case Kind::kGt:
    case Kind::kGe:
      return true;
    default:
      return false;
  }
}

void Expr::collect_vars(std::vector<sym::VarId>& out) const {
  if (node_ == nullptr) return;
  if (node_->kind == Kind::kVar) out.push_back(node_->value);
  for (const Expr& child : node_->children) child.collect_vars(out);
}

std::string Expr::to_string() const { return to_string_impl(node(), nullptr); }

std::string Expr::to_string(const sym::Space& space) const {
  return to_string_impl(node(), &space);
}

std::string Expr::to_string_impl(const Node& n, const sym::Space* space) {
  auto sub = [&](const Expr& child) {
    return to_string_impl(child.node(), space);
  };
  auto binary = [&](const char* op) {
    return "(" + sub(n.children[0]) + " " + op + " " + sub(n.children[1]) +
           ")";
  };
  switch (n.kind) {
    case Kind::kBoolConst:
      return n.value != 0 ? "true" : "false";
    case Kind::kIntConst:
      return std::to_string(n.value);
    case Kind::kVar: {
      const std::string name =
          space != nullptr ? space->info(n.value).name
                           : "v" + std::to_string(n.value);
      return n.version == sym::Version::kNext ? "next(" + name + ")" : name;
    }
    case Kind::kNot:
      return "!" + sub(n.children[0]);
    case Kind::kAnd:
      return binary("&&");
    case Kind::kOr:
      return binary("||");
    case Kind::kImplies:
      return "(!" + sub(n.children[0]) + " || " + sub(n.children[1]) + ")";
    case Kind::kIff:
      return "(" + sub(n.children[0]) + " == " + sub(n.children[1]) + ")";
    case Kind::kEq:
      return binary("==");
    case Kind::kNe:
      return binary("!=");
    case Kind::kLt:
      return binary("<");
    case Kind::kLe:
      return binary("<=");
    case Kind::kGt:
      return binary(">");
    case Kind::kGe:
      return binary(">=");
    case Kind::kAdd:
      return binary("+");
    case Kind::kSub:
      return binary("-");
    case Kind::kIte:
      return "ite(" + sub(n.children[0]) + ", " + sub(n.children[1]) + ", " +
             sub(n.children[2]) + ")";
  }
  return "?";
}

// --- Operator sugar -----------------------------------------------------------------

Expr Expr::operator==(const Expr& rhs) const { return make(Kind::kEq, {*this, rhs}); }
Expr Expr::operator!=(const Expr& rhs) const { return make(Kind::kNe, {*this, rhs}); }
Expr Expr::operator<(const Expr& rhs) const { return make(Kind::kLt, {*this, rhs}); }
Expr Expr::operator<=(const Expr& rhs) const { return make(Kind::kLe, {*this, rhs}); }
Expr Expr::operator>(const Expr& rhs) const { return make(Kind::kGt, {*this, rhs}); }
Expr Expr::operator>=(const Expr& rhs) const { return make(Kind::kGe, {*this, rhs}); }
Expr Expr::operator&&(const Expr& rhs) const { return make(Kind::kAnd, {*this, rhs}); }
Expr Expr::operator||(const Expr& rhs) const { return make(Kind::kOr, {*this, rhs}); }
Expr Expr::operator!() const { return make(Kind::kNot, {*this}); }
Expr Expr::implies(const Expr& rhs) const { return make(Kind::kImplies, {*this, rhs}); }
Expr Expr::iff(const Expr& rhs) const { return make(Kind::kIff, {*this, rhs}); }
Expr Expr::operator+(const Expr& rhs) const { return make(Kind::kAdd, {*this, rhs}); }
Expr Expr::operator-(const Expr& rhs) const { return make(Kind::kSub, {*this, rhs}); }

Expr Expr::operator==(std::uint32_t rhs) const { return *this == constant(rhs); }
Expr Expr::operator!=(std::uint32_t rhs) const { return *this != constant(rhs); }
Expr Expr::operator<(std::uint32_t rhs) const { return *this < constant(rhs); }
Expr Expr::operator<=(std::uint32_t rhs) const { return *this <= constant(rhs); }
Expr Expr::operator>(std::uint32_t rhs) const { return *this > constant(rhs); }
Expr Expr::operator>=(std::uint32_t rhs) const { return *this >= constant(rhs); }
Expr Expr::operator+(std::uint32_t rhs) const { return *this + constant(rhs); }
Expr Expr::operator-(std::uint32_t rhs) const { return *this - constant(rhs); }

// --- Compilation -----------------------------------------------------------------------

bdd::Bdd Compiler::compile_bool(const Expr& e) {
  const auto& n = e.node();
  bdd::Manager& mgr = space_.manager();
  switch (n.kind) {
    case Expr::Kind::kBoolConst:
      return n.value != 0 ? mgr.bdd_true() : mgr.bdd_false();
    case Expr::Kind::kNot:
      return ~compile_bool(n.children[0]);
    case Expr::Kind::kAnd:
      return compile_bool(n.children[0]) & compile_bool(n.children[1]);
    case Expr::Kind::kOr:
      return compile_bool(n.children[0]) | compile_bool(n.children[1]);
    case Expr::Kind::kImplies:
      return compile_bool(n.children[0]).implies(compile_bool(n.children[1]));
    case Expr::Kind::kIff:
      return compile_bool(n.children[0]).iff(compile_bool(n.children[1]));
    case Expr::Kind::kEq:
      return bits_eq(compile_bits(n.children[0]),
                     compile_bits(n.children[1]));
    case Expr::Kind::kNe:
      return ~bits_eq(compile_bits(n.children[0]),
                      compile_bits(n.children[1]));
    case Expr::Kind::kLt:
      return bits_lt(compile_bits(n.children[0]),
                     compile_bits(n.children[1]));
    case Expr::Kind::kLe:
      return ~bits_lt(compile_bits(n.children[1]),
                      compile_bits(n.children[0]));
    case Expr::Kind::kGt:
      return bits_lt(compile_bits(n.children[1]),
                     compile_bits(n.children[0]));
    case Expr::Kind::kGe:
      return ~bits_lt(compile_bits(n.children[0]),
                      compile_bits(n.children[1]));
    default:
      throw std::invalid_argument(
          "Compiler::compile_bool: numeric expression used as boolean: " +
          e.to_string());
  }
}

std::vector<bdd::Bdd> Compiler::compile_bits(const Expr& e) {
  const auto& n = e.node();
  bdd::Manager& mgr = space_.manager();
  switch (n.kind) {
    case Expr::Kind::kIntConst: {
      std::vector<bdd::Bdd> bits;
      std::uint32_t v = n.value;
      do {
        bits.push_back((v & 1u) != 0 ? mgr.bdd_true() : mgr.bdd_false());
        v >>= 1;
      } while (v != 0);
      return bits;
    }
    case Expr::Kind::kVar: {
      const sym::VariableInfo& info = space_.info(n.value);
      const auto& vbits = n.version == sym::Version::kCurrent
                              ? info.cur_bits
                              : info.next_bits;
      std::vector<bdd::Bdd> bits;
      bits.reserve(vbits.size());
      for (const bdd::VarIndex b : vbits) bits.push_back(mgr.bdd_var(b));
      return bits;
    }
    case Expr::Kind::kAdd: {
      const auto a = compile_bits(n.children[0]);
      const auto b = compile_bits(n.children[1]);
      const std::size_t width = std::max(a.size(), b.size());
      std::vector<bdd::Bdd> sum;
      sum.reserve(width + 1);
      bdd::Bdd carry = mgr.bdd_false();
      for (std::size_t i = 0; i < width; ++i) {
        const bdd::Bdd ai = i < a.size() ? a[i] : mgr.bdd_false();
        const bdd::Bdd bi = i < b.size() ? b[i] : mgr.bdd_false();
        sum.push_back(ai ^ bi ^ carry);
        carry = (ai & bi) | (carry & (ai ^ bi));
      }
      sum.push_back(carry);  // extra bit: no silent wraparound
      return sum;
    }
    case Expr::Kind::kSub: {
      // a - b via two's complement within max(width)+1 bits; callers use it
      // for comparisons/decrements where the result is known non-negative.
      const auto a = compile_bits(n.children[0]);
      const auto b = compile_bits(n.children[1]);
      const std::size_t width = std::max(a.size(), b.size()) + 1;
      std::vector<bdd::Bdd> diff;
      diff.reserve(width);
      bdd::Bdd borrow = mgr.bdd_false();
      for (std::size_t i = 0; i < width; ++i) {
        const bdd::Bdd ai = i < a.size() ? a[i] : mgr.bdd_false();
        const bdd::Bdd bi = i < b.size() ? b[i] : mgr.bdd_false();
        diff.push_back(ai ^ bi ^ borrow);
        borrow = ((~ai) & (bi | borrow)) | (bi & borrow);
      }
      return diff;
    }
    case Expr::Kind::kIte: {
      const bdd::Bdd cond = compile_bool(n.children[0]);
      const auto a = compile_bits(n.children[1]);
      const auto b = compile_bits(n.children[2]);
      const std::size_t width = std::max(a.size(), b.size());
      std::vector<bdd::Bdd> out;
      out.reserve(width);
      for (std::size_t i = 0; i < width; ++i) {
        const bdd::Bdd ai = i < a.size() ? a[i] : mgr.bdd_false();
        const bdd::Bdd bi = i < b.size() ? b[i] : mgr.bdd_false();
        out.push_back(cond.ite(ai, bi));
      }
      return out;
    }
    default:
      throw std::invalid_argument(
          "Compiler::compile_bits: boolean expression used as numeric: " +
          e.to_string());
  }
}

bdd::Bdd Compiler::bits_eq(const std::vector<bdd::Bdd>& a,
                           const std::vector<bdd::Bdd>& b) {
  bdd::Manager& mgr = space_.manager();
  bdd::Bdd result = mgr.bdd_true();
  const std::size_t width = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < width; ++i) {
    const bdd::Bdd ai = i < a.size() ? a[i] : mgr.bdd_false();
    const bdd::Bdd bi = i < b.size() ? b[i] : mgr.bdd_false();
    result &= ai.iff(bi);
  }
  return result;
}

bdd::Bdd Compiler::bits_lt(const std::vector<bdd::Bdd>& a,
                           const std::vector<bdd::Bdd>& b) {
  bdd::Manager& mgr = space_.manager();
  // a < b: scan LSB to MSB, later (more significant) bits dominate.
  bdd::Bdd result = mgr.bdd_false();
  const std::size_t width = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < width; ++i) {
    const bdd::Bdd ai = i < a.size() ? a[i] : mgr.bdd_false();
    const bdd::Bdd bi = i < b.size() ? b[i] : mgr.bdd_false();
    result = ((~ai) & bi) | (ai.iff(bi) & result);
  }
  return result;
}

}  // namespace lr::lang
