#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "symbolic/space.hpp"

namespace lr::lang {

/// A small expression AST for writing guards and assignments of guarded
/// commands (the paper's action notation, e.g.
/// `d.j == BOT && f.j == 0  -->  d.j := d.g`).
///
/// Expressions are immutable and cheap to copy (shared subtrees). They are
/// either *numeric* (variables, constants, +, -, ite) or *boolean*
/// (comparisons and connectives); compile-time type errors are reported as
/// exceptions when the expression is lowered to BDDs.
///
/// Variable references default to the *current* state copy; `Expr::next()`
/// references the post-state (only meaningful inside relational guards).
class Expr {
 public:
  enum class Kind : std::uint8_t {
    kBoolConst,
    kIntConst,
    kVar,       // numeric variable reference
    kNot,
    kAnd,
    kOr,
    kImplies,
    kIff,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAdd,
    kSub,       // saturating at 0 would surprise; it wraps within width+1
    kIte,       // numeric if-then-else: ite(bool, num, num)
  };

  Expr() = default;  // empty expression; using it in compilation throws

  // --- Leaf constructors -----------------------------------------------------
  [[nodiscard]] static Expr constant(std::uint32_t value);
  [[nodiscard]] static Expr bool_const(bool value);
  [[nodiscard]] static Expr var(sym::VarId v);   ///< current-state reference
  [[nodiscard]] static Expr next(sym::VarId v);  ///< next-state reference

  // --- Composite constructors ---------------------------------------------------
  [[nodiscard]] static Expr ite(const Expr& cond, const Expr& then_e,
                                const Expr& else_e);

  [[nodiscard]] bool empty() const noexcept { return node_ == nullptr; }
  [[nodiscard]] Kind kind() const;

  /// True when the expression is boolean-valued.
  [[nodiscard]] bool is_boolean() const;

  /// Renders the expression for diagnostics ("(v0 == 2) && (v1 == 0)").
  [[nodiscard]] std::string to_string() const;

  /// Renders the expression with real variable names from `space`, in the
  /// syntax the model parser accepts (used by the .lr exporter).
  [[nodiscard]] std::string to_string(const sym::Space& space) const;

  /// Appends every variable the expression references (current or next
  /// copy alike, duplicates kept, syntactic order) to `out`. Empty
  /// expressions contribute nothing. The variable-order heuristics use
  /// this to build the action dependence graph before compilation.
  void collect_vars(std::vector<sym::VarId>& out) const;

  // Comparisons (numeric × numeric -> bool).
  [[nodiscard]] Expr operator==(const Expr& rhs) const;
  [[nodiscard]] Expr operator!=(const Expr& rhs) const;
  [[nodiscard]] Expr operator<(const Expr& rhs) const;
  [[nodiscard]] Expr operator<=(const Expr& rhs) const;
  [[nodiscard]] Expr operator>(const Expr& rhs) const;
  [[nodiscard]] Expr operator>=(const Expr& rhs) const;

  // Connectives (bool × bool -> bool).
  [[nodiscard]] Expr operator&&(const Expr& rhs) const;
  [[nodiscard]] Expr operator||(const Expr& rhs) const;
  [[nodiscard]] Expr operator!() const;
  [[nodiscard]] Expr implies(const Expr& rhs) const;
  [[nodiscard]] Expr iff(const Expr& rhs) const;

  // Arithmetic (numeric × numeric -> numeric).
  [[nodiscard]] Expr operator+(const Expr& rhs) const;
  [[nodiscard]] Expr operator-(const Expr& rhs) const;

  /// Convenience for comparisons against literals: `x == 3u`.
  [[nodiscard]] Expr operator==(std::uint32_t rhs) const;
  [[nodiscard]] Expr operator!=(std::uint32_t rhs) const;
  [[nodiscard]] Expr operator<(std::uint32_t rhs) const;
  [[nodiscard]] Expr operator<=(std::uint32_t rhs) const;
  [[nodiscard]] Expr operator>(std::uint32_t rhs) const;
  [[nodiscard]] Expr operator>=(std::uint32_t rhs) const;
  [[nodiscard]] Expr operator+(std::uint32_t rhs) const;
  [[nodiscard]] Expr operator-(std::uint32_t rhs) const;

 private:
  friend class Compiler;

  struct Node {
    Kind kind;
    std::uint32_t value = 0;  // IntConst value / BoolConst (0/1) / VarId
    sym::Version version = sym::Version::kCurrent;  // for kVar
    std::vector<Expr> children;
  };

  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  [[nodiscard]] static Expr make(Kind kind, std::vector<Expr> children);
  [[nodiscard]] static std::string to_string_impl(const Node& n,
                                                  const sym::Space* space);
  [[nodiscard]] const Node& node() const;

  std::shared_ptr<const Node> node_;
};

/// Lowers expressions to BDDs over a Space.
///
/// Boolean expressions become single BDDs; numeric expressions become
/// little-endian bit vectors, zero-extended as needed. Comparisons are
/// ripple comparators, addition is a ripple-carry adder with one extra
/// carry bit (so `x + 1 == d` is expressible for every domain value).
class Compiler {
 public:
  explicit Compiler(sym::Space& space) : space_(space) {}

  /// Compiles a boolean expression; throws std::invalid_argument on type
  /// errors or empty expressions.
  [[nodiscard]] bdd::Bdd compile_bool(const Expr& e);

  /// Compiles a numeric expression to its value bits (LSB first).
  [[nodiscard]] std::vector<bdd::Bdd> compile_bits(const Expr& e);

 private:
  [[nodiscard]] bdd::Bdd bits_eq(const std::vector<bdd::Bdd>& a,
                                 const std::vector<bdd::Bdd>& b);
  [[nodiscard]] bdd::Bdd bits_lt(const std::vector<bdd::Bdd>& a,
                                 const std::vector<bdd::Bdd>& b);

  sym::Space& space_;
};

}  // namespace lr::lang
