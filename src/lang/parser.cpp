#include "lang/parser.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "lang/action.hpp"

namespace lr::lang {

namespace {

// --- Lexer ---------------------------------------------------------------------

enum class Tok {
  kEnd,
  kIdent,   // also keywords; text in `text`
  kNumber,  // value in `number`
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kSemicolon,
  kColon,
  kComma,
  kArrow,     // ->
  kAssign,    // :=
  kDotDot,    // ..
  kLCurlySet, // reuse kLBrace? sets use { } too; distinguished by context
  kOr,        // ||
  kAnd,       // &&
  kNot,       // !
  kEq,        // ==
  kNe,        // !=
  kLe,        // <=
  kLt,        // <
  kGe,        // >=
  kGt,        // >
  kPlus,      // +
  kMinus,     // -
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::uint32_t number = 0;
  std::size_t line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) { advance(); }

  [[nodiscard]] const Token& peek() const noexcept { return current_; }
  [[nodiscard]] std::size_t line() const noexcept { return current_.line; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_space_and_comments();
    current_ = Token{};
    current_.line = line_;
    if (pos_ >= src_.size()) {
      current_.kind = Tok::kEnd;
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_' || src_[pos_] == '.')) {
        // A ".." ends the identifier (range syntax).
        if (src_[pos_] == '.' && pos_ + 1 < src_.size() &&
            src_[pos_ + 1] == '.') {
          break;
        }
        ++pos_;
      }
      current_.kind = Tok::kIdent;
      current_.text = src_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t value = 0;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        value = value * 10 + static_cast<std::uint64_t>(src_[pos_] - '0');
        if (value > 0xffffffffull) throw ParseError(line_, "number too large");
        ++pos_;
      }
      current_.kind = Tok::kNumber;
      current_.number = static_cast<std::uint32_t>(value);
      return;
    }
    auto two = [&](char a, char b) {
      return c == a && pos_ + 1 < src_.size() && src_[pos_ + 1] == b;
    };
    if (two('-', '>')) { pos_ += 2; current_.kind = Tok::kArrow; return; }
    if (two(':', '=')) { pos_ += 2; current_.kind = Tok::kAssign; return; }
    if (two('.', '.')) { pos_ += 2; current_.kind = Tok::kDotDot; return; }
    if (two('|', '|')) { pos_ += 2; current_.kind = Tok::kOr; return; }
    if (two('&', '&')) { pos_ += 2; current_.kind = Tok::kAnd; return; }
    if (two('=', '=')) { pos_ += 2; current_.kind = Tok::kEq; return; }
    if (two('!', '=')) { pos_ += 2; current_.kind = Tok::kNe; return; }
    if (two('<', '=')) { pos_ += 2; current_.kind = Tok::kLe; return; }
    if (two('>', '=')) { pos_ += 2; current_.kind = Tok::kGe; return; }
    ++pos_;
    switch (c) {
      case '{': current_.kind = Tok::kLBrace; return;
      case '}': current_.kind = Tok::kRBrace; return;
      case '(': current_.kind = Tok::kLParen; return;
      case ')': current_.kind = Tok::kRParen; return;
      case ';': current_.kind = Tok::kSemicolon; return;
      case ':': current_.kind = Tok::kColon; return;
      case ',': current_.kind = Tok::kComma; return;
      case '!': current_.kind = Tok::kNot; return;
      case '<': current_.kind = Tok::kLt; return;
      case '>': current_.kind = Tok::kGt; return;
      case '+': current_.kind = Tok::kPlus; return;
      case '-': current_.kind = Tok::kMinus; return;
      default:
        throw ParseError(line_, std::string("unexpected character '") + c +
                                    "'");
    }
  }

  void skip_space_and_comments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  Token current_;
};

// --- Parser --------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& source) : lexer_(source) {}

  std::unique_ptr<prog::DistributedProgram> parse() {
    expect_keyword("program");
    const std::string name = expect_ident();
    expect(Tok::kSemicolon);
    program_ = std::make_unique<prog::DistributedProgram>(name);

    std::vector<Expr> invariants;
    std::vector<Expr> bad_states;
    std::vector<Expr> bad_transitions;

    while (lexer_.peek().kind != Tok::kEnd) {
      const std::string keyword = expect_ident();
      if (keyword == "var") {
        parse_var();
      } else if (keyword == "process") {
        parse_process();
      } else if (keyword == "fault") {
        program_->add_fault(parse_guarded_command());
        expect(Tok::kSemicolon);
      } else if (keyword == "invariant") {
        invariants.push_back(parse_expr());
        expect(Tok::kSemicolon);
      } else if (keyword == "bad_state") {
        bad_states.push_back(parse_expr());
        expect(Tok::kSemicolon);
      } else if (keyword == "bad_transition") {
        bad_transitions.push_back(parse_expr());
        expect(Tok::kSemicolon);
      } else {
        throw ParseError(lexer_.line(), "unexpected '" + keyword + "'");
      }
    }

    if (invariants.empty()) {
      throw ParseError(lexer_.line(), "model declares no invariant");
    }
    Expr invariant = invariants.front();
    for (std::size_t i = 1; i < invariants.size(); ++i) {
      invariant = invariant && invariants[i];
    }
    program_->set_invariant(invariant);
    for (const Expr& e : bad_states) program_->add_bad_states(e);
    for (const Expr& e : bad_transitions) program_->add_bad_transitions(e);
    return std::move(program_);
  }

 private:
  // --- declarations ---------------------------------------------------------
  void parse_var() {
    const std::size_t line = lexer_.line();
    const std::string name = expect_ident();
    expect(Tok::kColon);
    const std::uint32_t lo = expect_number();
    expect(Tok::kDotDot);
    const std::uint32_t hi = expect_number();
    expect(Tok::kSemicolon);
    if (lo != 0) throw ParseError(line, "variable ranges must start at 0");
    if (hi < lo) throw ParseError(line, "empty variable range");
    if (vars_.count(name) != 0) {
      throw ParseError(line, "duplicate variable '" + name + "'");
    }
    vars_[name] = program_->add_variable(name, hi + 1);
  }

  void parse_process() {
    prog::Process process;
    process.name = expect_ident();
    expect(Tok::kLBrace);
    while (lexer_.peek().kind != Tok::kRBrace) {
      const std::string keyword = expect_ident();
      if (keyword == "reads") {
        parse_var_list(process.reads);
      } else if (keyword == "writes") {
        parse_var_list(process.writes);
      } else if (keyword == "action") {
        process.actions.push_back(parse_guarded_command());
        expect(Tok::kSemicolon);
      } else {
        throw ParseError(lexer_.line(),
                         "unexpected '" + keyword + "' in process");
      }
    }
    expect(Tok::kRBrace);
    program_->add_process(std::move(process));
  }

  void parse_var_list(std::vector<sym::VarId>& out) {
    out.push_back(lookup(expect_ident()));
    while (lexer_.peek().kind == Tok::kComma) {
      (void)lexer_.take();
      out.push_back(lookup(expect_ident()));
    }
    expect(Tok::kSemicolon);
  }

  Action parse_guarded_command() {
    Action a;
    a.name = expect_ident();
    expect(Tok::kColon);
    a.guard = parse_expr();
    expect(Tok::kArrow);
    // Assignment list: v := e | v := {e, e} | havoc v.
    while (true) {
      const std::size_t line = lexer_.line();
      const std::string first = expect_ident();
      if (first == "havoc") {
        a.havoc.push_back(lookup(expect_ident()));
      } else {
        const sym::VarId v = lookup_at(first, line);
        expect(Tok::kAssign);
        if (lexer_.peek().kind == Tok::kLBrace) {
          (void)lexer_.take();
          std::vector<Expr> alternatives{parse_expr()};
          while (lexer_.peek().kind == Tok::kComma) {
            (void)lexer_.take();
            alternatives.push_back(parse_expr());
          }
          expect(Tok::kRBrace);
          a.assigns.push_back({v, std::move(alternatives)});
        } else {
          a.assigns.push_back({v, {parse_expr()}});
        }
      }
      if (lexer_.peek().kind != Tok::kComma) break;
      (void)lexer_.take();
    }
    return a;
  }

  // --- expressions (precedence climbing) --------------------------------------
  Expr parse_expr() { return parse_or(); }

  Expr parse_or() {
    Expr left = parse_and();
    while (lexer_.peek().kind == Tok::kOr) {
      (void)lexer_.take();
      left = left || parse_and();
    }
    return left;
  }

  Expr parse_and() {
    Expr left = parse_not();
    while (lexer_.peek().kind == Tok::kAnd) {
      (void)lexer_.take();
      left = left && parse_not();
    }
    return left;
  }

  Expr parse_not() {
    if (lexer_.peek().kind == Tok::kNot) {
      (void)lexer_.take();
      return !parse_not();
    }
    return parse_comparison();
  }

  Expr parse_comparison() {
    Expr left = parse_sum();
    switch (lexer_.peek().kind) {
      case Tok::kEq: (void)lexer_.take(); return left == parse_sum();
      case Tok::kNe: (void)lexer_.take(); return left != parse_sum();
      case Tok::kLt: (void)lexer_.take(); return left < parse_sum();
      case Tok::kLe: (void)lexer_.take(); return left <= parse_sum();
      case Tok::kGt: (void)lexer_.take(); return left > parse_sum();
      case Tok::kGe: (void)lexer_.take(); return left >= parse_sum();
      default: return left;
    }
  }

  Expr parse_sum() {
    Expr left = parse_atom();
    while (true) {
      if (lexer_.peek().kind == Tok::kPlus) {
        (void)lexer_.take();
        left = left + parse_atom();
      } else if (lexer_.peek().kind == Tok::kMinus) {
        (void)lexer_.take();
        left = left - parse_atom();
      } else {
        return left;
      }
    }
  }

  Expr parse_atom() {
    const Token t = lexer_.take();
    switch (t.kind) {
      case Tok::kNumber:
        return Expr::constant(t.number);
      case Tok::kLParen: {
        Expr inner = parse_expr();
        expect(Tok::kRParen);
        return inner;
      }
      case Tok::kIdent: {
        if (t.text == "true") return Expr::bool_const(true);
        if (t.text == "false") return Expr::bool_const(false);
        if (t.text == "next") {
          expect(Tok::kLParen);
          const std::string name = expect_ident();
          expect(Tok::kRParen);
          return Expr::next(lookup_at(name, t.line));
        }
        if (t.text == "ite") {
          expect(Tok::kLParen);
          Expr cond = parse_expr();
          expect(Tok::kComma);
          Expr then_e = parse_expr();
          expect(Tok::kComma);
          Expr else_e = parse_expr();
          expect(Tok::kRParen);
          return Expr::ite(cond, then_e, else_e);
        }
        return Expr::var(lookup_at(t.text, t.line));
      }
      default:
        throw ParseError(t.line, "expected an expression");
    }
  }

  // --- token helpers -----------------------------------------------------------
  void expect(Tok kind) {
    const Token t = lexer_.take();
    if (t.kind != kind) {
      throw ParseError(t.line, "unexpected token" +
                                   (t.text.empty() ? std::string()
                                                   : " '" + t.text + "'"));
    }
  }

  std::string expect_ident() {
    const Token t = lexer_.take();
    if (t.kind != Tok::kIdent) {
      throw ParseError(t.line, "expected an identifier");
    }
    return t.text;
  }

  void expect_keyword(const std::string& keyword) {
    const Token t = lexer_.take();
    if (t.kind != Tok::kIdent || t.text != keyword) {
      throw ParseError(t.line, "expected '" + keyword + "'");
    }
  }

  std::uint32_t expect_number() {
    const Token t = lexer_.take();
    if (t.kind != Tok::kNumber) throw ParseError(t.line, "expected a number");
    return t.number;
  }

  sym::VarId lookup(const std::string& name) {
    return lookup_at(name, lexer_.line());
  }

  sym::VarId lookup_at(const std::string& name, std::size_t line) {
    const auto it = vars_.find(name);
    if (it == vars_.end()) {
      throw ParseError(line, "unknown variable '" + name + "'");
    }
    return it->second;
  }

  Lexer lexer_;
  std::unique_ptr<prog::DistributedProgram> program_;
  std::map<std::string, sym::VarId> vars_;
};

}  // namespace

std::unique_ptr<prog::DistributedProgram> parse_program(
    const std::string& source) {
  Parser parser(source);
  return parser.parse();
}

std::unique_ptr<prog::DistributedProgram> parse_program_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open model file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_program(buffer.str());
}

double estimate_state_space(const std::string& source) {
  // One lexer pass over the declarations only: multiply the domain sizes
  // of every `var x : lo..hi;` without compiling anything. Malformed input
  // yields a partial estimate (or -1); the real parse reports the error.
  double states = 1.0;
  bool any = false;
  try {
    Lexer lex(source);
    while (lex.peek().kind != Tok::kEnd) {
      if (lex.peek().kind != Tok::kIdent || lex.peek().text != "var") {
        lex.take();
        continue;
      }
      lex.take();  // var
      if (lex.peek().kind != Tok::kIdent) continue;
      lex.take();  // name
      if (lex.peek().kind != Tok::kColon) continue;
      lex.take();
      if (lex.peek().kind != Tok::kNumber) continue;
      const double lo = lex.take().number;
      if (lex.peek().kind != Tok::kDotDot) continue;
      lex.take();
      if (lex.peek().kind != Tok::kNumber) continue;
      const double hi = lex.take().number;
      if (hi >= lo) {
        states *= hi - lo + 1.0;
        any = true;
      }
    }
  } catch (const ParseError&) {
    // Lexing stopped early; fall through with what was accumulated.
  }
  return any ? states : -1.0;
}

double estimate_state_space_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return -1.0;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return estimate_state_space(buffer.str());
}

}  // namespace lr::lang
