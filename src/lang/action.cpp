#include "lang/action.hpp"

#include <stdexcept>
#include <unordered_set>

namespace lr::lang {

bdd::Bdd compile_action(sym::Space& space, const Action& a) {
  if (a.guard.empty()) {
    throw std::invalid_argument("compile_action: action '" + a.name +
                                "' has an empty guard");
  }
  Compiler compiler(space);
  bdd::Bdd t = compiler.compile_bool(a.guard);

  std::unordered_set<sym::VarId> touched;
  for (const Assignment& assign : a.assigns) {
    if (!touched.insert(assign.var).second) {
      throw std::invalid_argument("compile_action: variable assigned twice in '" +
                                  a.name + "'");
    }
    if (assign.alternatives.empty()) {
      throw std::invalid_argument(
          "compile_action: assignment with no alternatives in '" + a.name +
          "'");
    }
    bdd::Bdd alt = space.bdd_false();
    for (const Expr& e : assign.alternatives) {
      alt |= compiler.compile_bool(Expr::next(assign.var) == e);
    }
    t &= alt;
  }
  for (const sym::VarId v : a.havoc) {
    if (!touched.insert(v).second) {
      throw std::invalid_argument(
          "compile_action: variable both assigned and havoced in '" + a.name +
          "'");
    }
    // No constraint: the next value is arbitrary within the domain (the
    // domain bound comes from valid_pair below).
  }
  // Frame rule: everything not written keeps its value.
  for (sym::VarId v = 0; v < space.variable_count(); ++v) {
    if (touched.count(v) == 0) t &= space.unchanged(v);
  }
  // Keep both endpoints inside the valid encodings of every domain.
  t &= space.valid_pair();
  return t;
}

bdd::Bdd compile_actions(sym::Space& space, std::span<const Action> actions) {
  bdd::Bdd result = space.bdd_false();
  for (const Action& a : actions) result |= compile_action(space, a);
  return result;
}

}  // namespace lr::lang
