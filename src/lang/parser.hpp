#pragma once

#include <memory>
#include <string>

#include "program/distributed_program.hpp"

namespace lr::lang {

/// Error raised by the model parser; carries a line number and message.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parses the textual model format into a DistributedProgram.
///
/// The format (see models/*.lr for full examples):
///
/// ```
/// program name;
/// var x : 0..3;                      // finite-domain variable
/// var d.g : 0..1;                    // dots allowed in identifiers
///
/// process p0 {
///   reads x, d.g;
///   writes x;
///   action reset: x == 1 -> x := 0;            // guarded command
///   action pick:  x == 0 -> x := {1, 2};       // nondeterministic choice
/// }
///
/// fault glitch: x == 0 -> x := 1;              // faults: same syntax,
/// fault chaos:  true   -> havoc x;             // no read/write limits
///
/// invariant x == 0;                            // conjoined if repeated
/// bad_state x == 3;                            // disjoined if repeated
/// bad_transition x == 1 && next(x) != 1;       // next(v) = post-state
/// ```
///
/// Expressions support || && ! == != < <= > >= + - integer literals,
/// true/false, ite(c, a, b) and parentheses. Throws ParseError on
/// malformed input.
[[nodiscard]] std::unique_ptr<prog::DistributedProgram> parse_program(
    const std::string& source);

/// Reads `path` and parses it.
[[nodiscard]] std::unique_ptr<prog::DistributedProgram> parse_program_file(
    const std::string& path);

/// Cheap state-space estimate: the product of the `var x : lo..hi;`
/// domain sizes, from a declaration-only lexer pass (no program is built).
/// Returns -1 when no declaration is found or the file cannot be read.
/// The batch executor uses this as the predicted task cost for
/// longest-first dispatch.
[[nodiscard]] double estimate_state_space(const std::string& source);
[[nodiscard]] double estimate_state_space_file(const std::string& path);

}  // namespace lr::lang
