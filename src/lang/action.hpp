#pragma once

#include <string>
#include <vector>

#include "lang/expr.hpp"

namespace lr::lang {

/// One deterministic-or-nondeterministic assignment `v' ∈ {e_1, .., e_k}`.
/// A single alternative is an ordinary assignment `v := e`.
struct Assignment {
  sym::VarId var;
  std::vector<Expr> alternatives;
};

/// A guarded command `name: guard --> assignments` (the paper's action
/// notation, Section VI).
///
/// Semantics as a transition predicate:
///   guard(s)  ∧  (∧ over assignments: v' = e_i(s) for some alternative i)
///   ∧ (v' = v for every variable neither assigned nor havoced)
///   ∧ (the next state is domain-valid)
///
/// `havoc` lists variables whose next value is unconstrained (used to model
/// byzantine writes: `b.j --> d.j := arbitrary`). Guards normally read the
/// current state only; they may also reference next-state values
/// (Expr::next) for fully relational constraints.
struct Action {
  std::string name;
  Expr guard;
  std::vector<Assignment> assigns;
  std::vector<sym::VarId> havoc;

  /// Fluent helpers so case studies read like the paper's actions.
  Action&& assign(sym::VarId v, Expr e) && {
    assigns.push_back({v, {std::move(e)}});
    return std::move(*this);
  }
  Action&& choose(sym::VarId v, std::vector<Expr> alternatives) && {
    assigns.push_back({v, std::move(alternatives)});
    return std::move(*this);
  }
  Action&& havoc_var(sym::VarId v) && {
    havoc.push_back(v);
    return std::move(*this);
  }
};

/// Creates an action with the given name and guard (chain assign/choose).
[[nodiscard]] inline Action action(std::string name, Expr guard) {
  Action a;
  a.name = std::move(name);
  a.guard = std::move(guard);
  return a;
}

/// Lowers an action to its transition predicate over `space`.
/// Throws std::invalid_argument for ill-typed guards, duplicate
/// assignments, or assignment/havoc conflicts.
[[nodiscard]] bdd::Bdd compile_action(sym::Space& space, const Action& a);

/// Lowers a list of actions to the union of their transition predicates.
[[nodiscard]] bdd::Bdd compile_actions(sym::Space& space,
                                       std::span<const Action> actions);

}  // namespace lr::lang
