#include "explicit_model/explicit_model.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <stdexcept>
#include <unordered_set>

namespace lr::xmodel {

ExplicitModel::ExplicitModel(prog::DistributedProgram& program,
                             std::size_t max_states)
    : program_(program) {
  sym::Space& space = program.space();
  domains_.reserve(space.variable_count());
  radix_.reserve(space.variable_count());
  for (sym::VarId v = 0; v < space.variable_count(); ++v) {
    const std::uint32_t domain = space.info(v).domain;
    domains_.push_back(domain);
    radix_.push_back(num_states_);
    if (num_states_ > max_states / domain + 1) {
      throw std::invalid_argument(
          "ExplicitModel: state space too large for explicit checking");
    }
    num_states_ *= domain;
  }
  if (num_states_ > max_states) {
    throw std::invalid_argument(
        "ExplicitModel: state space too large for explicit checking");
  }
}

std::size_t ExplicitModel::encode(
    std::span<const std::uint32_t> values) const {
  std::size_t index = 0;
  for (std::size_t v = 0; v < domains_.size(); ++v) {
    index += values[v] * radix_[v];
  }
  return index;
}

std::vector<std::uint32_t> ExplicitModel::decode(std::size_t index) const {
  std::vector<std::uint32_t> values(domains_.size());
  for (std::size_t v = 0; v < domains_.size(); ++v) {
    values[v] = static_cast<std::uint32_t>(index / radix_[v] % domains_[v]);
  }
  return values;
}

std::vector<bool> ExplicitModel::states_of(const bdd::Bdd& set) {
  std::vector<bool> bitmap(num_states_, false);
  program_.space().foreach_state(set,
                                 [&](std::span<const std::uint32_t> values) {
                                   bitmap[encode(values)] = true;
                                 });
  return bitmap;
}

std::vector<std::vector<std::uint32_t>> ExplicitModel::adjacency_of(
    const bdd::Bdd& rel) {
  std::vector<std::vector<std::uint32_t>> adjacency(num_states_);
  program_.space().foreach_transition(
      rel, [&](std::span<const std::uint32_t> from,
               std::span<const std::uint32_t> to) {
        adjacency[encode(from)].push_back(
            static_cast<std::uint32_t>(encode(to)));
      });
  return adjacency;
}

std::vector<bool> ExplicitModel::reachable_from(
    const std::vector<bool>& from,
    const std::vector<std::vector<std::uint32_t>>& adjacency) const {
  std::vector<bool> seen(num_states_, false);
  std::deque<std::uint32_t> queue;
  for (std::size_t s = 0; s < num_states_; ++s) {
    if (from[s]) {
      seen[s] = true;
      queue.push_back(static_cast<std::uint32_t>(s));
    }
  }
  while (!queue.empty()) {
    const std::uint32_t s = queue.front();
    queue.pop_front();
    for (const std::uint32_t t : adjacency[s]) {
      if (!seen[t]) {
        seen[t] = true;
        queue.push_back(t);
      }
    }
  }
  return seen;
}

void ExplicitModel::fail(Report& report, const std::string& message) const {
  report.failures.push_back(message);
}

ExplicitModel::Report ExplicitModel::verify(
    const repair::RepairResult& result) {
  Report report;
  if (!result.success) {
    fail(report, "result is not marked successful");
    return report;
  }
  sym::Space& space = program_.space();

  // --- Extract everything once --------------------------------------------------
  const std::vector<bool> s_orig = states_of(program_.invariant());
  const std::vector<bool> s_new = states_of(result.invariant);
  const std::vector<bool> bad_states = states_of(program_.safety().bad_states);
  auto delta_orig = adjacency_of(program_.program_delta());
  auto faults = adjacency_of(program_.fault_delta());

  std::vector<std::vector<std::vector<std::uint32_t>>> process_adj;
  process_adj.reserve(result.process_deltas.size());
  std::vector<std::vector<std::uint32_t>> actions(num_states_);
  for (const bdd::Bdd& dj : result.process_deltas) {
    process_adj.push_back(adjacency_of(dj));
    for (std::size_t s = 0; s < num_states_; ++s) {
      for (const std::uint32_t t : process_adj.back()[s]) {
        actions[s].push_back(t);
      }
    }
  }
  // Definition 18: stutter where no action is enabled.
  std::vector<std::vector<std::uint32_t>> delta(num_states_);
  for (std::size_t s = 0; s < num_states_; ++s) {
    delta[s] = actions[s];
    if (delta[s].empty()) delta[s].push_back(static_cast<std::uint32_t>(s));
  }

  // Bad-transition membership by direct BDD evaluation (the bad-transition
  // relation is typically huge — a fraction of the whole transition space —
  // so enumerating it would dwarf everything else here).
  bdd::Manager& mgr = space.manager();
  const std::unique_ptr<bool[]> bits(new bool[mgr.var_count()]());
  auto is_bad_step = [&](std::size_t a, std::size_t b) {
    const auto from = decode(a);
    const auto to = decode(b);
    for (sym::VarId v = 0; v < space.variable_count(); ++v) {
      const sym::VariableInfo& info = space.info(v);
      for (std::uint32_t k = 0; k < info.bits; ++k) {
        bits[info.cur_bits[k]] = ((from[v] >> k) & 1u) != 0;
        bits[info.next_bits[k]] = ((to[v] >> k) & 1u) != 0;
      }
    }
    return mgr.eval(program_.safety().bad_trans,
                    std::span<const bool>(bits.get(), mgr.var_count()));
  };

  // --- Invariant requirements ------------------------------------------------------
  bool any_invariant = false;
  for (std::size_t s = 0; s < num_states_; ++s) {
    if (!s_new[s]) continue;
    any_invariant = true;
    if (!s_orig[s]) {
      fail(report, "S' contains a state outside S: " +
                       space.state_to_string(decode(s)));
      break;
    }
  }
  if (!any_invariant) fail(report, "S' is empty");

  // δ'|S' ⊆ δ_P|S' and closure of S'.
  for (std::size_t s = 0; s < num_states_ && report.failures.size() < 8; ++s) {
    if (!s_new[s]) continue;
    for (const std::uint32_t t : delta[s]) {
      if (!s_new[t]) {
        fail(report, "S' not closed at " + space.state_to_string(decode(s)));
        break;
      }
      if (std::find(delta_orig[s].begin(), delta_orig[s].end(), t) ==
          delta_orig[s].end()) {
        fail(report,
             "new behavior inside S' at " + space.state_to_string(decode(s)));
        break;
      }
    }
  }

  // --- Fault span and safety --------------------------------------------------------
  // Reach of δ' ∪ f from S'.
  std::vector<std::vector<std::uint32_t>> delta_and_faults(num_states_);
  for (std::size_t s = 0; s < num_states_; ++s) {
    delta_and_faults[s] = delta[s];
    delta_and_faults[s].insert(delta_and_faults[s].end(), faults[s].begin(),
                               faults[s].end());
  }
  const std::vector<bool> span = reachable_from(s_new, delta_and_faults);
  for (std::size_t s = 0; s < num_states_; ++s) {
    if (!span[s]) continue;
    if (bad_states[s]) {
      fail(report, "bad state reachable: " + space.state_to_string(decode(s)));
      break;
    }
  }
  for (std::size_t s = 0; s < num_states_ && report.failures.size() < 8; ++s) {
    if (!span[s]) continue;
    for (const std::uint32_t t : delta_and_faults[s]) {
      if (is_bad_step(s, t)) {
        fail(report, "bad transition executable from " +
                         space.state_to_string(decode(s)));
        break;
      }
    }
  }

  // --- Recovery: every fault-free suffix from the span reaches S' --------------------
  // (a) A stutter state in the span must be a legitimate terminal in S'.
  for (std::size_t s = 0; s < num_states_; ++s) {
    if (!span[s] || !actions[s].empty()) continue;
    const bool original_terminal =
        std::find(delta_orig[s].begin(), delta_orig[s].end(),
                  static_cast<std::uint32_t>(s)) != delta_orig[s].end();
    if (!s_new[s] || !original_terminal) {
      fail(report, "illegitimate deadlock at " +
                       space.state_to_string(decode(s)));
      break;
    }
  }
  // (b) No cycle of program transitions stays outside S' (iterative DFS
  // with colors over span \ S').
  {
    std::vector<std::uint8_t> color(num_states_, 0);  // 0 white 1 grey 2 black
    bool cycle = false;
    for (std::size_t root = 0; root < num_states_ && !cycle; ++root) {
      if (!span[root] || s_new[root] || color[root] != 0) continue;
      std::vector<std::pair<std::uint32_t, std::size_t>> stack;
      stack.push_back({static_cast<std::uint32_t>(root), 0});
      color[root] = 1;
      while (!stack.empty() && !cycle) {
        auto& [s, next_child] = stack.back();
        const auto& succ = actions[s];
        bool descended = false;
        while (next_child < succ.size()) {
          const std::uint32_t t = succ[next_child++];
          if (s_new[t] || !span[t]) continue;  // leaving the region is fine
          if (color[t] == 1) {
            cycle = true;
            fail(report, "livelock outside S' through " +
                             space.state_to_string(decode(t)));
            break;
          }
          if (color[t] == 0) {
            color[t] = 1;
            stack.push_back({t, 0});
            descended = true;
            break;
          }
        }
        if (!descended && !cycle) {
          color[s] = 2;
          stack.pop_back();
        }
      }
    }
  }

  // --- Realizability (Definitions 17, 19, 20) -----------------------------------------
  for (std::size_t j = 0; j < result.process_deltas.size(); ++j) {
    const prog::Process& proc = program_.process(j);
    std::vector<bool> writable(domains_.size(), false);
    for (const sym::VarId w : proc.writes) writable[w] = true;
    std::vector<bool> readable(domains_.size(), false);
    for (const sym::VarId r : proc.reads) readable[r] = true;

    // Pack transitions of δ_j into a set for the group check.
    std::unordered_set<std::uint64_t> in_dj;
    for (std::size_t s = 0; s < num_states_; ++s) {
      for (const std::uint32_t t : process_adj[j][s]) {
        in_dj.insert(static_cast<std::uint64_t>(s) << 32 | t);
      }
    }

    bool process_ok = true;
    for (std::size_t s = 0; s < num_states_ && process_ok; ++s) {
      const auto from = decode(s);
      for (const std::uint32_t t : process_adj[j][s]) {
        const auto to = decode(t);
        if (s == t) {
          fail(report, "self-loop in delta_" + proc.name);
          process_ok = false;
          break;
        }
        // Write restriction.
        for (std::size_t v = 0; v < domains_.size(); ++v) {
          if (!writable[v] && from[v] != to[v]) {
            fail(report, "write restriction violated by " + proc.name);
            process_ok = false;
            break;
          }
        }
        if (!process_ok) break;
        // Read restriction: enumerate every valuation of the unreadable
        // variables (kept equal across the transition) and demand the
        // corresponding member of group_j(s, t).
        std::vector<sym::VarId> unreadable;
        for (sym::VarId v = 0; v < domains_.size(); ++v) {
          if (!readable[v]) unreadable.push_back(v);
        }
        std::vector<std::uint32_t> member_from = from;
        std::vector<std::uint32_t> member_to = to;
        // Odometer over the unreadable variables.
        std::vector<std::uint32_t> counter(unreadable.size(), 0);
        bool done = unreadable.empty();
        bool group_ok = true;
        while (true) {
          for (std::size_t i = 0; i < unreadable.size(); ++i) {
            member_from[unreadable[i]] = counter[i];
            member_to[unreadable[i]] = counter[i];
          }
          const std::uint64_t key =
              static_cast<std::uint64_t>(encode(member_from)) << 32 |
              encode(member_to);
          if (in_dj.count(key) == 0) {
            group_ok = false;
            break;
          }
          if (done) break;
          std::size_t i = 0;
          while (i < counter.size() && ++counter[i] == domains_[unreadable[i]]) {
            counter[i++] = 0;
          }
          if (i == counter.size()) break;
        }
        if (!group_ok) {
          fail(report, "read restriction (group) violated by " + proc.name +
                           " at " + space.state_to_string(from));
          process_ok = false;
          break;
        }
      }
    }
  }

  report.ok = report.failures.empty();
  return report;
}

}  // namespace lr::xmodel
