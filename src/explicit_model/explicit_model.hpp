#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "program/distributed_program.hpp"
#include "repair/types.hpp"

namespace lr::xmodel {

/// Explicit-state mirror of a DistributedProgram, used to cross-validate
/// the symbolic machinery on small instances: every BDD-level answer
/// (reachability, masking tolerance, realizability) is re-derived here with
/// plain graph algorithms and direct enumeration straight from the
/// definitions of Section II/III — no BDDs on the checking path beyond the
/// initial extraction of transition lists.
class ExplicitModel {
 public:
  /// Builds the mirror. Throws std::invalid_argument when the state space
  /// exceeds `max_states` (the mirror is quadratic-ish; keep it small).
  explicit ExplicitModel(prog::DistributedProgram& program,
                         std::size_t max_states = 1u << 22);

  [[nodiscard]] std::size_t state_count() const noexcept { return num_states_; }

  /// Mixed-radix encoding of variable values to a state index.
  [[nodiscard]] std::size_t encode(std::span<const std::uint32_t> values) const;

  /// Inverse of encode().
  [[nodiscard]] std::vector<std::uint32_t> decode(std::size_t index) const;

  /// Extracts a state predicate as a bitmap indexed by state.
  [[nodiscard]] std::vector<bool> states_of(const bdd::Bdd& set);

  /// Extracts a transition predicate as an adjacency list.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> adjacency_of(
      const bdd::Bdd& rel);

  /// Forward reachability by plain BFS.
  [[nodiscard]] std::vector<bool> reachable_from(
      const std::vector<bool>& from,
      const std::vector<std::vector<std::uint32_t>>& adjacency) const;

  /// Explicit verdict on a repair result; `failures` lists every violated
  /// requirement in human-readable form.
  struct Report {
    bool ok = false;
    std::vector<std::string> failures;
  };

  /// Re-checks masking fault-tolerance and realizability of `result`
  /// against the program, straight from Definitions 15, 19 and 20.
  [[nodiscard]] Report verify(const repair::RepairResult& result);

 private:
  void fail(Report& report, const std::string& message) const;

  prog::DistributedProgram& program_;
  std::size_t num_states_ = 1;
  std::vector<std::uint32_t> domains_;
  std::vector<std::size_t> radix_;  // radix_[v] = stride of variable v
};

}  // namespace lr::xmodel
