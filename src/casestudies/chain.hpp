#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "program/distributed_program.hpp"

namespace lr::cs {

/// Parameters of the stabilizing-chain case study (the paper's Sc^n rows).
struct ChainOptions {
  /// Number of non-root processes (variables x_1 .. x_length).
  std::size_t length = 5;
  /// Domain size of each chain variable (the paper's instances need ~8-10
  /// values to reach 10^19..10^30 states).
  std::uint32_t domain = 4;
  bdd::Manager::Options manager_options = {};
};

/// Builds the stabilizing chain:
///
/// Variables x_0 .. x_n over {0..domain-1}; x_0 is the root (written by no
/// process). Process i (1..n) reads {x_{i-1}, x_i}, writes {x_i}, and runs
///   x_i ≠ x_{i-1}  -->  x_i := x_{i-1}
///
/// Invariant: ∀i ≥ 1: x_i = x_{i-1} (the chain agrees with the root).
/// Faults corrupt any single variable (including the root) to an arbitrary
/// value. The safety specification is empty: the repair problem is pure
/// convergence, i.e. masking reduces to guaranteed recovery.
[[nodiscard]] std::unique_ptr<prog::DistributedProgram> make_chain(
    const ChainOptions& options);

}  // namespace lr::cs
