#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "program/distributed_program.hpp"

namespace lr::cs {

/// Parameters of the token-ring case study (Dijkstra's K-state ring).
struct TokenRingOptions {
  /// Number of processes around the ring (including the root).
  std::size_t processes = 4;
  /// Counter domain K. Dijkstra's ring self-stabilizes when K >= processes;
  /// smaller K makes the repair problem harder or unsolvable — useful for
  /// negative tests.
  std::uint32_t domain = 4;
  bdd::Manager::Options manager_options = {};
};

/// Builds Dijkstra's K-state self-stabilizing token ring as a repair
/// problem:
///
/// Variables x_0 .. x_{n-1} over {0..K-1}. The root p_0 holds the token
/// when x_0 = x_{n-1} and passes it by x_0 := x_{n-1} + 1 mod K; process
/// p_i (i > 0) holds the token when x_i ≠ x_{i-1} and passes it by
/// x_i := x_{i-1}. Each process reads only its own and its left neighbor's
/// counter and writes its own.
///
/// Invariant: exactly one process holds the token. Faults corrupt any
/// single counter; the safety specification is empty (mutual exclusion is
/// re-established by convergence, which is what masking tolerance with an
/// empty safety specification demands).
[[nodiscard]] std::unique_ptr<prog::DistributedProgram> make_token_ring(
    const TokenRingOptions& options);

}  // namespace lr::cs
