#include "casestudies/chain.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace lr::cs {

std::unique_ptr<prog::DistributedProgram> make_chain(
    const ChainOptions& options) {
  using lang::Expr;
  using lang::action;

  if (options.length < 1) {
    throw std::invalid_argument("make_chain: length must be >= 1");
  }
  if (options.domain < 2) {
    throw std::invalid_argument("make_chain: domain must be >= 2");
  }

  auto program = std::make_unique<prog::DistributedProgram>(
      "stabilizing-chain-" + std::to_string(options.length),
      options.manager_options);

  std::vector<sym::VarId> x(options.length + 1);
  for (std::size_t i = 0; i <= options.length; ++i) {
    x[i] = program->add_variable("x" + std::to_string(i), options.domain);
  }

  for (std::size_t i = 1; i <= options.length; ++i) {
    prog::Process p;
    p.name = "p" + std::to_string(i);
    p.reads = {x[i - 1], x[i]};
    p.writes = {x[i]};
    p.actions.push_back(
        action("propagate", Expr::var(x[i]) != Expr::var(x[i - 1]))
            .assign(x[i], Expr::var(x[i - 1])));
    program->add_process(std::move(p));
  }

  // Transient faults: any variable (root included) is corrupted to an
  // arbitrary in-domain value.
  for (std::size_t i = 0; i <= options.length; ++i) {
    program->add_fault(
        action("corrupt-x" + std::to_string(i), Expr::bool_const(true))
            .havoc_var(x[i]));
  }

  Expr invariant = Expr::bool_const(true);
  for (std::size_t i = 1; i <= options.length; ++i) {
    invariant = invariant && (Expr::var(x[i]) == Expr::var(x[i - 1]));
  }
  program->set_invariant(invariant);

  return program;
}

}  // namespace lr::cs
