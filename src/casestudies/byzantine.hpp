#pragma once

#include <cstddef>
#include <memory>

#include "program/distributed_program.hpp"

namespace lr::cs {

/// Parameters of the Byzantine-agreement case study (Section VI-A).
struct ByzantineOptions {
  /// Number of non-general processes (the paper's j, k, l for n = 3).
  std::size_t non_generals = 3;
  /// Also subject processes to fail-stop faults (the BAFS variant): each
  /// non-general can crash (at most one), and a crashed process executes no
  /// actions.
  bool fail_stop = false;
  /// BDD manager sizing (larger instances benefit from a bigger cache).
  bdd::Manager::Options manager_options = {};
};

/// Builds the fault-intolerant Byzantine-agreement program of Section VI:
///
/// Variables: general g with b.g (byzantine?) and d.g ∈ {0,1}; every
/// non-general j with b.j, d.j ∈ {0,1,⊥} and f.j (finalized?); with
/// fail_stop additionally up.j.
///
/// Non-general j reads every decision variable plus its own b.j, f.j
/// (and up.j); it writes d.j and f.j. Its actions:
///   d.j = ⊥ ∧ f.j = 0  -->  d.j := d.g
///   d.j ≠ ⊥ ∧ f.j = 0  -->  f.j := 1
///
/// Faults: one process (general included) may become byzantine; a byzantine
/// process changes its decision arbitrarily; with fail_stop one non-general
/// may crash.
///
/// Safety (bad states): a finalized non-byzantine non-general disagreeing
/// with a non-byzantine general (validity), two finalized non-byzantine
/// non-generals disagreeing (agreement), or finalized without a decision.
/// Safety (bad transitions): a non-byzantine finalized process changing its
/// decision or un-finalizing.
[[nodiscard]] std::unique_ptr<prog::DistributedProgram> make_byzantine(
    const ByzantineOptions& options);

}  // namespace lr::cs
