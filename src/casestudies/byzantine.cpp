#include "casestudies/byzantine.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace lr::cs {

namespace {
constexpr std::uint32_t kBot = 2;  ///< ⊥ in the decision domain {0, 1, ⊥}
}

std::unique_ptr<prog::DistributedProgram> make_byzantine(
    const ByzantineOptions& options) {
  using lang::Expr;
  using lang::action;

  const std::size_t n = options.non_generals;
  if (n < 2) {
    throw std::invalid_argument("make_byzantine: need at least 2 non-generals");
  }

  auto program = std::make_unique<prog::DistributedProgram>(
      "byzantine-agreement-" + std::to_string(n) +
          (options.fail_stop ? "-failstop" : ""),
      options.manager_options);

  // --- Variables -------------------------------------------------------------
  const sym::VarId bg = program->add_variable("b.g", 2);
  const sym::VarId dg = program->add_variable("d.g", 2);
  std::vector<sym::VarId> b(n);
  std::vector<sym::VarId> d(n);
  std::vector<sym::VarId> f(n);
  std::vector<sym::VarId> up(options.fail_stop ? n : 0);
  for (std::size_t j = 0; j < n; ++j) {
    const std::string suffix = "." + std::to_string(j);
    b[j] = program->add_variable("b" + suffix, 2);
    d[j] = program->add_variable("d" + suffix, 3);  // {0, 1, ⊥}
    f[j] = program->add_variable("f" + suffix, 2);
    if (options.fail_stop) {
      up[j] = program->add_variable("up" + suffix, 2);
    }
  }

  // --- Processes -------------------------------------------------------------
  for (std::size_t j = 0; j < n; ++j) {
    prog::Process p;
    p.name = "p" + std::to_string(j);
    p.reads = {dg, b[j], d[j], f[j]};
    for (std::size_t k = 0; k < n; ++k) {
      if (k != j) p.reads.push_back(d[k]);
    }
    p.writes = {d[j], f[j]};
    Expr alive = Expr::bool_const(true);
    if (options.fail_stop) {
      p.reads.push_back(up[j]);
      alive = Expr::var(up[j]) == 1u;
    }
    p.actions.push_back(
        action("copy", alive && Expr::var(d[j]) == kBot &&
                           Expr::var(f[j]) == 0u)
            .assign(d[j], Expr::var(dg)));
    p.actions.push_back(
        action("finalize", alive && Expr::var(d[j]) != kBot &&
                               Expr::var(f[j]) == 0u)
            .assign(f[j], Expr::constant(1)));
    program->add_process(std::move(p));
  }

  // --- Faults ------------------------------------------------------------------
  // At most one process ever becomes byzantine.
  Expr nobody_byzantine = Expr::var(bg) == 0u;
  for (std::size_t j = 0; j < n; ++j) {
    nobody_byzantine = nobody_byzantine && Expr::var(b[j]) == 0u;
  }
  program->add_fault(action("g-becomes-byzantine", nobody_byzantine)
                         .assign(bg, Expr::constant(1)));
  for (std::size_t j = 0; j < n; ++j) {
    program->add_fault(
        action("p" + std::to_string(j) + "-becomes-byzantine",
               nobody_byzantine)
            .assign(b[j], Expr::constant(1)));
  }
  // A byzantine process changes its decision arbitrarily (a crashed
  // process stops doing even that).
  program->add_fault(action("g-lies", Expr::var(bg) == 1u)
                         .choose(dg, {Expr::constant(0), Expr::constant(1)}));
  for (std::size_t j = 0; j < n; ++j) {
    Expr lying = Expr::var(b[j]) == 1u;
    if (options.fail_stop) lying = lying && Expr::var(up[j]) == 1u;
    program->add_fault(action("p" + std::to_string(j) + "-lies", lying)
                           .choose(d[j], {Expr::constant(0), Expr::constant(1)}));
  }
  if (options.fail_stop) {
    // At most one non-general crashes.
    Expr all_up = Expr::bool_const(true);
    for (std::size_t j = 0; j < n; ++j) {
      all_up = all_up && Expr::var(up[j]) == 1u;
    }
    for (std::size_t j = 0; j < n; ++j) {
      program->add_fault(action("p" + std::to_string(j) + "-crashes", all_up)
                             .assign(up[j], Expr::constant(0)));
    }
  }

  // --- Invariant ------------------------------------------------------------------
  // The classic Kulkarni-Arora BA invariant: at most one byzantine process,
  // and the non-byzantine processes are consistent. Byzantine states must
  // be legitimate because the byzantine flags are permanent — masking
  // tolerance requires recovery *into* the invariant, so the invariant has
  // to absorb the surviving perturbation. Three shapes:
  //   - nobody byzantine: every copied decision matches the general;
  //   - one non-general byzantine: the others are consistent with g;
  //   - the general byzantine: some single value v is consistent across all
  //     non-generals.
  // In all shapes, finalized implies decided. (up values are unconstrained
  // in the fail-stop variant: a crash keeps the state legitimate.)
  auto consistent_with = [&](std::size_t j, const Expr& value) {
    Expr usual = (Expr::var(d[j]) == kBot || Expr::var(d[j]) == value) &&
                 (Expr::var(f[j]) == 0u || Expr::var(d[j]) != kBot);
    if (!options.fail_stop) return usual;
    // A crashed, never-finalized process is exempt: it will not finalize,
    // so agreement and validity cannot be violated through it.
    return (Expr::var(up[j]) == 0u && Expr::var(f[j]) == 0u) || usual;
  };
  Expr nobody_bad = Expr::var(bg) == 0u;
  for (std::size_t j = 0; j < n; ++j) {
    nobody_bad = nobody_bad && Expr::var(b[j]) == 0u &&
                 consistent_with(j, Expr::var(dg));
  }
  Expr invariant = nobody_bad;
  for (std::size_t byz = 0; byz < n; ++byz) {
    Expr shape = Expr::var(bg) == 0u && Expr::var(b[byz]) == 1u;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == byz) continue;
      shape = shape && Expr::var(b[j]) == 0u &&
              consistent_with(j, Expr::var(dg));
    }
    invariant = invariant || shape;
  }
  {
    Expr general_byz_shape = Expr::bool_const(false);
    for (std::uint32_t v = 0; v <= 1; ++v) {
      Expr shape = Expr::var(bg) == 1u;
      for (std::size_t j = 0; j < n; ++j) {
        shape = shape && Expr::var(b[j]) == 0u &&
                consistent_with(j, Expr::constant(v));
      }
      general_byz_shape = general_byz_shape || shape;
    }
    invariant = invariant || general_byz_shape;
  }
  program->set_invariant(invariant);

  // --- Safety specification ----------------------------------------------------------
  // Validity: a finalized, non-byzantine non-general disagrees with a
  // non-byzantine general.
  for (std::size_t j = 0; j < n; ++j) {
    program->add_bad_states(Expr::var(bg) == 0u && Expr::var(b[j]) == 0u &&
                            Expr::var(f[j]) == 1u &&
                            Expr::var(d[j]) != kBot &&
                            Expr::var(d[j]) != Expr::var(dg));
    // Finalized without a decision.
    program->add_bad_states(Expr::var(b[j]) == 0u && Expr::var(f[j]) == 1u &&
                            Expr::var(d[j]) == kBot);
  }
  // Agreement: two finalized, non-byzantine non-generals disagree.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = j + 1; k < n; ++k) {
      program->add_bad_states(
          Expr::var(b[j]) == 0u && Expr::var(b[k]) == 0u &&
          Expr::var(f[j]) == 1u && Expr::var(f[k]) == 1u &&
          Expr::var(d[j]) != kBot && Expr::var(d[k]) != kBot &&
          Expr::var(d[j]) != Expr::var(d[k]));
    }
  }
  // Finality: once a non-byzantine process finalizes, its decision and its
  // finalized flag are frozen (for the program; byzantine faults are exempt
  // because they require b.j = 1).
  for (std::size_t j = 0; j < n; ++j) {
    program->add_bad_transitions(
        Expr::var(b[j]) == 0u && Expr::var(f[j]) == 1u &&
        (Expr::next(d[j]) != Expr::var(d[j]) ||
         Expr::next(f[j]) != Expr::var(f[j])));
  }
  if (options.fail_stop) {
    // A crashed process executes nothing: no transition (of the program —
    // the fault guards already respect this) may touch its variables.
    for (std::size_t j = 0; j < n; ++j) {
      program->add_bad_transitions(
          Expr::var(up[j]) == 0u && (Expr::next(d[j]) != Expr::var(d[j]) ||
                                     Expr::next(f[j]) != Expr::var(f[j])));
    }
  }

  return program;
}

}  // namespace lr::cs
