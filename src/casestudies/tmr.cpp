#include "casestudies/tmr.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace lr::cs {

namespace {
constexpr std::uint32_t kBot = 2;  ///< ⊥ in the output domain {0, 1, ⊥}
}

std::unique_ptr<prog::DistributedProgram> make_tmr(const TmrOptions& options) {
  using lang::Expr;
  using lang::action;

  const std::size_t r = options.replicas;
  if (r < 3 || options.max_corruptions * 2 >= r) {
    throw std::invalid_argument(
        "make_tmr: need >= 3 replicas and a corrupted minority");
  }

  auto program = std::make_unique<prog::DistributedProgram>(
      "tmr-" + std::to_string(r), options.manager_options);

  const sym::VarId ref = program->add_variable("ref", 2);
  std::vector<sym::VarId> in(r);
  for (std::size_t i = 0; i < r; ++i) {
    in[i] = program->add_variable("in" + std::to_string(i), 2);
  }
  const sym::VarId out = program->add_variable("out", 3);

  // The voter: reads the input lines and the output — but not the hidden
  // reference. The fault-intolerant program copies line 0 blindly; the
  // repair must discover the majority vote.
  prog::Process voter;
  voter.name = "voter";
  voter.reads = in;
  voter.reads.push_back(out);
  voter.writes = {out};
  voter.actions.push_back(
      action("emit", Expr::var(out) == kBot).assign(out, Expr::var(in[0])));
  program->add_process(std::move(voter));

  // Number of corrupted lines, as an expression.
  auto mismatches = [&]() {
    Expr sum = Expr::constant(0);
    for (std::size_t i = 0; i < r; ++i) {
      sum = sum + Expr::ite(Expr::var(in[i]) == Expr::var(ref),
                            Expr::constant(0), Expr::constant(1));
    }
    return sum;
  }();

  // Faults corrupt a line while fewer than max_corruptions are corrupt.
  for (std::size_t i = 0; i < r; ++i) {
    program->add_fault(
        action("corrupt-in" + std::to_string(i),
               mismatches < static_cast<std::uint32_t>(options.max_corruptions))
            .havoc_var(in[i]));
  }

  // Invariant: a corrupted minority, and the output is unwritten or
  // correct.
  program->set_invariant(
      mismatches <= static_cast<std::uint32_t>(options.max_corruptions) &&
      (Expr::var(out) == kBot || Expr::var(out) == Expr::var(ref)));

  // Safety: a wrong output is catastrophic; a written output is frozen.
  program->add_bad_states(Expr::var(out) != kBot &&
                          Expr::var(out) != Expr::var(ref));
  program->add_bad_transitions(Expr::var(out) != kBot &&
                               Expr::next(out) != Expr::var(out));

  return program;
}

}  // namespace lr::cs
