#pragma once

#include <cstdint>
#include <memory>

#include "program/distributed_program.hpp"

namespace lr::cs {

/// Parameters of the triple-modular-redundancy case study.
struct TmrOptions {
  /// Number of replicated input lines (classic TMR: 3).
  std::size_t replicas = 3;
  /// How many replicas faults may corrupt (must stay a minority for the
  /// repair to succeed).
  std::size_t max_corruptions = 1;
  bdd::Manager::Options manager_options = {};
};

/// Builds the triple-modular-redundancy circuit as a repair problem — the
/// canonical "masking by voting" example of the fault-tolerance
/// literature:
///
/// Inputs in_0..in_{r-1} ∈ {0,1} start equal to a hidden reference value
/// ref; an output process reads all inputs and writes out ∈ {0,1,⊥},
/// initially ⊥. Faults corrupt up to `max_corruptions` input lines. The
/// specification: the output, once written, must equal ref (bad states
/// otherwise), and a written output is frozen (bad transitions).
///
/// The fault-intolerant program copies in_0 blindly; the repair must
/// synthesize the majority vote.
[[nodiscard]] std::unique_ptr<prog::DistributedProgram> make_tmr(
    const TmrOptions& options);

}  // namespace lr::cs
