#include "casestudies/token_ring.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace lr::cs {

std::unique_ptr<prog::DistributedProgram> make_token_ring(
    const TokenRingOptions& options) {
  using lang::Expr;
  using lang::action;

  const std::size_t n = options.processes;
  const std::uint32_t k = options.domain;
  if (n < 2) {
    throw std::invalid_argument("make_token_ring: need at least 2 processes");
  }
  if (k < 2) {
    throw std::invalid_argument("make_token_ring: domain must be >= 2");
  }

  auto program = std::make_unique<prog::DistributedProgram>(
      "token-ring-" + std::to_string(n), options.manager_options);

  std::vector<sym::VarId> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = program->add_variable("x" + std::to_string(i), k);
  }

  // Token predicates.
  auto has_token = [&](std::size_t i) {
    if (i == 0) return Expr::var(x[0]) == Expr::var(x[n - 1]);
    return Expr::var(x[i]) != Expr::var(x[i - 1]);
  };

  // Root: x0 := x_{n-1} + 1 mod K (the modular increment idiom).
  {
    prog::Process root;
    root.name = "p0";
    root.reads = {x[n - 1], x[0]};
    root.writes = {x[0]};
    const Expr bump = Expr::ite(Expr::var(x[n - 1]) == k - 1,
                                Expr::constant(0), Expr::var(x[n - 1]) + 1u);
    root.actions.push_back(action("advance", has_token(0)).assign(x[0], bump));
    program->add_process(std::move(root));
  }
  for (std::size_t i = 1; i < n; ++i) {
    prog::Process p;
    p.name = "p" + std::to_string(i);
    p.reads = {x[i - 1], x[i]};
    p.writes = {x[i]};
    p.actions.push_back(
        action("pass", has_token(i)).assign(x[i], Expr::var(x[i - 1])));
    program->add_process(std::move(p));
  }

  // Transient faults corrupt any one counter.
  for (std::size_t i = 0; i < n; ++i) {
    program->add_fault(
        action("corrupt-x" + std::to_string(i), Expr::bool_const(true))
            .havoc_var(x[i]));
  }

  // Invariant: exactly one token.
  Expr exactly_one = Expr::bool_const(false);
  for (std::size_t i = 0; i < n; ++i) {
    Expr only_i = has_token(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) only_i = only_i && !has_token(j);
    }
    exactly_one = exactly_one || only_i;
  }
  program->set_invariant(exactly_one);

  return program;
}

}  // namespace lr::cs
