#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

namespace lr::repair {

/// Thrown by the repair algorithms when their Options carry an expired
/// CancelToken. Derives from std::runtime_error so generic catch sites
/// (the batch executor's per-task boundary, test harnesses) still capture
/// the message; the batch executor catches it *specifically* to classify
/// the task as timed out and make it eligible for retry.
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(const std::string& what) : std::runtime_error(what) {}
};

/// Cooperative cancellation for one repair run. The token is checked at
/// fixpoint-round granularity — once per outer repair round, Add-Masking
/// shrink round, recovery layer and Algorithm-2 group iteration — so a
/// cancelled run stops within one symbolic step, not one whole repair.
/// (A single image/preimage computation is never interrupted; see
/// DESIGN.md "Robustness" for the contract.)
///
/// Two triggers, combinable:
///  * an explicit cancel() from any thread (the flag is atomic), and
///  * a wall-clock deadline fixed at construction via with_timeout().
///
/// Tokens are shared_ptr-owned so an Options value can be copied freely
/// (the batch executor copies per attempt) while every copy observes the
/// same flag.
class CancelToken {
 public:
  CancelToken() = default;

  /// Token whose deadline is `seconds` from now; <= 0 means no deadline
  /// (the token then only expires via cancel()).
  [[nodiscard]] static std::shared_ptr<CancelToken> with_timeout(
      double seconds) {
    auto token = std::make_shared<CancelToken>();
    if (seconds > 0.0) {
      token->deadline_ticks_.store(
          (std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(seconds)))
              .time_since_epoch()
              .count(),
          std::memory_order_relaxed);
      token->has_deadline_.store(true, std::memory_order_relaxed);
    }
    return token;
  }

  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancel() was called or the deadline has passed. The
  /// deadline branch latches into the cancelled flag so later checks are a
  /// single atomic load.
  [[nodiscard]] bool expired() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_.load(std::memory_order_relaxed)) return false;
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    if (now.count() < deadline_ticks_.load(std::memory_order_relaxed)) {
      return false;
    }
    cancelled_.store(true, std::memory_order_relaxed);
    return true;
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<std::chrono::steady_clock::rep> deadline_ticks_{0};
};

/// The per-round check the algorithm loops call: throws Cancelled when the
/// token exists and has expired. Null tokens (the default) cost one
/// pointer compare.
inline void throw_if_cancelled(const CancelToken* token) {
  if (token != nullptr && token->expired()) {
    throw Cancelled("repair cancelled: task deadline exceeded");
  }
}

inline void throw_if_cancelled(const std::shared_ptr<CancelToken>& token) {
  throw_if_cancelled(token.get());
}

}  // namespace lr::repair
