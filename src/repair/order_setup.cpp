#include "repair/order_setup.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "support/log.hpp"
#include "support/metrics.hpp"

namespace lr::repair {

sym::order::Plan order_plan(prog::DistributedProgram& program,
                            const Options& options) {
  const sym::order::Structure structure = program.order_structure();
  if (options.order_mode == sym::order::Mode::kFile) {
    const std::optional<bdd::order::OrderProfile> profile =
        bdd::order::load_profile(options.order_file);
    if (!profile) {
      throw std::runtime_error("cannot read order profile '" +
                               options.order_file + "'");
    }
    return sym::order::plan_from_labels(program.space(), structure,
                                        profile->levels);
  }
  return sym::order::plan_order(program.space(), structure,
                                options.order_mode);
}

void apply_order_options(prog::DistributedProgram& program,
                         const Options& options) {
  // Declaration order is the engine's native order: skip entirely so
  // default runs stay byte-identical (no new metrics keys, no swaps).
  if (options.order_mode == sym::order::Mode::kDecl) return;
  const sym::order::Plan plan = order_plan(program, options);
  const std::size_t swaps = sym::order::apply_plan(program.space(), plan);
  support::metrics::Registry& m = support::metrics::registry();
  m.set_gauge("bdd.order.applied", 1.0);
  m.set_gauge("bdd.order.swaps", static_cast<double>(swaps));
  m.set_gauge("bdd.order.span_cost", plan.span_cost);
  m.set_gauge("bdd.order.span_cost_decl", plan.decl_span_cost);
  m.set_gauge("bdd.order.mode." + std::string(sym::order::mode_name(
                                      plan.chosen)),
              1.0);
  LR_LOG(debug) << "[order] mode=" << sym::order::mode_name(plan.chosen)
                << " (requested " << sym::order::mode_name(plan.requested)
                << ") span_cost=" << plan.span_cost
                << " decl=" << plan.decl_span_cost << " swaps=" << swaps;
}

bdd::order::OrderProfile capture_order_profile(
    prog::DistributedProgram& program, const Options& options) {
  const std::vector<std::string> labels =
      sym::order::bit_labels(program.space());
  return bdd::order::capture_profile(
      program.space().manager(), labels, program.name(),
      sym::order::mode_name(options.order_mode));
}

void write_order_report(prog::DistributedProgram& program,
                        const Options& options, std::ostream& out,
                        std::size_t max_levels) {
  sym::Space& space = program.space();
  bdd::Manager& mgr = space.manager();
  const sym::order::Plan plan = order_plan(program, options);
  const sym::order::Structure structure = program.order_structure();
  const std::vector<double> predicted =
      sym::order::predicted_level_pressure(space, structure);
  const std::vector<std::size_t> histogram = mgr.level_histogram();
  const std::vector<std::string> labels = sym::order::bit_labels(space);

  out << "bdd order:\n";
  out << "  mode: " << sym::order::mode_name(plan.chosen);
  if (plan.requested != plan.chosen) {
    out << " (requested " << sym::order::mode_name(plan.requested) << ")";
  }
  out << "\n";
  out << "  span cost: " << plan.span_cost << " (declaration order "
      << plan.decl_span_cost << ")\n";

  // Heaviest levels first (ties by level) — predicted pressure vs the
  // actual live-node histogram, the profile's quality evidence.
  std::vector<std::uint32_t> levels(histogram.size());
  for (std::uint32_t level = 0; level < levels.size(); ++level) {
    levels[level] = level;
  }
  std::sort(levels.begin(), levels.end(),
            [&histogram](std::uint32_t a, std::uint32_t b) {
              if (histogram[a] != histogram[b]) {
                return histogram[a] > histogram[b];
              }
              return a < b;
            });
  const std::size_t shown = std::min(max_levels, levels.size());
  out << "  level  bit          predicted  nodes\n";
  for (std::size_t i = 0; i < shown; ++i) {
    const std::uint32_t level = levels[i];
    const bdd::VarIndex v = mgr.var_at_level(level);
    const std::string label = v < labels.size() ? labels[v] : "?";
    out << "  " << level;
    for (std::size_t pad = std::to_string(level).size(); pad < 5; ++pad) {
      out << ' ';
    }
    out << "  " << label;
    for (std::size_t pad = label.size(); pad < 11; ++pad) out << ' ';
    out << "  " << predicted[level];
    for (std::size_t pad = std::to_string(static_cast<long long>(
                                              predicted[level]))
                               .size();
         pad < 9; ++pad) {
      out << ' ';
    }
    out << "  " << histogram[level] << "\n";
  }
}

}  // namespace lr::repair
