#include "repair/lazy.hpp"

#include <algorithm>
#include <span>

#include "repair/add_masking.hpp"
#include "repair/journal.hpp"
#include "repair/order_setup.hpp"
#include "repair/realize.hpp"
#include "repair/relation_setup.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/progress.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace lr::repair {

namespace {

/// Removes, group-wise, the transitions that let executions spin outside
/// the invariant forever. Step 1 keeps original behavior outside the
/// invariant wholesale and layers only the *added* recovery, so the
/// realized program may cycle between kept original groups and synthesized
/// recovery groups; whole groups are removed (synthesized ones first,
/// original behavior as a last resort) so realizability is preserved.
void eliminate_livelocks(prog::DistributedProgram& program,
                         const bdd::Bdd& invariant, const bdd::Bdd& span,
                         std::vector<bdd::Bdd>& deltas,
                         const Options& options) {
  LR_TRACE_SPAN("lazy_repair.eliminate_livelocks");
  sym::Space& space = program.space();
  const bdd::Bdd outside = span.minus(invariant);
  // Intra mode runs the νZ below on its own plan without changing its
  // value (the fixpoint is canonical; the sequential path cannot be
  // touched because its op sequence must stay byte-stable): the descent is
  // kept monolithic on the main manager, and successive passes warm-seed
  // from the previous fixpoint — pruning only shrinks the deltas, so each
  // pass's greatest fixpoint is contained in the previous pass's and the
  // descent may start there instead of from `outside`.
  const bool sharded = space.intra_active();
  bdd::Bdd warm_seed = outside;
  for (std::size_t pass = 0; pass < 2 * deltas.size() + 2; ++pass) {
    throw_if_cancelled(options.cancel);
    bdd::Bdd actions = space.bdd_false();
    for (const bdd::Bdd& dj : deltas) actions |= dj;
    bdd::Bdd cycle_states = outside;
    if (sharded) {
      // The νZ iterate changes little per step, so the main op cache
      // absorbs repeat iterations almost entirely; sharding would
      // re-materialize every per-piece preimage each iteration. Run it
      // monolithically, warm-seeded from the previous pass: pruning only
      // ever shrinks the relation, so the old fixpoint over-approximates
      // the new one and the descent reaches the same νZ from there.
      bdd::Bdd z = warm_seed;
      while (true) {
        const bdd::Bdd shrunk = space.has_successor_in_local(actions, z);
        if (shrunk == z) break;
        z = shrunk;
      }
      cycle_states = z;
      warm_seed = z;
    } else {
      while (true) {
        const bdd::Bdd shrunk = space.has_successor_in(actions, cycle_states);
        if (shrunk == cycle_states) break;
        cycle_states = shrunk;
      }
    }
    if (cycle_states.is_false()) break;
    const bdd::Bdd on_cycle = cycle_states & space.prime(cycle_states);
    bool removed_added = false;
    for (std::size_t j = 0; j < deltas.size(); ++j) {
      const bdd::Bdd synthesized =
          (deltas[j] & on_cycle).minus(program.process_delta(j));
      const bdd::Bdd drop = program.group(j, synthesized);
      if (!drop.is_false()) {
        if (options.journal != nullptr) {
          options.journal->prune("repair.livelock", "cycle", j, deltas[j],
                                 deltas[j].minus(drop));
        }
        deltas[j] = deltas[j].minus(drop);
        removed_added = true;
      }
    }
    if (removed_added) continue;
    // Cycles made purely of original behavior: break them group-wise.
    for (std::size_t j = 0; j < deltas.size(); ++j) {
      const bdd::Bdd kept =
          deltas[j].minus(program.group(j, deltas[j] & on_cycle));
      if (options.journal != nullptr) {
        options.journal->prune("repair.livelock", "cycle", j, deltas[j], kept);
      }
      deltas[j] = kept;
    }
  }
}

}  // namespace

RepairResult lazy_repair(prog::DistributedProgram& program,
                         const Options& options) {
  sym::Space& space = program.space();
  support::Stopwatch total;
  LR_TRACE_SPAN_NAMED(run_span, "lazy_repair");

  RepairResult result;
  const auto finish = [&result, &space, &total] {
    result.stats.total_seconds = total.seconds();
    result.stats.bdd = space.manager().stats();
    result.stats.peak_bdd_nodes =
        std::max(result.stats.peak_bdd_nodes, result.stats.bdd.peak_nodes);
  };

  throw_if_cancelled(options.cancel);

  // Static order first: everything below (compilation, sifting, intra
  // workers mirroring the main order) must see the chosen initial order.
  apply_order_options(program, options);

  if (options.journal != nullptr) {
    options.journal->begin_run(program, "lazy",
                               tolerance_level_name(options.level));
  }

  if (options.sift_before_repair) {
    (void)program.program_delta();  // compile everything first
    (void)space.manager().reorder_sifting();
  }
  space.enable_intra(options.intra_jobs);

  // Resolve --rel against the program's natural partition width and record
  // the partition shape (metrics + journal header). The shape describes
  // the program, not the mode, so journals stay byte-identical across
  // --rel values.
  const sym::RelationMode rel_mode = resolved_relation_mode(program, options);
  record_relation_shape(program, options, options.journal);

  bdd::Bdd candidate_invariant = program.invariant();
  bdd::Bdd extra_bad_trans = space.bdd_false();
  const bdd::Bdd identity = space.identity();
  const bdd::Bdd valid_pair = space.valid_pair();
  // The Section V-A heuristic's search space, computed once: deadlock bans
  // only ever shrink the program, so the round-1 reach stays a sound
  // restriction for every later round.
  bdd::Bdd context;
  if (options.restrict_to_reachable) {
    LR_TRACE_SPAN_NAMED(ctx_span, "lazy_repair.context_reach");
    context = space.forward_reachable(
        program_fault_relation(program, rel_mode), candidate_invariant);
    if (support::trace::enabled()) {
      ctx_span.attr("states", space.count_states(context));
    }
  }
  const std::vector<bdd::Bdd>& fault_parts = program.fault_action_deltas();

  support::progress::Heartbeat heartbeat("lazy_repair");
  for (std::size_t round = 0; round < options.max_outer_iterations; ++round) {
    throw_if_cancelled(options.cancel);
    ++result.stats.outer_iterations;
    if (options.journal != nullptr) options.journal->round_start(round);
    LR_TRACE_SPAN_NAMED(round_span, "lazy_repair.round");
    round_span.attr("round", static_cast<std::uint64_t>(round));
    support::trace::counter("repair.deadlock_round",
                            static_cast<double>(round));
    if (heartbeat.due()) {
      heartbeat.emit("outer round " + std::to_string(round) +
                     ", deadlock rounds " +
                     std::to_string(result.stats.deadlock_rounds) +
                     ", live nodes " +
                     std::to_string(space.manager().live_nodes()));
    }

    // Step 1: Add-Masking without realizability constraints.
    support::Stopwatch sw1;
    const StepOneResult step1 =
        add_masking(program, candidate_invariant, extra_bad_trans, context,
                    options, result.stats);
    result.stats.step1_seconds += sw1.seconds();
    if (!step1.success) {
      result.failure_reason = "Add-Masking found no fault-tolerant program";
      if (options.journal != nullptr) {
        options.journal->run_end(false, result.failure_reason);
      }
      finish();
      return result;
    }

    // Step 2: enforce the read/write restrictions. The don't-care zone of
    // Algorithm 2's Line 1 is the complement of δ'’s own reachable set
    // (every realizable sub-program stays within it), then drop group-wise
    // whatever would livelock.
    support::Stopwatch sw2;
    LR_TRACE_SPAN_NAMED(step2_span, "lazy_repair.step2");
    std::vector<bdd::Bdd> step1_parts{step1.delta};
    step1_parts.insert(step1_parts.end(), fault_parts.begin(),
                       fault_parts.end());
    const bdd::Bdd tolerance = space.forward_reachable(
        sym::TransitionRelation::build(space, step1_parts, rel_mode),
        step1.invariant);
    std::vector<bdd::Bdd> deltas =
        realize(program, step1.delta, tolerance, options, result.stats);
    if (options.level != ToleranceLevel::kFailsafe) {
      eliminate_livelocks(program, step1.invariant, tolerance, deltas,
                          options);
    }

    // Reachable span of the realized program (⊆ tolerance by
    // construction, so Line-1 don't-cares are indeed never executed).
    std::vector<bdd::Bdd> partitions = deltas;
    partitions.insert(partitions.end(), fault_parts.begin(), fault_parts.end());
    const bdd::Bdd realized_span = space.forward_reachable(
        sym::TransitionRelation::build(space, partitions, rel_mode),
        step1.invariant);

    // Deadlock check (Algorithm 1 lines 10-12), over the states the
    // realized program actually visits, generalized to the whole dead
    // region at once: a state is alive when some successor chain stays
    // alive (original stutter loops kept by Step 1 keep their states
    // alive: those states legitimately idle). Banning the backward-closed
    // dead set in one round replaces the paper's one-layer-per-iteration
    // peeling; branch transitions from alive states into the dead region
    // are banned too, which is exactly the paper's Line 11.
    // The monolithic union is only needed for the failsafe branch; build
    // it before the span opens so its work lands in step2, exactly where
    // the sequential profile has always charged it.
    const bool failsafe = options.level == ToleranceLevel::kFailsafe;
    bdd::Bdd realized = space.bdd_false();
    if (failsafe) {
      realized = step1.delta & identity;
      for (const bdd::Bdd& dj : deltas) realized |= dj;
    }
    LR_TRACE_SPAN_NAMED(dl_span, "lazy_repair.deadlock_check");
    bdd::Bdd deadlocks;
    if (failsafe) {
      // Failsafe: only the invariant owes progress; stopping after a fault
      // is allowed. A state of S' whose actions were all dropped (and that
      // was not already a legitimate terminal) must still be banned.
      const bdd::Bdd enabled =
          space.manager().exists(realized, space.cube(sym::Version::kNext));
      deadlocks = step1.invariant.minus(enabled);
    } else {
      // Partitioned νZ: {δ' ∩ id} ∪ {δ_j} as disjuncts — the same fixpoint
      // as a νZ over the monolithic union, with per-step products that stay
      // small. Used in sequential runs too (has_successor_in reduces the
      // partitions in order when intra is off), so the call-path profile is
      // byte-identical with and without --par-intra.
      std::vector<bdd::Bdd> realized_parts{step1.delta & identity};
      realized_parts.insert(realized_parts.end(), deltas.begin(),
                            deltas.end());
      const sym::TransitionRelation realized_rel =
          sym::TransitionRelation::build(space, realized_parts, rel_mode);
      bdd::Bdd alive = realized_span;
      while (true) {
        const bdd::Bdd shrunk = space.has_successor_in(realized_rel, alive);
        if (shrunk == alive) break;
        alive = shrunk;
      }
      deadlocks = realized_span.minus(alive);
    }
    result.stats.step2_seconds += sw2.seconds();

    if (deadlocks.is_false()) {
      result.success = true;
      result.invariant = step1.invariant;
      result.fault_span = realized_span;
      result.delta = space.bdd_false();
      for (const bdd::Bdd& dj : deltas) result.delta |= dj;
      result.process_deltas = std::move(deltas);
      result.stats.span_states = space.count_states(realized_span);
      result.stats.invariant_states = space.count_states(step1.invariant);
      if (options.journal != nullptr) options.journal->run_end(true, "");
      finish();
      if (support::trace::enabled()) {
        run_span.attr("invariant_states", result.stats.invariant_states);
        run_span.attr("span_states", result.stats.span_states);
        run_span.attr("outer_iterations",
                      static_cast<std::uint64_t>(result.stats.outer_iterations));
      }
      return result;
    }

    // Ban transitions into the deadlocked states and retry; also withdraw
    // those states from the invariant so the loop cannot revisit the same
    // deadlock forever.
    extra_bad_trans |= space.prime(deadlocks) & valid_pair;
    candidate_invariant = step1.invariant.minus(deadlocks);
    ++result.stats.deadlock_rounds;
    const double banned = space.count_states(deadlocks);
    result.stats.deadlock_states_banned += banned;
    result.stats.banned_trans_nodes = extra_bad_trans.node_count();
    if (options.journal != nullptr) {
      options.journal->deadlock_round(deadlocks,
                                      result.stats.banned_trans_nodes);
    }
    support::metrics::registry().set_gauge(
        "repair.deadlock_states.round" + std::to_string(round), banned);
    LR_LOG(debug) << "[lazy] round=" << round << " banned " << banned
                  << " deadlock states (ban relation "
                  << result.stats.banned_trans_nodes << " nodes)";
  }

  result.failure_reason = "outer iteration bound exceeded";
  if (options.journal != nullptr) {
    options.journal->run_end(false, result.failure_reason);
  }
  finish();
  return result;
}

}  // namespace lr::repair
