#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "program/distributed_program.hpp"
#include "repair/types.hpp"

namespace lr::repair {

/// Renders a realizable process transition predicate as guarded commands.
///
/// Because δ_j satisfies the read restriction, projecting away the
/// unreadable variables loses nothing; each BDD cube of the projection then
/// corresponds to a family of transitions "if <readable values> then
/// <writes>", which is exactly the guarded-command shape a developer would
/// deploy. Don't-care variables are omitted from the guard.
///
/// `restrict_to` limits the rendering to transitions starting in a state
/// set (typically the fault span — the rest are unreachable don't-cares);
/// pass an invalid Bdd for no restriction. At most `max_lines` commands are
/// returned, followed by a "..." marker when truncated.
[[nodiscard]] std::vector<std::string> describe_process_program(
    prog::DistributedProgram& program, std::size_t process_index,
    const bdd::Bdd& delta_j, const bdd::Bdd& restrict_to,
    std::size_t max_lines = 48);

/// Renders a run's Stats as "name: value" lines — the paper-table numbers
/// (step times, state counts, iteration counters) followed by the BDD
/// engine block (cache hit rate, GC runs, peak/live nodes, reorders) from
/// the ManagerStats captured at the end of the run. `repair_cli --stats`
/// prints exactly these lines.
[[nodiscard]] std::vector<std::string> describe_stats(const Stats& stats);

}  // namespace lr::repair
