#include "repair/describe.hpp"

#include <cstdio>
#include <map>

#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace lr::repair {

namespace {

/// Per-variable rendering of the bits a cube determines: value when all
/// bits are fixed, bit-pattern otherwise ("?" marks free bits).
std::string render_bits(const sym::VariableInfo& info,
                        std::span<const signed char> cube, bool next_copy) {
  const auto& bits = next_copy ? info.next_bits : info.cur_bits;
  bool all_fixed = true;
  bool any_fixed = false;
  std::uint32_t value = 0;
  for (std::uint32_t k = 0; k < info.bits; ++k) {
    const signed char b = cube[bits[k]];
    if (b < 0) {
      all_fixed = false;
    } else {
      any_fixed = true;
      if (b > 0) value |= 1u << k;
    }
  }
  if (!any_fixed) return "";
  if (all_fixed) return std::to_string(value);
  std::string pattern = "0b";
  for (std::int32_t k = static_cast<std::int32_t>(info.bits) - 1; k >= 0;
       --k) {
    const signed char b = cube[bits[k]];
    pattern += b < 0 ? '?' : static_cast<char>('0' + b);
  }
  return pattern;
}

}  // namespace

std::vector<std::string> describe_process_program(
    prog::DistributedProgram& program, std::size_t process_index,
    const bdd::Bdd& delta_j, const bdd::Bdd& restrict_to,
    std::size_t max_lines) {
  sym::Space& space = program.space();
  bdd::Manager& mgr = space.manager();
  const prog::Process& proc = program.process(process_index);

  bdd::Bdd shown = delta_j;
  if (restrict_to.valid()) shown &= restrict_to;
  // Project away the unreadable variables: the result is over readable
  // current values and written next values only (group-closure makes this
  // lossless; `same_unreadable` was a tautology on δ_j anyway).
  bdd::Bdd projected =
      mgr.exists(shown, program.unreadable_cube(process_index));
  // Drop next-state copies of unwritten-but-readable variables (they equal
  // their current values).
  std::vector<bdd::VarIndex> frame_bits;
  std::map<sym::VarId, bool> writes;
  for (const sym::VarId w : proc.writes) writes[w] = true;
  for (const sym::VarId r : proc.reads) {
    if (writes.count(r) != 0) continue;
    const auto& info = space.info(r);
    frame_bits.insert(frame_bits.end(), info.next_bits.begin(),
                      info.next_bits.end());
  }
  projected = mgr.exists(projected, mgr.make_cube(frame_bits));

  std::vector<std::string> lines;
  bool truncated = false;
  mgr.foreach_cube(projected, [&](std::span<const signed char> cube) {
    if (lines.size() >= max_lines) {
      truncated = true;
      return;
    }
    std::string guard;
    std::string update;
    for (const sym::VarId r : proc.reads) {
      const std::string value = render_bits(space.info(r), cube, false);
      if (value.empty()) continue;
      if (!guard.empty()) guard += " && ";
      guard += space.info(r).name + "==" + value;
    }
    for (const sym::VarId w : proc.writes) {
      const std::string value = render_bits(space.info(w), cube, true);
      if (value.empty()) continue;
      if (!update.empty()) update += ", ";
      update += space.info(w).name + ":=" + value;
    }
    if (update.empty()) return;  // frame-only cube: no visible effect
    if (guard.empty()) guard = "true";
    lines.push_back(guard + "  -->  " + update);
  });
  if (truncated) lines.push_back("...");
  return lines;
}

std::vector<std::string> describe_stats(const Stats& stats) {
  std::vector<std::string> lines;
  const auto line = [&lines](const std::string& name,
                             const std::string& value) {
    lines.push_back(name + ": " + value);
  };
  const auto count = [](std::uint64_t v) { return std::to_string(v); };

  line("step1 seconds", support::format_duration(stats.step1_seconds));
  line("step2 seconds", support::format_duration(stats.step2_seconds));
  line("total seconds", support::format_duration(stats.total_seconds));
  line("reachable states", support::format_state_count(stats.reachable_states));
  line("invariant states", support::format_state_count(stats.invariant_states));
  line("fault-span states", support::format_state_count(stats.span_states));
  line("outer iterations", count(stats.outer_iterations));
  line("add-masking rounds", count(stats.addmasking_rounds));
  line("group iterations", count(stats.group_iterations));
  line("expand accepts", count(stats.expand_successes));
  line("expand rejects", count(stats.expand_failures));
  line("recovery layers", count(stats.recovery_layers));
  line("deadlock rounds", count(stats.deadlock_rounds));
  line("deadlock states banned",
       support::format_state_count(stats.deadlock_states_banned));
  line("ban relation nodes", count(stats.banned_trans_nodes));

  const bdd::ManagerStats& bdd = stats.bdd;
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.1f%%",
                bdd.cache_lookups == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(bdd.cache_hits) /
                          static_cast<double>(bdd.cache_lookups));
  line("bdd cache lookups", count(bdd.cache_lookups));
  line("bdd cache hit rate", rate);
  line("bdd unique hits", count(bdd.unique_hits));
  line("bdd created nodes", count(bdd.created_nodes));
  line("bdd gc runs", count(bdd.gc_runs));
  line("bdd gc reclaimed", count(bdd.gc_reclaimed));
  line("bdd reorder runs", count(bdd.reorder_runs));
  line("bdd live nodes", count(bdd.live_nodes));
  line("bdd peak nodes", count(bdd.peak_nodes));
  return lines;
}

}  // namespace lr::repair
