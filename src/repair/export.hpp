#pragma once

#include <string>

#include "program/distributed_program.hpp"
#include "repair/types.hpp"

namespace lr::repair {

/// Renders a repair result as a complete model in the textual `.lr`
/// format: the original variables, faults, invariant and safety
/// specification, with each process's actions replaced by the
/// *synthesized* realizable guarded commands (restricted to the fault
/// span; unreachable don't-cares are dropped).
///
/// The output parses back through lang::parse_program and — being already
/// masking fault-tolerant — re-repairs to itself (the round-trip is
/// regression-tested). Partial-value cubes are rendered with disjunctive
/// guards and nondeterministic `{...}` choices, so the export is exact.
[[nodiscard]] std::string export_model(prog::DistributedProgram& program,
                                       const RepairResult& result);

/// export_model() written to `path` atomically (write-temp-then-rename, see
/// support::write_file_atomic): a crash mid-export leaves either the old
/// file or the new one, never a torn model. Returns false on IO failure.
[[nodiscard]] bool export_model_file(prog::DistributedProgram& program,
                                     const RepairResult& result,
                                     const std::string& path);

}  // namespace lr::repair
