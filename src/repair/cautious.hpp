#pragma once

#include "program/distributed_program.hpp"
#include "repair/types.hpp"

namespace lr::repair {

/// The baseline: cautious repair in the style of ref [2] (SYCRAFT).
///
/// Where lazy repair defers realizability to one final pass, cautious
/// repair keeps the intermediate model realizable after *every* step:
///
///  * removals are group-closed immediately — if a transition must go, its
///    whole read-restriction group goes (unless the offending member starts
///    at a state unreachable in the original program under faults: the
///    Section-IV heuristic);
///  * candidate recovery is generated group-by-group, and a group is kept
///    only if every reachable member lands inside the fault span, avoids
///    `mt`, and strictly decreases the distance-to-invariant layer;
///  * the search runs over the full state space (no
///    restrict-to-reachable pruning of the fault span), re-establishing the
///    group closures inside every iteration of the shrinking fixpoint.
///
/// The result satisfies exactly the same verifier as lazy repair; the
/// difference the benchmarks measure is the cost of carrying realizability
/// through every step instead of once at the end.
[[nodiscard]] RepairResult cautious_repair(prog::DistributedProgram& program,
                                           const Options& options = {});

}  // namespace lr::repair
