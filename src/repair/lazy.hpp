#pragma once

#include "program/distributed_program.hpp"
#include "repair/types.hpp"

namespace lr::repair {

/// Algorithm 1: adds masking fault-tolerance to a distributed program via
/// lazy repair (the paper's contribution).
///
///   repeat
///     (δ', S', T') := Add-Masking(...)          — Step 1, no realizability
///     {δ_j}       := Algorithm 2(δ', T')        — Step 2, enforce groups
///     DL := states of T' with no outgoing realized transition
///     ban transitions into DL and retry
///   until DL = ∅
///
/// In addition to banning transitions into DL (the paper's Line 11), DL
/// states are removed from the candidate invariant of the next round; this
/// guarantees the loop makes progress even when a deadlocked state lies
/// inside S' itself (see DESIGN.md).
[[nodiscard]] RepairResult lazy_repair(prog::DistributedProgram& program,
                                       const Options& options = {});

}  // namespace lr::repair
