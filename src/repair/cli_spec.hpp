#pragma once

#include <string>
#include <vector>

#include "support/cli.hpp"

namespace lr::repair {

/// The full flag table of the repair_cli binary — the single source of
/// truth its --help text, its unknown-flag rejection and the README flag
/// table are all generated from / checked against (the sync is enforced by
/// tests/support/test_cli_flags.cpp). Lives in the library, not in the
/// binary, so tests can link it.
[[nodiscard]] const std::vector<support::FlagSpec>& repair_cli_flag_specs();

/// The complete usage/--help text for repair_cli (`program` is argv[0]).
[[nodiscard]] std::string repair_cli_usage(const std::string& program);

/// The Markdown flag reference (docs/flags.md) generated from the same
/// FlagSpec table. `repair_cli --help-markdown` prints exactly this; the
/// docs test compares the committed file against it byte-for-byte.
[[nodiscard]] std::string repair_cli_flags_markdown();

}  // namespace lr::repair
