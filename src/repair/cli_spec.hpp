#pragma once

#include <string>
#include <vector>

#include "support/cli.hpp"

namespace lr::repair {

/// The full flag table of the repair_cli binary — the single source of
/// truth its --help text, its unknown-flag rejection and the README flag
/// table are all generated from / checked against (the sync is enforced by
/// tests/support/test_cli_flags.cpp). Lives in the library, not in the
/// binary, so tests can link it.
[[nodiscard]] const std::vector<support::FlagSpec>& repair_cli_flag_specs();

/// The complete usage/--help text for repair_cli (`program` is argv[0]).
[[nodiscard]] std::string repair_cli_usage(const std::string& program);

}  // namespace lr::repair
