#pragma once

#include "bdd/bdd.hpp"
#include "program/distributed_program.hpp"
#include "repair/types.hpp"

namespace lr::repair {

/// Step 1 of lazy repair: the Add-Masking algorithm of Kulkarni-Arora
/// (ref [1]), run **without** read/write realizability constraints
/// (Section V-A).
///
/// Given the program's transitions δ_P (with Definition-18 stuttering), the
/// faults f, a candidate invariant `start_invariant` ⊆ S, and the safety
/// specification extended by `extra_bad_trans` (Algorithm 1 accumulates
/// deadlock bans there), computes S', T' and a maximal masking
/// fault-tolerant δ':
///
///  1. ms := states from which faults alone can violate safety;
///     mt := bad transitions ∪ transitions into ms.
///  2. S1 := largest deadlock-free subset of S − ms closed under δ_P − mt.
///  3. T1 := search space − ms, where the search space is
///     Reach(S, δ_P ∪ f) when options.restrict_to_reachable (the paper's
///     heuristic) and the whole state space otherwise.
///  4. Shrink (S1, T1) to the largest pair such that every T1 state can
///     reach S1 via available transitions, faults cannot leave T1, and S1
///     is deadlock-free and closed.
///  5. Keep original transitions inside S1 and exactly the recovery
///     transitions that strictly decrease the backward-BFS layer distance
///     to S1 (this breaks the cycles in T1 − S1 the paper describes).
///
/// Every state removed in step 4 *must* be removed (shown in [1]), which is
/// what Step 2 relies on to only delete transitions.
/// `context` is the state set the repair is restricted to (the Section V-A
/// heuristic). Pass an invalid Bdd to let the function derive it from
/// `options` (reachable states of the fault-intolerant program, or the
/// whole space). Algorithm 1 passes progressively smaller contexts as the
/// realized program's reachable set shrinks.
[[nodiscard]] StepOneResult add_masking(prog::DistributedProgram& program,
                                        const bdd::Bdd& start_invariant,
                                        const bdd::Bdd& extra_bad_trans,
                                        const bdd::Bdd& context,
                                        const Options& options, Stats& stats);

}  // namespace lr::repair
