#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>

#include "repair/types.hpp"

namespace lr::repair {

/// One checkpoint row of a batch sweep: everything needed to (a) decide
/// whether the task can be skipped on resume and (b) reprint its stdout
/// block byte-identically without re-running it.
struct ManifestEntry {
  std::string name;                 ///< task name (model file stem)
  std::string input_hash;           ///< support::content_hash of the input
  std::string options_fingerprint;  ///< options_fingerprint() at run time
  /// "ok" | "failed" | "timeout". Only "ok" rows are resume candidates.
  std::string status;
  std::string algorithm;            ///< display label ("lazy (group loop)")
  std::string export_path;          ///< repaired-model export ("" if none)
  std::string failure_reason;       ///< non-empty for failed/timeout rows
  std::size_t attempts = 0;         ///< how many times the task ran
  double seconds = 0.0;             ///< wall clock of the recorded run
  double model_states = -1.0;
  double invariant_states = -1.0;
  double span_states = -1.0;
  bool verified = false;
  bool verify_ok = false;
};

/// The per-batch checkpoint manifest: a JSON document updated atomically
/// (write-temp-then-rename, see support::write_file_atomic) after every
/// task completes, so a sweep killed at any instant leaves either the
/// previous or the new complete manifest on disk — never a torn one.
///
/// Schema (all fields always present, entries sorted by name):
/// {
///   "schema": 1,
///   "entries": {
///     "<name>": {
///       "input_hash": "fnv1a:...", "options": "<fingerprint>",
///       "status": "ok", "algorithm": "lazy (group loop)",
///       "export": "dir/repaired/<name>.lr", "failure_reason": "",
///       "attempts": 1, "seconds": 0.12, "model_states": 48,
///       "invariant_states": 14, "span_states": 16,
///       "verified": true, "verify_ok": true
///     }, ...
///   }
/// }
class Manifest {
 public:
  static constexpr int kSchemaVersion = 1;

  /// Parses a manifest file. nullopt when the file is missing, unreadable,
  /// not valid JSON, or of a different schema version — resume treats all
  /// of those as "cold start", never as an error.
  [[nodiscard]] static std::optional<Manifest> load(const std::string& path);

  [[nodiscard]] const ManifestEntry* find(const std::string& name) const;
  void set(ManifestEntry entry);
  /// Removes an entry; false when absent. (Tests use this to simulate a
  /// sweep killed after N rows.)
  bool erase(const std::string& name);
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  [[nodiscard]] std::string to_json() const;
  /// Serializes and writes atomically; false on IO failure.
  [[nodiscard]] bool save(const std::string& path) const;

 private:
  std::map<std::string, ManifestEntry> entries_;  ///< keyed by entry name
};

/// Canonical fingerprint of everything that changes a repair's outcome:
/// algorithm, tolerance level, group method, heuristic/ExpandGroup/sift
/// toggles, iteration bound and whether the verifier ran. A manifest row
/// whose fingerprint differs from the current invocation is stale and its
/// task re-runs. Timeout/retry/jobs settings are deliberately excluded:
/// they bound *when* a result is produced, not *what* it is.
[[nodiscard]] std::string options_fingerprint(const Options& options,
                                              bool cautious, bool verify);

}  // namespace lr::repair
