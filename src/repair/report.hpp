#pragma once

#include <string>

#include "repair/types.hpp"

namespace lr::repair {

/// Mirrors a finished run's Stats (including the embedded BDD engine
/// counters) into the process-wide metrics registry under the "repair." and
/// "bdd." prefixes. An optional dotted prefix ("bench.Sc^20.lazy") scopes
/// the keys so multiple runs can land in one report.
void record_run_metrics(const Stats& stats, const std::string& prefix = "");

/// Writes the metrics registry as a JSON run report; false when the file
/// cannot be opened. (Thin wrapper over metrics::write_json_file, so repair
/// front ends need only this header.)
bool write_metrics_report(const std::string& path);

}  // namespace lr::repair
