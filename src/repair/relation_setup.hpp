#pragma once

#include <iosfwd>
#include <vector>

#include "program/distributed_program.hpp"
#include "repair/types.hpp"
#include "symbolic/relation.hpp"

namespace lr::repair {

class Journal;

/// Options::relation_mode resolved against the program's natural partition
/// width (process deltas + fault actions): kAuto becomes kPartition when
/// there are >= 2 parts to schedule around, kMono otherwise. Freezes the
/// program (the width needs the compiled deltas).
[[nodiscard]] sym::RelationMode resolved_relation_mode(
    prog::DistributedProgram& program, const Options& options);

/// The disjunctive pieces of δ_P (Definition 18): one per process plus the
/// stutter completion. Their union is exactly program_delta(), which is
/// what lets the partitioned algorithms substitute the pieces for the
/// monolithic delta without changing any computed set.
[[nodiscard]] std::vector<bdd::Bdd> program_delta_pieces(
    prog::DistributedProgram& program);

/// δ_P ∪ f as a TransitionRelation: under kPartition one scheduled part
/// per process/fault action (plus the stutter piece); under kMono the
/// historical flat partition (transition_partitions()).
[[nodiscard]] sym::TransitionRelation program_fault_relation(
    prog::DistributedProgram& program, sym::RelationMode resolved);

/// The fault actions as a TransitionRelation: one scheduled part per
/// fault action under kPartition, the monolithic fault_delta() under
/// kMono (the historical call shape of the fault fixpoints).
[[nodiscard]] sym::TransitionRelation fault_relation(
    prog::DistributedProgram& program, sym::RelationMode resolved);

/// Records the program relation's partition shape: `bdd.relation.*`
/// metric gauges and, when `journal` is non-null, the journal header's
/// partition summary. The shape describes the *program* (parts, conjuncts,
/// support widths), never the execution mode, so journals stay
/// byte-identical across --rel modes; only the metrics record the mode.
void record_relation_shape(prog::DistributedProgram& program,
                           const Options& options, Journal* journal);

/// Renders the --stats "transition relation" section: the resolved mode,
/// part/conjunct counts and the support-width distribution that bounds
/// what early quantification can save.
void write_relation_report(prog::DistributedProgram& program,
                           const Options& options, std::ostream& out);

}  // namespace lr::repair
