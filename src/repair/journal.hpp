#pragma once

// Repair decision journal: a structured event sink recording *which*
// decisions one repair run made — per deadlock round the banned-state
// count, every group enumerated/accepted/rejected (with the rejection
// reason), every transition set pruned or added, and the fixpoint
// convergence deltas — so the lazy-vs-cautious tradeoff is inspectable
// per round instead of only through aggregate timings.
//
// Pruned-transition and newly-deadlocked events carry a concrete witness
// state (bdd::sat_one over the predicate, decoded via the program's
// variable map), which makes journal entries checkable claims: the
// witness of a pruned set must satisfy the pre-prune predicate and
// violate the post-prune one, and the re-check test does exactly that.
//
// Serialization is JSONL (one event object per line, header line first)
// under a versioned schema, like the batch checkpoint manifest. The
// output contains no timing and no machine-local paths, so a journal is
// byte-identical across --jobs counts and across reruns of the same
// deterministic repair. Opt-in and observation-only: the algorithms emit
// only when Options::journal is non-null, and journaling never changes a
// repair decision. Single-threaded like the BDD manager — the batch
// executor creates one Journal per task, and a Journal must not outlive
// the program Space it was bound to (events keep live Bdd handles).

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bdd/bdd.hpp"
#include "program/distributed_program.hpp"

namespace lr::repair {

/// Journal serialization format version (the JSONL header's "schema").
inline constexpr int kJournalSchemaVersion = 1;

/// A concrete state or transition backing an event, one value per program
/// variable. `to` is empty for state witnesses.
struct JournalWitness {
  std::vector<std::uint32_t> from;
  std::vector<std::uint32_t> to;
};

/// One recorded decision. String and numeric fields are kept in sorted
/// maps so serialization order is deterministic by construction.
struct JournalEvent {
  std::string kind;
  std::map<std::string, std::string> text;
  std::map<std::string, double> num;
  std::optional<JournalWitness> witness;
  /// The checkable claim behind `witness`: it was drawn from pre ∖ post
  /// (post may be invalid, meaning "from pre"). Live handles for
  /// in-process consumers — the witness re-check test — never serialized.
  bdd::Bdd pre;
  bdd::Bdd post;
};

class Journal {
 public:
  /// Binds the journal to a run and emits the header-backing run_start
  /// event. Clears any previous run's events, so one instance records
  /// exactly one repair.
  void begin_run(prog::DistributedProgram& program, std::string_view algorithm,
                 std::string_view level);

  /// Adds a header key ("model": file stem, ...). May be called before or
  /// after begin_run; the header line is assembled at serialization time.
  void meta(const std::string& key, const std::string& value);

  /// Starts outer round `round`; subsequent events are stamped with it.
  void round_start(std::size_t round);

  /// One iteration of a shrink fixpoint: the (S1, T1) pair it converged
  /// toward this step — the convergence delta is the difference between
  /// consecutive events.
  void fixpoint_round(std::string_view phase, std::size_t iteration,
                      double invariant_states, double span_states);

  /// One BFS recovery layer: `layer_states` states gained a path to S',
  /// `added` is the transition set added for them.
  void recovery_layer(std::size_t layer, double layer_states,
                      const bdd::Bdd& added);

  /// Step-1 summary of one outer round.
  void step_one_summary(double invariant_states, double span_states,
                        std::size_t fixpoint_rounds,
                        std::size_t recovery_layers);

  /// Group accepted into δ_j.
  void group_accepted(std::string_view phase, std::size_t process,
                      const bdd::Bdd& group);

  /// Group rejected (reason: "closure", "safety" or "cycle") because some
  /// member of `pre` lies outside `acceptable`; the witness is one such
  /// member (drawn from pre ∖ acceptable).
  void group_rejected(std::string_view phase, std::size_t process,
                      std::string_view reason, const bdd::Bdd& group,
                      const bdd::Bdd& pre, const bdd::Bdd& acceptable);

  /// Transition set pruned from a candidate delta: the pruned set is
  /// pre ∖ post, the witness one of its transitions. No-op when empty.
  void prune(std::string_view phase, std::string_view reason,
             std::size_t process, const bdd::Bdd& pre, const bdd::Bdd& post);

  /// One deadlock-ban round: `deadlocks` became dead and are withdrawn;
  /// the witness is one newly-deadlocked state.
  void deadlock_round(const bdd::Bdd& deadlocks, std::size_t ban_trans_nodes);

  /// Cautious refinement: the reachability reference was tightened.
  void refine(double reachable_states);

  void run_end(bool success, std::string_view reason);

  /// True once begin_run bound a program (the algorithms' emit guard is
  /// the Options::journal pointer, not this).
  [[nodiscard]] bool bound() const noexcept { return space_ != nullptr; }

  [[nodiscard]] const std::vector<JournalEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const std::vector<std::string>& variable_names()
      const noexcept {
    return var_names_;
  }
  [[nodiscard]] const std::vector<std::string>& process_names()
      const noexcept {
    return proc_names_;
  }
  [[nodiscard]] const std::string& algorithm() const noexcept {
    return algorithm_;
  }
  [[nodiscard]] const std::string& level() const noexcept { return level_; }

  /// JSONL: one header line ({"schema": 1, "event": "journal", ...}) then
  /// one line per event in emission order.
  [[nodiscard]] std::string to_jsonl() const;

  /// Atomically writes to_jsonl() to `path`.
  [[nodiscard]] bool save(const std::string& path) const;

 private:
  JournalEvent& push(std::string kind);
  void attach_state_witness(JournalEvent& event, const bdd::Bdd& set);
  void attach_transition_witness(JournalEvent& event, const bdd::Bdd& pruned);

  sym::Space* space_ = nullptr;
  std::vector<std::string> var_names_;
  std::vector<std::string> proc_names_;
  std::string algorithm_;
  std::string level_;
  std::map<std::string, std::string> meta_;
  std::vector<JournalEvent> events_;
  std::size_t seq_ = 0;
  std::optional<std::size_t> round_;
};

/// Human-readable per-round narrative of a journal — the `--explain`
/// output. Witness states render in describe_process_program's naming
/// ("name=value" guards, "name:=value" updates).
[[nodiscard]] std::vector<std::string> describe_journal(
    const Journal& journal);

}  // namespace lr::repair
