#include "repair/realize.hpp"

#include <algorithm>
#include <unordered_set>

#include "repair/journal.hpp"
#include "support/progress.hpp"
#include "support/trace.hpp"

namespace lr::repair {

std::vector<bdd::Bdd> realize(prog::DistributedProgram& program,
                              const bdd::Bdd& delta, const bdd::Bdd& tolerance,
                              const Options& options, Stats& stats) {
  LR_TRACE_SPAN_NAMED(span, "realize");
  sym::Space& space = program.space();
  bdd::Manager& mgr = space.manager();

  const bdd::Bdd valid_cur = space.valid(sym::Version::kCurrent);
  const bdd::Bdd valid_pair = space.valid_pair();
  const bdd::Bdd identity = space.identity();

  // Line 1: add every transition that starts outside the fault span.
  const bdd::Bdd with_outside =
      delta | (valid_cur.minus(tolerance) & valid_pair);
  // Self-loops are realized by stuttering, not by grouping.
  const bdd::Bdd proper = with_outside.minus(identity);

  const bdd::Bdd all_bits_cube =
      space.cube(sym::Version::kCurrent) & space.cube(sym::Version::kNext);

  std::vector<bdd::Bdd> result;
  result.reserve(program.process_count());

  for (std::size_t j = 0; j < program.process_count(); ++j) {
    LR_TRACE_SPAN_NAMED(proc_span, "realize.process");
    proc_span.attr("process", static_cast<std::uint64_t>(j));
    // Line 5: drop transitions that write outside W_j.
    bdd::Bdd delta_j_pool = proper & program.respects_write(j);
    bdd::Bdd accepted = space.bdd_false();

    throw_if_cancelled(options.cancel);
    if (options.group_method == GroupMethod::kOneShot) {
      // Equivalent one-pass formulation: keep exactly the transitions whose
      // whole group is present, then restrict to groups that carry span
      // behavior.
      const bdd::Bdd closed = program.realizable_subset(j, delta_j_pool);
      accepted = program.group(j, closed & tolerance);
      if (options.journal != nullptr) {
        options.journal->group_accepted("repair.realize", j, accepted);
        // Everything of the pool that carried span behavior but is not in
        // the accepted closure fell to the closure test.
        options.journal->prune("repair.realize", "closure", j,
                               delta_j_pool & tolerance, accepted);
      }
    } else {
      // Lines 7-22 of Algorithm 2. The worklist is restricted to
      // transitions that start inside the span: groups made purely of
      // Line-1 don't-cares carry no behavior and need not be enumerated.
      const prog::Process& proc = program.process(j);
      std::unordered_set<sym::VarId> writes(proc.writes.begin(),
                                            proc.writes.end());
      std::vector<sym::VarId> expandable;  // R_j − W_j
      for (const sym::VarId v : proc.reads) {
        if (writes.count(v) == 0) expandable.push_back(v);
      }

      bdd::Bdd worklist = delta_j_pool & tolerance;
      support::progress::Heartbeat heartbeat("realize.groups");
      while (!worklist.is_false()) {
        throw_if_cancelled(options.cancel);
        ++stats.group_iterations;
        support::trace::counter("repair.groups_processed",
                                static_cast<double>(stats.group_iterations));
        if (heartbeat.due()) {
          heartbeat.emit("process " + std::to_string(j) + ", " +
                         std::to_string(stats.group_iterations) +
                         " groups, live nodes " +
                         std::to_string(mgr.live_nodes()));
        }
        // Line 8: choose one transition.
        const bdd::Bdd chosen = mgr.pick_minterm(worklist, all_bits_cube);
        // Line 9: its group.
        bdd::Bdd group = program.group(j, chosen);
        if (!group.leq(delta_j_pool)) {
          // Line 11: some member is missing; discard the whole group.
          if (options.journal != nullptr) {
            options.journal->group_rejected("repair.realize", j, "closure",
                                            group, group, delta_j_pool);
          }
          delta_j_pool = delta_j_pool.minus(group);
          worklist = worklist.minus(group);
          continue;
        }
        // Lines 13-18: try to widen the group by dropping readable
        // variables from the implicit guard.
        if (options.use_expand_group) {
          for (const sym::VarId v : expandable) {
            const sym::VarId vs[1] = {v};
            const bdd::Bdd widened =
                mgr.exists(group, space.cube_pair_of(vs)) & space.unchanged(v);
            if (widened.leq(delta_j_pool)) {
              group = widened;
              ++stats.expand_successes;
            } else {
              ++stats.expand_failures;
            }
          }
        }
        // Lines 19-20.
        if (options.journal != nullptr) {
          options.journal->group_accepted("repair.realize", j, group);
        }
        accepted |= group;
        delta_j_pool = delta_j_pool.minus(group);
        worklist = worklist.minus(group);
      }
    }
    if (support::trace::enabled()) {
      proc_span.attr("delta_nodes",
                     static_cast<std::uint64_t>(accepted.node_count()));
    }
    result.push_back(std::move(accepted));
  }
  stats.peak_bdd_nodes =
      std::max(stats.peak_bdd_nodes, mgr.stats().peak_nodes);
  if (support::trace::enabled()) {
    span.attr("group_iterations",
              static_cast<std::uint64_t>(stats.group_iterations));
    span.attr("expand_accepts",
              static_cast<std::uint64_t>(stats.expand_successes));
    span.attr("expand_rejects",
              static_cast<std::uint64_t>(stats.expand_failures));
  }
  return result;
}

}  // namespace lr::repair
