#include "repair/realize.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "repair/journal.hpp"
#include "support/progress.hpp"
#include "support/trace.hpp"
#include "symbolic/intra.hpp"

namespace lr::repair {

namespace {

/// A journal event decided on a worker thread, buffered as worker-manager
/// handles and replayed on the main thread in canonical process order so
/// the journal stream is byte-identical to the sequential run's.
struct PendingEvent {
  enum Kind { kAccepted, kRejected, kPrune } kind = kAccepted;
  const char* reason = nullptr;
  bdd::Bdd a;  ///< accepted: group; rejected: group; prune: pre
  bdd::Bdd b;  ///< rejected: pre pool; prune: post
  bdd::Bdd c;  ///< rejected: acceptable pool
};

/// Everything one process's enumeration produced on its worker.
struct ProcessOutcome {
  bdd::Bdd accepted;  // worker-manager handle
  std::vector<PendingEvent> events;
  std::size_t iterations = 0;
  std::size_t expand_successes = 0;
  std::size_t expand_failures = 0;
};

/// Per-process inputs pinned on the main manager for worker import.
struct ProcessInputs {
  bdd::NodeId respects_write = 0;
  bdd::NodeId same_unreadable = 0;
  bdd::NodeId unreadable_cube = 0;
  /// (cube_pair_of({v}), unchanged(v)) per expandable variable, in the
  /// sequential path's iteration order (R_j − W_j, reads order).
  std::vector<std::pair<bdd::NodeId, bdd::NodeId>> expand;
};

/// Parallel per-process group enumeration: processes are independent in
/// Algorithm 2 (each only consumes its own pool δ ∩ respects_write(j)), so
/// worker w replicates the exact sequential loop for processes
/// {w, w+J, ...} on its own manager. The worker's manager mirrors the main
/// variable order, so pick_minterm/leq decide identically (canonicity) and
/// accept/reject decisions match the sequential run one-for-one; results
/// and journal events commit in ascending process order afterwards.
std::vector<bdd::Bdd> realize_parallel(
    prog::DistributedProgram& program, const bdd::Bdd& proper,
    const bdd::Bdd& tolerance, const Options& options, Stats& stats,
    sym::IntraEngine& engine) {
  sym::Space& space = program.space();
  const std::size_t n = program.process_count();
  const bool journaling = options.journal != nullptr;

  const bdd::NodeId proper_id = engine.pin(proper);
  const bdd::NodeId tolerance_id = engine.pin(tolerance);
  const bdd::NodeId valid_pair_id = engine.pin(space.valid_pair());
  std::vector<ProcessInputs> inputs(n);
  for (std::size_t j = 0; j < n; ++j) {
    inputs[j].respects_write = engine.pin(program.respects_write(j));
    inputs[j].same_unreadable = engine.pin(program.same_unreadable(j));
    inputs[j].unreadable_cube = engine.pin(program.unreadable_cube(j));
    if (options.group_method == GroupMethod::kPaperLoop &&
        options.use_expand_group) {
      const prog::Process& proc = program.process(j);
      std::unordered_set<sym::VarId> writes(proc.writes.begin(),
                                            proc.writes.end());
      for (const sym::VarId v : proc.reads) {
        if (writes.count(v) != 0) continue;
        const sym::VarId vs[1] = {v};
        inputs[j].expand.emplace_back(engine.pin(space.cube_pair_of(vs)),
                                      engine.pin(space.unchanged(v)));
      }
    }
  }

  std::vector<ProcessOutcome> outcomes(n);
  engine.run([&](std::size_t w, sym::IntraEngine::Worker& worker) {
    bdd::Manager& m = worker.mgr;
    const bdd::Bdd w_proper = engine.import(w, proper_id);
    const bdd::Bdd w_tol = engine.import(w, tolerance_id);
    const bdd::Bdd w_valid_pair = engine.import(w, valid_pair_id);
    const bdd::Bdd all_bits = worker.cube_cur & worker.cube_next;
    for (std::size_t j = w; j < n; j += engine.contexts()) {
      ProcessOutcome& out = outcomes[j];
      const bdd::Bdd w_same = engine.import(w, inputs[j].same_unreadable);
      const bdd::Bdd w_ucube = engine.import(w, inputs[j].unreadable_cube);
      // program.group / program.realizable_subset, replicated over the
      // worker's manager (see prog::DistributedProgram).
      const auto group_of = [&](const bdd::Bdd& delta) {
        return m.exists(delta & w_same, w_ucube) & w_same & w_valid_pair;
      };
      bdd::Bdd pool =
          w_proper & engine.import(w, inputs[j].respects_write);
      bdd::Bdd accepted = m.bdd_false();
      throw_if_cancelled(options.cancel);
      if (options.group_method == GroupMethod::kOneShot) {
        const bdd::Bdd member_shape = w_same & w_valid_pair;
        const bdd::Bdd closed =
            pool & member_shape &
            m.forall(member_shape.implies(pool), w_ucube);
        accepted = group_of(closed & w_tol);
        if (journaling) {
          out.events.push_back({PendingEvent::kAccepted, nullptr, accepted,
                                bdd::Bdd(), bdd::Bdd()});
          out.events.push_back({PendingEvent::kPrune, "closure",
                                pool & w_tol, accepted, bdd::Bdd()});
        }
      } else {
        std::vector<std::pair<bdd::Bdd, bdd::Bdd>> expand;
        expand.reserve(inputs[j].expand.size());
        for (const auto& [cube_id, unchanged_id] : inputs[j].expand) {
          expand.emplace_back(engine.import(w, cube_id),
                              engine.import(w, unchanged_id));
        }
        bdd::Bdd worklist = pool & w_tol;
        while (!worklist.is_false()) {
          throw_if_cancelled(options.cancel);
          ++out.iterations;
          const bdd::Bdd chosen = m.pick_minterm(worklist, all_bits);
          bdd::Bdd group = group_of(chosen);
          if (!group.leq(pool)) {
            if (journaling) {
              out.events.push_back(
                  {PendingEvent::kRejected, "closure", group, group, pool});
            }
            pool = pool.minus(group);
            worklist = worklist.minus(group);
            continue;
          }
          if (options.use_expand_group) {
            for (const auto& [cube_v, unchanged_v] : expand) {
              const bdd::Bdd widened = m.exists(group, cube_v) & unchanged_v;
              if (widened.leq(pool)) {
                group = widened;
                ++out.expand_successes;
              } else {
                ++out.expand_failures;
              }
            }
          }
          if (journaling) {
            out.events.push_back({PendingEvent::kAccepted, nullptr, group,
                                  bdd::Bdd(), bdd::Bdd()});
          }
          accepted |= group;
          pool = pool.minus(group);
          worklist = worklist.minus(group);
        }
      }
      out.accepted = std::move(accepted);
    }
  });

  // Commit in canonical (ascending process) order: stats, journal events,
  // then the per-process delta — exactly the sequential emission order.
  std::vector<bdd::Bdd> result;
  result.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t w = j % engine.contexts();
    ProcessOutcome& out = outcomes[j];
    stats.group_iterations += out.iterations;
    stats.expand_successes += out.expand_successes;
    stats.expand_failures += out.expand_failures;
    if (journaling) {
      for (const PendingEvent& event : out.events) {
        switch (event.kind) {
          case PendingEvent::kAccepted:
            options.journal->group_accepted(
                "repair.realize", j, engine.export_to_main(w, event.a));
            break;
          case PendingEvent::kRejected:
            options.journal->group_rejected(
                "repair.realize", j, event.reason,
                engine.export_to_main(w, event.a),
                engine.export_to_main(w, event.b),
                engine.export_to_main(w, event.c));
            break;
          case PendingEvent::kPrune:
            options.journal->prune("repair.realize", event.reason, j,
                                   engine.export_to_main(w, event.a),
                                   engine.export_to_main(w, event.b));
            break;
        }
      }
    }
    result.push_back(out.accepted.valid()
                         ? engine.export_to_main(w, out.accepted)
                         : space.bdd_false());
    if (out.iterations > 0) {
      support::trace::counter("repair.groups_processed",
                              static_cast<double>(stats.group_iterations));
    }
  }
  return result;
}

}  // namespace

std::vector<bdd::Bdd> realize(prog::DistributedProgram& program,
                              const bdd::Bdd& delta, const bdd::Bdd& tolerance,
                              const Options& options, Stats& stats) {
  LR_TRACE_SPAN_NAMED(span, "realize");
  sym::Space& space = program.space();
  bdd::Manager& mgr = space.manager();

  const bdd::Bdd valid_cur = space.valid(sym::Version::kCurrent);
  const bdd::Bdd valid_pair = space.valid_pair();
  const bdd::Bdd identity = space.identity();

  // Line 1: add every transition that starts outside the fault span.
  const bdd::Bdd with_outside =
      delta | (valid_cur.minus(tolerance) & valid_pair);
  // Self-loops are realized by stuttering, not by grouping.
  const bdd::Bdd proper = with_outside.minus(identity);

  if (sym::IntraEngine* engine = space.intra();
      engine != nullptr && program.process_count() > 1) {
    std::vector<bdd::Bdd> result =
        realize_parallel(program, proper, tolerance, options, stats, *engine);
    stats.peak_bdd_nodes =
        std::max(stats.peak_bdd_nodes, mgr.stats().peak_nodes);
    if (support::trace::enabled()) {
      span.attr("group_iterations",
                static_cast<std::uint64_t>(stats.group_iterations));
      span.attr("expand_accepts",
                static_cast<std::uint64_t>(stats.expand_successes));
      span.attr("expand_rejects",
                static_cast<std::uint64_t>(stats.expand_failures));
    }
    return result;
  }

  const bdd::Bdd all_bits_cube =
      space.cube(sym::Version::kCurrent) & space.cube(sym::Version::kNext);

  std::vector<bdd::Bdd> result;
  result.reserve(program.process_count());

  for (std::size_t j = 0; j < program.process_count(); ++j) {
    LR_TRACE_SPAN_NAMED(proc_span, "realize.process");
    proc_span.attr("process", static_cast<std::uint64_t>(j));
    // Line 5: drop transitions that write outside W_j.
    bdd::Bdd delta_j_pool = proper & program.respects_write(j);
    bdd::Bdd accepted = space.bdd_false();

    throw_if_cancelled(options.cancel);
    if (options.group_method == GroupMethod::kOneShot) {
      // Equivalent one-pass formulation: keep exactly the transitions whose
      // whole group is present, then restrict to groups that carry span
      // behavior.
      const bdd::Bdd closed = program.realizable_subset(j, delta_j_pool);
      accepted = program.group(j, closed & tolerance);
      if (options.journal != nullptr) {
        options.journal->group_accepted("repair.realize", j, accepted);
        // Everything of the pool that carried span behavior but is not in
        // the accepted closure fell to the closure test.
        options.journal->prune("repair.realize", "closure", j,
                               delta_j_pool & tolerance, accepted);
      }
    } else {
      // Lines 7-22 of Algorithm 2. The worklist is restricted to
      // transitions that start inside the span: groups made purely of
      // Line-1 don't-cares carry no behavior and need not be enumerated.
      const prog::Process& proc = program.process(j);
      std::unordered_set<sym::VarId> writes(proc.writes.begin(),
                                            proc.writes.end());
      std::vector<sym::VarId> expandable;  // R_j − W_j
      for (const sym::VarId v : proc.reads) {
        if (writes.count(v) == 0) expandable.push_back(v);
      }

      bdd::Bdd worklist = delta_j_pool & tolerance;
      support::progress::Heartbeat heartbeat("realize.groups");
      while (!worklist.is_false()) {
        throw_if_cancelled(options.cancel);
        ++stats.group_iterations;
        support::trace::counter("repair.groups_processed",
                                static_cast<double>(stats.group_iterations));
        if (heartbeat.due()) {
          heartbeat.emit("process " + std::to_string(j) + ", " +
                         std::to_string(stats.group_iterations) +
                         " groups, live nodes " +
                         std::to_string(mgr.live_nodes()));
        }
        // Line 8: choose one transition.
        const bdd::Bdd chosen = mgr.pick_minterm(worklist, all_bits_cube);
        // Line 9: its group.
        bdd::Bdd group = program.group(j, chosen);
        if (!group.leq(delta_j_pool)) {
          // Line 11: some member is missing; discard the whole group.
          if (options.journal != nullptr) {
            options.journal->group_rejected("repair.realize", j, "closure",
                                            group, group, delta_j_pool);
          }
          delta_j_pool = delta_j_pool.minus(group);
          worklist = worklist.minus(group);
          continue;
        }
        // Lines 13-18: try to widen the group by dropping readable
        // variables from the implicit guard.
        if (options.use_expand_group) {
          for (const sym::VarId v : expandable) {
            const sym::VarId vs[1] = {v};
            const bdd::Bdd widened =
                mgr.exists(group, space.cube_pair_of(vs)) & space.unchanged(v);
            if (widened.leq(delta_j_pool)) {
              group = widened;
              ++stats.expand_successes;
            } else {
              ++stats.expand_failures;
            }
          }
        }
        // Lines 19-20.
        if (options.journal != nullptr) {
          options.journal->group_accepted("repair.realize", j, group);
        }
        accepted |= group;
        delta_j_pool = delta_j_pool.minus(group);
        worklist = worklist.minus(group);
      }
    }
    if (support::trace::enabled()) {
      proc_span.attr("delta_nodes",
                     static_cast<std::uint64_t>(accepted.node_count()));
    }
    result.push_back(std::move(accepted));
  }
  stats.peak_bdd_nodes =
      std::max(stats.peak_bdd_nodes, mgr.stats().peak_nodes);
  if (support::trace::enabled()) {
    span.attr("group_iterations",
              static_cast<std::uint64_t>(stats.group_iterations));
    span.attr("expand_accepts",
              static_cast<std::uint64_t>(stats.expand_successes));
    span.attr("expand_rejects",
              static_cast<std::uint64_t>(stats.expand_failures));
  }
  return result;
}

}  // namespace lr::repair
