#pragma once

#include <vector>

#include "bdd/bdd.hpp"
#include "program/distributed_program.hpp"
#include "repair/types.hpp"

namespace lr::repair {

/// Step 2 of lazy repair: Algorithm 2 ("Constructing Distributed Program").
///
/// Takes the (possibly unrealizable) masking program δ' from Step 1 and its
/// fault span T', and returns per-process transition predicates δ_j that
/// satisfy both the write restriction (δ_j changes only W_j) and the read
/// restriction (δ_j is a union of complete groups).
///
/// Following the algorithm's Line 1, transitions from states the program
/// can never be in are added as don't-cares so that a group is not dropped
/// merely because some member starts there. The paper uses the complement
/// of the fault span T'; this implementation uses the complement of
/// `tolerance` — the forward reach of δ' ∪ f from S', a subset of T' that
/// over-approximates the reach of *every* realizable sub-program of δ'
/// (δ_j ⊆ δ' plus don't-cares that, inductively, are never executed). This
/// is the same justification the paper gives for its Line 1 ("the starting
/// state of that transition is never reached"), with the reachable set
/// computed exactly instead of over-approximated; it is what lets the
/// classic Byzantine-agreement solution through (see DESIGN.md).
///
/// Groups are then accepted only when all their members are present;
/// ExpandGroup (options.use_expand_group) merges groups that differ only in
/// the value of a readable-but-unwritten variable, which removes an
/// exponential number of loop iterations when it succeeds.
///
/// The returned δ_j contain exactly the accepted groups that carry some
/// behavior inside `tolerance` (groups entirely outside it are don't-cares
/// and are omitted from the output program; no computation from S' can
/// tell the difference).
///
/// Self-loops in δ' (original stutter steps inside S') are not subject to
/// grouping — Definition 18's stuttering realizes them — and are therefore
/// ignored here; Algorithm 1 accounts for them when checking deadlocks.
[[nodiscard]] std::vector<bdd::Bdd> realize(prog::DistributedProgram& program,
                                            const bdd::Bdd& delta,
                                            const bdd::Bdd& tolerance,
                                            const Options& options,
                                            Stats& stats);

}  // namespace lr::repair
