#include "repair/journal.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/fs.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace lr::repair {

namespace {

/// Narrative rendering of a count: integers print bare, large or
/// fractional values fall back to the state-count formatter.
std::string fmt_count(double value) {
  if (std::nearbyint(value) == value && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  return support::format_state_count(value);
}

std::string values_object(const std::vector<std::string>& names,
                          const std::vector<std::uint32_t>& values) {
  std::string out = "{";
  for (std::size_t v = 0; v < values.size(); ++v) {
    if (v > 0) out += ",";
    const std::string name =
        v < names.size() ? names[v] : "v" + std::to_string(v);
    out += support::json_quote(name) + ":" + std::to_string(values[v]);
  }
  out += "}";
  return out;
}

}  // namespace

void Journal::begin_run(prog::DistributedProgram& program,
                        std::string_view algorithm, std::string_view level) {
  space_ = &program.space();
  var_names_.clear();
  for (sym::VarId v = 0; v < space_->variable_count(); ++v) {
    var_names_.push_back(space_->info(v).name);
  }
  proc_names_.clear();
  for (std::size_t j = 0; j < program.process_count(); ++j) {
    proc_names_.push_back(program.process(j).name);
  }
  events_.clear();
  seq_ = 0;
  round_.reset();
  algorithm_ = algorithm;
  level_ = level;
}

void Journal::meta(const std::string& key, const std::string& value) {
  meta_[key] = value;
}

JournalEvent& Journal::push(std::string kind) {
  JournalEvent event;
  event.kind = std::move(kind);
  event.num["seq"] = static_cast<double>(seq_++);
  if (round_) event.num["round"] = static_cast<double>(*round_);
  events_.push_back(std::move(event));
  return events_.back();
}

void Journal::attach_state_witness(JournalEvent& event, const bdd::Bdd& set) {
  if (space_ == nullptr) return;
  if (auto state = space_->witness_state(set)) {
    event.witness = JournalWitness{std::move(*state), {}};
  }
}

void Journal::attach_transition_witness(JournalEvent& event,
                                        const bdd::Bdd& pruned) {
  if (space_ == nullptr) return;
  if (auto trans = space_->witness_transition(pruned)) {
    event.witness = JournalWitness{std::move(trans->first),
                                   std::move(trans->second)};
  }
}

void Journal::round_start(std::size_t round) {
  round_ = round;
  push("round_start");
}

void Journal::fixpoint_round(std::string_view phase, std::size_t iteration,
                             double invariant_states, double span_states) {
  JournalEvent& event = push("fixpoint_round");
  event.text["phase"] = std::string(phase);
  event.num["iteration"] = static_cast<double>(iteration);
  event.num["invariant_states"] = invariant_states;
  event.num["span_states"] = span_states;
}

void Journal::recovery_layer(std::size_t layer, double layer_states,
                             const bdd::Bdd& added) {
  JournalEvent& event = push("recovery_layer");
  event.num["layer"] = static_cast<double>(layer);
  event.num["states"] = layer_states;
  if (space_ != nullptr) {
    event.num["trans"] = space_->count_transitions(added);
  }
  event.num["nodes"] = static_cast<double>(added.node_count());
}

void Journal::step_one_summary(double invariant_states, double span_states,
                               std::size_t fixpoint_rounds,
                               std::size_t recovery_layers) {
  JournalEvent& event = push("step1");
  event.num["invariant_states"] = invariant_states;
  event.num["span_states"] = span_states;
  event.num["fixpoint_rounds"] = static_cast<double>(fixpoint_rounds);
  event.num["recovery_layers"] = static_cast<double>(recovery_layers);
}

void Journal::group_accepted(std::string_view phase, std::size_t process,
                             const bdd::Bdd& group) {
  JournalEvent& event = push("group");
  event.text["phase"] = std::string(phase);
  event.text["decision"] = "accepted";
  event.num["process"] = static_cast<double>(process);
  if (space_ != nullptr) event.num["trans"] = space_->count_transitions(group);
  event.num["nodes"] = static_cast<double>(group.node_count());
}

void Journal::group_rejected(std::string_view phase, std::size_t process,
                             std::string_view reason, const bdd::Bdd& group,
                             const bdd::Bdd& pre, const bdd::Bdd& acceptable) {
  JournalEvent& event = push("group");
  event.text["phase"] = std::string(phase);
  event.text["decision"] = "rejected";
  event.text["reason"] = std::string(reason);
  event.num["process"] = static_cast<double>(process);
  if (space_ != nullptr) event.num["trans"] = space_->count_transitions(group);
  event.num["nodes"] = static_cast<double>(group.node_count());
  // The claim: some member of `pre` falls outside `acceptable`.
  event.pre = pre;
  event.post = acceptable;
  attach_transition_witness(
      event, acceptable.valid() ? pre.minus(acceptable) : pre);
}

void Journal::prune(std::string_view phase, std::string_view reason,
                    std::size_t process, const bdd::Bdd& pre,
                    const bdd::Bdd& post) {
  const bdd::Bdd pruned = post.valid() ? pre.minus(post) : pre;
  if (pruned.is_false()) return;
  JournalEvent& event = push("prune");
  event.text["phase"] = std::string(phase);
  event.text["reason"] = std::string(reason);
  event.num["process"] = static_cast<double>(process);
  if (space_ != nullptr) event.num["trans"] = space_->count_transitions(pruned);
  event.num["nodes"] = static_cast<double>(pruned.node_count());
  event.pre = pre;
  event.post = post;
  attach_transition_witness(event, pruned);
}

void Journal::deadlock_round(const bdd::Bdd& deadlocks,
                             std::size_t ban_trans_nodes) {
  JournalEvent& event = push("deadlock_round");
  if (space_ != nullptr) event.num["states"] = space_->count_states(deadlocks);
  event.num["ban_nodes"] = static_cast<double>(ban_trans_nodes);
  event.pre = deadlocks;
  attach_state_witness(event, deadlocks);
}

void Journal::refine(double reachable_states) {
  JournalEvent& event = push("refine");
  event.num["reachable_states"] = reachable_states;
}

void Journal::run_end(bool success, std::string_view reason) {
  JournalEvent& event = push("run_end");
  event.num["success"] = success ? 1.0 : 0.0;
  if (!reason.empty()) event.text["reason"] = std::string(reason);
}

std::string Journal::to_jsonl() const {
  std::string out = "{\"schema\":" + std::to_string(kJournalSchemaVersion) +
                    ",\"event\":\"journal\",\"algorithm\":" +
                    support::json_quote(algorithm_) +
                    ",\"level\":" + support::json_quote(level_);
  for (const auto& [key, value] : meta_) {
    out += "," + support::json_quote(key) + ":" + support::json_quote(value);
  }
  out += ",\"variables\":[";
  for (std::size_t v = 0; v < var_names_.size(); ++v) {
    if (v > 0) out += ",";
    out += support::json_quote(var_names_[v]);
  }
  out += "]}\n";
  for (const JournalEvent& event : events_) {
    out += "{\"event\":" + support::json_quote(event.kind);
    for (const auto& [key, value] : event.text) {
      out += "," + support::json_quote(key) + ":" + support::json_quote(value);
    }
    for (const auto& [key, value] : event.num) {
      out += "," + support::json_quote(key) + ":" + support::json_number(value);
    }
    if (event.witness) {
      out += ",\"witness\":{\"from\":" +
             values_object(var_names_, event.witness->from);
      if (!event.witness->to.empty()) {
        out += ",\"to\":" + values_object(var_names_, event.witness->to);
      }
      out += "}";
    }
    out += "}\n";
  }
  return out;
}

bool Journal::save(const std::string& path) const {
  return support::write_file_atomic(path, to_jsonl());
}

namespace {

/// "x0=1, x1=0" — describe_process_program's guard naming.
std::string render_state(const std::vector<std::string>& names,
                         const std::vector<std::uint32_t>& values) {
  std::string out;
  for (std::size_t v = 0; v < values.size(); ++v) {
    if (v > 0) out += ", ";
    const std::string name =
        v < names.size() ? names[v] : "v" + std::to_string(v);
    out += name + "=" + std::to_string(values[v]);
  }
  return out;
}

/// "x0=1, x1=0 --> x1:=1" — guard plus the changed-variable updates, the
/// guarded-command shape describe_process_program prints.
std::string render_witness(const std::vector<std::string>& names,
                           const JournalWitness& witness) {
  std::string out = render_state(names, witness.from);
  if (witness.to.empty()) return out;
  std::string updates;
  for (std::size_t v = 0; v < witness.to.size(); ++v) {
    if (v < witness.from.size() && witness.to[v] == witness.from[v]) continue;
    if (!updates.empty()) updates += ", ";
    const std::string name =
        v < names.size() ? names[v] : "v" + std::to_string(v);
    updates += name + ":=" + std::to_string(witness.to[v]);
  }
  out += " --> " + (updates.empty() ? std::string("(stutter)") : updates);
  return out;
}

/// Per-(phase, process, decision, reason) tally of group events in one
/// round, flushed as one narrative line each.
struct GroupTally {
  std::size_t groups = 0;
  double trans = 0.0;
  const JournalWitness* witness = nullptr;  // first rejected witness
};

}  // namespace

std::vector<std::string> describe_journal(const Journal& journal) {
  std::vector<std::string> lines;
  const std::vector<std::string>& names = journal.variable_names();
  const std::vector<std::string>& procs = journal.process_names();

  const auto process_name = [&procs](double index) {
    const auto j = static_cast<std::size_t>(index);
    return j < procs.size() ? procs[j] : "p" + std::to_string(j);
  };
  const auto num = [](const JournalEvent& event, const char* key) {
    const auto it = event.num.find(key);
    return it == event.num.end() ? 0.0 : it->second;
  };
  const auto text = [](const JournalEvent& event, const char* key) {
    const auto it = event.text.find(key);
    return it == event.text.end() ? std::string() : it->second;
  };

  // Group events are tallied per round and flushed before the next
  // round-level event, so a big realize pass reads as one line per
  // (phase, process, decision) instead of one per group.
  std::map<std::string, GroupTally> tallies;
  std::vector<std::string> tally_order;
  const auto flush_groups = [&] {
    for (const std::string& key : tally_order) {
      const GroupTally& tally = tallies[key];
      std::string line = "  " + key + ": " + std::to_string(tally.groups) +
                         (tally.groups == 1 ? " group" : " groups") + " (" +
                         fmt_count(tally.trans) + " transitions)";
      lines.push_back(std::move(line));
      if (tally.witness != nullptr) {
        lines.push_back("    e.g. rejected member: " +
                        render_witness(names, *tally.witness));
      }
    }
    tallies.clear();
    tally_order.clear();
  };

  lines.push_back("repair journal: algorithm " + journal.algorithm() +
                  ", level " + journal.level());
  for (const JournalEvent& event : journal.events()) {
    if (event.kind == "group") {
      const std::string decision = text(event, "decision");
      const std::string reason = text(event, "reason");
      std::string key = text(event, "phase") + " process " +
                        process_name(num(event, "process")) + ": " + decision;
      if (!reason.empty()) key += " (" + reason + ")";
      auto [it, inserted] = tallies.try_emplace(key);
      if (inserted) tally_order.push_back(key);
      it->second.groups += 1;
      it->second.trans += num(event, "trans");
      if (decision == "rejected" && it->second.witness == nullptr &&
          event.witness) {
        it->second.witness = &*event.witness;
      }
      continue;
    }
    flush_groups();
    if (event.kind == "round_start") {
      lines.push_back("round " + fmt_count(num(event, "round")) + ":");
    } else if (event.kind == "fixpoint_round") {
      lines.push_back("  " + text(event, "phase") + " iteration " +
                      fmt_count(num(event, "iteration")) + ": |S1| = " +
                      fmt_count(num(event, "invariant_states")) +
                      " states, |T1| = " +
                      fmt_count(num(event, "span_states")) + " states");
    } else if (event.kind == "recovery_layer") {
      lines.push_back("  recovery layer " + fmt_count(num(event, "layer")) +
                      ": " + fmt_count(num(event, "states")) + " states, " +
                      fmt_count(num(event, "trans")) + " transitions added");
    } else if (event.kind == "step1") {
      lines.push_back(
          "  step 1: |S'| = " + fmt_count(num(event, "invariant_states")) +
          " states, |T'| = " + fmt_count(num(event, "span_states")) +
          " states (" + fmt_count(num(event, "fixpoint_rounds")) +
          " fixpoint rounds, " + fmt_count(num(event, "recovery_layers")) +
          " recovery layers)");
    } else if (event.kind == "prune") {
      std::string line = "  pruned (" + text(event, "reason") + ") process " +
                         process_name(num(event, "process")) + ": " +
                         fmt_count(num(event, "trans")) + " transitions";
      lines.push_back(std::move(line));
      if (event.witness) {
        lines.push_back("    e.g. pruned transition: " +
                        render_witness(names, *event.witness));
      }
    } else if (event.kind == "deadlock_round") {
      lines.push_back("  deadlock: " + fmt_count(num(event, "states")) +
                      " states banned (ban relation " +
                      fmt_count(num(event, "ban_nodes")) + " nodes)");
      if (event.witness) {
        lines.push_back("    e.g. deadlocked state: " +
                        render_state(names, event.witness->from));
      }
    } else if (event.kind == "refine") {
      lines.push_back("  refine: reachability reference tightened to " +
                      fmt_count(num(event, "reachable_states")) + " states");
    } else if (event.kind == "run_end") {
      const std::string reason = text(event, "reason");
      lines.push_back("result: " + std::string(num(event, "success") != 0.0
                                                   ? "success"
                                                   : "failed") +
                      (reason.empty() ? "" : " (" + reason + ")"));
    }
  }
  flush_groups();
  return lines;
}

}  // namespace lr::repair
