#include "repair/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <numeric>

#include "explicit_model/explicit_model.hpp"
#include "lang/parser.hpp"
#include "repair/cautious.hpp"
#include "repair/export.hpp"
#include "repair/order_setup.hpp"
#include "repair/journal.hpp"
#include "repair/lazy.hpp"
#include "repair/manifest.hpp"
#include "repair/report.hpp"
#include "support/fs.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/progress.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace lr::repair {

namespace {

std::string default_label(const BatchTask& task) {
  const char* base =
      task.algorithm == BatchTask::Algorithm::kCautious ? "cautious" : "lazy";
  const char* method = task.options.group_method == GroupMethod::kOneShot
                           ? " (one-shot)"
                           : " (group loop)";
  return std::string(base) + method;
}

std::string task_fingerprint(const BatchTask& task) {
  return options_fingerprint(
      task.options, task.algorithm == BatchTask::Algorithm::kCautious,
      task.verify);
}

/// Resume validation: the manifest row is only trusted after the exported
/// repaired model is re-parsed and passes the independent standalone
/// verifier. A corrupted, truncated or hand-edited export fails a check and
/// the task simply re-runs. Runs on the worker thread (it builds its own
/// program and BDD manager), so validation parallelizes like repair does.
bool export_still_valid(const BatchTask& task, const ManifestEntry& entry) {
  if (entry.export_path.empty()) return false;
  try {
    const std::unique_ptr<prog::DistributedProgram> exported =
        lang::parse_program_file(entry.export_path);
    return verify_tolerant_model(*exported, task.options.level).ok;
  } catch (...) {
    return false;
  }
}

/// Reprints a validated manifest row as a result without running anything.
/// Every field the batch report renders on stdout comes from the manifest,
/// which is why a resumed sweep's stdout is byte-identical to an
/// uninterrupted one.
BatchItemResult skipped_item(const ManifestEntry& entry) {
  BatchItemResult item;
  item.name = entry.name;
  item.algorithm = entry.algorithm;
  item.build_ok = true;
  item.success = true;
  item.model_states = entry.model_states;
  item.stats.invariant_states = entry.invariant_states;
  item.stats.span_states = entry.span_states;
  item.seconds = entry.seconds;
  item.verified = entry.verified;
  item.verify_ok = entry.verify_ok;
  item.attempts = entry.attempts;
  item.skipped = true;
  item.export_path = entry.export_path;
  return item;
}

/// Runs one task start-to-finish on the current thread, retrying attempts
/// that time out or throw. noexcept by construction: every failure path
/// lands in the item, never in the pool.
BatchItemResult run_task(const BatchTask& task, const BatchOptions& batch) {
  BatchItemResult item;
  item.name = task.name;
  item.algorithm =
      task.algorithm_label.empty() ? default_label(task) : task.algorithm_label;
  support::Stopwatch watch;
  LR_TRACE_SPAN_NAMED(span, "batch.task");
  span.attr("name", std::string_view(task.name));
  const std::size_t max_attempts = 1 + batch.task_retries;
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    item.attempts = attempt;
    item.build_ok = false;
    item.success = false;
    item.timed_out = false;
    item.failure_reason.clear();
    item.verified = false;
    item.verify_ok = false;
    item.verify_failures.clear();
    try {
      std::unique_ptr<prog::DistributedProgram> program = task.make_program();
      item.build_ok = true;
      item.model_states = program->space().state_space_size();
      Options options = task.options;
      if (batch.intra_jobs >= 1) options.intra_jobs = batch.intra_jobs;
      if (batch.task_timeout_seconds > 0.0) {
        options.cancel = CancelToken::with_timeout(batch.task_timeout_seconds);
      }
      // Declared after `program`: journal events hold Bdd handles and must
      // not outlive the task's Space.
      Journal journal;
      if (!task.journal_path.empty()) {
        journal.meta("model", task.name);
        options.journal = &journal;
      }
      const RepairResult result =
          task.algorithm == BatchTask::Algorithm::kCautious
              ? cautious_repair(*program, options)
              : lazy_repair(*program, options);
      item.success = result.success;
      item.failure_reason = result.failure_reason;
      item.stats = result.stats;
      if (!task.journal_path.empty() && !journal.save(task.journal_path)) {
        LR_LOG(warn) << "[batch] " << task.name << ": cannot write journal "
                     << task.journal_path;
      }
      if (result.success && task.verify) {
        item.verified = true;
        const VerifyReport report =
            verify_masking(*program, result, options.level);
        item.verify_ok = report.ok;
        item.verify_failures = report.failures;
      }
      // Profile before export: export_model restores the creation order,
      // which would wipe the end-of-run order the profile snapshots.
      if (result.success && !task.order_out_path.empty()) {
        const bdd::order::OrderProfile profile =
            capture_order_profile(*program, options);
        if (!bdd::order::save_profile(profile, task.order_out_path)) {
          LR_LOG(warn) << "[batch] " << task.name
                       << ": cannot write order profile "
                       << task.order_out_path;
        }
      }
      if (result.success && !task.export_path.empty()) {
        if (export_model_file(*program, result, task.export_path)) {
          item.export_path = task.export_path;
        } else {
          LR_LOG(warn) << "[batch] " << task.name
                       << ": cannot write export " << task.export_path;
        }
      }
      break;  // honest outcome (success or repair failure): never retried
    } catch (const Cancelled&) {
      item.timed_out = true;
      item.failure_reason =
          "timed out (task-timeout " +
          std::to_string(batch.task_timeout_seconds) + "s, attempt " +
          std::to_string(attempt) + "/" + std::to_string(max_attempts) + ")";
    } catch (const std::exception& error) {
      item.failure_reason = error.what();
    } catch (...) {
      item.failure_reason = "unknown exception";
    }
  }
  item.seconds = watch.seconds();
  span.attr("ok", std::uint64_t{item.ok() ? 1u : 0u});
  span.attr("attempts", static_cast<std::uint64_t>(item.attempts));
  return item;
}

ManifestEntry manifest_entry_of(const BatchTask& task,
                                const BatchItemResult& item,
                                const std::string& input_hash) {
  ManifestEntry entry;
  entry.name = item.name;
  entry.input_hash = input_hash;
  entry.options_fingerprint = task_fingerprint(task);
  entry.status = item.status();
  entry.algorithm = item.algorithm;
  entry.export_path = item.export_path;
  entry.failure_reason = item.failure_reason;
  entry.attempts = item.attempts;
  entry.seconds = item.seconds;
  entry.model_states = item.model_states;
  entry.invariant_states = item.stats.invariant_states;
  entry.span_states = item.stats.span_states;
  entry.verified = item.verified;
  entry.verify_ok = item.verify_ok;
  return entry;
}

}  // namespace

std::size_t BatchReport::ok_count() const noexcept {
  std::size_t n = 0;
  for (const BatchItemResult& item : items) {
    if (item.ok()) ++n;
  }
  return n;
}

std::size_t BatchReport::failed_count() const noexcept {
  return items.size() - ok_count();
}

std::size_t BatchReport::skipped_count() const noexcept {
  std::size_t n = 0;
  for (const BatchItemResult& item : items) {
    if (item.skipped) ++n;
  }
  return n;
}

BatchReport run_batch(const std::vector<BatchTask>& tasks,
                      const BatchOptions& raw_options) {
  BatchReport report;
  report.jobs = raw_options.jobs == 0 ? 1 : raw_options.jobs;
  report.items.resize(tasks.size());

  // Thread budget: jobs * intra_jobs is clamped to the machine (or to
  // `jobs`, whichever is larger — asking for --jobs above the core count is
  // an explicit oversubscription request and stays honored). Intra workers
  // are reduced first: inter-problem parallelism has no merge step.
  BatchOptions options = raw_options;
  if (options.intra_jobs > 1) {
    const std::size_t budget =
        std::max(support::ThreadPool::hardware_threads(), report.jobs);
    while (options.intra_jobs > 1 &&
           report.jobs * options.intra_jobs > budget) {
      --options.intra_jobs;
    }
  }

  const bool checkpointing = !options.manifest_path.empty();
  Manifest manifest;
  if (options.resume && checkpointing) {
    // Missing/corrupt/foreign-schema manifests mean "cold start".
    if (std::optional<Manifest> loaded = Manifest::load(options.manifest_path)) {
      manifest = std::move(*loaded);
    }
  }
  std::mutex manifest_mutex;

  // Dispatch order: predicted-most-expensive first, so a giant instance
  // cannot be scheduled last and stretch the batch tail (classic LPT
  // scheduling). stable_sort keeps unknown-cost tasks in task order.
  // Results still land at their original indices, so the report — and
  // therefore stdout — is identical under any dispatch permutation.
  std::vector<std::size_t> dispatch(tasks.size());
  std::iota(dispatch.begin(), dispatch.end(), std::size_t{0});
  std::stable_sort(dispatch.begin(), dispatch.end(),
                   [&tasks](std::size_t a, std::size_t b) {
                     return tasks[a].predicted_cost > tasks[b].predicted_cost;
                   });

  support::Stopwatch watch;
  {
    LR_TRACE_SPAN_NAMED(span, "batch.run");
    span.attr("tasks", static_cast<std::uint64_t>(tasks.size()));
    span.attr("jobs", static_cast<std::uint64_t>(report.jobs));
    std::atomic<std::size_t> tasks_done{0};
    std::atomic<std::size_t> tasks_skipped{0};
    support::progress::Heartbeat heartbeat("batch");
    support::parallel_for(tasks.size(), report.jobs, [&](std::size_t k) {
      const std::size_t i = dispatch[k];
      const BatchTask& task = tasks[i];

      std::string input_hash;
      if (checkpointing && !task.input_path.empty()) {
        input_hash = support::hash_file(task.input_path).value_or("");
      }

      // Resume: skip the task when its row checks out. The cheap tests
      // (status, hash, fingerprint) gate the expensive one (re-parsing and
      // re-verifying the export).
      bool skipped = false;
      if (options.resume) {
        const ManifestEntry* entry = nullptr;
        {
          const std::lock_guard<std::mutex> lock(manifest_mutex);
          entry = manifest.find(task.name);
        }
        if (entry != nullptr && entry->status == "ok" &&
            !input_hash.empty() && entry->input_hash == input_hash &&
            entry->options_fingerprint == task_fingerprint(task) &&
            export_still_valid(task, *entry)) {
          report.items[i] = skipped_item(*entry);
          skipped = true;
          const std::size_t n_skipped =
              tasks_skipped.fetch_add(1, std::memory_order_relaxed) + 1;
          support::trace::counter("batch.tasks_skipped",
                                  static_cast<double>(n_skipped));
          if (support::progress::enabled()) {
            heartbeat.emit(task.name + " skipped (validated manifest row)");
          }
        }
      }

      if (!skipped) {
        report.items[i] = run_task(task, options);
        if (checkpointing) {
          const ManifestEntry entry =
              manifest_entry_of(task, report.items[i], input_hash);
          const std::lock_guard<std::mutex> lock(manifest_mutex);
          manifest.set(entry);
          if (!manifest.save(options.manifest_path)) {
            LR_LOG(warn) << "[batch] cannot write manifest "
                         << options.manifest_path;
          }
        }
      }

      const std::size_t done =
          tasks_done.fetch_add(1, std::memory_order_relaxed) + 1;
      support::trace::counter("batch.tasks_done",
                              static_cast<double>(done));
      if (heartbeat.due()) {
        heartbeat.emit(std::to_string(done) + "/" +
                       std::to_string(tasks.size()) + " tasks done");
      }
    });
  }
  report.wall_seconds = watch.seconds();

  if (options.record_metrics) {
    // Task order, calling thread: the merged report is reproducible no
    // matter how the pool interleaved the work.
    support::metrics::Registry& m = support::metrics::registry();
    const std::string prefix =
        options.metrics_prefix.empty() ? "batch" : options.metrics_prefix;
    for (std::size_t i = 0; i < report.items.size(); ++i) {
      const BatchItemResult& item = report.items[i];
      if (tasks[i].predicted_cost >= 0.0) {
        m.set_gauge(prefix + "." + item.name + ".predicted_states",
                    tasks[i].predicted_cost);
      }
      // Checkpoint lifecycle: 1 = ok, 0 = failed, 2 = timed out.
      m.set_gauge(prefix + "." + item.name + ".status",
                  item.timed_out ? 2.0 : (item.ok() ? 1.0 : 0.0));
      m.set_gauge(prefix + "." + item.name + ".attempts",
                  static_cast<double>(item.attempts));
      m.set_gauge(prefix + "." + item.name + ".resumed",
                  item.skipped ? 1.0 : 0.0);
      if (!item.build_ok || item.skipped) continue;
      m.max_gauge(prefix + "." + item.name + ".peak_nodes",
                  static_cast<double>(item.stats.bdd.peak_nodes));
      record_run_metrics(item.stats);
      record_run_metrics(item.stats,
                         prefix + "." + item.name + "." + item.algorithm);
      m.set_gauge(prefix + "." + item.name + "." + item.algorithm + ".seconds",
                  item.seconds);
    }
    m.add(prefix + ".tasks", tasks.size());
    m.add(prefix + ".ok", report.ok_count());
    m.add(prefix + ".failed", report.failed_count());
    m.add(prefix + ".skipped", report.skipped_count());
    m.set_gauge(prefix + ".wall_seconds", report.wall_seconds);
    m.set_gauge(prefix + ".jobs", static_cast<double>(report.jobs));
  }

  LR_LOG(info) << "[batch] " << report.ok_count() << "/" << tasks.size()
               << " ok (" << report.skipped_count() << " resumed) in "
               << report.wall_seconds << "s (jobs=" << report.jobs << ")";
  return report;
}

}  // namespace lr::repair
