#include "repair/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <numeric>

#include "explicit_model/explicit_model.hpp"
#include "repair/cautious.hpp"
#include "repair/lazy.hpp"
#include "repair/report.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/progress.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace lr::repair {

namespace {

std::string default_label(const BatchTask& task) {
  const char* base =
      task.algorithm == BatchTask::Algorithm::kCautious ? "cautious" : "lazy";
  const char* method = task.options.group_method == GroupMethod::kOneShot
                           ? " (one-shot)"
                           : " (group loop)";
  return std::string(base) + method;
}

/// Runs one task start-to-finish on the current thread. noexcept by
/// construction: every failure path lands in the item, never in the pool.
BatchItemResult run_task(const BatchTask& task) {
  BatchItemResult item;
  item.name = task.name;
  item.algorithm =
      task.algorithm_label.empty() ? default_label(task) : task.algorithm_label;
  support::Stopwatch watch;
  LR_TRACE_SPAN_NAMED(span, "batch.task");
  span.attr("name", std::string_view(task.name));
  try {
    std::unique_ptr<prog::DistributedProgram> program = task.make_program();
    item.build_ok = true;
    item.model_states = program->space().state_space_size();
    const RepairResult result =
        task.algorithm == BatchTask::Algorithm::kCautious
            ? cautious_repair(*program, task.options)
            : lazy_repair(*program, task.options);
    item.success = result.success;
    item.failure_reason = result.failure_reason;
    item.stats = result.stats;
    if (result.success && task.verify) {
      item.verified = true;
      const VerifyReport report =
          verify_masking(*program, result, task.options.level);
      item.verify_ok = report.ok;
      item.verify_failures = report.failures;
    }
  } catch (const std::exception& error) {
    item.failure_reason = error.what();
  } catch (...) {
    item.failure_reason = "unknown exception";
  }
  item.seconds = watch.seconds();
  span.attr("ok", std::uint64_t{item.ok() ? 1u : 0u});
  return item;
}

}  // namespace

std::size_t BatchReport::ok_count() const noexcept {
  std::size_t n = 0;
  for (const BatchItemResult& item : items) {
    if (item.ok()) ++n;
  }
  return n;
}

std::size_t BatchReport::failed_count() const noexcept {
  return items.size() - ok_count();
}

BatchReport run_batch(const std::vector<BatchTask>& tasks,
                      const BatchOptions& options) {
  BatchReport report;
  report.jobs = options.jobs == 0 ? 1 : options.jobs;
  report.items.resize(tasks.size());

  // Dispatch order: predicted-most-expensive first, so a giant instance
  // cannot be scheduled last and stretch the batch tail (classic LPT
  // scheduling). stable_sort keeps unknown-cost tasks in task order.
  // Results still land at their original indices, so the report — and
  // therefore stdout — is identical under any dispatch permutation.
  std::vector<std::size_t> dispatch(tasks.size());
  std::iota(dispatch.begin(), dispatch.end(), std::size_t{0});
  std::stable_sort(dispatch.begin(), dispatch.end(),
                   [&tasks](std::size_t a, std::size_t b) {
                     return tasks[a].predicted_cost > tasks[b].predicted_cost;
                   });

  support::Stopwatch watch;
  {
    LR_TRACE_SPAN_NAMED(span, "batch.run");
    span.attr("tasks", static_cast<std::uint64_t>(tasks.size()));
    span.attr("jobs", static_cast<std::uint64_t>(report.jobs));
    std::atomic<std::size_t> tasks_done{0};
    support::progress::Heartbeat heartbeat("batch");
    support::parallel_for(tasks.size(), report.jobs, [&](std::size_t k) {
      const std::size_t i = dispatch[k];
      report.items[i] = run_task(tasks[i]);
      const std::size_t done =
          tasks_done.fetch_add(1, std::memory_order_relaxed) + 1;
      support::trace::counter("batch.tasks_done",
                              static_cast<double>(done));
      if (heartbeat.due()) {
        heartbeat.emit(std::to_string(done) + "/" +
                       std::to_string(tasks.size()) + " tasks done");
      }
    });
  }
  report.wall_seconds = watch.seconds();

  if (options.record_metrics) {
    // Task order, calling thread: the merged report is reproducible no
    // matter how the pool interleaved the work.
    support::metrics::Registry& m = support::metrics::registry();
    const std::string prefix =
        options.metrics_prefix.empty() ? "batch" : options.metrics_prefix;
    for (std::size_t i = 0; i < report.items.size(); ++i) {
      const BatchItemResult& item = report.items[i];
      if (tasks[i].predicted_cost >= 0.0) {
        m.set_gauge(prefix + "." + item.name + ".predicted_states",
                    tasks[i].predicted_cost);
      }
      if (!item.build_ok) continue;
      record_run_metrics(item.stats);
      record_run_metrics(item.stats,
                         prefix + "." + item.name + "." + item.algorithm);
      m.set_gauge(prefix + "." + item.name + "." + item.algorithm + ".seconds",
                  item.seconds);
    }
    m.add(prefix + ".tasks", tasks.size());
    m.add(prefix + ".ok", report.ok_count());
    m.add(prefix + ".failed", report.failed_count());
    m.set_gauge(prefix + ".wall_seconds", report.wall_seconds);
    m.set_gauge(prefix + ".jobs", static_cast<double>(report.jobs));
  }

  LR_LOG(info) << "[batch] " << report.ok_count() << "/" << tasks.size()
               << " ok in " << report.wall_seconds << "s (jobs="
               << report.jobs << ")";
  return report;
}

}  // namespace lr::repair
