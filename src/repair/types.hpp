#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "repair/cancel.hpp"
#include "symbolic/order_heur.hpp"
#include "symbolic/relation.hpp"

namespace lr::repair {

class Journal;

/// How Algorithm 2 decomposes a transition predicate into per-process
/// groups.
enum class GroupMethod {
  /// The paper's loop (Algorithm 2 lines 7-22): pick a transition, build
  /// its group, expand it variable-by-variable, include or discard.
  kPaperLoop,
  /// One universal quantification per process:
  /// δ_j = Δ_j ∧ ∀U_j,U_j'. (same(U_j) ⇒ Δ_j). Provably computes the same
  /// set of fully-contained groups; used as an ablation and cross-check.
  kOneShot,
};

/// Which level of the fault-tolerance hierarchy to add (Kulkarni-Arora).
/// The paper's algorithms target masking; the other two levels drop one of
/// its two obligations and fall out of the same machinery.
enum class ToleranceLevel {
  /// Safety only: in the presence of faults the program never violates the
  /// safety specification, but it may stop making progress (no recovery
  /// obligation).
  kFailsafe,
  /// Recovery only: from every reachable state the program converges back
  /// to the invariant, but safety may be violated in the meantime.
  kNonmasking,
  /// Both: the paper's problem statement.
  kMasking,
};

/// Display name of a tolerance level ("masking", "failsafe", "nonmasking").
[[nodiscard]] constexpr const char* tolerance_level_name(ToleranceLevel level) {
  switch (level) {
    case ToleranceLevel::kFailsafe: return "failsafe";
    case ToleranceLevel::kNonmasking: return "nonmasking";
    case ToleranceLevel::kMasking: break;
  }
  return "masking";
}

/// Tuning knobs shared by the repair algorithms.
struct Options {
  /// Tolerance level to add. Algorithms treat kMasking as in the paper;
  /// kFailsafe skips the recovery obligations, kNonmasking the safety ones.
  ToleranceLevel level = ToleranceLevel::kMasking;
  /// The Step-1 heuristic the paper credits for the speedup: restrict
  /// Add-Masking's search space to the states the fault-intolerant program
  /// reaches in the presence of faults ("pure lazy repair does not improve
  /// the performance", Section I/VI).
  bool restrict_to_reachable = true;

  /// Enable Algorithm 2's ExpandGroup (lines 13-18).
  bool use_expand_group = true;

  GroupMethod group_method = GroupMethod::kPaperLoop;

  /// Run one pass of BDD variable sifting over the compiled program before
  /// repairing. The interleaved static order is usually already good;
  /// sifting occasionally helps models whose interaction structure does
  /// not follow declaration order.
  bool sift_before_repair = false;

  /// Static initial variable order, applied before the model is compiled
  /// (and before intra workers mirror the order): kDecl keeps declaration
  /// order, the heuristic modes compute one from the parsed structure, and
  /// kFile warm-starts from a persisted order profile (`order_file`).
  /// See sym::order and repair/order_setup.hpp.
  sym::order::Mode order_mode = sym::order::Mode::kDecl;

  /// Path of the persisted order profile when order_mode == kFile. The
  /// repair entry points throw std::runtime_error when it is unreadable or
  /// does not match the model (the CLI pre-validates; the batch executor
  /// records the error per task).
  std::string order_file;

  /// Bound on Algorithm 1's outer repeat loop (defensive; case studies
  /// converge in 1-2 iterations).
  std::size_t max_outer_iterations = 64;

  /// Transition-relation representation (--rel). kPartition runs the
  /// image/preimage fixpoints over a scheduled conjunctive/disjunctive
  /// partition with early quantification (see symbolic/relation.hpp);
  /// kMono keeps the historical flat-BDD call shapes. kAuto partitions
  /// whenever the program has >= 2 natural parts. Both representations
  /// compute the same canonical sets, so results, exports, journals and
  /// non-timing metrics are byte-identical across modes.
  sym::RelationMode relation_mode = sym::RelationMode::kAuto;

  /// Intra-problem worker count (--par-intra). With >= 2, image/preimage
  /// computation shards the transition relation across a per-problem
  /// worker pool and realize() enumerates per-process groups in parallel;
  /// results, journals and exports are bit-identical to the sequential
  /// path (BDD canonicity; decisions commit in canonical order). 1 or 0
  /// means fully sequential.
  std::size_t intra_jobs = 1;

  /// Cooperative cancellation: when set, the lazy/cautious/add_masking/
  /// realize loops call throw_if_cancelled() at fixpoint-round granularity
  /// and abort with repair::Cancelled once the token expires (explicit
  /// cancel() or a with_timeout() deadline). Null means never cancelled.
  /// The batch executor uses this to enforce --task-timeout.
  std::shared_ptr<CancelToken> cancel;

  /// Decision journal sink (see repair/journal.hpp). Null disables
  /// journaling entirely — the algorithms emit events (and pay for the
  /// witness extraction and state counting behind them) only when set.
  /// Non-owning: the caller keeps the Journal alive through the run and
  /// must not let it outlive the program's Space. Threaded like `cancel`.
  Journal* journal = nullptr;
};

/// Measurements reported by the algorithms; the benchmark tables are
/// printed from these.
struct Stats {
  double step1_seconds = 0.0;  ///< Add-Masking time (Table "Time for Step 1")
  double step2_seconds = 0.0;  ///< Algorithm 2 time (Table "Time for Step 2")
  double total_seconds = 0.0;

  std::size_t outer_iterations = 0;       ///< Algorithm 1 repeat rounds
  std::size_t addmasking_rounds = 0;      ///< Step-1 outer fixpoint rounds
  std::size_t group_iterations = 0;       ///< Algorithm 2 loop iterations
  std::size_t expand_successes = 0;       ///< accepted ExpandGroup enlargements
  std::size_t expand_failures = 0;        ///< rejected ExpandGroup enlargements
  std::size_t recovery_layers = 0;        ///< BFS layers of the fault span

  double reachable_states = -1.0;  ///< |Reach(S, δ_P ∪ f)| (table column 1)
  double span_states = -1.0;       ///< |T'| of the result
  double invariant_states = -1.0;  ///< |S'| of the result
  std::size_t peak_bdd_nodes = 0;  ///< engine high-water mark

  /// Deadlock-elimination history across Algorithm 1's outer iterations:
  /// how many rounds had to ban states, how many states they banned in
  /// total, and the BDD size of the accumulated banned-transition relation.
  std::size_t deadlock_rounds = 0;
  double deadlock_states_banned = 0.0;
  std::size_t banned_trans_nodes = 0;

  /// BDD engine counters captured when the algorithm returned (cache
  /// hit/miss, GC activity, node populations — see bdd::ManagerStats).
  bdd::ManagerStats bdd;
};

/// Result of Step 1 (Add-Masking without realizability constraints).
struct StepOneResult {
  bool success = false;
  bdd::Bdd invariant;   ///< S'
  bdd::Bdd fault_span;  ///< T'
  /// δ': transitions of the (possibly unrealizable) masking program —
  /// original transitions inside S' plus layered recovery; the only
  /// self-loops are original stutter steps inside S'.
  bdd::Bdd delta;
};

/// Result of a full repair (lazy or cautious).
struct RepairResult {
  bool success = false;
  std::string failure_reason;
  bdd::Bdd invariant;   ///< S'
  bdd::Bdd fault_span;  ///< T'
  /// Realizable per-process transition predicates δ_j (proper transitions;
  /// Definition-18 stuttering supplies self-loops).
  std::vector<bdd::Bdd> process_deltas;
  /// ∪_j δ_j.
  bdd::Bdd delta;
  Stats stats;
};

}  // namespace lr::repair
