#pragma once

#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "program/distributed_program.hpp"
#include "repair/types.hpp"

namespace lr::repair {

/// Verdict of the independent symbolic verifier.
struct VerifyReport {
  bool ok = false;
  std::vector<std::string> failures;  ///< human-readable failed checks

  // Individual checks (true = passed). `ok` is their conjunction.
  bool invariant_nonempty = false;
  bool invariant_subset = false;      ///< S' ⊆ S
  bool no_new_behavior = false;       ///< δ'|S' ⊆ δ_P|S'
  bool invariant_closed = false;      ///< image(δ', S') ⊆ S'
  bool safe_in_invariant = false;     ///< no bad state/transition inside S'
  bool safety_under_faults = false;   ///< no bad state/transition reachable
  bool deadlock_free = false;         ///< stuck states are legit terminals in S'
  bool livelock_free = false;         ///< no infinite run avoiding S'
  bool realizable = false;            ///< Definitions 19/20 hold for each δ_j
  bool span_covers_reachable = false; ///< reported T' ⊇ Reach(S', δ' ∪ f)

  double reachable_span_states = -1.0;
};

/// Independently verifies that a repair result is a *realizable masking
/// f-tolerant* program (Theorems 1 and 2): re-derives the fault span from
/// scratch and checks closure, safety, recovery (deadlock + livelock
/// freedom via a νZ fixpoint), the no-new-behavior condition, and the
/// read/write realizability of every process delta.
///
/// The program's Definition-18 semantics (stuttering at states with no
/// enabled action) is applied to the result's process deltas before
/// checking.
/// `level` selects which obligations are checked: kFailsafe drops the
/// recovery checks (deadlocks/livelocks outside S' are permitted),
/// kNonmasking drops the safety-under-faults checks. Both keep the
/// invariant-side requirements (closure, no new behavior, SPEC inside S').
[[nodiscard]] VerifyReport verify_masking(
    prog::DistributedProgram& program, const RepairResult& result,
    ToleranceLevel level = ToleranceLevel::kMasking);

/// Verifies that a *standalone* program (typically a repaired model written
/// by export_model and parsed back) is itself f-tolerant, without access to
/// the RepairResult that produced it. The candidate invariant is re-derived
/// from the model: the largest subset of its declared invariant that avoids
/// the fault-unsafe states (ms, computed over the full valid space) and is
/// closed under the model's own stutter-completed transitions; the fault
/// span is fresh forward reachability from that set. The derived set
/// contains any genuine repair's S', so a correct export passes every check
/// of verify_masking, while a corrupted or hand-edited one fails at least
/// one — which is exactly the staleness signal batch --resume needs, at a
/// fraction of the cost of re-running the repair.
[[nodiscard]] VerifyReport verify_tolerant_model(
    prog::DistributedProgram& program,
    ToleranceLevel level = ToleranceLevel::kMasking);

}  // namespace lr::repair
