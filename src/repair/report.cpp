#include "repair/report.hpp"

#include "support/metrics.hpp"

namespace lr::repair {

void record_run_metrics(const Stats& stats, const std::string& prefix) {
  using support::metrics::registry;
  support::metrics::Registry& m = registry();
  const std::string p = prefix.empty() ? "" : prefix + ".";

  m.set_gauge(p + "repair.step1_seconds", stats.step1_seconds);
  m.set_gauge(p + "repair.step2_seconds", stats.step2_seconds);
  m.set_gauge(p + "repair.total_seconds", stats.total_seconds);
  m.set_gauge(p + "repair.reachable_states", stats.reachable_states);
  m.set_gauge(p + "repair.span_states", stats.span_states);
  m.set_gauge(p + "repair.invariant_states", stats.invariant_states);
  m.set_gauge(p + "repair.deadlock_states_banned",
              stats.deadlock_states_banned);

  m.add(p + "repair.outer_iterations", stats.outer_iterations);
  m.add(p + "repair.addmasking_rounds", stats.addmasking_rounds);
  m.add(p + "repair.group_iterations", stats.group_iterations);
  m.add(p + "repair.expand_accepts", stats.expand_successes);
  m.add(p + "repair.expand_rejects", stats.expand_failures);
  m.add(p + "repair.recovery_layers", stats.recovery_layers);
  m.add(p + "repair.deadlock_rounds", stats.deadlock_rounds);
  m.max_gauge(p + "repair.banned_trans_nodes",
              static_cast<double>(stats.banned_trans_nodes));
  m.max_gauge(p + "repair.peak_bdd_nodes",
              static_cast<double>(stats.peak_bdd_nodes));

  m.add(p + "bdd.cache_lookups", stats.bdd.cache_lookups);
  m.add(p + "bdd.cache_hits", stats.bdd.cache_hits);
  m.add(p + "bdd.unique_hits", stats.bdd.unique_hits);
  m.add(p + "bdd.created_nodes", stats.bdd.created_nodes);
  m.add(p + "bdd.gc_runs", stats.bdd.gc_runs);
  m.add(p + "bdd.gc_reclaimed", stats.bdd.gc_reclaimed);
  m.add(p + "bdd.reorder_runs", stats.bdd.reorder_runs);
  m.add(p + "bdd.cache_evictions", stats.bdd.cache_evictions);
  m.max_gauge(p + "bdd.live_nodes", static_cast<double>(stats.bdd.live_nodes));
  m.max_gauge(p + "bdd.peak_nodes", static_cast<double>(stats.bdd.peak_nodes));
  m.max_gauge(p + "bdd.peak_bytes", static_cast<double>(stats.bdd.peak_bytes));
  m.set_gauge(p + "bdd.cache_hit_rate",
              stats.bdd.cache_lookups == 0
                  ? 0.0
                  : static_cast<double>(stats.bdd.cache_hits) /
                        static_cast<double>(stats.bdd.cache_lookups));
}

bool write_metrics_report(const std::string& path) {
  return support::metrics::write_json_file(path);
}

}  // namespace lr::repair
