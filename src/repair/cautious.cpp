#include "repair/cautious.hpp"

#include <algorithm>

#include "repair/journal.hpp"
#include "repair/order_setup.hpp"
#include "repair/relation_setup.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/progress.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace lr::repair {

namespace {

/// Largest subset of `states` where every state has a `rel`-successor
/// inside the subset.
bdd::Bdd construct_invariant(sym::Space& space, bdd::Bdd states,
                             const sym::TransitionRelation& rel) {
  while (true) {
    const bdd::Bdd alive = states & space.preimage(rel, states);
    if (alive == states) return states;
    states = alive;
  }
}

/// Keeps the groups of `candidate` (for process j) all of whose *reachable*
/// members satisfy `zone` — the cautious discipline's per-step closure with
/// the Section-IV unreachable-member tolerance — and returns them closed
/// (unreachable members re-included so the result is a union of groups).
///
/// Two implementations, selected by options.group_method:
///  * kPaperLoop — group-by-group enumeration, as the tool of ref [2]
///    worked: pick a transition, build its group, test every member,
///    accept or reject. This is the faithful baseline the paper compares
///    against; its cost is what makes cautious repair expensive, because
///    it runs inside every iteration over the full state space.
///  * kOneShot — one universal quantification (same result, much faster);
///    an ablation showing how much of the paper's gap is the enumeration.
bdd::Bdd tolerant_groups(prog::DistributedProgram& program, std::size_t j,
                         const bdd::Bdd& candidate, const bdd::Bdd& zone,
                         const bdd::Bdd& reachable, const char* phase,
                         const Options& options, Stats& stats) {
  sym::Space& space = program.space();
  bdd::Manager& mgr = space.manager();
  if (options.group_method == GroupMethod::kOneShot) {
    const bdd::Bdd acceptable = zone | ~reachable;
    const bdd::Bdd member_shape =
        program.same_unreadable(j) & space.valid_pair();
    const bdd::Bdd closed = mgr.forall(member_shape.implies(acceptable),
                                       program.unreadable_cube(j));
    const bdd::Bdd seeds = candidate & zone & closed;
    const bdd::Bdd accepted = program.group(j, seeds);
    if (options.journal != nullptr) {
      options.journal->group_accepted(phase, j, accepted);
      // Seeds that fell to the closure test (some reachable member of
      // their group leaves the zone).
      options.journal->prune(phase, "safety", j, candidate & zone, accepted);
    }
    return accepted;
  }
  const bdd::Bdd all_bits =
      space.cube(sym::Version::kCurrent) & space.cube(sym::Version::kNext);
  bdd::Bdd pool = candidate & zone;
  bdd::Bdd accepted = space.bdd_false();
  while (!pool.is_false()) {
    throw_if_cancelled(options.cancel);
    ++stats.group_iterations;
    const bdd::Bdd chosen = mgr.pick_minterm(pool, all_bits);
    const bdd::Bdd group = program.group(j, chosen);
    // Accept iff every member that the original program can reach lies in
    // the acceptable zone (Section-IV heuristic for the rest).
    if ((group & reachable).leq(zone)) {
      if (options.journal != nullptr) {
        options.journal->group_accepted(phase, j, group);
      }
      accepted |= group;
    } else if (options.journal != nullptr) {
      options.journal->group_rejected(phase, j, "safety", group,
                                      group & reachable, zone);
    }
    pool = pool.minus(group);
  }
  return accepted;
}

}  // namespace

RepairResult cautious_repair(prog::DistributedProgram& program,
                             const Options& options) {
  LR_TRACE_SPAN_NAMED(run_span, "cautious_repair");
  sym::Space& space = program.space();
  bdd::Manager& mgr = space.manager();
  support::Stopwatch total;

  RepairResult result;
  const auto finish = [&result, &mgr, &total] {
    result.stats.total_seconds = total.seconds();
    result.stats.bdd = mgr.stats();
    result.stats.peak_bdd_nodes =
        std::max(result.stats.peak_bdd_nodes, result.stats.bdd.peak_nodes);
  };
  // Static order first, so every BDD below compiles under it (and the
  // intra workers mirror it when enabled).
  apply_order_options(program, options);

  if (options.journal != nullptr) {
    options.journal->begin_run(program, "cautious",
                               tolerance_level_name(options.level));
  }

  // Sharded image/preimage: the cautious fixpoints all funnel through
  // Space::preimage, which auto-partitions large relations when enabled.
  space.enable_intra(options.intra_jobs);

  // --rel resolution + partition-shape record (metrics, journal header).
  const sym::RelationMode rel_mode = resolved_relation_mode(program, options);
  const bool rel_partitioned = rel_mode == sym::RelationMode::kPartition;
  record_relation_shape(program, options, options.journal);
  const sym::TransitionRelation faults_rel = fault_relation(program, rel_mode);

  const std::size_t nproc = program.process_count();
  const bdd::Bdd delta_p = program.program_delta();
  const bdd::Bdd faults = program.fault_delta();
  const bdd::Bdd valid_cur = space.valid(sym::Version::kCurrent);
  const bdd::Bdd valid_pair = space.valid_pair();
  const bdd::Bdd identity = space.identity();
  const bdd::Bdd bad_states = program.safety().bad_states;
  // The original stutter steps (legitimate terminal states).
  const bdd::Bdd orig_diag = delta_p & identity;

  // Reachability of the fault-intolerant program under faults: used only by
  // the Section-IV heuristic, as in [2] — the repair itself explores the
  // full state space.
  // `reach_ref` is the reachability reference of the Section-IV tolerance.
  // It starts as the fault-intolerant program's reachable set and is
  // refined to the candidate program's own reachable set whenever that is
  // smaller — the cautious analogue of SYCRAFT's deferred decisions, and
  // necessary for non-degenerate solutions (see DESIGN.md).
  bdd::Bdd reach_ref = program.reachable_under_faults();
  result.stats.reachable_states = space.count_states(reach_ref);

  // ms / mt over the full state space.
  bdd::Bdd ms = bad_states |
                mgr.exists(faults & program.safety().bad_trans,
                           space.cube(sym::Version::kNext));
  while (true) {
    const bdd::Bdd grown = ms | space.preimage(faults_rel, ms);
    if (grown == ms) break;
    ms = grown;
  }
  bdd::Bdd mt = (program.safety().bad_trans | space.prime(ms)) & valid_pair;

  bdd::Bdd s1 = program.invariant().minus(ms);
  bdd::Bdd t1 = valid_cur.minus(ms);
  std::size_t refinements = 0;

  support::progress::Heartbeat heartbeat("cautious_repair");
  for (std::size_t round = 0; round < options.max_outer_iterations; ++round) {
    throw_if_cancelled(options.cancel);
    ++result.stats.outer_iterations;
    if (options.journal != nullptr) options.journal->round_start(round);
    LR_TRACE_SPAN_NAMED(round_span, "cautious_repair.round");
    round_span.attr("round", static_cast<std::uint64_t>(round));
    support::trace::counter("repair.deadlock_round",
                            static_cast<double>(round));
    if (heartbeat.due()) {
      heartbeat.emit("round " + std::to_string(round) + ", refinements " +
                     std::to_string(refinements) + ", live nodes " +
                     std::to_string(mgr.live_nodes()));
    }
    LR_LOG(debug) << "[cautious] round=" << round
                  << " s1=" << space.count_states(s1)
                  << " t1=" << space.count_states(t1)
                  << " refs=" << refinements;
    if (s1.is_false()) {
      result.failure_reason = "invariant became empty";
      if (options.journal != nullptr) {
        options.journal->run_end(false, result.failure_reason);
      }
      finish();
      return result;
    }

    // --- Group-closed invariant behavior per process ----------------------------
    LR_TRACE_SPAN_NAMED(groups_span, "cautious_repair.groups");
    const bdd::Bdd inv_zone = s1 & space.prime(s1) & ~mt;
    std::vector<bdd::Bdd> inv_j(nproc);
    bdd::Bdd inv_all = space.bdd_false();
    for (std::size_t j = 0; j < nproc; ++j) {
      inv_j[j] = tolerant_groups(program, j, program.process_delta(j),
                                 inv_zone & program.process_delta(j),
                                 reach_ref, "analysis.invariant", options,
                                 result.stats);
      inv_all |= inv_j[j];
    }
    // Keep original stutter loops inside the invariant.
    const bdd::Bdd inv_stutter = orig_diag & s1 & space.prime(s1);

    // --- Group-closed candidate recovery per process -----------------------------
    // Targets are kept inside the original reachable set (plus S1) so the
    // unreachable-member tolerance above stays sound.
    const bdd::Bdd rec_targets = s1 | (reach_ref & t1);
    const bdd::Bdd rec_zone = t1.minus(s1) & space.prime(rec_targets) &
                              valid_pair & ~mt & ~identity;
    std::vector<bdd::Bdd> rec_j(nproc);
    bdd::Bdd rec_all = space.bdd_false();
    for (std::size_t j = 0; j < nproc; ++j) {
      const bdd::Bdd cand = rec_zone & program.respects_write(j);
      rec_j[j] = tolerant_groups(program, j, cand, cand, reach_ref,
                                 "analysis.recovery", options, result.stats);
      rec_all |= rec_j[j];
    }

    groups_span.close();

    // --- Shrink (S1, T1) with the grouped transition sets -------------------------
    ++result.stats.addmasking_rounds;
    LR_TRACE_SPAN_NAMED(shrink_span, "cautious_repair.shrink");
    // P1 as a relation: partitioned it keeps the per-process grouped sets
    // as disjunctive parts (their supports are what early quantification
    // schedules around); mono materializes the historical union.
    sym::TransitionRelation p1_rel(space, rel_mode);
    if (rel_partitioned) {
      for (const bdd::Bdd& part : inv_j) {
        if (!part.is_false()) p1_rel.add_part(part);
      }
      if (!inv_stutter.is_false()) p1_rel.add_part(inv_stutter);
      for (const bdd::Bdd& part : rec_j) {
        if (!part.is_false()) p1_rel.add_part(part);
      }
    } else {
      p1_rel.add_part(inv_all | inv_stutter | rec_all);
    }
    bdd::Bdd t2 = t1;
    while (true) {
      throw_if_cancelled(options.cancel);
      bdd::Bdd can_recover = s1 & t2;
      while (true) {
        const bdd::Bdd grown =
            can_recover | (t2 & space.preimage(p1_rel, can_recover));
        if (grown == can_recover) break;
        can_recover = grown;
      }
      bdd::Bdd t2_new = can_recover;
      while (true) {
        const bdd::Bdd escaping =
            t2_new & space.preimage(faults_rel, valid_cur.minus(t2_new));
        if (escaping.is_false()) break;
        t2_new = t2_new.minus(escaping);
      }
      if (t2_new == t2) break;
      t2 = t2_new;
    }
    bdd::Bdd s2 = s1 & t2;
    {
      // Invariant closure under P1 ∧ S2': partitioned, prime(s2) rides as
      // a conjunct of each invariant part instead of materializing the
      // product.
      sym::TransitionRelation closure_rel(space, rel_mode);
      if (rel_partitioned) {
        const bdd::Bdd s2_primed = space.prime(s2);
        for (const bdd::Bdd& part : inv_j) {
          if (!part.is_false()) closure_rel.add_part(part, s2_primed);
        }
        if (!inv_stutter.is_false()) {
          closure_rel.add_part(inv_stutter, s2_primed);
        }
      } else {
        closure_rel.add_part((inv_all | inv_stutter) & space.prime(s2));
      }
      s2 = construct_invariant(space, s2, closure_rel);
    }
    if (options.journal != nullptr) {
      options.journal->fixpoint_round("cautious.shrink",
                                      result.stats.addmasking_rounds,
                                      space.count_states(s2),
                                      space.count_states(t2));
    }
    if (s2 != s1 || t2 != t1) {
      LR_LOG(debug) << "[cautious]   shrink path";
      s1 = s2;
      t1 = t2;
      continue;  // groups must be re-derived for the shrunk pair
    }
    shrink_span.close();

    // --- Layered, group-closed recovery selection ----------------------------------
    LR_TRACE_SPAN_NAMED(layers_span, "cautious_repair.layers");
    bdd::Bdd below = s1;
    bdd::Bdd layer_decreasing = space.bdd_false();
    bdd::Bdd remaining = t1.minus(s1);
    sym::TransitionRelation rec_rel(space, rel_mode);
    if (rel_partitioned) {
      for (const bdd::Bdd& part : rec_j) {
        if (!part.is_false()) rec_rel.add_part(part);
      }
    } else {
      rec_rel.add_part(rec_all);
    }
    result.stats.recovery_layers = 0;
    while (!remaining.is_false()) {
      const bdd::Bdd layer = space.preimage(rec_rel, below) & remaining;
      if (layer.is_false()) break;  // leftovers are handled by the DL check
      layer_decreasing |= layer & space.prime(below);
      below |= layer;
      remaining = remaining.minus(layer);
      ++result.stats.recovery_layers;
      if (options.journal != nullptr) {
        options.journal->recovery_layer(result.stats.recovery_layers,
                                        space.count_states(layer),
                                        rec_all & layer & space.prime(below));
      }
    }
    std::vector<bdd::Bdd> final_j(nproc);
    bdd::Bdd actions = space.bdd_false();
    for (std::size_t j = 0; j < nproc; ++j) {
      const bdd::Bdd kept_rec =
          tolerant_groups(program, j, rec_j[j], rec_j[j] & layer_decreasing,
                          reach_ref, "analysis.layers", options, result.stats);
      final_j[j] = inv_j[j] | kept_rec;
      actions |= final_j[j];
    }

    layers_span.close();

    // --- Deadlock check over the program's own reachable span ----------------------
    LR_TRACE_SPAN_NAMED(dl_span, "cautious_repair.deadlock_check");
    const bdd::Bdd realized = actions | inv_stutter;
    std::vector<bdd::Bdd> partitions = final_j;
    const std::vector<bdd::Bdd>& fault_parts = program.fault_action_deltas();
    partitions.insert(partitions.end(), fault_parts.begin(), fault_parts.end());
    const sym::TransitionRelation span_rel =
        sym::TransitionRelation::build(space, partitions, rel_mode);
    const bdd::Bdd span = space.forward_reachable(span_rel, s1);
    // Refinement reference: the candidate program's reach from the *full*
    // candidate invariant — the set the next round restarts from. (Using
    // `span` alone could shrink the reference below the restart invariant
    // and blanket-tolerate legitimate states.)
    const bdd::Bdd span_full = space.forward_reachable(
        span_rel, program.invariant().minus(ms));
    if (refinements < 8 && !reach_ref.leq(span_full)) {
      // The candidate program visits fewer states than the tolerance
      // reference assumed: tighten the reference and redo the analysis
      // from the initial (S1, T1) so previously-rejected groups can enter.
      ++refinements;
      LR_LOG(debug) << "[cautious]   refine path";
      reach_ref &= span_full;
      if (options.journal != nullptr) {
        options.journal->refine(space.count_states(reach_ref));
      }
      s1 = program.invariant().minus(ms);
      t1 = valid_cur.minus(ms);
      continue;
    }
    // Dead-region check: a state is alive when some successor chain stays
    // alive (stutter loops keep legitimate terminals alive); banning the
    // backward-closed dead set at once avoids one-layer-per-round peeling.
    sym::TransitionRelation realized_rel(space, rel_mode);
    if (rel_partitioned) {
      for (const bdd::Bdd& part : final_j) {
        if (!part.is_false()) realized_rel.add_part(part);
      }
      if (!inv_stutter.is_false()) realized_rel.add_part(inv_stutter);
    } else {
      realized_rel.add_part(realized);
    }
    bdd::Bdd alive = span;
    while (true) {
      const bdd::Bdd shrunk = space.has_successor_in(realized_rel, alive);
      if (shrunk == alive) break;
      alive = shrunk;
    }
    const bdd::Bdd deadlocks = span.minus(alive);
    if (deadlocks.is_false()) {
      result.success = true;
      result.invariant = s1;
      result.fault_span = span;
      result.process_deltas = std::move(final_j);
      result.delta = actions;
      result.stats.span_states = space.count_states(span);
      result.stats.invariant_states = space.count_states(s1);
      if (options.journal != nullptr) options.journal->run_end(true, "");
      finish();
      // The whole run is one cautious pass; report it as "step 1" time so
      // the benchmark tables have a single comparable column.
      result.stats.step1_seconds = result.stats.total_seconds;
      if (support::trace::enabled()) {
        run_span.attr("invariant_states", result.stats.invariant_states);
        run_span.attr("span_states", result.stats.span_states);
        run_span.attr("outer_iterations",
                      static_cast<std::uint64_t>(result.stats.outer_iterations));
      }
      return result;
    }
    LR_LOG(debug) << "[cautious]   ban path: dl=" << space.count_states(deadlocks)
                  << " dl&t1=" << space.count_states(deadlocks & t1)
                  << " dl&s1=" << space.count_states(deadlocks & s1)
                  << " span=" << space.count_states(span);
    mt |= space.prime(deadlocks) & valid_pair;
    s1 = s1.minus(deadlocks);
    t1 = t1.minus(deadlocks);
    ++result.stats.deadlock_rounds;
    const double banned = space.count_states(deadlocks);
    result.stats.deadlock_states_banned += banned;
    result.stats.banned_trans_nodes = mt.node_count();
    if (options.journal != nullptr) {
      options.journal->deadlock_round(deadlocks,
                                      result.stats.banned_trans_nodes);
    }
    support::metrics::registry().set_gauge(
        "repair.deadlock_states.round" + std::to_string(round), banned);
  }

  result.failure_reason = "outer iteration bound exceeded";
  if (options.journal != nullptr) {
    options.journal->run_end(false, result.failure_reason);
  }
  finish();
  return result;
}

}  // namespace lr::repair
