#include "repair/export.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "bdd/order.hpp"
#include "support/fs.hpp"

namespace lr::repair {

namespace {

/// Values of `info`'s domain whose binary encoding is consistent with the
/// cube's (possibly partial) bit assignment in the given copy.
std::vector<std::uint32_t> matching_values(const sym::VariableInfo& info,
                                           std::span<const signed char> cube,
                                           bool next_copy) {
  const auto& bits = next_copy ? info.next_bits : info.cur_bits;
  std::vector<std::uint32_t> values;
  for (std::uint32_t v = 0; v < info.domain; ++v) {
    bool consistent = true;
    for (std::uint32_t k = 0; k < info.bits; ++k) {
      const signed char b = cube[bits[k]];
      if (b >= 0 && static_cast<std::uint32_t>(b) != ((v >> k) & 1u)) {
        consistent = false;
        break;
      }
    }
    if (consistent) values.push_back(v);
  }
  return values;
}

/// "v == a" or "(v == a || v == b)" for a subset of the domain; empty when
/// every value matches (no constraint).
std::string guard_term(const std::string& name,
                       const std::vector<std::uint32_t>& values,
                       std::uint32_t domain) {
  if (values.size() == domain) return "";
  std::string term;
  for (const std::uint32_t v : values) {
    if (!term.empty()) term += " || ";
    term += name + " == " + std::to_string(v);
  }
  return values.size() == 1 ? term : "(" + term + ")";
}

/// The lexer's identifier alphabet excludes '-' (it is subtraction);
/// generated names (case studies use hyphens) are sanitized on export.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (!ok) c = '_';
  }
  return out;
}

void render_action(std::ostringstream& out, const lang::Action& action,
                   const sym::Space& space) {
  out << sanitize(action.name) << ": "
      << action.guard.to_string(space) << " -> ";
  bool first = true;
  for (const auto& assign : action.assigns) {
    if (!first) out << ", ";
    first = false;
    out << space.info(assign.var).name << " := ";
    if (assign.alternatives.size() == 1) {
      out << assign.alternatives.front().to_string(space);
    } else {
      out << "{";
      for (std::size_t i = 0; i < assign.alternatives.size(); ++i) {
        if (i > 0) out << ", ";
        out << assign.alternatives[i].to_string(space);
      }
      out << "}";
    }
  }
  for (const sym::VarId v : action.havoc) {
    if (!first) out << ", ";
    first = false;
    out << "havoc " << space.info(v).name;
  }
  out << ";";
}

}  // namespace

std::string export_model(prog::DistributedProgram& program,
                         const RepairResult& result) {
  sym::Space& space = program.space();
  bdd::Manager& mgr = space.manager();
  // foreach_cube enumerates DAG cubes, which depend on the variable order:
  // restore the creation order so exports are canonical no matter which
  // --order mode (or sifting pass) the run used. Handles survive the swaps.
  (void)bdd::order::restore_creation_order(mgr);
  std::ostringstream out;

  out << "// Synthesized by lazyrepair: masking fault-tolerant version of '"
      << program.name() << "'.\n";
  out << "program " << sanitize(program.name()) << ";\n\n";

  for (sym::VarId v = 0; v < space.variable_count(); ++v) {
    const auto& info = space.info(v);
    out << "var " << info.name << " : 0.." << (info.domain - 1) << ";\n";
  }

  for (std::size_t j = 0; j < program.process_count(); ++j) {
    const prog::Process& proc = program.process(j);
    out << "\nprocess " << sanitize(proc.name) << " {\n  reads ";
    for (std::size_t i = 0; i < proc.reads.size(); ++i) {
      if (i > 0) out << ", ";
      out << space.info(proc.reads[i]).name;
    }
    out << ";\n  writes ";
    for (std::size_t i = 0; i < proc.writes.size(); ++i) {
      if (i > 0) out << ", ";
      out << space.info(proc.writes[i]).name;
    }
    out << ";\n";

    // Project the synthesized delta to readable guards + written updates
    // (lossless thanks to the read restriction), restricted to the fault
    // span: everything else is an unreachable don't-care.
    bdd::Bdd shown = result.process_deltas[j] & result.fault_span;
    bdd::Bdd projected = mgr.exists(shown, program.unreadable_cube(j));
    std::vector<bdd::VarIndex> frame_bits;
    std::map<sym::VarId, bool> writes;
    for (const sym::VarId w : proc.writes) writes[w] = true;
    for (const sym::VarId r : proc.reads) {
      if (writes.count(r) != 0) continue;
      const auto& info = space.info(r);
      frame_bits.insert(frame_bits.end(), info.next_bits.begin(),
                        info.next_bits.end());
    }
    projected = mgr.exists(projected, mgr.make_cube(frame_bits));

    std::size_t counter = 0;
    mgr.foreach_cube(projected, [&](std::span<const signed char> cube) {
      std::string guard;
      for (const sym::VarId r : proc.reads) {
        const auto values = matching_values(space.info(r), cube, false);
        const std::string term =
            guard_term(space.info(r).name, values, space.info(r).domain);
        if (term.empty()) continue;
        if (!guard.empty()) guard += " && ";
        guard += term;
      }
      std::string update;
      for (const sym::VarId w : proc.writes) {
        const auto values = matching_values(space.info(w), cube, true);
        if (values.empty()) return;  // inconsistent encoding: skip
        if (!update.empty()) update += ", ";
        update += space.info(w).name + " := ";
        if (values.size() == 1) {
          update += std::to_string(values.front());
        } else {
          update += "{";
          for (std::size_t i = 0; i < values.size(); ++i) {
            if (i > 0) update += ", ";
            update += std::to_string(values[i]);
          }
          update += "}";
        }
      }
      if (update.empty()) return;
      if (guard.empty()) guard = "true";
      out << "  action a" << counter++ << ": " << guard << " -> " << update
          << ";\n";
    });
    out << "}\n";
  }

  out << "\n";
  for (const lang::Action& fault : program.fault_actions()) {
    out << "fault ";
    render_action(out, fault, space);
    out << "\n";
  }

  out << "\ninvariant "
      << program.invariant_expression().to_string(space) << ";\n";
  for (const lang::Expr& e : program.bad_state_expressions()) {
    out << "bad_state " << e.to_string(space) << ";\n";
  }
  for (const lang::Expr& e : program.bad_transition_expressions()) {
    out << "bad_transition " << e.to_string(space) << ";\n";
  }
  return out.str();
}

bool export_model_file(prog::DistributedProgram& program,
                       const RepairResult& result, const std::string& path) {
  return support::write_file_atomic(path, export_model(program, result));
}

}  // namespace lr::repair
