#include "repair/relation_setup.hpp"

#include <ostream>

#include "repair/journal.hpp"
#include "support/metrics.hpp"

namespace lr::repair {

namespace {

std::size_t natural_parts(prog::DistributedProgram& program) {
  // One piece per process, one per fault action, plus the stutter
  // completion (folded into the process count: it exists whenever any
  // process does).
  return program.process_count() + program.fault_action_deltas().size();
}

/// The shape is computed over a scheduled relation regardless of the
/// execution mode, so every consumer (metrics, journal header, --stats)
/// describes the same program identically under --rel=mono and
/// --rel=partition.
sym::RelationShape program_shape(prog::DistributedProgram& program) {
  const std::vector<bdd::Bdd> pieces = program_delta_pieces(program);
  sym::TransitionRelation rel(program.space(),
                              sym::RelationMode::kPartition);
  for (const bdd::Bdd& piece : pieces) rel.add_part(piece);
  for (const bdd::Bdd& fault : program.fault_action_deltas()) {
    rel.add_part(fault);
  }
  return rel.shape();
}

}  // namespace

sym::RelationMode resolved_relation_mode(prog::DistributedProgram& program,
                                         const Options& options) {
  return sym::resolve_relation_mode(options.relation_mode,
                                    natural_parts(program));
}

std::vector<bdd::Bdd> program_delta_pieces(
    prog::DistributedProgram& program) {
  std::vector<bdd::Bdd> pieces;
  pieces.reserve(program.process_count() + 1);
  for (std::size_t j = 0; j < program.process_count(); ++j) {
    pieces.push_back(program.process_delta(j));
  }
  const bdd::Bdd stutter =
      program.program_delta().minus(program.actions_delta());
  if (!stutter.is_false()) pieces.push_back(stutter);
  return pieces;
}

sym::TransitionRelation program_fault_relation(
    prog::DistributedProgram& program, sym::RelationMode resolved) {
  sym::Space& space = program.space();
  if (resolved == sym::RelationMode::kPartition) {
    sym::TransitionRelation rel(space, resolved);
    for (const bdd::Bdd& piece : program_delta_pieces(program)) {
      rel.add_part(piece);
    }
    for (const bdd::Bdd& fault : program.fault_action_deltas()) {
      rel.add_part(fault);
    }
    return rel;
  }
  // Historical flat shape: process deltas + fault actions, no stutter
  // (stutter steps add no reachability).
  const std::vector<bdd::Bdd> parts = program.transition_partitions();
  sym::TransitionRelation rel(space, sym::RelationMode::kMono);
  for (const bdd::Bdd& part : parts) rel.add_part(part);
  return rel;
}

sym::TransitionRelation fault_relation(prog::DistributedProgram& program,
                                       sym::RelationMode resolved) {
  sym::Space& space = program.space();
  if (resolved == sym::RelationMode::kPartition) {
    sym::TransitionRelation rel(space, resolved);
    for (const bdd::Bdd& fault : program.fault_action_deltas()) {
      rel.add_part(fault);
    }
    if (rel.part_count() == 0) rel.add_part(space.bdd_false());
    return rel;
  }
  return sym::TransitionRelation::monolithic(space, program.fault_delta());
}

void record_relation_shape(prog::DistributedProgram& program,
                           const Options& options, Journal* journal) {
  const sym::RelationShape shape = program_shape(program);
  const sym::RelationMode resolved =
      resolved_relation_mode(program, options);
  support::metrics::Registry& m = support::metrics::registry();
  m.set_gauge("bdd.relation.parts", static_cast<double>(shape.parts));
  m.set_gauge("bdd.relation.conjuncts",
              static_cast<double>(shape.conjuncts));
  m.set_gauge("bdd.relation.min_support_bits",
              static_cast<double>(shape.min_support_bits));
  m.set_gauge("bdd.relation.max_support_bits",
              static_cast<double>(shape.max_support_bits));
  m.set_gauge("bdd.relation.avg_support_bits", shape.avg_support_bits);
  m.set_gauge("bdd.relation.schedulable_bits",
              static_cast<double>(shape.schedulable_bits));
  m.set_gauge("bdd.relation.total_bits",
              static_cast<double>(shape.total_bits));
  m.set_gauge("bdd.relation.mode." +
                  std::string(sym::relation_mode_name(resolved)),
              1.0);
  if (journal != nullptr) {
    // Header keys describe the program's partition shape, never the
    // execution mode: journals must stay byte-identical across --rel.
    journal->meta("relation_parts", std::to_string(shape.parts));
    journal->meta("relation_conjuncts", std::to_string(shape.conjuncts));
    journal->meta("relation_max_support_bits",
                  std::to_string(shape.max_support_bits));
    journal->meta("relation_schedulable_bits",
                  std::to_string(shape.schedulable_bits));
    journal->meta("relation_total_bits",
                  std::to_string(shape.total_bits));
  }
}

void write_relation_report(prog::DistributedProgram& program,
                           const Options& options, std::ostream& out) {
  const sym::RelationShape shape = program_shape(program);
  const sym::RelationMode resolved =
      resolved_relation_mode(program, options);
  out << "transition relation:\n";
  out << "  mode: " << sym::relation_mode_name(resolved);
  if (options.relation_mode == sym::RelationMode::kAuto) {
    out << " (requested auto)";
  }
  out << "\n";
  out << "  parts: " << shape.parts << " (" << shape.conjuncts
      << " conjuncts)\n";
  out << "  support bits: min " << shape.min_support_bits << ", max "
      << shape.max_support_bits << ", avg " << shape.avg_support_bits
      << " of " << shape.total_bits << "\n";
  out << "  schedulable bits: " << shape.schedulable_bits
      << (shape.schedulable_bits == 0
              ? " (every part touches every bit)"
              : " (quantified before the product)")
      << "\n";
}

}  // namespace lr::repair
