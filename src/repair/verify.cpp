#include "repair/verify.hpp"

#include "support/trace.hpp"

namespace lr::repair {

VerifyReport verify_masking(prog::DistributedProgram& program,
                            const RepairResult& result,
                            ToleranceLevel level) {
  LR_TRACE_SPAN("verify_masking");
  VerifyReport report;
  sym::Space& space = program.space();
  bdd::Manager& mgr = space.manager();

  auto fail = [&report](bool& flag, bool passed, const std::string& message) {
    flag = passed;
    if (!passed) report.failures.push_back(message);
  };

  if (!result.success) {
    report.failures.push_back("result is not marked successful");
    return report;
  }
  if (result.process_deltas.size() != program.process_count()) {
    report.failures.push_back("wrong number of process deltas");
    return report;
  }

  const bdd::Bdd s_orig = program.invariant();
  const bdd::Bdd delta_orig = program.program_delta();
  const bdd::Bdd faults = program.fault_delta();
  const bdd::Bdd identity = space.identity();
  const bdd::Bdd s_new = result.invariant;

  // Assembled program: union of process deltas + Definition-18 stuttering.
  bdd::Bdd actions = space.bdd_false();
  for (const bdd::Bdd& dj : result.process_deltas) actions |= dj;
  const bdd::Bdd delta = program.stutter_completion(actions);

  fail(report.invariant_nonempty, !s_new.is_false(), "S' is empty");
  fail(report.invariant_subset, s_new.leq(s_orig), "S' is not a subset of S");

  // δ'|S' ⊆ δ_P|S' — no new behavior inside the invariant.
  const bdd::Bdd inside = delta & s_new & space.prime(s_new);
  fail(report.no_new_behavior, inside.leq(delta_orig),
       "new transitions were added inside the invariant");

  // Closure of S' in δ'.
  fail(report.invariant_closed, space.image(delta, s_new).leq(s_new),
       "S' is not closed under the repaired program");

  // Safety inside the invariant.
  const prog::SafetySpec& spec = program.safety();
  fail(report.safe_in_invariant,
       s_new.disjoint(spec.bad_states) && (delta & s_new).disjoint(spec.bad_trans),
       "safety violated inside the invariant");

  // Safety in the presence of faults, over the actual reachable span
  // (partitioned reachability: one relation per process delta and fault
  // action, plus the stutter steps which add nothing).
  std::vector<bdd::Bdd> partitions = result.process_deltas;
  const std::vector<bdd::Bdd>& fault_parts = program.fault_action_deltas();
  partitions.insert(partitions.end(), fault_parts.begin(), fault_parts.end());
  const bdd::Bdd span = space.forward_reachable(partitions, s_new);
  report.reachable_span_states = space.count_states(span);
  fail(report.safety_under_faults,
       level == ToleranceLevel::kNonmasking ||
           (span.disjoint(spec.bad_states) &&
            ((delta | faults) & span).disjoint(spec.bad_trans)),
       "safety violated in the presence of faults");

  fail(report.span_covers_reachable, span.leq(result.fault_span),
       "reported fault span does not cover the reachable span");

  // Deadlock freedom: a state with no enabled action stutters; that is only
  // legitimate where the *original* program stuttered, inside S'.
  const bdd::Bdd enabled =
      mgr.exists(actions, space.cube(sym::Version::kNext));
  const bdd::Bdd stuck = level == ToleranceLevel::kFailsafe
                             ? span.minus(enabled) & s_new
                             : span.minus(enabled);
  fail(report.deadlock_free,
       stuck.leq(s_new) && (stuck & identity).leq(delta_orig),
       "a reachable state deadlocks outside a legitimate terminal state");

  // Livelock freedom: νZ. (span − S') ∩ pre(δ', Z) must be empty, i.e. no
  // infinite execution stays outside the invariant (faults are finite by
  // Definition 13, so program transitions alone must converge).
  bdd::Bdd z = level == ToleranceLevel::kFailsafe ? space.bdd_false()
                                                   : span.minus(s_new);
  while (true) {
    const bdd::Bdd shrunk = space.has_successor_in(delta, z);
    if (shrunk == z) break;
    z = shrunk;
  }
  fail(report.livelock_free, z.is_false(),
       "an infinite execution can avoid the invariant (recovery fails)");

  // Realizability of each process delta (Definition 19) and of the program
  // (Definition 20: δ = ∪ δ_j by construction).
  bool realizable = true;
  for (std::size_t j = 0; j < program.process_count(); ++j) {
    const bdd::Bdd& dj = result.process_deltas[j];
    if (!dj.disjoint(identity)) realizable = false;             // proper
    if (!dj.leq(program.respects_write(j))) realizable = false; // write
    if (program.group(j, dj) != dj) realizable = false;         // read
  }
  fail(report.realizable, realizable,
       "some process delta violates its read/write restrictions");

  report.ok = report.failures.empty();
  return report;
}

VerifyReport verify_tolerant_model(prog::DistributedProgram& program,
                                   ToleranceLevel level) {
  LR_TRACE_SPAN("verify_tolerant_model");
  sym::Space& space = program.space();
  bdd::Manager& mgr = space.manager();
  const bdd::Bdd valid_cur = space.valid(sym::Version::kCurrent);
  const bdd::Bdd faults = program.fault_delta();

  // View the model's own processes as the "repair result" under test.
  RepairResult view;
  view.success = true;
  view.delta = space.bdd_false();
  for (std::size_t j = 0; j < program.process_count(); ++j) {
    view.process_deltas.push_back(program.process_delta(j));
    view.delta |= view.process_deltas.back();
  }

  // ms: states from which faults alone can violate safety, over the full
  // valid space (no reachability restriction — this is verification, not
  // synthesis, so over-approximating costs only precision of S', and the
  // closure step below removes any state the model cannot keep safe).
  bdd::Bdd ms = space.bdd_false();
  if (level != ToleranceLevel::kNonmasking) {
    const prog::SafetySpec& spec = program.safety();
    ms = (spec.bad_states |
          mgr.exists(faults & spec.bad_trans, space.cube(sym::Version::kNext))) &
         valid_cur;
    while (true) {
      const bdd::Bdd grown = (ms | space.preimage(faults, ms)) & valid_cur;
      if (grown == ms) break;
      ms = grown;
    }
  }

  // Candidate S': the largest subset of the declared invariant avoiding ms
  // and closed under the model's stutter-completed transitions. Any genuine
  // repair's S' is such a set, so this derivation never under-shoots a
  // correct export.
  bdd::Bdd s = program.invariant().minus(ms);
  const bdd::Bdd delta_stutter = program.stutter_completion(view.delta);
  while (true) {
    const bdd::Bdd escaping =
        s & space.preimage(delta_stutter, valid_cur.minus(s));
    if (escaping.is_false()) break;
    s = s.minus(escaping);
  }
  view.invariant = s;

  std::vector<bdd::Bdd> partitions = view.process_deltas;
  const std::vector<bdd::Bdd>& fault_parts = program.fault_action_deltas();
  partitions.insert(partitions.end(), fault_parts.begin(), fault_parts.end());
  view.fault_span = space.forward_reachable(partitions, s);

  return verify_masking(program, view, level);
}

}  // namespace lr::repair
