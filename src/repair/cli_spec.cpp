#include "repair/cli_spec.hpp"

namespace lr::repair {

const std::vector<support::FlagSpec>& repair_cli_flag_specs() {
  static const std::vector<support::FlagSpec> specs = {
      {"batch", "DIR", "repair every DIR/*.lr on a thread pool"},
      {"jobs", "N", "batch worker threads (default: hardware)"},
      {"par-intra", "N",
       "intra-problem workers: shard image/preimage and\n"
       "enumerate per-process groups in parallel; results are\n"
       "bit-identical to sequential (default 1). With --batch,\n"
       "jobs*par-intra is clamped to the machine"},
      {"resume", "",
       "batch: skip tasks whose checkpoint manifest row and\n"
       "exported repaired model still validate; re-run the rest"},
      {"manifest", "FILE",
       "batch checkpoint manifest path (default\n"
       "DIR/batch.manifest.json; implies checkpointing)"},
      {"export-dir", "OUTDIR",
       "batch: directory for repaired-model exports\n"
       "(default DIR/repaired when checkpointing)"},
      {"task-timeout", "SECS",
       "per-task cooperative deadline, checked at\n"
       "fixpoint-round granularity (default: none)"},
      {"retries", "N",
       "re-run a task up to N extra times after a timeout\n"
       "or crash (default 0; honest failures never retry)"},
      {"chain", "N",
       "built-in stabilizing chain Sc^N instead of a model\n"
       "file (--domain=D, default 4)"},
      {"domain", "D", "value domain for --chain (default 4)"},
      {"cautious", "", "use the cautious baseline (default: lazy)"},
      {"oneshot", "", "one-shot group quantification (ablation)"},
      {"no-heuristic", "", "disable the reachable-states restriction"},
      {"level", "LEVEL", "masking|failsafe|nonmasking (default masking)"},
      {"print-program", "", "print the synthesized guarded commands"},
      {"export", "OUT.lr", "write the synthesized model"},
      {"no-verify", "", "skip the independent verifier"},
      {"stats", "",
       "print engine statistics (incl. BDD manager), the\n"
       "per-span BDD attribution table, the BDD memory report\n"
       "(per-level node histogram, table/cache occupancy) and\n"
       "the GC / reorder introspection sections"},
      {"sift", "",
       "run one sifting reorder pass before the repair\n"
       "(exercises the --stats reorder section)"},
      {"flamegraph", "FILE",
       "write the BDD call-path profile in collapsed-stack\n"
       "format (speedscope / inferno compatible); single-model\n"
       "mode only"},
      {"flamegraph-weight", "W",
       "collapsed-stack line weight: steps (default,\n"
       "deterministic work steps), seconds or nodes"},
      {"progress", "SECS",
       "heartbeat lines on stderr every SECS seconds\n"
       "(default 10; LR_PROGRESS env var also works)"},
      {"trace-out", "FILE", "write a Chrome trace-event JSON span trace"},
      {"metrics-json", "FILE", "write a machine-readable JSON run report"},
      {"journal", "FILE",
       "write the repair decision journal (JSONL; one event\n"
       "per decision, with BDD witness states). With --batch,\n"
       "FILE is a directory: one NAME.journal.jsonl per model"},
      {"explain", "",
       "print a per-round narrative of the repair decisions\n"
       "(from the journal; single-model mode only)"},
      {"log-level", "LEVEL",
       "trace|debug|info|warn|error|off (default warn;\n"
       "LR_LOG_LEVEL env var also works)"},
      {"help", "", "print this help and exit"},
  };
  return specs;
}

std::string repair_cli_usage(const std::string& program) {
  std::string out;
  out += "usage: " + program + " MODEL.lr [options]\n";
  out += "       " + program + " --chain=N [--domain=D] [options]\n";
  out += "       " + program +
         " --batch DIR [--jobs=N] [--resume] [options]\n";
  out += support::format_flag_help(repair_cli_flag_specs());
  return out;
}

}  // namespace lr::repair
