#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "program/distributed_program.hpp"
#include "repair/types.hpp"
#include "repair/verify.hpp"

namespace lr::repair {

/// One independent repair problem for the batch executor. The program is
/// *built inside the worker task* (hence the factory, not a program):
/// every task therefore owns its own `sym::Space` and BDD manager, which
/// preserves the engine's one-manager-per-thread contract with zero
/// sharing between concurrent repairs.
struct BatchTask {
  enum class Algorithm { kLazy, kCautious };

  /// Stable identifier: model file stem or benchmark instance ("BA^5").
  std::string name;
  /// Builds the fault-intolerant program. Called once, on a worker thread.
  /// May throw (e.g. parse errors); the error is captured per-task.
  std::function<std::unique_ptr<prog::DistributedProgram>()> make_program;
  Options options;
  Algorithm algorithm = Algorithm::kLazy;
  /// Display label for the algorithm column; derived from `algorithm` and
  /// the group method when empty.
  std::string algorithm_label;
  /// Run the independent verifier on successful repairs.
  bool verify = true;
  /// Predicted cost (state-space size from lang::estimate_state_space, or
  /// any monotone proxy). Tasks are *dispatched* most-expensive-first so a
  /// giant instance cannot start last and stretch the batch tail; result
  /// order stays task order. Negative means unknown (dispatched last, in
  /// task order). Recorded as `batch.<name>.predicted_states`.
  double predicted_cost = -1.0;
};

/// Outcome of one task. Everything needed for reporting is copied out of
/// the worker; the program and its BDD manager die with the task.
struct BatchItemResult {
  std::string name;
  std::string algorithm;  ///< display label
  /// make_program() and the repair ran without throwing. When false,
  /// `failure_reason` holds the exception text and nothing else is valid.
  bool build_ok = false;
  bool success = false;             ///< repair succeeded
  std::string failure_reason;       ///< build error or repair failure
  double model_states = -1.0;       ///< |state space| of the input model
  Stats stats;
  double seconds = 0.0;             ///< wall clock: build + repair + verify
  bool verified = false;            ///< the verifier ran
  bool verify_ok = false;
  std::vector<std::string> verify_failures;

  /// Repair succeeded and verification (if run) passed.
  [[nodiscard]] bool ok() const noexcept {
    return build_ok && success && (!verified || verify_ok);
  }
};

struct BatchOptions {
  /// Worker threads; <= 1 runs every task inline on the calling thread in
  /// task order (the sequential reference for determinism tests).
  std::size_t jobs = 1;
  /// Mirror per-task and aggregate stats into the process-wide metrics
  /// registry after the batch completes. Recording happens on the calling
  /// thread in task order, so the merged report's key set is independent
  /// of scheduling.
  bool record_metrics = true;
  /// Dotted prefix for per-task metric keys:
  /// "<prefix>.<name>.<algorithm>.repair.*".
  std::string metrics_prefix = "batch";
};

struct BatchReport {
  /// One entry per task, in task order — never in completion order.
  std::vector<BatchItemResult> items;
  double wall_seconds = 0.0;
  std::size_t jobs = 1;

  [[nodiscard]] std::size_t ok_count() const noexcept;
  [[nodiscard]] std::size_t failed_count() const noexcept;
};

/// Runs every task, `options.jobs` at a time, on a fixed-size thread pool.
/// Per-task results are deterministic for a deterministic task list: each
/// worker is a pure function of its task (own program, own manager, no
/// shared engine state), so `jobs = 8` produces byte-identical per-task
/// results to `jobs = 1`, in the same order — only wall-clock and the
/// interleaving of trace lanes differ.
[[nodiscard]] BatchReport run_batch(const std::vector<BatchTask>& tasks,
                                    const BatchOptions& options = {});

}  // namespace lr::repair
