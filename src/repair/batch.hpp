#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "program/distributed_program.hpp"
#include "repair/types.hpp"
#include "repair/verify.hpp"

namespace lr::repair {

/// One independent repair problem for the batch executor. The program is
/// *built inside the worker task* (hence the factory, not a program):
/// every task therefore owns its own `sym::Space` and BDD manager, which
/// preserves the engine's one-manager-per-thread contract with zero
/// sharing between concurrent repairs.
struct BatchTask {
  enum class Algorithm { kLazy, kCautious };

  /// Stable identifier: model file stem or benchmark instance ("BA^5").
  std::string name;
  /// Builds the fault-intolerant program. Called once, on a worker thread.
  /// May throw (e.g. parse errors); the error is captured per-task.
  std::function<std::unique_ptr<prog::DistributedProgram>()> make_program;
  Options options;
  Algorithm algorithm = Algorithm::kLazy;
  /// Display label for the algorithm column; derived from `algorithm` and
  /// the group method when empty.
  std::string algorithm_label;
  /// Run the independent verifier on successful repairs.
  bool verify = true;
  /// Predicted cost (state-space size from lang::estimate_state_space, or
  /// any monotone proxy). Tasks are *dispatched* most-expensive-first so a
  /// giant instance cannot start last and stretch the batch tail; result
  /// order stays task order. Negative means unknown (dispatched last, in
  /// task order). Recorded as `batch.<name>.predicted_states`.
  double predicted_cost = -1.0;
  /// Source model file backing make_program. Hashed into the checkpoint
  /// manifest so --resume can detect edited inputs; empty disables resume
  /// for this task (it always re-runs).
  std::string input_path;
  /// Where to write the repaired model on success (atomically). Required
  /// for the task to be skippable on resume: the validator re-parses and
  /// re-verifies this file instead of trusting the manifest. Empty
  /// disables the export.
  std::string export_path;
  /// Where to write the repair decision journal (JSONL, see
  /// repair/journal.hpp). Each task gets its own file, and the journal
  /// contents depend only on the task — never on scheduling — so the files
  /// are byte-identical across --jobs counts. Empty disables journaling.
  std::string journal_path;
  /// Where to write the persisted order profile (`--order-out` in batch
  /// mode: one file per task). Written after a successful repair, *before*
  /// the export restores the creation order. Empty disables it.
  std::string order_out_path;
};

/// Outcome of one task. Everything needed for reporting is copied out of
/// the worker; the program and its BDD manager die with the task.
struct BatchItemResult {
  std::string name;
  std::string algorithm;  ///< display label
  /// make_program() and the repair ran without throwing. When false,
  /// `failure_reason` holds the exception text and nothing else is valid.
  bool build_ok = false;
  bool success = false;             ///< repair succeeded
  std::string failure_reason;       ///< build error or repair failure
  double model_states = -1.0;       ///< |state space| of the input model
  Stats stats;
  double seconds = 0.0;             ///< wall clock: build + repair + verify
  bool verified = false;            ///< the verifier ran
  bool verify_ok = false;
  std::vector<std::string> verify_failures;
  /// How many times the task ran (1 + retries used; 0 when skipped on
  /// resume with the manifest's recorded count unavailable).
  std::size_t attempts = 0;
  /// The final attempt hit the --task-timeout deadline (repair::Cancelled).
  bool timed_out = false;
  /// The task did not run: its manifest row and exported repaired model
  /// validated on resume, and the fields above were reprinted from the
  /// manifest. `seconds` is the *recorded* wall time of the original run.
  bool skipped = false;
  /// Where the repaired model was exported ("" when no export happened).
  std::string export_path;

  /// Repair succeeded and verification (if run) passed.
  [[nodiscard]] bool ok() const noexcept {
    return build_ok && success && (!verified || verify_ok);
  }

  /// Manifest status string: "ok", "timeout" or "failed".
  [[nodiscard]] const char* status() const noexcept {
    if (timed_out) return "timeout";
    return ok() ? "ok" : "failed";
  }
};

struct BatchOptions {
  /// Worker threads; <= 1 runs every task inline on the calling thread in
  /// task order (the sequential reference for determinism tests).
  std::size_t jobs = 1;
  /// Intra-problem workers per task (Options::intra_jobs; --par-intra).
  /// Overrides each task's own options when >= 1. The product
  /// jobs * intra_jobs is clamped so the whole batch never oversubscribes
  /// the machine: intra_jobs is reduced first (inter-problem parallelism
  /// scales better than intra-problem sharding). 0 keeps the per-task
  /// value.
  std::size_t intra_jobs = 0;
  /// Mirror per-task and aggregate stats into the process-wide metrics
  /// registry after the batch completes. Recording happens on the calling
  /// thread in task order, so the merged report's key set is independent
  /// of scheduling.
  bool record_metrics = true;
  /// Dotted prefix for per-task metric keys:
  /// "<prefix>.<name>.<algorithm>.repair.*".
  std::string metrics_prefix = "batch";
  /// Cooperative per-task deadline in seconds (<= 0: none). Checked at
  /// fixpoint-round granularity inside the repair algorithms via
  /// Options::cancel; a single image/preimage is never interrupted, so the
  /// observed overrun is one BDD operation, not one task.
  double task_timeout_seconds = 0.0;
  /// Extra attempts for tasks that time out or throw (honest repair
  /// failures — result.success == false — are deterministic and are never
  /// retried). Total attempts = 1 + task_retries.
  std::size_t task_retries = 0;
  /// Checkpoint manifest path; empty disables checkpointing. When set, the
  /// manifest is rewritten atomically after every completed task, so a
  /// killed sweep can resume from its last finished task.
  std::string manifest_path;
  /// Skip tasks whose manifest row is status "ok", whose input hash and
  /// options fingerprint still match, and whose exported repaired model
  /// parses and passes verify_tolerant_model. Anything stale, missing or
  /// failed re-runs. A missing/corrupt manifest is a cold start, not an
  /// error.
  bool resume = false;
};

struct BatchReport {
  /// One entry per task, in task order — never in completion order.
  std::vector<BatchItemResult> items;
  double wall_seconds = 0.0;
  std::size_t jobs = 1;

  [[nodiscard]] std::size_t ok_count() const noexcept;
  [[nodiscard]] std::size_t failed_count() const noexcept;
  /// Tasks skipped on resume (their manifest row validated).
  [[nodiscard]] std::size_t skipped_count() const noexcept;
};

/// Runs every task, `options.jobs` at a time, on a fixed-size thread pool.
/// Per-task results are deterministic for a deterministic task list: each
/// worker is a pure function of its task (own program, own manager, no
/// shared engine state), so `jobs = 8` produces byte-identical per-task
/// results to `jobs = 1`, in the same order — only wall-clock and the
/// interleaving of trace lanes differ.
[[nodiscard]] BatchReport run_batch(const std::vector<BatchTask>& tasks,
                                    const BatchOptions& options = {});

}  // namespace lr::repair
