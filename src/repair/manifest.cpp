#include "repair/manifest.hpp"

#include <cstddef>
#include <utility>

#include "support/fs.hpp"
#include "support/json.hpp"

namespace lr::repair {

namespace {

std::string get_string(const support::JsonValue& obj, std::string_view key) {
  const support::JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_string()) ? v->string : std::string();
}

double get_number(const support::JsonValue& obj, std::string_view key,
                  double fallback) {
  const support::JsonValue* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

bool get_bool(const support::JsonValue& obj, std::string_view key) {
  const support::JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == support::JsonValue::Kind::kBool &&
         v->boolean;
}

}  // namespace

std::optional<Manifest> Manifest::load(const std::string& path) {
  const std::optional<std::string> text = support::read_file(path);
  if (!text) return std::nullopt;
  const std::optional<support::JsonValue> doc = support::json_parse(*text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const support::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_number() ||
      schema->number != static_cast<double>(kSchemaVersion)) {
    return std::nullopt;
  }
  const support::JsonValue* entries = doc->find("entries");
  if (entries == nullptr || !entries->is_object()) return std::nullopt;

  Manifest manifest;
  for (const auto& [name, row] : entries->object) {
    if (!row.is_object()) return std::nullopt;
    ManifestEntry entry;
    entry.name = name;
    entry.input_hash = get_string(row, "input_hash");
    entry.options_fingerprint = get_string(row, "options");
    entry.status = get_string(row, "status");
    entry.algorithm = get_string(row, "algorithm");
    entry.export_path = get_string(row, "export");
    entry.failure_reason = get_string(row, "failure_reason");
    entry.attempts =
        static_cast<std::size_t>(get_number(row, "attempts", 0.0));
    entry.seconds = get_number(row, "seconds", 0.0);
    entry.model_states = get_number(row, "model_states", -1.0);
    entry.invariant_states = get_number(row, "invariant_states", -1.0);
    entry.span_states = get_number(row, "span_states", -1.0);
    entry.verified = get_bool(row, "verified");
    entry.verify_ok = get_bool(row, "verify_ok");
    manifest.entries_[entry.name] = std::move(entry);
  }
  return manifest;
}

const ManifestEntry* Manifest::find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

void Manifest::set(ManifestEntry entry) {
  entries_[entry.name] = std::move(entry);
}

bool Manifest::erase(const std::string& name) {
  return entries_.erase(name) > 0;
}

std::string Manifest::to_json() const {
  using support::json_number;
  using support::json_quote;
  std::string out = "{\n  \"schema\": ";
  out += std::to_string(kSchemaVersion);
  out += ",\n  \"entries\": {";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + json_quote(name) + ": {\n";
    out += "      \"input_hash\": " + json_quote(e.input_hash) + ",\n";
    out += "      \"options\": " + json_quote(e.options_fingerprint) + ",\n";
    out += "      \"status\": " + json_quote(e.status) + ",\n";
    out += "      \"algorithm\": " + json_quote(e.algorithm) + ",\n";
    out += "      \"export\": " + json_quote(e.export_path) + ",\n";
    out +=
        "      \"failure_reason\": " + json_quote(e.failure_reason) + ",\n";
    out += "      \"attempts\": " +
           std::to_string(static_cast<unsigned long long>(e.attempts)) + ",\n";
    out += "      \"seconds\": " + json_number(e.seconds) + ",\n";
    out += "      \"model_states\": " + json_number(e.model_states) + ",\n";
    out += "      \"invariant_states\": " + json_number(e.invariant_states) +
           ",\n";
    out += "      \"span_states\": " + json_number(e.span_states) + ",\n";
    out += std::string("      \"verified\": ") +
           (e.verified ? "true" : "false") + ",\n";
    out += std::string("      \"verify_ok\": ") +
           (e.verify_ok ? "true" : "false") + "\n";
    out += "    }";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

bool Manifest::save(const std::string& path) const {
  return support::write_file_atomic(path, to_json());
}

std::string options_fingerprint(const Options& options, bool cautious,
                                bool verify) {
  std::string out = cautious ? "cautious" : "lazy";
  out += options.group_method == GroupMethod::kOneShot ? "|oneshot"
                                                       : "|paperloop";
  switch (options.level) {
    case ToleranceLevel::kFailsafe: out += "|failsafe"; break;
    case ToleranceLevel::kNonmasking: out += "|nonmasking"; break;
    case ToleranceLevel::kMasking: out += "|masking"; break;
  }
  out += options.restrict_to_reachable ? "|heuristic=1" : "|heuristic=0";
  out += options.use_expand_group ? "|expand=1" : "|expand=0";
  out += options.sift_before_repair ? "|sift=1" : "|sift=0";
  out += "|order=";
  out += sym::order::mode_name(options.order_mode);
  if (options.order_mode == sym::order::Mode::kFile) {
    out += ":" + options.order_file;
  }
  out += "|maxouter=" + std::to_string(options.max_outer_iterations);
  out += verify ? "|verify=1" : "|verify=0";
  return out;
}

}  // namespace lr::repair
