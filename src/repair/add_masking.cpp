#include "repair/add_masking.hpp"

#include <algorithm>
#include <span>

#include "repair/journal.hpp"
#include "repair/relation_setup.hpp"
#include "support/log.hpp"
#include "support/progress.hpp"
#include "support/trace.hpp"

namespace lr::repair {

namespace {

/// Removes deadlock states: the largest subset of `states` in which every
/// state has a `rel`-successor inside the subset (ConstructInvariant of
/// ref [1]).
bdd::Bdd construct_invariant(sym::Space& space, bdd::Bdd states,
                             const bdd::Bdd& rel) {
  while (true) {
    const bdd::Bdd alive = states & space.preimage(rel, states);
    if (alive == states) return states;
    states = alive;
  }
}

/// Same fixpoint over a partitioned relation.
bdd::Bdd construct_invariant(sym::Space& space, bdd::Bdd states,
                             const sym::TransitionRelation& rel) {
  while (true) {
    const bdd::Bdd alive = states & space.preimage(rel, states);
    if (alive == states) return states;
    states = alive;
  }
}

}  // namespace

StepOneResult add_masking(prog::DistributedProgram& program,
                          const bdd::Bdd& start_invariant,
                          const bdd::Bdd& extra_bad_trans,
                          const bdd::Bdd& context_in, const Options& options,
                          Stats& stats) {
  LR_TRACE_SPAN_NAMED(span, "add_masking");
  sym::Space& space = program.space();
  bdd::Manager& mgr = space.manager();

  const bdd::Bdd delta_p = program.program_delta();
  const bdd::Bdd faults = program.fault_delta();
  // Transition-relation representation (--rel): kPartition threads
  // scheduled conjunctive/disjunctive partitions through every fixpoint
  // below; kMono keeps the historical flat-BDD call shapes. Both compute
  // the same canonical sets.
  const sym::RelationMode rel_mode = resolved_relation_mode(program, options);
  const bool rel_partitioned = rel_mode == sym::RelationMode::kPartition;
  const sym::TransitionRelation faults_rel = fault_relation(program, rel_mode);
  const bdd::Bdd valid_cur = space.valid(sym::Version::kCurrent);
  const bdd::Bdd valid_pair = space.valid_pair();
  // Nonmasking tolerance ignores the safety specification entirely: only
  // recovery matters (deadlock bans still arrive via extra_bad_trans).
  const bool use_safety = options.level != ToleranceLevel::kNonmasking;
  const bdd::Bdd bad_states =
      use_safety ? program.safety().bad_states : space.bdd_false();
  const bdd::Bdd bad_trans =
      (use_safety ? program.safety().bad_trans : space.bdd_false()) |
      extra_bad_trans;
  const bdd::Bdd s_orig = start_invariant;

  // Candidate recovery respects the *write* restrictions (some process must
  // be able to execute it); only the read restrictions — the NP-hard part —
  // are deferred to Step 2. Arbitrary multi-process jumps would be thrown
  // away wholesale by Step 2 anyway, starving recovery.
  bdd::Bdd writable = space.bdd_false();
  for (std::size_t j = 0; j < program.process_count(); ++j) {
    writable |= program.respects_write(j);
  }

  StepOneResult result;
  if (s_orig.is_false()) return result;

  // The heuristic of Section V-A: only repair over the states the
  // fault-intolerant program visits in the presence of faults (or a caller-
  // provided refinement thereof).
  bdd::Bdd context = context_in;
  if (!context.valid()) {
    context = valid_cur;
    if (options.restrict_to_reachable) {
      context = space.forward_reachable(
          program_fault_relation(program, rel_mode), s_orig);
    }
  }
  stats.reachable_states = space.count_states(context);

  // --- ms: states from which one or more fault steps violate safety ----------
  bdd::Bdd ms = (bad_states |
                 mgr.exists(faults & bad_trans, space.cube(sym::Version::kNext))) &
                context;
  {
    LR_TRACE_SPAN("add_masking.ms_fixpoint");
    while (true) {
      throw_if_cancelled(options.cancel);
      const bdd::Bdd grown = (ms | space.preimage(faults_rel, ms)) & context;
      if (grown == ms) break;
      ms = grown;
    }
  }

  // --- mt: transitions the fault-tolerant program must never execute ----------
  const bdd::Bdd mt = (bad_trans | space.prime(ms)) & valid_pair;

  // --- First guesses S1, T1 ---------------------------------------------------
  // δ_P − mt as disjunctive pieces (partitioned mode): one per process
  // plus the stutter completion. Subtraction distributes over the union,
  // so the pieces' union is exactly delta_p − mt.
  std::vector<bdd::Bdd> pieces_mt;
  if (rel_partitioned) {
    for (const bdd::Bdd& piece : program_delta_pieces(program)) {
      const bdd::Bdd trimmed = piece.minus(mt);
      if (!trimmed.is_false()) pieces_mt.push_back(trimmed);
    }
  }
  sym::TransitionRelation delta_mt_rel(space, rel_mode);
  if (rel_partitioned) {
    for (const bdd::Bdd& piece : pieces_mt) delta_mt_rel.add_part(piece);
  } else {
    delta_mt_rel.add_part(delta_p.minus(mt));
  }
  bdd::Bdd s1 = construct_invariant(space, s_orig.minus(ms), delta_mt_rel);
  bdd::Bdd t1 = context.minus(ms);

  if (s1.is_false()) return result;

  // --- Shrink (S1, T1) to the largest consistent pair -------------------------
  bdd::Bdd p1;  // materialized only under kMono (and for the layer BFS)
  sym::TransitionRelation p1_rel(space, rel_mode);
  std::size_t shrink_rounds = 0;
  {
  LR_TRACE_SPAN("add_masking.shrink_fixpoint");
  support::progress::Heartbeat heartbeat("add_masking.shrink");
  while (true) {
      throw_if_cancelled(options.cancel);
      ++stats.addmasking_rounds;
      ++shrink_rounds;
      support::trace::counter("bdd.live_nodes",
                              static_cast<double>(mgr.live_nodes()));
      support::trace::counter("bdd.unique_load", mgr.unique_load());
      support::trace::counter(
          "bdd.cache_hit_rate",
          mgr.stats().cache_lookups == 0
              ? 0.0
              : static_cast<double>(mgr.stats().cache_hits) /
                    static_cast<double>(mgr.stats().cache_lookups));
      if (heartbeat.due()) {
        heartbeat.emit("round " + std::to_string(stats.addmasking_rounds) +
                       ", live nodes " + std::to_string(mgr.live_nodes()));
      }
      // Proper transitions only: a self-loop outside the invariant would
      // let the program idle there forever, which recovery must rule out.
      const bdd::Bdd rec_part =
          (writable & t1.minus(s1) & space.prime(t1) & valid_pair)
              .minus(mt)
              .minus(space.identity());
      // P1 = (δ_P ∧ S1 ∧ S1') − mt ∪ rec_part. Partitioned, the invariant
      // side stays one part per δ_P piece with the S1 ∧ S1' restriction as
      // a conjunct — the product is never materialized; the combined
      // and-exists consumes the factors directly.
      bdd::Bdd inv_cross;  // S1 ∧ S1', shared by the partitioned parts
      p1_rel = sym::TransitionRelation(space, rel_mode);
      if (rel_partitioned) {
        inv_cross = s1 & space.prime(s1);
        for (const bdd::Bdd& piece : pieces_mt) {
          p1_rel.add_part(piece, inv_cross);
        }
        if (!rec_part.is_false()) p1_rel.add_part(rec_part);
      } else {
        const bdd::Bdd inv_part = (delta_p & s1 & space.prime(s1)).minus(mt);
        p1 = inv_part | rec_part;
        p1_rel.add_part(p1);
      }

      bdd::Bdd t2 = t1;
      while (options.level != ToleranceLevel::kFailsafe) {
        // Drop T states that cannot reach S via available transitions.
        // (Failsafe tolerance has no recovery obligation: the span keeps
        // every safe state; it is fault-closed already because ms is
        // backward-closed under faults and the context is reach-closed.)
        bdd::Bdd can_recover = s1 & t2;
        while (true) {
          const bdd::Bdd grown =
              can_recover | (t2 & space.preimage(p1_rel, can_recover));
          if (grown == can_recover) break;
          can_recover = grown;
        }
        bdd::Bdd t2_new = can_recover;
        // Drop states from which faults escape the span.
        while (true) {
          const bdd::Bdd escaping =
              t2_new & space.preimage(faults_rel, valid_cur.minus(t2_new));
          if (escaping.is_false()) break;
          t2_new = t2_new.minus(escaping);
        }
        if (t2_new == t2) break;
        t2 = t2_new;
      }

      bdd::Bdd s2 = s1 & t2;
      if (rel_partitioned) {
        // P1 ∧ S2' without materializing the product: prime(s2) rides as
        // one more conjunct of every part.
        const bdd::Bdd s2_primed = space.prime(s2);
        sym::TransitionRelation closure_rel(space, rel_mode);
        for (const bdd::Bdd& piece : pieces_mt) {
          const bdd::Bdd conjuncts[3] = {piece, inv_cross, s2_primed};
          closure_rel.add_part(std::span<const bdd::Bdd>(conjuncts, 3));
        }
        if (!rec_part.is_false()) closure_rel.add_part(rec_part, s2_primed);
        s2 = construct_invariant(space, s2, closure_rel);
      } else {
        s2 = construct_invariant(space, s2, p1 & space.prime(s2));
      }
      if (s2.is_false()) return result;

      if (options.journal != nullptr) {
        options.journal->fixpoint_round("add_masking.shrink", shrink_rounds,
                                        space.count_states(s2),
                                        space.count_states(t2));
      }
      if (s2 == s1 && t2 == t1) break;
      s1 = s2;
      t1 = t2;
    }
  }

  // --- Construct δ' with maximal behavior ---------------------------------------
  // Original behavior is kept wholesale (inside and outside the invariant);
  // *added* recovery is kept only when it strictly decreases the
  // backward-BFS layer distance to S1. Potential livelocks formed by mixing
  // kept original behavior with added recovery are resolved *after* Step 2,
  // at group granularity, by Algorithm 1 — removing them here transition-
  // by-transition would destroy the group symmetry Step 2 depends on.
  const bdd::Bdd inv_part = (delta_p & s1 & space.prime(s1)).minus(mt);
  const bdd::Bdd outside = t1.minus(s1);
  // Original behavior outside the invariant is kept wholesale, except
  // stutter steps: idling outside S1 forever is exactly what masking
  // tolerance forbids.
  const bdd::Bdd original_outside =
      (delta_p & outside & space.prime(t1)).minus(mt).minus(space.identity());

  bdd::Bdd below = s1;
  bdd::Bdd added = space.bdd_false();
  bdd::Bdd remaining =
      options.level == ToleranceLevel::kFailsafe ? space.bdd_false() : outside;
  // The layer BFS's `added` sets need P1's transitions, not just its
  // preimages: materialize the union once (a no-op under kMono).
  bdd::Bdd p1_flat = p1;
  if (rel_partitioned && !remaining.is_false()) p1_flat = p1_rel.flat();
  stats.recovery_layers = 0;
  {
    LR_TRACE_SPAN("add_masking.recovery_layers");
    support::progress::Heartbeat heartbeat("add_masking.recovery");
    while (!remaining.is_false()) {
      throw_if_cancelled(options.cancel);
      const bdd::Bdd layer = space.preimage(p1_rel, below) & remaining;
      if (layer.is_false()) break;
      const bdd::Bdd layer_added = p1_flat & layer & space.prime(below);
      added |= layer_added;
      below |= layer;
      remaining = remaining.minus(layer);
      ++stats.recovery_layers;
      if (options.journal != nullptr) {
        options.journal->recovery_layer(stats.recovery_layers,
                                        space.count_states(layer),
                                        layer_added);
      }
      support::trace::counter("bdd.live_nodes",
                              static_cast<double>(mgr.live_nodes()));
      support::trace::counter("bdd.unique_load", mgr.unique_load());
      support::trace::counter(
          "bdd.cache_hit_rate",
          mgr.stats().cache_lookups == 0
              ? 0.0
              : static_cast<double>(mgr.stats().cache_hits) /
                    static_cast<double>(mgr.stats().cache_lookups));
      if (heartbeat.due()) {
        heartbeat.emit("layer " + std::to_string(stats.recovery_layers) +
                       ", live nodes " + std::to_string(mgr.live_nodes()));
      }
    }
  }

  const bdd::Bdd final_delta = inv_part | original_outside | added;

  result.success = true;
  result.invariant = s1;
  result.fault_span = t1;
  result.delta = final_delta;
  stats.span_states = space.count_states(t1);
  stats.invariant_states = space.count_states(s1);
  if (options.journal != nullptr) {
    options.journal->step_one_summary(stats.invariant_states,
                                      stats.span_states, shrink_rounds,
                                      stats.recovery_layers);
  }
  stats.peak_bdd_nodes =
      std::max(stats.peak_bdd_nodes, mgr.stats().peak_nodes);
  LR_LOG(debug) << "[add_masking] rounds=" << stats.addmasking_rounds
                << " recovery_layers=" << stats.recovery_layers
                << " |S'|=" << stats.invariant_states
                << " |T'|=" << stats.span_states;
  if (support::trace::enabled()) {
    span.attr("rounds", static_cast<std::uint64_t>(stats.addmasking_rounds));
    span.attr("recovery_layers",
              static_cast<std::uint64_t>(stats.recovery_layers));
    span.attr("invariant_states", stats.invariant_states);
    span.attr("span_states", stats.span_states);
    span.attr("delta_nodes",
              static_cast<std::uint64_t>(final_delta.node_count()));
  }
  return result;
}

}  // namespace lr::repair
