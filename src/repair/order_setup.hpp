#pragma once

#include <iosfwd>
#include <string>

#include "bdd/order.hpp"
#include "program/distributed_program.hpp"
#include "repair/types.hpp"

namespace lr::repair {

/// Applies Options::order_mode to the program's space. Called by
/// lazy_repair/cautious_repair before anything compiles (and before
/// enable_intra mirrors the main order into the workers), so the chosen
/// order really is the *initial* order every BDD is built under.
/// Idempotent — the CLI may have applied the same plan already for its
/// report. A no-op for kDecl, which keeps default runs byte-identical to
/// the pre-order engine. Records `bdd.order.*` metrics for non-default
/// modes. Throws std::runtime_error when order_mode == kFile and the
/// profile is unreadable or does not match the model.
void apply_order_options(prog::DistributedProgram& program,
                         const Options& options);

/// The plan apply_order_options would apply (kFile loads and validates the
/// profile; same exceptions).
[[nodiscard]] sym::order::Plan order_plan(prog::DistributedProgram& program,
                                          const Options& options);

/// Snapshots the end-of-run order with the meminfo level histogram as
/// quality evidence (`--order-out`). Must run *before* the .lr exporter,
/// which restores the creation order to keep exports canonical. The
/// profile's `source` field records only the mode name, never a path, so
/// warm-started runs reach a byte-stable fixpoint.
[[nodiscard]] bdd::order::OrderProfile capture_order_profile(
    prog::DistributedProgram& program, const Options& options);

/// Renders the --stats "bdd order" section: the chosen mode, its span-cost
/// proxy vs declaration order, and the predicted-pressure vs actual
/// live-node histogram for the heaviest levels.
void write_order_report(prog::DistributedProgram& program,
                        const Options& options, std::ostream& out,
                        std::size_t max_levels = 10);

}  // namespace lr::repair
