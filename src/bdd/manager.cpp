#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "bdd/profile.hpp"
#include "support/trace.hpp"

namespace lr::bdd {

namespace {

/// Mixes (var, lo, hi) into a unique-table bucket index.
inline std::size_t hash_triple(VarIndex var, NodeId lo, NodeId hi) noexcept {
  std::uint64_t h = var;
  h = h * 0x9e3779b97f4a7c15ull + lo;
  h = (h ^ (h >> 29)) * 0xbf58476d1ce4e5b9ull + hi;
  return static_cast<std::size_t>(h ^ (h >> 32));
}

inline std::size_t hash_cache(std::uint32_t op, NodeId a, NodeId b,
                              NodeId c) noexcept {
  std::uint64_t h = op;
  h = h * 0x9e3779b97f4a7c15ull + a;
  h = (h ^ (h >> 31)) * 0xbf58476d1ce4e5b9ull + b;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull + c;
  return static_cast<std::size_t>(h ^ (h >> 33));
}

}  // namespace

const char* gc_trigger_name(GcTrigger trigger) noexcept {
  switch (trigger) {
    case GcTrigger::kThreshold: return "threshold";
    case GcTrigger::kExplicit: return "explicit";
    case GcTrigger::kReorder: return "reorder";
  }
  return "?";
}

// --- Bdd handle --------------------------------------------------------------

Bdd::Bdd(Manager* mgr, NodeId id) noexcept : mgr_(mgr), id_(id) {
  if (mgr_ != nullptr) mgr_->inc_ref(id_);
}

Bdd::Bdd(const Bdd& other) noexcept : mgr_(other.mgr_), id_(other.id_) {
  if (mgr_ != nullptr) mgr_->inc_ref(id_);
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), id_(other.id_) {
  other.mgr_ = nullptr;
  other.id_ = kFalseId;
}

Bdd& Bdd::operator=(const Bdd& other) noexcept {
  if (this == &other) return *this;
  if (other.mgr_ != nullptr) other.mgr_->inc_ref(other.id_);
  if (mgr_ != nullptr) mgr_->dec_ref(id_);
  mgr_ = other.mgr_;
  id_ = other.id_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_ != nullptr) mgr_->dec_ref(id_);
  mgr_ = other.mgr_;
  id_ = other.id_;
  other.mgr_ = nullptr;
  other.id_ = kFalseId;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->dec_ref(id_);
}

Bdd Bdd::operator&(const Bdd& other) const { return mgr_->apply_and(*this, other); }
Bdd Bdd::operator|(const Bdd& other) const { return mgr_->apply_or(*this, other); }
Bdd Bdd::operator^(const Bdd& other) const { return mgr_->apply_xor(*this, other); }
Bdd Bdd::operator~() const { return mgr_->apply_not(*this); }
Bdd Bdd::operator!() const { return mgr_->apply_not(*this); }

Bdd& Bdd::operator&=(const Bdd& other) {
  *this = mgr_->apply_and(*this, other);
  return *this;
}

Bdd& Bdd::operator|=(const Bdd& other) {
  *this = mgr_->apply_or(*this, other);
  return *this;
}

Bdd& Bdd::operator^=(const Bdd& other) {
  *this = mgr_->apply_xor(*this, other);
  return *this;
}

Bdd Bdd::minus(const Bdd& other) const { return mgr_->apply_diff(*this, other); }

Bdd Bdd::ite(const Bdd& then_f, const Bdd& else_f) const {
  return mgr_->apply_ite(*this, then_f, else_f);
}

Bdd Bdd::implies(const Bdd& other) const {
  return mgr_->apply_or(mgr_->apply_not(*this), other);
}

Bdd Bdd::iff(const Bdd& other) const {
  return mgr_->apply_not(mgr_->apply_xor(*this, other));
}

bool Bdd::leq(const Bdd& other) const { return mgr_->leq(*this, other); }

bool Bdd::disjoint(const Bdd& other) const {
  return mgr_->disjoint(*this, other);
}

std::size_t Bdd::node_count() const { return mgr_->node_count(*this); }

// --- Manager construction ------------------------------------------------------

Manager::Manager() : Manager(Options{}) {}

Manager::Manager(const Options& options)
    : gc_threshold_(options.gc_threshold) {
  const std::size_t cache_size = std::size_t{1} << options.cache_log2;
  cache_.resize(cache_size);
  cache_mask_ = cache_size - 1;
  init_pool(options.initial_capacity < 64 ? 64 : options.initial_capacity);
  note_peak_bytes();
}

Manager::~Manager() = default;

void Manager::init_pool(std::size_t capacity) {
  nodes_.reserve(capacity);
  // Terminal nodes occupy slots 0 and 1 and are never collected.
  nodes_.push_back(Node{kTerminalVar, kFalseId, kFalseId, 0, 1});
  nodes_.push_back(Node{kTerminalVar, kTrueId, kTrueId, 0, 1});
  std::size_t buckets = 1;
  while (buckets < capacity) buckets <<= 1;
  buckets_.assign(buckets, kFalseId);
  bucket_mask_ = buckets - 1;
}

VarIndex Manager::new_var() {
  const VarIndex v = num_vars_++;
  level_of_var_.push_back(v);   // new variables start at the bottom level
  var_at_level_.push_back(v);
  return v;
}

Bdd Manager::bdd_false() { return wrap(kFalseId); }
Bdd Manager::bdd_true() { return wrap(kTrueId); }

Bdd Manager::bdd_var(VarIndex v) {
  assert(v < num_vars_);
  return wrap(make_node(v, kFalseId, kTrueId));
}

Bdd Manager::bdd_nvar(VarIndex v) {
  assert(v < num_vars_);
  return wrap(make_node(v, kTrueId, kFalseId));
}

Bdd Manager::make_cube(std::span<const VarIndex> vars) {
  std::vector<VarIndex> sorted(vars.begin(), vars.end());
  std::sort(sorted.begin(), sorted.end(), [this](VarIndex a, VarIndex b) {
    return level_of_var_[a] < level_of_var_[b];
  });
  NodeId acc = kTrueId;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    assert(*it < num_vars_);
    if (it != sorted.rbegin() && *it == *(it - 1)) continue;  // dedupe
    acc = make_node(*it, kFalseId, acc);
  }
  return wrap(acc);
}

// --- Node pool / unique table ----------------------------------------------------

NodeId Manager::alloc_node() {
  if (has_free_) {
    const NodeId id = free_head_;
    free_head_ = nodes_[id].next;
    --free_count_;
    has_free_ = free_count_ > 0;
    return id;
  }
  nodes_.push_back(Node{});
  if (nodes_.size() > buckets_.size()) grow_buckets();
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Manager::make_node(VarIndex var, NodeId lo, NodeId hi) {
  if (lo == hi) return lo;  // reduction rule
  const std::size_t bucket = hash_triple(var, lo, hi) & bucket_mask_;
  for (NodeId cur = buckets_[bucket]; cur != kFalseId; cur = nodes_[cur].next) {
    const Node& n = nodes_[cur];
    if (n.var == var && n.lo == lo && n.hi == hi) {
      ++stats_.unique_hits;
      return cur;
    }
  }
  const NodeId id = alloc_node();
  Node& n = nodes_[id];
  n.var = var;
  n.lo = lo;
  n.hi = hi;
  n.refs = 0;
  // Re-hash: alloc_node may have grown the bucket array.
  const std::size_t b = hash_triple(var, lo, hi) & bucket_mask_;
  n.next = buckets_[b];
  buckets_[b] = id;
  ++stats_.created_nodes;
  const std::size_t live = nodes_.size() - 2 - free_count_;
  if (live + 2 > stats_.peak_nodes) {
    stats_.peak_nodes = live + 2;
    note_peak_bytes();
  }
  return id;
}

void Manager::grow_buckets() {
  const std::size_t new_size = buckets_.size() * 2;
  std::vector<NodeId> fresh(new_size, kFalseId);
  const std::size_t mask = new_size - 1;
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    Node& n = nodes_[id];
    if (n.var == kFreeVar || n.var == kTerminalVar) continue;
    const std::size_t b = hash_triple(n.var, n.lo, n.hi) & mask;
    n.next = fresh[b];
    fresh[b] = id;
  }
  buckets_ = std::move(fresh);
  bucket_mask_ = mask;
  note_peak_bytes();
}

std::size_t Manager::unique_bucket(VarIndex var, NodeId lo,
                                   NodeId hi) const noexcept {
  return hash_triple(var, lo, hi) & bucket_mask_;
}

void Manager::inc_ref(NodeId id) noexcept { ++nodes_[id].refs; }

void Manager::dec_ref(NodeId id) noexcept {
  assert(nodes_[id].refs > 0);
  --nodes_[id].refs;
}

std::size_t Manager::live_nodes() const noexcept {
  return nodes_.size() - free_count_;
}

void Manager::maybe_gc() {
  if (!gc_enabled_) return;
  if (live_nodes() < gc_threshold_) return;
  collect_garbage_impl(GcTrigger::kThreshold);
  // If the collection freed little, raise the threshold so we do not thrash.
  if (live_nodes() * 4 > gc_threshold_ * 3) gc_threshold_ *= 2;
}

void Manager::mark(NodeId root, std::vector<NodeId>& stack) {
  stack.push_back(root);
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    Node& n = nodes_[id];
    if (n.var == kTerminalVar) continue;
    // The mark bit is borrowed from the top bit of `var`; kFreeVar and
    // kTerminalVar never collide with real variables (< 2^31 of them).
    if ((n.var & 0x80000000u) != 0) continue;  // already marked
    n.var |= 0x80000000u;
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
}

void Manager::collect_garbage() { collect_garbage_impl(GcTrigger::kExplicit); }

void Manager::collect_garbage_impl(GcTrigger trigger) {
  // Nested inside whatever operation triggered the collection: the depth
  // guard keeps the outer hook as the sole accountant, so this only charges
  // for explicitly requested collections.
  profile::ScopedOp profiled(*this, profile::OpClass::kGc);
  LR_TRACE_SPAN_NAMED(span, "bdd.gc");
  const auto gc_start = std::chrono::steady_clock::now();
  const std::size_t live_before = live_nodes();
  ++stats_.gc_runs;
  std::vector<NodeId> stack;
  stack.reserve(1024);
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.var != kFreeVar && n.refs > 0 && (n.var & 0x80000000u) == 0) {
      mark(id, stack);
    }
  }
  // Sweep: rebuild the unique table from marked nodes, free the rest.
  std::fill(buckets_.begin(), buckets_.end(), kFalseId);
  free_head_ = 0;
  free_count_ = 0;
  has_free_ = false;
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    Node& n = nodes_[id];
    if (n.var == kFreeVar) {
      n.next = free_head_;
      free_head_ = id;
      ++free_count_;
      has_free_ = true;
      continue;
    }
    if ((n.var & 0x80000000u) != 0) {
      n.var &= 0x7fffffffu;  // clear mark, keep node
      const std::size_t b = hash_triple(n.var, n.lo, n.hi) & bucket_mask_;
      n.next = buckets_[b];
      buckets_[b] = id;
    } else {
      ++stats_.gc_reclaimed;
      n.var = kFreeVar;
      n.next = free_head_;
      free_head_ = id;
      ++free_count_;
      has_free_ = true;
    }
  }
  // Stale cache entries may reference freed slots; drop everything.
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
  stats_.live_nodes = live_nodes();
  const double gc_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - gc_start)
          .count();
  if (gc_log_.size() < kMaxGcRecords) {
    GcRecord record;
    record.trigger = trigger;
    record.live_before = live_before;
    record.live_after = stats_.live_nodes;
    record.reclaimed = live_before - stats_.live_nodes;
    record.seconds = gc_seconds;
    gc_log_.push_back(record);
  } else {
    ++gc_log_dropped_;
  }
  if (support::trace::enabled()) {
    span.attr("trigger", std::string_view(gc_trigger_name(trigger)));
    span.attr("live_before", static_cast<std::uint64_t>(live_before));
    span.attr("live_after", static_cast<std::uint64_t>(stats_.live_nodes));
  }
}

// --- Memory & structure telemetry --------------------------------------------

std::vector<std::size_t> Manager::level_histogram() const {
  std::vector<std::size_t> hist(num_vars_, 0);
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    const VarIndex var = nodes_[id].var;
    if (var == kFreeVar || var == kTerminalVar) continue;
    ++hist[level_of_var_[var]];
  }
  return hist;
}

std::size_t Manager::unique_buckets_used() const {
  std::size_t used = 0;
  for (const NodeId head : buckets_) used += head != kFalseId ? 1 : 0;
  return used;
}

std::size_t Manager::cache_entries_used() const {
  std::size_t used = 0;
  for (const CacheEntry& e : cache_) used += e.op != kOpNone ? 1 : 0;
  return used;
}

// --- Operation cache -----------------------------------------------------------

bool Manager::cache_get(std::uint32_t op, NodeId a, NodeId b, NodeId c,
                        NodeId& out) {
  ++stats_.cache_lookups;
  const CacheEntry& e = cache_[hash_cache(op, a, b, c) & cache_mask_];
  if (e.op == op && e.a == a && e.b == b && e.c == c) {
    ++stats_.cache_hits;
    out = e.result;
    return true;
  }
  return false;
}

void Manager::cache_put(std::uint32_t op, NodeId a, NodeId b, NodeId c,
                        NodeId result) {
  CacheEntry& e = cache_[hash_cache(op, a, b, c) & cache_mask_];
  if (e.op != kOpNone && (e.op != op || e.a != a || e.b != b || e.c != c)) {
    ++stats_.cache_evictions;  // direct-mapped: a different live key dies here
  }
  e.op = op;
  e.a = a;
  e.b = b;
  e.c = c;
  e.result = result;
}

}  // namespace lr::bdd
