#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"

namespace lr::bdd::meminfo {

/// Snapshot of one manager's memory shape: where the nodes live (per
/// level), how full the unique table and op cache are, and the watermarks.
/// Collected on demand — collect() is one pool walk plus one cache walk, so
/// it is cheap enough to run at the end of every repair but not inside hot
/// loops.
struct MemInfo {
  std::size_t live_nodes = 0;
  std::size_t peak_nodes = 0;
  std::size_t pool_nodes = 0;       ///< pool slots (live + free + terminals)
  std::size_t pool_bytes = 0;       ///< pool + unique table + op cache, now
  std::size_t peak_bytes = 0;       ///< high-water mark of pool_bytes
  std::uint64_t created_nodes = 0;
  std::uint64_t unique_hits = 0;

  std::size_t unique_buckets = 0;
  std::size_t unique_buckets_used = 0;
  double unique_load = 0.0;         ///< live nodes per bucket

  std::size_t cache_entries = 0;
  std::size_t cache_entries_used = 0;
  double cache_occupancy = 0.0;     ///< used / total entries
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_evictions = 0;
  double cache_hit_rate = 0.0;

  std::vector<std::size_t> level_histogram;  ///< live nodes per level
  std::vector<VarIndex> var_at_level;        ///< level -> variable (labels)
};

[[nodiscard]] MemInfo collect(const Manager& mgr);

/// Renders the "bdd memory" --stats section: summary lines plus the
/// top-`max_levels` levels by live-node count (ties broken by level, so the
/// output is deterministic).
void write_report(const MemInfo& info, std::ostream& out,
                  std::size_t max_levels = 10);

/// Mirrors the snapshot into the metrics registry as `<prefix>.*` gauges
/// (per-level node counts land under `<prefix>.level.<L>.nodes`, nonzero
/// levels only).
void record_metrics(const MemInfo& info, const std::string& prefix = "bdd.mem");

/// Renders the "bdd reorder" --stats section: one line per sifting run plus
/// the per-variable start→end level / node-delta table. Writes nothing when
/// the manager never reordered.
void write_reorder_report(const Manager& mgr, std::ostream& out);

/// Mirrors the reorder log into `<prefix>.*` metrics (runs, passes,
/// seconds, live before/after of the last run, and per-variable
/// `<prefix>.var.<v>.{start_level,end_level,node_delta}` of the last run).
void record_reorder_metrics(const Manager& mgr,
                            const std::string& prefix = "bdd.reorder");

/// Renders the "bdd gc" --stats section from the manager's structured GC
/// log: per-trigger run counts and reclaimed totals. Writes nothing when no
/// GC ever ran.
void write_gc_report(const Manager& mgr, std::ostream& out);

}  // namespace lr::bdd::meminfo
