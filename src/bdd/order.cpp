#include "bdd/order.hpp"

#include <stdexcept>

#include "support/fs.hpp"
#include "support/json.hpp"

namespace lr::bdd::order {

std::size_t apply_order(Manager& mgr, std::span<const VarIndex> target) {
  const std::uint32_t n = mgr.var_count();
  if (target.size() != n) {
    throw std::invalid_argument("apply_order: order must list every variable");
  }
  std::vector<bool> seen(n, false);
  for (const VarIndex v : target) {
    if (v >= n || seen[v]) {
      throw std::invalid_argument("apply_order: order is not a permutation");
    }
    seen[v] = true;
  }

  // Selection sort by adjacent exchanges: place target[L] at level L by
  // bubbling it up from wherever it currently sits. Everything above L is
  // already in place, so the journey never disturbs placed levels.
  std::size_t swaps = 0;
  for (std::uint32_t level = 0; level < n; ++level) {
    const VarIndex v = target[level];
    for (std::uint32_t at = mgr.level_of(v); at > level; --at) {
      mgr.swap_adjacent_levels(at - 1);
      ++swaps;
    }
  }
  return swaps;
}

std::size_t restore_creation_order(Manager& mgr) {
  std::vector<VarIndex> identity(mgr.var_count());
  for (VarIndex v = 0; v < mgr.var_count(); ++v) identity[v] = v;
  return apply_order(mgr, identity);
}

OrderProfile capture_profile(const Manager& mgr,
                             std::span<const std::string> labels,
                             std::string model, std::string source) {
  OrderProfile profile;
  profile.model = std::move(model);
  profile.source = std::move(source);
  const ManagerStats& stats = mgr.stats();
  profile.live_nodes = stats.live_nodes;
  profile.peak_nodes = stats.peak_nodes;
  profile.reorder_runs = stats.reorder_runs;
  const std::vector<std::size_t> histogram = mgr.level_histogram();
  profile.levels.reserve(mgr.var_count());
  for (std::uint32_t level = 0; level < mgr.var_count(); ++level) {
    const VarIndex v = mgr.var_at_level(level);
    ProfileLevel entry;
    entry.label = v < labels.size() ? labels[v] : "v" + std::to_string(v);
    entry.nodes = level < histogram.size() ? histogram[level] : 0;
    profile.levels.push_back(std::move(entry));
  }
  return profile;
}

std::string profile_to_json(const OrderProfile& profile) {
  using support::json_quote;
  std::string out = "{\n";
  out += "  \"schema\": " + json_quote(kProfileSchema) + ",\n";
  out += "  \"model\": " + json_quote(profile.model) + ",\n";
  out += "  \"source\": " + json_quote(profile.source) + ",\n";
  out += "  \"live_nodes\": " + std::to_string(profile.live_nodes) + ",\n";
  out += "  \"peak_nodes\": " + std::to_string(profile.peak_nodes) + ",\n";
  out += "  \"reorder_runs\": " + std::to_string(profile.reorder_runs) + ",\n";
  out += "  \"levels\": [";
  for (std::size_t i = 0; i < profile.levels.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"label\": " + json_quote(profile.levels[i].label) +
           ", \"nodes\": " + std::to_string(profile.levels[i].nodes) + "}";
  }
  out += profile.levels.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::optional<OrderProfile> parse_profile(std::string_view text) {
  const std::optional<support::JsonValue> doc = support::json_parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const support::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kProfileSchema) {
    return std::nullopt;
  }
  OrderProfile profile;
  if (const support::JsonValue* v = doc->find("model");
      v != nullptr && v->is_string()) {
    profile.model = v->string;
  }
  if (const support::JsonValue* v = doc->find("source");
      v != nullptr && v->is_string()) {
    profile.source = v->string;
  }
  if (const support::JsonValue* v = doc->find("live_nodes");
      v != nullptr && v->is_number()) {
    profile.live_nodes = static_cast<std::size_t>(v->number);
  }
  if (const support::JsonValue* v = doc->find("peak_nodes");
      v != nullptr && v->is_number()) {
    profile.peak_nodes = static_cast<std::size_t>(v->number);
  }
  if (const support::JsonValue* v = doc->find("reorder_runs");
      v != nullptr && v->is_number()) {
    profile.reorder_runs = static_cast<std::uint64_t>(v->number);
  }
  const support::JsonValue* levels = doc->find("levels");
  if (levels == nullptr || !levels->is_array()) return std::nullopt;
  for (const support::JsonValue& entry : levels->array) {
    if (!entry.is_object()) return std::nullopt;
    const support::JsonValue* label = entry.find("label");
    if (label == nullptr || !label->is_string() || label->string.empty()) {
      return std::nullopt;
    }
    ProfileLevel level;
    level.label = label->string;
    if (const support::JsonValue* nodes = entry.find("nodes");
        nodes != nullptr && nodes->is_number()) {
      level.nodes = static_cast<std::size_t>(nodes->number);
    }
    profile.levels.push_back(std::move(level));
  }
  return profile;
}

std::optional<OrderProfile> load_profile(const std::string& path) {
  const std::optional<std::string> text = support::read_file(path);
  if (!text) return std::nullopt;
  return parse_profile(*text);
}

bool save_profile(const OrderProfile& profile, const std::string& path) {
  return support::write_file_atomic(path, profile_to_json(profile));
}

}  // namespace lr::bdd::order
