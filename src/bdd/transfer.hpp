#pragma once

// Structural transfer of a BDD between managers.
//
// The intra-problem engine (symbolic/intra.*) gives each worker thread its
// own Manager — the engine mirrors the main manager's variable order into
// every worker, so a function has the *same* node structure in both (BDDs
// are canonical). import_bdd copies that structure across: it walks the
// source manager read-only through Manager::node_view and rebuilds each
// node in the destination with one ITE on the node's variable, which
// reduces in a single recursion step to the corresponding make_node. Cost
// is O(nodes in the source function), one memo entry per node.
//
// Thread-safety contract: the source manager must be quiescent (no
// mutating operation, no handle copies/drops on it) for the whole call;
// several threads may then import from the same source concurrently, each
// into its own destination manager. The caller must keep the source root
// externally referenced (pinned) so GC cannot recycle its slot.

#include <unordered_map>

#include "bdd/bdd.hpp"

namespace lr::bdd {

/// Memo for repeated imports from one source manager into one destination:
/// maps source NodeId -> imported destination handle. The stored handles
/// keep the destination nodes alive, so entries stay valid across GCs on
/// the destination side. Invalidate (clear) whenever the *source* manager
/// may have garbage-collected, since source ids can then be recycled.
using ImportMemo = std::unordered_map<NodeId, Bdd>;

/// Copies the function rooted at `root` (a node of `src`) into `dst`,
/// returning the equivalent function there. Both managers must have the
/// same variable count; the result is order-independent (semantic
/// equality), but when the level orders match, the imported function also
/// has identical node structure, which the intra engine relies on for
/// deterministic worker-side decisions.
Bdd import_bdd(const Manager& src, NodeId root, Manager& dst,
               ImportMemo& memo);

}  // namespace lr::bdd
