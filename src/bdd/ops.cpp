#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "bdd/bdd.hpp"
#include "bdd/profile.hpp"

namespace lr::bdd {

namespace {

using profile::OpClass;
using profile::ScopedOp;
/// Checks that both operands live in `mgr` (cheap sanity net in debug).
inline void check_same_manager(const Manager* mgr, const Bdd& a,
                               const Bdd& b) {
  (void)mgr;
  (void)a;
  (void)b;
  assert(a.manager() == mgr && b.manager() == mgr);
}
}  // namespace

// --- Binary boolean operations ---------------------------------------------------

Bdd Manager::apply_and(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f, g);
  ScopedOp profiled(*this, OpClass::kApply);
  maybe_gc();
  return wrap(and_rec(f.id(), g.id()));
}

Bdd Manager::apply_or(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f, g);
  ScopedOp profiled(*this, OpClass::kApply);
  maybe_gc();
  return wrap(or_rec(f.id(), g.id()));
}

Bdd Manager::apply_xor(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f, g);
  ScopedOp profiled(*this, OpClass::kApply);
  maybe_gc();
  return wrap(xor_rec(f.id(), g.id()));
}

Bdd Manager::apply_diff(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f, g);
  ScopedOp profiled(*this, OpClass::kApply);
  maybe_gc();
  return wrap(diff_rec(f.id(), g.id()));
}

Bdd Manager::apply_not(const Bdd& f) {
  assert(f.manager() == this);
  ScopedOp profiled(*this, OpClass::kApply);
  maybe_gc();
  return wrap(not_rec(f.id()));
}

Bdd Manager::apply_ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  check_same_manager(this, f, g);
  assert(h.manager() == this);
  ScopedOp profiled(*this, OpClass::kIte);
  maybe_gc();
  return wrap(ite_rec(f.id(), g.id(), h.id()));
}

NodeId Manager::and_rec(NodeId f, NodeId g) {
  if (f == kFalseId || g == kFalseId) return kFalseId;
  if (f == kTrueId) return g;
  if (g == kTrueId || f == g) return f;
  if (f > g) std::swap(f, g);
  NodeId out;
  if (cache_get(kOpAnd, f, g, 0, out)) return out;
  const Node nf = nodes_[f];
  const Node ng = nodes_[g];
  const std::uint32_t lf = node_level(nf.var);
  const std::uint32_t lg = node_level(ng.var);
  const VarIndex top = lf <= lg ? nf.var : ng.var;
  const NodeId flo = lf <= lg ? nf.lo : f;
  const NodeId fhi = lf <= lg ? nf.hi : f;
  const NodeId glo = lg <= lf ? ng.lo : g;
  const NodeId ghi = lg <= lf ? ng.hi : g;
  const NodeId lo = and_rec(flo, glo);
  const NodeId hi = and_rec(fhi, ghi);
  const NodeId r = make_node(top, lo, hi);
  cache_put(kOpAnd, f, g, 0, r);
  return r;
}

NodeId Manager::or_rec(NodeId f, NodeId g) {
  if (f == kTrueId || g == kTrueId) return kTrueId;
  if (f == kFalseId) return g;
  if (g == kFalseId || f == g) return f;
  if (f > g) std::swap(f, g);
  NodeId out;
  if (cache_get(kOpOr, f, g, 0, out)) return out;
  const Node nf = nodes_[f];
  const Node ng = nodes_[g];
  const std::uint32_t lf = node_level(nf.var);
  const std::uint32_t lg = node_level(ng.var);
  const VarIndex top = lf <= lg ? nf.var : ng.var;
  const NodeId flo = lf <= lg ? nf.lo : f;
  const NodeId fhi = lf <= lg ? nf.hi : f;
  const NodeId glo = lg <= lf ? ng.lo : g;
  const NodeId ghi = lg <= lf ? ng.hi : g;
  const NodeId lo = or_rec(flo, glo);
  const NodeId hi = or_rec(fhi, ghi);
  const NodeId r = make_node(top, lo, hi);
  cache_put(kOpOr, f, g, 0, r);
  return r;
}

NodeId Manager::xor_rec(NodeId f, NodeId g) {
  if (f == g) return kFalseId;
  if (f == kFalseId) return g;
  if (g == kFalseId) return f;
  if (f == kTrueId) return not_rec(g);
  if (g == kTrueId) return not_rec(f);
  if (f > g) std::swap(f, g);
  NodeId out;
  if (cache_get(kOpXor, f, g, 0, out)) return out;
  const Node nf = nodes_[f];
  const Node ng = nodes_[g];
  const std::uint32_t lf = node_level(nf.var);
  const std::uint32_t lg = node_level(ng.var);
  const VarIndex top = lf <= lg ? nf.var : ng.var;
  const NodeId flo = lf <= lg ? nf.lo : f;
  const NodeId fhi = lf <= lg ? nf.hi : f;
  const NodeId glo = lg <= lf ? ng.lo : g;
  const NodeId ghi = lg <= lf ? ng.hi : g;
  const NodeId lo = xor_rec(flo, glo);
  const NodeId hi = xor_rec(fhi, ghi);
  const NodeId r = make_node(top, lo, hi);
  cache_put(kOpXor, f, g, 0, r);
  return r;
}

NodeId Manager::diff_rec(NodeId f, NodeId g) {
  if (f == kFalseId || g == kTrueId || f == g) return kFalseId;
  if (g == kFalseId) return f;
  if (f == kTrueId) return not_rec(g);
  NodeId out;
  if (cache_get(kOpDiff, f, g, 0, out)) return out;
  const Node nf = nodes_[f];
  const Node ng = nodes_[g];
  const std::uint32_t lf = node_level(nf.var);
  const std::uint32_t lg = node_level(ng.var);
  const VarIndex top = lf <= lg ? nf.var : ng.var;
  const NodeId flo = lf <= lg ? nf.lo : f;
  const NodeId fhi = lf <= lg ? nf.hi : f;
  const NodeId glo = lg <= lf ? ng.lo : g;
  const NodeId ghi = lg <= lf ? ng.hi : g;
  const NodeId lo = diff_rec(flo, glo);
  const NodeId hi = diff_rec(fhi, ghi);
  const NodeId r = make_node(top, lo, hi);
  cache_put(kOpDiff, f, g, 0, r);
  return r;
}

NodeId Manager::not_rec(NodeId f) {
  if (f == kFalseId) return kTrueId;
  if (f == kTrueId) return kFalseId;
  NodeId out;
  if (cache_get(kOpNot, f, 0, 0, out)) return out;
  const Node nf = nodes_[f];
  const NodeId r = make_node(nf.var, not_rec(nf.lo), not_rec(nf.hi));
  cache_put(kOpNot, f, 0, 0, r);
  return r;
}

NodeId Manager::ite_rec(NodeId f, NodeId g, NodeId h) {
  if (f == kTrueId) return g;
  if (f == kFalseId) return h;
  if (g == h) return g;
  if (g == kTrueId && h == kFalseId) return f;
  if (g == kFalseId && h == kTrueId) return not_rec(f);
  if (f == g) return or_rec(f, h);        // ite(f, f, h) = f ∨ h
  if (f == h) return and_rec(f, g);       // ite(f, g, f) = f ∧ g
  if (g == kFalseId) return diff_rec(h, f);
  if (h == kFalseId) return and_rec(f, g);
  if (h == kTrueId) return or_rec(not_rec(f), g);
  NodeId out;
  if (cache_get(kOpIte, f, g, h, out)) return out;
  const Node nf = nodes_[f];
  const Node ng = nodes_[g];
  const Node nh = nodes_[h];
  std::uint32_t top_level = node_level(nf.var);
  VarIndex top = nf.var;
  if (node_level(ng.var) < top_level) { top_level = node_level(ng.var); top = ng.var; }
  if (node_level(nh.var) < top_level) { top_level = node_level(nh.var); top = nh.var; }
  const NodeId flo = nf.var == top ? nf.lo : f;
  const NodeId fhi = nf.var == top ? nf.hi : f;
  const NodeId glo = ng.var == top ? ng.lo : g;
  const NodeId ghi = ng.var == top ? ng.hi : g;
  const NodeId hlo = nh.var == top ? nh.lo : h;
  const NodeId hhi = nh.var == top ? nh.hi : h;
  const NodeId lo = ite_rec(flo, glo, hlo);
  const NodeId hi = ite_rec(fhi, ghi, hhi);
  const NodeId r = make_node(top, lo, hi);
  cache_put(kOpIte, f, g, h, r);
  return r;
}

// --- Decision procedures (no result BDD built) -----------------------------------

bool Manager::leq(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f, g);
  ScopedOp profiled(*this, OpClass::kDecide);
  return leq_rec(f.id(), g.id());
}

bool Manager::leq_rec(NodeId f, NodeId g) {
  if (f == kFalseId || g == kTrueId || f == g) return true;
  if (g == kFalseId) return false;  // f != 0 here
  if (f == kTrueId) return false;   // g != 1 here
  NodeId out;
  if (cache_get(kOpLeq, f, g, 0, out)) return out == kTrueId;
  const Node nf = nodes_[f];
  const Node ng = nodes_[g];
  const std::uint32_t lf = node_level(nf.var);
  const std::uint32_t lg = node_level(ng.var);
  const NodeId flo = lf <= lg ? nf.lo : f;
  const NodeId fhi = lf <= lg ? nf.hi : f;
  const NodeId glo = lg <= lf ? ng.lo : g;
  const NodeId ghi = lg <= lf ? ng.hi : g;
  const bool r = leq_rec(flo, glo) && leq_rec(fhi, ghi);
  cache_put(kOpLeq, f, g, 0, r ? kTrueId : kFalseId);
  return r;
}

bool Manager::disjoint(const Bdd& f, const Bdd& g) {
  check_same_manager(this, f, g);
  ScopedOp profiled(*this, OpClass::kDecide);
  return disjoint_rec(f.id(), g.id());
}

bool Manager::disjoint_rec(NodeId f, NodeId g) {
  if (f == kFalseId || g == kFalseId) return true;
  if (f == kTrueId) return g == kFalseId;
  if (g == kTrueId) return false;  // f != 0 here
  if (f == g) return false;
  if (f > g) std::swap(f, g);
  NodeId out;
  if (cache_get(kOpDisjoint, f, g, 0, out)) return out == kTrueId;
  const Node nf = nodes_[f];
  const Node ng = nodes_[g];
  const std::uint32_t lf = node_level(nf.var);
  const std::uint32_t lg = node_level(ng.var);
  const NodeId flo = lf <= lg ? nf.lo : f;
  const NodeId fhi = lf <= lg ? nf.hi : f;
  const NodeId glo = lg <= lf ? ng.lo : g;
  const NodeId ghi = lg <= lf ? ng.hi : g;
  const bool r = disjoint_rec(flo, glo) && disjoint_rec(fhi, ghi);
  cache_put(kOpDisjoint, f, g, 0, r ? kTrueId : kFalseId);
  return r;
}

// --- Quantification ----------------------------------------------------------------

Bdd Manager::exists(const Bdd& f, const Bdd& cube) {
  check_same_manager(this, f, cube);
  ScopedOp profiled(*this, OpClass::kQuantify);
  maybe_gc();
  return wrap(exists_rec(f.id(), cube.id()));
}

Bdd Manager::forall(const Bdd& f, const Bdd& cube) {
  check_same_manager(this, f, cube);
  ScopedOp profiled(*this, OpClass::kQuantify);
  maybe_gc();
  return wrap(forall_rec(f.id(), cube.id()));
}

Bdd Manager::and_exists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  check_same_manager(this, f, g);
  assert(cube.manager() == this);
  ScopedOp profiled(*this, OpClass::kQuantify);
  maybe_gc();
  return wrap(and_exists_rec(f.id(), g.id(), cube.id()));
}

Bdd Manager::and_exists(const Bdd& f, const Bdd& g, const Bdd& h,
                        const Bdd& cube) {
  check_same_manager(this, f, g);
  check_same_manager(this, h, cube);
  ScopedOp profiled(*this, OpClass::kQuantify);
  maybe_gc();
  return wrap(and_exists3_rec(f.id(), g.id(), h.id(), cube.id()));
}

NodeId Manager::exists_rec(NodeId f, NodeId cube) {
  if (f <= kTrueId) return f;
  // Skip quantified variables above f's top variable; they are not in f's
  // support, so quantifying them is the identity.
  while (cube != kTrueId &&
         node_level(nodes_[cube].var) < node_level(nodes_[f].var)) {
    cube = nodes_[cube].hi;
  }
  if (cube == kTrueId) return f;
  NodeId out;
  if (cache_get(kOpExists, f, cube, 0, out)) return out;
  const Node nf = nodes_[f];
  NodeId r;
  if (nodes_[cube].var == nf.var) {
    const NodeId rest = nodes_[cube].hi;
    const NodeId lo = exists_rec(nf.lo, rest);
    r = (lo == kTrueId) ? kTrueId : or_rec(lo, exists_rec(nf.hi, rest));
  } else {
    r = make_node(nf.var, exists_rec(nf.lo, cube), exists_rec(nf.hi, cube));
  }
  cache_put(kOpExists, f, cube, 0, r);
  return r;
}

NodeId Manager::forall_rec(NodeId f, NodeId cube) {
  if (f <= kTrueId) return f;
  while (cube != kTrueId &&
         node_level(nodes_[cube].var) < node_level(nodes_[f].var)) {
    cube = nodes_[cube].hi;
  }
  if (cube == kTrueId) return f;
  NodeId out;
  if (cache_get(kOpForall, f, cube, 0, out)) return out;
  const Node nf = nodes_[f];
  NodeId r;
  if (nodes_[cube].var == nf.var) {
    const NodeId rest = nodes_[cube].hi;
    const NodeId lo = forall_rec(nf.lo, rest);
    r = (lo == kFalseId) ? kFalseId : and_rec(lo, forall_rec(nf.hi, rest));
  } else {
    r = make_node(nf.var, forall_rec(nf.lo, cube), forall_rec(nf.hi, cube));
  }
  cache_put(kOpForall, f, cube, 0, r);
  return r;
}

NodeId Manager::and_exists_rec(NodeId f, NodeId g, NodeId cube) {
  if (f == kFalseId || g == kFalseId) return kFalseId;
  if (f == kTrueId && g == kTrueId) return kTrueId;
  if (f > g) std::swap(f, g);  // AND is commutative
  const std::uint32_t lf = node_level(nodes_[f].var);
  const std::uint32_t lg = node_level(nodes_[g].var);
  const VarIndex top = lf <= lg ? nodes_[f].var : nodes_[g].var;
  const std::uint32_t top_level = std::min(lf, lg);
  while (cube != kTrueId && node_level(nodes_[cube].var) < top_level) {
    cube = nodes_[cube].hi;
  }
  if (cube == kTrueId) return and_rec(f, g);
  NodeId out;
  if (cache_get(kOpAndExists, f, g, cube, out)) return out;
  const Node nf = nodes_[f];
  const Node ng = nodes_[g];
  const NodeId flo = nf.var == top ? nf.lo : f;
  const NodeId fhi = nf.var == top ? nf.hi : f;
  const NodeId glo = ng.var == top ? ng.lo : g;
  const NodeId ghi = ng.var == top ? ng.hi : g;
  NodeId r;
  if (nodes_[cube].var == top) {
    const NodeId rest = nodes_[cube].hi;
    const NodeId lo = and_exists_rec(flo, glo, rest);
    r = (lo == kTrueId) ? kTrueId
                        : or_rec(lo, and_exists_rec(fhi, ghi, rest));
  } else {
    r = make_node(top, and_exists_rec(flo, glo, cube),
                  and_exists_rec(fhi, ghi, cube));
  }
  cache_put(kOpAndExists, f, g, cube, r);
  return r;
}

NodeId Manager::and_exists3_rec(NodeId f, NodeId g, NodeId h, NodeId cube) {
  if (f == kFalseId || g == kFalseId || h == kFalseId) return kFalseId;
  // Sort the conjuncts (AND is commutative) so permutations share cache
  // entries, then strip trivial/duplicate conjuncts down to the two-way op.
  if (f > g) std::swap(f, g);
  if (g > h) std::swap(g, h);
  if (f > g) std::swap(f, g);
  if (f == kTrueId || f == g) return and_exists_rec(g, h, cube);
  if (g == h) return and_exists_rec(f, g, cube);
  const std::uint32_t lf = node_level(nodes_[f].var);
  const std::uint32_t lg = node_level(nodes_[g].var);
  const std::uint32_t lh = node_level(nodes_[h].var);
  const std::uint32_t top_level = std::min(lf, std::min(lg, lh));
  const VarIndex top = lf == top_level   ? nodes_[f].var
                       : lg == top_level ? nodes_[g].var
                                         : nodes_[h].var;
  while (cube != kTrueId && node_level(nodes_[cube].var) < top_level) {
    cube = nodes_[cube].hi;
  }
  if (cube == kTrueId) return and_rec(f, and_rec(g, h));
  NodeId out;
  // Four operands on a three-slot cache entry: the cube id rides in the op
  // field under kOpAndExists3Flag (see bdd.hpp).
  const std::uint32_t op = kOpAndExists3Flag | cube;
  if (cache_get(op, f, g, h, out)) return out;
  const Node nf = nodes_[f];
  const Node ng = nodes_[g];
  const Node nh = nodes_[h];
  const NodeId flo = nf.var == top ? nf.lo : f;
  const NodeId fhi = nf.var == top ? nf.hi : f;
  const NodeId glo = ng.var == top ? ng.lo : g;
  const NodeId ghi = ng.var == top ? ng.hi : g;
  const NodeId hlo = nh.var == top ? nh.lo : h;
  const NodeId hhi = nh.var == top ? nh.hi : h;
  NodeId r;
  if (nodes_[cube].var == top) {
    const NodeId rest = nodes_[cube].hi;
    const NodeId lo = and_exists3_rec(flo, glo, hlo, rest);
    r = (lo == kTrueId) ? kTrueId
                        : or_rec(lo, and_exists3_rec(fhi, ghi, hhi, rest));
  } else {
    r = make_node(top, and_exists3_rec(flo, glo, hlo, cube),
                  and_exists3_rec(fhi, ghi, hhi, cube));
  }
  cache_put(op, f, g, h, r);
  return r;
}

// --- Permutation ---------------------------------------------------------------------

PermId Manager::register_permutation(std::span<const VarIndex> perm) {
  if (perm.size() != num_vars_) {
    throw std::invalid_argument(
        "register_permutation: permutation size must equal variable count");
  }
#ifndef NDEBUG
  std::vector<bool> seen(num_vars_, false);
  for (const VarIndex v : perm) {
    assert(v < num_vars_ && !seen[v] && "permutation must be a bijection");
    seen[v] = true;
  }
#endif
  permutations_.emplace_back(perm.begin(), perm.end());
  return static_cast<PermId>(permutations_.size() - 1);
}

Bdd Manager::permute(const Bdd& f, PermId perm) {
  assert(f.manager() == this && perm < permutations_.size());
  ScopedOp profiled(*this, OpClass::kPermute);
  maybe_gc();
  return wrap(permute_rec(f.id(), perm));
}

NodeId Manager::permute_rec(NodeId f, PermId perm) {
  if (f <= kTrueId) return f;
  const std::uint32_t op = kOpPermBase + perm;
  NodeId out;
  if (cache_get(op, f, 0, 0, out)) return out;
  const Node nf = nodes_[f];
  const NodeId lo = permute_rec(nf.lo, perm);
  const NodeId hi = permute_rec(nf.hi, perm);
  const VarIndex nv = permutations_[perm][nf.var];
  // The renamed variable may be out of order w.r.t. the already-permuted
  // cofactors, so rebuild with ITE rather than make_node.
  const NodeId vnode = make_node(nv, kFalseId, kTrueId);
  const NodeId r = ite_rec(vnode, hi, lo);
  cache_put(op, f, 0, 0, r);
  return r;
}

// --- Cofactor -------------------------------------------------------------------------

Bdd Manager::cofactor(const Bdd& f, VarIndex v, bool value) {
  assert(f.manager() == this && v < num_vars_);
  ScopedOp profiled(*this, OpClass::kQuantify);
  maybe_gc();
  const Bdd lit = value ? bdd_var(v) : bdd_nvar(v);
  const VarIndex vars[1] = {v};
  const Bdd cube = make_cube(vars);
  return wrap(and_exists_rec(f.id(), lit.id(), cube.id()));
}

// --- Counting / solutions ----------------------------------------------------------------

double Manager::sat_count(const Bdd& f, std::uint32_t nvars) {
  assert(f.manager() == this);
  // frac(f) = fraction of all assignments (over the full variable universe)
  // that satisfy f; independent of which variables actually occur.
  std::unordered_map<NodeId, double> memo;
  memo.reserve(256);
  std::function<double(NodeId)> frac = [&](NodeId id) -> double {
    if (id == kFalseId) return 0.0;
    if (id == kTrueId) return 1.0;
    const auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[id];
    const double r = 0.5 * (frac(n.lo) + frac(n.hi));
    memo.emplace(id, r);
    return r;
  };
  return frac(f.id()) * std::pow(2.0, static_cast<double>(nvars));
}

Bdd Manager::pick_minterm(const Bdd& f, const Bdd& cube) {
  check_same_manager(this, f, cube);
  if (f.is_false()) {
    throw std::invalid_argument("pick_minterm: function is unsatisfiable");
  }
  maybe_gc();
  return wrap(pick_rec(f.id(), cube.id()));
}

NodeId Manager::pick_rec(NodeId f, NodeId cube) {
  assert(f != kFalseId);
  if (cube == kTrueId) {
    // All of f's support must be covered by the cube.
    assert(f == kTrueId && "pick_minterm: cube must contain support(f)");
    return kTrueId;
  }
  const Node nc = nodes_[cube];
  const VarIndex v = nc.var;
  if (f == kTrueId || node_level(nodes_[f].var) > node_level(v)) {
    // f does not constrain v: fix v = 0 for determinism.
    const NodeId rest = pick_rec(f, nc.hi);
    return make_node(v, rest, kFalseId);
  }
  assert(nodes_[f].var == v && "pick_minterm: cube must contain support(f)");
  const Node nf = nodes_[f];
  if (nf.lo != kFalseId) {
    const NodeId rest = pick_rec(nf.lo, nc.hi);
    return make_node(v, rest, kFalseId);
  }
  const NodeId rest = pick_rec(nf.hi, nc.hi);
  return make_node(v, kFalseId, rest);
}

void Manager::foreach_minterm(
    const Bdd& f, const Bdd& cube,
    const std::function<void(std::span<const bool>)>& fn) {
  check_same_manager(this, f, cube);
  // Collect the cube variables in order.
  std::vector<VarIndex> vars;
  for (NodeId c = cube.id(); c != kTrueId; c = nodes_[c].hi) {
    vars.push_back(nodes_[c].var);
  }
  // A plain bool buffer (std::vector<bool> has no contiguous storage).
  const std::unique_ptr<bool[]> values(new bool[vars.size()]());
  // Recursive enumeration: at depth d we branch on vars[d].
  std::function<void(NodeId, std::size_t)> walk = [&](NodeId g,
                                                      std::size_t d) {
    if (g == kFalseId) return;
    if (d == vars.size()) {
      assert(g == kTrueId && "foreach_minterm: cube must contain support(f)");
      fn(std::span<const bool>(values.get(), vars.size()));
      return;
    }
    const VarIndex v = vars[d];
    NodeId glo = g;
    NodeId ghi = g;
    if (g > kTrueId && nodes_[g].var == v) {
      glo = nodes_[g].lo;
      ghi = nodes_[g].hi;
    } else {
      assert(g == kTrueId || node_level(nodes_[g].var) > node_level(v));
    }
    values[d] = false;
    walk(glo, d + 1);
    values[d] = true;
    walk(ghi, d + 1);
  };
  walk(f.id(), 0);
}

void Manager::foreach_cube(
    const Bdd& f,
    const std::function<void(std::span<const signed char>)>& fn) {
  assert(f.manager() == this);
  std::vector<signed char> values(num_vars_, -1);
  std::function<void(NodeId)> walk = [&](NodeId g) {
    if (g == kFalseId) return;
    if (g == kTrueId) {
      fn(std::span<const signed char>(values.data(), values.size()));
      return;
    }
    const Node n = nodes_[g];
    values[n.var] = 0;
    walk(n.lo);
    values[n.var] = 1;
    walk(n.hi);
    values[n.var] = -1;
  };
  walk(f.id());
}

bool Manager::eval(const Bdd& f, std::span<const bool> assignment) const {
  assert(f.manager() == this);
  NodeId cur = f.id();
  while (cur > kTrueId) {
    const Node& n = nodes_[cur];
    const bool value =
        n.var < assignment.size() ? assignment[n.var] : false;
    cur = value ? n.hi : n.lo;
  }
  return cur == kTrueId;
}

Bdd Manager::support_cube(const Bdd& f) {
  const std::vector<VarIndex> vars = support(f);
  return make_cube(vars);
}

std::vector<VarIndex> Manager::support(const Bdd& f) {
  assert(f.manager() == this);
  std::vector<bool> in_support(num_vars_, false);
  std::unordered_set<NodeId> visited;
  std::vector<NodeId> stack{f.id()};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (id <= kTrueId || !visited.insert(id).second) continue;
    const Node& n = nodes_[id];
    in_support[n.var] = true;
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
  std::vector<VarIndex> result;
  for (VarIndex v = 0; v < num_vars_; ++v) {
    if (in_support[v]) result.push_back(v);
  }
  return result;
}

std::size_t Manager::node_count(const Bdd& f) {
  assert(f.manager() == this);
  std::unordered_set<NodeId> visited;
  std::vector<NodeId> stack{f.id()};
  std::size_t internal = 0;
  bool saw_false = false;
  bool saw_true = false;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (id == kFalseId) {
      saw_false = true;
      continue;
    }
    if (id == kTrueId) {
      saw_true = true;
      continue;
    }
    if (!visited.insert(id).second) continue;
    ++internal;
    stack.push_back(nodes_[id].lo);
    stack.push_back(nodes_[id].hi);
  }
  return internal + (saw_false ? 1 : 0) + (saw_true ? 1 : 0);
}

std::string Manager::to_dot(const Bdd& f, const std::string& name) {
  std::string out = "digraph \"" + name + "\" {\n";
  out += "  node [shape=circle];\n";
  out += "  f0 [shape=box,label=\"0\"]; f1 [shape=box,label=\"1\"];\n";
  std::unordered_set<NodeId> visited;
  std::vector<NodeId> stack{f.id()};
  auto node_name = [](NodeId id) {
    if (id == kFalseId) return std::string("f0");
    if (id == kTrueId) return std::string("f1");
    return "n" + std::to_string(id);
  };
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (id <= kTrueId || !visited.insert(id).second) continue;
    const Node& n = nodes_[id];
    out += "  " + node_name(id) + " [label=\"x" + std::to_string(n.var) +
           "\"];\n";
    out += "  " + node_name(id) + " -> " + node_name(n.lo) +
           " [style=dashed];\n";
    out += "  " + node_name(id) + " -> " + node_name(n.hi) + ";\n";
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
  out += "}\n";
  return out;
}

}  // namespace lr::bdd
