#include <algorithm>
#include <cassert>
#include <chrono>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/profile.hpp"
#include "support/trace.hpp"

// Dynamic variable reordering (Rudell's sifting).
//
// The engine separates variable *identity* (VarIndex, stable forever) from
// variable *position* (level). Reordering exchanges adjacent levels in
// place: a node keeps its NodeId — and therefore every external Bdd handle
// keeps its semantics — while its (var, lo, hi) triple is rewritten. The
// classic invariants make this safe:
//
//  * only nodes of the upper variable x with a child labeled by the lower
//    variable y need rewriting; all other nodes are untouched;
//  * the rewritten node becomes a y-node whose children are x-nodes with
//    both cofactors below level(y), so the unique-table lookups performed
//    during the sweep can never return a node that is itself scheduled for
//    rewriting;
//  * a rewritten node can never collapse (lo == hi would imply the node
//    had no y-child in the first place).
//
// Operation-cache entries stay *semantically* valid (keys and values are
// node ids whose functions are preserved), but they are cleared at the end
// of every reordering anyway, out of caution.

namespace lr::bdd {

std::ptrdiff_t Manager::swap_adjacent_levels(std::uint32_t level) {
  assert(level + 1 < num_vars_);
  const VarIndex x = var_at_level_[level];
  const VarIndex y = var_at_level_[level + 1];
  const std::ptrdiff_t before = static_cast<std::ptrdiff_t>(live_nodes());

  // Collect the x-nodes that interact with y before creating anything new.
  std::vector<NodeId> rewrite;
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.var != x) continue;
    if (nodes_[n.lo].var == y || nodes_[n.hi].var == y) rewrite.push_back(id);
  }

  for (const NodeId id : rewrite) {
    // Copy fields first: make_node below may reallocate the pool.
    const NodeId f0 = nodes_[id].lo;
    const NodeId f1 = nodes_[id].hi;
    const bool lo_is_y = nodes_[f0].var == y;
    const bool hi_is_y = nodes_[f1].var == y;
    const NodeId f00 = lo_is_y ? nodes_[f0].lo : f0;
    const NodeId f01 = lo_is_y ? nodes_[f0].hi : f0;
    const NodeId f10 = hi_is_y ? nodes_[f1].lo : f1;
    const NodeId f11 = hi_is_y ? nodes_[f1].hi : f1;

    const NodeId new_lo = make_node(x, f00, f10);
    const NodeId new_hi = make_node(x, f01, f11);
    assert(new_lo != new_hi && "rewritten node cannot collapse");

    unlink_node(id);
    Node& n = nodes_[id];
    n.var = y;
    n.lo = new_lo;
    n.hi = new_hi;
    relink_node(id);
  }

  std::swap(var_at_level_[level], var_at_level_[level + 1]);
  std::swap(level_of_var_[x], level_of_var_[y]);
  return static_cast<std::ptrdiff_t>(live_nodes()) - before;
}

std::size_t Manager::reorder_sifting(int max_passes) {
  if (num_vars_ < 2) return live_nodes();
  profile::ScopedOp profiled(*this, profile::OpClass::kReorder);
  LR_TRACE_SPAN_NAMED(span, "bdd.sift");
  ++stats_.reorder_runs;
  const auto sift_start = std::chrono::steady_clock::now();
  const std::size_t live_before = live_nodes();
  const bool gc_was_enabled = gc_enabled_;
  gc_enabled_ = false;  // GC timing is managed explicitly below
  collect_garbage_impl(GcTrigger::kReorder);

  ReorderRecord record;
  record.live_before = live_before;

  for (int pass = 0; pass < max_passes; ++pass) {
    ++record.passes;
    const std::size_t pass_start = live_nodes();
    // Sift variables in decreasing order of their node population — the
    // biggest offenders first (Rudell's heuristic).
    std::vector<std::size_t> population(num_vars_, 0);
    for (NodeId id = 2; id < nodes_.size(); ++id) {
      const Node& n = nodes_[id];
      if (n.var < num_vars_) ++population[n.var];
    }
    std::vector<VarIndex> order(num_vars_);
    for (VarIndex v = 0; v < num_vars_; ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&](VarIndex a, VarIndex b) {
      return population[a] > population[b];
    });

    bool pass_moved = false;
    for (const VarIndex v : order) {
      // A variable with no live nodes cannot change any level's size;
      // skipping its journey avoids 2*num_vars_ pointless swaps (each of
      // which scans the whole pool) and keeps it where it is instead of
      // letting the upward tie-preference bubble it to the top.
      if (population[v] == 0) {
        SiftMove move;
        move.var = v;
        move.start_level = level_of_var_[v];
        move.end_level = level_of_var_[v];
        move.node_delta = 0;
        record.moves.push_back(move);
        continue;
      }
      // Sweep the garbage from the previous journey so node counts are
      // honest for this one.
      collect_garbage_impl(GcTrigger::kReorder);
      const std::size_t journey_start = live_nodes();
      const std::uint32_t start_pos = level_of_var_[v];
      const std::uint32_t bottom = num_vars_ - 1;
      std::size_t best_size = live_nodes();
      const std::size_t limit = best_size * 2 + 64;  // growth bound
      std::uint32_t best_pos = start_pos;

      // Down to the bottom...
      for (std::uint32_t l = start_pos; l < bottom; ++l) {
        swap_adjacent_levels(l);
        if (live_nodes() < best_size) {
          best_size = live_nodes();
          best_pos = l + 1;
        }
        if (live_nodes() > limit) break;
      }
      // ...up to the top...
      for (std::uint32_t l = level_of_var_[v]; l > 0; --l) {
        swap_adjacent_levels(l - 1);
        if (live_nodes() <= best_size) {  // prefer higher on ties
          best_size = live_nodes();
          best_pos = l - 1;
        }
        // Aborting the upward journey is safe: every best_pos recorded so
        // far lies at or below the current position, and the settling loop
        // only moves downward.
        if (live_nodes() > limit) break;
      }
      // ...and settle at the best position seen.
      for (std::uint32_t l = level_of_var_[v]; l < best_pos; ++l) {
        swap_adjacent_levels(l);
      }

      SiftMove move;
      move.var = v;
      move.start_level = start_pos;
      move.end_level = level_of_var_[v];
      move.node_delta = static_cast<std::ptrdiff_t>(best_size) -
                        static_cast<std::ptrdiff_t>(journey_start);
      record.moves.push_back(move);
      if (move.end_level != move.start_level || move.node_delta < 0) {
        pass_moved = true;
      }
    }

    collect_garbage_impl(GcTrigger::kReorder);
    // A pass that relocated nothing and shrank nothing left the order (and
    // therefore every journey's outcome) exactly as it found it: another
    // pass would redo the same swaps for the same answer. Stop before the
    // percentage check — that one compares against pass_start and would
    // happily re-sift forever at 0% gain.
    if (!pass_moved) break;
    if (live_nodes() * 50 > pass_start * 49) break;  // < 2% gain: stop
  }

  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
  gc_enabled_ = gc_was_enabled;
  record.live_after = live_nodes();
  record.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sift_start)
          .count();
  reorder_log_.push_back(std::move(record));
  if (support::trace::enabled()) {
    span.attr("live_before", static_cast<std::uint64_t>(live_before));
    span.attr("live_after", static_cast<std::uint64_t>(live_nodes()));
  }
  return live_nodes();
}

void Manager::unlink_node(NodeId id) {
  const Node& n = nodes_[id];
  const std::size_t bucket = unique_bucket(n.var, n.lo, n.hi);
  NodeId cur = buckets_[bucket];
  if (cur == id) {
    buckets_[bucket] = n.next;
    return;
  }
  while (cur != kFalseId) {
    Node& walk = nodes_[cur];
    if (walk.next == id) {
      walk.next = n.next;
      return;
    }
    cur = walk.next;
  }
  assert(false && "unlink_node: node not found in its bucket");
}

void Manager::relink_node(NodeId id) {
  Node& n = nodes_[id];
  const std::size_t bucket = unique_bucket(n.var, n.lo, n.hi);
  n.next = buckets_[bucket];
  buckets_[bucket] = id;
}

}  // namespace lr::bdd
