#include "bdd/meminfo.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <ostream>
#include <vector>

#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace lr::bdd::meminfo {

namespace {

std::string percent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f%%", fraction * 100.0);
  return buffer;
}

std::string fixed2(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

/// Human-readable byte count. Integer arithmetic below 1 KiB, one decimal
/// above, so the rendering is deterministic across platforms.
std::string format_bytes(std::size_t bytes) {
  char buffer[32];
  if (bytes < 1024) {
    std::snprintf(buffer, sizeof(buffer), "%zu B", bytes);
  } else if (bytes < 1024 * 1024) {
    std::snprintf(buffer, sizeof(buffer), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  }
  return buffer;
}

}  // namespace

MemInfo collect(const Manager& mgr) {
  MemInfo info;
  const ManagerStats& stats = mgr.stats();
  info.live_nodes = stats.live_nodes;
  info.peak_nodes = stats.peak_nodes;
  info.pool_nodes = stats.live_nodes;  // terminals included; free slots not
  info.pool_bytes = mgr.allocated_bytes();
  info.peak_bytes = stats.peak_bytes;
  info.created_nodes = stats.created_nodes;
  info.unique_hits = stats.unique_hits;

  info.unique_buckets = mgr.unique_bucket_count();
  info.unique_buckets_used = mgr.unique_buckets_used();
  info.unique_load = mgr.unique_load();

  info.cache_entries = mgr.cache_entry_count();
  info.cache_entries_used = mgr.cache_entries_used();
  info.cache_occupancy =
      info.cache_entries == 0
          ? 0.0
          : static_cast<double>(info.cache_entries_used) /
                static_cast<double>(info.cache_entries);
  info.cache_lookups = stats.cache_lookups;
  info.cache_hits = stats.cache_hits;
  info.cache_evictions = stats.cache_evictions;
  info.cache_hit_rate =
      info.cache_lookups == 0
          ? 0.0
          : static_cast<double>(info.cache_hits) /
                static_cast<double>(info.cache_lookups);

  info.level_histogram = mgr.level_histogram();
  info.var_at_level.reserve(info.level_histogram.size());
  for (std::uint32_t level = 0; level < info.level_histogram.size(); ++level) {
    info.var_at_level.push_back(mgr.var_at_level(level));
  }
  return info;
}

void write_report(const MemInfo& info, std::ostream& out,
                  std::size_t max_levels) {
  out << "bdd memory:\n";
  out << "  nodes         " << info.live_nodes << " live, " << info.peak_nodes
      << " peak, " << info.created_nodes << " created\n";
  out << "  bytes         " << format_bytes(info.pool_bytes) << " now, "
      << format_bytes(info.peak_bytes) << " peak\n";
  out << "  unique table  " << info.unique_buckets << " buckets, "
      << info.unique_buckets_used << " used, load "
      << fixed2(info.unique_load) << ", " << info.unique_hits << " hits\n";
  out << "  op cache      " << info.cache_entries << " entries, "
      << info.cache_entries_used << " used ("
      << percent(info.cache_occupancy) << "), hit rate "
      << percent(info.cache_hit_rate) << ", " << info.cache_evictions
      << " evictions\n";

  // Top levels by live-node population, largest first; ties break toward
  // the upper level so the listing is deterministic.
  std::vector<std::size_t> levels(info.level_histogram.size());
  std::iota(levels.begin(), levels.end(), std::size_t{0});
  std::sort(levels.begin(), levels.end(), [&](std::size_t a, std::size_t b) {
    if (info.level_histogram[a] != info.level_histogram[b]) {
      return info.level_histogram[a] > info.level_histogram[b];
    }
    return a < b;
  });
  const std::size_t internal = std::accumulate(
      info.level_histogram.begin(), info.level_histogram.end(), std::size_t{0});
  support::Table table({"level", "var", "nodes", "share"});
  std::size_t shown = 0;
  for (const std::size_t level : levels) {
    if (shown == max_levels || info.level_histogram[level] == 0) break;
    table.add_row({std::to_string(level),
                   "v" + std::to_string(info.var_at_level[level]),
                   std::to_string(info.level_histogram[level]),
                   percent(static_cast<double>(info.level_histogram[level]) /
                           static_cast<double>(internal == 0 ? 1 : internal))});
    ++shown;
  }
  if (shown > 0) {
    out << "  top levels by live nodes";
    if (shown < levels.size()) {
      out << " (" << shown << " of " << info.level_histogram.size()
          << " levels)";
    }
    out << ":\n";
    table.print(out);
  }
}

void record_metrics(const MemInfo& info, const std::string& prefix) {
  support::metrics::Registry& m = support::metrics::registry();
  m.set_gauge(prefix + ".live_nodes", static_cast<double>(info.live_nodes));
  m.max_gauge(prefix + ".peak_nodes", static_cast<double>(info.peak_nodes));
  m.set_gauge(prefix + ".pool_bytes", static_cast<double>(info.pool_bytes));
  m.max_gauge(prefix + ".peak_bytes", static_cast<double>(info.peak_bytes));
  m.set_gauge(prefix + ".unique_buckets",
              static_cast<double>(info.unique_buckets));
  m.set_gauge(prefix + ".unique_buckets_used",
              static_cast<double>(info.unique_buckets_used));
  m.set_gauge(prefix + ".unique_load", info.unique_load);
  m.set_gauge(prefix + ".cache_entries",
              static_cast<double>(info.cache_entries));
  m.set_gauge(prefix + ".cache_entries_used",
              static_cast<double>(info.cache_entries_used));
  m.set_gauge(prefix + ".cache_occupancy", info.cache_occupancy);
  m.set_gauge(prefix + ".cache_hit_rate", info.cache_hit_rate);
  m.set_gauge(prefix + ".cache_evictions",
              static_cast<double>(info.cache_evictions));
  for (std::size_t level = 0; level < info.level_histogram.size(); ++level) {
    if (info.level_histogram[level] == 0) continue;
    m.set_gauge(prefix + ".level." + std::to_string(level) + ".nodes",
                static_cast<double>(info.level_histogram[level]));
  }
}

void write_reorder_report(const Manager& mgr, std::ostream& out) {
  const std::vector<ReorderRecord>& log = mgr.reorder_log();
  if (log.empty()) return;
  out << "bdd reorder:\n";
  for (std::size_t i = 0; i < log.size(); ++i) {
    const ReorderRecord& record = log[i];
    out << "  run " << (i + 1) << ": " << record.passes << " pass"
        << (record.passes == 1 ? "" : "es") << ", " << record.live_before
        << " -> " << record.live_after << " nodes, "
        << support::format_duration(record.seconds) << "\n";
    support::Table table({"var", "start", "end", "delta"});
    for (const SiftMove& move : record.moves) {
      table.add_row({"v" + std::to_string(move.var),
                     std::to_string(move.start_level),
                     std::to_string(move.end_level),
                     std::to_string(move.node_delta)});
    }
    table.print(out);
  }
}

void record_reorder_metrics(const Manager& mgr, const std::string& prefix) {
  const std::vector<ReorderRecord>& log = mgr.reorder_log();
  if (log.empty()) return;
  support::metrics::Registry& m = support::metrics::registry();
  m.set_gauge(prefix + ".runs", static_cast<double>(log.size()));
  const ReorderRecord& last = log.back();
  m.set_gauge(prefix + ".passes", static_cast<double>(last.passes));
  m.set_gauge(prefix + ".seconds", last.seconds);
  m.set_gauge(prefix + ".live_before",
              static_cast<double>(last.live_before));
  m.set_gauge(prefix + ".live_after", static_cast<double>(last.live_after));
  for (const SiftMove& move : last.moves) {
    const std::string base = prefix + ".var." + std::to_string(move.var) + ".";
    m.set_gauge(base + "start_level", static_cast<double>(move.start_level));
    m.set_gauge(base + "end_level", static_cast<double>(move.end_level));
    m.set_gauge(base + "node_delta", static_cast<double>(move.node_delta));
  }
}

void write_gc_report(const Manager& mgr, std::ostream& out) {
  const std::vector<GcRecord>& log = mgr.gc_log();
  if (log.empty()) return;
  std::size_t runs_by_trigger[3] = {0, 0, 0};
  std::size_t reclaimed = 0;
  double seconds = 0.0;
  for (const GcRecord& record : log) {
    ++runs_by_trigger[static_cast<int>(record.trigger)];
    reclaimed += record.reclaimed;
    seconds += record.seconds;
  }
  out << "bdd gc: " << log.size() << " runs (threshold " << runs_by_trigger[0]
      << ", explicit " << runs_by_trigger[1] << ", reorder "
      << runs_by_trigger[2] << "), " << reclaimed << " nodes reclaimed, "
      << support::format_duration(seconds);
  if (mgr.gc_log_dropped() > 0) {
    out << " (+" << mgr.gc_log_dropped() << " unrecorded runs)";
  }
  out << "\n";
}

}  // namespace lr::bdd::meminfo
