#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "bdd/bdd.hpp"

namespace lr::bdd::profile {

/// Classes of manager work the profiler attributes separately.
enum class OpClass : unsigned {
  kApply = 0,  ///< and / or / xor / diff / not
  kIte,
  kQuantify,  ///< exists / forall / and_exists / cofactor
  kDecide,    ///< leq / disjoint (no result BDD built)
  kPermute,
  kReorder,
  kGc,
};
inline constexpr std::size_t kOpClassCount = 7;

[[nodiscard]] const char* op_class_name(OpClass op) noexcept;

/// Work charged to one trace span. `steps` counts compute-cache probes
/// during the operation — one probe per non-terminal recursion step, so it
/// measures the symbolic work an operation actually performed, independent
/// of wall-clock noise.
struct SpanCounters {
  struct PerOp {
    std::uint64_t calls = 0;
    std::uint64_t steps = 0;
    double seconds = 0.0;
  };
  std::array<PerOp, kOpClassCount> ops{};

  std::uint64_t created_nodes = 0;
  std::uint64_t unique_hits = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_reclaimed = 0;
  std::size_t peak_nodes = 0;  ///< manager high-water mark while charged

  [[nodiscard]] const PerOp& op(OpClass c) const noexcept {
    return ops[static_cast<unsigned>(c)];
  }

  /// apply + ite + quantify steps: the "how much BDD work" measure used to
  /// rank spans in the attribution table.
  [[nodiscard]] std::uint64_t work_steps() const noexcept;

  /// Compute-cache hit rate over everything charged here (0 when no probes).
  [[nodiscard]] double cache_hit_rate() const noexcept;

  /// Total seconds across all op classes.
  [[nodiscard]] double total_seconds() const noexcept;

  void accumulate(const SpanCounters& other);
};

namespace detail {
/// Global switch. Inline atomic so the ScopedOp constructor compiles to a
/// load-and-branch when profiling is off (the common case).
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns profiling on/off process-wide. While on, the trace layer's
/// per-thread span stack is kept alive (trace::keep_span_stack) so counter
/// deltas can be charged to the innermost span even when no trace is being
/// collected. Idempotent.
void set_enabled(bool on);

/// Per-manager profile: counter deltas bucketed by the innermost trace span
/// active when the operation ran. Like the manager itself, a Profiler is
/// single-threaded; the batch executor gets one per worker via its
/// one-manager-per-task rule.
class Profiler {
 public:
  /// The bucket for a span name (nullptr means no span was open; such work
  /// lands under "(unattributed)"). Creates the bucket on first use.
  SpanCounters& bucket(const char* span_name);

  [[nodiscard]] const std::map<std::string, SpanCounters>& buckets() const noexcept {
    return buckets_;
  }
  [[nodiscard]] bool empty() const noexcept { return buckets_.empty(); }

  /// Sum over all buckets.
  [[nodiscard]] SpanCounters totals() const;

  void clear();

  /// Merges another profiler's buckets into this one (aggregating batch
  /// workers into one report).
  void merge(const Profiler& other);

 private:
  friend class ScopedOp;

  int depth_ = 0;  ///< open ScopedOps; only the outermost charges

  // One-entry cache: consecutive ops usually run under the same span, and
  // span names are string literals, so pointer identity is a cheap first
  // test before the map lookup.
  const char* last_name_ = nullptr;
  SpanCounters* last_bucket_ = nullptr;

  std::map<std::string, SpanCounters> buckets_;
};

/// RAII hook placed at every public Manager operation entry. Snapshots the
/// manager's counters, and on destruction charges the delta (and elapsed
/// time) to the innermost active trace span. Nested hooks (a GC fired from
/// inside an apply, the sifting loop's GCs) do not charge: the outermost
/// operation owns the whole delta, so nothing is counted twice.
class ScopedOp {
 public:
  ScopedOp(Manager& mgr, OpClass op) noexcept {
    if (!enabled()) return;
    prof_ = &mgr.profiler();
    if (++prof_->depth_ > 1) return;
    mgr_ = &mgr;
    op_ = op;
    before_ = mgr.stats();
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedOp() {
    if (prof_ == nullptr) return;
    --prof_->depth_;
    if (mgr_ == nullptr) return;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    charge(seconds);
  }

  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

 private:
  void charge(double seconds);

  Profiler* prof_ = nullptr;
  Manager* mgr_ = nullptr;  ///< non-null only when this hook charges
  OpClass op_ = OpClass::kApply;
  ManagerStats before_{};
  std::chrono::steady_clock::time_point start_{};
};

/// Renders the per-span attribution table (sorted by work_steps, largest
/// first, TOTAL row last) for `--stats`. Durations use format_duration so
/// golden tests can normalize them.
void write_attribution_table(const Profiler& prof, std::ostream& out);

/// Mirrors the per-span counters into the metrics registry as
/// `<prefix>.<span>.<metric>` keys (e.g. bdd.program.group.quantify_calls).
void record_metrics(const Profiler& prof, const std::string& prefix = "bdd");

}  // namespace lr::bdd::profile
