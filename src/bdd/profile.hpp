#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bdd/bdd.hpp"

namespace lr::bdd::profile {

/// Classes of manager work the profiler attributes separately.
enum class OpClass : unsigned {
  kApply = 0,  ///< and / or / xor / diff / not
  kIte,
  kQuantify,  ///< exists / forall / and_exists / cofactor
  kDecide,    ///< leq / disjoint (no result BDD built)
  kPermute,
  kReorder,
  kGc,
};
inline constexpr std::size_t kOpClassCount = 7;

[[nodiscard]] const char* op_class_name(OpClass op) noexcept;

/// Work charged to one call path. `steps` counts compute-cache probes
/// during the operation — one probe per non-terminal recursion step, so it
/// measures the symbolic work an operation actually performed, independent
/// of wall-clock noise.
struct SpanCounters {
  struct PerOp {
    std::uint64_t calls = 0;
    std::uint64_t steps = 0;
    double seconds = 0.0;
  };
  std::array<PerOp, kOpClassCount> ops{};

  std::uint64_t created_nodes = 0;
  std::uint64_t unique_hits = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_reclaimed = 0;
  std::size_t peak_nodes = 0;  ///< manager high-water mark while charged

  [[nodiscard]] const PerOp& op(OpClass c) const noexcept {
    return ops[static_cast<unsigned>(c)];
  }

  /// apply + ite + quantify steps: the "how much BDD work" measure used to
  /// rank spans in the attribution table.
  [[nodiscard]] std::uint64_t work_steps() const noexcept;

  /// Compute-cache hit rate over everything charged here (0 when no probes).
  [[nodiscard]] double cache_hit_rate() const noexcept;

  /// Total seconds across all op classes.
  [[nodiscard]] double total_seconds() const noexcept;

  void accumulate(const SpanCounters& other);
};

namespace detail {
/// Global switch. Inline atomic so the ScopedOp constructor compiles to a
/// load-and-branch when profiling is off (the common case).
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns profiling on/off process-wide. While on, the trace layer's
/// per-thread span stack is kept alive (trace::keep_span_stack) so counter
/// deltas can be charged to the active span path even when no trace is
/// being collected. Idempotent.
void set_enabled(bool on);

/// Interned id of one call path in a Profiler's tree. Id 0 is the root
/// (the empty path: work charged with no span open).
using PathId = std::uint32_t;
inline constexpr PathId kRootPath = 0;

/// Deepest span nesting the profiler attributes exactly; deeper stacks
/// are truncated to their outermost kMaxPathDepth frames.
inline constexpr std::size_t kMaxPathDepth = 32;

/// Per-manager profile: counter deltas keyed by the *full* stack of trace
/// spans active when the operation ran (a call-path tree). The classic
/// flat per-span table is a rollup of the tree by leaf name, so the two
/// views conserve every counter exactly. Like the manager itself, a
/// Profiler is single-threaded; the batch executor gets one per worker via
/// its one-manager-per-task rule, and the intra engine merges worker
/// profilers into the dispatching manager's after every join.
class Profiler {
 public:
  Profiler();

  /// One node of the call-path tree. The root (id 0) has an empty name;
  /// children are created in charge order, so a parent's id is always
  /// smaller than its children's.
  struct PathNode {
    std::string name;            ///< span name of this frame
    PathId parent = kRootPath;
    std::vector<PathId> children;
    SpanCounters counters;       ///< self weight (not a subtree rollup)
  };

  /// The counters bucket for a span path (`frames[0]` outermost). Creates
  /// missing tree nodes on the way down. depth 0 charges the root.
  SpanCounters& path_counters(const char* const* frames, std::size_t depth);

  /// The whole tree, root first. Node ids index this vector.
  [[nodiscard]] const std::vector<PathNode>& path_nodes() const noexcept {
    return nodes_;
  }

  /// Collapsed-stack rendering of one path: "a;b;c". The root renders as
  /// "(unattributed)".
  [[nodiscard]] std::string path_string(PathId id) const;

  /// Flat per-span view: the tree rolled up by leaf span name (root
  /// charges land under "(unattributed)"). Rebuilt lazily; the reference
  /// stays valid until the next charge-then-buckets() round trip.
  [[nodiscard]] const std::map<std::string, SpanCounters>& buckets() const;

  [[nodiscard]] bool empty() const noexcept { return charges_ == 0; }

  /// Sum over all path nodes (== sum over all flat buckets).
  [[nodiscard]] SpanCounters totals() const;

  void clear();

  /// Merges another profiler's call-path tree into this one (aggregating
  /// intra workers / batch workers into one report). Matching is by span
  /// *content*, so identical paths from different threads coalesce.
  void merge(const Profiler& other);

 private:
  friend class ScopedOp;

  /// Child of `parent` named `name`, created on demand. Matches by string
  /// content — never by pointer — so identically-named spans from
  /// different string literals (or dynamic buffers) share one node.
  PathId intern_child(PathId parent, const char* name);

  int depth_ = 0;  ///< open ScopedOps; only the outermost charges
  std::uint64_t charges_ = 0;

  // One-entry cache: consecutive ops usually run under the same span
  // stack, and span names are string literals, so a pointer-wise frame
  // comparison is a cheap first test. On any pointer mismatch the lookup
  // falls back to content-compare interning (intern_child), so two
  // literals with equal text still reach the same node.
  std::array<const char*, kMaxPathDepth> last_frames_{};
  std::size_t last_depth_ = kMaxPathDepth + 1;  ///< invalid: never matches
  PathId last_id_ = kRootPath;

  std::vector<PathNode> nodes_;

  mutable bool flat_dirty_ = true;
  mutable std::map<std::string, SpanCounters> flat_;
};

/// RAII hook placed at every public Manager operation entry. Snapshots the
/// manager's counters, and on destruction charges the delta (and elapsed
/// time) to the call path active on this thread. Nested hooks (a GC fired
/// from inside an apply, the sifting loop's GCs) do not charge: the
/// outermost operation owns the whole delta, so nothing is counted twice.
class ScopedOp {
 public:
  ScopedOp(Manager& mgr, OpClass op) noexcept {
    if (!enabled()) return;
    prof_ = &mgr.profiler();
    if (++prof_->depth_ > 1) return;
    mgr_ = &mgr;
    op_ = op;
    before_ = mgr.stats();
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedOp() {
    if (prof_ == nullptr) return;
    --prof_->depth_;
    if (mgr_ == nullptr) return;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    charge(seconds);
  }

  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

 private:
  void charge(double seconds);

  Profiler* prof_ = nullptr;
  Manager* mgr_ = nullptr;  ///< non-null only when this hook charges
  OpClass op_ = OpClass::kApply;
  ManagerStats before_{};
  std::chrono::steady_clock::time_point start_{};
};

/// Renders the per-span attribution table (sorted by work_steps, largest
/// first, TOTAL row last) for `--stats`. Durations use format_duration so
/// golden tests can normalize them.
void write_attribution_table(const Profiler& prof, std::ostream& out);

/// Mirrors the per-span counters into the metrics registry as
/// `<prefix>.<span>.<metric>` keys (e.g. bdd.program.group.quantify_calls).
void record_metrics(const Profiler& prof, const std::string& prefix = "bdd");

// --- Flamegraph export -------------------------------------------------------

/// What a collapsed-stack line weighs: recursion steps (the default —
/// deterministic and machine-independent), wall time (integer
/// microseconds) or created BDD nodes.
enum class FlameWeight {
  kSteps,
  kSeconds,
  kNodes,
};

/// Parses "steps" / "seconds" / "nodes" (the --flamegraph-weight values).
[[nodiscard]] std::optional<FlameWeight> parse_flame_weight(
    std::string_view name) noexcept;

/// The weight of one path node's self counters under `weight`.
[[nodiscard]] std::uint64_t flame_weight_of(const SpanCounters& counters,
                                            FlameWeight weight) noexcept;

/// Renders the call-path tree in Brendan Gregg's collapsed-stack format:
/// one "a;b;c <weight>" line per path with nonzero weight, sorted
/// lexicographically by path (deterministic), loadable in speedscope /
/// inferno / flamegraph.pl. Line weights are self weights, so they sum
/// exactly to totals() under the same measure.
void write_collapsed(const Profiler& prof, std::ostream& out,
                     FlameWeight weight = FlameWeight::kSteps);
[[nodiscard]] std::string to_collapsed(const Profiler& prof,
                                       FlameWeight weight = FlameWeight::kSteps);

/// Writes to_collapsed() to a file; false when the file cannot be opened.
bool write_collapsed_file(const Profiler& prof, const std::string& path,
                          FlameWeight weight = FlameWeight::kSteps);

}  // namespace lr::bdd::profile
