#include "bdd/transfer.hpp"

#include <cassert>

namespace lr::bdd {

namespace {

Bdd import_rec(const Manager& src, NodeId id, Manager& dst,
               ImportMemo& memo) {
  if (id == kFalseId) return dst.bdd_false();
  if (id == kTrueId) return dst.bdd_true();
  const auto it = memo.find(id);
  if (it != memo.end()) return it->second;
  const Manager::NodeView n = src.node_view(id);
  assert(n.var != kTerminalVar && "import_bdd: dangling source id");
  const Bdd lo = import_rec(src, n.lo, dst, memo);
  const Bdd hi = import_rec(src, n.hi, dst, memo);
  // ite(v, hi, lo) recurses exactly once when the destination order places
  // v above both cofactors' supports (true whenever dst mirrors src's
  // order), landing on make_node(v, lo, hi) — an O(1) amortized rebuild.
  const Bdd out = dst.apply_ite(dst.bdd_var(n.var), hi, lo);
  memo.emplace(id, out);
  return out;
}

}  // namespace

Bdd import_bdd(const Manager& src, NodeId root, Manager& dst,
               ImportMemo& memo) {
  return import_rec(src, root, dst, memo);
}

}  // namespace lr::bdd
