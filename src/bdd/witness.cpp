#include "bdd/witness.hpp"

namespace lr::bdd {

std::vector<signed char> sat_one(Manager& mgr, const Bdd& f) {
  if (!f.valid() || f.is_false()) return {};
  std::vector<signed char> values(mgr.var_count(), -1);
  Bdd current = f;
  for (const VarIndex v : mgr.support(f)) {
    const Bdd low = mgr.cofactor(current, v, false);
    if (!low.is_false()) {
      values[v] = 0;
      current = low;
    } else {
      values[v] = 1;
      current = mgr.cofactor(current, v, true);
    }
  }
  return values;
}

}  // namespace lr::bdd
