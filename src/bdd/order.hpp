#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bdd/bdd.hpp"

namespace lr::bdd::order {

/// Imposes a complete variable order on a manager: after the call,
/// var_at_level[L] == target[L] for every level L. Implemented as a
/// sequence of adjacent-level exchanges, so every existing Bdd handle keeps
/// its semantics; on an empty manager (the intended use: before any BDD is
/// built) each exchange is O(pool scan) with nothing to rewrite. `target`
/// must be a permutation of all variables; throws std::invalid_argument
/// otherwise. Returns the number of adjacent swaps performed.
std::size_t apply_order(Manager& mgr, std::span<const VarIndex> target);

/// Restores the creation order (variable v at level v). The .lr exporter
/// calls this before enumerating cubes so exported models are byte-identical
/// whatever static order or sifting run preceded them.
std::size_t restore_creation_order(Manager& mgr);

/// Schema tag of the persisted order-profile JSON document.
inline constexpr std::string_view kProfileSchema = "lr.order-profile/1";

/// One level of a persisted order profile: which bit sits there (by its
/// canonical label, e.g. "x2.0" / "x2.0'") and how many live nodes the
/// level held when the profile was captured (the meminfo histogram — the
/// profile's quality evidence).
struct ProfileLevel {
  std::string label;
  std::size_t nodes = 0;
};

/// A persisted variable order plus the evidence it was captured with.
/// Saved by `repair_cli --order-out`, loaded by `--order=file:PATH`;
/// levels are stored top-first and keyed by *label*, so a profile survives
/// VarIndex renumbering as long as the model's variable names are stable.
struct OrderProfile {
  std::string model;            ///< program name the order was captured from
  std::string source;           ///< order mode that produced it (no paths)
  std::size_t live_nodes = 0;   ///< live nodes at capture time
  std::size_t peak_nodes = 0;   ///< manager high-water mark
  std::uint64_t reorder_runs = 0;  ///< sifting runs during the capture run
  std::vector<ProfileLevel> levels;
};

/// Snapshots the manager's current order and per-level live-node histogram.
/// `labels` maps VarIndex to its canonical bit label (see
/// sym::order::bit_labels) and must cover every variable.
[[nodiscard]] OrderProfile capture_profile(const Manager& mgr,
                                           std::span<const std::string> labels,
                                           std::string model,
                                           std::string source);

/// Renders a profile as schema'd JSON (deterministic, newline-terminated).
[[nodiscard]] std::string profile_to_json(const OrderProfile& profile);

/// Parses a profile document; nullopt on syntax errors, a missing/foreign
/// schema tag, or structurally invalid levels.
[[nodiscard]] std::optional<OrderProfile> parse_profile(std::string_view text);

/// Reads and parses a profile file; nullopt when unreadable or invalid.
[[nodiscard]] std::optional<OrderProfile> load_profile(const std::string& path);

/// Atomically writes `profile` as JSON. False on I/O errors.
bool save_profile(const OrderProfile& profile, const std::string& path);

}  // namespace lr::bdd::order
