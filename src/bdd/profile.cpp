#include "bdd/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace lr::bdd::profile {

namespace {

constexpr const char* kUnattributed = "(unattributed)";

std::string percent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f%%", fraction * 100.0);
  return buffer;
}

}  // namespace

const char* op_class_name(OpClass op) noexcept {
  switch (op) {
    case OpClass::kApply: return "apply";
    case OpClass::kIte: return "ite";
    case OpClass::kQuantify: return "quantify";
    case OpClass::kDecide: return "decide";
    case OpClass::kPermute: return "permute";
    case OpClass::kReorder: return "reorder";
    case OpClass::kGc: return "gc";
  }
  return "?";
}

std::uint64_t SpanCounters::work_steps() const noexcept {
  return op(OpClass::kApply).steps + op(OpClass::kIte).steps +
         op(OpClass::kQuantify).steps;
}

double SpanCounters::cache_hit_rate() const noexcept {
  return cache_lookups == 0
             ? 0.0
             : static_cast<double>(cache_hits) /
                   static_cast<double>(cache_lookups);
}

double SpanCounters::total_seconds() const noexcept {
  double total = 0.0;
  for (const PerOp& per : ops) total += per.seconds;
  return total;
}

void SpanCounters::accumulate(const SpanCounters& other) {
  for (std::size_t i = 0; i < kOpClassCount; ++i) {
    ops[i].calls += other.ops[i].calls;
    ops[i].steps += other.ops[i].steps;
    ops[i].seconds += other.ops[i].seconds;
  }
  created_nodes += other.created_nodes;
  unique_hits += other.unique_hits;
  cache_lookups += other.cache_lookups;
  cache_hits += other.cache_hits;
  gc_runs += other.gc_runs;
  gc_reclaimed += other.gc_reclaimed;
  peak_nodes = std::max(peak_nodes, other.peak_nodes);
}

void set_enabled(bool on) {
  // keep_span_stack is counted, so only flip it on actual transitions.
  if (detail::g_enabled.exchange(on, std::memory_order_relaxed) == on) return;
  support::trace::keep_span_stack(on);
}

// --- Profiler: the call-path tree --------------------------------------------

Profiler::Profiler() { nodes_.emplace_back(); }

PathId Profiler::intern_child(PathId parent, const char* name) {
  PathNode& node = nodes_[parent];
  for (const PathId child : node.children) {
    // Content compare, never pointer compare: identically-named spans from
    // different string literals (or dynamic buffers) must share a node.
    if (nodes_[child].name == name) return child;
  }
  const PathId id = static_cast<PathId>(nodes_.size());
  nodes_[parent].children.push_back(id);
  PathNode fresh;
  fresh.name = name;
  fresh.parent = parent;
  nodes_.push_back(std::move(fresh));
  return id;
}

SpanCounters& Profiler::path_counters(const char* const* frames,
                                      std::size_t depth) {
  if (depth > kMaxPathDepth) depth = kMaxPathDepth;  // truncate deep stacks
  flat_dirty_ = true;
  ++charges_;
  if (depth == last_depth_ &&
      std::equal(frames, frames + depth, last_frames_.begin())) {
    return nodes_[last_id_].counters;
  }
  PathId id = kRootPath;
  for (std::size_t i = 0; i < depth; ++i) id = intern_child(id, frames[i]);
  std::copy(frames, frames + depth, last_frames_.begin());
  last_depth_ = depth;
  last_id_ = id;
  return nodes_[id].counters;
}

std::string Profiler::path_string(PathId id) const {
  if (id == kRootPath) return kUnattributed;
  std::vector<const std::string*> names;
  for (PathId at = id; at != kRootPath; at = nodes_[at].parent) {
    names.push_back(&nodes_[at].name);
  }
  std::string out;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    if (!out.empty()) out += ';';
    out += **it;
  }
  return out;
}

const std::map<std::string, SpanCounters>& Profiler::buckets() const {
  if (flat_dirty_) {
    flat_.clear();
    for (PathId id = 0; id < nodes_.size(); ++id) {
      const PathNode& node = nodes_[id];
      const bool charged =
          node.counters.cache_lookups != 0 || node.counters.created_nodes != 0;
      bool any_calls = charged;
      for (const SpanCounters::PerOp& per : node.counters.ops) {
        any_calls = any_calls || per.calls != 0;
      }
      if (!any_calls) continue;  // structural-only nodes stay out of the view
      const std::string& leaf = id == kRootPath ? kUnattributed : node.name;
      flat_[leaf].accumulate(node.counters);
    }
    flat_dirty_ = false;
  }
  return flat_;
}

SpanCounters Profiler::totals() const {
  SpanCounters total;
  for (const PathNode& node : nodes_) total.accumulate(node.counters);
  return total;
}

void Profiler::clear() {
  nodes_.clear();
  nodes_.emplace_back();
  charges_ = 0;
  last_depth_ = kMaxPathDepth + 1;
  last_id_ = kRootPath;
  flat_.clear();
  flat_dirty_ = true;
}

void Profiler::merge(const Profiler& other) {
  if (other.charges_ == 0 && other.nodes_.size() == 1) return;
  // Parents always precede their children (ids are creation-ordered), so a
  // single forward walk can map every foreign id onto this tree.
  std::vector<PathId> map(other.nodes_.size(), kRootPath);
  for (PathId id = 1; id < other.nodes_.size(); ++id) {
    const PathNode& node = other.nodes_[id];
    map[id] = intern_child(map[node.parent], node.name.c_str());
  }
  for (PathId id = 0; id < other.nodes_.size(); ++id) {
    nodes_[map[id]].counters.accumulate(other.nodes_[id].counters);
  }
  charges_ += other.charges_;
  // The cached fast path may point at a rehashed tree; drop it.
  last_depth_ = kMaxPathDepth + 1;
  flat_dirty_ = true;
}

void ScopedOp::charge(double seconds) {
  const ManagerStats after = mgr_->stats();
  const char* frames[kMaxPathDepth];
  const std::size_t depth =
      support::trace::current_span_path(frames, kMaxPathDepth);
  SpanCounters& bucket = prof_->path_counters(frames, depth);
  SpanCounters::PerOp& per = bucket.ops[static_cast<unsigned>(op_)];
  per.calls += 1;
  per.steps += after.cache_lookups - before_.cache_lookups;
  per.seconds += seconds;
  bucket.created_nodes += after.created_nodes - before_.created_nodes;
  bucket.unique_hits += after.unique_hits - before_.unique_hits;
  bucket.cache_lookups += after.cache_lookups - before_.cache_lookups;
  bucket.cache_hits += after.cache_hits - before_.cache_hits;
  bucket.gc_runs += after.gc_runs - before_.gc_runs;
  bucket.gc_reclaimed += after.gc_reclaimed - before_.gc_reclaimed;
  bucket.peak_nodes = std::max(bucket.peak_nodes, after.peak_nodes);
}

void write_attribution_table(const Profiler& prof, std::ostream& out) {
  const SpanCounters total = prof.totals();
  const double total_work =
      total.work_steps() == 0 ? 1.0 : static_cast<double>(total.work_steps());

  std::vector<std::pair<std::string, const SpanCounters*>> rows;
  rows.reserve(prof.buckets().size());
  for (const auto& [name, counters] : prof.buckets()) {
    rows.emplace_back(name, &counters);
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second->work_steps() != b.second->work_steps()) {
      return a.second->work_steps() > b.second->work_steps();
    }
    return a.first < b.first;  // stable, deterministic tie-break
  });

  support::Table table({"span", "applies", "quantifies", "decides", "steps",
                        "work", "cache-hit", "nodes", "time"});
  const auto add = [&table](const std::string& name, const SpanCounters& c,
                            double work_fraction) {
    table.add_row(
        {name,
         std::to_string(c.op(OpClass::kApply).calls +
                        c.op(OpClass::kIte).calls),
         std::to_string(c.op(OpClass::kQuantify).calls),
         std::to_string(c.op(OpClass::kDecide).calls),
         std::to_string(c.work_steps()), percent(work_fraction),
         percent(c.cache_hit_rate()), std::to_string(c.created_nodes),
         support::format_duration(c.total_seconds())});
  };
  for (const auto& [name, counters] : rows) {
    add(name, *counters,
        static_cast<double>(counters->work_steps()) / total_work);
  }
  add("TOTAL", total,
      total.work_steps() == 0 ? 0.0
                              : static_cast<double>(total.work_steps()) /
                                    total_work);
  table.print(out);
}

void record_metrics(const Profiler& prof, const std::string& prefix) {
  support::metrics::Registry& registry = support::metrics::registry();
  for (const auto& [name, c] : prof.buckets()) {
    const std::string base = prefix + "." + name + ".";
    registry.add(base + "apply_calls", c.op(OpClass::kApply).calls +
                                           c.op(OpClass::kIte).calls);
    registry.add(base + "quantify_calls", c.op(OpClass::kQuantify).calls);
    registry.add(base + "decide_calls", c.op(OpClass::kDecide).calls);
    registry.add(base + "permute_calls", c.op(OpClass::kPermute).calls);
    registry.add(base + "reorder_runs", c.op(OpClass::kReorder).calls);
    registry.add(base + "gc_runs", c.gc_runs);
    registry.add(base + "steps", c.work_steps());
    registry.add(base + "created_nodes", c.created_nodes);
    registry.set_gauge(base + "cache_hit_rate", c.cache_hit_rate());
    registry.max_gauge(base + "peak_nodes",
                       static_cast<double>(c.peak_nodes));
    registry.set_gauge(base + "seconds", c.total_seconds());
    registry.set_gauge(base + "reorder_seconds",
                       c.op(OpClass::kReorder).seconds);
  }
}

// --- Flamegraph export -------------------------------------------------------

std::optional<FlameWeight> parse_flame_weight(std::string_view name) noexcept {
  if (name == "steps") return FlameWeight::kSteps;
  if (name == "seconds") return FlameWeight::kSeconds;
  if (name == "nodes") return FlameWeight::kNodes;
  return std::nullopt;
}

std::uint64_t flame_weight_of(const SpanCounters& counters,
                              FlameWeight weight) noexcept {
  switch (weight) {
    case FlameWeight::kSteps:
      return counters.work_steps();
    case FlameWeight::kSeconds:
      // Integer microseconds: the collapsed format carries integral
      // weights, and sub-microsecond self times are noise anyway.
      return static_cast<std::uint64_t>(
          std::llround(counters.total_seconds() * 1e6));
    case FlameWeight::kNodes:
      return counters.created_nodes;
  }
  return 0;
}

void write_collapsed(const Profiler& prof, std::ostream& out,
                     FlameWeight weight) {
  std::vector<std::string> lines;
  const auto& nodes = prof.path_nodes();
  for (PathId id = 0; id < nodes.size(); ++id) {
    const std::uint64_t w = flame_weight_of(nodes[id].counters, weight);
    if (w == 0) continue;  // zero self weight adds nothing to any view
    lines.push_back(prof.path_string(id) + " " + std::to_string(w));
  }
  std::sort(lines.begin(), lines.end());
  for (const std::string& line : lines) out << line << "\n";
}

std::string to_collapsed(const Profiler& prof, FlameWeight weight) {
  std::ostringstream os;
  write_collapsed(prof, os, weight);
  return os.str();
}

bool write_collapsed_file(const Profiler& prof, const std::string& path,
                          FlameWeight weight) {
  std::ofstream out(path);
  if (!out) return false;
  write_collapsed(prof, out, weight);
  return static_cast<bool>(out);
}

}  // namespace lr::bdd::profile

namespace lr::bdd {

profile::Profiler& Manager::profiler() {
  if (!profiler_) profiler_ = std::make_unique<profile::Profiler>();
  return *profiler_;
}

}  // namespace lr::bdd
