#include "bdd/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <utility>
#include <vector>

#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace lr::bdd::profile {

namespace {

constexpr const char* kUnattributed = "(unattributed)";

std::string percent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f%%", fraction * 100.0);
  return buffer;
}

}  // namespace

const char* op_class_name(OpClass op) noexcept {
  switch (op) {
    case OpClass::kApply: return "apply";
    case OpClass::kIte: return "ite";
    case OpClass::kQuantify: return "quantify";
    case OpClass::kDecide: return "decide";
    case OpClass::kPermute: return "permute";
    case OpClass::kReorder: return "reorder";
    case OpClass::kGc: return "gc";
  }
  return "?";
}

std::uint64_t SpanCounters::work_steps() const noexcept {
  return op(OpClass::kApply).steps + op(OpClass::kIte).steps +
         op(OpClass::kQuantify).steps;
}

double SpanCounters::cache_hit_rate() const noexcept {
  return cache_lookups == 0
             ? 0.0
             : static_cast<double>(cache_hits) /
                   static_cast<double>(cache_lookups);
}

double SpanCounters::total_seconds() const noexcept {
  double total = 0.0;
  for (const PerOp& per : ops) total += per.seconds;
  return total;
}

void SpanCounters::accumulate(const SpanCounters& other) {
  for (std::size_t i = 0; i < kOpClassCount; ++i) {
    ops[i].calls += other.ops[i].calls;
    ops[i].steps += other.ops[i].steps;
    ops[i].seconds += other.ops[i].seconds;
  }
  created_nodes += other.created_nodes;
  unique_hits += other.unique_hits;
  cache_lookups += other.cache_lookups;
  cache_hits += other.cache_hits;
  gc_runs += other.gc_runs;
  gc_reclaimed += other.gc_reclaimed;
  peak_nodes = std::max(peak_nodes, other.peak_nodes);
}

void set_enabled(bool on) {
  // keep_span_stack is counted, so only flip it on actual transitions.
  if (detail::g_enabled.exchange(on, std::memory_order_relaxed) == on) return;
  support::trace::keep_span_stack(on);
}

SpanCounters& Profiler::bucket(const char* span_name) {
  if (span_name == nullptr) span_name = kUnattributed;
  if (span_name == last_name_) return *last_bucket_;
  SpanCounters& found = buckets_[span_name];
  last_name_ = span_name;
  last_bucket_ = &found;
  return found;
}

SpanCounters Profiler::totals() const {
  SpanCounters total;
  for (const auto& [name, counters] : buckets_) total.accumulate(counters);
  return total;
}

void Profiler::clear() {
  buckets_.clear();
  last_name_ = nullptr;
  last_bucket_ = nullptr;
}

void Profiler::merge(const Profiler& other) {
  for (const auto& [name, counters] : other.buckets_) {
    buckets_[name].accumulate(counters);
  }
  // The cached pointer may be stale after the map rehash; drop it.
  last_name_ = nullptr;
  last_bucket_ = nullptr;
}

void ScopedOp::charge(double seconds) {
  const ManagerStats after = mgr_->stats();
  SpanCounters& bucket =
      prof_->bucket(support::trace::current_span_name());
  SpanCounters::PerOp& per = bucket.ops[static_cast<unsigned>(op_)];
  per.calls += 1;
  per.steps += after.cache_lookups - before_.cache_lookups;
  per.seconds += seconds;
  bucket.created_nodes += after.created_nodes - before_.created_nodes;
  bucket.unique_hits += after.unique_hits - before_.unique_hits;
  bucket.cache_lookups += after.cache_lookups - before_.cache_lookups;
  bucket.cache_hits += after.cache_hits - before_.cache_hits;
  bucket.gc_runs += after.gc_runs - before_.gc_runs;
  bucket.gc_reclaimed += after.gc_reclaimed - before_.gc_reclaimed;
  bucket.peak_nodes = std::max(bucket.peak_nodes, after.peak_nodes);
}

void write_attribution_table(const Profiler& prof, std::ostream& out) {
  const SpanCounters total = prof.totals();
  const double total_work =
      total.work_steps() == 0 ? 1.0 : static_cast<double>(total.work_steps());

  std::vector<std::pair<std::string, const SpanCounters*>> rows;
  rows.reserve(prof.buckets().size());
  for (const auto& [name, counters] : prof.buckets()) {
    rows.emplace_back(name, &counters);
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second->work_steps() != b.second->work_steps()) {
      return a.second->work_steps() > b.second->work_steps();
    }
    return a.first < b.first;  // stable, deterministic tie-break
  });

  support::Table table({"span", "applies", "quantifies", "decides", "steps",
                        "work", "cache-hit", "nodes", "time"});
  const auto add = [&table](const std::string& name, const SpanCounters& c,
                            double work_fraction) {
    table.add_row(
        {name,
         std::to_string(c.op(OpClass::kApply).calls +
                        c.op(OpClass::kIte).calls),
         std::to_string(c.op(OpClass::kQuantify).calls),
         std::to_string(c.op(OpClass::kDecide).calls),
         std::to_string(c.work_steps()), percent(work_fraction),
         percent(c.cache_hit_rate()), std::to_string(c.created_nodes),
         support::format_duration(c.total_seconds())});
  };
  for (const auto& [name, counters] : rows) {
    add(name, *counters,
        static_cast<double>(counters->work_steps()) / total_work);
  }
  add("TOTAL", total,
      total.work_steps() == 0 ? 0.0
                              : static_cast<double>(total.work_steps()) /
                                    total_work);
  table.print(out);
}

void record_metrics(const Profiler& prof, const std::string& prefix) {
  support::metrics::Registry& registry = support::metrics::registry();
  for (const auto& [name, c] : prof.buckets()) {
    const std::string base = prefix + "." + name + ".";
    registry.add(base + "apply_calls", c.op(OpClass::kApply).calls +
                                           c.op(OpClass::kIte).calls);
    registry.add(base + "quantify_calls", c.op(OpClass::kQuantify).calls);
    registry.add(base + "decide_calls", c.op(OpClass::kDecide).calls);
    registry.add(base + "permute_calls", c.op(OpClass::kPermute).calls);
    registry.add(base + "reorder_runs", c.op(OpClass::kReorder).calls);
    registry.add(base + "gc_runs", c.gc_runs);
    registry.add(base + "steps", c.work_steps());
    registry.add(base + "created_nodes", c.created_nodes);
    registry.set_gauge(base + "cache_hit_rate", c.cache_hit_rate());
    registry.max_gauge(base + "peak_nodes",
                       static_cast<double>(c.peak_nodes));
    registry.set_gauge(base + "seconds", c.total_seconds());
    registry.set_gauge(base + "reorder_seconds",
                       c.op(OpClass::kReorder).seconds);
  }
}

}  // namespace lr::bdd::profile

namespace lr::bdd {

profile::Profiler& Manager::profiler() {
  if (!profiler_) profiler_ = std::make_unique<profile::Profiler>();
  return *profiler_;
}

}  // namespace lr::bdd
