#pragma once

// Witness extraction: one satisfying assignment of a predicate, chosen
// deterministically. The repair journal uses this to decorate pruned-
// transition and newly-deadlocked events with a concrete state — turning
// "we removed 12 transitions" into a checkable claim about one of them.

#include <vector>

#include "bdd/bdd.hpp"

namespace lr::bdd {

/// One satisfying assignment of `f`, as a per-variable vector indexed by
/// VarIndex: 0/1 for variables the chosen path fixes, -1 for don't-cares.
/// Deterministic: variables are resolved in support order and the
/// 0-cofactor is preferred, so the same function always yields the same
/// witness (the companion of Manager::pick_minterm, which fixes don't-cares
/// to 0 instead of reporting them). Returns an empty vector when `f` is
/// unsatisfiable or invalid.
[[nodiscard]] std::vector<signed char> sat_one(Manager& mgr, const Bdd& f);

}  // namespace lr::bdd
