#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace lr::bdd {

namespace profile {
class Profiler;
}  // namespace profile

/// Index of a node in the manager's node pool. Terminals are 0 (false) and
/// 1 (true); all other ids denote internal nodes.
using NodeId = std::uint32_t;

/// A boolean variable. Variables are identified by their creation index;
/// their *position* in the order is a separate notion (the level), which
/// starts out equal to the creation index and changes under
/// Manager::reorder_sifting(). The symbolic layer constructs a good static
/// interleaved order up front, and sifting can improve it further.
using VarIndex = std::uint32_t;

/// Identifier of a registered variable permutation (see
/// Manager::register_permutation); permutations are registered once and
/// reused so that their results can be memoized in the operation cache.
using PermId = std::uint32_t;

inline constexpr NodeId kFalseId = 0;
inline constexpr NodeId kTrueId = 1;
inline constexpr VarIndex kTerminalVar = 0xffffffffu;

class Manager;

/// Reference-counted handle to a BDD node.
///
/// `Bdd` is the only way user code holds on to BDD nodes; the manager's
/// garbage collector treats externally referenced nodes as roots. Handles
/// are cheap to copy (one refcount increment) and support the usual boolean
/// operator sugar. All operands of a binary operation must belong to the
/// same manager.
class Bdd {
 public:
  /// Empty handle (no manager). Only valid operations are assignment,
  /// destruction and valid().
  Bdd() noexcept = default;

  Bdd(const Bdd& other) noexcept;
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other) noexcept;
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  /// True when the handle refers to a node in some manager.
  [[nodiscard]] bool valid() const noexcept { return mgr_ != nullptr; }

  [[nodiscard]] bool is_false() const noexcept { return id_ == kFalseId && valid(); }
  [[nodiscard]] bool is_true() const noexcept { return id_ == kTrueId && valid(); }
  [[nodiscard]] bool is_terminal() const noexcept { return id_ <= kTrueId; }

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] Manager* manager() const noexcept { return mgr_; }

  /// Structural equality: same manager, same node. Because BDDs are
  /// canonical this is semantic equivalence.
  [[nodiscard]] bool operator==(const Bdd& other) const noexcept {
    return mgr_ == other.mgr_ && id_ == other.id_;
  }
  [[nodiscard]] bool operator!=(const Bdd& other) const noexcept {
    return !(*this == other);
  }

  // Boolean algebra (forwarded to the manager; see Manager for semantics).
  [[nodiscard]] Bdd operator&(const Bdd& other) const;
  [[nodiscard]] Bdd operator|(const Bdd& other) const;
  [[nodiscard]] Bdd operator^(const Bdd& other) const;
  /// Complement. `~` is the canonical spelling (set complement); `!` is an
  /// alias kept for boolean-flavored call sites.
  [[nodiscard]] Bdd operator~() const;
  [[nodiscard]] Bdd operator!() const;
  Bdd& operator&=(const Bdd& other);
  Bdd& operator|=(const Bdd& other);
  Bdd& operator^=(const Bdd& other);

  /// Set difference `this ∧ ¬other` (transition/state-set subtraction).
  [[nodiscard]] Bdd minus(const Bdd& other) const;

  /// If-then-else with this as the condition.
  [[nodiscard]] Bdd ite(const Bdd& then_f, const Bdd& else_f) const;

  /// Implication as a BDD: `¬this ∨ other`.
  [[nodiscard]] Bdd implies(const Bdd& other) const;

  /// Biconditional `this ↔ other`.
  [[nodiscard]] Bdd iff(const Bdd& other) const;

  /// Decision test `this ⇒ other` evaluated without building the
  /// implication BDD (used heavily by Algorithm 2's group-containment
  /// checks).
  [[nodiscard]] bool leq(const Bdd& other) const;

  /// True iff the conjunction `this ∧ other` is unsatisfiable, computed
  /// without materializing the conjunction.
  [[nodiscard]] bool disjoint(const Bdd& other) const;

  /// Number of BDD nodes reachable from this root (including terminals).
  [[nodiscard]] std::size_t node_count() const;

 private:
  friend class Manager;
  Bdd(Manager* mgr, NodeId id) noexcept;  // takes a fresh reference

  Manager* mgr_ = nullptr;
  NodeId id_ = kFalseId;
};

/// Counters exposed for benchmarks and tests.
struct ManagerStats {
  std::size_t live_nodes = 0;        ///< currently allocated internal nodes
  std::size_t peak_nodes = 0;        ///< high-water mark of live nodes
  std::uint64_t created_nodes = 0;   ///< total make_node allocations
  std::uint64_t gc_runs = 0;         ///< garbage collections performed
  std::uint64_t gc_reclaimed = 0;    ///< nodes reclaimed across all GCs
  std::uint64_t reorder_runs = 0;    ///< reorder_sifting() invocations
  std::uint64_t unique_hits = 0;     ///< make_node found existing node
  std::uint64_t cache_lookups = 0;   ///< operation cache probes
  std::uint64_t cache_hits = 0;      ///< operation cache hits
  std::uint64_t cache_evictions = 0; ///< live cache entries overwritten
  std::size_t peak_bytes = 0;        ///< high-water mark of pool+table+cache bytes
};

/// What caused a garbage collection.
enum class GcTrigger {
  kThreshold,  ///< live nodes crossed the adaptive gc_threshold
  kExplicit,   ///< collect_garbage() called by user code
  kReorder,    ///< sifting collects before measuring a variable's journey
};

[[nodiscard]] const char* gc_trigger_name(GcTrigger trigger) noexcept;

/// Structured record of one garbage collection (kept in Manager::gc_log()).
struct GcRecord {
  GcTrigger trigger = GcTrigger::kThreshold;
  std::size_t live_before = 0;
  std::size_t live_after = 0;
  std::size_t reclaimed = 0;
  double seconds = 0.0;
};

/// One variable's journey through a sifting run: where it started, where it
/// settled, and how the live-node count changed.
struct SiftMove {
  VarIndex var = 0;
  std::uint32_t start_level = 0;
  std::uint32_t end_level = 0;
  std::ptrdiff_t node_delta = 0;  ///< live-node change (negative = shrank)
};

/// Structured record of one reorder_sifting() run.
struct ReorderRecord {
  std::size_t live_before = 0;
  std::size_t live_after = 0;
  int passes = 0;
  double seconds = 0.0;
  std::vector<SiftMove> moves;  ///< one entry per variable journey, in order
};

/// A shared-node, reduced, ordered BDD manager (the CUDD substitute).
///
/// Design notes:
///  * No complement edges. This costs a constant factor on negation-heavy
///    workloads but keeps canonicity trivially simple; negation results are
///    memoized so repeated NOT is cheap.
///  * Nodes are pool indices, the unique table is a chained hash over the
///    pool, and the operation cache is one direct-mapped array keyed by
///    (op, a, b, c). The cache is cleared on GC, which also guarantees that
///    a reused node slot can never alias a stale cache entry (slots are
///    only recycled by the GC itself).
///  * Garbage collection is mark-and-sweep from externally referenced
///    nodes. It runs only at public operation entry points, never inside a
///    recursion, so intermediate results need no protection.
///  * Single-threaded by design: one synthesis run is one engine instance,
///    matching the paper's tool. Use one Manager per thread for coarse
///    parallelism.
class Manager {
 public:
  struct Options {
    /// Initial node pool capacity (grows on demand).
    std::size_t initial_capacity = 1u << 16;
    /// log2 of the operation-cache entry count.
    unsigned cache_log2 = 20;
    /// GC triggers when live nodes exceed this (adapts upward when GC
    /// reclaims too little).
    std::size_t gc_threshold = 1u << 18;
  };

  Manager();
  explicit Manager(const Options& options);
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Creates a new boolean variable at the bottom of the order.
  VarIndex new_var();

  /// Current level (order position) of a variable; levels change under
  /// reorder_sifting(). Terminals sort below every variable.
  [[nodiscard]] std::uint32_t level_of(VarIndex v) const noexcept {
    return level_of_var_[v];
  }

  /// The variable currently at a level.
  [[nodiscard]] VarIndex var_at_level(std::uint32_t level) const noexcept {
    return var_at_level_[level];
  }

  /// Rudell's sifting: moves every variable through the order, keeping the
  /// position that minimizes live nodes; repeats up to `max_passes` times
  /// or until no pass improves by >= 2%. All existing Bdd handles remain
  /// valid and keep their semantics (nodes are rewritten in place).
  /// Returns the live-node count after reordering.
  std::size_t reorder_sifting(int max_passes = 1);

  /// One reordering primitive: in-place exchange of the variables at
  /// `level` and `level + 1`. Returns the change in live-node count.
  /// Semantics of every existing handle are preserved.
  std::ptrdiff_t swap_adjacent_levels(std::uint32_t level);

  /// Number of variables created so far.
  [[nodiscard]] std::uint32_t var_count() const noexcept {
    return num_vars_;
  }

  [[nodiscard]] Bdd bdd_false();
  [[nodiscard]] Bdd bdd_true();

  /// The function "variable v" (positive literal).
  [[nodiscard]] Bdd bdd_var(VarIndex v);

  /// The function "¬v" (negative literal).
  [[nodiscard]] Bdd bdd_nvar(VarIndex v);

  /// Conjunction of the positive literals of `vars` (a quantification cube).
  /// The variables may be listed in any order.
  [[nodiscard]] Bdd make_cube(std::span<const VarIndex> vars);

  // --- Boolean operations -------------------------------------------------
  [[nodiscard]] Bdd apply_and(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_or(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_xor(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_diff(const Bdd& f, const Bdd& g);  ///< f ∧ ¬g
  [[nodiscard]] Bdd apply_not(const Bdd& f);
  [[nodiscard]] Bdd apply_ite(const Bdd& f, const Bdd& g, const Bdd& h);

  /// f ⇒ g decided without constructing f ∧ ¬g.
  [[nodiscard]] bool leq(const Bdd& f, const Bdd& g);

  /// f ∧ g == false decided without constructing the conjunction.
  [[nodiscard]] bool disjoint(const Bdd& f, const Bdd& g);

  // --- Quantification ------------------------------------------------------
  /// ∃ cube. f  (cube must be a conjunction of positive literals).
  [[nodiscard]] Bdd exists(const Bdd& f, const Bdd& cube);

  /// ∀ cube. f.
  [[nodiscard]] Bdd forall(const Bdd& f, const Bdd& cube);

  /// ∃ cube. (f ∧ g) computed as one pass (the relational product at the
  /// heart of image/preimage computation).
  [[nodiscard]] Bdd and_exists(const Bdd& f, const Bdd& g, const Bdd& cube);

  /// ∃ cube. (f ∧ g ∧ h) in one pass — the three-conjunct relational
  /// product used by partitioned transition relations, whose parts keep
  /// their factors (e.g. a process delta and a primed invariant) separate
  /// so the intermediate product is never materialized.
  [[nodiscard]] Bdd and_exists(const Bdd& f, const Bdd& g, const Bdd& h,
                               const Bdd& cube);

  // --- Variable permutation -------------------------------------------------
  /// Registers the permutation mapping variable v to perm[v]. `perm` must
  /// have one entry per existing variable and be a bijection. Returns an id
  /// usable with permute(); register each permutation once and reuse it.
  PermId register_permutation(std::span<const VarIndex> perm);

  /// Applies a registered permutation to f.
  [[nodiscard]] Bdd permute(const Bdd& f, PermId perm);

  // --- Cofactors ------------------------------------------------------------
  /// f with variable v fixed to `value`.
  [[nodiscard]] Bdd cofactor(const Bdd& f, VarIndex v, bool value);

  // --- Solutions -------------------------------------------------------------
  /// Number of satisfying assignments of f over `nvars` variables
  /// (as a double; exact while representable).
  [[nodiscard]] double sat_count(const Bdd& f, std::uint32_t nvars);

  /// A single satisfying minterm of f over exactly the variables of `cube`
  /// (which must contain support(f)). Don't-care variables are fixed to 0,
  /// so the result is deterministic. f must be satisfiable.
  [[nodiscard]] Bdd pick_minterm(const Bdd& f, const Bdd& cube);

  /// Invokes `fn` for every satisfying assignment of f over the variables
  /// of `cube` (which must contain support(f)), passing values aligned with
  /// the cube's variables in variable order. Exponential; for small spaces
  /// (tests, explicit cross-validation, example output).
  void foreach_minterm(const Bdd& f, const Bdd& cube,
                       const std::function<void(std::span<const bool>)>& fn);

  /// Invokes `fn` for every path to the 1-terminal: values are per manager
  /// variable, -1 = don't care, 0/1 = literal value. Used for printing
  /// synthesized programs compactly.
  void foreach_cube(const Bdd& f,
                    const std::function<void(std::span<const signed char>)>& fn);

  /// Evaluates f under a total assignment (indexed by variable; missing
  /// trailing variables default to false). Linear in the depth of f.
  [[nodiscard]] bool eval(const Bdd& f, std::span<const bool> assignment) const;

  /// Conjunction of the variables f depends on.
  [[nodiscard]] Bdd support_cube(const Bdd& f);

  /// Variables f depends on, ascending.
  [[nodiscard]] std::vector<VarIndex> support(const Bdd& f);

  // --- Introspection ---------------------------------------------------------
  [[nodiscard]] std::size_t node_count(const Bdd& f);
  [[nodiscard]] std::size_t live_nodes() const noexcept;
  [[nodiscard]] const ManagerStats& stats() const noexcept {
    // live_nodes changes on every apply; refresh it at observation time so
    // snapshots are accurate even when no GC has run.
    stats_.live_nodes = live_nodes();
    return stats_;
  }

  /// Forces a garbage collection (also runs automatically under pressure).
  void collect_garbage();

  // --- Memory & structure telemetry ------------------------------------------
  /// Live internal nodes per *level* (index = order position). One pool
  /// walk, no allocation beyond the result vector.
  [[nodiscard]] std::vector<std::size_t> level_histogram() const;

  /// Unique-table shape: total buckets and buckets with at least one node.
  [[nodiscard]] std::size_t unique_bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::size_t unique_buckets_used() const;

  /// Unique-table load factor (live nodes per bucket) — cheap enough for a
  /// trace counter lane.
  [[nodiscard]] double unique_load() const noexcept {
    return buckets_.empty() ? 0.0
                            : static_cast<double>(live_nodes()) /
                                  static_cast<double>(buckets_.size());
  }

  /// Operation-cache shape: total entries and occupied entries (one walk).
  [[nodiscard]] std::size_t cache_entry_count() const noexcept {
    return cache_.size();
  }
  [[nodiscard]] std::size_t cache_entries_used() const;

  /// Bytes currently held by the node pool, unique table and op cache
  /// (container sizes, not capacities, so the figure is deterministic).
  [[nodiscard]] std::size_t allocated_bytes() const noexcept {
    return nodes_.size() * sizeof(Node) + buckets_.size() * sizeof(NodeId) +
           cache_.size() * sizeof(CacheEntry);
  }

  /// Structured log of every GC this manager ran (capped; see
  /// gc_log_dropped()).
  [[nodiscard]] const std::vector<GcRecord>& gc_log() const noexcept {
    return gc_log_;
  }
  [[nodiscard]] std::uint64_t gc_log_dropped() const noexcept {
    return gc_log_dropped_;
  }

  /// Structured log of every reorder_sifting() run.
  [[nodiscard]] const std::vector<ReorderRecord>& reorder_log() const noexcept {
    return reorder_log_;
  }

  // --- Concurrent read access -----------------------------------------------
  /// A decomposed view of one internal node: its variable and cofactor ids.
  /// Terminals have var == kTerminalVar.
  struct NodeView {
    VarIndex var;
    NodeId lo;
    NodeId hi;
  };

  /// Read-only view of node `id` for structural traversals from other
  /// threads (see bdd/transfer.hpp). Contract: while any such traversal is
  /// in flight, no thread may call a mutating operation on this manager —
  /// no apply/quantify/permute (they allocate), no GC, no reordering, no
  /// Bdd handle copies or drops (refcounts are non-atomic). The intra
  /// engine keeps the owning thread quiescent between dispatch and join,
  /// and pins every root it hands out so `id` cannot be swept or recycled.
  [[nodiscard]] NodeView node_view(NodeId id) const noexcept {
    const Node& n = nodes_[id];
    return NodeView{n.var, n.lo, n.hi};
  }

  /// This manager's span-attribution profile (created on first use). Hooks
  /// in the public operations only feed it while profile::enabled(); like
  /// the manager itself it is single-threaded.
  [[nodiscard]] profile::Profiler& profiler();

  /// Graphviz dot rendering of one function (documentation / debugging).
  [[nodiscard]] std::string to_dot(const Bdd& f, const std::string& name);

 private:
  friend class Bdd;

  struct Node {
    VarIndex var;       // kTerminalVar for terminals, kFreeVar for free slots
    NodeId lo;
    NodeId hi;
    NodeId next;        // unique-table chain / free-list link
    std::uint32_t refs; // external references only
  };

  struct CacheEntry {
    std::uint32_t op = 0;  // 0 = empty
    NodeId a = 0, b = 0, c = 0;
    NodeId result = 0;
  };

  static constexpr VarIndex kFreeVar = 0xfffffffeu;

  // Operation codes for the cache.
  enum Op : std::uint32_t {
    kOpNone = 0,
    kOpAnd,
    kOpOr,
    kOpXor,
    kOpDiff,
    kOpNot,
    kOpIte,
    kOpExists,
    kOpForall,
    kOpAndExists,
    kOpLeq,
    kOpDisjoint,
    kOpPermBase  // kOpPermBase + perm id
  };

  /// Cache-key op for the three-conjunct and_exists: four operands must fit
  /// a (op, a, b, c) entry, so the cube's node id is packed into the op
  /// field under this flag. Sound because neither kOpPermBase + perm ids
  /// nor node ids ever reach 2^31.
  static constexpr std::uint32_t kOpAndExists3Flag = 0x80000000u;

  void init_pool(std::size_t capacity);
  NodeId make_node(VarIndex var, NodeId lo, NodeId hi);
  NodeId alloc_node();
  void grow_buckets();
  void maybe_gc();
  void collect_garbage_impl(GcTrigger trigger);
  void mark(NodeId root, std::vector<NodeId>& stack);

  /// Updates the peak-byte watermark after a container grew.
  void note_peak_bytes() noexcept {
    const std::size_t bytes = allocated_bytes();
    if (bytes > stats_.peak_bytes) stats_.peak_bytes = bytes;
  }

  /// Level of a node's variable; terminals (and the free marker) get the
  /// maximum level so ordering comparisons treat them as deepest.
  [[nodiscard]] std::uint32_t node_level(VarIndex var) const noexcept {
    return var < num_vars_ ? level_of_var_[var] : 0xffffffffu;
  }

  /// Unique-table bucket of a (var, lo, hi) triple.
  [[nodiscard]] std::size_t unique_bucket(VarIndex var, NodeId lo,
                                          NodeId hi) const noexcept;
  void unlink_node(NodeId id);  ///< removes id from its unique-table bucket
  void relink_node(NodeId id);  ///< re-inserts id under its current triple

  void inc_ref(NodeId id) noexcept;
  void dec_ref(NodeId id) noexcept;
  [[nodiscard]] Bdd wrap(NodeId id) noexcept { return Bdd(this, id); }

  [[nodiscard]] bool cache_get(std::uint32_t op, NodeId a, NodeId b, NodeId c,
                               NodeId& out);
  void cache_put(std::uint32_t op, NodeId a, NodeId b, NodeId c, NodeId result);

  NodeId and_rec(NodeId f, NodeId g);
  NodeId or_rec(NodeId f, NodeId g);
  NodeId xor_rec(NodeId f, NodeId g);
  NodeId diff_rec(NodeId f, NodeId g);
  NodeId not_rec(NodeId f);
  NodeId ite_rec(NodeId f, NodeId g, NodeId h);
  NodeId exists_rec(NodeId f, NodeId cube);
  NodeId forall_rec(NodeId f, NodeId cube);
  NodeId and_exists_rec(NodeId f, NodeId g, NodeId cube);
  NodeId and_exists3_rec(NodeId f, NodeId g, NodeId h, NodeId cube);
  bool leq_rec(NodeId f, NodeId g);
  bool disjoint_rec(NodeId f, NodeId g);
  NodeId permute_rec(NodeId f, PermId perm);
  NodeId pick_rec(NodeId f, NodeId cube);

  [[nodiscard]] VarIndex var_of(NodeId id) const noexcept {
    return nodes_[id].var;
  }

  std::vector<Node> nodes_;
  std::vector<NodeId> buckets_;   // unique table heads; size is a power of 2
  std::size_t bucket_mask_ = 0;
  NodeId free_head_ = 0;
  std::size_t free_count_ = 0;
  bool has_free_ = false;

  std::vector<CacheEntry> cache_;
  std::size_t cache_mask_ = 0;

  std::uint32_t num_vars_ = 0;
  std::vector<std::uint32_t> level_of_var_;  // var -> level
  std::vector<VarIndex> var_at_level_;       // level -> var
  std::vector<std::vector<VarIndex>> permutations_;

  std::size_t gc_threshold_;
  bool gc_enabled_ = true;

  /// Capped structured logs (observability, not correctness): once full,
  /// further GC records only bump the dropped counter.
  static constexpr std::size_t kMaxGcRecords = 1024;
  std::vector<GcRecord> gc_log_;
  std::uint64_t gc_log_dropped_ = 0;
  std::vector<ReorderRecord> reorder_log_;

  std::unique_ptr<profile::Profiler> profiler_;

  mutable ManagerStats stats_;
};

}  // namespace lr::bdd

template <>
struct std::hash<lr::bdd::Bdd> {
  std::size_t operator()(const lr::bdd::Bdd& b) const noexcept {
    return std::hash<const void*>()(static_cast<const void*>(b.manager())) ^
           (static_cast<std::size_t>(b.id()) * 0x9e3779b97f4a7c15ull);
  }
};
