#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace lr::support {

/// Minimal fixed-column ASCII table used by the benchmark harnesses and the
/// examples to print paper-style result tables (Table I / Table II rows).
///
/// Usage:
///   Table t({"Instance", "Reachable states", "Step 1", "Step 2"});
///   t.add_row({"BA^5", "1.2e7", "0.42s", "0.05s"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; the row must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders the table with a header separator and column padding.
  void print(std::ostream& os) const;

  /// Renders to a string (used by tests).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a (possibly huge) state count the way the paper reports it,
/// e.g. 1234 -> "1.2e3". Counts come from BDD satisfying-assignment
/// counting and can exceed 10^30, hence the double input.
[[nodiscard]] std::string format_state_count(double count);

}  // namespace lr::support
