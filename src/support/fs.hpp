#pragma once

#include <optional>
#include <string>

namespace lr::support {

/// Reads a whole file into memory; nullopt when it cannot be opened.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

/// Writes `contents` atomically: the bytes go to `path + ".tmp"`, which is
/// then renamed over `path`. A reader (or a process resuming after a crash
/// mid-write) therefore sees either the previous complete file or the new
/// complete file, never a torn prefix. The temp file is removed on any
/// failure. Returns false when the write or the rename fails.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     const std::string& contents);

/// FNV-1a 64-bit hash of a byte string, rendered as "fnv1a:<16 hex digits>".
/// Used to fingerprint model files in batch checkpoint manifests; not
/// cryptographic, just cheap and stable across platforms.
[[nodiscard]] std::string content_hash(const std::string& bytes);

/// content_hash() of a file's bytes; nullopt when the file cannot be read.
[[nodiscard]] std::optional<std::string> hash_file(const std::string& path);

}  // namespace lr::support
