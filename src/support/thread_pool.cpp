#include "support/thread_pool.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

namespace lr::support {

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_available;  // workers wait here
  std::condition_variable all_idle;        // wait_idle() waits here
  std::deque<std::function<void()>> queue;
  std::size_t running = 0;  // tasks currently executing
  bool shutdown = false;
  std::vector<std::thread> workers;

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      work_available.wait(lock,
                          [this] { return shutdown || !queue.empty(); });
      if (queue.empty()) return;  // shutdown with a drained queue
      std::function<void()> task = std::move(queue.front());
      queue.pop_front();
      ++running;
      lock.unlock();
      task();
      lock.lock();
      --running;
      if (queue.empty() && running == 0) all_idle.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  if (threads == 0) threads = 1;
  impl_->workers.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_available.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->queue.push_back(std::move(task));
  }
  impl_->work_available.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->all_idle.wait(
      lock, [this] { return impl_->queue.empty() && impl_->running == 0; });
}

std::size_t ThreadPool::thread_count() const noexcept {
  return impl_->workers.size();
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(jobs < count ? jobs : count);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace lr::support
