#include "support/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/json.hpp"

namespace lr::support::metrics {

void Registry::add(std::string_view name, std::uint64_t delta) {
  counters_[std::string(name)] += delta;
}

void Registry::set_gauge(std::string_view name, double value) {
  gauges_[std::string(name)] = value;
}

void Registry::max_gauge(std::string_view name, double value) {
  double& slot = gauges_[std::string(name)];
  slot = std::max(slot, value);
}

std::uint64_t Registry::counter(std::string_view name) const {
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(std::string_view name) const {
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0.0 : it->second;
}

bool Registry::has_counter(std::string_view name) const {
  return counters_.count(std::string(name)) != 0;
}

bool Registry::has_gauge(std::string_view name) const {
  return gauges_.count(std::string(name)) != 0;
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
}

void Registry::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    std::ostringstream num;
    num.precision(17);  // round-trippable doubles
    num << value;
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << num.str();
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
}

std::string Registry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

bool write_json_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  registry().write_json(out);
  return static_cast<bool>(out);
}

}  // namespace lr::support::metrics
