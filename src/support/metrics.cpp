#include "support/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/json.hpp"

namespace lr::support::metrics {

void Registry::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[std::string(name)] += delta;
}

void Registry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[std::string(name)] = value;
}

void Registry::max_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  double& slot = gauges_[std::string(name)];
  slot = std::max(slot, value);
}

std::uint64_t Registry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0.0 : it->second;
}

bool Registry::has_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.count(std::string(name)) != 0;
}

bool Registry::has_gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_.count(std::string(name)) != 0;
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Snapshot{counters_, gauges_};
}

void Registry::write_json(std::ostream& out) const {
  // Key order is guaranteed deterministic: counters_ and gauges_ are
  // ordered maps, so the report lists keys sorted and two runs that record
  // the same values emit byte-identical JSON (regression-tested).
  // Render from a snapshot so the lock is not held across stream I/O (the
  // stream may be a test's stringstream shared with other assertions).
  const Snapshot snap = snapshot();
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    std::ostringstream num;
    num.precision(17);  // round-trippable doubles
    num << value;
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << num.str();
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
}

std::string Registry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

bool write_json_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  registry().write_json(out);
  return static_cast<bool>(out);
}

}  // namespace lr::support::metrics
