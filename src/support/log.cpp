#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace lr::support {

namespace {

// The repair engine keeps one BDD manager per thread (see bdd.hpp), but the
// logger is shared by every thread of the batch executor: the level is an
// atomic, and emission serializes whole lines under one mutex so
// interleaved LR_LOG statements never shear.
std::atomic<LogLevel> g_level{LogLevel::warn};
std::atomic<bool> g_env_checked{false};
std::mutex g_io_mutex;  // guards g_stream and the actual write
std::ostream* g_stream = nullptr;

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::trace;
  if (name == "debug") return LogLevel::debug;
  if (name == "info") return LogLevel::info;
  if (name == "warn" || name == "warning") return LogLevel::warn;
  if (name == "error") return LogLevel::error;
  if (name == "off" || name == "none") return LogLevel::off;
  return std::nullopt;
}

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "trace";
    case LogLevel::debug: return "debug";
    case LogLevel::info: return "info";
    case LogLevel::warn: return "warn";
    case LogLevel::error: return "error";
    case LogLevel::off: return "off";
  }
  return "?";
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
  // An explicit choice beats the environment.
  g_env_checked.store(true, std::memory_order_release);
}

void init_log_from_env() {
  const char* env = std::getenv("LR_LOG_LEVEL");
  if (env != nullptr) {
    if (const auto parsed = parse_log_level(env)) {
      g_level.store(*parsed, std::memory_order_relaxed);
    }
  }
  g_env_checked.store(true, std::memory_order_release);
}

bool log_enabled(LogLevel level) {
  if (!g_env_checked.load(std::memory_order_acquire)) {
    // First LR_LOG of the process; the lock keeps two racing first calls
    // from both parsing the environment into a torn level.
    std::lock_guard<std::mutex> lock(g_io_mutex);
    if (!g_env_checked.load(std::memory_order_acquire)) init_log_from_env();
  }
  const LogLevel threshold = g_level.load(std::memory_order_relaxed);
  return level >= threshold && threshold != LogLevel::off;
}

void set_log_stream(std::ostream* stream) noexcept {
  std::lock_guard<std::mutex> lock(g_io_mutex);
  g_stream = stream;
}

void log_raw_line(std::string_view line) {
  std::lock_guard<std::mutex> lock(g_io_mutex);
  if (g_stream != nullptr) {
    *g_stream << line << '\n';
    g_stream->flush();
  } else {
    std::fprintf(stderr, "%.*s\n", static_cast<int>(line.size()),
                 line.data());
  }
}

LogMessage::LogMessage(LogLevel level) : level_(level) {}

LogMessage::~LogMessage() {
  const std::string text = stream_.str();
  std::lock_guard<std::mutex> lock(g_io_mutex);
  if (g_stream != nullptr) {
    *g_stream << '[' << log_level_name(level_) << "] " << text << '\n';
    g_stream->flush();
  } else {
    std::fprintf(stderr, "[%.*s] %s\n",
                 static_cast<int>(log_level_name(level_).size()),
                 log_level_name(level_).data(), text.c_str());
  }
}

}  // namespace lr::support
