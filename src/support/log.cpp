#include "support/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace lr::support {

namespace {

// The engine is single-threaded by design (one Manager per thread, see
// bdd.hpp); the logger shares that contract, so plain globals suffice.
LogLevel g_level = LogLevel::warn;
bool g_env_checked = false;
std::ostream* g_stream = nullptr;

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::trace;
  if (name == "debug") return LogLevel::debug;
  if (name == "info") return LogLevel::info;
  if (name == "warn" || name == "warning") return LogLevel::warn;
  if (name == "error") return LogLevel::error;
  if (name == "off" || name == "none") return LogLevel::off;
  return std::nullopt;
}

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "trace";
    case LogLevel::debug: return "debug";
    case LogLevel::info: return "info";
    case LogLevel::warn: return "warn";
    case LogLevel::error: return "error";
    case LogLevel::off: return "off";
  }
  return "?";
}

LogLevel log_level() noexcept { return g_level; }

void set_log_level(LogLevel level) noexcept {
  g_level = level;
  g_env_checked = true;  // an explicit choice beats the environment
}

void init_log_from_env() {
  g_env_checked = true;
  const char* env = std::getenv("LR_LOG_LEVEL");
  if (env == nullptr) return;
  if (const auto parsed = parse_log_level(env)) g_level = *parsed;
}

bool log_enabled(LogLevel level) {
  if (!g_env_checked) init_log_from_env();
  return level >= g_level && g_level != LogLevel::off;
}

void set_log_stream(std::ostream* stream) noexcept { g_stream = stream; }

LogMessage::LogMessage(LogLevel level) : level_(level) {}

LogMessage::~LogMessage() {
  const std::string text = stream_.str();
  if (g_stream != nullptr) {
    *g_stream << '[' << log_level_name(level_) << "] " << text << '\n';
    g_stream->flush();
  } else {
    std::fprintf(stderr, "[%.*s] %s\n",
                 static_cast<int>(log_level_name(level_).size()),
                 log_level_name(level_).data(), text.c_str());
  }
}

}  // namespace lr::support
