#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace lr::support {

/// Monotonic wall-clock stopwatch used to time repair phases.
///
/// The repair algorithms report per-phase durations (Step 1 / Step 2 in the
/// paper's tables) through `RepairStats`; all of those numbers come from this
/// class so they are measured consistently.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  /// Creates a stopwatch that starts running immediately.
  Stopwatch() noexcept : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed time since construction or the last reset().
  [[nodiscard]] std::chrono::nanoseconds elapsed() const noexcept {
    return Clock::now() - start_;
  }

  /// Elapsed time in seconds as a double (convenience for reporting).
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(elapsed()).count();
  }

  /// Elapsed time in whole milliseconds.
  [[nodiscard]] std::int64_t milliseconds() const noexcept {
    return std::chrono::duration_cast<std::chrono::milliseconds>(elapsed())
        .count();
  }

 private:
  Clock::time_point start_;
};

/// Formats a duration in seconds the way the paper's tables do:
/// "< 1s" for sub-second times, otherwise a rounded number of seconds for
/// large values and two decimals for small ones.
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace lr::support
