#include "support/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace lr::support {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view text) {
  return "\"" + json_escape(text) + "\"";
}

std::string json_number(double value) {
  if (value != value || value == 1.0 / 0.0 || value == -1.0 / 0.0) {
    return "null";
  }
  char buf[40];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;  // duplicates keep the last, as in JS
  }
  return found;
}

namespace {

/// Minimal recursive-descent JSON reader. No surrogate-pair decoding:
/// \uXXXX escapes are kept verbatim in the output string — the documents
/// this library writes never need them, and the tests only compare keys.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    JsonValue value;
    if (!parse_value(value)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (++depth_ > kMaxDepth) return false;
    skip_ws();
    if (pos_ >= text_.size()) return false;
    bool ok = false;
    switch (text_[pos_]) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"':
        out.kind = JsonValue::Kind::kString;
        ok = parse_string(out.string);
        break;
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        ok = literal("true");
        break;
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        ok = literal("false");
        break;
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        ok = literal("null");
        break;
      default: ok = parse_number(out); break;
    }
    --depth_;
    return ok;
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          for (int i = 0; i < 4; ++i) {
            if (std::isxdigit(static_cast<unsigned char>(text_[pos_ + i])) ==
                0) {
              return false;
            }
          }
          out += "\\u";
          out += text_.substr(pos_, 4);
          pos_ += 4;
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace lr::support
