#include "support/progress.hpp"

#include <cstdlib>
#include <string_view>

#include "support/log.hpp"

namespace lr::support::progress {

void configure(double interval_seconds) {
  const long ms = interval_seconds <= 0.0
                      ? 0
                      : static_cast<long>(interval_seconds * 1000.0);
  // A positive interval that rounds to 0 ms still means "enabled, as fast
  // as possible" (tests use tiny intervals).
  detail::g_interval_ms.store(
      interval_seconds > 0.0 && ms == 0 ? 1 : ms, std::memory_order_relaxed);
}

void init_from_env() {
  const char* env = std::getenv("LR_PROGRESS");
  if (env == nullptr) return;
  const std::string_view value(env);
  if (value.empty() || value == "0" || value == "off" || value == "false") {
    configure(0.0);
    return;
  }
  if (value == "1" || value == "true" || value == "on") {
    configure(kDefaultIntervalSeconds);
    return;
  }
  char* end = nullptr;
  const double seconds = std::strtod(env, &end);
  if (end != env && seconds > 0.0) configure(seconds);
}

bool enabled() noexcept {
  return detail::g_interval_ms.load(std::memory_order_relaxed) > 0;
}

double interval_seconds() noexcept {
  return static_cast<double>(
             detail::g_interval_ms.load(std::memory_order_relaxed)) /
         1000.0;
}

namespace {

std::chrono::steady_clock::rep now_ticks() noexcept {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace

Heartbeat::Heartbeat(const char* phase)
    : phase_(phase), last_(now_ticks()) {}

bool Heartbeat::due() const noexcept {
  const long ms = detail::g_interval_ms.load(std::memory_order_relaxed);
  if (ms <= 0) return false;
  const std::chrono::steady_clock::duration elapsed(
      now_ticks() - last_.load(std::memory_order_relaxed));
  return elapsed >= std::chrono::milliseconds(ms);
}

void Heartbeat::emit(const std::string& detail) {
  last_.store(now_ticks(), std::memory_order_relaxed);
  log_raw_line("[progress] " + std::string(phase_) + ": " + detail);
}

}  // namespace lr::support::progress
