#include "support/cli.hpp"

#include <cstddef>
#include <cstdlib>
#include <string_view>

namespace lr::support {

CommandLine::CommandLine(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

bool CommandLine::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string CommandLine::get(const std::string& name,
                             const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CommandLine::get_int(const std::string& name,
                                  std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

std::vector<std::string> CommandLine::option_names() const {
  std::vector<std::string> names;
  names.reserve(options_.size());
  for (const auto& [name, value] : options_) names.push_back(name);
  return names;  // options_ is an ordered map: already sorted and unique
}

std::string format_flag_help(const std::vector<FlagSpec>& specs) {
  // Column where help text starts; wide enough for the longest flag in use
  // and stable so goldens do not churn when a flag is added.
  constexpr std::size_t kHelpColumn = 24;
  std::string out;
  for (const FlagSpec& spec : specs) {
    std::string head = "  --" + spec.name;
    if (!spec.value.empty()) head += "=" + spec.value;
    if (head.size() + 2 > kHelpColumn) {
      out += head + "\n" + std::string(kHelpColumn, ' ');
    } else {
      out += head + std::string(kHelpColumn - head.size(), ' ');
    }
    std::string_view help = spec.help;
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = help.find('\n', start);
      out += help.substr(start, nl == std::string_view::npos ? nl
                                                            : nl - start);
      out += "\n";
      if (nl == std::string_view::npos) break;
      out += std::string(kHelpColumn, ' ');
      start = nl + 1;
    }
  }
  return out;
}

}  // namespace lr::support
