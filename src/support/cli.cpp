#include "support/cli.hpp"

#include <cstdlib>

namespace lr::support {

CommandLine::CommandLine(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

bool CommandLine::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string CommandLine::get(const std::string& name,
                             const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CommandLine::get_int(const std::string& name,
                                  std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

}  // namespace lr::support
