#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace lr::support::trace {

namespace detail {
/// Global collection switch. Inline so the Span constructor compiles to a
/// load-and-branch when tracing is off. Relaxed atomic: spans opened on
/// worker threads (the batch executor runs one repair problem per pool
/// thread) must observe start()/stop() without tearing; precise ordering
/// with respect to concurrently opened spans does not matter.
inline std::atomic<bool> g_enabled{false};
/// Count of clients (the BDD profiler) that need the per-thread open-span
/// stack maintained even while no trace is being collected, so that
/// current_span_name() keeps answering. Counted, not boolean: profiling and
/// a future second client must not stomp each other's enable/disable.
inline std::atomic<int> g_stack_keepers{0};
}  // namespace detail

/// True while a trace is being collected. Use this to guard attribute
/// computations that are themselves expensive (state counts, node counts):
///   if (trace::enabled()) span.attr("states", space.count_states(s));
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// True while spans must be pushed on the per-thread stack: a trace is
/// being collected, or some client (keep_span_stack) wants attribution.
[[nodiscard]] inline bool stack_enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed) ||
         detail::g_stack_keepers.load(std::memory_order_relaxed) > 0;
}

/// Acquires (true) / releases (false) the per-thread span stack without
/// collecting events. The BDD profiler uses this so span attribution works
/// under --stats alone, with no --trace-out.
void keep_span_stack(bool keep) noexcept;

/// Name of the innermost span currently open on this thread, or nullptr
/// when none (or when neither tracing nor a stack keeper is active). The
/// pointer is the string literal the span was created with.
[[nodiscard]] const char* current_span_name() noexcept;

/// Copies the names of the spans open on this thread, outermost first,
/// into `out` (at most `max` entries). Returns the full stack depth, which
/// may exceed `max` — callers that need completeness should size `out`
/// generously and treat a larger return value as truncation. The pointers
/// are the string literals the spans were created with, so they stay valid
/// across threads.
std::size_t current_span_path(const char** out, std::size_t max) noexcept;

/// Starts collecting spans (clears any previous buffer). Nesting comes from
/// span lifetimes; timestamps are microseconds since this call.
void start();

/// Stops collecting. Buffered events stay available for rendering.
void stop();

/// Number of completed spans in the buffer (counter samples not included).
[[nodiscard]] std::size_t event_count();

/// Records one sample of a named counter lane ("ph":"C" in the Chrome
/// trace: live BDD nodes, deadlock rounds, batch tasks done, ...) on this
/// thread's lane. No-op while collection is off; `name` must outlive the
/// trace (pass a string literal).
void counter(const char* name, double value);

/// Renders the buffered spans as a Chrome trace-event JSON document (the
/// "traceEvents" array format), loadable in chrome://tracing and Perfetto.
/// Each span becomes one complete ("ph":"X") event; attributes become the
/// event's "args".
[[nodiscard]] std::string to_chrome_json();
void write_chrome_json(std::ostream& out);

/// Writes to_chrome_json() to a file; false (with the buffer intact) when
/// the file cannot be opened.
bool write_chrome_json_file(const std::string& path);

/// RAII span: measures from construction to destruction. When tracing is
/// disabled the constructor is a single branch and every other member is a
/// no-op. Spans must be destroyed in LIFO order (automatic storage) *per
/// thread*: each thread owns its own open-span stack, completed spans land
/// in one shared buffer, and every event carries a small per-thread lane id
/// rendered as the Chrome trace "tid" so concurrent repairs show up as
/// parallel lanes in the viewer. A span must begin and end on the same
/// thread (automatic storage guarantees this).
class Span {
 public:
  explicit Span(const char* name) {
    if (stack_enabled()) begin(name);
  }
  ~Span() {
    if (active_) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span now instead of at destruction (for sequential phases
  /// sharing one scope). Must still respect LIFO order: close before any
  /// span opened after this one is created. Idempotent.
  void close() {
    if (active_) end();
  }

  /// Attaches a key/value pair to this span (rendered into "args").
  void attr(std::string_view key, double value);
  void attr(std::string_view key, std::uint64_t value);
  void attr(std::string_view key, std::string_view value);

 private:
  void begin(const char* name);
  void end();

  bool active_ = false;
  std::uint32_t index_ = 0;  ///< slot in the tracer's open-span stack
};

/// Re-opens a whole span path (outermost first) on the current thread and
/// closes it in LIFO order on destruction. The intra engine's workers use
/// this to inherit the dispatching thread's full call path, so the BDD
/// profiler's call-path tree reads the same whether work ran inline or on
/// a worker. Names must outlive the scope (span names are string
/// literals, so a path captured with current_span_path qualifies).
class SpanPathScope {
 public:
  explicit SpanPathScope(const std::vector<const char*>& names) {
    spans_.reserve(names.size());
    for (const char* name : names) {
      spans_.push_back(std::make_unique<Span>(name));
    }
  }
  ~SpanPathScope() {
    while (!spans_.empty()) spans_.pop_back();  // innermost closes first
  }

  SpanPathScope(const SpanPathScope&) = delete;
  SpanPathScope& operator=(const SpanPathScope&) = delete;

 private:
  std::vector<std::unique_ptr<Span>> spans_;
};

}  // namespace lr::support::trace

#define LR_TRACE_CONCAT_INNER(a, b) a##b
#define LR_TRACE_CONCAT(a, b) LR_TRACE_CONCAT_INNER(a, b)

/// Opens an anonymous span covering the rest of the enclosing scope:
///   LR_TRACE_SPAN("add_masking.fixpoint");
#define LR_TRACE_SPAN(name) \
  ::lr::support::trace::Span LR_TRACE_CONCAT(lr_trace_span_, __LINE__)(name)

/// Opens a named span so attributes can be attached:
///   LR_TRACE_SPAN_NAMED(span, "realize"); span.attr("process", j);
#define LR_TRACE_SPAN_NAMED(var, name) ::lr::support::trace::Span var(name)
