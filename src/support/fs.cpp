#include "support/fs.hpp"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace lr::support {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return os.str();
}

bool write_file_atomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << contents;
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    return false;
  }
  return true;
}

std::string content_hash(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "fnv1a:%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::optional<std::string> hash_file(const std::string& path) {
  const std::optional<std::string> bytes = read_file(path);
  if (!bytes) return std::nullopt;
  return content_hash(*bytes);
}

}  // namespace lr::support
