#include "support/table.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace lr::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t p = row[c].size(); p < width[c]; ++p) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    for (std::size_t p = 0; p < width[c] + 2; ++p) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_state_count(double count) {
  char buf[64];
  if (count < 0) return "?";
  if (count < 1e6) {
    std::snprintf(buf, sizeof buf, "%.0f", count);
  } else {
    const int exponent = static_cast<int>(std::floor(std::log10(count)));
    const double mantissa = count / std::pow(10.0, exponent);
    std::snprintf(buf, sizeof buf, "%.1fe%d", mantissa, exponent);
  }
  return buf;
}

}  // namespace lr::support
