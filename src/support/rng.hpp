#pragma once

#include <cstdint>

namespace lr::support {

/// Deterministic 64-bit PRNG (splitmix64). Used by property tests and the
/// random-formula generators so that failures reproduce exactly from a seed.
///
/// We deliberately avoid std::mt19937 in library code: splitmix64 is an
/// order of magnitude smaller, trivially seedable, and its output sequence
/// is stable across standard library implementations.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 random bits.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Modulo bias is irrelevant at test scale (bound << 2^64).
    return next() % bound;
  }

  /// Fair coin.
  constexpr bool flip() noexcept { return (next() & 1u) != 0; }

  /// Returns true with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return below(den) < num;
  }

 private:
  std::uint64_t state_;
};

}  // namespace lr::support
