#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lr::support {

/// Escapes a string for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \uXXXX sequences.
[[nodiscard]] std::string json_escape(std::string_view text);

/// `"..."`: json_escape plus the surrounding quotes.
[[nodiscard]] std::string json_quote(std::string_view text);

/// Renders a double as a JSON number that parses back to the same value
/// (shortest of %.15g/%.16g/%.17g that round-trips). Non-finite values,
/// which JSON cannot represent, become null. The manifest and metrics
/// writers use this so re-reading a report reproduces state counts
/// exactly.
[[nodiscard]] std::string json_number(double value);

/// A parsed JSON value. The observability layer *writes* JSON by hand (the
/// documents are flat and the writer must not allocate surprising amounts);
/// this reader exists so tests — and future tooling that ingests run
/// reports — can validate and inspect those documents without an external
/// dependency.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered object members (duplicate keys keep the last).
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses a complete JSON document. Returns nullopt on any syntax error or
/// trailing garbage (strict: the whole input must be one value plus
/// whitespace).
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace lr::support
