#include "support/stopwatch.hpp"

#include <cmath>
#include <cstdio>

namespace lr::support {

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    if (seconds < 0.0005) {
      std::snprintf(buf, sizeof buf, "%.3fms", seconds * 1e3);
    } else {
      std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1e3);
    }
  } else if (seconds < 100.0) {
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fs", seconds);
  }
  return buf;
}

}  // namespace lr::support
