#include "support/trace.hpp"

#include <chrono>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/json.hpp"

namespace lr::support::trace {

namespace {

using Clock = std::chrono::steady_clock;

/// A span being measured: attributes accumulate here until the Span closes.
struct OpenSpan {
  const char* name = nullptr;
  Clock::time_point start;
  /// (key, pre-rendered JSON value) pairs.
  std::vector<std::pair<std::string, std::string>> args;
};

/// A finished span, ready for rendering.
struct Event {
  const char* name = nullptr;
  double ts_us = 0.0;   ///< start, microseconds since trace start
  double dur_us = 0.0;  ///< duration in microseconds
  std::vector<std::pair<std::string, std::string>> args;
};

Clock::time_point g_epoch;
std::vector<OpenSpan> g_open;   // stack of live spans
std::vector<Event> g_events;    // completed spans

double micros_since_epoch(Clock::time_point t) {
  return std::chrono::duration<double, std::micro>(t - g_epoch).count();
}

void add_arg(std::uint32_t index, std::string_view key, std::string value) {
  if (index < g_open.size()) {
    g_open[index].args.emplace_back(std::string(key), std::move(value));
  }
}

}  // namespace

void start() {
  g_open.clear();
  g_events.clear();
  g_epoch = Clock::now();
  detail::g_enabled = true;
}

void stop() { detail::g_enabled = false; }

std::size_t event_count() { return g_events.size(); }

void Span::begin(const char* name) {
  active_ = true;
  index_ = static_cast<std::uint32_t>(g_open.size());
  g_open.push_back(OpenSpan{name, Clock::now(), {}});
}

void Span::end() {
  active_ = false;
  // Tracing may have stopped (or restarted) while this span was open; only
  // record spans whose slot is still theirs.
  if (index_ >= g_open.size() || g_open.size() != index_ + 1) {
    if (index_ < g_open.size()) g_open.resize(index_);
    return;
  }
  OpenSpan open = std::move(g_open.back());
  g_open.pop_back();
  const auto now = Clock::now();
  Event event;
  event.name = open.name;
  event.ts_us = micros_since_epoch(open.start);
  event.dur_us = std::chrono::duration<double, std::micro>(now - open.start)
                     .count();
  event.args = std::move(open.args);
  g_events.push_back(std::move(event));
}

void Span::attr(std::string_view key, double value) {
  if (!active_) return;
  std::ostringstream os;
  os << value;
  add_arg(index_, key, os.str());
}

void Span::attr(std::string_view key, std::uint64_t value) {
  if (!active_) return;
  add_arg(index_, key, std::to_string(value));
}

void Span::attr(std::string_view key, std::string_view value) {
  if (!active_) return;
  add_arg(index_, key, "\"" + json_escape(value) + "\"");
}

void write_chrome_json(std::ostream& out) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& event : g_events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << json_escape(event.name)
        << "\",\"cat\":\"lazyrepair\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
        << "\"ts\":" << event.ts_us << ",\"dur\":" << event.dur_us;
    if (!event.args.empty()) {
      out << ",\"args\":{";
      for (std::size_t i = 0; i < event.args.size(); ++i) {
        if (i > 0) out << ",";
        out << "\"" << json_escape(event.args[i].first)
            << "\":" << event.args[i].second;
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string to_chrome_json() {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

bool write_chrome_json_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_json(out);
  return static_cast<bool>(out);
}

}  // namespace lr::support::trace
