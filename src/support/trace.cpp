#include "support/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

#include "support/json.hpp"

namespace lr::support::trace {

namespace {

using Clock = std::chrono::steady_clock;

/// A span being measured: attributes accumulate here until the Span closes.
/// Lives on the owning thread's stack, so no locking is needed until the
/// span completes.
struct OpenSpan {
  const char* name = nullptr;
  Clock::time_point start;
  std::uint64_t generation = 0;  ///< start() count when the span opened
  /// Collection was on when the span opened. A span kept on the stack only
  /// for attribution (keep_span_stack) must never land in the buffer.
  bool collect = false;
  /// (key, pre-rendered JSON value) pairs.
  std::vector<std::pair<std::string, std::string>> args;
};

/// A finished span or counter sample, ready for rendering.
struct Event {
  const char* name = nullptr;
  char phase = 'X';        ///< 'X' complete span, 'C' counter sample
  std::uint32_t lane = 0;  ///< per-thread lane id (Chrome "tid")
  double ts_us = 0.0;      ///< start, microseconds since trace start
  double dur_us = 0.0;     ///< duration in microseconds ('X' only)
  double value = 0.0;      ///< sample value ('C' only)
  std::vector<std::pair<std::string, std::string>> args;
};

/// Shared, mutex-protected collector state. Spans touch it only on
/// completion (one lock per span), so per-phase granularity stays cheap.
std::mutex g_mutex;
Clock::time_point g_epoch;             // guarded by g_mutex
std::vector<Event> g_events;           // guarded by g_mutex
std::atomic<std::uint64_t> g_generation{0};
std::atomic<std::uint32_t> g_next_lane{1};

/// Per-thread collector state: the open-span stack and this thread's lane.
/// start() cannot clear other threads' stacks, so stale entries are instead
/// invalidated by the generation stamp.
thread_local std::vector<OpenSpan> t_open;
thread_local std::uint32_t t_lane = 0;

std::uint32_t this_thread_lane() {
  if (t_lane == 0) {
    t_lane = g_next_lane.fetch_add(1, std::memory_order_relaxed);
  }
  return t_lane;
}

void add_arg(std::uint32_t index, std::string_view key, std::string value) {
  if (index < t_open.size()) {
    t_open[index].args.emplace_back(std::string(key), std::move(value));
  }
}

}  // namespace

void start() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_events.clear();
  g_epoch = Clock::now();
  g_generation.fetch_add(1, std::memory_order_relaxed);
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void stop() { detail::g_enabled.store(false, std::memory_order_relaxed); }

std::size_t event_count() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::size_t spans = 0;
  for (const Event& event : g_events) {
    if (event.phase == 'X') ++spans;
  }
  return spans;
}

void keep_span_stack(bool keep) noexcept {
  detail::g_stack_keepers.fetch_add(keep ? 1 : -1,
                                    std::memory_order_relaxed);
}

const char* current_span_name() noexcept {
  return t_open.empty() ? nullptr : t_open.back().name;
}

std::size_t current_span_path(const char** out, std::size_t max) noexcept {
  const std::size_t depth = t_open.size();
  const std::size_t copied = depth < max ? depth : max;
  for (std::size_t i = 0; i < copied; ++i) out[i] = t_open[i].name;
  return depth;
}

void counter(const char* name, double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  Event event;
  event.name = name;
  event.phase = 'C';
  event.lane = this_thread_lane();
  event.ts_us =
      std::chrono::duration<double, std::micro>(Clock::now() - g_epoch)
          .count();
  event.value = value;
  g_events.push_back(std::move(event));
}

void Span::begin(const char* name) {
  active_ = true;
  index_ = static_cast<std::uint32_t>(t_open.size());
  t_open.push_back(OpenSpan{name,
                            Clock::now(),
                            g_generation.load(std::memory_order_relaxed),
                            enabled(),
                            {}});
}

void Span::end() {
  active_ = false;
  // Tracing may have stopped (or restarted) while this span was open; only
  // record spans whose slot on this thread's stack is still theirs.
  if (index_ >= t_open.size() || t_open.size() != index_ + 1) {
    if (index_ < t_open.size()) t_open.resize(index_);
    return;
  }
  OpenSpan open = std::move(t_open.back());
  t_open.pop_back();
  // Opened while collection was off (stack kept alive only for profiler
  // attribution): nothing to record.
  if (!open.collect) return;
  const auto now = Clock::now();
  std::lock_guard<std::mutex> lock(g_mutex);
  // A start() since begin() reset the buffer and epoch — the span belongs
  // to a trace that no longer exists.
  if (open.generation != g_generation.load(std::memory_order_relaxed)) return;
  Event event;
  event.name = open.name;
  event.lane = this_thread_lane();
  event.ts_us =
      std::chrono::duration<double, std::micro>(open.start - g_epoch).count();
  event.dur_us =
      std::chrono::duration<double, std::micro>(now - open.start).count();
  event.args = std::move(open.args);
  g_events.push_back(std::move(event));
}

void Span::attr(std::string_view key, double value) {
  if (!active_) return;
  std::ostringstream os;
  os << value;
  add_arg(index_, key, os.str());
}

void Span::attr(std::string_view key, std::uint64_t value) {
  if (!active_) return;
  add_arg(index_, key, std::to_string(value));
}

void Span::attr(std::string_view key, std::string_view value) {
  if (!active_) return;
  add_arg(index_, key, "\"" + json_escape(value) + "\"");
}

void write_chrome_json(std::ostream& out) {
  std::lock_guard<std::mutex> lock(g_mutex);
  out << "{\"traceEvents\":[";
  bool first = true;
  std::vector<std::uint32_t> lanes;
  for (const Event& event : g_events) {
    if (!first) out << ",";
    first = false;
    if (event.phase == 'C') {
      // Counter sample: renders as a stacked-area lane in the viewer. The
      // arg key doubles as the series name inside the lane.
      out << "\n{\"name\":\"" << json_escape(event.name)
          << "\",\"cat\":\"lazyrepair\",\"ph\":\"C\",\"pid\":1,\"tid\":"
          << event.lane << ",\"ts\":" << event.ts_us
          << ",\"args\":{\"value\":" << event.value << "}}";
    } else {
      out << "\n{\"name\":\"" << json_escape(event.name)
          << "\",\"cat\":\"lazyrepair\",\"ph\":\"X\",\"pid\":1,\"tid\":"
          << event.lane << ",\"ts\":" << event.ts_us
          << ",\"dur\":" << event.dur_us;
      if (!event.args.empty()) {
        out << ",\"args\":{";
        for (std::size_t i = 0; i < event.args.size(); ++i) {
          if (i > 0) out << ",";
          out << "\"" << json_escape(event.args[i].first)
              << "\":" << event.args[i].second;
        }
        out << "}";
      }
      out << "}";
    }
    if (std::find(lanes.begin(), lanes.end(), event.lane) == lanes.end()) {
      lanes.push_back(event.lane);
    }
  }
  // Name the lanes so the viewer labels each thread's row. Appended after
  // the complete events: consumers that index the array see spans first.
  for (const std::uint32_t lane : lanes) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << lane << ",\"args\":{\"name\":\"lane-" << lane << "\"}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string to_chrome_json() {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

bool write_chrome_json_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_json(out);
  return static_cast<bool>(out);
}

}  // namespace lr::support::trace
