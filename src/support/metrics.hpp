#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace lr::support::metrics {

/// A process-wide registry of named counters (monotone integers) and gauges
/// (last-written doubles), snapshotted into the JSON run report.
///
/// Names are dotted paths ("bdd.cache_hits", "repair.step1_seconds"); the
/// report keeps them flat. The registry is always on — an add() is a map
/// lookup plus an increment, cheap enough for the engine's per-phase
/// granularity. Per-operation costs (BDD cache hits and friends) stay in
/// `bdd::ManagerStats` and are mirrored here once per run.
///
/// Thread-safe: every member takes an internal mutex, so batch-executor
/// workers can record concurrently into the shared process-wide registry.
/// Contention is bounded by the per-run mirroring granularity. Writers that
/// need a consistent multi-key view should take snapshot().
class Registry {
 public:
  /// Adds `delta` to a counter, creating it at zero first.
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Sets a gauge to `value`, creating it on first write.
  void set_gauge(std::string_view name, double value);

  /// Keeps the larger of the current and `value` (high-water gauges).
  void max_gauge(std::string_view name, double value);

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] bool has_counter(std::string_view name) const;
  [[nodiscard]] bool has_gauge(std::string_view name) const;

  void clear();

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Serializes the registry as {"counters": {...}, "gauges": {...}} with
  /// keys in sorted order. This is the JSON run-report payload.
  [[nodiscard]] std::string to_json() const;
  void write_json(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
};

/// The process-wide registry used by the engine's instrumentation.
[[nodiscard]] Registry& registry();

/// Writes registry().to_json() to a file; false when it cannot be opened.
bool write_json_file(const std::string& path);

}  // namespace lr::support::metrics
