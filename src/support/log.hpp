#pragma once

#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace lr::support {

/// Severity levels of the structured logger, least to most severe. `off`
/// disables everything. The default is `warn`, so a run with no `--log-level`
/// and no `LR_LOG_LEVEL` prints nothing beyond what the seed code printed.
enum class LogLevel { trace, debug, info, warn, error, off };

/// Parses a level name ("trace", "debug", "info", "warn"/"warning",
/// "error", "off"/"none"); nullopt when unknown.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

/// Canonical name of a level ("trace" .. "error", "off").
[[nodiscard]] std::string_view log_level_name(LogLevel level);

/// Current threshold: messages below it are discarded before any of their
/// arguments are formatted (the LR_LOG macro short-circuits).
[[nodiscard]] LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Applies the LR_LOG_LEVEL environment variable, if set and parsable.
/// Called lazily by the first LR_LOG; call it again after changing the
/// environment (tests) or call set_log_level to override explicitly.
void init_log_from_env();

/// True when a message at `level` would be emitted. Forces the lazy env
/// initialization, so it is the single gate the LR_LOG macro needs.
[[nodiscard]] bool log_enabled(LogLevel level);

/// Redirects log output (nullptr restores the default, stderr). The sink
/// receives whole lines; tests point this at a stringstream.
void set_log_stream(std::ostream* stream) noexcept;

/// Writes one pre-formatted line (no trailing newline needed) to the log
/// sink under the same io mutex as the logger, so heartbeat lines never
/// shear against concurrent LR_LOG output. Bypasses the level threshold:
/// the caller (the progress layer) has its own gate.
void log_raw_line(std::string_view line);

/// One log statement: collects the streamed message and emits it as a
/// single "[level] message\n" line on destruction. Construct only via
/// LR_LOG — the macro performs the level check first.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  [[nodiscard]] std::ostream& stream() noexcept { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace lr::support

/// Leveled logging: `LR_LOG(debug) << "round=" << round;`. The argument is
/// a bare level name (trace/debug/info/warn/error). When the level is
/// disabled the operands are never evaluated. The for-statement makes the
/// macro a single statement safe inside unbraced if/else.
#define LR_LOG(level)                                                     \
  for (bool lr_log_emit_ =                                                \
           ::lr::support::log_enabled(::lr::support::LogLevel::level);    \
       lr_log_emit_; lr_log_emit_ = false)                                \
  ::lr::support::LogMessage(::lr::support::LogLevel::level).stream()
