#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lr::support {

/// Tiny command-line option parser for the example binaries.
///
/// Understands "--key=value", "--key value" and bare "--flag" arguments;
/// everything else is collected as a positional argument. The examples use
/// this to select instance sizes and toggles without pulling in a real
/// argument-parsing dependency.
class CommandLine {
 public:
  CommandLine(int argc, const char* const* argv);

  /// True when "--name" (with or without a value) was present.
  [[nodiscard]] bool has(const std::string& name) const;

  /// String value of --name, or fallback when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;

  /// Integer value of --name, or fallback when absent or unparsable.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;

  /// Positional (non-option) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names of every "--name[=value]" option that was passed (sorted,
  /// deduplicated). Lets binaries with a declared flag set reject typos
  /// instead of silently ignoring them.
  [[nodiscard]] std::vector<std::string> option_names() const;

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// Declaration of one "--flag" a binary accepts: the machine-readable side
/// of its --help text. Binaries keep a table of these so that help output,
/// unknown-flag rejection and the README flag table can be checked against
/// each other (see tests/support/test_cli_flags.cpp).
struct FlagSpec {
  std::string name;   ///< without the leading "--"
  std::string value;  ///< placeholder ("N", "FILE", ...); empty for booleans
  std::string help;   ///< description; '\n' continues on an indented line
};

/// Renders specs as aligned "  --name=VALUE   help" lines (with embedded
/// newlines in `help` continued at the help column).
[[nodiscard]] std::string format_flag_help(const std::vector<FlagSpec>& specs);

}  // namespace lr::support
