#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>

namespace lr::support {

/// Fixed-size thread pool for embarrassingly parallel batches of repair
/// problems. Deliberately work-stealing-free: one shared FIFO queue under a
/// mutex. The unit of work here is an entire synthesis run (milliseconds to
/// minutes), so queue contention is unmeasurable and a plain queue keeps
/// the scheduling order — and therefore the interleaving of observability
/// events — easy to reason about.
///
/// Each task runs on exactly one worker thread. The BDD engine's contract
/// (one Manager per thread, see bdd.hpp) is preserved as long as every task
/// owns its `sym::Space`/`bdd::Manager` and never shares handles across
/// tasks; the batch engine (repair/batch.hpp) enforces this by
/// constructing the program inside the task.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue (waits for all submitted tasks) and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw — the pool terminates on an
  /// escaped exception (catch inside the task; the batch engine does).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished and the queue is empty.
  /// New tasks may be submitted afterwards (the pool stays alive).
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept;

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static std::size_t hardware_threads();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Runs fn(0) .. fn(count-1) across `jobs` pool threads and returns when
/// all are done. `jobs <= 1` runs inline on the calling thread — the
/// sequential reference the batch determinism tests compare against.
/// Indices are dispatched in order, so with jobs == 1 the execution order
/// is exactly 0, 1, ..., count-1.
void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace lr::support
