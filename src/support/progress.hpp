#pragma once

#include <atomic>
#include <chrono>
#include <string>

namespace lr::support::progress {

namespace detail {
/// Heartbeat interval in milliseconds; 0 disables. Inline atomic so due()
/// is a load-and-compare on the hot path of fixpoint loops.
inline std::atomic<long> g_interval_ms{0};
}  // namespace detail

/// Default interval applied when progress is requested without a value
/// (`--progress`, `LR_PROGRESS=1`).
inline constexpr double kDefaultIntervalSeconds = 10.0;

/// Enables heartbeats every `interval_seconds` (<= 0 disables). Thread-safe.
void configure(double interval_seconds);

/// Applies the LR_PROGRESS environment variable: unset or "0"/"off"/""
/// leaves progress disabled, "1"/"true"/"on" enables the default interval,
/// a number enables that many seconds. An explicit configure() wins (call
/// order: env first, then CLI).
void init_from_env();

[[nodiscard]] bool enabled() noexcept;
[[nodiscard]] double interval_seconds() noexcept;

/// Per-phase heartbeat: a rate limiter plus a whole-line stderr emitter.
/// One Heartbeat lives on the stack of each long-running loop; due() is
/// cheap enough for per-iteration polling. Emission serializes through the
/// logger's io mutex, so heartbeats from the batch executor's workers never
/// shear — and never touch stdout, keeping batch output byte-stable.
///
/// Thread-safe: the batch executor shares one Heartbeat across its workers.
/// The timestamp is a relaxed atomic, so two workers racing through due()
/// can at worst both emit — an extra whole line, never a torn one.
class Heartbeat {
 public:
  explicit Heartbeat(const char* phase);

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  /// True when progress is enabled and the interval has elapsed since the
  /// last emit (or construction).
  [[nodiscard]] bool due() const noexcept;

  /// Emits "[progress] <phase>: <detail>" as one line and resets the timer.
  void emit(const std::string& detail);

  /// Convenience: emit(detail) if due(). Callers whose detail string is
  /// expensive to build should gate on due() themselves.
  void maybe_emit(const std::string& detail) {
    if (due()) emit(detail);
  }

 private:
  const char* phase_;
  /// steady_clock ticks (time_since_epoch) of the last emit.
  std::atomic<std::chrono::steady_clock::rep> last_;
};

}  // namespace lr::support::progress
