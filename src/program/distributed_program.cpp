#include "program/distributed_program.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "support/trace.hpp"

namespace lr::prog {

DistributedProgram::DistributedProgram(std::string name,
                                       bdd::Manager::Options options)
    : name_(std::move(name)), space_(options) {}

void DistributedProgram::require_mutable(const char* what) const {
  if (compiled_) {
    throw std::logic_error(std::string("DistributedProgram::") + what +
                           ": program is frozen (an accessor was called)");
  }
}

sym::VarId DistributedProgram::add_variable(const std::string& var_name,
                                            std::uint32_t domain) {
  require_mutable("add_variable");
  return space_.add_variable(var_name, domain);
}

std::size_t DistributedProgram::add_process(Process process) {
  require_mutable("add_process");
  // W_j ⊆ R_j (Definition 17).
  for (const sym::VarId w : process.writes) {
    if (std::find(process.reads.begin(), process.reads.end(), w) ==
        process.reads.end()) {
      throw std::invalid_argument("add_process: process '" + process.name +
                                  "' writes a variable it cannot read");
    }
  }
  processes_.push_back(std::move(process));
  return processes_.size() - 1;
}

void DistributedProgram::add_fault(lang::Action fault) {
  require_mutable("add_fault");
  faults_.push_back(std::move(fault));
}

void DistributedProgram::set_invariant(const lang::Expr& predicate) {
  require_mutable("set_invariant");
  invariant_expr_ = predicate;
}

void DistributedProgram::add_bad_states(const lang::Expr& predicate) {
  require_mutable("add_bad_states");
  bad_state_exprs_.push_back(predicate);
}

void DistributedProgram::add_bad_transitions(const lang::Expr& predicate) {
  require_mutable("add_bad_transitions");
  bad_trans_exprs_.push_back(predicate);
}

void DistributedProgram::compile() {
  if (compiled_) return;
  compiled_ = true;

  const bdd::Bdd valid_pair = space_.valid_pair();
  const bdd::Bdd identity = space_.identity();

  // Per-process transition predicates. Proper transitions only: the
  // stuttering rule of Definition 18 covers self-loops, and the paper's
  // read-restriction groups are defined over state-changing transitions.
  actions_delta_ = space_.bdd_false();
  process_deltas_.reserve(processes_.size());
  for (const Process& p : processes_) {
    bdd::Bdd delta = lang::compile_actions(space_, p.actions);
    delta = delta.minus(identity);
    process_deltas_.push_back(delta);
    actions_delta_ |= delta;
  }
  program_delta_ = stutter_completion(actions_delta_);

  fault_delta_ = space_.bdd_false();
  fault_action_deltas_.reserve(faults_.size());
  for (const lang::Action& fault : faults_) {
    bdd::Bdd delta = lang::compile_action(space_, fault).minus(identity);
    fault_delta_ |= delta;
    fault_action_deltas_.push_back(std::move(delta));
  }

  lang::Compiler compiler(space_);
  if (!invariant_expr_.has_value()) {
    throw std::logic_error("DistributedProgram: no invariant was set");
  }
  invariant_bdd_ =
      compiler.compile_bool(*invariant_expr_) & space_.valid(sym::Version::kCurrent);

  safety_.bad_states = space_.bdd_false();
  for (const lang::Expr& e : bad_state_exprs_) {
    safety_.bad_states |= compiler.compile_bool(e);
  }
  safety_.bad_states &= space_.valid(sym::Version::kCurrent);
  safety_.bad_trans = space_.bdd_false();
  for (const lang::Expr& e : bad_trans_exprs_) {
    safety_.bad_trans |= compiler.compile_bool(e);
  }
  safety_.bad_trans &= valid_pair;

  // Realizability helpers per process.
  respects_write_.reserve(processes_.size());
  same_unreadable_.reserve(processes_.size());
  unreadable_cubes_.reserve(processes_.size());
  for (const Process& p : processes_) {
    std::unordered_set<sym::VarId> reads(p.reads.begin(), p.reads.end());
    std::unordered_set<sym::VarId> writes(p.writes.begin(), p.writes.end());
    std::vector<sym::VarId> not_written;
    std::vector<sym::VarId> not_read;
    for (sym::VarId v = 0; v < space_.variable_count(); ++v) {
      if (writes.count(v) == 0) not_written.push_back(v);
      if (reads.count(v) == 0) not_read.push_back(v);
    }
    respects_write_.push_back(space_.unchanged(not_written));
    same_unreadable_.push_back(space_.unchanged(not_read));
    unreadable_cubes_.push_back(space_.cube_pair_of(not_read));
  }
}

const bdd::Bdd& DistributedProgram::process_delta(std::size_t j) {
  compile();
  return process_deltas_.at(j);
}

const bdd::Bdd& DistributedProgram::actions_delta() {
  compile();
  return actions_delta_;
}

const bdd::Bdd& DistributedProgram::program_delta() {
  compile();
  return program_delta_;
}

const bdd::Bdd& DistributedProgram::fault_delta() {
  compile();
  return fault_delta_;
}

const std::vector<bdd::Bdd>& DistributedProgram::fault_action_deltas() {
  compile();
  return fault_action_deltas_;
}

std::vector<bdd::Bdd> DistributedProgram::transition_partitions() {
  compile();
  std::vector<bdd::Bdd> partitions = process_deltas_;
  partitions.insert(partitions.end(), fault_action_deltas_.begin(),
                    fault_action_deltas_.end());
  return partitions;
}

const bdd::Bdd& DistributedProgram::invariant() {
  compile();
  return invariant_bdd_;
}

const SafetySpec& DistributedProgram::safety() {
  compile();
  return safety_;
}

const lang::Expr& DistributedProgram::invariant_expression() const {
  if (!invariant_expr_.has_value()) {
    throw std::logic_error("DistributedProgram: no invariant was set");
  }
  return *invariant_expr_;
}

sym::order::Structure DistributedProgram::order_structure() const {
  sym::order::Structure structure;
  const auto add_action = [&structure](const lang::Action& action) {
    std::vector<sym::VarId> vars;
    action.guard.collect_vars(vars);
    for (const lang::Assignment& assign : action.assigns) {
      vars.push_back(assign.var);
      for (const lang::Expr& alternative : assign.alternatives) {
        alternative.collect_vars(vars);
      }
    }
    vars.insert(vars.end(), action.havoc.begin(), action.havoc.end());
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    structure.action_vars.push_back(std::move(vars));
  };
  const auto add_expr = [&structure](const lang::Expr& e) {
    std::vector<sym::VarId> vars;
    e.collect_vars(vars);
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    if (!vars.empty()) structure.action_vars.push_back(std::move(vars));
  };

  for (const Process& proc : processes_) {
    std::vector<sym::VarId> vars = proc.writes;
    vars.insert(vars.end(), proc.reads.begin(), proc.reads.end());
    structure.process_vars.push_back(std::move(vars));
    for (const lang::Action& action : proc.actions) add_action(action);
  }
  for (const lang::Action& fault : faults_) add_action(fault);
  if (invariant_expr_.has_value()) add_expr(*invariant_expr_);
  for (const lang::Expr& e : bad_state_exprs_) add_expr(e);
  for (const lang::Expr& e : bad_trans_exprs_) add_expr(e);
  return structure;
}

const bdd::Bdd& DistributedProgram::respects_write(std::size_t j) {
  compile();
  return respects_write_.at(j);
}

const bdd::Bdd& DistributedProgram::same_unreadable(std::size_t j) {
  compile();
  return same_unreadable_.at(j);
}

const bdd::Bdd& DistributedProgram::unreadable_cube(std::size_t j) {
  compile();
  return unreadable_cubes_.at(j);
}

bdd::Bdd DistributedProgram::group(std::size_t j, const bdd::Bdd& delta) {
  compile();
  LR_TRACE_SPAN("program.group");
  bdd::Manager& mgr = space_.manager();
  // Transitions that change an unreadable variable have an empty group, so
  // restrict first; then close over all *valid* values of the unreadable
  // variables, kept unchanged across the transition. (Without the validity
  // conjunct, non-power-of-two domains would contribute phantom members
  // with out-of-domain encodings.)
  const bdd::Bdd restricted = delta & same_unreadable_[j];
  return mgr.exists(restricted, unreadable_cubes_[j]) & same_unreadable_[j] &
         space_.valid_pair();
}

bdd::Bdd DistributedProgram::realizable_subset(std::size_t j,
                                               const bdd::Bdd& delta) {
  compile();
  LR_TRACE_SPAN("program.realizable_subset");
  bdd::Manager& mgr = space_.manager();
  // A transition's group is contained in δ iff δ holds for every valid
  // value of the unreadable variables (held unchanged): one universal
  // quantification.
  const bdd::Bdd member_shape = same_unreadable_[j] & space_.valid_pair();
  const bdd::Bdd closed =
      mgr.forall(member_shape.implies(delta), unreadable_cubes_[j]);
  return delta & member_shape & closed;
}

bool DistributedProgram::realizable_by_process(std::size_t j,
                                               const bdd::Bdd& delta) {
  compile();
  if (!delta.leq(respects_write_[j])) return false;
  return group(j, delta) == delta;
}

std::optional<std::vector<bdd::Bdd>> DistributedProgram::realize_by_program(
    const bdd::Bdd& delta) {
  compile();
  // Maximal candidate decomposition: give every process everything it could
  // execute; δ is realizable iff the union reproduces δ exactly and each
  // part is group-closed (it is, by construction of realizable_subset).
  std::vector<bdd::Bdd> parts;
  parts.reserve(processes_.size());
  bdd::Bdd covered = space_.bdd_false();
  for (std::size_t j = 0; j < processes_.size(); ++j) {
    bdd::Bdd part = realizable_subset(j, delta & respects_write_[j]);
    covered |= part;
    parts.push_back(std::move(part));
  }
  if (covered == delta) return parts;
  return std::nullopt;
}

bdd::Bdd DistributedProgram::stutter_completion(const bdd::Bdd& delta) {
  compile();
  const bdd::Bdd enabled =
      space_.manager().exists(delta, space_.cube(sym::Version::kNext));
  const bdd::Bdd stuck =
      space_.valid(sym::Version::kCurrent).minus(enabled);
  return delta | (stuck & space_.identity());
}

const bdd::Bdd& DistributedProgram::reachable_under_faults() {
  compile();
  if (!reachable_.has_value()) {
    reachable_ = space_.forward_reachable(transition_partitions(), invariant_bdd_);
  }
  return *reachable_;
}

}  // namespace lr::prog
