#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "lang/action.hpp"
#include "lang/expr.hpp"
#include "symbolic/order_heur.hpp"
#include "symbolic/space.hpp"

namespace lr::prog {

/// One process of a distributed program (Definition 17): the variables it
/// may read (R_j), the variables it may write (W_j ⊆ R_j), and its actions
/// (which compile to its transition predicate δ_j).
struct Process {
  std::string name;
  std::vector<sym::VarId> reads;
  std::vector<sym::VarId> writes;
  std::vector<lang::Action> actions;
};

/// Safety specification (Definition 7): a set of states that must never be
/// visited and a set of transitions that must never be executed, by the
/// program or by faults.
struct SafetySpec {
  bdd::Bdd bad_states;  ///< Sf_bs, over the current copy
  bdd::Bdd bad_trans;   ///< Sf_bt, over (current, next)
};

/// A distributed program P = (V_P, P_P) with faults, an invariant and a
/// safety specification — the full input of the repair problem (Section II).
///
/// Build order: declare variables, then processes/faults/invariant/spec in
/// any order, then call the accessors. The first accessor call compiles all
/// actions and freezes the program; mutation afterwards throws.
class DistributedProgram {
 public:
  explicit DistributedProgram(std::string name,
                              bdd::Manager::Options options = {});

  DistributedProgram(const DistributedProgram&) = delete;
  DistributedProgram& operator=(const DistributedProgram&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // --- Construction -----------------------------------------------------------

  /// Declares a program variable (Definition 16). Returns its id; use
  /// lang::Expr::var / Expr::next to reference it in actions.
  sym::VarId add_variable(const std::string& var_name, std::uint32_t domain);

  /// Adds a process; returns its index.
  std::size_t add_process(Process process);

  /// Adds a fault action (Definition 12). Faults are not subject to
  /// read/write restrictions.
  void add_fault(lang::Action fault);

  /// Sets the invariant (legitimate states) S from an expression.
  void set_invariant(const lang::Expr& predicate);

  /// Marks states satisfying `predicate` as bad (added to Sf_bs).
  void add_bad_states(const lang::Expr& predicate);

  /// Marks transitions satisfying `predicate` (which may reference
  /// next-state values via Expr::next) as bad (added to Sf_bt).
  void add_bad_transitions(const lang::Expr& predicate);

  // --- Compiled artifacts (first call freezes the program) -----------------------

  [[nodiscard]] sym::Space& space() noexcept { return space_; }
  [[nodiscard]] std::size_t process_count() const noexcept {
    return processes_.size();
  }
  [[nodiscard]] const Process& process(std::size_t j) const {
    return processes_.at(j);
  }

  /// δ_j of process j: the union of its compiled actions, restricted to
  /// proper (state-changing) transitions. Self-loops are represented by the
  /// stuttering rule of Definition 18 instead.
  [[nodiscard]] const bdd::Bdd& process_delta(std::size_t j);

  /// ∪_j δ_j (no stuttering).
  [[nodiscard]] const bdd::Bdd& actions_delta();

  /// δ_P per Definition 18: ∪_j δ_j plus a self-loop at every valid state
  /// where no process transition is enabled.
  [[nodiscard]] const bdd::Bdd& program_delta();

  /// Union of the compiled fault actions (proper transitions).
  [[nodiscard]] const bdd::Bdd& fault_delta();

  /// The compiled fault actions individually (for partitioned reachability).
  [[nodiscard]] const std::vector<bdd::Bdd>& fault_action_deltas();

  /// Process deltas followed by fault action deltas: the natural partition
  /// of δ_P ∪ f for Space::forward_reachable(span, from). Stutter steps add
  /// no reachability and are omitted.
  [[nodiscard]] std::vector<bdd::Bdd> transition_partitions();

  /// The invariant S (conjoined with domain validity).
  [[nodiscard]] const bdd::Bdd& invariant();

  /// The safety specification (bad states / bad transitions).
  [[nodiscard]] const SafetySpec& safety();

  // --- Source-level views (for exporters/tools) ---------------------------------
  /// The fault actions as written (source form of fault_delta()).
  [[nodiscard]] const std::vector<lang::Action>& fault_actions() const {
    return faults_;
  }
  /// The invariant expression passed to set_invariant (throws if unset).
  [[nodiscard]] const lang::Expr& invariant_expression() const;
  /// The bad-state expressions as written.
  [[nodiscard]] const std::vector<lang::Expr>& bad_state_expressions() const {
    return bad_state_exprs_;
  }
  /// The bad-transition expressions as written.
  [[nodiscard]] const std::vector<lang::Expr>& bad_transition_expressions()
      const {
    return bad_trans_exprs_;
  }

  /// The variable-dependence structure of the *parsed* model for the static
  /// order heuristics (sym::order): per-action support sets (process
  /// actions, faults, invariant and safety expressions) plus per-process
  /// writes-then-reads lists. Works before compilation and does not freeze
  /// the program — exactly what applying an initial order requires.
  [[nodiscard]] sym::order::Structure order_structure() const;

  // --- Realizability machinery (Section III-B) --------------------------------------

  /// Transition predicate "respects W_j": every variable outside W_j is
  /// unchanged (the complement of the paper's write(W_j)).
  [[nodiscard]] const bdd::Bdd& respects_write(std::size_t j);

  /// Conjunction of unchanged(v) for every variable process j cannot read.
  [[nodiscard]] const bdd::Bdd& same_unreadable(std::size_t j);

  /// Cube of both copies of every bit process j cannot read.
  [[nodiscard]] const bdd::Bdd& unreadable_cube(std::size_t j);

  /// group_j(δ): the read-restriction closure of δ for process j —
  /// the union of the groups of all transitions of δ ∩ same_unreadable(j)
  /// (a transition changing an unreadable variable has an empty group).
  [[nodiscard]] bdd::Bdd group(std::size_t j, const bdd::Bdd& delta);

  /// The subset of δ whose groups are entirely contained in δ — exactly
  /// the transitions process j can realize out of δ (one ∀ per call).
  [[nodiscard]] bdd::Bdd realizable_subset(std::size_t j, const bdd::Bdd& delta);

  /// Definition 19: δ is realizable by process j.
  [[nodiscard]] bool realizable_by_process(std::size_t j, const bdd::Bdd& delta);

  /// Definition 20 (off-diagonal part): δ equals ∪_j δ_j for some
  /// realizable per-process decomposition. Returns the decomposition when
  /// it exists.
  [[nodiscard]] std::optional<std::vector<bdd::Bdd>> realize_by_program(
      const bdd::Bdd& delta);

  /// Adds the Definition-18 stutter completion to an action union:
  /// delta ∪ {(s,s) | s valid, no delta-successor}.
  [[nodiscard]] bdd::Bdd stutter_completion(const bdd::Bdd& delta);

  /// States of `set` reachable by the fault-intolerant program in the
  /// presence of faults (the Step-1 heuristic's search space).
  [[nodiscard]] const bdd::Bdd& reachable_under_faults();

 private:
  void compile();
  void require_mutable(const char* what) const;

  std::string name_;
  sym::Space space_;
  std::vector<Process> processes_;
  std::vector<lang::Action> faults_;
  std::optional<lang::Expr> invariant_expr_;
  std::vector<lang::Expr> bad_state_exprs_;
  std::vector<lang::Expr> bad_trans_exprs_;

  bool compiled_ = false;
  std::vector<bdd::Bdd> process_deltas_;
  std::vector<bdd::Bdd> fault_action_deltas_;
  bdd::Bdd actions_delta_;
  bdd::Bdd program_delta_;
  bdd::Bdd fault_delta_;
  bdd::Bdd invariant_bdd_;
  SafetySpec safety_;
  std::vector<bdd::Bdd> respects_write_;
  std::vector<bdd::Bdd> same_unreadable_;
  std::vector<bdd::Bdd> unreadable_cubes_;
  std::optional<bdd::Bdd> reachable_;
};

}  // namespace lr::prog
