#include "symbolic/space.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "bdd/profile.hpp"
#include "bdd/witness.hpp"
#include "support/trace.hpp"
#include "symbolic/intra.hpp"
#include "symbolic/relation.hpp"

namespace lr::sym {

namespace {

std::uint32_t bits_for_domain(std::uint32_t domain) {
  if (domain < 2) return 1;
  std::uint32_t bits = 0;
  std::uint32_t capacity = 1;
  while (capacity < domain) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

Space::Space(bdd::Manager::Options options) : mgr_(options) {}

Space::~Space() = default;

VarId Space::add_variable(std::string name, std::uint32_t domain) {
  if (frozen_) {
    throw std::logic_error(
        "Space::add_variable: space is frozen (a whole-space structure was "
        "already queried)");
  }
  if (domain < 1) {
    throw std::invalid_argument("Space::add_variable: domain must be >= 1");
  }
  VariableInfo info;
  info.name = std::move(name);
  info.domain = domain;
  info.bits = bits_for_domain(domain);
  info.cur_bits.reserve(info.bits);
  info.next_bits.reserve(info.bits);
  for (std::uint32_t b = 0; b < info.bits; ++b) {
    // Interleave current and next copies of each bit.
    info.cur_bits.push_back(mgr_.new_var());
    info.next_bits.push_back(mgr_.new_var());
  }
  bits_per_state_ += info.bits;
  vars_.push_back(std::move(info));
  return static_cast<VarId>(vars_.size() - 1);
}

std::optional<VarId> Space::find(const std::string& name) const {
  for (VarId v = 0; v < vars_.size(); ++v) {
    if (vars_[v].name == name) return v;
  }
  return std::nullopt;
}

double Space::state_space_size() const {
  double size = 1.0;
  for (const auto& v : vars_) size *= static_cast<double>(v.domain);
  return size;
}

void Space::freeze() {
  if (frozen_) return;
  frozen_ = true;
  // Cubes over each copy.
  std::vector<bdd::VarIndex> cur;
  std::vector<bdd::VarIndex> next;
  for (const auto& v : vars_) {
    cur.insert(cur.end(), v.cur_bits.begin(), v.cur_bits.end());
    next.insert(next.end(), v.next_bits.begin(), v.next_bits.end());
  }
  cube_cur_ = mgr_.make_cube(cur);
  cube_next_ = mgr_.make_cube(next);
  // The swap permutation (an involution thanks to interleaving).
  std::vector<bdd::VarIndex> perm(mgr_.var_count());
  for (bdd::VarIndex i = 0; i < perm.size(); ++i) perm[i] = i;
  for (const auto& v : vars_) {
    for (std::uint32_t b = 0; b < v.bits; ++b) {
      perm[v.cur_bits[b]] = v.next_bits[b];
      perm[v.next_bits[b]] = v.cur_bits[b];
    }
  }
  swap_perm_ = mgr_.register_permutation(perm);
  // Keep the raw structures around: enable_intra mirrors them into every
  // worker manager.
  cur_bit_list_ = std::move(cur);
  next_bit_list_ = std::move(next);
  swap_perm_vec_ = std::move(perm);
  // Domain-validity constraints and the identity relation.
  valid_cur_ = mgr_.bdd_true();
  valid_next_ = mgr_.bdd_true();
  identity_ = mgr_.bdd_true();
  for (VarId v = 0; v < vars_.size(); ++v) {
    const std::uint32_t domain = vars_[v].domain;
    if ((1u << vars_[v].bits) != domain) {
      valid_cur_ &= value_lt(v, domain, Version::kCurrent);
      valid_next_ &= value_lt(v, domain, Version::kNext);
    }
    identity_ &= unchanged(v);
  }
}

bdd::Bdd Space::value_eq(VarId v, std::uint32_t value, Version ver) {
  const VariableInfo& info = vars_.at(v);
  if (value >= info.domain) {
    throw std::invalid_argument("Space::value_eq: value " +
                                std::to_string(value) + " outside domain of " +
                                info.name);
  }
  const auto& bits = bits_of(v, ver);
  bdd::Bdd result = mgr_.bdd_true();
  for (std::uint32_t b = 0; b < info.bits; ++b) {
    const bool bit = ((value >> b) & 1u) != 0;
    result &= bit ? mgr_.bdd_var(bits[b]) : mgr_.bdd_nvar(bits[b]);
  }
  return result;
}

bdd::Bdd Space::value_lt(VarId v, std::uint32_t value, Version ver) {
  const VariableInfo& info = vars_.at(v);
  const auto& bits = bits_of(v, ver);
  if (value >= (1u << info.bits)) return mgr_.bdd_true();
  // Compare MSB-down: v < value iff some prefix matches and the next
  // constant bit is 1 while the variable bit is 0.
  bdd::Bdd result = mgr_.bdd_false();
  bdd::Bdd prefix_eq = mgr_.bdd_true();
  for (std::int32_t b = static_cast<std::int32_t>(info.bits) - 1; b >= 0;
       --b) {
    const bool cbit = ((value >> b) & 1u) != 0;
    const bdd::Bdd bit = mgr_.bdd_var(bits[b]);
    if (cbit) {
      result |= prefix_eq & ~bit;
      prefix_eq &= bit;
    } else {
      prefix_eq &= ~bit;
    }
  }
  return result;
}

bdd::Bdd Space::vars_eq(VarId a, Version va, VarId b, Version vb) {
  const VariableInfo& ia = vars_.at(a);
  const VariableInfo& ib = vars_.at(b);
  const auto& bits_a = bits_of(a, va);
  const auto& bits_b = bits_of(b, vb);
  const std::uint32_t common = std::min(ia.bits, ib.bits);
  bdd::Bdd result = mgr_.bdd_true();
  for (std::uint32_t i = 0; i < common; ++i) {
    result &= mgr_.bdd_var(bits_a[i]).iff(mgr_.bdd_var(bits_b[i]));
  }
  // The wider variable's extra bits must be zero for the values to match.
  for (std::uint32_t i = common; i < ia.bits; ++i) {
    result &= mgr_.bdd_nvar(bits_a[i]);
  }
  for (std::uint32_t i = common; i < ib.bits; ++i) {
    result &= mgr_.bdd_nvar(bits_b[i]);
  }
  return result;
}

bdd::Bdd Space::unchanged(VarId v) {
  return vars_eq(v, Version::kCurrent, v, Version::kNext);
}

bdd::Bdd Space::unchanged(std::span<const VarId> vs) {
  bdd::Bdd result = mgr_.bdd_true();
  for (const VarId v : vs) result &= unchanged(v);
  return result;
}

bdd::Bdd Space::identity() {
  freeze();
  return identity_;
}

bdd::Bdd Space::valid(Version ver) {
  freeze();
  return ver == Version::kCurrent ? valid_cur_ : valid_next_;
}

bdd::Bdd Space::valid_pair() {
  freeze();
  return valid_cur_ & valid_next_;
}

bdd::Bdd Space::cube(Version ver) {
  freeze();
  return ver == Version::kCurrent ? cube_cur_ : cube_next_;
}

bdd::Bdd Space::cube_of(std::span<const VarId> vs, Version ver) {
  std::vector<bdd::VarIndex> bits;
  for (const VarId v : vs) {
    const auto& src = bits_of(v, ver);
    bits.insert(bits.end(), src.begin(), src.end());
  }
  return mgr_.make_cube(bits);
}

bdd::Bdd Space::cube_pair_of(std::span<const VarId> vs) {
  std::vector<bdd::VarIndex> bits;
  for (const VarId v : vs) {
    const auto& cur = vars_.at(v).cur_bits;
    const auto& next = vars_.at(v).next_bits;
    bits.insert(bits.end(), cur.begin(), cur.end());
    bits.insert(bits.end(), next.begin(), next.end());
  }
  return mgr_.make_cube(bits);
}

bdd::Bdd Space::prime(const bdd::Bdd& state) {
  freeze();
  return mgr_.permute(state, *swap_perm_);
}

bdd::Bdd Space::unprime(const bdd::Bdd& state) {
  freeze();
  return mgr_.permute(state, *swap_perm_);
}

bdd::Bdd Space::image(const bdd::Bdd& rel, const bdd::Bdd& from) {
  freeze();
  if (intra_ != nullptr) {
    // Copy the cached pieces: the engine may trim its caches on a later
    // call, and local handles keep the split alive regardless.
    const std::vector<bdd::Bdd> pieces =
        intra_->split_relation(rel, 2 * intra_->contexts());
    if (pieces.size() > 1) return intra_->image(pieces, from);
  }
  return unprime(mgr_.and_exists(rel, from, cube_cur_));
}

bdd::Bdd Space::preimage(const bdd::Bdd& rel, const bdd::Bdd& to) {
  freeze();
  if (intra_ != nullptr) {
    const std::vector<bdd::Bdd> pieces =
        intra_->split_relation(rel, 2 * intra_->contexts());
    if (pieces.size() > 1) return intra_->preimage(pieces, prime(to));
  }
  return mgr_.and_exists(rel, prime(to), cube_next_);
}

bdd::Bdd Space::union_over_parts(
    std::span<const bdd::Bdd> rels,
    const std::function<bdd::Bdd(std::span<const bdd::Bdd>)>& sharded,
    const std::function<bdd::Bdd(const bdd::Bdd&)>& step) {
  freeze();
  if (intra_ != nullptr && rels.size() > 1) return sharded(rels);
  bdd::Bdd result = mgr_.bdd_false();
  for (const bdd::Bdd& rel : rels) result |= step(rel);
  return result;
}

bdd::Bdd Space::image(std::span<const bdd::Bdd> rels, const bdd::Bdd& from) {
  return union_over_parts(
      rels,
      [this, &from](std::span<const bdd::Bdd> parts) {
        return intra_->image(parts, from);
      },
      [this, &from](const bdd::Bdd& rel) { return image(rel, from); });
}

bdd::Bdd Space::preimage(std::span<const bdd::Bdd> rels, const bdd::Bdd& to) {
  return union_over_parts(
      rels,
      [this, &to](std::span<const bdd::Bdd> parts) {
        return intra_->preimage(parts, prime(to));
      },
      [this, &to](const bdd::Bdd& rel) { return preimage(rel, to); });
}

namespace {

/// Expands one scheduled part into engine pieces. Single-factor parts are
/// Shannon-sharded (a cofactor's support never grows, so the shards
/// inherit the part's quantification cubes soundly); multi-factor parts
/// stay one piece so the worker's combined and-exists never materializes
/// their product.
void append_scheduled_pieces(
    IntraEngine& intra, const RelationPart& part, bool use_next,
    std::vector<IntraEngine::ScheduledPiece>& out) {
  const bdd::Bdd& local = use_next ? part.local_next_cube
                                   : part.local_cur_cube;
  const bdd::Bdd& absent = use_next ? part.absent_next_cube
                                    : part.absent_cur_cube;
  if (part.conjuncts.size() == 1) {
    const std::vector<bdd::Bdd> shards =
        intra.split_relation(part.conjuncts[0], 2 * intra.contexts());
    for (const bdd::Bdd& shard : shards) {
      out.push_back({shard, bdd::Bdd(), local, absent});
    }
    return;
  }
  bdd::Bdd rest = part.conjuncts[1];
  for (std::size_t i = 2; i < part.conjuncts.size(); ++i) {
    rest &= part.conjuncts[i];
  }
  out.push_back({part.conjuncts[0], std::move(rest), local, absent});
}

}  // namespace

bdd::Bdd Space::image_part(const RelationPart& part, const bdd::Bdd& from) {
  freeze();
  if (intra_ != nullptr) {
    std::vector<IntraEngine::ScheduledPiece> pieces;
    append_scheduled_pieces(*intra_, part, /*use_next=*/false, pieces);
    if (pieces.size() > 1) return intra_->image(pieces, from);
  }
  // Early quantification: the part cannot see the bits outside its
  // support, so they leave the operand before the product.
  const bdd::Bdd operand = part.absent_cur_cube.is_true()
                               ? from
                               : mgr_.exists(from, part.absent_cur_cube);
  if (part.conjuncts.size() >= 2) {
    bdd::Bdd rest = part.conjuncts[1];
    for (std::size_t i = 2; i < part.conjuncts.size(); ++i) {
      rest &= part.conjuncts[i];
    }
    return unprime(mgr_.and_exists(part.conjuncts[0], rest, operand,
                                   part.local_cur_cube));
  }
  return unprime(
      mgr_.and_exists(part.conjuncts[0], operand, part.local_cur_cube));
}

bdd::Bdd Space::preimage_part(const RelationPart& part,
                              const bdd::Bdd& to_primed) {
  freeze();
  if (intra_ != nullptr) {
    std::vector<IntraEngine::ScheduledPiece> pieces;
    append_scheduled_pieces(*intra_, part, /*use_next=*/true, pieces);
    if (pieces.size() > 1) return intra_->preimage(pieces, to_primed);
  }
  const bdd::Bdd operand = part.absent_next_cube.is_true()
                               ? to_primed
                               : mgr_.exists(to_primed, part.absent_next_cube);
  if (part.conjuncts.size() >= 2) {
    bdd::Bdd rest = part.conjuncts[1];
    for (std::size_t i = 2; i < part.conjuncts.size(); ++i) {
      rest &= part.conjuncts[i];
    }
    return mgr_.and_exists(part.conjuncts[0], rest, operand,
                           part.local_next_cube);
  }
  return mgr_.and_exists(part.conjuncts[0], operand, part.local_next_cube);
}

bdd::Bdd Space::image(const TransitionRelation& rel, const bdd::Bdd& from) {
  freeze();
  if (!rel.scheduled()) return image(rel.flat_parts(), from);
  if (intra_ != nullptr && rel.part_count() > 1) {
    std::vector<IntraEngine::ScheduledPiece> pieces;
    for (const RelationPart& part : rel.parts()) {
      append_scheduled_pieces(*intra_, part, /*use_next=*/false, pieces);
    }
    return intra_->image(pieces, from);
  }
  bdd::Bdd result = mgr_.bdd_false();
  for (const RelationPart& part : rel.parts()) {
    result |= image_part(part, from);
  }
  return result;
}

bdd::Bdd Space::preimage(const TransitionRelation& rel, const bdd::Bdd& to) {
  freeze();
  if (!rel.scheduled()) return preimage(rel.flat_parts(), to);
  const bdd::Bdd to_primed = prime(to);
  if (intra_ != nullptr && rel.part_count() > 1) {
    std::vector<IntraEngine::ScheduledPiece> pieces;
    for (const RelationPart& part : rel.parts()) {
      append_scheduled_pieces(*intra_, part, /*use_next=*/true, pieces);
    }
    return intra_->preimage(pieces, to_primed);
  }
  bdd::Bdd result = mgr_.bdd_false();
  for (const RelationPart& part : rel.parts()) {
    result |= preimage_part(part, to_primed);
  }
  return result;
}

bdd::Bdd Space::forward_reachable(const bdd::Bdd& rel, const bdd::Bdd& from) {
  LR_TRACE_SPAN_NAMED(span, "space.forward_reachable");
  std::uint64_t iterations = 0;
  bdd::Bdd reached = from;
  bdd::Bdd frontier = from;
  while (!frontier.is_false()) {
    frontier = image(rel, frontier).minus(reached);
    reached |= frontier;
    ++iterations;
  }
  if (support::trace::enabled()) {
    span.attr("iterations", iterations);
    span.attr("result_nodes",
              static_cast<std::uint64_t>(reached.node_count()));
  }
  return reached;
}

bdd::Bdd Space::forward_reachable(std::span<const bdd::Bdd> rels,
                                  const bdd::Bdd& from) {
  LR_TRACE_SPAN_NAMED(span, "space.forward_reachable_partitioned");
  std::uint64_t images = 0;
  bdd::Bdd reached = from;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const bdd::Bdd& rel : rels) {
      // Saturate this partition before moving to the next.
      while (true) {
        const bdd::Bdd fresh = image(rel, reached).minus(reached);
        ++images;
        if (fresh.is_false()) break;
        reached |= fresh;
        changed = true;
      }
    }
  }
  if (support::trace::enabled()) {
    span.attr("partitions", static_cast<std::uint64_t>(rels.size()));
    span.attr("image_steps", images);
    span.attr("result_nodes",
              static_cast<std::uint64_t>(reached.node_count()));
  }
  return reached;
}

bdd::Bdd Space::forward_reachable(const TransitionRelation& rel,
                                  const bdd::Bdd& from) {
  if (!rel.scheduled()) {
    if (rel.part_count() == 1) {
      return forward_reachable(rel.flat_parts()[0], from);
    }
    return forward_reachable(rel.flat_parts(), from);
  }
  LR_TRACE_SPAN_NAMED(span, "space.forward_reachable_partitioned");
  freeze();
  std::uint64_t images = 0;
  bdd::Bdd reached = from;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const RelationPart& part : rel.parts()) {
      // Chaotic iteration: saturate this part before moving to the next
      // (same schedule as the span overload above).
      while (true) {
        const bdd::Bdd fresh = image_part(part, reached).minus(reached);
        ++images;
        if (fresh.is_false()) break;
        reached |= fresh;
        changed = true;
      }
    }
  }
  if (support::trace::enabled()) {
    span.attr("partitions", static_cast<std::uint64_t>(rel.part_count()));
    span.attr("image_steps", images);
    span.attr("result_nodes",
              static_cast<std::uint64_t>(reached.node_count()));
  }
  return reached;
}

bdd::Bdd Space::backward_reachable(const bdd::Bdd& rel, const bdd::Bdd& to) {
  LR_TRACE_SPAN_NAMED(span, "space.backward_reachable");
  std::uint64_t iterations = 0;
  bdd::Bdd reached = to;
  bdd::Bdd frontier = to;
  while (!frontier.is_false()) {
    frontier = preimage(rel, frontier).minus(reached);
    reached |= frontier;
    ++iterations;
  }
  if (support::trace::enabled()) {
    span.attr("iterations", iterations);
    span.attr("result_nodes",
              static_cast<std::uint64_t>(reached.node_count()));
  }
  return reached;
}

bdd::Bdd Space::has_successor_in(const bdd::Bdd& rel, const bdd::Bdd& set) {
  return set & preimage(rel, set);
}

bdd::Bdd Space::has_successor_in(std::span<const bdd::Bdd> rels,
                                 const bdd::Bdd& set) {
  return set & preimage(rels, set);
}

bdd::Bdd Space::has_successor_in(const TransitionRelation& rel,
                                 const bdd::Bdd& set) {
  return set & preimage(rel, set);
}

bdd::Bdd Space::has_successor_in_local(const bdd::Bdd& rel,
                                       const bdd::Bdd& set) {
  freeze();
  return set & mgr_.and_exists(rel, prime(set), cube_next_);
}

void Space::enable_intra(std::size_t jobs) {
  freeze();
  // Profiled runs drive the engine even single-threaded: the engine's
  // work-to-context assignment is thread-count invariant, so a profiled
  // sequential run charges exactly the counters a --par-intra run does and
  // their flamegraphs compare byte-for-byte.
  if (jobs <= 1 && !bdd::profile::enabled()) {
    intra_.reset();
    return;
  }
  if (jobs < 1) jobs = 1;
  if (intra_ != nullptr && intra_->jobs() == jobs) return;
  intra_ = std::make_unique<IntraEngine>(mgr_, jobs, cur_bit_list_,
                                         next_bit_list_, swap_perm_vec_);
}

std::size_t Space::intra_jobs() const noexcept {
  return intra_ != nullptr ? intra_->jobs() : 1;
}

double Space::count_states(const bdd::Bdd& set) {
  freeze();
  // Conjoining validity keeps invalid encodings of non-power-of-two domains
  // out of the count and guarantees the support is within current bits.
  bdd::Bdd counted = set & valid_cur_;
  return mgr_.sat_count(counted, bits_per_state_);
}

double Space::count_transitions(const bdd::Bdd& rel) {
  freeze();
  bdd::Bdd counted = rel & valid_cur_ & valid_next_;
  return mgr_.sat_count(counted, 2 * bits_per_state_);
}

void Space::foreach_state(
    const bdd::Bdd& set,
    const std::function<void(std::span<const std::uint32_t>)>& fn) {
  freeze();
  const bdd::Bdd constrained = set & valid_cur_;
  std::vector<std::uint32_t> values(vars_.size());
  // foreach_minterm presents the cube's variables in *level* order, which
  // is declaration order only until someone reorders; build the decode
  // table from the current levels.
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> order;
  order.reserve(bits_per_state_);
  for (std::uint32_t v = 0; v < vars_.size(); ++v) {
    for (std::uint32_t b = 0; b < vars_[v].bits; ++b) {
      order.push_back({mgr_.level_of(vars_[v].cur_bits[b]), v, b});
    }
  }
  std::sort(order.begin(), order.end());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> decode;
  decode.reserve(order.size());
  for (const auto& [level, v, b] : order) decode.push_back({v, b});
  mgr_.foreach_minterm(constrained, cube_cur_,
                       [&](std::span<const bool> bits) {
                         std::fill(values.begin(), values.end(), 0u);
                         for (std::size_t i = 0; i < bits.size(); ++i) {
                           if (bits[i]) {
                             values[decode[i].first] |= 1u << decode[i].second;
                           }
                         }
                         fn(values);
                       });
}

void Space::foreach_transition(
    const bdd::Bdd& rel,
    const std::function<void(std::span<const std::uint32_t>,
                             std::span<const std::uint32_t>)>& fn) {
  freeze();
  const bdd::Bdd constrained = rel & valid_cur_ & valid_next_;
  const bdd::Bdd both = cube_cur_ & cube_next_;
  std::vector<std::uint32_t> from(vars_.size());
  std::vector<std::uint32_t> to(vars_.size());
  // Decode table in *level* order (see foreach_state).
  std::vector<std::tuple<std::uint32_t, bool, std::uint32_t, std::uint32_t>>
      order;
  order.reserve(2 * bits_per_state_);
  for (std::uint32_t v = 0; v < vars_.size(); ++v) {
    for (std::uint32_t b = 0; b < vars_[v].bits; ++b) {
      order.push_back({mgr_.level_of(vars_[v].cur_bits[b]), false, v, b});
      order.push_back({mgr_.level_of(vars_[v].next_bits[b]), true, v, b});
    }
  }
  std::sort(order.begin(), order.end());
  std::vector<std::tuple<bool, std::uint32_t, std::uint32_t>> decode;
  decode.reserve(order.size());
  for (const auto& [level, is_next, v, b] : order) {
    decode.push_back({is_next, v, b});
  }
  mgr_.foreach_minterm(
      constrained, both, [&](std::span<const bool> bits) {
        std::fill(from.begin(), from.end(), 0u);
        std::fill(to.begin(), to.end(), 0u);
        for (std::size_t i = 0; i < bits.size(); ++i) {
          if (!bits[i]) continue;
          const auto& [is_next, v, b] = decode[i];
          (is_next ? to : from)[v] |= 1u << b;
        }
        fn(from, to);
      });
}

bdd::Bdd Space::state(std::span<const std::uint32_t> values, Version ver) {
  if (values.size() != vars_.size()) {
    throw std::invalid_argument("Space::state: one value per variable");
  }
  bdd::Bdd result = mgr_.bdd_true();
  for (VarId v = 0; v < vars_.size(); ++v) {
    result &= value_eq(v, values[v], ver);
  }
  return result;
}

bdd::Bdd Space::transition(std::span<const std::uint32_t> from,
                           std::span<const std::uint32_t> to) {
  return state(from, Version::kCurrent) & state(to, Version::kNext);
}

std::string Space::state_to_string(
    std::span<const std::uint32_t> values) const {
  std::string out;
  for (VarId v = 0; v < vars_.size() && v < values.size(); ++v) {
    if (v > 0) out += ", ";
    out += vars_[v].name + "=" + std::to_string(values[v]);
  }
  return out;
}

std::optional<std::vector<std::uint32_t>> Space::witness_state(
    const bdd::Bdd& set) {
  freeze();
  const std::vector<signed char> bits =
      bdd::sat_one(mgr_, set & valid_cur_);
  if (bits.empty()) return std::nullopt;
  std::vector<std::uint32_t> values(vars_.size(), 0u);
  for (VarId v = 0; v < vars_.size(); ++v) {
    for (std::uint32_t b = 0; b < vars_[v].bits; ++b) {
      // Don't-care bits stay 0: any value on the chosen path satisfies the
      // predicate, and 0 keeps the value inside every domain.
      if (bits[vars_[v].cur_bits[b]] == 1) values[v] |= 1u << b;
    }
  }
  return values;
}

std::optional<std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>>
Space::witness_transition(const bdd::Bdd& rel) {
  freeze();
  const std::vector<signed char> bits =
      bdd::sat_one(mgr_, rel & valid_cur_ & valid_next_);
  if (bits.empty()) return std::nullopt;
  std::vector<std::uint32_t> from(vars_.size(), 0u);
  std::vector<std::uint32_t> to(vars_.size(), 0u);
  for (VarId v = 0; v < vars_.size(); ++v) {
    for (std::uint32_t b = 0; b < vars_[v].bits; ++b) {
      if (bits[vars_[v].cur_bits[b]] == 1) from[v] |= 1u << b;
      if (bits[vars_[v].next_bits[b]] == 1) to[v] |= 1u << b;
    }
  }
  return std::make_pair(std::move(from), std::move(to));
}

}  // namespace lr::sym
