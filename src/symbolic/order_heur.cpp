#include "symbolic/order_heur.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace lr::sym::order {

namespace {

/// Expands a program-variable order to the bit-level order, preserving the
/// per-variable current/next interleaving (b0, b0', b1, b1', ...).
std::vector<bdd::VarIndex> expand_bits(const Space& space,
                                       std::span<const VarId> var_order) {
  std::vector<bdd::VarIndex> out;
  out.reserve(2 * space.bits_per_state());
  for (const VarId v : var_order) {
    const VariableInfo& info = space.info(v);
    for (std::uint32_t k = 0; k < info.bits; ++k) {
      out.push_back(info.cur_bits[k]);
      out.push_back(info.next_bits[k]);
    }
  }
  return out;
}

std::vector<VarId> declaration_order(const Space& space) {
  std::vector<VarId> order(space.variable_count());
  for (VarId v = 0; v < order.size(); ++v) order[v] = v;
  return order;
}

/// Process locality: walk the processes in declaration order and place each
/// one's written variables, then its read variables, first-come-first-
/// placed. Ring/tree/star models declare their processes along the
/// topology, so neighbors land next to each other.
std::vector<VarId> interleave_order(const Space& space,
                                    const Structure& structure) {
  std::vector<VarId> order;
  order.reserve(space.variable_count());
  std::vector<bool> placed(space.variable_count(), false);
  const auto place = [&](VarId v) {
    if (v < placed.size() && !placed[v]) {
      placed[v] = true;
      order.push_back(v);
    }
  };
  for (const std::vector<VarId>& vars : structure.process_vars) {
    for (const VarId v : vars) place(v);
  }
  for (VarId v = 0; v < space.variable_count(); ++v) place(v);
  return order;
}

/// Weighted-adjacency greedy placement: build a co-occurrence graph over
/// the action support sets (each set contributes weight 1/(|A|-1) per pair,
/// so one hub action over n variables does not drown out tight pairwise
/// couplings), then grow the order from the heaviest variable by always
/// appending the unplaced variable most connected to the placed prefix.
/// All tie-breaks are deterministic (degree, then declaration order).
std::vector<VarId> adjacency_order(const Space& space,
                                   const Structure& structure) {
  const std::size_t n = space.variable_count();
  if (n == 0) return {};
  std::vector<double> weight(n * n, 0.0);
  for (const std::vector<VarId>& vars : structure.action_vars) {
    if (vars.size() < 2) continue;
    const double w = 1.0 / static_cast<double>(vars.size() - 1);
    for (std::size_t i = 0; i < vars.size(); ++i) {
      for (std::size_t j = i + 1; j < vars.size(); ++j) {
        weight[vars[i] * n + vars[j]] += w;
        weight[vars[j] * n + vars[i]] += w;
      }
    }
  }
  std::vector<double> degree(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t u = 0; u < n; ++u) degree[v] += weight[v * n + u];
  }

  std::vector<VarId> order;
  order.reserve(n);
  std::vector<bool> placed(n, false);
  std::vector<double> connection(n, 0.0);
  VarId start = 0;
  for (VarId v = 1; v < n; ++v) {
    if (degree[v] > degree[start]) start = v;
  }
  order.push_back(start);
  placed[start] = true;
  for (std::size_t v = 0; v < n; ++v) connection[v] = weight[v * n + start];

  while (order.size() < n) {
    VarId best = n;  // sentinel: no candidate yet
    for (VarId v = 0; v < n; ++v) {
      if (placed[v]) continue;
      if (best == n || connection[v] > connection[best] ||
          (connection[v] == connection[best] &&
           (degree[v] > degree[best] ||
            (degree[v] == degree[best] && v < best)))) {
        best = v;
      }
    }
    order.push_back(best);
    placed[best] = true;
    for (std::size_t v = 0; v < n; ++v) connection[v] += weight[v * n + best];
  }
  return order;
}

Plan make_plan(const Space& space, const Structure& structure, Mode requested,
               Mode chosen, std::vector<VarId> var_order) {
  Plan plan;
  plan.requested = requested;
  plan.chosen = chosen;
  plan.var_order = std::move(var_order);
  plan.var_at_level = expand_bits(space, plan.var_order);
  plan.span_cost = span_cost(space, structure, plan.var_at_level);
  plan.decl_span_cost =
      span_cost(space, structure, expand_bits(space, declaration_order(space)));
  return plan;
}

}  // namespace

const char* mode_name(Mode mode) noexcept {
  switch (mode) {
    case Mode::kDecl: return "decl";
    case Mode::kAuto: return "auto";
    case Mode::kInterleave: return "interleave";
    case Mode::kAdjacency: return "adjacency";
    case Mode::kFile: break;
  }
  return "file";
}

std::optional<Mode> parse_mode(std::string_view name) noexcept {
  if (name == "decl") return Mode::kDecl;
  if (name == "auto") return Mode::kAuto;
  if (name == "interleave") return Mode::kInterleave;
  if (name == "adjacency") return Mode::kAdjacency;
  return std::nullopt;
}

std::vector<std::string> bit_labels(const Space& space) {
  std::vector<std::string> labels(2 * space.bits_per_state());
  for (VarId v = 0; v < space.variable_count(); ++v) {
    const VariableInfo& info = space.info(v);
    for (std::uint32_t k = 0; k < info.bits; ++k) {
      labels[info.cur_bits[k]] = info.name + "." + std::to_string(k);
      labels[info.next_bits[k]] = info.name + "." + std::to_string(k) + "'";
    }
  }
  return labels;
}

double span_cost(const Space& space, const Structure& structure,
                 std::span<const bdd::VarIndex> var_at_level) {
  std::vector<std::uint32_t> level_of(var_at_level.size());
  for (std::uint32_t level = 0; level < var_at_level.size(); ++level) {
    level_of[var_at_level[level]] = level;
  }
  double cost = 0.0;
  for (const std::vector<VarId>& vars : structure.action_vars) {
    if (vars.empty()) continue;
    std::uint32_t lo = static_cast<std::uint32_t>(var_at_level.size());
    std::uint32_t hi = 0;
    for (const VarId v : vars) {
      const VariableInfo& info = space.info(v);
      for (std::uint32_t k = 0; k < info.bits; ++k) {
        lo = std::min({lo, level_of[info.cur_bits[k]],
                       level_of[info.next_bits[k]]});
        hi = std::max({hi, level_of[info.cur_bits[k]],
                       level_of[info.next_bits[k]]});
      }
    }
    cost += static_cast<double>(hi - lo + 1);
  }
  return cost;
}

Plan plan_order(const Space& space, const Structure& structure, Mode mode) {
  switch (mode) {
    case Mode::kDecl:
      return make_plan(space, structure, mode, mode,
                       declaration_order(space));
    case Mode::kInterleave:
      return make_plan(space, structure, mode, mode,
                       interleave_order(space, structure));
    case Mode::kAdjacency:
      return make_plan(space, structure, mode, mode,
                       adjacency_order(space, structure));
    case Mode::kAuto: {
      // Score the candidates with the static proxy; declaration order wins
      // ties so `auto` never pays swap work without predicted benefit.
      Plan best = make_plan(space, structure, Mode::kAuto, Mode::kDecl,
                            declaration_order(space));
      for (const Mode candidate : {Mode::kInterleave, Mode::kAdjacency}) {
        Plan plan = plan_order(space, structure, candidate);
        if (plan.span_cost < best.span_cost) {
          plan.requested = Mode::kAuto;
          best = std::move(plan);
        }
      }
      return best;
    }
    case Mode::kFile:
      throw std::invalid_argument(
          "plan_order: kFile needs a loaded profile (plan_from_labels)");
  }
  throw std::invalid_argument("plan_order: unknown mode");
}

Plan plan_from_labels(const Space& space, const Structure& structure,
                      std::span<const bdd::order::ProfileLevel> levels) {
  const std::vector<std::string> labels = bit_labels(space);
  std::unordered_map<std::string, bdd::VarIndex> index_of;
  for (bdd::VarIndex v = 0; v < labels.size(); ++v) index_of[labels[v]] = v;
  if (levels.size() != labels.size()) {
    throw std::runtime_error(
        "order profile does not match this model: expected " +
        std::to_string(labels.size()) + " levels, got " +
        std::to_string(levels.size()));
  }

  Plan plan;
  plan.requested = Mode::kFile;
  plan.chosen = Mode::kFile;
  plan.var_at_level.reserve(levels.size());
  std::vector<bool> seen(labels.size(), false);
  for (const bdd::order::ProfileLevel& level : levels) {
    const auto it = index_of.find(level.label);
    if (it == index_of.end()) {
      throw std::runtime_error("order profile names unknown bit '" +
                               level.label + "'");
    }
    if (seen[it->second]) {
      throw std::runtime_error("order profile lists bit '" + level.label +
                               "' twice");
    }
    seen[it->second] = true;
    plan.var_at_level.push_back(it->second);
  }

  // Program-variable order for reporting: first appearance of each
  // variable's bits in the level order.
  std::vector<VarId> owner(labels.size(), 0);
  for (VarId v = 0; v < space.variable_count(); ++v) {
    const VariableInfo& info = space.info(v);
    for (std::uint32_t k = 0; k < info.bits; ++k) {
      owner[info.cur_bits[k]] = v;
      owner[info.next_bits[k]] = v;
    }
  }
  std::vector<bool> listed(space.variable_count(), false);
  for (const bdd::VarIndex bit : plan.var_at_level) {
    const VarId v = owner[bit];
    if (!listed[v]) {
      listed[v] = true;
      plan.var_order.push_back(v);
    }
  }
  plan.span_cost = span_cost(space, structure, plan.var_at_level);
  plan.decl_span_cost =
      span_cost(space, structure, expand_bits(space, declaration_order(space)));
  return plan;
}

std::size_t apply_plan(Space& space, const Plan& plan) {
  if (plan.var_at_level.empty()) return 0;
  return bdd::order::apply_order(space.manager(), plan.var_at_level);
}

std::vector<double> predicted_level_pressure(Space& space,
                                             const Structure& structure) {
  bdd::Manager& mgr = space.manager();
  std::vector<double> pressure(2 * space.bits_per_state(), 0.0);
  for (const std::vector<VarId>& vars : structure.action_vars) {
    if (vars.empty()) continue;
    std::uint32_t lo = static_cast<std::uint32_t>(pressure.size());
    std::uint32_t hi = 0;
    for (const VarId v : vars) {
      const VariableInfo& info = space.info(v);
      for (std::uint32_t k = 0; k < info.bits; ++k) {
        lo = std::min({lo, mgr.level_of(info.cur_bits[k]),
                       mgr.level_of(info.next_bits[k])});
        hi = std::max({hi, mgr.level_of(info.cur_bits[k]),
                       mgr.level_of(info.next_bits[k])});
      }
    }
    for (std::uint32_t level = lo; level <= hi && level < pressure.size();
         ++level) {
      pressure[level] += 1.0;
    }
  }
  return pressure;
}

}  // namespace lr::sym::order
