#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "bdd/bdd.hpp"

namespace lr::sym {

class IntraEngine;
class TransitionRelation;
struct RelationPart;

/// Identifier of a finite-domain program variable within a Space.
using VarId = std::uint32_t;

/// Which copy of the state a formula talks about: the pre-state (current)
/// or the post-state (next) of a transition.
enum class Version { kCurrent, kNext };

/// Metadata for one finite-domain variable.
struct VariableInfo {
  std::string name;
  std::uint32_t domain = 0;  ///< values are 0 .. domain-1
  std::uint32_t bits = 0;    ///< ceil(log2(domain)), at least 1
  std::vector<bdd::VarIndex> cur_bits;   ///< LSB first
  std::vector<bdd::VarIndex> next_bits;  ///< LSB first
};

/// A symbolic state space over finite-domain variables (Definition 16).
///
/// Every program variable with domain D is log-encoded into ceil(log2 D)
/// boolean variables; each boolean variable exists in a *current* and a
/// *next* copy, and the copies are interleaved in the BDD order
/// (b0, b0', b1, b1', ...) — the standard ordering for transition
/// relations. State predicates are BDDs over current bits; transition
/// predicates are BDDs over current and next bits.
///
/// The Space owns its BDD manager: one synthesis problem = one Space = one
/// manager, which matches the paper's tool structure and keeps lifetimes
/// trivial. After the first query that needs whole-space structures (cubes,
/// the prime/unprime permutation), the variable set is frozen and
/// add_variable() throws.
class Space {
 public:
  explicit Space(bdd::Manager::Options options = {});
  ~Space();  // out of line: IntraEngine is incomplete here

  Space(const Space&) = delete;
  Space& operator=(const Space&) = delete;

  /// Declares a variable with values 0..domain-1. Allocation order defines
  /// the BDD variable order, so callers should declare interacting
  /// variables (e.g. chain neighbors) consecutively.
  VarId add_variable(std::string name, std::uint32_t domain);

  [[nodiscard]] const VariableInfo& info(VarId v) const { return vars_.at(v); }
  [[nodiscard]] std::size_t variable_count() const noexcept {
    return vars_.size();
  }
  /// Boolean variables per state copy.
  [[nodiscard]] std::uint32_t bits_per_state() const noexcept {
    return bits_per_state_;
  }
  /// Looks a variable up by name (nullopt when absent).
  [[nodiscard]] std::optional<VarId> find(const std::string& name) const;

  /// Total number of syntactically valid states (product of domains).
  [[nodiscard]] double state_space_size() const;

  // --- Predicate constructors ----------------------------------------------

  [[nodiscard]] bdd::Bdd bdd_true() { return mgr_.bdd_true(); }
  [[nodiscard]] bdd::Bdd bdd_false() { return mgr_.bdd_false(); }

  /// v == value (in the given state copy).
  [[nodiscard]] bdd::Bdd value_eq(VarId v, std::uint32_t value, Version ver);

  /// v < value (unsigned comparison against a constant).
  [[nodiscard]] bdd::Bdd value_lt(VarId v, std::uint32_t value, Version ver);

  /// a (in version va) == b (in version vb); domains may differ, equality
  /// is on the integer value.
  [[nodiscard]] bdd::Bdd vars_eq(VarId a, Version va, VarId b, Version vb);

  /// Transition predicate "v keeps its value": v' == v.
  [[nodiscard]] bdd::Bdd unchanged(VarId v);

  /// Conjunction of unchanged(v) over the given variables.
  [[nodiscard]] bdd::Bdd unchanged(std::span<const VarId> vs);

  /// The identity transition relation (every variable unchanged).
  [[nodiscard]] bdd::Bdd identity();

  /// Conjunction of the domain constraints of all variables in one copy
  /// (true when every domain is a power of two).
  [[nodiscard]] bdd::Bdd valid(Version ver);

  /// valid(kCurrent) ∧ valid(kNext).
  [[nodiscard]] bdd::Bdd valid_pair();

  // --- Cubes and renaming ------------------------------------------------------

  /// Cube of every bit of one state copy (for image/preimage).
  [[nodiscard]] bdd::Bdd cube(Version ver);

  /// Cube of the bits of the given variables in one copy.
  [[nodiscard]] bdd::Bdd cube_of(std::span<const VarId> vs, Version ver);

  /// Cube of the bits of the given variables in both copies.
  [[nodiscard]] bdd::Bdd cube_pair_of(std::span<const VarId> vs);

  /// Renames current bits to next bits. `state` must only depend on
  /// current bits.
  [[nodiscard]] bdd::Bdd prime(const bdd::Bdd& state);

  /// Renames next bits to current bits. `state` must only depend on next
  /// bits.
  [[nodiscard]] bdd::Bdd unprime(const bdd::Bdd& state);

  // --- Relational operations ------------------------------------------------------

  /// States reachable from `from` in exactly one step of `rel`
  /// (a current-version state predicate). With intra sharding enabled
  /// (see enable_intra) a large relation is transparently split into
  /// disjuncts and computed on the worker pool; the result is bit-identical
  /// (BDD canonicity) to the sequential product.
  [[nodiscard]] bdd::Bdd image(const bdd::Bdd& rel, const bdd::Bdd& from);

  /// States with at least one `rel` successor inside `to`. Shards like
  /// image() when intra sharding is enabled.
  [[nodiscard]] bdd::Bdd preimage(const bdd::Bdd& rel, const bdd::Bdd& to);

  /// Image over a *partitioned* relation: ∪_i image(rels[i], from).
  /// Sequentially reduced in partition order when intra sharding is off;
  /// dispatched onto the worker pool when on. Identical result either way.
  [[nodiscard]] bdd::Bdd image(std::span<const bdd::Bdd> rels,
                               const bdd::Bdd& from);

  /// Preimage over a partitioned relation: ∪_i preimage(rels[i], to).
  [[nodiscard]] bdd::Bdd preimage(std::span<const bdd::Bdd> rels,
                                  const bdd::Bdd& to);

  // --- Relation-aware overloads (symbolic/relation.hpp) --------------------
  //
  // A scheduled TransitionRelation interleaves quantification with
  // conjunction: per part, the bits outside the part's support are
  // quantified out of the operand first, then a combined and-exists over
  // the part's conjuncts quantifies only the support-local bits. An
  // unscheduled (mono) relation falls through to the flat overloads above,
  // reproducing the historical execution path exactly. Either way the
  // results are the same canonical sets.

  /// Image over a TransitionRelation (∪ over parts).
  [[nodiscard]] bdd::Bdd image(const TransitionRelation& rel,
                               const bdd::Bdd& from);

  /// Preimage over a TransitionRelation (∪ over parts).
  [[nodiscard]] bdd::Bdd preimage(const TransitionRelation& rel,
                                  const bdd::Bdd& to);

  /// Least fixpoint of `from ∪ image(rel, ·)` (forward reachability).
  [[nodiscard]] bdd::Bdd forward_reachable(const bdd::Bdd& rel,
                                           const bdd::Bdd& from);

  /// Forward reachability over a *partitioned* relation (one BDD per
  /// action/process), computed by chaotic iteration: each partition is
  /// saturated in turn until a global fixpoint. Produces the same set as
  /// forward_reachable(∪ rels, from) but avoids the frontier blow-up of
  /// breadth-first search on loosely-coupled relations (orders of magnitude
  /// faster on havoc-style fault structures).
  [[nodiscard]] bdd::Bdd forward_reachable(std::span<const bdd::Bdd> rels,
                                           const bdd::Bdd& from);

  /// Forward reachability over a TransitionRelation: chaotic per-part
  /// saturation when the relation has several parts (scheduled or not),
  /// breadth-first on the single part otherwise.
  [[nodiscard]] bdd::Bdd forward_reachable(const TransitionRelation& rel,
                                           const bdd::Bdd& from);

  /// Least fixpoint of `to ∪ preimage(rel, ·)` (backward reachability).
  [[nodiscard]] bdd::Bdd backward_reachable(const bdd::Bdd& rel,
                                            const bdd::Bdd& to);

  /// States of `set` that have at least one `rel`-successor within `set`
  /// — i.e. set ∩ preimage(rel, set). Used by livelock (νZ) fixpoints.
  [[nodiscard]] bdd::Bdd has_successor_in(const bdd::Bdd& rel,
                                          const bdd::Bdd& set);

  /// Partitioned form: set ∩ ∪_i preimage(rels[i], set). The νZ fixpoints
  /// use this to avoid ever building the monolithic ∪_i rels[i] product.
  [[nodiscard]] bdd::Bdd has_successor_in(std::span<const bdd::Bdd> rels,
                                          const bdd::Bdd& set);

  /// TransitionRelation form: set ∩ preimage(rel, set).
  [[nodiscard]] bdd::Bdd has_successor_in(const TransitionRelation& rel,
                                          const bdd::Bdd& set);

  /// has_successor_in computed monolithically on the main manager even
  /// when intra sharding is on. Fixpoints whose iterate changes little per
  /// step (livelock νZ) are faster this way: the main op cache absorbs
  /// repeat iterations almost entirely, while worker dispatch would
  /// re-materialize every per-piece preimage each iteration.
  [[nodiscard]] bdd::Bdd has_successor_in_local(const bdd::Bdd& rel,
                                               const bdd::Bdd& set);

  // --- Intra-problem sharding ------------------------------------------------

  /// Enables (jobs >= 2) or disables (jobs <= 1) work-sharded image and
  /// preimage computation on a per-Space worker pool (see
  /// symbolic/intra.hpp). Freezes the space. Results are bit-identical to
  /// the sequential path in either mode; only wall-clock and memory
  /// behavior change. Idempotent per jobs value.
  ///
  /// Exception: while profiling is on (bdd::profile::enabled()), jobs <= 1
  /// still engages the engine with a one-thread pool. The engine's
  /// work-to-context assignment is invariant in the thread count, so a
  /// profiled sequential run and a profiled --par-intra run charge
  /// identical counters and export byte-identical flamegraphs.
  void enable_intra(std::size_t jobs);

  /// Pool thread count of the sharded path (1 = sequential execution —
  /// though the engine may still be active under profiling, see
  /// enable_intra). Algorithm selection must use intra_active() instead.
  [[nodiscard]] std::size_t intra_jobs() const noexcept;

  /// True when the sharding engine is active, whatever its thread count.
  /// The branch condition for sharded-vs-monolithic plans: both profiled
  /// modes agree on it, keeping their op sequences identical.
  [[nodiscard]] bool intra_active() const noexcept {
    return intra_ != nullptr;
  }

  /// The sharding engine, or nullptr when sequential. The repair layer
  /// uses it directly for parallel per-process group enumeration.
  [[nodiscard]] IntraEngine* intra() noexcept { return intra_.get(); }

  // --- Counting and enumeration -----------------------------------------------------

  /// Number of valid states in a state predicate.
  [[nodiscard]] double count_states(const bdd::Bdd& set);

  /// Number of valid (s, s') pairs in a transition predicate.
  [[nodiscard]] double count_transitions(const bdd::Bdd& rel);

  /// Calls fn with the variable values of every valid state in `set`
  /// (exponential; small spaces only).
  void foreach_state(const bdd::Bdd& set,
                     const std::function<void(std::span<const std::uint32_t>)>& fn);

  /// Calls fn(from_values, to_values) for every valid transition in `rel`.
  void foreach_transition(
      const bdd::Bdd& rel,
      const std::function<void(std::span<const std::uint32_t>,
                               std::span<const std::uint32_t>)>& fn);

  /// The minterm of one concrete state (values listed per variable).
  [[nodiscard]] bdd::Bdd state(std::span<const std::uint32_t> values,
                               Version ver = Version::kCurrent);

  /// The minterm of one concrete transition.
  [[nodiscard]] bdd::Bdd transition(std::span<const std::uint32_t> from,
                                    std::span<const std::uint32_t> to);

  /// Human-readable "name=value, ..." rendering of a concrete state.
  [[nodiscard]] std::string state_to_string(
      std::span<const std::uint32_t> values) const;

  /// One concrete valid state of `set` (nullopt when empty), decoded to
  /// per-variable values. Deterministic: bdd::sat_one path, don't-care
  /// bits fixed to 0 — the journal's witness-state extractor.
  [[nodiscard]] std::optional<std::vector<std::uint32_t>> witness_state(
      const bdd::Bdd& set);

  /// One concrete valid (from, to) transition of `rel` (nullopt when
  /// empty), decoded like witness_state.
  [[nodiscard]] std::optional<
      std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>>
  witness_transition(const bdd::Bdd& rel);

  /// The underlying BDD manager (tests, statistics).
  [[nodiscard]] bdd::Manager& manager() noexcept { return mgr_; }

 private:
  void freeze();
  [[nodiscard]] const std::vector<bdd::VarIndex>& bits_of(VarId v,
                                                          Version ver) const {
    return ver == Version::kCurrent ? vars_[v].cur_bits : vars_[v].next_bits;
  }

  /// Shared union-reduce over a partitioned relation: dispatches to the
  /// intra engine for multi-part relations, otherwise reduces
  /// `step(rels[i])` in partition order — the reference the sharded path
  /// must match bit-for-bit (it does: BDDs are canonical).
  [[nodiscard]] bdd::Bdd union_over_parts(
      std::span<const bdd::Bdd> rels,
      const std::function<bdd::Bdd(std::span<const bdd::Bdd>)>& sharded,
      const std::function<bdd::Bdd(const bdd::Bdd&)>& step);

  /// Early-quantified image/preimage of one scheduled part (see
  /// symbolic/relation.hpp). With the intra engine active the part is
  /// Shannon-sharded into scheduled pieces (the shards inherit the part's
  /// quantification cubes — a cofactor's support never grows).
  [[nodiscard]] bdd::Bdd image_part(const RelationPart& part,
                                    const bdd::Bdd& from);
  [[nodiscard]] bdd::Bdd preimage_part(const RelationPart& part,
                                       const bdd::Bdd& to_primed);

  bdd::Manager mgr_;
  std::vector<VariableInfo> vars_;
  std::uint32_t bits_per_state_ = 0;
  bool frozen_ = false;

  // Lazily built after freeze().
  bdd::Bdd cube_cur_;
  bdd::Bdd cube_next_;
  bdd::Bdd valid_cur_;
  bdd::Bdd valid_next_;
  bdd::Bdd identity_;
  std::optional<bdd::PermId> swap_perm_;
  // Saved for mirroring the space into intra workers.
  std::vector<bdd::VarIndex> cur_bit_list_;
  std::vector<bdd::VarIndex> next_bit_list_;
  std::vector<bdd::VarIndex> swap_perm_vec_;
  std::unique_ptr<IntraEngine> intra_;
};

}  // namespace lr::sym
