#pragma once

// First-class partitioned transition relations with a static
// early-quantification schedule.
//
// The repair algorithms historically passed transition relations around as
// ad-hoc `bdd::Bdd` values or `std::span<const bdd::Bdd>` partitions. A
// TransitionRelation makes the partition explicit: it owns a disjunctive
// list of parts, each part a (small) conjunction of factors that is never
// materialized when a combined and-exists can consume the factors
// directly, plus per-part "can-quantify-now" cubes derived from the parts'
// support sets. An image over a part only mentions the state bits the part
// actually reads/writes, so the bits *outside* its support can be
// quantified out of the operand set before the product — the standard
// early-quantification optimization for partitioned relations.
//
// Soundness of the schedule: for a part R with support S,
//   ∃cur. (R ∧ from) = ∃(cur∩S). (R ∧ ∃(cur\S). from)
// because R is independent of cur\S. The supports are computed from the
// *compiled* BDDs (bdd::Manager::support), not from parsed declarations,
// so the schedule stays exact for algorithm-built parts (e.g. a process
// delta minus a banned-transition set). The parsed structure
// (order_heur's support analysis) guides how the repair layer *groups*
// actions into parts; the cubes themselves never over-approximate.
//
// Representation modes: a relation is built either `scheduled` (the
// partitioned representation above) or flat (mono) — the exact pre-refactor
// call shapes, kept so `--rel=mono` reproduces the historical execution
// path and the differential suite can compare the two. Both paths compute
// the same canonical sets, so exports, journals and non-timing metrics are
// byte-identical by construction.

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "bdd/bdd.hpp"
#include "symbolic/space.hpp"

namespace lr::sym {

/// Which transition-relation representation the engine executes with.
enum class RelationMode {
  kMono,       ///< flat per-part BDDs, no early-quantification schedule
  kPartition,  ///< scheduled conjunctive/disjunctive partition
  kAuto,       ///< partition when the program has >= 2 parts, else mono
};

[[nodiscard]] const char* relation_mode_name(RelationMode mode) noexcept;
[[nodiscard]] std::optional<RelationMode> parse_relation_mode(
    std::string_view name) noexcept;

/// Resolves kAuto against the partition width: partitioning only pays when
/// there is more than one part to schedule around.
[[nodiscard]] RelationMode resolve_relation_mode(RelationMode requested,
                                                 std::size_t parts) noexcept;

/// One disjunctive part: a conjunction of factors plus its
/// early-quantification cubes. `local_*` cubes cover the state bits inside
/// the part's support (quantified during the product), `absent_*` cubes the
/// bits outside it (quantified out of the operand before the product).
/// The cube handles are only populated on scheduled relations.
struct RelationPart {
  std::vector<bdd::Bdd> conjuncts;
  bdd::Bdd local_cur_cube;
  bdd::Bdd absent_cur_cube;
  bdd::Bdd local_next_cube;
  bdd::Bdd absent_next_cube;
  std::size_t support_bits = 0;  ///< |support| over cur+next bits
};

/// Partition-shape summary (metrics, journal header, --stats report).
/// Describes the *relation*, not the execution mode, so both modes report
/// identical shapes for the same program.
struct RelationShape {
  std::size_t parts = 0;
  std::size_t conjuncts = 0;
  std::size_t min_support_bits = 0;
  std::size_t max_support_bits = 0;
  double avg_support_bits = 0.0;
  /// Sum over parts of the bits *outside* the part's support — the bits
  /// the schedule quantifies before the product. 0 means partitioning
  /// cannot help (every part touches every bit).
  std::size_t schedulable_bits = 0;
  std::size_t total_bits = 0;  ///< 2 * bits_per_state
};

/// A transition relation as an explicit disjunctive partition of
/// conjunctive parts. See the file comment for the representation contract.
class TransitionRelation {
 public:
  /// An empty relation to grow with add_part(). `mode` must already be
  /// resolved (kMono or kPartition, not kAuto).
  TransitionRelation(Space& space, RelationMode mode);

  /// A single flat part, no schedule (the historical call shape).
  [[nodiscard]] static TransitionRelation monolithic(Space& space,
                                                     bdd::Bdd rel);

  /// One scheduled part per entry of `parts`.
  [[nodiscard]] static TransitionRelation partitioned(
      Space& space, std::span<const bdd::Bdd> parts);

  /// Mode-resolving factory: builds scheduled parts under kPartition (or
  /// kAuto with >= 2 parts) and flat parts otherwise.
  [[nodiscard]] static TransitionRelation build(Space& space,
                                                std::span<const bdd::Bdd> parts,
                                                RelationMode mode);

  /// Appends one part. Scheduled relations keep the conjuncts separate and
  /// compute the part's quantification cubes from the union of their
  /// supports; mono relations conjoin them immediately (the historical
  /// shape). Multi-factor parts are how call sites avoid materializing
  /// products like `delta ∧ prime(invariant)`.
  void add_part(std::span<const bdd::Bdd> conjuncts);
  void add_part(const bdd::Bdd& a);
  void add_part(const bdd::Bdd& a, const bdd::Bdd& b);

  [[nodiscard]] bool scheduled() const noexcept { return scheduled_; }
  [[nodiscard]] RelationMode mode() const noexcept {
    return scheduled_ ? RelationMode::kPartition : RelationMode::kMono;
  }
  [[nodiscard]] const std::vector<RelationPart>& parts() const noexcept {
    return parts_;
  }
  [[nodiscard]] std::size_t part_count() const noexcept {
    return parts_.size();
  }
  [[nodiscard]] Space& space() const noexcept { return *space_; }

  /// One BDD per part (multi-factor parts conjoined on demand, cached).
  [[nodiscard]] std::span<const bdd::Bdd> flat_parts() const;

  /// The whole relation as one BDD (union of flat parts, cached). Call
  /// sites that genuinely need the monolithic product (e.g. transition
  /// subtraction against the full relation) use this; image/preimage never
  /// do.
  [[nodiscard]] const bdd::Bdd& flat() const;

  /// Partition-shape summary. Supports are computed on demand for mono
  /// relations so both modes describe the same program identically.
  [[nodiscard]] RelationShape shape() const;

 private:
  Space* space_;
  bool scheduled_;
  std::vector<RelationPart> parts_;
  mutable std::vector<bdd::Bdd> flat_parts_;
  mutable bdd::Bdd flat_;
};

}  // namespace lr::sym
