#pragma once

// Intra-problem work sharding: one persistent worker pool whose threads
// each own a private bdd::Manager mirroring the main manager's variable
// order. The engine shards partitioned image/preimage computation (and any
// caller-supplied per-item work, e.g. realize's per-process group
// enumeration) across the workers and reduces the partial results back
// into the main manager in a fixed partition order.
//
// Determinism: BDDs are canonical, so a worker whose manager has the same
// variable *level order* as the main manager computes bit-identical node
// structures for the same functions — pick_minterm, leq, exists, all
// decide identically to the sequential path. The reduction therefore
// yields the exact BDD the sequential loop would, and worker-side
// accept/reject decisions match the sequential ones one-for-one.
//
// Concurrency protocol (see also bdd/transfer.hpp):
//   * main thread pins every main-manager root it hands to workers
//     (pinned handles keep GC from sweeping or recycling their node ids);
//   * between dispatch and wait_idle the main thread performs no
//     main-manager operation, so workers may traverse the main node pool
//     read-only via Manager::node_view;
//   * workers never touch main-manager handles (refcounts are not atomic)
//     — they receive raw NodeIds and import them into their own manager;
//   * results flow back after wait_idle, imported sequentially by the
//     main thread while the workers are quiescent.

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/transfer.hpp"
#include "support/thread_pool.hpp"

namespace lr::sym {

class IntraEngine {
 public:
  /// One worker thread's private state. `mgr` mirrors the main manager's
  /// variable count and level order; `memo` caches main->worker imports
  /// (valid while the engine's pin set is intact).
  struct Worker {
    explicit Worker(const bdd::Manager::Options& options) : mgr(options) {}

    bdd::Manager mgr;
    bdd::ImportMemo memo;
    bdd::ImportMemo export_memo;
    /// Roots every function ever exported through `export_memo`: the memo's
    /// keys are worker node ids, which stay valid only while their nodes are
    /// externally referenced (the worker's GC could otherwise recycle them).
    std::vector<bdd::Bdd> export_roots;
    bdd::Bdd cube_cur;
    bdd::Bdd cube_next;
    bdd::PermId swap = 0;
    std::exception_ptr error;
  };

  /// Number of worker contexts (private managers). Fixed — NOT the thread
  /// count — so the work-to-context assignment, each context's op
  /// sequence, and therefore every profiler counter are identical no
  /// matter how many threads execute the contexts. That invariance is what
  /// makes a profiled run's flamegraph byte-identical across --par-intra
  /// values (and against a profiled sequential run, which drives the same
  /// engine with a one-thread pool).
  static constexpr std::size_t kContexts = 8;

  /// kContexts worker managers are created mirroring `main`'s variable
  /// order and executed by a pool of `jobs` >= 1 threads;
  /// `cur_bits`/`next_bits` are the state-copy bit lists and `swap_perm`
  /// the prime/unprime permutation vector of the owning Space.
  IntraEngine(bdd::Manager& main, std::size_t jobs,
              std::vector<bdd::VarIndex> cur_bits,
              std::vector<bdd::VarIndex> next_bits,
              std::vector<bdd::VarIndex> swap_perm);

  ~IntraEngine();

  IntraEngine(const IntraEngine&) = delete;
  IntraEngine& operator=(const IntraEngine&) = delete;

  /// Worker contexts (== kContexts). Work is strided over contexts, so
  /// shard loops use this, never jobs().
  [[nodiscard]] std::size_t contexts() const noexcept {
    return workers_.size();
  }

  /// Pool threads executing the contexts.
  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

  /// Main thread only: keeps `f` (and thus every node reachable from it)
  /// alive and id-stable so workers may import it. Pins accumulate across
  /// calls and are released wholesale (with all worker memos) when the pin
  /// set grows past an internal bound.
  bdd::NodeId pin(const bdd::Bdd& f);

  /// Runs `fn(w, worker)` once per worker on the pool and joins. Worker
  /// exceptions are captured and rethrown here, lowest worker index first.
  /// When profiling is enabled, each task runs under the span that was
  /// current on the dispatching thread, and the worker managers' profiles
  /// are merged into the main manager's profiler after the join.
  void run(const std::function<void(std::size_t, Worker&)>& fn);

  /// Worker-thread side: imports a pinned main-manager node into worker
  /// `w`'s manager (memoized).
  bdd::Bdd import(std::size_t w, bdd::NodeId id);

  /// Main thread, workers quiescent: transfers a worker result back into
  /// the main manager.
  bdd::Bdd export_to_main(std::size_t w, const bdd::Bdd& f);

  /// Sharded OR-reduction of per-partition image: pieces are main-manager
  /// transition relations; returns ∪_i unprime(∃cur. piece_i ∧ from).
  bdd::Bdd image(std::span<const bdd::Bdd> pieces, const bdd::Bdd& from);

  /// Sharded OR-reduction of per-partition preimage: `to_primed` is the
  /// target set already renamed to next bits; returns
  /// ∪_i ∃next. piece_i ∧ to_primed.
  bdd::Bdd preimage(std::span<const bdd::Bdd> pieces,
                    const bdd::Bdd& to_primed);

  /// One disjunctive piece of a scheduled (partitioned) transition
  /// relation: up to two conjuncts plus the piece's early-quantification
  /// cubes (see symbolic/relation.hpp). `b` is an invalid handle when the
  /// piece has a single conjunct; `absent_cube` is the true cube when
  /// nothing can be quantified before the product.
  struct ScheduledPiece {
    bdd::Bdd a;
    bdd::Bdd b;
    bdd::Bdd local_cube;
    bdd::Bdd absent_cube;
  };

  /// Sharded image over scheduled pieces: each worker first quantifies the
  /// piece-absent current bits out of `from`, then runs the combined
  /// and-exists over the piece-local bits only.
  bdd::Bdd image(std::span<const ScheduledPiece> pieces, const bdd::Bdd& from);

  /// Sharded preimage over scheduled pieces (`to_primed` already renamed
  /// to next bits; the piece cubes must be the next-bit ones).
  bdd::Bdd preimage(std::span<const ScheduledPiece> pieces,
                    const bdd::Bdd& to_primed);

  /// Deterministic disjunctive split of one transition relation into at
  /// most `k` disjoint pieces by repeated top-variable cofactoring of the
  /// currently largest piece (ties break to the lowest index). Returns a
  /// single-element vector when the relation is too small to be worth
  /// splitting. Cached per root id; the root is pinned.
  const std::vector<bdd::Bdd>& split_relation(const bdd::Bdd& rel,
                                              std::size_t k);

  /// Node-count floor below which split_relation leaves a relation whole.
  static constexpr std::size_t kSplitThreshold = 256;

 private:
  /// Re-checks that every worker's level order still matches the main
  /// manager's (reorder_sifting may have run); realigns and drops memos
  /// when it does not.
  void sync_order();
  void align_worker(Worker& w);
  void drop_pins();

  bdd::Manager& main_;
  std::size_t jobs_;
  std::vector<std::unique_ptr<Worker>> workers_;
  support::ThreadPool pool_;
  std::vector<bdd::VarIndex> cur_bits_;
  std::vector<bdd::VarIndex> next_bits_;
  std::vector<bdd::VarIndex> swap_perm_;
  std::vector<bdd::VarIndex> order_snapshot_;  // main level -> var
  std::unordered_map<bdd::NodeId, bdd::Bdd> pinned_;
  std::unordered_map<bdd::NodeId, std::vector<bdd::Bdd>> split_cache_;
};

}  // namespace lr::sym
