#include "symbolic/relation.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lr::sym {

const char* relation_mode_name(RelationMode mode) noexcept {
  switch (mode) {
    case RelationMode::kMono:
      return "mono";
    case RelationMode::kPartition:
      return "partition";
    case RelationMode::kAuto:
      return "auto";
  }
  return "?";
}

std::optional<RelationMode> parse_relation_mode(
    std::string_view name) noexcept {
  if (name == "mono") return RelationMode::kMono;
  if (name == "partition") return RelationMode::kPartition;
  if (name == "auto") return RelationMode::kAuto;
  return std::nullopt;
}

RelationMode resolve_relation_mode(RelationMode requested,
                                   std::size_t parts) noexcept {
  if (requested != RelationMode::kAuto) return requested;
  return parts >= 2 ? RelationMode::kPartition : RelationMode::kMono;
}

namespace {

/// Union of the conjuncts' supports, as a per-VarIndex membership mask.
std::vector<bool> support_mask(Space& space,
                               std::span<const bdd::Bdd> conjuncts) {
  bdd::Manager& mgr = space.manager();
  std::vector<bool> mask(mgr.var_count(), false);
  for (const bdd::Bdd& conjunct : conjuncts) {
    for (const bdd::VarIndex v : mgr.support(conjunct)) mask[v] = true;
  }
  return mask;
}

/// Fills a part's quantification cubes and support size from its support
/// mask: bits in the support are quantified during the combined product
/// (local cubes), bits outside it are quantified out of the operand first
/// (absent cubes).
void schedule_part(Space& space, RelationPart& part) {
  const std::vector<bool> mask = support_mask(space, part.conjuncts);
  std::vector<bdd::VarIndex> local_cur;
  std::vector<bdd::VarIndex> absent_cur;
  std::vector<bdd::VarIndex> local_next;
  std::vector<bdd::VarIndex> absent_next;
  std::size_t support_bits = 0;
  for (VarId v = 0; v < space.variable_count(); ++v) {
    const VariableInfo& info = space.info(v);
    for (const bdd::VarIndex bit : info.cur_bits) {
      (mask[bit] ? local_cur : absent_cur).push_back(bit);
    }
    for (const bdd::VarIndex bit : info.next_bits) {
      (mask[bit] ? local_next : absent_next).push_back(bit);
    }
  }
  for (const bool in : mask) {
    if (in) ++support_bits;
  }
  bdd::Manager& mgr = space.manager();
  part.local_cur_cube = mgr.make_cube(local_cur);
  part.absent_cur_cube = mgr.make_cube(absent_cur);
  part.local_next_cube = mgr.make_cube(local_next);
  part.absent_next_cube = mgr.make_cube(absent_next);
  part.support_bits = support_bits;
}

}  // namespace

TransitionRelation::TransitionRelation(Space& space, RelationMode mode)
    : space_(&space), scheduled_(mode == RelationMode::kPartition) {
  assert(mode != RelationMode::kAuto &&
         "TransitionRelation: resolve kAuto before construction");
}

TransitionRelation TransitionRelation::monolithic(Space& space, bdd::Bdd rel) {
  TransitionRelation relation(space, RelationMode::kMono);
  relation.add_part(rel);
  return relation;
}

TransitionRelation TransitionRelation::partitioned(
    Space& space, std::span<const bdd::Bdd> parts) {
  TransitionRelation relation(space, RelationMode::kPartition);
  for (const bdd::Bdd& part : parts) relation.add_part(part);
  return relation;
}

TransitionRelation TransitionRelation::build(Space& space,
                                             std::span<const bdd::Bdd> parts,
                                             RelationMode mode) {
  TransitionRelation relation(space,
                              resolve_relation_mode(mode, parts.size()));
  for (const bdd::Bdd& part : parts) relation.add_part(part);
  return relation;
}

void TransitionRelation::add_part(std::span<const bdd::Bdd> conjuncts) {
  if (conjuncts.empty()) {
    throw std::invalid_argument(
        "TransitionRelation::add_part: a part needs at least one conjunct");
  }
  RelationPart part;
  if (scheduled_) {
    part.conjuncts.assign(conjuncts.begin(), conjuncts.end());
    schedule_part(*space_, part);
  } else {
    // Mono keeps the historical flat shape: one materialized BDD per part.
    bdd::Bdd flat = conjuncts[0];
    for (std::size_t i = 1; i < conjuncts.size(); ++i) flat &= conjuncts[i];
    part.conjuncts.push_back(std::move(flat));
  }
  parts_.push_back(std::move(part));
  // The cached flattenings are prefixes of the part list; invalidate only
  // the union (append keeps per-part entries valid).
  flat_parts_.clear();
  flat_ = bdd::Bdd();
}

void TransitionRelation::add_part(const bdd::Bdd& a) {
  add_part(std::span<const bdd::Bdd>(&a, 1));
}

void TransitionRelation::add_part(const bdd::Bdd& a, const bdd::Bdd& b) {
  const bdd::Bdd conjuncts[2] = {a, b};
  add_part(std::span<const bdd::Bdd>(conjuncts, 2));
}

std::span<const bdd::Bdd> TransitionRelation::flat_parts() const {
  if (flat_parts_.size() != parts_.size()) {
    flat_parts_.clear();
    flat_parts_.reserve(parts_.size());
    for (const RelationPart& part : parts_) {
      bdd::Bdd flat = part.conjuncts[0];
      for (std::size_t i = 1; i < part.conjuncts.size(); ++i) {
        flat &= part.conjuncts[i];
      }
      flat_parts_.push_back(std::move(flat));
    }
  }
  return flat_parts_;
}

const bdd::Bdd& TransitionRelation::flat() const {
  if (!flat_.valid()) {
    bdd::Bdd result = space_->manager().bdd_false();
    for (const bdd::Bdd& part : flat_parts()) result |= part;
    flat_ = std::move(result);
  }
  return flat_;
}

RelationShape TransitionRelation::shape() const {
  RelationShape shape;
  shape.parts = parts_.size();
  shape.total_bits = 2 * space_->bits_per_state();
  if (parts_.empty()) return shape;
  shape.min_support_bits = shape.total_bits;
  double support_sum = 0.0;
  for (const RelationPart& part : parts_) {
    shape.conjuncts += part.conjuncts.size();
    std::size_t support = part.support_bits;
    if (!scheduled_) {
      // Mono parts carry no schedule; recompute so both modes describe the
      // same program with the same numbers.
      const std::vector<bool> mask = support_mask(*space_, part.conjuncts);
      support = static_cast<std::size_t>(
          std::count(mask.begin(), mask.end(), true));
    }
    shape.min_support_bits = std::min(shape.min_support_bits, support);
    shape.max_support_bits = std::max(shape.max_support_bits, support);
    support_sum += static_cast<double>(support);
    shape.schedulable_bits += shape.total_bits - support;
  }
  shape.avg_support_bits = support_sum / static_cast<double>(parts_.size());
  return shape;
}

}  // namespace lr::sym
