#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bdd/order.hpp"
#include "symbolic/space.hpp"

namespace lr::sym::order {

/// Static variable-order selection (--order=MODE). The heuristics order
/// *program* variables; each variable's current/next bit interleaving is
/// preserved when the choice is expanded to a BDD-level order, because the
/// cur/next pairing dominates every other ordering concern for transition
/// relations.
enum class Mode {
  kDecl,        ///< declaration order (the engine default; the identity)
  kAuto,        ///< score every heuristic with the span-cost proxy, keep best
  kInterleave,  ///< process locality: each process's writes, then its reads
  kAdjacency,   ///< greedy placement on the weighted co-occurrence graph
  kFile,        ///< a persisted order profile (--order=file:PATH)
};

/// Display name ("decl", "auto", "interleave", "adjacency", "file").
[[nodiscard]] const char* mode_name(Mode mode) noexcept;

/// Parses a heuristic mode name; "file" and "file:PATH" are *not* accepted
/// here (the CLI splits the path off first and passes kFile explicitly).
[[nodiscard]] std::optional<Mode> parse_mode(std::string_view name) noexcept;

/// The variable-dependence structure the heuristics consume, extracted from
/// the *parsed* model before any BDD is built (see
/// prog::DistributedProgram::order_structure). Ring/tree/star topology is
/// implicit: it is exactly the shape of these per-action support sets.
struct Structure {
  /// One entry per action (process actions, then faults, then the
  /// invariant/safety expressions): the program variables it reads or
  /// writes, sorted and deduplicated.
  std::vector<std::vector<VarId>> action_vars;
  /// One entry per process: its writes, then its reads, declaration order
  /// within each list.
  std::vector<std::vector<VarId>> process_vars;
};

/// A computed order, ready to apply and to report on.
struct Plan {
  Mode requested = Mode::kDecl;
  Mode chosen = Mode::kDecl;  ///< kAuto resolves to the winning heuristic
  std::vector<VarId> var_order;            ///< program variables, top first
  std::vector<bdd::VarIndex> var_at_level; ///< expanded bit order
  double span_cost = 0.0;       ///< static proxy of the chosen order
  double decl_span_cost = 0.0;  ///< the same proxy for declaration order
};

/// Canonical bit labels indexed by bdd::VarIndex: "x.0" for bit 0 of x's
/// current copy, "x.0'" for its next copy. The persisted profile format
/// keys levels by these labels.
[[nodiscard]] std::vector<std::string> bit_labels(const Space& space);

/// Static order-quality proxy: the sum over action support sets of the
/// bit-level span (max level - min level + 1) the set occupies under
/// `var_at_level`. BDD recursion depth and intermediate-node growth both
/// track how far apart interacting variables sit, so smaller is better.
[[nodiscard]] double span_cost(const Space& space, const Structure& structure,
                               std::span<const bdd::VarIndex> var_at_level);

/// Computes the order a heuristic mode chooses. kDecl returns the identity;
/// kAuto scores kDecl/kInterleave/kAdjacency and keeps the cheapest
/// (declaration order wins ties). kFile is not computable here — use
/// plan_from_labels with a loaded profile.
[[nodiscard]] Plan plan_order(const Space& space, const Structure& structure,
                              Mode mode);

/// Reconstructs a plan from a persisted profile's level labels. Throws
/// std::runtime_error when the labels do not exactly cover this space's
/// bits (wrong model, renamed variable, truncated file).
[[nodiscard]] Plan plan_from_labels(const Space& space,
                                    const Structure& structure,
                                    std::span<const bdd::order::ProfileLevel> levels);

/// Applies a plan to the space's manager (adjacent-exchange based; valid
/// before or after freeze). Returns the number of adjacent swaps.
std::size_t apply_plan(Space& space, const Plan& plan);

/// Predicted per-level pressure under the manager's *current* order: how
/// many action support sets span each level. The --stats order report
/// prints this against the actual live-node histogram.
[[nodiscard]] std::vector<double> predicted_level_pressure(
    Space& space, const Structure& structure);

}  // namespace lr::sym::order
