#include "symbolic/intra.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "bdd/profile.hpp"
#include "support/trace.hpp"

namespace lr::sym {

namespace {

/// Worker managers keep the main manager's cache geometry: fixpoint
/// iterations only stay cheap when the operation cache survives from one
/// iteration to the next, and a smaller direct-mapped cache evicts exactly
/// those entries.
bdd::Manager::Options worker_manager_options() {
  bdd::Manager::Options options;
  options.initial_capacity = 1u << 16;
  return options;
}

/// Pin-set bound: past this many pinned roots the engine releases every
/// pin together with the worker import memos keyed on them.
constexpr std::size_t kMaxPins = 4096;

}  // namespace

IntraEngine::IntraEngine(bdd::Manager& main, std::size_t jobs,
                         std::vector<bdd::VarIndex> cur_bits,
                         std::vector<bdd::VarIndex> next_bits,
                         std::vector<bdd::VarIndex> swap_perm)
    : main_(main),
      jobs_(jobs),
      pool_(jobs),
      cur_bits_(std::move(cur_bits)),
      next_bits_(std::move(next_bits)),
      swap_perm_(std::move(swap_perm)) {
  assert(jobs >= 1 && "IntraEngine: at least one pool thread");
  const std::uint32_t nvars = main_.var_count();
  order_snapshot_.resize(nvars);
  for (std::uint32_t level = 0; level < nvars; ++level) {
    order_snapshot_[level] = main_.var_at_level(level);
  }
  workers_.reserve(kContexts);
  for (std::size_t w = 0; w < kContexts; ++w) {
    auto worker = std::make_unique<Worker>(worker_manager_options());
    for (std::uint32_t v = 0; v < nvars; ++v) worker->mgr.new_var();
    align_worker(*worker);
    worker->cube_cur = worker->mgr.make_cube(cur_bits_);
    worker->cube_next = worker->mgr.make_cube(next_bits_);
    worker->swap = worker->mgr.register_permutation(swap_perm_);
    workers_.push_back(std::move(worker));
  }
}

IntraEngine::~IntraEngine() {
  if (std::getenv("LR_INTRA_DEBUG") == nullptr) return;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const bdd::ManagerStats& st = workers_[w]->mgr.stats();
    std::fprintf(stderr,
                 "[intra] worker %zu: gc_runs=%llu live=%zu peak=%zu "
                 "created=%llu lookups=%llu hits=%llu memo=%zu exp_memo=%zu\n",
                 w, static_cast<unsigned long long>(st.gc_runs), st.live_nodes,
                 st.peak_nodes, static_cast<unsigned long long>(st.created_nodes),
                 static_cast<unsigned long long>(st.cache_lookups),
                 static_cast<unsigned long long>(st.cache_hits),
                 workers_[w]->memo.size(), workers_[w]->export_memo.size());
  }
}

void IntraEngine::align_worker(Worker& w) {
  // Bubble each variable up to the main manager's level for it. Levels
  // below the current one are already in place, so the target variable can
  // only sit deeper; swap_adjacent_levels preserves the semantics of every
  // live handle, so alignment is safe even mid-run.
  const std::uint32_t nvars = main_.var_count();
  for (std::uint32_t level = 0; level < nvars; ++level) {
    const bdd::VarIndex target = main_.var_at_level(level);
    std::uint32_t at = w.mgr.level_of(target);
    assert(at >= level);
    while (at > level) {
      w.mgr.swap_adjacent_levels(at - 1);
      --at;
    }
  }
}

void IntraEngine::sync_order() {
  const std::uint32_t nvars = main_.var_count();
  bool same = true;
  for (std::uint32_t level = 0; level < nvars && same; ++level) {
    same = order_snapshot_[level] == main_.var_at_level(level);
  }
  if (same) return;
  for (std::uint32_t level = 0; level < nvars; ++level) {
    order_snapshot_[level] = main_.var_at_level(level);
  }
  drop_pins();
  for (auto& worker : workers_) align_worker(*worker);
}

void IntraEngine::drop_pins() {
  pinned_.clear();
  split_cache_.clear();
  for (auto& worker : workers_) {
    worker->memo.clear();
    worker->export_memo.clear();
    worker->export_roots.clear();
  }
}

bdd::NodeId IntraEngine::pin(const bdd::Bdd& f) {
  pinned_.emplace(f.id(), f);
  return f.id();
}

void IntraEngine::run(const std::function<void(std::size_t, Worker&)>& fn) {
  sync_order();
  // Workers charge their BDD work to the *full* span path that dispatched
  // them, so the profiler's call-path tree reads the same as in a
  // sequential run. Span names are string literals — safe to hand across
  // threads.
  const char* frames[bdd::profile::kMaxPathDepth];
  std::size_t depth = support::trace::current_span_path(
      frames, bdd::profile::kMaxPathDepth);
  if (depth > bdd::profile::kMaxPathDepth) {
    depth = bdd::profile::kMaxPathDepth;
  }
  const std::vector<const char*> parent_path(frames, frames + depth);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Worker* worker = workers_[w].get();
    pool_.submit([fn, w, worker, &parent_path] {
      try {
        support::trace::SpanPathScope path(parent_path);
        fn(w, *worker);
      } catch (...) {
        worker->error = std::current_exception();
      }
    });
  }
  pool_.wait_idle();
  if (bdd::profile::enabled()) {
    for (auto& worker : workers_) {
      main_.profiler().merge(worker->mgr.profiler());
      worker->mgr.profiler().clear();
    }
  }
  for (auto& worker : workers_) {
    if (worker->error != nullptr) {
      const std::exception_ptr error = std::exchange(worker->error, nullptr);
      for (auto& rest : workers_) rest->error = nullptr;
      std::rethrow_exception(error);
    }
  }
}

bdd::Bdd IntraEngine::import(std::size_t w, bdd::NodeId id) {
  Worker& worker = *workers_[w];
  return bdd::import_bdd(main_, id, worker.mgr, worker.memo);
}

bdd::Bdd IntraEngine::export_to_main(std::size_t w, const bdd::Bdd& f) {
  // The export memo persists across calls: successive fixpoint iterates
  // share most of their nodes, so re-exporting the whole function every
  // iteration would cost O(|f|) per call where O(|changed|) suffices.
  // Rooting `f` keeps every memoized worker id valid (see Worker).
  Worker& worker = *workers_[w];
  worker.export_roots.push_back(f);
  return bdd::import_bdd(worker.mgr, f.id(), main_, worker.export_memo);
}

bdd::Bdd IntraEngine::image(std::span<const bdd::Bdd> pieces,
                            const bdd::Bdd& from) {
  if (pinned_.size() > kMaxPins) drop_pins();
  sync_order();
  std::vector<bdd::NodeId> piece_ids;
  piece_ids.reserve(pieces.size());
  for (const bdd::Bdd& piece : pieces) piece_ids.push_back(pin(piece));
  const bdd::NodeId from_id = pin(from);
  std::vector<bdd::Bdd> partials(contexts());
  run([&](std::size_t w, Worker& worker) {
    const bdd::Bdd operand = import(w, from_id);
    bdd::Bdd acc = worker.mgr.bdd_false();
    for (std::size_t i = w; i < piece_ids.size(); i += contexts()) {
      const bdd::Bdd piece = import(w, piece_ids[i]);
      acc |= worker.mgr.permute(
          worker.mgr.and_exists(piece, operand, worker.cube_cur),
          worker.swap);
    }
    partials[w] = std::move(acc);
  });
  // Deterministic reduction: worker order 0..J-1 (canonicity makes any
  // order yield the same BDD, but a fixed order keeps intermediate sizes
  // and profiler counters reproducible too).
  bdd::Bdd result = main_.bdd_false();
  for (std::size_t w = 0; w < partials.size(); ++w) {
    if (partials[w].valid() && !partials[w].is_false()) {
      result |= export_to_main(w, partials[w]);
    }
  }
  return result;
}

bdd::Bdd IntraEngine::preimage(std::span<const bdd::Bdd> pieces,
                               const bdd::Bdd& to_primed) {
  if (pinned_.size() > kMaxPins) drop_pins();
  sync_order();
  std::vector<bdd::NodeId> piece_ids;
  piece_ids.reserve(pieces.size());
  for (const bdd::Bdd& piece : pieces) piece_ids.push_back(pin(piece));
  const bdd::NodeId to_id = pin(to_primed);
  std::vector<bdd::Bdd> partials(contexts());
  run([&](std::size_t w, Worker& worker) {
    const bdd::Bdd operand = import(w, to_id);
    bdd::Bdd acc = worker.mgr.bdd_false();
    for (std::size_t i = w; i < piece_ids.size(); i += contexts()) {
      const bdd::Bdd piece = import(w, piece_ids[i]);
      acc |= worker.mgr.and_exists(piece, operand, worker.cube_next);
    }
    partials[w] = std::move(acc);
  });
  bdd::Bdd result = main_.bdd_false();
  for (std::size_t w = 0; w < partials.size(); ++w) {
    if (partials[w].valid() && !partials[w].is_false()) {
      result |= export_to_main(w, partials[w]);
    }
  }
  return result;
}

namespace {

/// Pinned main-manager node ids of one scheduled piece (see ScheduledPiece).
struct PieceIds {
  bdd::NodeId a = bdd::kTrueId;
  bdd::NodeId b = bdd::kTrueId;
  bdd::NodeId local = bdd::kTrueId;
  bdd::NodeId absent = bdd::kTrueId;
  bool has_b = false;
};

}  // namespace

bdd::Bdd IntraEngine::image(std::span<const ScheduledPiece> pieces,
                            const bdd::Bdd& from) {
  if (pinned_.size() > kMaxPins) drop_pins();
  sync_order();
  std::vector<PieceIds> ids;
  ids.reserve(pieces.size());
  for (const ScheduledPiece& piece : pieces) {
    PieceIds p;
    p.a = pin(piece.a);
    p.has_b = piece.b.valid();
    if (p.has_b) p.b = pin(piece.b);
    p.local = pin(piece.local_cube);
    p.absent = pin(piece.absent_cube);
    ids.push_back(p);
  }
  const bdd::NodeId from_id = pin(from);
  std::vector<bdd::Bdd> partials(contexts());
  run([&](std::size_t w, Worker& worker) {
    const bdd::Bdd operand = import(w, from_id);
    bdd::Bdd acc = worker.mgr.bdd_false();
    for (std::size_t i = w; i < ids.size(); i += contexts()) {
      const bdd::Bdd a = import(w, ids[i].a);
      const bdd::Bdd local = import(w, ids[i].local);
      bdd::Bdd piece_operand = operand;
      if (ids[i].absent != bdd::kTrueId) {
        piece_operand = worker.mgr.exists(operand, import(w, ids[i].absent));
      }
      const bdd::Bdd quantified =
          ids[i].has_b ? worker.mgr.and_exists(a, import(w, ids[i].b),
                                               piece_operand, local)
                       : worker.mgr.and_exists(a, piece_operand, local);
      acc |= worker.mgr.permute(quantified, worker.swap);
    }
    partials[w] = std::move(acc);
  });
  bdd::Bdd result = main_.bdd_false();
  for (std::size_t w = 0; w < partials.size(); ++w) {
    if (partials[w].valid() && !partials[w].is_false()) {
      result |= export_to_main(w, partials[w]);
    }
  }
  return result;
}

bdd::Bdd IntraEngine::preimage(std::span<const ScheduledPiece> pieces,
                               const bdd::Bdd& to_primed) {
  if (pinned_.size() > kMaxPins) drop_pins();
  sync_order();
  std::vector<PieceIds> ids;
  ids.reserve(pieces.size());
  for (const ScheduledPiece& piece : pieces) {
    PieceIds p;
    p.a = pin(piece.a);
    p.has_b = piece.b.valid();
    if (p.has_b) p.b = pin(piece.b);
    p.local = pin(piece.local_cube);
    p.absent = pin(piece.absent_cube);
    ids.push_back(p);
  }
  const bdd::NodeId to_id = pin(to_primed);
  std::vector<bdd::Bdd> partials(contexts());
  run([&](std::size_t w, Worker& worker) {
    const bdd::Bdd operand = import(w, to_id);
    bdd::Bdd acc = worker.mgr.bdd_false();
    for (std::size_t i = w; i < ids.size(); i += contexts()) {
      const bdd::Bdd a = import(w, ids[i].a);
      const bdd::Bdd local = import(w, ids[i].local);
      bdd::Bdd piece_operand = operand;
      if (ids[i].absent != bdd::kTrueId) {
        piece_operand = worker.mgr.exists(operand, import(w, ids[i].absent));
      }
      acc |= ids[i].has_b ? worker.mgr.and_exists(a, import(w, ids[i].b),
                                                  piece_operand, local)
                          : worker.mgr.and_exists(a, piece_operand, local);
    }
    partials[w] = std::move(acc);
  });
  bdd::Bdd result = main_.bdd_false();
  for (std::size_t w = 0; w < partials.size(); ++w) {
    if (partials[w].valid() && !partials[w].is_false()) {
      result |= export_to_main(w, partials[w]);
    }
  }
  return result;
}

const std::vector<bdd::Bdd>& IntraEngine::split_relation(const bdd::Bdd& rel,
                                                         std::size_t k) {
  if (pinned_.size() > kMaxPins) drop_pins();
  pin(rel);
  auto it = split_cache_.find(rel.id());
  if (it != split_cache_.end()) return it->second;

  std::vector<bdd::Bdd> pieces{rel};
  if (k >= 2) {
    std::vector<std::size_t> sizes{rel.node_count()};
    while (pieces.size() < k) {
      // Largest piece first; ties break to the lowest index so the split
      // sequence (and the resulting partition) is deterministic.
      std::size_t best = pieces.size();
      for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (sizes[i] >= kSplitThreshold &&
            (best == pieces.size() || sizes[i] > sizes[best])) {
          best = i;
        }
      }
      if (best == pieces.size()) break;  // everything is small already
      const bdd::Bdd piece = pieces[best];
      const bdd::VarIndex v = main_.node_view(piece.id()).var;
      const bdd::Bdd lo = main_.bdd_nvar(v) & main_.cofactor(piece, v, false);
      const bdd::Bdd hi = main_.bdd_var(v) & main_.cofactor(piece, v, true);
      // Shannon split: piece = (¬v ∧ piece|v=0) ∨ (v ∧ piece|v=1), disjoint.
      pieces[best] = lo;
      sizes[best] = lo.node_count();
      pieces.insert(pieces.begin() + static_cast<std::ptrdiff_t>(best) + 1,
                    hi);
      sizes.insert(sizes.begin() + static_cast<std::ptrdiff_t>(best) + 1,
                   hi.node_count());
    }
    // Empty cofactors contribute nothing; drop them (deterministically).
    std::vector<bdd::Bdd> kept;
    kept.reserve(pieces.size());
    for (const bdd::Bdd& piece : pieces) {
      if (!piece.is_false()) kept.push_back(piece);
    }
    if (kept.empty()) kept.push_back(main_.bdd_false());
    pieces = std::move(kept);
  }
  return split_cache_.emplace(rel.id(), std::move(pieces)).first->second;
}

}  // namespace lr::sym
