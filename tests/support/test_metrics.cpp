// Tests for the metrics registry: counter/gauge semantics, snapshotting,
// and the JSON run-report serialization (validated with the JSON parser).

#include <gtest/gtest.h>

#include "support/json.hpp"
#include "support/metrics.hpp"

namespace lr::support::metrics {
namespace {

TEST(MetricsTest, CountersAccumulate) {
  Registry reg;
  EXPECT_FALSE(reg.has_counter("hits"));
  EXPECT_EQ(reg.counter("hits"), 0u);
  reg.add("hits");
  reg.add("hits", 4);
  EXPECT_TRUE(reg.has_counter("hits"));
  EXPECT_EQ(reg.counter("hits"), 5u);
}

TEST(MetricsTest, GaugesKeepLastValue) {
  Registry reg;
  EXPECT_FALSE(reg.has_gauge("seconds"));
  reg.set_gauge("seconds", 1.5);
  reg.set_gauge("seconds", 0.25);
  EXPECT_TRUE(reg.has_gauge("seconds"));
  EXPECT_EQ(reg.gauge("seconds"), 0.25);
}

TEST(MetricsTest, MaxGaugeKeepsHighWaterMark) {
  Registry reg;
  reg.max_gauge("peak", 10.0);
  reg.max_gauge("peak", 3.0);
  EXPECT_EQ(reg.gauge("peak"), 10.0);
  reg.max_gauge("peak", 42.0);
  EXPECT_EQ(reg.gauge("peak"), 42.0);
}

TEST(MetricsTest, ClearEmptiesBothFamilies) {
  Registry reg;
  reg.add("c");
  reg.set_gauge("g", 1.0);
  reg.clear();
  EXPECT_FALSE(reg.has_counter("c"));
  EXPECT_FALSE(reg.has_gauge("g"));
}

TEST(MetricsTest, SnapshotCapturesState) {
  Registry reg;
  reg.add("a.x", 2);
  reg.add("a.y", 7);
  reg.set_gauge("b.z", 3.5);
  const Registry::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters.at("a.x"), 2u);
  EXPECT_EQ(snap.counters.at("a.y"), 7u);
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges.at("b.z"), 3.5);

  // The snapshot is a copy: later mutation does not retroact.
  reg.add("a.x");
  EXPECT_EQ(snap.counters.at("a.x"), 2u);
}

TEST(MetricsTest, JsonRoundTripPreservesValues) {
  Registry reg;
  reg.add("bdd.cache_hits", 12345);
  reg.add("repair.outer_iterations", 3);
  reg.set_gauge("repair.step1_seconds", 0.125);
  reg.set_gauge("repair.reachable_states", 1.0e12);

  const auto doc = json_parse(reg.to_json());
  ASSERT_TRUE(doc.has_value()) << reg.to_json();
  ASSERT_TRUE(doc->is_object());

  const JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  EXPECT_EQ(counters->find("bdd.cache_hits")->number, 12345.0);
  EXPECT_EQ(counters->find("repair.outer_iterations")->number, 3.0);

  const JsonValue* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_TRUE(gauges->is_object());
  EXPECT_EQ(gauges->find("repair.step1_seconds")->number, 0.125);
  EXPECT_EQ(gauges->find("repair.reachable_states")->number, 1.0e12);
}

TEST(MetricsTest, EmptyRegistrySerializesToEmptyFamilies) {
  Registry reg;
  const auto doc = json_parse(reg.to_json());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* counters = doc->find("counters");
  const JsonValue* gauges = doc->find("gauges");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  EXPECT_TRUE(counters->object.empty());
  EXPECT_TRUE(gauges->object.empty());
}

TEST(MetricsTest, ReportKeysAreSortedAndByteDeterministic) {
  // Two registries fed the same values in different orders must serialize
  // byte-identically, with keys in sorted order — the guarantee the
  // bench-regression diffing (lr_report) and the CI artifacts rely on.
  Registry a;
  a.add("z.counter", 7);
  a.add("a.counter", 1);
  a.set_gauge("m.gauge", 2.5);
  a.set_gauge("b.gauge", 0.125);

  Registry b;
  b.set_gauge("b.gauge", 0.125);
  b.add("a.counter", 1);
  b.set_gauge("m.gauge", 2.5);
  b.add("z.counter", 7);

  const std::string json_a = a.to_json();
  EXPECT_EQ(json_a, b.to_json());

  // Sorted key order within each family, by construction.
  EXPECT_LT(json_a.find("a.counter"), json_a.find("z.counter"));
  EXPECT_LT(json_a.find("b.gauge"), json_a.find("m.gauge"));

  // A separate identical run (fresh registry, same recording) is also
  // byte-identical — serialization has no hidden run-local state.
  Registry c;
  c.add("z.counter", 7);
  c.add("a.counter", 1);
  c.set_gauge("m.gauge", 2.5);
  c.set_gauge("b.gauge", 0.125);
  EXPECT_EQ(json_a, c.to_json());
}

TEST(MetricsTest, GlobalRegistryIsASingleton) {
  registry().add("metrics_test.singleton_probe", 2);
  EXPECT_GE(registry().counter("metrics_test.singleton_probe"), 2u);
}

}  // namespace
}  // namespace lr::support::metrics
