// Tests for the leveled logger: threshold filtering, LR_LOG_LEVEL env
// override, sink redirection, and lazy-evaluation of disabled statements.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "support/log.hpp"

namespace lr::support {
namespace {

/// Captures log output in a stringstream and restores defaults on exit.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_stream(&sink_);
    set_log_level(LogLevel::warn);
  }
  void TearDown() override {
    set_log_stream(nullptr);
    set_log_level(LogLevel::warn);
    unsetenv("LR_LOG_LEVEL");
  }

  std::string drain() {
    std::string text = sink_.str();
    sink_.str("");
    return text;
  }

  std::ostringstream sink_;
};

TEST_F(LogTest, ParseLogLevelAcceptsNamesAndAliases) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::trace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::warn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::off);
  EXPECT_EQ(parse_log_level("none"), LogLevel::off);
  EXPECT_FALSE(parse_log_level("loud").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
}

TEST_F(LogTest, DefaultThresholdSuppressesDebugAndInfo) {
  LR_LOG(trace) << "t";
  LR_LOG(debug) << "d";
  LR_LOG(info) << "i";
  EXPECT_EQ(drain(), "");
  LR_LOG(warn) << "w";
  LR_LOG(error) << "e";
  EXPECT_EQ(drain(), "[warn] w\n[error] e\n");
}

TEST_F(LogTest, LoweringThresholdEnablesFinerLevels) {
  set_log_level(LogLevel::debug);
  LR_LOG(trace) << "t";
  LR_LOG(debug) << "d";
  EXPECT_EQ(drain(), "[debug] d\n");
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::off);
  LR_LOG(error) << "e";
  EXPECT_EQ(drain(), "");
  EXPECT_FALSE(log_enabled(LogLevel::error));
}

TEST_F(LogTest, DisabledStatementDoesNotEvaluateOperands) {
  set_log_level(LogLevel::warn);
  int evaluations = 0;
  const auto touch = [&evaluations] {
    ++evaluations;
    return "x";
  };
  LR_LOG(debug) << touch();
  EXPECT_EQ(evaluations, 0);
  LR_LOG(error) << touch();
  EXPECT_EQ(evaluations, 1);
  drain();
}

TEST_F(LogTest, EnvVariableSetsInitialLevel) {
  setenv("LR_LOG_LEVEL", "info", 1);
  init_log_from_env();
  EXPECT_EQ(log_level(), LogLevel::info);
  LR_LOG(info) << "from env";
  EXPECT_EQ(drain(), "[info] from env\n");
}

TEST_F(LogTest, ExplicitLevelBeatsEnvironment) {
  setenv("LR_LOG_LEVEL", "trace", 1);
  set_log_level(LogLevel::error);  // explicit --log-level wins
  EXPECT_EQ(log_level(), LogLevel::error);
  EXPECT_FALSE(log_enabled(LogLevel::debug));
}

TEST_F(LogTest, UnparsableEnvValueIsIgnored) {
  setenv("LR_LOG_LEVEL", "blurt", 1);
  init_log_from_env();
  EXPECT_EQ(log_level(), LogLevel::warn);
}

TEST_F(LogTest, MessagesStreamFormattedValues) {
  set_log_level(LogLevel::info);
  LR_LOG(info) << "round=" << 3 << " states=" << 2.5;
  EXPECT_EQ(drain(), "[info] round=3 states=2.5\n");
}

TEST_F(LogTest, LogLevelNamesRoundTrip) {
  for (LogLevel level : {LogLevel::trace, LogLevel::debug, LogLevel::info,
                         LogLevel::warn, LogLevel::error, LogLevel::off}) {
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

}  // namespace
}  // namespace lr::support
