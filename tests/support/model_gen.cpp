#include "model_gen.hpp"

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "lang/action.hpp"
#include "lang/expr.hpp"

namespace lr::testgen {

using lang::Expr;
using prog::DistributedProgram;

Topology topology_from_env() {
  const char* value = std::getenv("LR_FUZZ_TOPOLOGY");
  if (value != nullptr && std::strcmp(value, "ring") == 0) {
    return Topology::kRing;
  }
  if (value != nullptr && std::strcmp(value, "tree") == 0) {
    return Topology::kTree;
  }
  if (value != nullptr && std::strcmp(value, "star") == 0) {
    return Topology::kStar;
  }
  return Topology::kRandom;
}

FaultClass fault_class_from_env() {
  const char* value = std::getenv("LR_FUZZ_FAULTS");
  if (value != nullptr && std::strcmp(value, "corrupt") == 0) {
    return FaultClass::kCorrupt;
  }
  return FaultClass::kHavoc;
}

std::unique_ptr<DistributedProgram> random_program(support::SplitMix64& rng) {
  const Topology topology = topology_from_env();
  auto p = std::make_unique<DistributedProgram>("fuzz");
  // Ring/tree: one variable per process, so nvars is fixed by nproc below.
  const std::size_t nvars =
      topology == Topology::kRandom ? 2 + rng.below(2) : 3 + rng.below(2);
  std::vector<sym::VarId> vars;
  std::vector<std::uint32_t> domains;
  for (std::size_t v = 0; v < nvars; ++v) {
    const auto domain = static_cast<std::uint32_t>(2 + rng.below(2));
    vars.push_back(p->add_variable("v" + std::to_string(v), domain));
    domains.push_back(domain);
  }

  auto random_state_expr = [&]() {
    // Random conjunction/disjunction of var==const literals.
    Expr e = Expr::var(vars[rng.below(nvars)]) ==
             static_cast<std::uint32_t>(rng.below(domains[0]));
    for (std::size_t i = 0; i < 1 + rng.below(2); ++i) {
      const std::size_t v = rng.below(nvars);
      const Expr lit = Expr::var(vars[v]) ==
                       static_cast<std::uint32_t>(rng.below(domains[v]));
      e = rng.flip() ? (e && lit) : (e || lit);
    }
    return e;
  };

  const std::size_t nproc =
      topology == Topology::kRandom ? 1 + rng.below(3) : nvars;
  for (std::size_t j = 0; j < nproc; ++j) {
    prog::Process proc;
    proc.name = "p" + std::to_string(j);
    std::vector<bool> writes(nvars, false);
    std::vector<bool> reads(nvars, false);
    if (topology == Topology::kRing) {
      // Process j owns v_j and watches its left neighbor — the directed
      // ring every token-passing case study lives on.
      writes[j] = true;
      reads[j] = true;
      reads[(j + nvars - 1) % nvars] = true;
    } else if (topology == Topology::kTree) {
      // Process j owns v_j and watches its parent (j-1)/2 in the rooted
      // binary tree; the root (j = 0) reads only its own variable.
      writes[j] = true;
      reads[j] = true;
      if (j > 0) reads[(j - 1) / 2] = true;
    } else if (topology == Topology::kStar) {
      // Process j owns v_j and watches the hub's v_0; the hub (j = 0)
      // reads only its own variable.
      writes[j] = true;
      reads[j] = true;
      reads[0] = true;
    } else {
      // Writes: one or two variables; reads: writes + random others.
      writes[rng.below(nvars)] = true;
      if (rng.chance(1, 3)) writes[rng.below(nvars)] = true;
      reads = writes;
      for (std::size_t v = 0; v < nvars; ++v) {
        if (rng.flip()) reads[v] = true;
      }
    }
    for (std::size_t v = 0; v < nvars; ++v) {
      if (reads[v]) proc.reads.push_back(vars[v]);
      if (writes[v]) proc.writes.push_back(vars[v]);
    }
    const std::size_t nactions = 1 + rng.below(2);
    for (std::size_t a = 0; a < nactions; ++a) {
      // Guard over readable variables only (well-formed programs).
      Expr guard = Expr::bool_const(true);
      for (std::size_t v = 0; v < nvars; ++v) {
        if (reads[v] && rng.flip()) {
          guard = guard && (Expr::var(vars[v]) ==
                            static_cast<std::uint32_t>(rng.below(domains[v])));
        }
      }
      lang::Action action;
      action.name = "a" + std::to_string(a);
      action.guard = guard;
      for (std::size_t v = 0; v < nvars; ++v) {
        if (writes[v] && rng.flip()) {
          action.assigns.push_back(
              {vars[v],
               {Expr::constant(
                   static_cast<std::uint32_t>(rng.below(domains[v])))}});
        }
      }
      if (action.assigns.empty()) {
        action.assigns.push_back({proc.writes[0], {Expr::constant(0)}});
      }
      proc.actions.push_back(std::move(action));
    }
    p->add_process(std::move(proc));
  }

  const FaultClass fault_class = fault_class_from_env();
  const std::size_t nfaults = 1 + rng.below(2);
  for (std::size_t f = 0; f < nfaults; ++f) {
    lang::Action fault;
    fault.name = "f" + std::to_string(f);
    fault.guard = rng.flip() ? Expr::bool_const(true) : random_state_expr();
    if (fault_class == FaultClass::kCorrupt) {
      // Byzantine-style corruption: deterministically overwrite interior
      // variables (never the boundary ones, so some state survives for
      // recovery to anchor on) with a wrong constant — a corrupted
      // message or register, not an arbitrary scribble.
      const std::size_t ncorrupt = 1 + rng.below(nvars > 2 ? 2 : 1);
      std::vector<bool> corrupted(nvars, false);
      for (std::size_t c = 0; c < ncorrupt; ++c) {
        const std::size_t v =
            nvars > 2 ? 1 + rng.below(nvars - 2) : rng.below(nvars);
        if (corrupted[v]) continue;  // one assign per variable per fault
        corrupted[v] = true;
        fault.assigns.push_back(
            {vars[v],
             {Expr::constant(
                 static_cast<std::uint32_t>(rng.below(domains[v])))}});
      }
    } else {
      fault.havoc.push_back(vars[rng.below(nvars)]);
    }
    p->add_fault(std::move(fault));
  }

  p->set_invariant(random_state_expr());
  if (rng.flip()) p->add_bad_states(random_state_expr());
  if (rng.chance(1, 3)) {
    const std::size_t v = rng.below(nvars);
    p->add_bad_transitions(random_state_expr() &&
                           Expr::next(vars[v]) != Expr::var(vars[v]));
  }
  return p;
}

}  // namespace lr::testgen
