// Unit tests for the progress/heartbeat layer: interval gating, the
// LR_PROGRESS environment knob, and the emitted line format. The interval
// is process-global, so every test restores the disabled default.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>

#include "support/log.hpp"
#include "support/progress.hpp"

namespace lr::support::progress {
namespace {

/// Restores "progress disabled" and the default log sink on scope exit.
struct ProgressReset {
  ~ProgressReset() {
    configure(0.0);
    set_log_stream(nullptr);
    unsetenv("LR_PROGRESS");
  }
};

TEST(ProgressTest, DisabledByDefaultAndConfigurable) {
  ProgressReset reset;
  configure(0.0);
  EXPECT_FALSE(enabled());
  configure(2.5);
  EXPECT_TRUE(enabled());
  EXPECT_DOUBLE_EQ(interval_seconds(), 2.5);
  configure(-1.0);
  EXPECT_FALSE(enabled());
  // A positive interval that rounds below one millisecond still enables.
  configure(1e-6);
  EXPECT_TRUE(enabled());
}

TEST(ProgressTest, EnvKnobParsesOffDefaultAndSeconds) {
  ProgressReset reset;
  configure(0.0);

  unsetenv("LR_PROGRESS");
  init_from_env();
  EXPECT_FALSE(enabled());

  setenv("LR_PROGRESS", "off", 1);
  init_from_env();
  EXPECT_FALSE(enabled());

  setenv("LR_PROGRESS", "1", 1);
  init_from_env();
  EXPECT_TRUE(enabled());
  EXPECT_DOUBLE_EQ(interval_seconds(), kDefaultIntervalSeconds);

  setenv("LR_PROGRESS", "0.5", 1);
  init_from_env();
  EXPECT_TRUE(enabled());
  EXPECT_DOUBLE_EQ(interval_seconds(), 0.5);

  configure(0.25);
  setenv("LR_PROGRESS", "not-a-number", 1);
  init_from_env();
  EXPECT_DOUBLE_EQ(interval_seconds(), 0.25) << "garbage must not reconfigure";
}

TEST(ProgressTest, HeartbeatGatesOnInterval) {
  ProgressReset reset;
  configure(0.0);
  Heartbeat off("phase");
  EXPECT_FALSE(off.due()) << "disabled progress never comes due";

  configure(0.001);
  Heartbeat beat("phase");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(beat.due());
  beat.emit("tick");
  EXPECT_FALSE(beat.due()) << "emit must reset the timer";

  // A long interval never comes due within a test's lifetime.
  configure(3600.0);
  Heartbeat slow("phase");
  EXPECT_FALSE(slow.due());
}

TEST(ProgressTest, EmitWritesOneTaggedLineToTheLogSink) {
  ProgressReset reset;
  std::ostringstream sink;
  set_log_stream(&sink);
  configure(0.001);

  Heartbeat beat("add_masking.shrink");
  beat.emit("round 3, live nodes 1234");
  beat.emit("round 4, live nodes 1300");
  set_log_stream(nullptr);

  EXPECT_EQ(sink.str(),
            "[progress] add_masking.shrink: round 3, live nodes 1234\n"
            "[progress] add_masking.shrink: round 4, live nodes 1300\n");
}

TEST(ProgressTest, MaybeEmitHonorsTheGate) {
  ProgressReset reset;
  std::ostringstream sink;
  set_log_stream(&sink);

  configure(3600.0);
  Heartbeat beat("phase");
  beat.maybe_emit("should not appear");
  EXPECT_TRUE(sink.str().empty());

  configure(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  beat.maybe_emit("should appear");
  set_log_stream(nullptr);
  EXPECT_EQ(sink.str(), "[progress] phase: should appear\n");
}

}  // namespace
}  // namespace lr::support::progress
