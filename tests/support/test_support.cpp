// Unit tests for the small support utilities.

#include <gtest/gtest.h>

#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace lr::support {
namespace {

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch sw;
  const auto a = sw.elapsed();
  const auto b = sw.elapsed();
  EXPECT_GE(a.count(), 0);
  EXPECT_GE(b.count(), a.count());
  sw.reset();
  EXPECT_GE(sw.seconds(), 0.0);
}

TEST(StopwatchTest, FormatDuration) {
  EXPECT_EQ(format_duration(0.25), "250ms");
  EXPECT_EQ(format_duration(2.5), "2.50s");
  EXPECT_EQ(format_duration(1234.0), "1234s");
  EXPECT_EQ(format_duration(0.0001), "0.100ms");
}

TEST(TableTest, AlignsColumns) {
  Table t({"a", "long-header"});
  t.add_row({"xxxx", "1"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| a    | long-header |"), std::string::npos);
  EXPECT_NE(out.find("| xxxx | 1           |"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TableTest, FormatStateCount) {
  EXPECT_EQ(format_state_count(0), "0");
  EXPECT_EQ(format_state_count(123456), "123456");
  EXPECT_EQ(format_state_count(1.0e7), "1.0e7");
  EXPECT_EQ(format_state_count(3.3e30), "3.3e30");
}

TEST(RngTest, DeterministicFromSeed) {
  SplitMix64 a(99);
  SplitMix64 b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, BelowStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, FlipProducesBothValues) {
  SplitMix64 rng(1);
  bool saw_true = false;
  bool saw_false = false;
  for (int i = 0; i < 100; ++i) {
    (rng.flip() ? saw_true : saw_false) = true;
  }
  EXPECT_TRUE(saw_true);
  EXPECT_TRUE(saw_false);
}

TEST(CliTest, ParsesKeyEqualsValue) {
  const char* argv[] = {"prog", "--n=7", "--name=chain", "pos1"};
  CommandLine cli(4, argv);
  EXPECT_EQ(cli.get_int("n", 0), 7);
  EXPECT_EQ(cli.get("name", ""), "chain");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(CliTest, ParsesKeySpaceValueAndFlags) {
  const char* argv[] = {"prog", "--n", "12", "--verbose"};
  CommandLine cli(4, argv);
  EXPECT_EQ(cli.get_int("n", 0), 12);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
  EXPECT_EQ(cli.get_int("missing", -3), -3);
}

TEST(CliTest, FallbackOnUnparsableInt) {
  const char* argv[] = {"prog", "--n=abc"};
  CommandLine cli(2, argv);
  EXPECT_EQ(cli.get_int("n", 5), 5);
}

}  // namespace
}  // namespace lr::support
