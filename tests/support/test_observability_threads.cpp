// Thread-safety regression test for the observability layer: hammers the
// tracing spans, the leveled logger and the metrics registry from many
// threads at once, then checks the emitted artifacts are still coherent
// (the JSON parses, counters add up, log lines never shear). Run it under
// -DLR_SANITIZE=thread to turn the hammer into a race detector.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <latch>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/profile.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/progress.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "symbolic/space.hpp"

namespace lr::support {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kRoundsPerThread = 200;

// With exactly kThreads tasks on a kThreads-wide pool, a task that blocks
// until all tasks have started cannot share a worker thread with another
// task. On a single-core machine one worker would otherwise happily drain
// the whole queue before the rest wake up, and the hammer would test
// nothing.
std::latch& start_line(std::latch& gate) {
  gate.count_down();
  gate.wait();
  return gate;
}

TEST(ObservabilityThreadsTest, TraceHammerProducesParsableLanes) {
  trace::start();
  {
    std::latch gate(kThreads);
    ThreadPool pool(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      pool.submit([&gate, t] {
        start_line(gate);
        for (std::size_t round = 0; round < kRoundsPerThread; ++round) {
          LR_TRACE_SPAN_NAMED(outer, "hammer.outer");
          outer.attr("thread", static_cast<std::uint64_t>(t));
          outer.attr("round", static_cast<std::uint64_t>(round));
          {
            LR_TRACE_SPAN("hammer.inner");
          }
          // Counter lanes ride along but must not count as span events.
          trace::counter("hammer.progress", static_cast<double>(round));
        }
      });
    }
    pool.wait_idle();
  }
  trace::stop();
  // Two spans per round per thread; counter events are excluded on purpose
  // (event_count feeds span-shaped assertions like this one).
  EXPECT_EQ(trace::event_count(), kThreads * kRoundsPerThread * 2);

  const auto doc = json_parse(trace::to_chrome_json());
  ASSERT_TRUE(doc.has_value()) << "trace JSON no longer parses";
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Every complete event carries a lane id; concurrent spans must have
  // landed on more than one lane for the hammer to have tested anything.
  std::vector<double> lanes;
  std::size_t complete = 0;
  std::size_t counters = 0;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "C") {
      ++counters;
      continue;
    }
    if (ph->string != "X") continue;
    ++complete;
    const JsonValue* tid = event.find("tid");
    ASSERT_NE(tid, nullptr);
    ASSERT_TRUE(tid->is_number());
    if (std::find(lanes.begin(), lanes.end(), tid->number) == lanes.end()) {
      lanes.push_back(tid->number);
    }
  }
  EXPECT_EQ(complete, kThreads * kRoundsPerThread * 2);
  EXPECT_EQ(counters, kThreads * kRoundsPerThread);
  EXPECT_EQ(lanes.size(), kThreads);
}

TEST(ObservabilityThreadsTest, HeartbeatHammerEmitsWholeLines) {
  std::ostringstream sink;
  set_log_stream(&sink);
  progress::configure(0.001);
  {
    // One shared Heartbeat, as in the batch executor: due()/emit() race
    // across workers, and every resulting line must still be whole.
    progress::Heartbeat beat("hammer");
    std::latch gate(kThreads);
    ThreadPool pool(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      pool.submit([&beat, &gate, t] {
        start_line(gate);
        for (std::size_t round = 0; round < kRoundsPerThread; ++round) {
          beat.maybe_emit("thread " + std::to_string(t) + " round " +
                          std::to_string(round) + " tail");
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      });
    }
    pool.wait_idle();
  }
  progress::configure(0.0);
  set_log_stream(nullptr);

  std::istringstream lines(sink.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.rfind("[progress] hammer: thread ", 0), 0u) << line;
    EXPECT_EQ(line.substr(line.size() - 5), " tail") << line;
  }
  EXPECT_GT(count, 0u) << "a 1ms interval must fire at least once";
}

TEST(ObservabilityThreadsTest, MetricsHammerCountsExactly) {
  metrics::Registry registry;
  {
    std::latch gate(kThreads);
    ThreadPool pool(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      pool.submit([&registry, &gate, t] {
        start_line(gate);
        for (std::size_t round = 0; round < kRoundsPerThread; ++round) {
          registry.add("hammer.shared");
          registry.add("hammer.thread" + std::to_string(t));
          registry.set_gauge("hammer.last_round",
                             static_cast<double>(round));
          registry.max_gauge("hammer.high_water",
                             static_cast<double>(t * 1000 + round));
        }
      });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(registry.counter("hammer.shared"), kThreads * kRoundsPerThread);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("hammer.thread" + std::to_string(t)),
              kRoundsPerThread);
  }
  EXPECT_EQ(registry.gauge("hammer.high_water"),
            static_cast<double>((kThreads - 1) * 1000 + kRoundsPerThread - 1));

  const auto doc = json_parse(registry.to_json());
  ASSERT_TRUE(doc.has_value()) << "metrics JSON no longer parses";
  const JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* shared = counters->find("hammer.shared");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->number,
            static_cast<double>(kThreads * kRoundsPerThread));
}

// The intra engine's concurrency protocol has every worker thread traverse
// the main manager's node pool read-only (Manager::node_view) while the
// main thread sits quiescent between dispatch and join, and merges the
// worker profilers into the main one after every join. This hammer drives
// that whole read path — pins, concurrent imports, worker-side products,
// export-to-main — many times over with the profiler on, and checks the
// sharded results stay bit-identical to a sequential reference. Under
// -DLR_SANITIZE=thread it doubles as the race detector for node_view and
// the shared profiler counters.
TEST(ObservabilityThreadsTest, IntraBddReadPathHammerMatchesSequential) {
  sym::Space space;
  constexpr std::size_t kProcs = 6;
  std::vector<sym::VarId> vars;
  for (std::size_t i = 0; i < kProcs; ++i) {
    vars.push_back(space.add_variable("x" + std::to_string(i), 4));
  }
  // Ring of copy actions: process i reads its right neighbor, everything
  // else stays put — small pieces, but enough shared structure that the
  // workers chase overlapping regions of the main node pool.
  std::vector<bdd::Bdd> rels;
  for (std::size_t i = 0; i < kProcs; ++i) {
    bdd::Bdd rel = space.vars_eq(vars[i], sym::Version::kNext,
                                 vars[(i + 1) % kProcs], sym::Version::kCurrent);
    for (std::size_t j = 0; j < kProcs; ++j) {
      if (j != i) rel &= space.unchanged(vars[j]);
    }
    rels.push_back(rel);
  }
  std::vector<bdd::Bdd> froms;
  for (std::uint32_t v = 0; v < 4; ++v) {
    froms.push_back(space.value_eq(vars[0], v, sym::Version::kCurrent) &
                    space.value_lt(vars[1], v + 1, sym::Version::kCurrent));
  }
  // Sequential references, computed before sharding is switched on (same
  // manager, so canonicity makes equality a node-id comparison).
  std::vector<bdd::Bdd> img_ref;
  std::vector<bdd::Bdd> pre_ref;
  for (const bdd::Bdd& from : froms) {
    img_ref.push_back(space.image(std::span<const bdd::Bdd>(rels), from));
    pre_ref.push_back(space.preimage(std::span<const bdd::Bdd>(rels), from));
  }

  space.enable_intra(4);
  bdd::profile::set_enabled(true);
  constexpr std::size_t kHammerRounds = 50;
  {
    LR_TRACE_SPAN("hammer.intra_bdd");
    for (std::size_t round = 0; round < kHammerRounds; ++round) {
      const std::size_t v = round % froms.size();
      const bdd::Bdd img =
          space.image(std::span<const bdd::Bdd>(rels), froms[v]);
      const bdd::Bdd pre =
          space.preimage(std::span<const bdd::Bdd>(rels), froms[v]);
      ASSERT_TRUE(img == img_ref[v]) << "sharded image diverged, round "
                                     << round;
      ASSERT_TRUE(pre == pre_ref[v]) << "sharded preimage diverged, round "
                                     << round;
    }
  }
  bdd::profile::set_enabled(false);

  // Worker-side work must have been merged back under the dispatching
  // span, not lost and not left "(unattributed)".
  const auto& buckets = space.manager().profiler().buckets();
  const auto it = buckets.find("hammer.intra_bdd");
  ASSERT_NE(it, buckets.end());
  EXPECT_GT(it->second.op(bdd::profile::OpClass::kQuantify).calls, 0u);
  EXPECT_GT(it->second.work_steps(), 0u);
}

TEST(ObservabilityThreadsTest, LogHammerEmitsWholeLines) {
  std::ostringstream sink;
  set_log_stream(&sink);
  const LogLevel before = log_level();
  set_log_level(LogLevel::info);
  {
    std::latch gate(kThreads);
    ThreadPool pool(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      pool.submit([&gate, t] {
        start_line(gate);
        for (std::size_t round = 0; round < kRoundsPerThread; ++round) {
          LR_LOG(info) << "hammer thread=" << t << " round=" << round
                       << " tail";
        }
      });
    }
    pool.wait_idle();
  }
  set_log_level(before);
  set_log_stream(nullptr);

  // Every line must be complete: "[info] hammer thread=T round=R tail".
  std::istringstream lines(sink.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.rfind("[info] hammer thread=", 0), 0u) << line;
    EXPECT_NE(line.find(" tail"), std::string::npos) << line;
  }
  EXPECT_EQ(count, kThreads * kRoundsPerThread);
}

}  // namespace
}  // namespace lr::support
