// Documentation sync tests (ctest -L docs — CI's docs job):
//  1. the committed docs/flags.md is byte-identical to the generator
//     behind `repair_cli --help-markdown` (the FlagSpec table), and
//  2. every relative Markdown link in README.md and docs/*.md resolves to
//     a file that exists in the repository.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "repair/cli_spec.hpp"

namespace {

namespace fs = std::filesystem;

std::string source_root() { return LR_SOURCE_DIR; }

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(DocsTest, FlagsMarkdownIsInSyncWithTheFlagSpecTable) {
  const std::string committed = read_file(source_root() + "/docs/flags.md");
  ASSERT_FALSE(committed.empty()) << "docs/flags.md missing";
  const std::string generated = lr::repair::repair_cli_flags_markdown();
  EXPECT_EQ(committed, generated)
      << "docs/flags.md is stale — regenerate with\n"
      << "  build/examples/repair_cli --help-markdown > docs/flags.md";
}

/// The Markdown files whose links the docs job guards.
std::vector<fs::path> doc_files() {
  std::vector<fs::path> files = {fs::path(source_root()) / "README.md"};
  const fs::path docs = fs::path(source_root()) / "docs";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(docs, ec)) {
    if (entry.path().extension() == ".md") files.push_back(entry.path());
  }
  EXPECT_FALSE(ec) << "cannot read docs/: " << ec.message();
  std::sort(files.begin(), files.end());
  return files;
}

TEST(DocsTest, RelativeMarkdownLinksResolve) {
  // [text](target): relative targets must exist on disk. External links
  // (scheme://...) and pure anchors (#...) are out of scope — the repo
  // must stay checkable offline.
  static const std::regex link(R"(\[[^\]]*\]\(([^)\s]+)\))");
  const std::vector<fs::path> files = doc_files();
  ASSERT_GT(files.size(), 1u) << "docs/ has no markdown files";
  std::size_t checked = 0;
  for (const fs::path& file : files) {
    const std::string text = read_file(file.string());
    ASSERT_FALSE(text.empty()) << file;
    for (std::sregex_iterator it(text.begin(), text.end(), link), end;
         it != end; ++it) {
      std::string target = (*it)[1].str();
      if (target.find("://") != std::string::npos) continue;
      if (target.rfind("mailto:", 0) == 0) continue;
      if (target[0] == '#') continue;
      const std::size_t anchor = target.find('#');
      if (anchor != std::string::npos) target.resize(anchor);
      if (target.empty()) continue;
      const fs::path resolved = file.parent_path() / target;
      EXPECT_TRUE(fs::exists(resolved))
          << file.filename().string() << " links to " << target
          << " which does not exist (resolved: " << resolved << ")";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u) << "link checker matched nothing — regex broken?";
}

TEST(DocsTest, DocsTreeHasTheCoreChapters) {
  for (const char* name :
       {"architecture.md", "tutorial.md", "observability.md", "flags.md"}) {
    EXPECT_TRUE(fs::exists(fs::path(source_root()) / "docs" / name))
        << "docs/" << name << " missing";
  }
}

}  // namespace
