// Tests for the tracing span API: nesting/ordering of spans, attribute
// rendering, and validity of the Chrome trace-event JSON output.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "support/json.hpp"
#include "support/trace.hpp"

namespace lr::support::trace {
namespace {

/// Finds the first event named `name` in a parsed trace document.
const JsonValue* find_event(const JsonValue& doc, std::string_view name) {
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr) return nullptr;
  for (const JsonValue& event : events->array) {
    const JsonValue* n = event.find("name");
    if (n != nullptr && n->string == name) return &event;
  }
  return nullptr;
}

TEST(TraceTest, DisabledCollectsNothing) {
  stop();
  {
    LR_TRACE_SPAN("never.recorded");
  }
  start();
  stop();  // start clears the buffer; nothing ran in between
  EXPECT_EQ(event_count(), 0u);
  {
    LR_TRACE_SPAN("after.stop");  // disabled again: also not recorded
  }
  EXPECT_EQ(event_count(), 0u);
}

TEST(TraceTest, RecordsNestedSpansInLifoOrder) {
  start();
  {
    LR_TRACE_SPAN_NAMED(outer, "outer");
    {
      LR_TRACE_SPAN("inner.a");
    }
    {
      LR_TRACE_SPAN("inner.b");
    }
  }
  stop();
  ASSERT_EQ(event_count(), 3u);

  const auto doc = json_parse(to_chrome_json());
  ASSERT_TRUE(doc.has_value()) << to_chrome_json();
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Children complete before their parent, so the parent is last.
  EXPECT_EQ(events->array[0].find("name")->string, "inner.a");
  EXPECT_EQ(events->array[1].find("name")->string, "inner.b");
  EXPECT_EQ(events->array[2].find("name")->string, "outer");
}

TEST(TraceTest, NestingIsContainedInParentInterval) {
  start();
  {
    LR_TRACE_SPAN("parent");
    {
      LR_TRACE_SPAN("child");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  stop();
  const auto doc = json_parse(to_chrome_json());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* parent = find_event(*doc, "parent");
  const JsonValue* child = find_event(*doc, "child");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  const double p_ts = parent->find("ts")->number;
  const double p_dur = parent->find("dur")->number;
  const double c_ts = child->find("ts")->number;
  const double c_dur = child->find("dur")->number;
  EXPECT_GE(c_ts, p_ts);
  EXPECT_LE(c_ts + c_dur, p_ts + p_dur + 1e-6);
  EXPECT_GE(c_dur, 1000.0);  // slept >= 1ms = 1000us
}

TEST(TraceTest, AttributesBecomeArgs) {
  start();
  {
    LR_TRACE_SPAN_NAMED(span, "with.args");
    span.attr("count", std::uint64_t{42});
    span.attr("states", 1.5e9);
    span.attr("label", std::string_view("hello \"world\""));
  }
  stop();
  const auto doc = json_parse(to_chrome_json());
  ASSERT_TRUE(doc.has_value()) << to_chrome_json();
  const JsonValue* event = find_event(*doc, "with.args");
  ASSERT_NE(event, nullptr);
  const JsonValue* args = event->find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_TRUE(args->is_object());
  EXPECT_EQ(args->find("count")->number, 42.0);
  EXPECT_EQ(args->find("states")->number, 1.5e9);
  EXPECT_EQ(args->find("label")->string, "hello \"world\"");
}

TEST(TraceTest, ChromeEnvelopeFields) {
  start();
  {
    LR_TRACE_SPAN("one");
  }
  stop();
  const auto doc = json_parse(to_chrome_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* event = find_event(*doc, "one");
  ASSERT_NE(event, nullptr);
  EXPECT_EQ(event->find("ph")->string, "X");
  EXPECT_TRUE(event->find("ts")->is_number());
  EXPECT_TRUE(event->find("dur")->is_number());
  EXPECT_TRUE(event->find("pid")->is_number());
  EXPECT_TRUE(event->find("tid")->is_number());
}

TEST(TraceTest, CloseEndsSpanEarly) {
  start();
  {
    LR_TRACE_SPAN_NAMED(phase1, "phase1");
    phase1.close();
    LR_TRACE_SPAN_NAMED(phase2, "phase2");
    phase2.close();
    phase1.close();  // idempotent
  }
  stop();
  ASSERT_EQ(event_count(), 2u);
  const auto doc = json_parse(to_chrome_json());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* p1 = find_event(*doc, "phase1");
  const JsonValue* p2 = find_event(*doc, "phase2");
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  // Sequential, not nested: phase2 starts at or after phase1's end.
  EXPECT_GE(p2->find("ts")->number,
            p1->find("ts")->number + p1->find("dur")->number - 1e-6);
}

TEST(TraceTest, StartClearsPreviousBuffer) {
  start();
  {
    LR_TRACE_SPAN("first.run");
  }
  stop();
  EXPECT_EQ(event_count(), 1u);
  start();
  stop();
  EXPECT_EQ(event_count(), 0u);
}

}  // namespace
}  // namespace lr::support::trace
