// Tests for the fixed-size thread pool and the parallel_for helper the
// batch executor is built on.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "support/thread_pool.hpp"

namespace lr::support {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, PoolIsReusableAfterWaitIdle) {
  std::atomic<int> counter{0};
  ThreadPool pool(3);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
  for (int i = 0; i < 10; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilRunningTasksFinish) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load());
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::mutex mutex;
  std::multiset<std::size_t> seen;
  parallel_for(200, 4, [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(i);
  });
  ASSERT_EQ(seen.size(), 200u);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(seen.count(i), 1u) << "index " << i;
  }
}

TEST(ParallelForTest, SingleJobRunsInlineInOrder) {
  std::vector<std::size_t> order;
  const auto caller = std::this_thread::get_id();
  parallel_for(10, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // no lock needed: inline execution
  });
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, EmptyRangeIsANoop) {
  bool ran = false;
  parallel_for(0, 8, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, UsesMultipleThreadsWhenAvailable) {
  std::mutex mutex;
  std::set<std::thread::id> ids;
  parallel_for(64, 4, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mutex);
    ids.insert(std::this_thread::get_id());
  });
  // With 4 workers and 64 sleeping tasks at least two workers must have
  // participated, even on a single hardware core.
  EXPECT_GE(ids.size(), 2u);
}

}  // namespace
}  // namespace lr::support
