#pragma once

// Random-program generator shared by the fuzz harnesses: random
// topologies, actions, faults, invariants and specifications over small
// finite domains. Factored out of the random-model soundness sweep so the
// sharded differential harness, property tests and future generators draw
// from one distribution.

#include <cstdint>
#include <memory>

#include "program/distributed_program.hpp"
#include "support/rng.hpp"

namespace lr::testgen {

/// Read/write structure of generated programs.
enum class Topology {
  kRandom,  ///< independent random reads/writes per process (the default)
  kRing,    ///< process i owns v_i, reads {v_{i-1 mod n}, v_i} — token-ring
            ///< shaped models with the locality the lazy groups exploit
  kTree,    ///< process i owns v_i, reads {v_parent(i), v_i} where
            ///< parent(i) = (i-1)/2 — rooted-binary-tree models (the root
            ///< reads only its own variable), the hierarchy shape of
            ///< diffusing-computation case studies
  kStar,    ///< process i owns v_i, reads {v_0, v_i} — hub-and-spoke
            ///< models where every process watches the hub's variable
            ///< (the hub p_0 reads only its own), the client/server shape
            ///< of centralized-coordinator case studies
};

/// Topology selected by the LR_FUZZ_TOPOLOGY environment variable
/// ("ring" -> kRing, "tree" -> kTree, "star" -> kStar; unset or anything
/// else -> kRandom). Read once per call so a harness can flip it between
/// shards.
[[nodiscard]] Topology topology_from_env();

/// Fault shape of generated programs.
enum class FaultClass {
  kHavoc,    ///< havoc one variable (nondeterministic scribble) — default
  kCorrupt,  ///< byzantine-style value corruption: guarded assigns that
             ///< overwrite interior variables with wrong constants,
             ///< modeling a corrupted message/register rather than an
             ///< arbitrary scribble
};

/// Fault class selected by the LR_FUZZ_FAULTS environment variable
/// ("corrupt" -> kCorrupt; unset or anything else -> kHavoc). Read once
/// per call, like topology_from_env.
[[nodiscard]] FaultClass fault_class_from_env();

/// Builds a random program: 2-3 variables of domain 2-3, 1-3 processes
/// with random read/write topology and random guarded commands, 1-2 fault
/// actions, a random nonempty invariant and a random (possibly empty)
/// safety specification. The distribution is tuned so a healthy fraction
/// of draws is repairable — a sweep that never succeeds tests nothing.
/// Honors LR_FUZZ_TOPOLOGY (see topology_from_env); kRing and kTree fix
/// the variable/process structure (directed ring / rooted binary tree)
/// and randomize only the guarded commands, faults and specification.
std::unique_ptr<prog::DistributedProgram> random_program(
    support::SplitMix64& rng);

/// Per-model seed of the sharded fuzz sweep: model `index` of a run with
/// base seed `base`. Plain addition on purpose — SplitMix64 is built to
/// decorrelate sequential seeds, and the identity model_seed(s, 0) == s
/// makes the printed repro (`LR_FUZZ_SEED=<seed> LR_FUZZ_MODELS=1`) replay
/// the exact failing model.
[[nodiscard]] constexpr std::uint64_t model_seed(std::uint64_t base,
                                                 std::uint64_t index) {
  return base + index;
}

}  // namespace lr::testgen
