// Flag-table sync tests: repair_cli's accepted flags, its --help text and
// the docs/flags.md reference are all generated from / checked against
// repair::repair_cli_flag_specs(). These tests keep them in sync:
//  1. every flag the repair_cli source actually queries is declared,
//  2. every declared flag appears in the generated --help text,
//  3. every declared flag appears in the generated Markdown reference
//     (the committed docs/flags.md copy is byte-checked by test_docs.cpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "repair/cli_spec.hpp"
#include "support/cli.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string source_root() { return LR_SOURCE_DIR; }

/// Flags the repair_cli source actually queries: every cli.has("x"),
/// cli.get("x", ...) and cli.get_int("x", ...) call site.
std::set<std::string> flags_queried_by_source() {
  const std::string source =
      read_file(source_root() + "/examples/repair_cli.cpp");
  EXPECT_FALSE(source.empty()) << "cannot read examples/repair_cli.cpp";
  static const std::regex query(R"~(cli\.(?:has|get|get_int)\(\s*"([a-z-]+)")~");
  std::set<std::string> names;
  for (std::sregex_iterator it(source.begin(), source.end(), query), end;
       it != end; ++it) {
    names.insert((*it)[1].str());
  }
  return names;
}

TEST(CliFlagsTest, EveryQueriedFlagIsDeclaredInTheSpecTable) {
  const auto& specs = lr::repair::repair_cli_flag_specs();
  std::set<std::string> declared;
  for (const lr::support::FlagSpec& spec : specs) declared.insert(spec.name);
  const std::set<std::string> queried = flags_queried_by_source();
  ASSERT_FALSE(queried.empty());
  for (const std::string& name : queried) {
    EXPECT_TRUE(declared.count(name) != 0)
        << "repair_cli queries --" << name
        << " but does not declare it in repair_cli_flag_specs() — "
        << "--help and docs/flags.md would miss it";
  }
}

TEST(CliFlagsTest, EveryDeclaredFlagAppearsInHelpOutput) {
  const std::string usage = lr::repair::repair_cli_usage("repair_cli");
  for (const lr::support::FlagSpec& spec :
       lr::repair::repair_cli_flag_specs()) {
    EXPECT_NE(usage.find("--" + spec.name), std::string::npos)
        << "--" << spec.name << " missing from --help output";
    EXPECT_FALSE(spec.help.empty()) << "--" << spec.name << " has no help";
  }
}

TEST(CliFlagsTest, EveryDeclaredFlagIsDocumentedInFlagsMarkdown) {
  const std::string markdown = lr::repair::repair_cli_flags_markdown();
  ASSERT_FALSE(markdown.empty());
  for (const lr::support::FlagSpec& spec :
       lr::repair::repair_cli_flag_specs()) {
    EXPECT_NE(markdown.find("`--" + spec.name + "`"), std::string::npos)
        << "--" << spec.name
        << " is missing from the generated docs/flags.md table";
    EXPECT_FALSE(spec.help.empty()) << "--" << spec.name << " has no help";
  }
  // Exactly one table row per declared flag, nothing invented.
  std::size_t rows = 0;
  for (std::size_t pos = markdown.find("\n| `--"); pos != std::string::npos;
       pos = markdown.find("\n| `--", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, lr::repair::repair_cli_flag_specs().size());
}

TEST(CliFlagsTest, FlagsMarkdownCellsAreSingleLine) {
  // The terminal help wraps with embedded newlines and uses '|' freely
  // (mode alternatives); the Markdown table must flatten the newlines and
  // escape the pipes or the table breaks.
  const std::string markdown = lr::repair::repair_cli_flags_markdown();
  std::istringstream lines(markdown);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("| `--", 0) != 0) continue;
    std::size_t cell_pipes = 0;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '|' && (i == 0 || line[i - 1] != '\\')) ++cell_pipes;
    }
    EXPECT_EQ(cell_pipes, 4u) << "table row malformed: " << line;
  }
}

TEST(CliFlagsTest, OptionNamesReportsEveryPassedFlag) {
  const char* argv[] = {"prog", "--alpha=1", "--beta", "value", "--gamma",
                        "--alpha=2"};
  const lr::support::CommandLine cli(6, argv);
  const std::vector<std::string> names = cli.option_names();
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "beta", "gamma"}));
}

TEST(CliFlagsTest, FormatFlagHelpAlignsAndContinuesMultilineHelp) {
  const std::vector<lr::support::FlagSpec> specs = {
      {"short", "N", "one line"},
      {"two-liner", "", "first\nsecond"},
  };
  const std::string text = lr::support::format_flag_help(specs);
  EXPECT_NE(text.find("  --short=N"), std::string::npos);
  EXPECT_NE(text.find("one line\n"), std::string::npos);
  // The continuation line is indented to the help column.
  EXPECT_NE(text.find("\n                        second\n"),
            std::string::npos)
      << text;
}

}  // namespace
