// Tests for dynamic variable reordering (sifting).

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/meminfo.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace lr::bdd {
namespace {

/// Truth-table fingerprint of f over the first `n` variables (n <= 16).
std::vector<bool> fingerprint(const Manager& mgr, const Bdd& f,
                              std::uint32_t n) {
  std::vector<bool> table;
  table.reserve(1u << n);
  std::vector<bool> assignment(n);
  for (std::uint32_t row = 0; row < (1u << n); ++row) {
    bool buf[16];
    for (std::uint32_t v = 0; v < n; ++v) buf[v] = ((row >> v) & 1u) != 0;
    table.push_back(mgr.eval(f, std::span<const bool>(buf, n)));
  }
  (void)assignment;
  return table;
}

TEST(BddReorderTest, SwapAdjacentLevelsPreservesSemantics) {
  Manager mgr;
  std::vector<VarIndex> vars;
  for (int i = 0; i < 6; ++i) vars.push_back(mgr.new_var());
  lr::support::SplitMix64 rng(5);
  Bdd f = mgr.bdd_false();
  for (int i = 0; i < 24; ++i) {
    Bdd term = mgr.bdd_true();
    for (const VarIndex v : vars) {
      if (rng.flip()) term &= rng.flip() ? mgr.bdd_var(v) : mgr.bdd_nvar(v);
    }
    f |= term;
  }
  const auto before = fingerprint(mgr, f, 6);
  for (std::uint32_t l = 0; l + 1 < 6; ++l) {
    (void)mgr.swap_adjacent_levels(l);
    EXPECT_EQ(fingerprint(mgr, f, 6), before) << "after swapping level " << l;
  }
  // Levels stay a permutation.
  std::vector<bool> seen(6, false);
  for (std::uint32_t l = 0; l < 6; ++l) {
    const VarIndex v = mgr.var_at_level(l);
    EXPECT_EQ(mgr.level_of(v), l);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(BddReorderTest, DoubleSwapIsStructuralIdentity) {
  Manager mgr;
  for (int i = 0; i < 4; ++i) (void)mgr.new_var();
  const Bdd f = (mgr.bdd_var(0) & mgr.bdd_var(1)) ^
                (mgr.bdd_var(2) | mgr.bdd_nvar(3));
  const NodeId id_before = f.id();
  (void)mgr.swap_adjacent_levels(1);
  (void)mgr.swap_adjacent_levels(1);
  EXPECT_EQ(f.id(), id_before);  // handle untouched by construction
  EXPECT_EQ(mgr.var_at_level(1), 1u);
  EXPECT_EQ(mgr.var_at_level(2), 2u);
  // Rebuilding the function reaches the same canonical node.
  const Bdd again = (mgr.bdd_var(0) & mgr.bdd_var(1)) ^
                    (mgr.bdd_var(2) | mgr.bdd_nvar(3));
  EXPECT_EQ(again, f);
}

TEST(BddReorderTest, SiftingShrinksTheCombFunction) {
  // f = a0·b0 + a1·b1 + ... with all a's declared before all b's: the
  // worst-case order (exponential BDD); interleaving makes it linear.
  constexpr std::uint32_t kPairs = 7;
  Manager mgr;
  std::vector<VarIndex> a(kPairs);
  std::vector<VarIndex> b(kPairs);
  for (auto& v : a) v = mgr.new_var();
  for (auto& v : b) v = mgr.new_var();
  Bdd f = mgr.bdd_false();
  for (std::uint32_t i = 0; i < kPairs; ++i) {
    f |= mgr.bdd_var(a[i]) & mgr.bdd_var(b[i]);
  }
  const std::size_t before = f.node_count();
  EXPECT_GT(before, (1u << kPairs));  // exponential under the bad order

  const auto table = fingerprint(mgr, f, 14);
  (void)mgr.reorder_sifting(2);
  // Semantics preserved through the same handle.
  EXPECT_EQ(fingerprint(mgr, f, 14), table);
  // Sifting must find (nearly) the interleaved order: linear size.
  EXPECT_LT(f.node_count(), 6 * kPairs);
}

TEST(BddReorderTest, OperationsAfterReorderAreCanonical) {
  Manager mgr;
  std::vector<VarIndex> vars;
  for (int i = 0; i < 8; ++i) vars.push_back(mgr.new_var());
  lr::support::SplitMix64 rng(77);
  Bdd f = mgr.bdd_false();
  for (int i = 0; i < 32; ++i) {
    Bdd term = mgr.bdd_true();
    for (const VarIndex v : vars) {
      if (rng.chance(2, 3)) {
        term &= rng.flip() ? mgr.bdd_var(v) : mgr.bdd_nvar(v);
      }
    }
    f |= term;
  }
  (void)mgr.reorder_sifting();
  // New operations must agree with a fresh manager computing in the
  // original order (semantic differential).
  const Bdd g = f ^ mgr.bdd_var(vars[3]);
  const Bdd h = mgr.exists(g, mgr.make_cube(std::vector<VarIndex>{vars[0],
                                                                  vars[5]}));
  EXPECT_EQ(h & f, f & h);
  EXPECT_EQ(~(~h), h);
  EXPECT_TRUE((h & ~h).is_false());
  // make_cube respects the new order (no assertion failures / malformed
  // cubes): quantifying everything yields a constant.
  std::vector<VarIndex> all(vars);
  const Bdd constant = mgr.exists(f, mgr.make_cube(all));
  EXPECT_TRUE(constant.is_true() || constant.is_false());
}

TEST(BddReorderTest, SatCountInvariantUnderReordering) {
  Manager mgr;
  std::vector<VarIndex> vars;
  for (int i = 0; i < 10; ++i) vars.push_back(mgr.new_var());
  lr::support::SplitMix64 rng(123);
  Bdd f = mgr.bdd_false();
  for (int i = 0; i < 64; ++i) {
    Bdd term = mgr.bdd_true();
    for (const VarIndex v : vars) {
      if (rng.flip()) term &= rng.flip() ? mgr.bdd_var(v) : mgr.bdd_nvar(v);
    }
    f |= term;
  }
  const double count = mgr.sat_count(f, 10);
  (void)mgr.reorder_sifting(2);
  EXPECT_DOUBLE_EQ(mgr.sat_count(f, 10), count);
}

TEST(BddReorderTest, ZeroPopulationVariablesSkipTheirJourneys) {
  // Four used variables, four that never label a node. Pre-fix, the empty
  // variables did full 2n-swap journeys and the upward tie-preference
  // bubbled them to the top; now they record a trivial move and stay put.
  Manager mgr;
  for (int i = 0; i < 8; ++i) (void)mgr.new_var();
  const Bdd f = (mgr.bdd_var(0) & mgr.bdd_var(2)) |
                (mgr.bdd_var(1) & mgr.bdd_var(3));
  const auto table = fingerprint(mgr, f, 8);
  (void)mgr.reorder_sifting(1);
  EXPECT_EQ(fingerprint(mgr, f, 8), table);

  ASSERT_FALSE(mgr.reorder_log().empty());
  const ReorderRecord& record = mgr.reorder_log().back();
  EXPECT_EQ(record.moves.size(), 8u) << "one move per variable, even skips";
  for (const SiftMove& move : record.moves) {
    if (move.var < 4) continue;
    EXPECT_EQ(move.start_level, move.end_level)
        << "empty variable " << move.var << " journeyed";
    EXPECT_EQ(move.node_delta, 0);
  }
  // The top level must hold live nodes: empty variables no longer float
  // above the populated ones.
  const std::vector<std::size_t> histogram = mgr.level_histogram();
  EXPECT_GT(histogram[0], 0u);
  for (std::uint32_t l = 4; l < 8; ++l) {
    EXPECT_EQ(histogram[l], 0u) << "level " << l;
  }
}

TEST(BddReorderTest, ResiftingAConvergedManagerStopsAfterOnePass) {
  // Same comb function as SiftingShrinksTheCombFunction: sift once to
  // convergence, then sift again — the second run's first pass relocates
  // and improves nothing and must end the run (no re-sifting loops).
  constexpr std::uint32_t kPairs = 6;
  Manager mgr;
  std::vector<VarIndex> a(kPairs);
  std::vector<VarIndex> b(kPairs);
  for (auto& v : a) v = mgr.new_var();
  for (auto& v : b) v = mgr.new_var();
  Bdd f = mgr.bdd_false();
  for (std::uint32_t i = 0; i < kPairs; ++i) {
    f |= mgr.bdd_var(a[i]) & mgr.bdd_var(b[i]);
  }
  (void)mgr.reorder_sifting(4);
  const std::size_t converged = mgr.live_nodes();
  (void)mgr.reorder_sifting(4);
  ASSERT_EQ(mgr.reorder_log().size(), 2u);
  const ReorderRecord& second = mgr.reorder_log().back();
  EXPECT_EQ(second.passes, 1) << "a no-move pass must end the run early";
  EXPECT_EQ(mgr.live_nodes(), converged);
  EXPECT_EQ(second.live_after, second.live_before);

  // The run is observable through the bdd.reorder.* metrics.
  meminfo::record_reorder_metrics(mgr);
  const support::metrics::Registry& m = support::metrics::registry();
  EXPECT_EQ(m.gauge("bdd.reorder.runs"), 2.0);
  EXPECT_EQ(m.gauge("bdd.reorder.passes"), 1.0);
  EXPECT_EQ(m.gauge("bdd.reorder.live_before"),
            static_cast<double>(converged));
  EXPECT_EQ(m.gauge("bdd.reorder.live_after"),
            static_cast<double>(converged));
}

TEST(BddReorderTest, SingleVariableIsANoOp) {
  Manager mgr;
  (void)mgr.new_var();
  const Bdd f = mgr.bdd_var(0);
  EXPECT_EQ(mgr.reorder_sifting(), mgr.live_nodes());
  EXPECT_EQ(f, mgr.bdd_var(0));
}

}  // namespace
}  // namespace lr::bdd
