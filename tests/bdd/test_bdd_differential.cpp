// Differential tests: the same computation executed in managers with very
// different cache and pool geometries (including one small enough to force
// many garbage collections) must produce semantically identical results.
// This guards against operation-cache aliasing and GC interactions that
// unit tests cannot reach.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "bdd/bdd.hpp"
#include "support/rng.hpp"

namespace lr::bdd {
namespace {

constexpr std::uint32_t kVars = 12;

/// Deterministically replays a random workload of boolean and quantifier
/// operations and returns a fingerprint of every intermediate result
/// (its satisfying-assignment count — semantic, so node ids don't matter).
std::vector<double> run_workload(const Manager::Options& options,
                                 std::uint64_t seed) {
  Manager mgr(options);
  std::vector<VarIndex> vars;
  for (std::uint32_t i = 0; i < kVars; ++i) vars.push_back(mgr.new_var());
  std::vector<VarIndex> evens;
  for (std::uint32_t i = 0; i < kVars; i += 2) evens.push_back(vars[i]);
  const Bdd cube = mgr.make_cube(evens);

  lr::support::SplitMix64 rng(seed);
  std::vector<Bdd> pool{mgr.bdd_true(), mgr.bdd_false()};
  for (const VarIndex v : vars) pool.push_back(mgr.bdd_var(v));

  std::vector<double> fingerprint;
  for (int step = 0; step < 300; ++step) {
    const Bdd& a = pool[rng.below(pool.size())];
    const Bdd& b = pool[rng.below(pool.size())];
    Bdd result;
    switch (rng.below(7)) {
      case 0: result = a & b; break;
      case 1: result = a | b; break;
      case 2: result = a ^ b; break;
      case 3: result = ~a; break;
      case 4: result = a.minus(b); break;
      case 5: result = mgr.exists(a, cube); break;
      default: result = mgr.and_exists(a, b, cube); break;
    }
    fingerprint.push_back(mgr.sat_count(result, kVars));
    pool.push_back(std::move(result));
    if (pool.size() > 40) {
      // Drop old entries so dead nodes accumulate and GC has work to do.
      pool.erase(pool.begin() + 2, pool.begin() + 20);
    }
  }
  return fingerprint;
}

class BddDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddDifferentialTest, GeometriesAgree) {
  Manager::Options big;
  big.cache_log2 = 20;
  big.initial_capacity = 1u << 16;
  big.gc_threshold = 1u << 20;

  Manager::Options tiny;
  tiny.cache_log2 = 8;          // heavy cache eviction
  tiny.initial_capacity = 256;  // forced pool growth
  tiny.gc_threshold = 2048;     // frequent garbage collections

  const auto reference = run_workload(big, GetParam());
  const auto stressed = run_workload(tiny, GetParam());
  ASSERT_EQ(reference.size(), stressed.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_DOUBLE_EQ(reference[i], stressed[i]) << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddDifferentialTest,
                         ::testing::Values(3ull, 17ull, 2026ull, 0xc0ffeeull));

}  // namespace
}  // namespace lr::bdd
