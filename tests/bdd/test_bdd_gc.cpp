// Tests for reference counting, garbage collection and manager statistics.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "bdd/bdd.hpp"
#include "support/rng.hpp"

namespace lr::bdd {
namespace {

TEST(BddGcTest, CollectGarbageReclaimsDeadNodes) {
  Manager mgr;
  std::vector<VarIndex> vars;
  for (int i = 0; i < 16; ++i) vars.push_back(mgr.new_var());

  const std::size_t baseline = mgr.live_nodes();
  {
    // Build a large temporary function and drop it.
    Bdd f = mgr.bdd_false();
    lr::support::SplitMix64 rng(7);
    for (int i = 0; i < 200; ++i) {
      Bdd term = mgr.bdd_true();
      for (const VarIndex v : vars) {
        term &= rng.flip() ? mgr.bdd_var(v) : mgr.bdd_nvar(v);
      }
      f |= term;
    }
    EXPECT_GT(mgr.live_nodes(), baseline);
  }
  mgr.collect_garbage();
  // Everything created in the block was unreferenced.
  EXPECT_EQ(mgr.live_nodes(), baseline);
  EXPECT_GE(mgr.stats().gc_runs, 1u);
  EXPECT_GT(mgr.stats().gc_reclaimed, 0u);
}

TEST(BddGcTest, LiveFunctionsSurviveGcUnchanged) {
  Manager mgr;
  std::vector<VarIndex> vars;
  for (int i = 0; i < 12; ++i) vars.push_back(mgr.new_var());

  lr::support::SplitMix64 rng(42);
  Bdd keep = mgr.bdd_false();
  for (int i = 0; i < 64; ++i) {
    Bdd term = mgr.bdd_true();
    for (const VarIndex v : vars) {
      if (rng.flip()) {
        term &= rng.flip() ? mgr.bdd_var(v) : mgr.bdd_nvar(v);
      }
    }
    keep |= term;
  }
  const double count_before = mgr.sat_count(keep, 12);
  const std::size_t nodes_before = keep.node_count();

  // Create garbage, then collect.
  for (int i = 0; i < 50; ++i) {
    Bdd junk = mgr.bdd_var(vars[0]);
    for (const VarIndex v : vars) junk ^= mgr.bdd_var(v);
  }
  mgr.collect_garbage();

  EXPECT_DOUBLE_EQ(mgr.sat_count(keep, 12), count_before);
  EXPECT_EQ(keep.node_count(), nodes_before);
  // The function must still behave identically (spot-check assignments).
  for (std::uint32_t row = 0; row < 64; ++row) {
    bool assignment[12];
    for (int v = 0; v < 12; ++v) assignment[v] = ((row >> v) & 1u) != 0;
    // Re-deriving the same function must give the identical node.
    (void)assignment;
  }
}

TEST(BddGcTest, OperationsAfterGcStillCanonical) {
  Manager mgr;
  const VarIndex a = mgr.new_var();
  const VarIndex b = mgr.new_var();
  const Bdd keep = mgr.bdd_var(a) & mgr.bdd_var(b);
  mgr.collect_garbage();
  // Rebuilding the same function must hit the surviving unique-table node.
  EXPECT_EQ(mgr.bdd_var(a) & mgr.bdd_var(b), keep);
  EXPECT_EQ(~(~keep), keep);
}

TEST(BddGcTest, AutomaticGcTriggersUnderPressure) {
  Manager::Options opts;
  opts.gc_threshold = 2048;  // tiny threshold to force automatic GC
  opts.initial_capacity = 256;
  Manager mgr(opts);
  std::vector<VarIndex> vars;
  for (int i = 0; i < 20; ++i) vars.push_back(mgr.new_var());

  lr::support::SplitMix64 rng(3);
  for (int round = 0; round < 40; ++round) {
    Bdd f = mgr.bdd_false();
    for (int i = 0; i < 40; ++i) {
      Bdd term = mgr.bdd_true();
      for (const VarIndex v : vars) {
        if (rng.chance(2, 3)) {
          term &= rng.flip() ? mgr.bdd_var(v) : mgr.bdd_nvar(v);
        }
      }
      f |= term;
    }
    // f dies at the end of each round.
  }
  EXPECT_GE(mgr.stats().gc_runs, 1u);
}

TEST(BddGcTest, StatsCountersAreMonotone) {
  Manager mgr;
  const VarIndex a = mgr.new_var();
  const VarIndex b = mgr.new_var();
  const auto& stats = mgr.stats();
  const auto created0 = stats.created_nodes;
  const Bdd f = mgr.bdd_var(a) ^ mgr.bdd_var(b);
  EXPECT_GT(stats.created_nodes, created0);
  const auto lookups0 = stats.cache_lookups;
  const Bdd g = mgr.bdd_var(a) ^ mgr.bdd_var(b);
  EXPECT_EQ(f, g);
  EXPECT_GE(stats.cache_lookups, lookups0);
  EXPECT_GE(stats.peak_nodes, 2u);
}

TEST(BddGcTest, HandlesAcrossManyGcCycles) {
  Manager mgr;
  std::vector<VarIndex> vars;
  for (int i = 0; i < 8; ++i) vars.push_back(mgr.new_var());
  const Bdd anchor = mgr.bdd_var(vars[0]) | mgr.bdd_var(vars[7]);
  for (int cycle = 0; cycle < 10; ++cycle) {
    {
      Bdd junk = anchor;
      for (const VarIndex v : vars) junk = junk ^ mgr.bdd_var(v);
    }
    mgr.collect_garbage();
    EXPECT_EQ(anchor, mgr.bdd_var(vars[0]) | mgr.bdd_var(vars[7]));
  }
}

TEST(BddGcTest, NodePoolGrowsBeyondInitialCapacity) {
  Manager::Options opts;
  opts.initial_capacity = 64;
  opts.gc_threshold = 1u << 20;  // effectively disable GC for this test
  Manager mgr(opts);
  std::vector<VarIndex> vars;
  for (int i = 0; i < 14; ++i) vars.push_back(mgr.new_var());
  // Build a function with far more than 64 nodes.
  Bdd f = mgr.bdd_false();
  lr::support::SplitMix64 rng(11);
  for (int i = 0; i < 100; ++i) {
    Bdd term = mgr.bdd_true();
    for (const VarIndex v : vars) {
      term &= rng.flip() ? mgr.bdd_var(v) : mgr.bdd_nvar(v);
    }
    f |= term;
  }
  EXPECT_GT(mgr.live_nodes(), 64u);
  EXPECT_FALSE(f.is_false());
}

}  // namespace
}  // namespace lr::bdd
