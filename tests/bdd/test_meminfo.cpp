// Unit tests for the BDD memory & structure telemetry: the per-level
// histogram must account for exactly the live internal nodes, occupancy
// figures must stay within their bounds, eviction/GC/reorder logs must
// record what actually happened, and the metrics mirror must carry it all.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/meminfo.hpp"
#include "support/metrics.hpp"

namespace lr::bdd {
namespace {

class BddMeminfoTest : public ::testing::Test {
 protected:
  BddMeminfoTest() {
    for (int i = 0; i < 8; ++i) vars_.push_back(mgr_.new_var());
  }

  /// Builds a function with nodes on several levels and keeps it alive.
  Bdd build_workload() {
    Bdd f = mgr_.bdd_true();
    for (std::size_t v = 0; v + 1 < vars_.size(); ++v) {
      f = f & (mgr_.bdd_var(vars_[v]) ^ mgr_.bdd_var(vars_[v + 1]));
    }
    return f;
  }

  Manager mgr_;
  std::vector<VarIndex> vars_;
};

TEST_F(BddMeminfoTest, LevelHistogramSumsToLiveInternalNodes) {
  const Bdd f = build_workload();
  mgr_.collect_garbage();  // drop intermediates: histogram == reachable
  const std::vector<std::size_t> hist = mgr_.level_histogram();
  ASSERT_EQ(hist.size(), vars_.size());
  const std::size_t internal =
      std::accumulate(hist.begin(), hist.end(), std::size_t{0});
  // live_nodes() counts the two terminals; the histogram does not.
  EXPECT_EQ(internal + 2, mgr_.live_nodes());
  EXPECT_GT(internal, 0u);
  (void)f;
}

TEST_F(BddMeminfoTest, CollectSnapshotsOccupancyWithinBounds) {
  const Bdd f = build_workload();
  const meminfo::MemInfo info = meminfo::collect(mgr_);
  EXPECT_EQ(info.live_nodes, mgr_.live_nodes());
  EXPECT_GE(info.peak_nodes, info.live_nodes);
  EXPECT_GE(info.peak_bytes, info.pool_bytes);
  EXPECT_GT(info.pool_bytes, 0u);
  EXPECT_LE(info.unique_buckets_used, info.unique_buckets);
  EXPECT_GE(info.unique_load, 0.0);
  EXPECT_LE(info.cache_entries_used, info.cache_entries);
  EXPECT_GE(info.cache_occupancy, 0.0);
  EXPECT_LE(info.cache_occupancy, 1.0);
  EXPECT_GE(info.cache_hit_rate, 0.0);
  EXPECT_LE(info.cache_hit_rate, 1.0);
  EXPECT_GT(info.cache_entries_used, 0u) << "workload must probe the cache";
  ASSERT_EQ(info.level_histogram.size(), vars_.size());
  ASSERT_EQ(info.var_at_level.size(), vars_.size());
  (void)f;
}

TEST_F(BddMeminfoTest, TinyCacheCountsEvictions) {
  Manager::Options options;
  options.cache_log2 = 4;  // 16 entries: collisions guaranteed
  Manager small(options);
  std::vector<VarIndex> vars;
  for (int i = 0; i < 10; ++i) vars.push_back(small.new_var());
  Bdd f = small.bdd_true();
  for (std::size_t v = 0; v + 1 < vars.size(); ++v) {
    f = f & (small.bdd_var(vars[v]) ^ small.bdd_var(vars[v + 1]));
  }
  EXPECT_GT(small.stats().cache_evictions, 0u);
}

TEST_F(BddMeminfoTest, GcLogRecordsTriggerAndReclaim) {
  {
    const Bdd f = build_workload();
    (void)f;
  }  // everything dead now
  ASSERT_TRUE(mgr_.gc_log().empty());
  mgr_.collect_garbage();
  ASSERT_EQ(mgr_.gc_log().size(), 1u);
  const GcRecord& record = mgr_.gc_log().front();
  EXPECT_EQ(record.trigger, GcTrigger::kExplicit);
  EXPECT_GT(record.reclaimed, 0u);
  EXPECT_EQ(record.live_before - record.live_after, record.reclaimed);
  EXPECT_EQ(mgr_.gc_log_dropped(), 0u);
  EXPECT_STREQ(gc_trigger_name(record.trigger), "explicit");
}

TEST_F(BddMeminfoTest, ReorderLogRecordsPerVariableJourneys) {
  const Bdd f = build_workload();
  ASSERT_TRUE(mgr_.reorder_log().empty());
  mgr_.reorder_sifting(1);
  ASSERT_EQ(mgr_.reorder_log().size(), 1u);
  const ReorderRecord& record = mgr_.reorder_log().front();
  EXPECT_EQ(record.passes, 1);
  // One journey per variable per pass, each settling inside the order.
  ASSERT_EQ(record.moves.size(), vars_.size());
  for (const SiftMove& move : record.moves) {
    EXPECT_LT(move.start_level, vars_.size());
    EXPECT_LT(move.end_level, vars_.size());
    EXPECT_LE(move.node_delta, 0) << "sifting never settles for worse";
  }
  // Sifting's internal GCs carry the reorder trigger.
  bool saw_reorder_gc = false;
  for (const GcRecord& gc : mgr_.gc_log()) {
    saw_reorder_gc = saw_reorder_gc || gc.trigger == GcTrigger::kReorder;
  }
  EXPECT_TRUE(saw_reorder_gc);
  (void)f;
}

TEST_F(BddMeminfoTest, WriteReportListsTopLevelsDeterministically) {
  const Bdd f = build_workload();
  mgr_.collect_garbage();
  const meminfo::MemInfo info = meminfo::collect(mgr_);
  std::ostringstream out;
  meminfo::write_report(info, out, /*max_levels=*/3);
  const std::string text = out.str();
  EXPECT_NE(text.find("bdd memory:"), std::string::npos) << text;
  EXPECT_NE(text.find("unique table"), std::string::npos) << text;
  EXPECT_NE(text.find("op cache"), std::string::npos) << text;
  EXPECT_NE(text.find("top levels by live nodes"), std::string::npos) << text;
  // Two identical snapshots render identically.
  std::ostringstream again;
  meminfo::write_report(meminfo::collect(mgr_), again, /*max_levels=*/3);
  EXPECT_EQ(text, again.str());
  (void)f;
}

TEST_F(BddMeminfoTest, MetricsMirrorCarriesMemAndReorderKeys) {
  const Bdd f = build_workload();
  mgr_.reorder_sifting(1);
  const meminfo::MemInfo info = meminfo::collect(mgr_);
  meminfo::record_metrics(info, "meminfotest.mem");
  meminfo::record_reorder_metrics(mgr_, "meminfotest.reorder");
  support::metrics::Registry& m = support::metrics::registry();
  EXPECT_EQ(m.gauge("meminfotest.mem.live_nodes"),
            static_cast<double>(info.live_nodes));
  EXPECT_EQ(m.gauge("meminfotest.mem.peak_bytes"),
            static_cast<double>(info.peak_bytes));
  EXPECT_GT(m.gauge("meminfotest.mem.unique_buckets"), 0.0);
  EXPECT_EQ(m.gauge("meminfotest.reorder.runs"), 1.0);
  const SiftMove& first = mgr_.reorder_log().back().moves.front();
  const std::string base =
      "meminfotest.reorder.var." + std::to_string(first.var) + ".";
  EXPECT_EQ(m.gauge(base + "start_level"),
            static_cast<double>(first.start_level));
  EXPECT_EQ(m.gauge(base + "end_level"),
            static_cast<double>(first.end_level));
  // Per-level histogram gauges exist for populated levels.
  bool found_level = false;
  for (std::size_t level = 0; level < info.level_histogram.size(); ++level) {
    if (info.level_histogram[level] == 0) continue;
    found_level = true;
    EXPECT_EQ(m.gauge("meminfotest.mem.level." + std::to_string(level) +
                      ".nodes"),
              static_cast<double>(info.level_histogram[level]));
  }
  EXPECT_TRUE(found_level);
  (void)f;
}

}  // namespace
}  // namespace lr::bdd
