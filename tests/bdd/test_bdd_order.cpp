// Tests for the static-order layer over the BDD manager: applying a target
// level permutation through adjacent swaps, restoring the creation order,
// and the persisted order-profile JSON format.

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/order.hpp"
#include "support/rng.hpp"

namespace lr::bdd {
namespace {

/// Truth-table fingerprint of f over the first `n` variables (n <= 16).
std::vector<bool> fingerprint(const Manager& mgr, const Bdd& f,
                              std::uint32_t n) {
  std::vector<bool> table;
  table.reserve(1u << n);
  for (std::uint32_t row = 0; row < (1u << n); ++row) {
    bool buf[16];
    for (std::uint32_t v = 0; v < n; ++v) buf[v] = ((row >> v) & 1u) != 0;
    table.push_back(mgr.eval(f, std::span<const bool>(buf, n)));
  }
  return table;
}

Bdd random_function(Manager& mgr, std::uint32_t n, std::uint64_t seed) {
  support::SplitMix64 rng(seed);
  Bdd f = mgr.bdd_false();
  for (int i = 0; i < 24; ++i) {
    Bdd term = mgr.bdd_true();
    for (VarIndex v = 0; v < n; ++v) {
      if (rng.flip()) term &= rng.flip() ? mgr.bdd_var(v) : mgr.bdd_nvar(v);
    }
    f |= term;
  }
  return f;
}

TEST(BddOrderTest, ApplyOrderRealizesTheTargetPermutation) {
  Manager mgr;
  for (int i = 0; i < 6; ++i) (void)mgr.new_var();
  const Bdd f = random_function(mgr, 6, 11);
  const auto table = fingerprint(mgr, f, 6);

  const std::vector<VarIndex> target = {3, 1, 5, 0, 4, 2};
  const std::size_t swaps = order::apply_order(mgr, target);
  EXPECT_GT(swaps, 0u);
  for (std::uint32_t level = 0; level < 6; ++level) {
    EXPECT_EQ(mgr.var_at_level(level), target[level]) << "level " << level;
    EXPECT_EQ(mgr.level_of(target[level]), level);
  }
  EXPECT_EQ(fingerprint(mgr, f, 6), table) << "handles must keep semantics";

  // Applying the order the manager already has costs zero swaps.
  EXPECT_EQ(order::apply_order(mgr, target), 0u);
}

TEST(BddOrderTest, RestoreCreationOrderIsTheIdentityPermutation) {
  Manager mgr;
  for (int i = 0; i < 5; ++i) (void)mgr.new_var();
  const Bdd f = random_function(mgr, 5, 7);
  const auto table = fingerprint(mgr, f, 5);
  (void)order::apply_order(mgr, std::vector<VarIndex>{4, 2, 0, 3, 1});
  (void)order::restore_creation_order(mgr);
  for (std::uint32_t level = 0; level < 5; ++level) {
    EXPECT_EQ(mgr.var_at_level(level), level);
  }
  EXPECT_EQ(fingerprint(mgr, f, 5), table);
  EXPECT_EQ(order::restore_creation_order(mgr), 0u) << "already restored";
}

TEST(BddOrderTest, ApplyOrderRejectsNonPermutations) {
  Manager mgr;
  for (int i = 0; i < 4; ++i) (void)mgr.new_var();
  // Wrong size.
  EXPECT_THROW((void)order::apply_order(mgr, std::vector<VarIndex>{0, 1, 2}),
               std::invalid_argument);
  // Duplicate entry.
  EXPECT_THROW(
      (void)order::apply_order(mgr, std::vector<VarIndex>{0, 1, 2, 2}),
      std::invalid_argument);
  // Out-of-range entry.
  EXPECT_THROW(
      (void)order::apply_order(mgr, std::vector<VarIndex>{0, 1, 2, 9}),
      std::invalid_argument);
  // The failed calls must not have moved anything.
  for (std::uint32_t level = 0; level < 4; ++level) {
    EXPECT_EQ(mgr.var_at_level(level), level);
  }
}

TEST(BddOrderTest, ProfileJsonRoundTripsExactly) {
  Manager mgr;
  for (int i = 0; i < 4; ++i) (void)mgr.new_var();
  const Bdd f = random_function(mgr, 4, 3);
  (void)f;
  const std::vector<std::string> labels = {"a.0", "a.0'", "b.0", "b.0'"};
  const order::OrderProfile profile =
      order::capture_profile(mgr, labels, "toy-model", "adjacency");
  EXPECT_EQ(profile.model, "toy-model");
  EXPECT_EQ(profile.source, "adjacency");
  ASSERT_EQ(profile.levels.size(), 4u);
  EXPECT_EQ(profile.levels[0].label, "a.0");

  const std::string json = order::profile_to_json(profile);
  const auto parsed = order::parse_profile(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->model, profile.model);
  EXPECT_EQ(parsed->source, profile.source);
  EXPECT_EQ(parsed->live_nodes, profile.live_nodes);
  EXPECT_EQ(parsed->peak_nodes, profile.peak_nodes);
  EXPECT_EQ(parsed->reorder_runs, profile.reorder_runs);
  ASSERT_EQ(parsed->levels.size(), profile.levels.size());
  for (std::size_t i = 0; i < profile.levels.size(); ++i) {
    EXPECT_EQ(parsed->levels[i].label, profile.levels[i].label);
    EXPECT_EQ(parsed->levels[i].nodes, profile.levels[i].nodes);
  }
  // Serialization is a fixpoint: parse(json) re-serializes byte-identically
  // (the warm-start golden tests depend on this).
  EXPECT_EQ(order::profile_to_json(*parsed), json);
}

TEST(BddOrderTest, ProfileLevelsFollowTheCurrentLevelOrder) {
  Manager mgr;
  for (int i = 0; i < 4; ++i) (void)mgr.new_var();
  (void)order::apply_order(mgr, std::vector<VarIndex>{2, 0, 3, 1});
  const std::vector<std::string> labels = {"a", "b", "c", "d"};
  const order::OrderProfile profile =
      order::capture_profile(mgr, labels, "m", "decl");
  ASSERT_EQ(profile.levels.size(), 4u);
  EXPECT_EQ(profile.levels[0].label, "c");
  EXPECT_EQ(profile.levels[1].label, "a");
  EXPECT_EQ(profile.levels[2].label, "d");
  EXPECT_EQ(profile.levels[3].label, "b");
}

TEST(BddOrderTest, ParseProfileRejectsMalformedInput) {
  EXPECT_FALSE(order::parse_profile("").has_value());
  EXPECT_FALSE(order::parse_profile("{ not json").has_value());
  EXPECT_FALSE(order::parse_profile("{}").has_value());
  // Wrong schema tag: must read as unusable, not as data.
  EXPECT_FALSE(order::parse_profile(
                   R"({"schema": "lr.other/9", "model": "m", "source": "s",)"
                   R"( "levels": []})")
                   .has_value());
  // Levels must be an array of {label, nodes} objects.
  EXPECT_FALSE(order::parse_profile(
                   R"({"schema": "lr.order-profile/1", "model": "m",)"
                   R"( "source": "s", "levels": [42]})")
                   .has_value());
}

TEST(BddOrderTest, SaveAndLoadProfileThroughAFile) {
  Manager mgr;
  for (int i = 0; i < 3; ++i) (void)mgr.new_var();
  const std::vector<std::string> labels = {"x", "y", "z"};
  const order::OrderProfile profile =
      order::capture_profile(mgr, labels, "m", "interleave");
  const std::string path = ::testing::TempDir() + "order_profile_test.json";
  ASSERT_TRUE(order::save_profile(profile, path));
  const auto loaded = order::load_profile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(order::profile_to_json(*loaded), order::profile_to_json(profile));
  std::remove(path.c_str());
  EXPECT_FALSE(order::load_profile(path).has_value());
  EXPECT_FALSE(order::load_profile("/no/such/dir/p.json").has_value());
}

}  // namespace
}  // namespace lr::bdd
