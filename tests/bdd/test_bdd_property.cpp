// Property-based tests: random boolean formulas are compiled both to BDDs
// and to a brute-force truth-table evaluator; every operation must agree on
// every assignment. Parameterized over seeds so failures reproduce exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "bdd/bdd.hpp"
#include "support/rng.hpp"

namespace lr::bdd {
namespace {

constexpr std::uint32_t kNumVars = 8;

/// A random formula represented simultaneously as a BDD and as a truth
/// table over kNumVars variables (bit i of `table` = value on assignment i,
/// where assignment bit j = value of variable j).
struct Formula {
  Bdd bdd;
  std::uint64_t table = 0;  // 2^8 = 256 rows; we use a pair of uint64? No:
                            // 256 bits needed -> use 4 words.
};

/// 256-bit truth table (one bit per assignment of 8 variables).
struct Table {
  std::uint64_t w[4] = {0, 0, 0, 0};

  static Table zeros() { return {}; }
  static Table ones() {
    Table t;
    for (auto& x : t.w) x = ~0ull;
    return t;
  }
  static Table var(std::uint32_t v) {
    Table t;
    for (std::uint32_t row = 0; row < 256; ++row) {
      if ((row >> v) & 1u) t.set(row);
    }
    return t;
  }
  void set(std::uint32_t row) { w[row >> 6] |= 1ull << (row & 63); }
  [[nodiscard]] bool get(std::uint32_t row) const {
    return (w[row >> 6] >> (row & 63)) & 1u;
  }
  [[nodiscard]] Table operator&(const Table& o) const {
    Table t;
    for (int i = 0; i < 4; ++i) t.w[i] = w[i] & o.w[i];
    return t;
  }
  [[nodiscard]] Table operator|(const Table& o) const {
    Table t;
    for (int i = 0; i < 4; ++i) t.w[i] = w[i] | o.w[i];
    return t;
  }
  [[nodiscard]] Table operator^(const Table& o) const {
    Table t;
    for (int i = 0; i < 4; ++i) t.w[i] = w[i] ^ o.w[i];
    return t;
  }
  [[nodiscard]] Table operator~() const {
    Table t;
    for (int i = 0; i < 4; ++i) t.w[i] = ~w[i];
    return t;
  }
  [[nodiscard]] bool operator==(const Table& o) const {
    for (int i = 0; i < 4; ++i) {
      if (w[i] != o.w[i]) return false;
    }
    return true;
  }
  [[nodiscard]] int popcount() const {
    int n = 0;
    for (const auto x : w) n += __builtin_popcountll(x);
    return n;
  }
};

struct Pair {
  Bdd bdd;
  Table table;
};

/// Builds a random formula of the given depth as both representations.
Pair random_formula(Manager& mgr, lr::support::SplitMix64& rng, int depth) {
  if (depth == 0) {
    switch (rng.below(4)) {
      case 0:
        return {mgr.bdd_false(), Table::zeros()};
      case 1:
        return {mgr.bdd_true(), Table::ones()};
      default: {
        const auto v = static_cast<std::uint32_t>(rng.below(kNumVars));
        return {mgr.bdd_var(v), Table::var(v)};
      }
    }
  }
  const Pair a = random_formula(mgr, rng, depth - 1);
  switch (rng.below(4)) {
    case 0: {
      const Pair b = random_formula(mgr, rng, depth - 1);
      return {a.bdd & b.bdd, a.table & b.table};
    }
    case 1: {
      const Pair b = random_formula(mgr, rng, depth - 1);
      return {a.bdd | b.bdd, a.table | b.table};
    }
    case 2: {
      const Pair b = random_formula(mgr, rng, depth - 1);
      return {a.bdd ^ b.bdd, a.table ^ b.table};
    }
    default:
      return {~a.bdd, ~a.table};
  }
}

/// Checks that the BDD evaluates exactly like the table.
void expect_equivalent(Manager& mgr, const Bdd& f, const Table& t) {
  for (std::uint32_t row = 0; row < 256; ++row) {
    bool assignment[kNumVars];
    for (std::uint32_t v = 0; v < kNumVars; ++v) {
      assignment[v] = ((row >> v) & 1u) != 0;
    }
    ASSERT_EQ(mgr.eval(f, assignment), t.get(row)) << "row " << row;
  }
}

class BddPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  BddPropertyTest() {
    for (std::uint32_t i = 0; i < kNumVars; ++i) (void)mgr_.new_var();
  }
  Manager mgr_;
};

TEST_P(BddPropertyTest, RandomFormulaMatchesTruthTable) {
  lr::support::SplitMix64 rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const Pair p = random_formula(mgr_, rng, 5);
    expect_equivalent(mgr_, p.bdd, p.table);
  }
}

TEST_P(BddPropertyTest, SatCountMatchesPopcount) {
  lr::support::SplitMix64 rng(GetParam() ^ 0x5eedull);
  for (int round = 0; round < 20; ++round) {
    const Pair p = random_formula(mgr_, rng, 5);
    EXPECT_DOUBLE_EQ(mgr_.sat_count(p.bdd, kNumVars),
                     static_cast<double>(p.table.popcount()));
  }
}

TEST_P(BddPropertyTest, ExistsMatchesDisjunctionOfCofactors) {
  lr::support::SplitMix64 rng(GetParam() ^ 0xe715ull);
  for (int round = 0; round < 20; ++round) {
    const Pair p = random_formula(mgr_, rng, 5);
    const auto v = static_cast<VarIndex>(rng.below(kNumVars));
    const VarIndex vs[1] = {v};
    const Bdd quantified = mgr_.exists(p.bdd, mgr_.make_cube(vs));
    const Bdd expected =
        mgr_.cofactor(p.bdd, v, false) | mgr_.cofactor(p.bdd, v, true);
    EXPECT_EQ(quantified, expected);
  }
}

TEST_P(BddPropertyTest, ForallMatchesConjunctionOfCofactors) {
  lr::support::SplitMix64 rng(GetParam() ^ 0xfa11ull);
  for (int round = 0; round < 20; ++round) {
    const Pair p = random_formula(mgr_, rng, 5);
    const auto v = static_cast<VarIndex>(rng.below(kNumVars));
    const VarIndex vs[1] = {v};
    const Bdd quantified = mgr_.forall(p.bdd, mgr_.make_cube(vs));
    const Bdd expected =
        mgr_.cofactor(p.bdd, v, false) & mgr_.cofactor(p.bdd, v, true);
    EXPECT_EQ(quantified, expected);
  }
}

TEST_P(BddPropertyTest, AndExistsAgreesWithSequentialOps) {
  lr::support::SplitMix64 rng(GetParam() ^ 0xae0ull);
  for (int round = 0; round < 20; ++round) {
    const Pair f = random_formula(mgr_, rng, 4);
    const Pair g = random_formula(mgr_, rng, 4);
    std::vector<VarIndex> vs;
    for (VarIndex v = 0; v < kNumVars; ++v) {
      if (rng.flip()) vs.push_back(v);
    }
    const Bdd cube = mgr_.make_cube(vs);
    EXPECT_EQ(mgr_.and_exists(f.bdd, g.bdd, cube),
              mgr_.exists(f.bdd & g.bdd, cube));
  }
}

TEST_P(BddPropertyTest, LeqAndDisjointAgreeWithConstructedSets) {
  lr::support::SplitMix64 rng(GetParam() ^ 0x1e0ull);
  for (int round = 0; round < 30; ++round) {
    const Pair f = random_formula(mgr_, rng, 4);
    const Pair g = random_formula(mgr_, rng, 4);
    EXPECT_EQ(f.bdd.leq(g.bdd), f.bdd.minus(g.bdd).is_false());
    EXPECT_EQ(f.bdd.disjoint(g.bdd), (f.bdd & g.bdd).is_false());
  }
}

TEST_P(BddPropertyTest, PermuteMatchesTableReindexing) {
  lr::support::SplitMix64 rng(GetParam() ^ 0x9e1ull);
  // Random permutation of the variables.
  std::vector<VarIndex> perm(kNumVars);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::uint32_t i = kNumVars - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.below(i + 1)]);
  }
  const PermId pid = mgr_.register_permutation(perm);
  for (int round = 0; round < 10; ++round) {
    const Pair p = random_formula(mgr_, rng, 5);
    const Bdd permuted = mgr_.permute(p.bdd, pid);
    // permuted(x) must equal f(y) where y[v] = x[perm[v]].
    for (std::uint32_t row = 0; row < 256; ++row) {
      bool x[kNumVars];
      for (std::uint32_t v = 0; v < kNumVars; ++v) {
        x[v] = ((row >> v) & 1u) != 0;
      }
      std::uint32_t orig_row = 0;
      for (std::uint32_t v = 0; v < kNumVars; ++v) {
        if (x[perm[v]]) orig_row |= 1u << v;
      }
      ASSERT_EQ(mgr_.eval(permuted, x), p.table.get(orig_row))
          << "round " << round << " row " << row;
    }
  }
}

TEST_P(BddPropertyTest, PickMintermAlwaysInsideFunction) {
  lr::support::SplitMix64 rng(GetParam() ^ 0x71c7ull);
  std::vector<VarIndex> all(kNumVars);
  std::iota(all.begin(), all.end(), 0);
  const Bdd cube = mgr_.make_cube(all);
  for (int round = 0; round < 30; ++round) {
    const Pair p = random_formula(mgr_, rng, 5);
    if (p.bdd.is_false()) continue;
    const Bdd m = mgr_.pick_minterm(p.bdd, cube);
    EXPECT_TRUE(m.leq(p.bdd));
    EXPECT_DOUBLE_EQ(mgr_.sat_count(m, kNumVars), 1.0);
  }
}

TEST_P(BddPropertyTest, ForeachMintermEnumerationMatchesTable) {
  lr::support::SplitMix64 rng(GetParam() ^ 0xf0eull);
  std::vector<VarIndex> all(kNumVars);
  std::iota(all.begin(), all.end(), 0);
  const Bdd cube = mgr_.make_cube(all);
  const Pair p = random_formula(mgr_, rng, 5);
  Table seen = Table::zeros();
  std::size_t count = 0;
  mgr_.foreach_minterm(p.bdd, cube, [&](std::span<const bool> values) {
    std::uint32_t row = 0;
    for (std::uint32_t v = 0; v < kNumVars; ++v) {
      if (values[v]) row |= 1u << v;
    }
    seen.set(row);
    ++count;
  });
  EXPECT_TRUE(seen == p.table);
  EXPECT_EQ(static_cast<int>(count), p.table.popcount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddPropertyTest,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull, 55ull, 89ull));

}  // namespace
}  // namespace lr::bdd
