// Unit tests for quantification, permutation, minterm extraction and
// counting — the operations the repair algorithms are built from.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "bdd/bdd.hpp"

namespace lr::bdd {
namespace {

class BddQuantifyTest : public ::testing::Test {
 protected:
  BddQuantifyTest() {
    for (int i = 0; i < 10; ++i) vars_.push_back(mgr_.new_var());
  }

  Bdd v(int i) { return mgr_.bdd_var(vars_[i]); }
  Bdd cube(std::initializer_list<int> is) {
    std::vector<VarIndex> vs;
    for (int i : is) vs.push_back(vars_[i]);
    return mgr_.make_cube(vs);
  }

  Manager mgr_;
  std::vector<VarIndex> vars_;
};

TEST_F(BddQuantifyTest, ExistsDropsAVariable) {
  // ∃a. (a ∧ b) = b ; ∃a. (a ∧ ¬a) = 0 ; ∃a. b = b
  EXPECT_EQ(mgr_.exists(v(0) & v(1), cube({0})), v(1));
  EXPECT_EQ(mgr_.exists(mgr_.bdd_false(), cube({0})), mgr_.bdd_false());
  EXPECT_EQ(mgr_.exists(v(1), cube({0})), v(1));
}

TEST_F(BddQuantifyTest, ExistsOfXorIsTrue) {
  EXPECT_EQ(mgr_.exists(v(0) ^ v(1), cube({0})), mgr_.bdd_true());
  EXPECT_EQ(mgr_.exists(v(0) ^ v(1), cube({0, 1})), mgr_.bdd_true());
}

TEST_F(BddQuantifyTest, ForallIsDualOfExists) {
  const Bdd f = (v(0) & v(1)) | v(2);
  const Bdd c = cube({0, 2});
  EXPECT_EQ(mgr_.forall(f, c), ~mgr_.exists(~f, c));
  // ∀a. (a ∨ b) = b; ∀a. a = 0.
  EXPECT_EQ(mgr_.forall(v(0) | v(1), cube({0})), v(1));
  EXPECT_EQ(mgr_.forall(v(0), cube({0})), mgr_.bdd_false());
}

TEST_F(BddQuantifyTest, QuantifierOverEmptyCubeIsIdentity) {
  const Bdd f = (v(0) & v(1)) ^ v(3);
  EXPECT_EQ(mgr_.exists(f, mgr_.bdd_true()), f);
  EXPECT_EQ(mgr_.forall(f, mgr_.bdd_true()), f);
}

TEST_F(BddQuantifyTest, AndExistsMatchesComposition) {
  const Bdd f = (v(0) & v(1)) | (v(2) & ~v(3));
  const Bdd g = v(1) ^ v(2);
  const Bdd c = cube({1, 2});
  EXPECT_EQ(mgr_.and_exists(f, g, c), mgr_.exists(f & g, c));
  // Also when the cube mentions variables absent from both operands.
  const Bdd c2 = cube({1, 2, 7, 9});
  EXPECT_EQ(mgr_.and_exists(f, g, c2), mgr_.exists(f & g, c2));
}

TEST_F(BddQuantifyTest, AndExistsWithEmptyCubeIsConjunction) {
  const Bdd f = v(0) | v(4);
  const Bdd g = ~v(0) | v(5);
  EXPECT_EQ(mgr_.and_exists(f, g, mgr_.bdd_true()), f & g);
}

TEST_F(BddQuantifyTest, PermutationSwapsVariables) {
  // Swap variables 0 <-> 1 globally (identity elsewhere).
  std::vector<VarIndex> perm(mgr_.var_count());
  std::iota(perm.begin(), perm.end(), 0);
  std::swap(perm[vars_[0]], perm[vars_[1]]);
  const PermId pid = mgr_.register_permutation(perm);

  EXPECT_EQ(mgr_.permute(v(0), pid), v(1));
  EXPECT_EQ(mgr_.permute(v(1), pid), v(0));
  EXPECT_EQ(mgr_.permute(v(2), pid), v(2));
  const Bdd f = (v(0) & ~v(1)) | v(2);
  const Bdd expected = (v(1) & ~v(0)) | v(2);
  EXPECT_EQ(mgr_.permute(f, pid), expected);
  // An involution: applying the swap twice is the identity.
  EXPECT_EQ(mgr_.permute(mgr_.permute(f, pid), pid), f);
}

TEST_F(BddQuantifyTest, PermutationAcrossDistantLevels) {
  std::vector<VarIndex> perm(mgr_.var_count());
  std::iota(perm.begin(), perm.end(), 0);
  std::swap(perm[vars_[0]], perm[vars_[9]]);
  const PermId pid = mgr_.register_permutation(perm);
  const Bdd f = v(0).ite(v(4), v(9));
  const Bdd expected = v(9).ite(v(4), v(0));
  EXPECT_EQ(mgr_.permute(f, pid), expected);
}

TEST_F(BddQuantifyTest, RegisterPermutationRejectsWrongSize) {
  const std::vector<VarIndex> tooshort(2, 0);
  EXPECT_THROW((void)mgr_.register_permutation(tooshort),
               std::invalid_argument);
}

TEST_F(BddQuantifyTest, SatCountSmallFunctions) {
  EXPECT_DOUBLE_EQ(mgr_.sat_count(mgr_.bdd_true(), 3), 8.0);
  EXPECT_DOUBLE_EQ(mgr_.sat_count(mgr_.bdd_false(), 3), 0.0);
  EXPECT_DOUBLE_EQ(mgr_.sat_count(v(0), 3), 4.0);
  EXPECT_DOUBLE_EQ(mgr_.sat_count(v(0) & v(1), 3), 2.0);
  EXPECT_DOUBLE_EQ(mgr_.sat_count(v(0) | v(1), 3), 6.0);
  EXPECT_DOUBLE_EQ(mgr_.sat_count(v(0) ^ v(1), 2), 2.0);
}

TEST_F(BddQuantifyTest, SatCountScalesWithUniverseSize) {
  const Bdd f = v(0);
  EXPECT_DOUBLE_EQ(mgr_.sat_count(f, 1), 1.0);
  EXPECT_DOUBLE_EQ(mgr_.sat_count(f, 10), 512.0);
  // Huge universes do not overflow (doubles carry the exponent).
  EXPECT_GT(mgr_.sat_count(mgr_.bdd_true(), 200), 1e59);
}

TEST_F(BddQuantifyTest, PickMintermReturnsAMintermInsideF) {
  const Bdd f = (v(0) & v(1)) | (v(2) & v(3));
  const Bdd c = cube({0, 1, 2, 3});
  const Bdd m = mgr_.pick_minterm(f, c);
  EXPECT_TRUE(m.leq(f));
  EXPECT_FALSE(m.is_false());
  // A minterm over 4 variables has exactly one satisfying assignment.
  EXPECT_DOUBLE_EQ(mgr_.sat_count(m, 4), 1.0);
}

TEST_F(BddQuantifyTest, PickMintermIsDeterministicAndPrefersZero) {
  // f = v2 alone; picking over {0,1,2} must fix v0=v1=0, v2=1.
  const Bdd m = mgr_.pick_minterm(v(2), cube({0, 1, 2}));
  EXPECT_EQ(m, ~v(0) & ~v(1) & v(2));
  EXPECT_EQ(m, mgr_.pick_minterm(v(2), cube({0, 1, 2})));
}

TEST_F(BddQuantifyTest, PickMintermThrowsOnFalse) {
  EXPECT_THROW((void)mgr_.pick_minterm(mgr_.bdd_false(), cube({0})),
               std::invalid_argument);
}

TEST_F(BddQuantifyTest, ForeachMintermEnumeratesAllSolutions) {
  const Bdd f = v(0) ^ v(1);
  std::vector<std::vector<bool>> seen;
  mgr_.foreach_minterm(f, cube({0, 1}), [&](std::span<const bool> values) {
    seen.emplace_back(values.begin(), values.end());
  });
  ASSERT_EQ(seen.size(), 2u);
  // Enumeration order: lexicographic with false < true.
  EXPECT_EQ(seen[0], (std::vector<bool>{false, true}));
  EXPECT_EQ(seen[1], (std::vector<bool>{true, false}));
}

TEST_F(BddQuantifyTest, ForeachMintermCountMatchesSatCount) {
  const Bdd f = (v(0) | v(1)) & (v(2) | ~v(3));
  const Bdd c = cube({0, 1, 2, 3});
  std::size_t count = 0;
  mgr_.foreach_minterm(f, c, [&](std::span<const bool>) { ++count; });
  EXPECT_DOUBLE_EQ(static_cast<double>(count), mgr_.sat_count(f, 4));
}

TEST_F(BddQuantifyTest, ForeachCubeCoversFunctionExactly) {
  const Bdd f = (v(0) & v(1)) | ((~v(0)) & v(2));
  Bdd rebuilt = mgr_.bdd_false();
  mgr_.foreach_cube(f, [&](std::span<const signed char> values) {
    Bdd term = mgr_.bdd_true();
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] == 0) term &= mgr_.bdd_nvar(static_cast<VarIndex>(i));
      if (values[i] == 1) term &= mgr_.bdd_var(static_cast<VarIndex>(i));
    }
    rebuilt |= term;
  });
  EXPECT_EQ(rebuilt, f);
}

TEST_F(BddQuantifyTest, SupportCubeEqualsCubeOfSupport) {
  const Bdd f = (v(1) & v(4)) ^ v(7);
  EXPECT_EQ(mgr_.support_cube(f), cube({1, 4, 7}));
}

}  // namespace
}  // namespace lr::bdd
