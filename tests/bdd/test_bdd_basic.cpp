// Unit tests for the BDD engine's construction and boolean algebra.

#include <gtest/gtest.h>

#include <vector>

#include "bdd/bdd.hpp"

namespace lr::bdd {
namespace {

class BddBasicTest : public ::testing::Test {
 protected:
  BddBasicTest() {
    for (int i = 0; i < 8; ++i) vars_.push_back(mgr_.new_var());
  }

  Manager mgr_;
  std::vector<VarIndex> vars_;
};

TEST_F(BddBasicTest, TerminalsAreCanonical) {
  const Bdd f = mgr_.bdd_false();
  const Bdd t = mgr_.bdd_true();
  EXPECT_TRUE(f.is_false());
  EXPECT_TRUE(t.is_true());
  EXPECT_TRUE(f.is_terminal());
  EXPECT_TRUE(t.is_terminal());
  EXPECT_NE(f, t);
  EXPECT_EQ(f, mgr_.bdd_false());
  EXPECT_EQ(t, mgr_.bdd_true());
}

TEST_F(BddBasicTest, DefaultHandleIsInvalid) {
  const Bdd empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.is_true());
  EXPECT_FALSE(empty.is_false());
}

TEST_F(BddBasicTest, LiteralsAreCanonicalAndDistinct) {
  const Bdd a0 = mgr_.bdd_var(vars_[0]);
  const Bdd a0_again = mgr_.bdd_var(vars_[0]);
  const Bdd a1 = mgr_.bdd_var(vars_[1]);
  EXPECT_EQ(a0, a0_again);
  EXPECT_NE(a0, a1);
  EXPECT_EQ(~a0, mgr_.bdd_nvar(vars_[0]));
  EXPECT_EQ(~~a0, a0);
}

TEST_F(BddBasicTest, ConjunctionTruthTable) {
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  const Bdd ab = a & b;
  const bool tt[4][3] = {{false, false, false},
                         {false, true, false},
                         {true, false, false},
                         {true, true, true}};
  for (const auto& row : tt) {
    const bool assignment[2] = {row[0], row[1]};
    EXPECT_EQ(mgr_.eval(ab, assignment), row[2]);
  }
}

TEST_F(BddBasicTest, BooleanIdentities) {
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  const Bdd t = mgr_.bdd_true();
  const Bdd f = mgr_.bdd_false();

  EXPECT_EQ(a & t, a);
  EXPECT_EQ(a & f, f);
  EXPECT_EQ(a | t, t);
  EXPECT_EQ(a | f, a);
  EXPECT_EQ(a ^ a, f);
  EXPECT_EQ(a ^ f, a);
  EXPECT_EQ(a ^ t, ~a);
  EXPECT_EQ(a & ~a, f);
  EXPECT_EQ(a | ~a, t);
  EXPECT_EQ(a & b, b & a);
  EXPECT_EQ(a | b, b | a);
  EXPECT_EQ(~(a & b), ~a | ~b);  // De Morgan
  EXPECT_EQ(~(a | b), ~a & ~b);
}

TEST_F(BddBasicTest, MinusIsConjunctionWithNegation) {
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  EXPECT_EQ(a.minus(b), a & ~b);
  EXPECT_EQ(a.minus(a), mgr_.bdd_false());
  EXPECT_EQ(a.minus(mgr_.bdd_false()), a);
  EXPECT_EQ(mgr_.bdd_true().minus(a), ~a);
}

TEST_F(BddBasicTest, IteMatchesMuxSemantics) {
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  const Bdd c = mgr_.bdd_var(vars_[2]);
  const Bdd mux = a.ite(b, c);
  EXPECT_EQ(mux, (a & b) | (~a & c));
  EXPECT_EQ(a.ite(mgr_.bdd_true(), mgr_.bdd_false()), a);
  EXPECT_EQ(a.ite(mgr_.bdd_false(), mgr_.bdd_true()), ~a);
  EXPECT_EQ(a.ite(b, b), b);
}

TEST_F(BddBasicTest, ImpliesAndIff) {
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  EXPECT_EQ(a.implies(b), ~a | b);
  EXPECT_EQ(a.iff(b), (a & b) | (~a & ~b));
  EXPECT_EQ(a.iff(a), mgr_.bdd_true());
  EXPECT_EQ(a.iff(~a), mgr_.bdd_false());
}

TEST_F(BddBasicTest, LeqDecisionMatchesImplicationBdd) {
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  EXPECT_TRUE((a & b).leq(a));
  EXPECT_TRUE((a & b).leq(b));
  EXPECT_FALSE(a.leq(a & b));
  EXPECT_TRUE(a.leq(a | b));
  EXPECT_TRUE(mgr_.bdd_false().leq(a));
  EXPECT_TRUE(a.leq(mgr_.bdd_true()));
  EXPECT_FALSE(mgr_.bdd_true().leq(a));
  EXPECT_TRUE(a.leq(a));
}

TEST_F(BddBasicTest, DisjointDecision) {
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  EXPECT_TRUE(a.disjoint(~a));
  EXPECT_FALSE(a.disjoint(a));
  EXPECT_FALSE(a.disjoint(b));
  EXPECT_TRUE((a & b).disjoint(a & ~b));
  EXPECT_TRUE(mgr_.bdd_false().disjoint(mgr_.bdd_true()));
}

TEST_F(BddBasicTest, CompoundAssignmentOperators) {
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  Bdd acc = a;
  acc &= b;
  EXPECT_EQ(acc, a & b);
  acc |= ~b;
  EXPECT_EQ(acc, (a & b) | ~b);
}

TEST_F(BddBasicTest, MakeCubeIsSortedConjunction) {
  const VarIndex unordered[3] = {vars_[4], vars_[1], vars_[6]};
  const Bdd cube = mgr_.make_cube(unordered);
  const Bdd expected = mgr_.bdd_var(vars_[1]) & mgr_.bdd_var(vars_[4]) &
                       mgr_.bdd_var(vars_[6]);
  EXPECT_EQ(cube, expected);
}

TEST_F(BddBasicTest, MakeCubeDeduplicates) {
  const VarIndex repeated[4] = {vars_[2], vars_[2], vars_[5], vars_[5]};
  const Bdd cube = mgr_.make_cube(repeated);
  EXPECT_EQ(cube, mgr_.bdd_var(vars_[2]) & mgr_.bdd_var(vars_[5]));
}

TEST_F(BddBasicTest, EmptyCubeIsTrue) {
  EXPECT_EQ(mgr_.make_cube({}), mgr_.bdd_true());
}

TEST_F(BddBasicTest, CofactorFixesAVariable) {
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  const Bdd f = (a & b) | (~a & ~b);
  EXPECT_EQ(mgr_.cofactor(f, vars_[0], true), b);
  EXPECT_EQ(mgr_.cofactor(f, vars_[0], false), ~b);
  EXPECT_EQ(mgr_.cofactor(b, vars_[0], true), b);  // independent variable
}

TEST_F(BddBasicTest, NodeCountOfSmallFunctions) {
  const Bdd t = mgr_.bdd_true();
  EXPECT_EQ(t.node_count(), 1u);
  const Bdd a = mgr_.bdd_var(vars_[0]);
  EXPECT_EQ(a.node_count(), 3u);  // one internal node + both terminals
  const Bdd ab = a & mgr_.bdd_var(vars_[1]);
  EXPECT_EQ(ab.node_count(), 4u);
}

TEST_F(BddBasicTest, SupportListsExactlyTheDependentVariables) {
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd c = mgr_.bdd_var(vars_[2]);
  const Bdd f = (a & c) | (~a & c);  // collapses to c
  EXPECT_EQ(f, c);
  const auto support = mgr_.support(f);
  ASSERT_EQ(support.size(), 1u);
  EXPECT_EQ(support[0], vars_[2]);

  const auto support_ac = mgr_.support(a ^ c);
  ASSERT_EQ(support_ac.size(), 2u);
  EXPECT_EQ(support_ac[0], vars_[0]);
  EXPECT_EQ(support_ac[1], vars_[2]);
}

TEST_F(BddBasicTest, HandleCopyAndMoveKeepSemantics) {
  const Bdd a = mgr_.bdd_var(vars_[0]);
  Bdd copy = a;
  EXPECT_EQ(copy, a);
  Bdd moved = std::move(copy);
  EXPECT_EQ(moved, a);
  EXPECT_FALSE(copy.valid());  // NOLINT(bugprone-use-after-move): documented
  copy = moved;
  EXPECT_EQ(copy, a);
  copy = copy;  // self-assignment must be harmless
  EXPECT_EQ(copy, a);
}

TEST_F(BddBasicTest, EvalWalksTheRightBranches) {
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  const Bdd c = mgr_.bdd_var(vars_[2]);
  const Bdd f = a.ite(b, c);
  const bool a1[3] = {true, true, false};
  const bool a2[3] = {true, false, true};
  const bool a3[3] = {false, true, true};
  const bool a4[3] = {false, false, false};
  EXPECT_TRUE(mgr_.eval(f, a1));
  EXPECT_FALSE(mgr_.eval(f, a2));
  EXPECT_TRUE(mgr_.eval(f, a3));
  EXPECT_FALSE(mgr_.eval(f, a4));
}

TEST_F(BddBasicTest, ToDotMentionsAllVariables) {
  const Bdd f = mgr_.bdd_var(vars_[0]) & mgr_.bdd_var(vars_[3]);
  const std::string dot = mgr_.to_dot(f, "f");
  EXPECT_NE(dot.find("x0"), std::string::npos);
  EXPECT_NE(dot.find("x3"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST_F(BddBasicTest, ReductionEliminatesRedundantTests) {
  // (a ∧ b) ∨ (¬a ∧ b) must collapse to b: no node for a survives.
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  const Bdd f = (a & b) | (~a & b);
  EXPECT_EQ(f, b);
}

}  // namespace
}  // namespace lr::bdd
