// Unit tests for the per-span BDD profiler: counter deltas must land in
// the bucket of the innermost active trace span, with exact call counts
// for a crafted workload, and the whole layer must be a no-op when
// disabled.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/profile.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace lr::bdd {
namespace {

using profile::OpClass;

/// Turns profiling on for one test and always back off, so the global
/// switch never leaks into other tests in this binary.
struct ProfilingOn {
  ProfilingOn() { profile::set_enabled(true); }
  ~ProfilingOn() { profile::set_enabled(false); }
};

class BddProfileTest : public ::testing::Test {
 protected:
  BddProfileTest() {
    for (int i = 0; i < 6; ++i) vars_.push_back(mgr_.new_var());
  }

  Manager mgr_;
  std::vector<VarIndex> vars_;
};

TEST_F(BddProfileTest, DisabledByDefaultCollectsNothing) {
  ASSERT_FALSE(profile::enabled());
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  (void)(a & b);
  (void)mgr_.exists(a & b, mgr_.bdd_var(vars_[0]));
  EXPECT_TRUE(mgr_.profiler().empty());
}

TEST_F(BddProfileTest, ChargesExactCallCountsToInnermostSpan) {
  ProfilingOn guard;
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  const Bdd c = mgr_.bdd_var(vars_[2]);

  {
    LR_TRACE_SPAN("profile_test.build");
    (void)(a & b);        // apply 1
    (void)(a | c);        // apply 2
    (void)(b ^ c);        // apply 3
    (void)a.ite(b, c);    // 1 ite
  }
  {
    LR_TRACE_SPAN("profile_test.quantify");
    (void)mgr_.exists(a & b, mgr_.bdd_var(vars_[0]));   // quantify 1 (+apply)
    (void)mgr_.forall(a | c, mgr_.bdd_var(vars_[2]));   // quantify 2 (+apply)
    (void)mgr_.leq(a, b);                               // 1 decide
  }
  (void)(a & c);  // no span open: unattributed apply

  const profile::Profiler& prof = mgr_.profiler();
  ASSERT_EQ(prof.buckets().size(), 3u) << "build, quantify, (unattributed)";

  const profile::SpanCounters& build =
      prof.buckets().at("profile_test.build");
  EXPECT_EQ(build.op(OpClass::kApply).calls, 3u);
  EXPECT_EQ(build.op(OpClass::kIte).calls, 1u);
  EXPECT_EQ(build.op(OpClass::kQuantify).calls, 0u);

  const profile::SpanCounters& quantify =
      prof.buckets().at("profile_test.quantify");
  EXPECT_EQ(quantify.op(OpClass::kQuantify).calls, 2u);
  EXPECT_EQ(quantify.op(OpClass::kDecide).calls, 1u);
  // The a&b / a|c rebuilt inside this span hit the cache but still count
  // as apply calls here, not in the build span.
  EXPECT_EQ(quantify.op(OpClass::kApply).calls, 2u);

  const profile::SpanCounters& other = prof.buckets().at("(unattributed)");
  EXPECT_EQ(other.op(OpClass::kApply).calls, 1u);

  const profile::SpanCounters totals = prof.totals();
  EXPECT_EQ(totals.op(OpClass::kApply).calls, 6u);
  EXPECT_EQ(totals.op(OpClass::kIte).calls, 1u);
  EXPECT_EQ(totals.op(OpClass::kQuantify).calls, 2u);
  EXPECT_GT(totals.work_steps(), 0u);
  EXPECT_GT(totals.created_nodes, 0u);
}

TEST_F(BddProfileTest, ProfileSpansStayOutOfTheTraceBuffer) {
  // Attribution must work without trace collection — and must not grow the
  // trace event buffer as a side effect.
  ProfilingOn guard;
  const std::size_t before = support::trace::event_count();
  {
    LR_TRACE_SPAN("profile_test.silent");
    (void)(mgr_.bdd_var(vars_[0]) & mgr_.bdd_var(vars_[1]));
  }
  EXPECT_EQ(support::trace::event_count(), before);
  EXPECT_EQ(mgr_.profiler()
                .buckets()
                .at("profile_test.silent")
                .op(OpClass::kApply)
                .calls,
            1u);
}

TEST_F(BddProfileTest, AttributionTableRanksByWorkAndEndsWithTotal) {
  ProfilingOn guard;
  {
    LR_TRACE_SPAN("profile_test.heavy");
    Bdd f = mgr_.bdd_true();
    for (std::size_t v = 0; v + 1 < vars_.size(); ++v) {
      f = f & (mgr_.bdd_var(vars_[v]) ^ mgr_.bdd_var(vars_[v + 1]));
    }
  }
  {
    LR_TRACE_SPAN("profile_test.light");
    (void)(mgr_.bdd_var(vars_[0]) & mgr_.bdd_var(vars_[1]));
  }

  std::ostringstream table;
  profile::write_attribution_table(mgr_.profiler(), table);
  const std::string text = table.str();
  const std::size_t heavy = text.find("profile_test.heavy");
  const std::size_t light = text.find("profile_test.light");
  const std::size_t total = text.find("TOTAL");
  ASSERT_NE(heavy, std::string::npos) << text;
  ASSERT_NE(light, std::string::npos) << text;
  ASSERT_NE(total, std::string::npos) << text;
  EXPECT_LT(heavy, light) << "rows must be sorted by work, largest first";
  EXPECT_GT(total, light) << "TOTAL row must come last";
}

TEST_F(BddProfileTest, RecordMetricsMirrorsBuckets) {
  ProfilingOn guard;
  {
    LR_TRACE_SPAN("profile_test.metrics");
    (void)(mgr_.bdd_var(vars_[0]) & mgr_.bdd_var(vars_[1]));
  }
  profile::record_metrics(mgr_.profiler(), "bddprofiletest");
  support::metrics::Registry& m = support::metrics::registry();
  EXPECT_EQ(m.counter("bddprofiletest.profile_test.metrics.apply_calls"), 1u);
  EXPECT_GE(m.gauge("bddprofiletest.profile_test.metrics.peak_nodes"), 1.0);
}

TEST_F(BddProfileTest, MergeAggregatesAcrossProfilers) {
  ProfilingOn guard;
  Manager other;
  const VarIndex v0 = other.new_var();
  const VarIndex v1 = other.new_var();
  {
    LR_TRACE_SPAN("profile_test.merge");
    (void)(mgr_.bdd_var(vars_[0]) & mgr_.bdd_var(vars_[1]));
    (void)(other.bdd_var(v0) & other.bdd_var(v1));
  }
  profile::Profiler merged;
  merged.merge(mgr_.profiler());
  merged.merge(other.profiler());
  EXPECT_EQ(merged.buckets().at("profile_test.merge").op(OpClass::kApply).calls,
            2u);
}

}  // namespace
}  // namespace lr::bdd
