// Unit tests for the per-span BDD profiler: counter deltas must land in
// the bucket of the innermost active trace span, with exact call counts
// for a crafted workload, and the whole layer must be a no-op when
// disabled.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/profile.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"
#include "symbolic/space.hpp"

namespace lr::bdd {
namespace {

using profile::OpClass;

/// Turns profiling on for one test and always back off, so the global
/// switch never leaks into other tests in this binary.
struct ProfilingOn {
  ProfilingOn() { profile::set_enabled(true); }
  ~ProfilingOn() { profile::set_enabled(false); }
};

class BddProfileTest : public ::testing::Test {
 protected:
  BddProfileTest() {
    for (int i = 0; i < 6; ++i) vars_.push_back(mgr_.new_var());
  }

  Manager mgr_;
  std::vector<VarIndex> vars_;
};

TEST_F(BddProfileTest, DisabledByDefaultCollectsNothing) {
  ASSERT_FALSE(profile::enabled());
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  (void)(a & b);
  (void)mgr_.exists(a & b, mgr_.bdd_var(vars_[0]));
  EXPECT_TRUE(mgr_.profiler().empty());
}

TEST_F(BddProfileTest, ChargesExactCallCountsToInnermostSpan) {
  ProfilingOn guard;
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  const Bdd c = mgr_.bdd_var(vars_[2]);

  {
    LR_TRACE_SPAN("profile_test.build");
    (void)(a & b);        // apply 1
    (void)(a | c);        // apply 2
    (void)(b ^ c);        // apply 3
    (void)a.ite(b, c);    // 1 ite
  }
  {
    LR_TRACE_SPAN("profile_test.quantify");
    (void)mgr_.exists(a & b, mgr_.bdd_var(vars_[0]));   // quantify 1 (+apply)
    (void)mgr_.forall(a | c, mgr_.bdd_var(vars_[2]));   // quantify 2 (+apply)
    (void)mgr_.leq(a, b);                               // 1 decide
  }
  (void)(a & c);  // no span open: unattributed apply

  const profile::Profiler& prof = mgr_.profiler();
  ASSERT_EQ(prof.buckets().size(), 3u) << "build, quantify, (unattributed)";

  const profile::SpanCounters& build =
      prof.buckets().at("profile_test.build");
  EXPECT_EQ(build.op(OpClass::kApply).calls, 3u);
  EXPECT_EQ(build.op(OpClass::kIte).calls, 1u);
  EXPECT_EQ(build.op(OpClass::kQuantify).calls, 0u);

  const profile::SpanCounters& quantify =
      prof.buckets().at("profile_test.quantify");
  EXPECT_EQ(quantify.op(OpClass::kQuantify).calls, 2u);
  EXPECT_EQ(quantify.op(OpClass::kDecide).calls, 1u);
  // The a&b / a|c rebuilt inside this span hit the cache but still count
  // as apply calls here, not in the build span.
  EXPECT_EQ(quantify.op(OpClass::kApply).calls, 2u);

  const profile::SpanCounters& other = prof.buckets().at("(unattributed)");
  EXPECT_EQ(other.op(OpClass::kApply).calls, 1u);

  const profile::SpanCounters totals = prof.totals();
  EXPECT_EQ(totals.op(OpClass::kApply).calls, 6u);
  EXPECT_EQ(totals.op(OpClass::kIte).calls, 1u);
  EXPECT_EQ(totals.op(OpClass::kQuantify).calls, 2u);
  EXPECT_GT(totals.work_steps(), 0u);
  EXPECT_GT(totals.created_nodes, 0u);
}

TEST_F(BddProfileTest, ProfileSpansStayOutOfTheTraceBuffer) {
  // Attribution must work without trace collection — and must not grow the
  // trace event buffer as a side effect.
  ProfilingOn guard;
  const std::size_t before = support::trace::event_count();
  {
    LR_TRACE_SPAN("profile_test.silent");
    (void)(mgr_.bdd_var(vars_[0]) & mgr_.bdd_var(vars_[1]));
  }
  EXPECT_EQ(support::trace::event_count(), before);
  EXPECT_EQ(mgr_.profiler()
                .buckets()
                .at("profile_test.silent")
                .op(OpClass::kApply)
                .calls,
            1u);
}

TEST_F(BddProfileTest, AttributionTableRanksByWorkAndEndsWithTotal) {
  ProfilingOn guard;
  {
    LR_TRACE_SPAN("profile_test.heavy");
    Bdd f = mgr_.bdd_true();
    for (std::size_t v = 0; v + 1 < vars_.size(); ++v) {
      f = f & (mgr_.bdd_var(vars_[v]) ^ mgr_.bdd_var(vars_[v + 1]));
    }
  }
  {
    LR_TRACE_SPAN("profile_test.light");
    (void)(mgr_.bdd_var(vars_[0]) & mgr_.bdd_var(vars_[1]));
  }

  std::ostringstream table;
  profile::write_attribution_table(mgr_.profiler(), table);
  const std::string text = table.str();
  const std::size_t heavy = text.find("profile_test.heavy");
  const std::size_t light = text.find("profile_test.light");
  const std::size_t total = text.find("TOTAL");
  ASSERT_NE(heavy, std::string::npos) << text;
  ASSERT_NE(light, std::string::npos) << text;
  ASSERT_NE(total, std::string::npos) << text;
  EXPECT_LT(heavy, light) << "rows must be sorted by work, largest first";
  EXPECT_GT(total, light) << "TOTAL row must come last";
}

TEST_F(BddProfileTest, RecordMetricsMirrorsBuckets) {
  ProfilingOn guard;
  {
    LR_TRACE_SPAN("profile_test.metrics");
    (void)(mgr_.bdd_var(vars_[0]) & mgr_.bdd_var(vars_[1]));
  }
  profile::record_metrics(mgr_.profiler(), "bddprofiletest");
  support::metrics::Registry& m = support::metrics::registry();
  EXPECT_EQ(m.counter("bddprofiletest.profile_test.metrics.apply_calls"), 1u);
  EXPECT_GE(m.gauge("bddprofiletest.profile_test.metrics.peak_nodes"), 1.0);
}

// --- Attribution under intra-problem (nested) parallelism -------------------
//
// A sharded Space fans image/preimage work out to worker threads whose
// managers charge the span that was current on the dispatching thread, and
// merges the worker profilers back after every join. Two invariants:
//
//  * attribution: worker-side work lands in the innermost dispatching
//    span's bucket — never in "(unattributed)", never in an enclosing span;
//  * conservation: re-bucketing identical work across differently-nested
//    spans must neither create nor destroy counted work — the
//    `bdd.<span>.*` totals over all buckets are the same whether the
//    workload ran under one flat span or split across nested ones.

namespace {

constexpr std::size_t kShardProcs = 5;

/// A sharded space plus the relation handles into it. `rels` is declared
/// after `space` so the handles are released before the manager they
/// point into is torn down.
struct ShardedFixture {
  std::unique_ptr<sym::Space> space;
  std::vector<bdd::Bdd> rels;
};

ShardedFixture make_sharded_space() {
  ShardedFixture fx;
  fx.space = std::make_unique<sym::Space>();
  std::vector<sym::VarId> vars;
  for (std::size_t i = 0; i < kShardProcs; ++i) {
    vars.push_back(fx.space->add_variable("p" + std::to_string(i), 4));
  }
  for (std::size_t i = 0; i < kShardProcs; ++i) {
    bdd::Bdd rel = fx.space->vars_eq(vars[i], sym::Version::kNext,
                                     vars[(i + 1) % kShardProcs],
                                     sym::Version::kCurrent);
    for (std::size_t j = 0; j < kShardProcs; ++j) {
      if (j != i) rel &= fx.space->unchanged(vars[j]);
    }
    fx.rels.push_back(rel);
  }
  fx.space->enable_intra(2);
  // Setup work (relation building) is not part of the measured workload.
  fx.space->manager().profiler().clear();
  return fx;
}

void sharded_workload(sym::Space& space, std::span<const bdd::Bdd> rels,
                      bool nested) {
  const bdd::Bdd from = space.valid(sym::Version::kCurrent);
  if (nested) {
    LR_TRACE_SPAN("profile_test.shard_outer");
    (void)space.image(rels, from);
    {
      LR_TRACE_SPAN("profile_test.shard_inner");
      (void)space.preimage(rels, from);
    }
  } else {
    LR_TRACE_SPAN("profile_test.shard_flat");
    (void)space.image(rels, from);
    (void)space.preimage(rels, from);
  }
}

}  // namespace

TEST_F(BddProfileTest, ShardedWorkLandsInDispatchingSpan) {
  ProfilingOn guard;
  ShardedFixture fx = make_sharded_space();
  sharded_workload(*fx.space, fx.rels, /*nested=*/true);

  const auto& buckets = fx.space->manager().profiler().buckets();
  ASSERT_TRUE(buckets.count("profile_test.shard_outer")) << "outer missing";
  ASSERT_TRUE(buckets.count("profile_test.shard_inner")) << "inner missing";
  EXPECT_FALSE(buckets.count("(unattributed)"))
      << "worker-side work escaped span attribution";
  // Each sharded call runs one and_exists per partition; the image belongs
  // to the outer span, the preimage to the innermost one.
  const profile::SpanCounters& outer =
      buckets.at("profile_test.shard_outer");
  const profile::SpanCounters& inner =
      buckets.at("profile_test.shard_inner");
  EXPECT_GE(outer.op(OpClass::kQuantify).calls, kShardProcs);
  EXPECT_GE(inner.op(OpClass::kQuantify).calls, kShardProcs);
  EXPECT_GT(outer.work_steps(), 0u);
  EXPECT_GT(inner.work_steps(), 0u);
}

TEST_F(BddProfileTest, NestedSpansConserveShardedTotals) {
  ProfilingOn guard;
  // Identical workloads on two fresh, identical spaces: every BDD
  // operation sequence is deterministic, so only the span bucketing may
  // differ — the summed `bdd.<span>.*` totals must not.
  ShardedFixture flat = make_sharded_space();
  sharded_workload(*flat.space, flat.rels, /*nested=*/false);

  ShardedFixture nested = make_sharded_space();
  sharded_workload(*nested.space, nested.rels, /*nested=*/true);

  const profile::SpanCounters a = flat.space->manager().profiler().totals();
  const profile::SpanCounters b = nested.space->manager().profiler().totals();
  for (unsigned c = 0; c < profile::kOpClassCount; ++c) {
    const auto op = static_cast<OpClass>(c);
    EXPECT_EQ(a.op(op).calls, b.op(op).calls)
        << profile::op_class_name(op) << " calls not conserved";
    EXPECT_EQ(a.op(op).steps, b.op(op).steps)
        << profile::op_class_name(op) << " steps not conserved";
  }
  EXPECT_EQ(a.cache_lookups, b.cache_lookups);
  EXPECT_EQ(a.created_nodes, b.created_nodes);

  // And the metrics mirror sums to the same totals it was derived from.
  profile::record_metrics(nested.space->manager().profiler(), "bddshardtest");
  support::metrics::Registry& m = support::metrics::registry();
  std::uint64_t mirrored = 0;
  for (const auto& [name, counters] :
       nested.space->manager().profiler().buckets()) {
    mirrored += m.counter("bddshardtest." + name + ".quantify_calls");
    (void)counters;
  }
  EXPECT_EQ(mirrored, b.op(OpClass::kQuantify).calls);
}

// --- Call-path tree ----------------------------------------------------------

TEST_F(BddProfileTest, NestedSpansFormDistinctPathsThatRollUpByLeaf) {
  ProfilingOn guard;
  const Bdd a = mgr_.bdd_var(vars_[0]);
  const Bdd b = mgr_.bdd_var(vars_[1]);
  const Bdd c = mgr_.bdd_var(vars_[2]);
  {
    LR_TRACE_SPAN("profile_test.outer");
    {
      LR_TRACE_SPAN("profile_test.leaf");
      (void)(a & b);  // path outer;leaf
    }
  }
  {
    LR_TRACE_SPAN("profile_test.other");
    {
      LR_TRACE_SPAN("profile_test.leaf");
      (void)(a | c);  // path other;leaf — same leaf, different path
    }
  }

  const profile::Profiler& prof = mgr_.profiler();
  // Tree: root + outer + other + two distinct "leaf" children.
  ASSERT_EQ(prof.path_nodes().size(), 5u);
  std::vector<std::string> paths;
  for (profile::PathId id = 1; id < prof.path_nodes().size(); ++id) {
    paths.push_back(prof.path_string(id));
  }
  EXPECT_NE(std::find(paths.begin(), paths.end(),
                      "profile_test.outer;profile_test.leaf"),
            paths.end());
  EXPECT_NE(std::find(paths.begin(), paths.end(),
                      "profile_test.other;profile_test.leaf"),
            paths.end());

  // Flat view: both paths roll up into one "profile_test.leaf" bucket.
  ASSERT_EQ(prof.buckets().size(), 1u);
  EXPECT_EQ(prof.buckets().at("profile_test.leaf").op(OpClass::kApply).calls,
            2u);
}

TEST_F(BddProfileTest, FlatViewIsExactTreeRollup) {
  ProfilingOn guard;
  Bdd f = mgr_.bdd_true();
  {
    LR_TRACE_SPAN("profile_test.phase1");
    for (std::size_t v = 0; v + 1 < vars_.size(); ++v) {
      LR_TRACE_SPAN("profile_test.step");
      f = f & (mgr_.bdd_var(vars_[v]) ^ mgr_.bdd_var(vars_[v + 1]));
    }
  }
  {
    LR_TRACE_SPAN("profile_test.phase2");
    (void)mgr_.exists(f, mgr_.bdd_var(vars_[0]));
  }
  (void)(mgr_.bdd_var(vars_[0]) & mgr_.bdd_var(vars_[1]));  // root charge

  const profile::Profiler& prof = mgr_.profiler();
  profile::SpanCounters from_tree;
  for (const profile::Profiler::PathNode& node : prof.path_nodes()) {
    from_tree.accumulate(node.counters);
  }
  profile::SpanCounters from_flat;
  for (const auto& [name, counters] : prof.buckets()) {
    from_flat.accumulate(counters);
  }
  const profile::SpanCounters totals = prof.totals();
  for (unsigned c = 0; c < profile::kOpClassCount; ++c) {
    const auto op = static_cast<OpClass>(c);
    EXPECT_EQ(from_tree.op(op).calls, totals.op(op).calls);
    EXPECT_EQ(from_flat.op(op).calls, totals.op(op).calls);
    EXPECT_EQ(from_flat.op(op).steps, totals.op(op).steps);
  }
  EXPECT_EQ(from_flat.cache_lookups, totals.cache_lookups);
  EXPECT_EQ(from_flat.created_nodes, totals.created_nodes);
  EXPECT_EQ(from_flat.work_steps(), totals.work_steps());
}

// Regression (span-name cache): the profiler's one-entry fast path
// compares frame pointers, but the fallback must match by string
// *content*, so identically-named spans from different storage (two heap
// buffers here — the hostile case for literal pooling) share one path
// node and one flat bucket.
TEST_F(BddProfileTest, IdenticallyNamedSpansFromDifferentStorageShareBucket) {
  ProfilingOn guard;
  const std::string name_a = "profile_test.dynamic";
  const std::string name_b = std::string("profile_test.") + "dynamic";
  ASSERT_NE(name_a.c_str(), name_b.c_str()) << "distinct storage required";
  {
    support::trace::Span span(name_a.c_str());
    (void)(mgr_.bdd_var(vars_[0]) & mgr_.bdd_var(vars_[1]));
  }
  {
    support::trace::Span span(name_b.c_str());
    (void)(mgr_.bdd_var(vars_[1]) & mgr_.bdd_var(vars_[2]));
  }
  const profile::Profiler& prof = mgr_.profiler();
  ASSERT_EQ(prof.path_nodes().size(), 2u) << "root + one shared span node";
  ASSERT_EQ(prof.buckets().size(), 1u);
  EXPECT_EQ(
      prof.buckets().at("profile_test.dynamic").op(OpClass::kApply).calls,
      2u);
}

// --- Flamegraph export -------------------------------------------------------

TEST_F(BddProfileTest, CollapsedWeightsSumToTotalWorkSteps) {
  ProfilingOn guard;
  Bdd f = mgr_.bdd_true();
  {
    LR_TRACE_SPAN("profile_test.flame_outer");
    for (std::size_t v = 0; v + 1 < vars_.size(); ++v) {
      LR_TRACE_SPAN("profile_test.flame_inner");
      f = f & (mgr_.bdd_var(vars_[v]) ^ mgr_.bdd_var(vars_[v + 1]));
    }
    (void)mgr_.exists(f, mgr_.bdd_var(vars_[0]));
  }

  const profile::Profiler& prof = mgr_.profiler();
  const std::string collapsed = profile::to_collapsed(prof);
  std::uint64_t sum = 0;
  std::istringstream lines(collapsed);
  std::string line;
  std::string prev;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    const std::size_t split = line.rfind(' ');
    ASSERT_NE(split, std::string::npos) << line;
    sum += std::stoull(line.substr(split + 1));
    EXPECT_LE(prev, line) << "lines must be sorted";
    prev = line;
  }
  EXPECT_EQ(sum, prof.totals().work_steps());
  EXPECT_NE(collapsed.find(
                "profile_test.flame_outer;profile_test.flame_inner "),
            std::string::npos)
      << collapsed;
}

TEST_F(BddProfileTest, FlameWeightParsingAndAlternatives) {
  EXPECT_EQ(profile::parse_flame_weight("steps"),
            profile::FlameWeight::kSteps);
  EXPECT_EQ(profile::parse_flame_weight("seconds"),
            profile::FlameWeight::kSeconds);
  EXPECT_EQ(profile::parse_flame_weight("nodes"),
            profile::FlameWeight::kNodes);
  EXPECT_FALSE(profile::parse_flame_weight("bogus").has_value());

  ProfilingOn guard;
  {
    LR_TRACE_SPAN("profile_test.flame_nodes");
    (void)(mgr_.bdd_var(vars_[0]) & mgr_.bdd_var(vars_[1]));
  }
  const std::string by_nodes =
      profile::to_collapsed(mgr_.profiler(), profile::FlameWeight::kNodes);
  std::uint64_t sum = 0;
  std::istringstream lines(by_nodes);
  std::string line;
  while (std::getline(lines, line)) {
    sum += std::stoull(line.substr(line.rfind(' ') + 1));
  }
  EXPECT_EQ(sum, mgr_.profiler().totals().created_nodes);
}

TEST_F(BddProfileTest, MergePreservesFullPathsNotJustLeaves) {
  ProfilingOn guard;
  Manager other;
  const VarIndex v0 = other.new_var();
  const VarIndex v1 = other.new_var();
  {
    LR_TRACE_SPAN("profile_test.mergepath_outer");
    LR_TRACE_SPAN("profile_test.mergepath_leaf");
    (void)(mgr_.bdd_var(vars_[0]) & mgr_.bdd_var(vars_[1]));
    (void)(other.bdd_var(v0) & other.bdd_var(v1));
  }
  profile::Profiler merged;
  merged.merge(mgr_.profiler());
  merged.merge(other.profiler());
  // Same two-deep path in both sources: the merged tree has root + outer +
  // leaf (coalesced), and the leaf self-counters aggregate.
  ASSERT_EQ(merged.path_nodes().size(), 3u);
  bool found = false;
  for (profile::PathId id = 1; id < merged.path_nodes().size(); ++id) {
    if (merged.path_string(id) ==
        "profile_test.mergepath_outer;profile_test.mergepath_leaf") {
      EXPECT_EQ(merged.path_nodes()[id].counters.op(OpClass::kApply).calls,
                2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(BddProfileTest, MergeAggregatesAcrossProfilers) {
  ProfilingOn guard;
  Manager other;
  const VarIndex v0 = other.new_var();
  const VarIndex v1 = other.new_var();
  {
    LR_TRACE_SPAN("profile_test.merge");
    (void)(mgr_.bdd_var(vars_[0]) & mgr_.bdd_var(vars_[1]));
    (void)(other.bdd_var(v0) & other.bdd_var(v1));
  }
  profile::Profiler merged;
  merged.merge(mgr_.profiler());
  merged.merge(other.profiler());
  EXPECT_EQ(merged.buckets().at("profile_test.merge").op(OpClass::kApply).calls,
            2u);
}

}  // namespace
}  // namespace lr::bdd
