// Tests for the failsafe / nonmasking / masking tolerance hierarchy.

#include <gtest/gtest.h>

#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "program/distributed_program.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"

namespace lr::repair {
namespace {

using lang::Expr;
using lang::action;

/// A model where masking is impossible but failsafe is: x ∈ {0,1,2},
/// invariant x=0, fault 0→1, bad state 2, and the process **cannot write
/// x** — so there is no recovery from 1, but stopping at 1 is safe.
std::unique_ptr<prog::DistributedProgram> make_failsafe_only() {
  auto p = std::make_unique<prog::DistributedProgram>("failsafe-only");
  const sym::VarId x = p->add_variable("x", 3);
  const sym::VarId y = p->add_variable("y", 2);
  prog::Process proc;
  proc.name = "p";
  proc.reads = {x, y};
  proc.writes = {y};  // cannot restore x
  proc.actions.push_back(
      action("work", Expr::var(y) == 0u).assign(y, Expr::constant(1)));
  proc.actions.push_back(
      action("rest", Expr::var(y) == 1u).assign(y, Expr::constant(0)));
  p->add_process(std::move(proc));
  p->add_fault(action("bump", Expr::var(x) == 0u).assign(x, Expr::constant(1)));
  p->set_invariant(Expr::var(x) == 0u);
  p->add_bad_states(Expr::var(x) == 2u);
  return p;
}

/// A model where nonmasking is possible but masking is not: recovery from
/// the perturbed state exists, but every recovery path must execute a
/// transition the safety specification forbids.
std::unique_ptr<prog::DistributedProgram> make_nonmasking_only() {
  auto p = std::make_unique<prog::DistributedProgram>("nonmasking-only");
  const sym::VarId x = p->add_variable("x", 3);
  prog::Process proc;
  proc.name = "p";
  proc.reads = {x};
  proc.writes = {x};
  p->add_process(std::move(proc));
  p->add_fault(action("bump", Expr::var(x) == 0u).assign(x, Expr::constant(2)));
  p->set_invariant(Expr::var(x) == 0u);
  // Every transition leaving x=2 is a bad transition.
  p->add_bad_transitions(Expr::var(x) == 2u && Expr::next(x) != 2u);
  return p;
}

TEST(ToleranceLevelTest, FailsafeSucceedsWhereMaskingCannot) {
  auto p1 = make_failsafe_only();
  Options masking;
  EXPECT_FALSE(lazy_repair(*p1, masking).success);

  auto p2 = make_failsafe_only();
  Options failsafe;
  failsafe.level = ToleranceLevel::kFailsafe;
  const RepairResult r = lazy_repair(*p2, failsafe);
  ASSERT_TRUE(r.success) << r.failure_reason;
  const VerifyReport report =
      verify_masking(*p2, r, ToleranceLevel::kFailsafe);
  EXPECT_TRUE(report.ok);
  for (const auto& f : report.failures) ADD_FAILURE() << f;
}

TEST(ToleranceLevelTest, NonmaskingSucceedsWhereMaskingCannot) {
  auto p1 = make_nonmasking_only();
  Options masking;
  EXPECT_FALSE(lazy_repair(*p1, masking).success);

  auto p2 = make_nonmasking_only();
  Options nonmasking;
  nonmasking.level = ToleranceLevel::kNonmasking;
  const RepairResult r = lazy_repair(*p2, nonmasking);
  ASSERT_TRUE(r.success) << r.failure_reason;
  const VerifyReport report =
      verify_masking(*p2, r, ToleranceLevel::kNonmasking);
  EXPECT_TRUE(report.ok);
  for (const auto& f : report.failures) ADD_FAILURE() << f;
}

TEST(ToleranceLevelTest, MaskingResultSatisfiesWeakerLevels) {
  // A masking repair verifies at every level of the hierarchy.
  auto p = cs::make_byzantine({.non_generals = 3});
  const RepairResult r = lazy_repair(*p);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verify_masking(*p, r, ToleranceLevel::kMasking).ok);
  EXPECT_TRUE(verify_masking(*p, r, ToleranceLevel::kFailsafe).ok);
  EXPECT_TRUE(verify_masking(*p, r, ToleranceLevel::kNonmasking).ok);
}

TEST(ToleranceLevelTest, FailsafeOnByzantineAgreement) {
  auto p = cs::make_byzantine({.non_generals = 3});
  Options failsafe;
  failsafe.level = ToleranceLevel::kFailsafe;
  const RepairResult r = lazy_repair(*p, failsafe);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(verify_masking(*p, r, ToleranceLevel::kFailsafe).ok);
}

TEST(ToleranceLevelTest, NonmaskingEqualsMaskingWithEmptySafety) {
  // The chain has an empty safety specification, so nonmasking and masking
  // coincide.
  auto p1 = cs::make_chain({.length = 3, .domain = 3});
  const RepairResult masking = lazy_repair(*p1);
  auto p2 = cs::make_chain({.length = 3, .domain = 3});
  Options options;
  options.level = ToleranceLevel::kNonmasking;
  const RepairResult nonmasking = lazy_repair(*p2, options);
  ASSERT_TRUE(masking.success);
  ASSERT_TRUE(nonmasking.success);
  EXPECT_DOUBLE_EQ(p1->space().count_states(masking.invariant),
                   p2->space().count_states(nonmasking.invariant));
  EXPECT_DOUBLE_EQ(p1->space().count_transitions(masking.delta),
                   p2->space().count_transitions(nonmasking.delta));
}

TEST(ToleranceLevelTest, FailsafeKeepsSafetyUnderFaults) {
  // The failsafe BA result must still never violate safety, even though it
  // may stop.
  auto p = cs::make_byzantine({.non_generals = 3});
  Options failsafe;
  failsafe.level = ToleranceLevel::kFailsafe;
  const RepairResult r = lazy_repair(*p, failsafe);
  ASSERT_TRUE(r.success);
  auto& sp = p->space();
  std::vector<bdd::Bdd> parts = r.process_deltas;
  for (const auto& f : p->fault_action_deltas()) parts.push_back(f);
  const bdd::Bdd span = sp.forward_reachable(parts, r.invariant);
  EXPECT_TRUE(span.disjoint(p->safety().bad_states));
}

}  // namespace
}  // namespace lr::repair
