// Exact-conservation suite for the call-path profiler and its flamegraph
// export, run over every case study:
//
//  * the flat attribution table (buckets()) is exactly the call-path tree
//    rolled up by leaf span name — no counter is created or destroyed by
//    the re-bucketing;
//  * collapsed-stack line weights sum to the run's total work_steps under
//    every weight mode that is deterministic;
//  * the collapsed output is byte-identical between a sequential repair
//    and one with intra_jobs = 4, because workers charge the dispatching
//    thread's span path and merge after join.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bdd/profile.hpp"
#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "casestudies/tmr.hpp"
#include "casestudies/token_ring.hpp"
#include "program/distributed_program.hpp"
#include "repair/lazy.hpp"

namespace lr::repair {
namespace {

using bdd::profile::OpClass;
using ProgramFactory =
    std::function<std::unique_ptr<prog::DistributedProgram>()>;

struct ProfileRun {
  bool success = false;
  bdd::profile::SpanCounters totals;
  bdd::profile::SpanCounters flat_sum;
  bdd::profile::SpanCounters tree_sum;
  std::string collapsed_steps;
  std::string collapsed_nodes;
};

ProfileRun run_profiled(const ProgramFactory& make, std::size_t intra_jobs) {
  bdd::profile::set_enabled(true);
  std::unique_ptr<prog::DistributedProgram> program = make();
  Options options;
  options.intra_jobs = intra_jobs;
  const RepairResult result = lazy_repair(*program, options);

  const bdd::profile::Profiler& prof = program->space().manager().profiler();
  ProfileRun run;
  run.success = result.success;
  run.totals = prof.totals();
  for (const auto& [name, counters] : prof.buckets()) {
    run.flat_sum.accumulate(counters);
  }
  for (const bdd::profile::Profiler::PathNode& node : prof.path_nodes()) {
    run.tree_sum.accumulate(node.counters);
  }
  run.collapsed_steps =
      bdd::profile::to_collapsed(prof, bdd::profile::FlameWeight::kSteps);
  run.collapsed_nodes =
      bdd::profile::to_collapsed(prof, bdd::profile::FlameWeight::kNodes);
  bdd::profile::set_enabled(false);
  return run;
}

std::uint64_t sum_collapsed_weights(const std::string& collapsed) {
  std::uint64_t sum = 0;
  std::istringstream lines(collapsed);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t split = line.rfind(' ');
    EXPECT_NE(split, std::string::npos) << line;
    if (split == std::string::npos) continue;
    sum += std::stoull(line.substr(split + 1));
  }
  return sum;
}

void expect_counters_equal(const bdd::profile::SpanCounters& a,
                           const bdd::profile::SpanCounters& b,
                           const std::string& what) {
  for (unsigned c = 0; c < bdd::profile::kOpClassCount; ++c) {
    const auto op = static_cast<OpClass>(c);
    EXPECT_EQ(a.op(op).calls, b.op(op).calls)
        << what << ": " << bdd::profile::op_class_name(op) << " calls";
    EXPECT_EQ(a.op(op).steps, b.op(op).steps)
        << what << ": " << bdd::profile::op_class_name(op) << " steps";
  }
  EXPECT_EQ(a.created_nodes, b.created_nodes) << what;
  EXPECT_EQ(a.unique_hits, b.unique_hits) << what;
  EXPECT_EQ(a.cache_lookups, b.cache_lookups) << what;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << what;
  EXPECT_EQ(a.gc_runs, b.gc_runs) << what;
  EXPECT_EQ(a.gc_reclaimed, b.gc_reclaimed) << what;
}

void expect_conservation(const char* name, const ProgramFactory& make) {
  const ProfileRun seq = run_profiled(make, 1);
  EXPECT_TRUE(seq.success) << name;
  EXPECT_GT(seq.totals.work_steps(), 0u) << name;

  // Flat table == tree rollup == totals, counter for counter.
  expect_counters_equal(seq.flat_sum, seq.totals,
                        std::string(name) + " flat vs totals");
  expect_counters_equal(seq.tree_sum, seq.totals,
                        std::string(name) + " tree vs totals");

  // Collapsed self-weights sum exactly to the flat table's totals.
  EXPECT_EQ(sum_collapsed_weights(seq.collapsed_steps),
            seq.totals.work_steps())
      << name;
  EXPECT_EQ(sum_collapsed_weights(seq.collapsed_nodes),
            seq.totals.created_nodes)
      << name;

  // Workers charge the dispatching path: the profile is byte-identical
  // under intra parallelism, not merely weight-conserving.
  const ProfileRun par = run_profiled(make, 4);
  EXPECT_EQ(seq.collapsed_steps, par.collapsed_steps)
      << name << ": collapsed steps profile differs under --par-intra=4";
  expect_counters_equal(par.flat_sum, par.totals,
                        std::string(name) + " par flat vs totals");
  EXPECT_EQ(sum_collapsed_weights(par.collapsed_steps),
            par.totals.work_steps())
      << name;
}

TEST(FlamegraphConservationTest, Tmr) {
  expect_conservation("tmr", [] { return cs::make_tmr({}); });
}

TEST(FlamegraphConservationTest, TokenRing) {
  expect_conservation("token_ring", [] { return cs::make_token_ring({}); });
}

TEST(FlamegraphConservationTest, Byzantine) {
  expect_conservation("byzantine", [] { return cs::make_byzantine({}); });
}

TEST(FlamegraphConservationTest, Chain) {
  cs::ChainOptions chain;
  chain.length = 8;
  expect_conservation("Sc^8", [chain] { return cs::make_chain(chain); });
}

}  // namespace
}  // namespace lr::repair
