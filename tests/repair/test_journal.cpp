// Tests for the repair decision journal: sat_one witness extraction,
// machine-verification of every journal witness against its event's
// pre/post predicates, the lazy-vs-cautious pre-Repair pruning contrast
// the journal exists to expose, and byte-determinism of the JSONL form.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/witness.hpp"
#include "lang/parser.hpp"
#include "repair/cautious.hpp"
#include "repair/journal.hpp"
#include "repair/lazy.hpp"
#include "repair/types.hpp"

namespace lr::repair {
namespace {

std::string model_path(const std::string& name) {
  return std::string(LR_SOURCE_DIR) + "/models/" + name;
}

double num_field(const JournalEvent& event, const char* key) {
  const auto it = event.num.find(key);
  return it == event.num.end() ? 0.0 : it->second;
}

std::string text_field(const JournalEvent& event, const char* key) {
  const auto it = event.text.find(key);
  return it == event.text.end() ? std::string() : it->second;
}

// ---------------------------------------------------------------------------
// bdd::sat_one

TEST(SatOneTest, ExtractsASatisfyingAssignment) {
  bdd::Manager mgr;
  std::vector<bdd::VarIndex> vars;
  for (int i = 0; i < 4; ++i) vars.push_back(mgr.new_var());
  const bdd::Bdd f = mgr.bdd_var(vars[0]) & mgr.bdd_nvar(vars[2]);

  const std::vector<signed char> values = bdd::sat_one(mgr, f);
  ASSERT_EQ(values.size(), mgr.var_count());
  EXPECT_EQ(values[vars[0]], 1);
  EXPECT_EQ(values[vars[2]], 0);
  // Variables outside the support are don't-cares.
  EXPECT_EQ(values[vars[1]], -1);
  EXPECT_EQ(values[vars[3]], -1);

  // Re-encode the assignment (don't-cares -> either value) and check it
  // satisfies f.
  bdd::Bdd minterm = mgr.bdd_true();
  for (bdd::VarIndex v = 0; v < mgr.var_count(); ++v) {
    if (values[v] == 1) minterm &= mgr.bdd_var(v);
    if (values[v] == 0) minterm &= mgr.bdd_nvar(v);
  }
  EXPECT_TRUE(minterm.leq(f));
}

TEST(SatOneTest, UnsatAndInvalidReturnEmpty) {
  bdd::Manager mgr;
  (void)mgr.new_var();
  EXPECT_TRUE(bdd::sat_one(mgr, mgr.bdd_false()).empty());
  EXPECT_TRUE(bdd::sat_one(mgr, bdd::Bdd()).empty());
}

TEST(SatOneTest, TautologyIsAllDontCares) {
  bdd::Manager mgr;
  (void)mgr.new_var();
  (void)mgr.new_var();
  const std::vector<signed char> values = bdd::sat_one(mgr, mgr.bdd_true());
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], -1);
  EXPECT_EQ(values[1], -1);
}

TEST(SatOneTest, IsDeterministic) {
  bdd::Manager mgr;
  std::vector<bdd::VarIndex> vars;
  for (int i = 0; i < 6; ++i) vars.push_back(mgr.new_var());
  const bdd::Bdd f = (mgr.bdd_var(vars[1]) ^ mgr.bdd_var(vars[3])) |
                     (mgr.bdd_var(vars[0]) & mgr.bdd_var(vars[5]));
  EXPECT_EQ(bdd::sat_one(mgr, f), bdd::sat_one(mgr, f));
}

// ---------------------------------------------------------------------------
// Journal integration

struct JournalRun {
  std::unique_ptr<prog::DistributedProgram> program;
  Journal journal;  // declared after program: events hold live Bdd handles
  RepairResult result;
};

JournalRun run_with_journal(const std::string& model, bool cautious) {
  JournalRun run;
  run.program = lang::parse_program_file(model_path(model));
  Options options;
  options.journal = &run.journal;
  run.result = cautious ? cautious_repair(*run.program, options)
                        : lazy_repair(*run.program, options);
  return run;
}

/// Re-checks every witness in the journal against the live pre/post
/// predicates of its event: the witness must satisfy the pre-prune
/// predicate and violate the post-prune one. Returns the number of
/// witnesses verified.
std::size_t verify_witnesses(JournalRun& run) {
  sym::Space& space = run.program->space();
  std::size_t verified = 0;
  for (const JournalEvent& event : run.journal.events()) {
    if (!event.witness || !event.pre.valid()) continue;
    const JournalWitness& w = *event.witness;
    bdd::Bdd minterm;
    if (w.to.empty()) {
      minterm = space.state(w.from, sym::Version::kCurrent);
    } else {
      minterm = space.transition(w.from, w.to);
    }
    EXPECT_TRUE(minterm.valid()) << event.kind;
    if (!minterm.valid()) continue;
    // Satisfies the pre-prune predicate ...
    EXPECT_TRUE(minterm.leq(event.pre))
        << event.kind << " witness escapes its pre predicate";
    // ... and violates the post-prune one (when the event has one).
    if (event.post.valid()) {
      EXPECT_TRUE((minterm & event.post).is_false())
          << event.kind << " witness still satisfies its post predicate";
    }
    ++verified;
  }
  return verified;
}

// ASSERT_TRUE inside a helper needs a void-returning wrapper.
void verify_witnesses_nonempty(JournalRun& run) {
  EXPECT_GT(verify_witnesses(run), 0u);
}

TEST(JournalTest, LazyWitnessesAreMachineVerified) {
  // mutex_ring makes lazy's realize reject closure-violating groups, so
  // the journal carries transition witnesses to verify.
  JournalRun run = run_with_journal("mutex_ring.lr", /*cautious=*/false);
  EXPECT_TRUE(run.result.success);
  verify_witnesses_nonempty(run);
}

TEST(JournalTest, CautiousWitnessesAreMachineVerified) {
  JournalRun run = run_with_journal("mutex_ring.lr", /*cautious=*/true);
  verify_witnesses_nonempty(run);
}

TEST(JournalTest, TmrWitnessesAreMachineVerified) {
  // tmr journals have no rejections (the unreachable-member tolerance
  // covers every ref-flipped group member) — every witness that does
  // appear must still check out, for both algorithms.
  for (const bool cautious : {false, true}) {
    JournalRun run = run_with_journal("tmr.lr", cautious);
    EXPECT_TRUE(run.result.success);
    verify_witnesses(run);
  }
}

/// Transitions pruned during pre-Repair analysis ("analysis.*" phases:
/// the cautious group-closure discipline) summed over the journal.
double analysis_pruned_trans(const Journal& journal) {
  double total = 0.0;
  for (const JournalEvent& event : journal.events()) {
    const bool rejected =
        event.kind == "prune" ||
        (event.kind == "group" && text_field(event, "decision") == "rejected");
    if (!rejected) continue;
    if (text_field(event, "phase").rfind("analysis.", 0) == 0) {
      total += num_field(event, "trans");
    }
  }
  return total;
}

TEST(JournalTest, CautiousPrunesStrictlyMoreBeforeRepairPhase) {
  // The paper's lazy-repair claim, decision-by-decision: lazy defers all
  // pruning to the Repair phase (zero analysis-phase prunes), while the
  // cautious discipline prunes groups during its per-step closure
  // analysis — on mutex_ring so aggressively that repair fails.
  JournalRun lazy = run_with_journal("mutex_ring.lr", /*cautious=*/false);
  JournalRun cautious = run_with_journal("mutex_ring.lr", /*cautious=*/true);
  EXPECT_TRUE(lazy.result.success);

  const double lazy_pruned = analysis_pruned_trans(lazy.journal);
  const double cautious_pruned = analysis_pruned_trans(cautious.journal);
  EXPECT_EQ(lazy_pruned, 0.0);
  EXPECT_GT(cautious_pruned, lazy_pruned);
}

TEST(JournalTest, JsonlIsByteDeterministic) {
  // Two independent runs of the same deterministic repair (fresh program,
  // fresh manager, fresh journal) serialize byte-identically — the
  // property the batch --jobs determinism test leans on.
  for (const bool cautious : {false, true}) {
    JournalRun first = run_with_journal("mutex_ring.lr", cautious);
    JournalRun second = run_with_journal("mutex_ring.lr", cautious);
    EXPECT_EQ(first.journal.to_jsonl(), second.journal.to_jsonl());
  }
}

TEST(JournalTest, JsonlShapeAndSchema) {
  JournalRun run = run_with_journal("tmr.lr", /*cautious=*/false);
  const std::string jsonl = run.journal.to_jsonl();
  EXPECT_EQ(jsonl.rfind("{\"schema\":1,\"event\":\"journal\"", 0), 0u)
      << jsonl.substr(0, 80);
  EXPECT_NE(jsonl.find("\"algorithm\":\"lazy\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"round_start\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"run_end\""), std::string::npos);
}

TEST(JournalTest, DescribeJournalNarrative) {
  JournalRun run = run_with_journal("tmr.lr", /*cautious=*/false);
  const std::vector<std::string> lines = describe_journal(run.journal);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.front().find("algorithm lazy"), std::string::npos);
  bool saw_round = false;
  for (const std::string& line : lines) {
    if (line.rfind("round 0:", 0) == 0) saw_round = true;
  }
  EXPECT_TRUE(saw_round);
  EXPECT_EQ(lines.back(), "result: success");
}

TEST(JournalTest, JournalingDoesNotChangeTheRepair) {
  // Observation only: the same model repairs to the same invariant and
  // span with and without a journal attached.
  auto bare_program = lang::parse_program_file(model_path("mutex_ring.lr"));
  Options bare_options;
  const RepairResult bare = lazy_repair(*bare_program, bare_options);

  JournalRun run = run_with_journal("mutex_ring.lr", /*cautious=*/false);
  EXPECT_EQ(bare.success, run.result.success);
  EXPECT_EQ(bare.stats.invariant_states, run.result.stats.invariant_states);
  EXPECT_EQ(bare.stats.span_states, run.result.stats.span_states);
  EXPECT_EQ(bare.stats.outer_iterations, run.result.stats.outer_iterations);
}

}  // namespace
}  // namespace lr::repair
