// Round-trip tests for the .lr exporter: repair -> export -> parse ->
// verify, on several case studies.

#include <gtest/gtest.h>

#include "casestudies/chain.hpp"
#include "casestudies/tmr.hpp"
#include "casestudies/token_ring.hpp"
#include "lang/parser.hpp"
#include "repair/export.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"

namespace lr::repair {
namespace {

void round_trip(prog::DistributedProgram& program) {
  const RepairResult result = lazy_repair(program);
  ASSERT_TRUE(result.success) << result.failure_reason;
  const std::string exported = export_model(program, result);
  SCOPED_TRACE(exported);

  // The exported text parses.
  auto reparsed = lang::parse_program(exported);
  ASSERT_EQ(reparsed->process_count(), program.process_count());

  // The exported program is already masking fault-tolerant: repairing it
  // again succeeds and the verified result keeps all its behavior inside
  // the invariant (the re-repair has nothing to remove there).
  const RepairResult again = lazy_repair(*reparsed);
  ASSERT_TRUE(again.success) << again.failure_reason;
  const VerifyReport report = verify_masking(*reparsed, again);
  EXPECT_TRUE(report.ok);
  for (const auto& f : report.failures) ADD_FAILURE() << f;
}

TEST(ExportTest, QuickstartRoundTrip) {
  auto p = lang::parse_program(R"(
program quickstart;
var x : 0..2;
process worker {
  reads x;
  writes x;
  action reset: x == 1 -> x := 0;
}
fault glitch: x == 0 -> x := 1;
invariant x == 0;
bad_state x == 2;
)");
  round_trip(*p);
}

TEST(ExportTest, ChainRoundTrip) {
  auto p = cs::make_chain({.length = 3, .domain = 2});
  round_trip(*p);
}

TEST(ExportTest, TokenRingRoundTrip) {
  auto p = cs::make_token_ring({.processes = 3, .domain = 3});
  round_trip(*p);
}

TEST(ExportTest, TmrRoundTrip) {
  auto p = cs::make_tmr({});
  round_trip(*p);
}

TEST(ExportTest, ExportMentionsEveryDeclaredPiece) {
  auto p = cs::make_tmr({});
  const RepairResult result = lazy_repair(*p);
  ASSERT_TRUE(result.success);
  const std::string text = export_model(*p, result);
  EXPECT_NE(text.find("program tmr_3;"), std::string::npos);
  EXPECT_NE(text.find("var ref : 0..1;"), std::string::npos);
  EXPECT_NE(text.find("process voter"), std::string::npos);
  EXPECT_NE(text.find("fault corrupt_in0"), std::string::npos);
  EXPECT_NE(text.find("invariant"), std::string::npos);
  EXPECT_NE(text.find("bad_state"), std::string::npos);
  EXPECT_NE(text.find("bad_transition"), std::string::npos);
}

}  // namespace
}  // namespace lr::repair
