// Repair with dynamic variable reordering enabled must produce the same
// (verified) results as the static interleaved order.

#include <gtest/gtest.h>

#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"

namespace lr::repair {
namespace {

TEST(SiftOptionTest, ByzantineWithSifting) {
  auto p = cs::make_byzantine({.non_generals = 3});
  Options options;
  options.sift_before_repair = true;
  const RepairResult r = lazy_repair(*p, options);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(verify_masking(*p, r).ok);

  auto p2 = cs::make_byzantine({.non_generals = 3});
  const RepairResult reference = lazy_repair(*p2);
  EXPECT_DOUBLE_EQ(p->space().count_states(r.invariant),
                   p2->space().count_states(reference.invariant));
  EXPECT_DOUBLE_EQ(p->space().count_states(r.fault_span),
                   p2->space().count_states(reference.fault_span));
}

TEST(SiftOptionTest, ChainWithSifting) {
  auto p = cs::make_chain({.length = 4, .domain = 3});
  Options options;
  options.sift_before_repair = true;
  const RepairResult r = lazy_repair(*p, options);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(verify_masking(*p, r).ok);
}

}  // namespace
}  // namespace lr::repair
