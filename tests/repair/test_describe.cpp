// Tests for the guarded-command renderer of synthesized programs.

#include <gtest/gtest.h>

#include "casestudies/chain.hpp"
#include "casestudies/token_ring.hpp"
#include "repair/describe.hpp"
#include "repair/lazy.hpp"

namespace lr::repair {
namespace {

TEST(DescribeTest, EmptyDeltaRendersNothing) {
  auto p = cs::make_chain({.length = 2, .domain = 2});
  const auto lines = describe_process_program(*p, 0, p->space().bdd_false(),
                                              bdd::Bdd());
  EXPECT_TRUE(lines.empty());
}

TEST(DescribeTest, ChainPropagationReadsLikeTheAction) {
  auto p = cs::make_chain({.length = 2, .domain = 2});
  const auto result = lazy_repair(*p);
  ASSERT_TRUE(result.success);
  const auto lines = describe_process_program(
      *p, 0, result.process_deltas[0], result.fault_span);
  ASSERT_FALSE(lines.empty());
  // Process p1 reads x0, x1 and writes x1; every command must mention only
  // those names and have an update.
  for (const auto& line : lines) {
    EXPECT_NE(line.find("-->"), std::string::npos) << line;
    EXPECT_NE(line.find("x1:="), std::string::npos) << line;
    EXPECT_EQ(line.find("x2"), std::string::npos) << line;
  }
}

TEST(DescribeTest, RestrictionDropsUnreachableCommands) {
  auto p = cs::make_chain({.length = 3, .domain = 2});
  const auto result = lazy_repair(*p);
  ASSERT_TRUE(result.success);
  const auto all = describe_process_program(*p, 1, result.process_deltas[1],
                                            bdd::Bdd());
  const auto restricted = describe_process_program(
      *p, 1, result.process_deltas[1], result.fault_span);
  EXPECT_GE(all.size(), restricted.size());
}

TEST(DescribeTest, TruncationMarker) {
  auto p = cs::make_token_ring({.processes = 3, .domain = 4});
  const auto result = lazy_repair(*p);
  ASSERT_TRUE(result.success);
  const auto lines = describe_process_program(
      *p, 0, result.process_deltas[0], result.fault_span, 2);
  ASSERT_FALSE(lines.empty());
  EXPECT_LE(lines.size(), 3u);  // two commands + "..."
  EXPECT_EQ(lines.back(), "...");
}

TEST(DescribeTest, DijkstraRingRootIncrements) {
  auto p = cs::make_token_ring({.processes = 3, .domain = 3});
  const auto result = lazy_repair(*p);
  ASSERT_TRUE(result.success);
  const auto lines = describe_process_program(
      *p, 0, result.process_deltas[0], result.fault_span);
  // The root's behavior is x0 := x2 + 1 mod 3; the rendering enumerates
  // its three instances.
  bool saw_increment = false;
  for (const auto& line : lines) {
    if (line.find("x2==0") != std::string::npos &&
        line.find("x0:=1") != std::string::npos) {
      saw_increment = true;
    }
  }
  EXPECT_TRUE(saw_increment);
}

}  // namespace
}  // namespace lr::repair
