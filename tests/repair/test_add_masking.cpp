// Unit tests for Step 1 (Add-Masking without realizability constraints).

#include <gtest/gtest.h>

#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "program/distributed_program.hpp"
#include "repair/add_masking.hpp"

namespace lr::repair {
namespace {

using lang::Expr;
using lang::action;

StepOneResult run(prog::DistributedProgram& p, const Options& options = {}) {
  Stats stats;
  return add_masking(p, p.invariant(), p.space().bdd_false(), bdd::Bdd(),
                     options, stats);
}

/// x ∈ {0..2}; invariant x=0; fault bumps x to 1; process can reset from 1.
/// From 2 there is no return, and a bad state sits at x=2.
std::unique_ptr<prog::DistributedProgram> make_micro() {
  auto p = std::make_unique<prog::DistributedProgram>("micro");
  const sym::VarId x = p->add_variable("x", 3);
  prog::Process proc;
  proc.name = "p";
  proc.reads = {x};
  proc.writes = {x};
  proc.actions.push_back(
      action("reset", Expr::var(x) == 1u).assign(x, Expr::constant(0)));
  p->add_process(std::move(proc));
  p->add_fault(action("bump", Expr::var(x) == 0u).assign(x, Expr::constant(1)));
  p->set_invariant(Expr::var(x) == 0u);
  p->add_bad_states(Expr::var(x) == 2u);
  return p;
}

TEST(AddMaskingTest, MicroModelKeepsInvariantAndRecovers) {
  auto p = make_micro();
  auto& sp = p->space();
  const StepOneResult r = run(*p);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.invariant, p->invariant());
  // Fault span: {0, 1} (2 is a bad state, never reached).
  EXPECT_DOUBLE_EQ(sp.count_states(r.fault_span), 2.0);
  // Recovery 1 -> 0 is in δ'; no transition enters the bad state.
  const std::uint32_t one[1] = {1};
  const std::uint32_t zero[1] = {0};
  const std::uint32_t two[1] = {2};
  EXPECT_TRUE(sp.transition(one, zero).leq(r.delta));
  EXPECT_TRUE(r.delta.disjoint(sp.prime(sp.state(two))));
}

TEST(AddMaskingTest, FailsWhenFaultsForceBadStates) {
  // Fault jumps straight from the invariant to the bad state: ms swallows
  // the invariant, no repair exists.
  auto p = std::make_unique<prog::DistributedProgram>("doomed");
  const sym::VarId x = p->add_variable("x", 2);
  prog::Process proc;
  proc.name = "p";
  proc.reads = {x};
  proc.writes = {x};
  p->add_process(std::move(proc));
  p->add_fault(
      action("kill", Expr::var(x) == 0u).assign(x, Expr::constant(1)));
  p->set_invariant(Expr::var(x) == 0u);
  p->add_bad_states(Expr::var(x) == 1u);
  const StepOneResult r = run(*p);
  EXPECT_FALSE(r.success);
}

TEST(AddMaskingTest, FailsOnEmptyInvariant) {
  auto p = std::make_unique<prog::DistributedProgram>("empty");
  const sym::VarId x = p->add_variable("x", 2);
  prog::Process proc;
  proc.name = "p";
  proc.reads = {x};
  proc.writes = {x};
  p->add_process(std::move(proc));
  p->set_invariant(Expr::bool_const(false));
  const StepOneResult r = run(*p);
  EXPECT_FALSE(r.success);
}

TEST(AddMaskingTest, InvariantClosedAndSafeUnderDelta) {
  auto p = cs::make_byzantine({.non_generals = 3});
  auto& sp = p->space();
  const StepOneResult r = run(*p);
  ASSERT_TRUE(r.success);
  // Closure of S' under δ'.
  EXPECT_TRUE(sp.image(r.delta, r.invariant).leq(r.invariant));
  // S' ⊆ S and δ'|S' ⊆ δ_P|S'.
  EXPECT_TRUE(r.invariant.leq(p->invariant()));
  EXPECT_TRUE((r.delta & r.invariant & sp.prime(r.invariant))
                  .leq(p->program_delta()));
  // δ' avoids bad states and transitions entirely.
  EXPECT_TRUE(r.delta.disjoint(p->safety().bad_trans));
  EXPECT_TRUE(r.delta.disjoint(sp.prime(p->safety().bad_states)));
}

TEST(AddMaskingTest, SpanClosedUnderFaultsAndDelta) {
  auto p = cs::make_byzantine({.non_generals = 3});
  auto& sp = p->space();
  const StepOneResult r = run(*p);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(sp.image(p->fault_delta(), r.fault_span).leq(r.fault_span));
  EXPECT_TRUE(sp.image(r.delta, r.fault_span).leq(r.fault_span));
}

TEST(AddMaskingTest, EverySpanStateReachesInvariant) {
  auto p = cs::make_byzantine({.non_generals = 3});
  auto& sp = p->space();
  const StepOneResult r = run(*p);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.fault_span.leq(sp.backward_reachable(r.delta, r.invariant)));
}

TEST(AddMaskingTest, NoSelfLoopsOutsideInvariant) {
  auto p = cs::make_chain({.length = 3, .domain = 3});
  auto& sp = p->space();
  const StepOneResult r = run(*p);
  ASSERT_TRUE(r.success);
  const bdd::Bdd outside = r.fault_span.minus(r.invariant);
  EXPECT_TRUE((r.delta & sp.identity()).disjoint(outside));
}

TEST(AddMaskingTest, HeuristicOffExploresWholeSpace) {
  auto p1 = cs::make_chain({.length = 3, .domain = 2});
  Options restricted;
  Stats stats_on;
  const StepOneResult on = add_masking(*p1, p1->invariant(),
                                       p1->space().bdd_false(), bdd::Bdd(),
                                       restricted, stats_on);
  auto p2 = cs::make_chain({.length = 3, .domain = 2});
  Options full;
  full.restrict_to_reachable = false;
  Stats stats_off;
  const StepOneResult off = add_masking(*p2, p2->invariant(),
                                        p2->space().bdd_false(), bdd::Bdd(),
                                        full, stats_off);
  ASSERT_TRUE(on.success);
  ASSERT_TRUE(off.success);
  // For the chain, faults reach everything, so both agree.
  EXPECT_DOUBLE_EQ(stats_on.reachable_states, stats_off.reachable_states);
  EXPECT_DOUBLE_EQ(p1->space().count_states(on.invariant),
                   p2->space().count_states(off.invariant));
}

TEST(AddMaskingTest, ExtraBadTransitionsAreRespected) {
  auto p = make_micro();
  auto& sp = p->space();
  // Ban the recovery transition 1 -> 0: repair becomes impossible (faults
  // still push 0 -> 1 and 1 cannot idle forever).
  const std::uint32_t one[1] = {1};
  const std::uint32_t zero[1] = {0};
  const bdd::Bdd ban = sp.transition(one, zero);
  Stats stats;
  Options options;
  const StepOneResult r =
      add_masking(*p, p->invariant(), ban, bdd::Bdd(), options, stats);
  EXPECT_FALSE(r.success);
}

TEST(AddMaskingTest, ReportsLayerAndRoundStatistics) {
  auto p = cs::make_chain({.length = 4, .domain = 2});
  Stats stats;
  Options options;
  const StepOneResult r = add_masking(*p, p->invariant(),
                                      p->space().bdd_false(), bdd::Bdd(),
                                      options, stats);
  ASSERT_TRUE(r.success);
  EXPECT_GE(stats.addmasking_rounds, 1u);
  EXPECT_GE(stats.recovery_layers, 1u);
  EXPECT_GT(stats.reachable_states, 0.0);
  EXPECT_GT(stats.span_states, 0.0);
  EXPECT_GT(stats.invariant_states, 0.0);
}

}  // namespace
}  // namespace lr::repair
