// Tests for the batch repair executor: determinism across job counts,
// task-order results, per-task error capture, and metrics recording.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "casestudies/chain.hpp"
#include "casestudies/tmr.hpp"
#include "casestudies/token_ring.hpp"
#include "repair/batch.hpp"
#include "support/metrics.hpp"

namespace lr::repair {
namespace {

std::vector<BatchTask> mixed_tasks() {
  std::vector<BatchTask> tasks;
  {
    BatchTask task;
    task.name = "tmr";
    task.make_program = [] { return cs::make_tmr({}); };
    tasks.push_back(std::move(task));
  }
  {
    BatchTask task;
    task.name = "chain4";
    task.make_program = [] {
      return cs::make_chain({.length = 4, .domain = 3});
    };
    tasks.push_back(std::move(task));
  }
  {
    BatchTask task;
    task.name = "ring4";
    task.make_program = [] {
      return cs::make_token_ring({.processes = 4, .domain = 4});
    };
    tasks.push_back(std::move(task));
  }
  {
    BatchTask task;
    task.name = "tmr-cautious";
    task.algorithm = BatchTask::Algorithm::kCautious;
    task.options.group_method = GroupMethod::kOneShot;
    task.make_program = [] { return cs::make_tmr({}); };
    tasks.push_back(std::move(task));
  }
  return tasks;
}

TEST(BatchTest, RepairsEveryTaskAndKeepsTaskOrder) {
  const auto tasks = mixed_tasks();
  BatchOptions options;
  options.jobs = 4;
  options.record_metrics = false;
  const BatchReport report = run_batch(tasks, options);
  ASSERT_EQ(report.items.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(report.items[i].name, tasks[i].name) << "order broken at " << i;
    EXPECT_TRUE(report.items[i].ok()) << tasks[i].name << ": "
                                      << report.items[i].failure_reason;
    EXPECT_TRUE(report.items[i].verified);
  }
  EXPECT_EQ(report.ok_count(), tasks.size());
  EXPECT_EQ(report.failed_count(), 0u);
}

TEST(BatchTest, ParallelResultsMatchSequentialExactly) {
  const auto tasks = mixed_tasks();
  BatchOptions sequential;
  sequential.jobs = 1;
  sequential.record_metrics = false;
  BatchOptions parallel = sequential;
  parallel.jobs = 8;
  const BatchReport a = run_batch(tasks, sequential);
  const BatchReport b = run_batch(tasks, parallel);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    const BatchItemResult& x = a.items[i];
    const BatchItemResult& y = b.items[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.success, y.success) << x.name;
    EXPECT_EQ(x.verify_ok, y.verify_ok) << x.name;
    EXPECT_EQ(x.model_states, y.model_states) << x.name;
    // The synthesized artifacts are deterministic; only time may differ.
    EXPECT_EQ(x.stats.invariant_states, y.stats.invariant_states) << x.name;
    EXPECT_EQ(x.stats.span_states, y.stats.span_states) << x.name;
    EXPECT_EQ(x.stats.outer_iterations, y.stats.outer_iterations) << x.name;
    EXPECT_EQ(x.stats.group_iterations, y.stats.group_iterations) << x.name;
    EXPECT_EQ(x.stats.bdd.created_nodes, y.stats.bdd.created_nodes) << x.name;
  }
}

TEST(BatchTest, BuildErrorsAreCapturedPerTask) {
  std::vector<BatchTask> tasks;
  {
    BatchTask task;
    task.name = "broken";
    task.make_program = []() -> std::unique_ptr<prog::DistributedProgram> {
      throw std::runtime_error("synthetic build failure");
    };
    tasks.push_back(std::move(task));
  }
  {
    BatchTask task;
    task.name = "tmr";
    task.make_program = [] { return cs::make_tmr({}); };
    tasks.push_back(std::move(task));
  }
  BatchOptions options;
  options.jobs = 2;
  options.record_metrics = false;
  const BatchReport report = run_batch(tasks, options);
  ASSERT_EQ(report.items.size(), 2u);
  EXPECT_FALSE(report.items[0].build_ok);
  EXPECT_FALSE(report.items[0].ok());
  EXPECT_EQ(report.items[0].failure_reason, "synthetic build failure");
  EXPECT_TRUE(report.items[1].ok()) << "an error in one task must not "
                                       "poison its neighbors";
  EXPECT_EQ(report.ok_count(), 1u);
  EXPECT_EQ(report.failed_count(), 1u);
}

TEST(BatchTest, RecordsAggregateAndPerTaskMetrics) {
  support::metrics::registry().clear();
  std::vector<BatchTask> tasks;
  {
    BatchTask task;
    task.name = "tmr";
    task.make_program = [] { return cs::make_tmr({}); };
    tasks.push_back(std::move(task));
  }
  BatchOptions options;
  options.jobs = 2;
  options.metrics_prefix = "testbatch";
  const BatchReport report = run_batch(tasks, options);
  ASSERT_TRUE(report.items[0].ok());
  const auto& m = support::metrics::registry();
  EXPECT_EQ(m.counter("testbatch.tasks"), 1u);
  EXPECT_EQ(m.counter("testbatch.ok"), 1u);
  EXPECT_EQ(m.counter("testbatch.failed"), 0u);
  EXPECT_TRUE(m.has_gauge("testbatch.wall_seconds"));
  EXPECT_TRUE(m.has_gauge(
      "testbatch.tmr.lazy (group loop).repair.invariant_states"));
  // The un-prefixed aggregate keys accumulate across the whole batch.
  EXPECT_TRUE(m.has_gauge("repair.invariant_states"));
  support::metrics::registry().clear();
}

}  // namespace
}  // namespace lr::repair
