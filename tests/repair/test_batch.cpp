// Tests for the batch repair executor: determinism across job counts,
// task-order results, per-task error capture, metrics recording, timeouts
// with bounded retries, and checkpoint/resume.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "casestudies/chain.hpp"
#include "casestudies/tmr.hpp"
#include "casestudies/token_ring.hpp"
#include <memory>

#include "lang/parser.hpp"
#include "repair/batch.hpp"
#include "repair/export.hpp"
#include "repair/lazy.hpp"
#include "repair/manifest.hpp"
#include "support/fs.hpp"
#include "support/metrics.hpp"

namespace lr::repair {
namespace {

std::vector<BatchTask> mixed_tasks() {
  std::vector<BatchTask> tasks;
  {
    BatchTask task;
    task.name = "tmr";
    task.make_program = [] { return cs::make_tmr({}); };
    tasks.push_back(std::move(task));
  }
  {
    BatchTask task;
    task.name = "chain4";
    task.make_program = [] {
      return cs::make_chain({.length = 4, .domain = 3});
    };
    tasks.push_back(std::move(task));
  }
  {
    BatchTask task;
    task.name = "ring4";
    task.make_program = [] {
      return cs::make_token_ring({.processes = 4, .domain = 4});
    };
    tasks.push_back(std::move(task));
  }
  {
    BatchTask task;
    task.name = "tmr-cautious";
    task.algorithm = BatchTask::Algorithm::kCautious;
    task.options.group_method = GroupMethod::kOneShot;
    task.make_program = [] { return cs::make_tmr({}); };
    tasks.push_back(std::move(task));
  }
  return tasks;
}

TEST(BatchTest, RepairsEveryTaskAndKeepsTaskOrder) {
  const auto tasks = mixed_tasks();
  BatchOptions options;
  options.jobs = 4;
  options.record_metrics = false;
  const BatchReport report = run_batch(tasks, options);
  ASSERT_EQ(report.items.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(report.items[i].name, tasks[i].name) << "order broken at " << i;
    EXPECT_TRUE(report.items[i].ok()) << tasks[i].name << ": "
                                      << report.items[i].failure_reason;
    EXPECT_TRUE(report.items[i].verified);
  }
  EXPECT_EQ(report.ok_count(), tasks.size());
  EXPECT_EQ(report.failed_count(), 0u);
}

TEST(BatchTest, ParallelResultsMatchSequentialExactly) {
  const auto tasks = mixed_tasks();
  BatchOptions sequential;
  sequential.jobs = 1;
  sequential.record_metrics = false;
  BatchOptions parallel = sequential;
  parallel.jobs = 8;
  const BatchReport a = run_batch(tasks, sequential);
  const BatchReport b = run_batch(tasks, parallel);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    const BatchItemResult& x = a.items[i];
    const BatchItemResult& y = b.items[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.success, y.success) << x.name;
    EXPECT_EQ(x.verify_ok, y.verify_ok) << x.name;
    EXPECT_EQ(x.model_states, y.model_states) << x.name;
    // The synthesized artifacts are deterministic; only time may differ.
    EXPECT_EQ(x.stats.invariant_states, y.stats.invariant_states) << x.name;
    EXPECT_EQ(x.stats.span_states, y.stats.span_states) << x.name;
    EXPECT_EQ(x.stats.outer_iterations, y.stats.outer_iterations) << x.name;
    EXPECT_EQ(x.stats.group_iterations, y.stats.group_iterations) << x.name;
    EXPECT_EQ(x.stats.bdd.created_nodes, y.stats.bdd.created_nodes) << x.name;
  }
}

TEST(BatchTest, BuildErrorsAreCapturedPerTask) {
  std::vector<BatchTask> tasks;
  {
    BatchTask task;
    task.name = "broken";
    task.make_program = []() -> std::unique_ptr<prog::DistributedProgram> {
      throw std::runtime_error("synthetic build failure");
    };
    tasks.push_back(std::move(task));
  }
  {
    BatchTask task;
    task.name = "tmr";
    task.make_program = [] { return cs::make_tmr({}); };
    tasks.push_back(std::move(task));
  }
  BatchOptions options;
  options.jobs = 2;
  options.record_metrics = false;
  const BatchReport report = run_batch(tasks, options);
  ASSERT_EQ(report.items.size(), 2u);
  EXPECT_FALSE(report.items[0].build_ok);
  EXPECT_FALSE(report.items[0].ok());
  EXPECT_EQ(report.items[0].failure_reason, "synthetic build failure");
  EXPECT_TRUE(report.items[1].ok()) << "an error in one task must not "
                                       "poison its neighbors";
  EXPECT_EQ(report.ok_count(), 1u);
  EXPECT_EQ(report.failed_count(), 1u);
}

TEST(BatchTest, RecordsAggregateAndPerTaskMetrics) {
  support::metrics::registry().clear();
  std::vector<BatchTask> tasks;
  {
    BatchTask task;
    task.name = "tmr";
    task.make_program = [] { return cs::make_tmr({}); };
    tasks.push_back(std::move(task));
  }
  BatchOptions options;
  options.jobs = 2;
  options.metrics_prefix = "testbatch";
  const BatchReport report = run_batch(tasks, options);
  ASSERT_TRUE(report.items[0].ok());
  const auto& m = support::metrics::registry();
  EXPECT_EQ(m.counter("testbatch.tasks"), 1u);
  EXPECT_EQ(m.counter("testbatch.ok"), 1u);
  EXPECT_EQ(m.counter("testbatch.failed"), 0u);
  EXPECT_TRUE(m.has_gauge("testbatch.wall_seconds"));
  EXPECT_TRUE(m.has_gauge(
      "testbatch.tmr.lazy (group loop).repair.invariant_states"));
  // The un-prefixed aggregate keys accumulate across the whole batch.
  EXPECT_TRUE(m.has_gauge("repair.invariant_states"));
  support::metrics::registry().clear();
}

TEST(BatchTest, PreCancelledTokenAbortsRepairWithCancelled) {
  auto program = cs::make_tmr({});
  Options options;
  options.cancel = std::make_shared<CancelToken>();
  options.cancel->cancel();
  EXPECT_THROW((void)lazy_repair(*program, options), Cancelled);
}

TEST(BatchTest, TimedOutTaskIsRetriedBoundedlyAndMarkedTimeout) {
  std::vector<BatchTask> tasks;
  BatchTask task;
  task.name = "doomed";
  // A pre-cancelled token makes every attempt hit the cooperative
  // cancellation check on its first fixpoint round — a deterministic
  // stand-in for an expired --task-timeout deadline.
  task.options.cancel = std::make_shared<CancelToken>();
  task.options.cancel->cancel();
  task.make_program = [] { return cs::make_tmr({}); };
  tasks.push_back(std::move(task));

  BatchOptions options;
  options.jobs = 1;
  options.record_metrics = false;
  options.task_retries = 2;
  const BatchReport report = run_batch(tasks, options);
  ASSERT_EQ(report.items.size(), 1u);
  const BatchItemResult& item = report.items[0];
  EXPECT_FALSE(item.ok());
  EXPECT_TRUE(item.timed_out);
  EXPECT_EQ(item.attempts, 3u) << "1 initial + 2 retries";
  EXPECT_STREQ(item.status(), "timeout");
  EXPECT_EQ(report.failed_count(), 1u);
}

TEST(BatchTest, ThrowingBuildIsRetriedButHonestResultIsNot) {
  std::vector<BatchTask> tasks;
  {
    BatchTask task;
    task.name = "thrower";
    task.make_program = []() -> std::unique_ptr<prog::DistributedProgram> {
      throw std::runtime_error("synthetic crash");
    };
    tasks.push_back(std::move(task));
  }
  {
    BatchTask task;
    task.name = "tmr";
    task.make_program = [] { return cs::make_tmr({}); };
    tasks.push_back(std::move(task));
  }
  BatchOptions options;
  options.jobs = 1;
  options.record_metrics = false;
  options.task_retries = 3;
  const BatchReport report = run_batch(tasks, options);
  EXPECT_EQ(report.items[0].attempts, 4u);
  EXPECT_FALSE(report.items[0].ok());
  EXPECT_STREQ(report.items[0].status(), "failed");
  EXPECT_EQ(report.items[1].attempts, 1u)
      << "a successful repair must not burn retry attempts";
  EXPECT_TRUE(report.items[1].ok());
}

/// Fixture for engine-level checkpoint/resume: a real model file, a real
/// manifest and a real export, in a scratch directory.
class BatchResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs each test as its own process of this
    // binary, so a shared directory name races between concurrent tests.
    dir_ = ::testing::TempDir() + std::string("batch_resume_engine_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    model_path_ = dir_ + "/counter.lr";
    write_model("");
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  void write_model(const std::string& suffix) {
    ASSERT_TRUE(support::write_file_atomic(
        model_path_,
        "program counter;\n"
        "var x : 0..2;\n"
        "process worker {\n"
        "  reads x;\n  writes x;\n"
        "  action reset: x == 1 -> x := 0;\n"
        "}\n"
        "fault glitch: x == 0 -> x := 1;\n"
        "invariant x == 0;\n"
        "bad_state x == 2;\n" +
            suffix));
  }

  std::vector<BatchTask> tasks() const {
    std::vector<BatchTask> list;
    BatchTask task;
    task.name = "counter";
    task.input_path = model_path_;
    task.export_path = dir_ + "/counter.repaired.lr";
    task.make_program = [file = model_path_] {
      return lang::parse_program_file(file);
    };
    list.push_back(std::move(task));
    return list;
  }

  BatchOptions batch_options(bool resume) const {
    BatchOptions options;
    options.jobs = 1;
    options.record_metrics = false;
    options.manifest_path = dir_ + "/batch.manifest.json";
    options.resume = resume;
    return options;
  }

  std::string dir_;
  std::string model_path_;
};

TEST_F(BatchResumeTest, SkipsValidatedTaskAndReprintsRecordedResult) {
  const BatchReport cold = run_batch(tasks(), batch_options(true));
  ASSERT_EQ(cold.skipped_count(), 0u) << "no manifest yet: cold start";
  ASSERT_TRUE(cold.items[0].ok());
  ASSERT_EQ(cold.items[0].export_path, dir_ + "/counter.repaired.lr");
  ASSERT_TRUE(std::filesystem::exists(cold.items[0].export_path));

  const std::optional<Manifest> manifest =
      Manifest::load(dir_ + "/batch.manifest.json");
  ASSERT_TRUE(manifest.has_value());
  const ManifestEntry* entry = manifest->find("counter");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->status, "ok");
  EXPECT_EQ(entry->input_hash, *support::hash_file(model_path_));

  const BatchReport warm = run_batch(tasks(), batch_options(true));
  EXPECT_EQ(warm.skipped_count(), 1u);
  const BatchItemResult& item = warm.items[0];
  EXPECT_TRUE(item.skipped);
  EXPECT_TRUE(item.ok());
  // Everything the report prints is reprinted from the manifest.
  EXPECT_EQ(item.model_states, cold.items[0].model_states);
  EXPECT_EQ(item.stats.invariant_states, cold.items[0].stats.invariant_states);
  EXPECT_EQ(item.stats.span_states, cold.items[0].stats.span_states);
  EXPECT_EQ(item.verified, cold.items[0].verified);
  EXPECT_EQ(item.verify_ok, cold.items[0].verify_ok);
  EXPECT_EQ(item.algorithm, cold.items[0].algorithm);
}

TEST_F(BatchResumeTest, EditedInputInvalidatesTheManifestRow) {
  (void)run_batch(tasks(), batch_options(true));
  write_model("// semantically neutral edit\n");
  const BatchReport warm = run_batch(tasks(), batch_options(true));
  EXPECT_EQ(warm.skipped_count(), 0u)
      << "a changed input hash must force a re-run";
  EXPECT_TRUE(warm.items[0].ok());
}

TEST_F(BatchResumeTest, CorruptedExportInvalidatesTheManifestRow) {
  const BatchReport cold = run_batch(tasks(), batch_options(true));
  ASSERT_TRUE(cold.items[0].ok());
  // Truncate the export: it still exists but no longer parses.
  ASSERT_TRUE(
      support::write_file_atomic(dir_ + "/counter.repaired.lr", "progr"));
  const BatchReport warm = run_batch(tasks(), batch_options(true));
  EXPECT_EQ(warm.skipped_count(), 0u)
      << "resume must re-verify the export, not trust the manifest";
  EXPECT_TRUE(warm.items[0].ok());
  EXPECT_FALSE(warm.items[0].skipped);
}

TEST_F(BatchResumeTest, ChangedOptionsFingerprintInvalidatesTheManifestRow) {
  (void)run_batch(tasks(), batch_options(true));
  std::vector<BatchTask> changed = tasks();
  changed[0].options.use_expand_group = false;
  const BatchReport warm = run_batch(changed, batch_options(true));
  EXPECT_EQ(warm.skipped_count(), 0u);
}

TEST(BatchVerifyTest, VerifyTolerantModelAcceptsExportAndRejectsOriginal) {
  // The repaired export is self-verifiably tolerant...
  auto program = cs::make_tmr({});
  const RepairResult result = lazy_repair(*program, {});
  ASSERT_TRUE(result.success);
  const std::string path =
      ::testing::TempDir() + "verify_tolerant_export.lr";
  ASSERT_TRUE(export_model_file(*program, result, path));
  auto exported = lang::parse_program_file(path);
  EXPECT_TRUE(verify_tolerant_model(*exported).ok);
  // ...while the fault-intolerant input is not.
  auto original = cs::make_tmr({});
  EXPECT_FALSE(verify_tolerant_model(*original).ok);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lr::repair
