// Differential equivalence suite for the transition-relation
// representation (Options::relation_mode / --rel): the partitioned
// representation with early-quantification scheduling promises
// *byte-identical* results to the historical monolithic path — same
// exported model text, same journal byte stream, same non-timing repair
// metrics — at every --par-intra width. This suite locks that contract
// down on every case study (plus the algorithm/option variants that
// exercise different fixpoints) and on a sweep of random models across
// every LR_FUZZ_TOPOLOGY and LR_FUZZ_FAULTS value.
//
// Environment knobs (fuzz sweep):
//   LR_FUZZ_SEED=N     base seed (model i uses seed N+i); default 20160523
//   LR_FUZZ_MODELS=N   models per topology x fault-class combination;
//                      default 16 (x 4 topologies x 2 fault classes = 128)
//
// On a mismatch the sweep immediately prints the exact failing seed and a
// one-line repro command, e.g.
//   LR_FUZZ_SEED=20160711 LR_FUZZ_MODELS=1 LR_FUZZ_TOPOLOGY=ring \
//     LR_FUZZ_FAULTS=corrupt ./test_relation_modes --gtest_filter='*Fuzz*'
// which replays exactly that model (model_seed(base, 0) == base).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "casestudies/tmr.hpp"
#include "casestudies/token_ring.hpp"
#include "program/distributed_program.hpp"
#include "repair/cautious.hpp"
#include "repair/export.hpp"
#include "repair/journal.hpp"
#include "repair/lazy.hpp"
#include "support/rng.hpp"
#include "../support/model_gen.hpp"

namespace lr::repair {
namespace {

using ProgramFactory =
    std::function<std::unique_ptr<prog::DistributedProgram>()>;

/// Everything the mono/partition runs must agree on byte-for-byte.
struct Artifacts {
  bool success = false;
  std::string failure_reason;
  std::string exported;  ///< export_model() text (empty on failure)
  std::string journal;   ///< Journal::to_jsonl()
  std::string keys;      ///< comparable (non-timing) repair metrics
};

/// The metrics-json `repair.*` keys minus wall-clock (`*_seconds`) and the
/// allocator high-water mark (peak node population legitimately differs
/// between representations).
std::string comparable_keys(const Stats& stats) {
  std::ostringstream out;
  out << "reachable_states=" << stats.reachable_states
      << " outer_iterations=" << stats.outer_iterations
      << " addmasking_rounds=" << stats.addmasking_rounds
      << " group_iterations=" << stats.group_iterations
      << " expand_accepts=" << stats.expand_successes
      << " expand_rejects=" << stats.expand_failures
      << " recovery_layers=" << stats.recovery_layers
      << " deadlock_rounds=" << stats.deadlock_rounds
      << " deadlock_states_banned=" << stats.deadlock_states_banned
      << " banned_trans_nodes=" << stats.banned_trans_nodes
      << " span_states=" << stats.span_states
      << " invariant_states=" << stats.invariant_states;
  return out.str();
}

Artifacts run_repair(const ProgramFactory& make, sym::RelationMode mode,
                     std::size_t intra_jobs, Options options = {},
                     bool cautious = false) {
  std::unique_ptr<prog::DistributedProgram> program = make();
  // Declared after `program`: journal events hold Bdd handles and must not
  // outlive the program's Space.
  Journal journal;
  journal.meta("model", program->name());
  options.journal = &journal;
  options.relation_mode = mode;
  options.intra_jobs = intra_jobs;
  const RepairResult result = cautious ? cautious_repair(*program, options)
                                       : lazy_repair(*program, options);
  Artifacts artifacts;
  artifacts.success = result.success;
  artifacts.failure_reason = result.failure_reason;
  if (result.success) artifacts.exported = export_model(*program, result);
  artifacts.journal = journal.to_jsonl();
  artifacts.keys = comparable_keys(result.stats);
  return artifacts;
}

::testing::AssertionResult equivalent(const Artifacts& mono,
                                      const Artifacts& part,
                                      const std::string& what) {
  if (mono.success != part.success) {
    return ::testing::AssertionFailure()
           << what << ": success " << mono.success << " vs " << part.success
           << " (" << mono.failure_reason << " / " << part.failure_reason
           << ")";
  }
  if (mono.exported != part.exported) {
    return ::testing::AssertionFailure()
           << what << ": exported models differ (" << mono.exported.size()
           << " vs " << part.exported.size() << " bytes)";
  }
  if (mono.journal != part.journal) {
    return ::testing::AssertionFailure()
           << what << ": journals differ (" << mono.journal.size() << " vs "
           << part.journal.size() << " bytes)";
  }
  if (mono.keys != part.keys) {
    return ::testing::AssertionFailure()
           << what << ": repair metrics differ\n  mono: " << mono.keys
           << "\n  part: " << part.keys;
  }
  return ::testing::AssertionSuccess();
}

/// Contract: --rel=mono and --rel=partition agree byte-for-byte at
/// --par-intra 1 and 4 (the intra suite separately locks 1-vs-N within a
/// mode, so the two suites together cover the full mode x width matrix).
constexpr std::size_t kIntraValues[] = {1, 4};

void expect_modes_equivalent(const char* name, const ProgramFactory& make,
                             Options options = {}, bool cautious = false) {
  const Artifacts baseline =
      run_repair(make, sym::RelationMode::kMono, 1, options, cautious);
  for (const std::size_t intra : kIntraValues) {
    const Artifacts mono =
        intra == 1 ? baseline
                   : run_repair(make, sym::RelationMode::kMono, intra,
                                options, cautious);
    const Artifacts part = run_repair(make, sym::RelationMode::kPartition,
                                      intra, options, cautious);
    const std::string what =
        std::string(name) + " par_intra=" + std::to_string(intra);
    EXPECT_TRUE(equivalent(mono, part, what));
    if (intra != 1) EXPECT_TRUE(equivalent(baseline, mono, what + " (mono)"));
  }
}

TEST(RelationModesTest, TmrMatchesMono) {
  expect_modes_equivalent("tmr", [] { return cs::make_tmr({}); });
}

TEST(RelationModesTest, TokenRingMatchesMono) {
  expect_modes_equivalent("token_ring",
                          [] { return cs::make_token_ring({}); });
}

TEST(RelationModesTest, ByzantineMatchesMono) {
  expect_modes_equivalent("byzantine", [] { return cs::make_byzantine({}); });
}

TEST(RelationModesTest, ChainMatchesMono) {
  cs::ChainOptions chain;
  chain.length = 8;
  expect_modes_equivalent("Sc^8", [chain] { return cs::make_chain(chain); });
}

// Algorithm and option variants: the partitioned fixpoints must stay
// equivalent under the cautious baseline (per-process grouped parts), the
// one-shot group method, both non-masking tolerance levels (failsafe skips
// the recovery fixpoints, nonmasking the safety ones) and with the
// reachability heuristic off (the relation then drives a full-space
// fixpoint).
TEST(RelationModesTest, CautiousMatchesMono) {
  Options options;
  options.group_method = GroupMethod::kOneShot;
  expect_modes_equivalent(
      "token_ring/cautious", [] { return cs::make_token_ring({}); }, options,
      /*cautious=*/true);
}

TEST(RelationModesTest, OneShotMatchesMono) {
  Options options;
  options.group_method = GroupMethod::kOneShot;
  expect_modes_equivalent("tmr/oneshot", [] { return cs::make_tmr({}); },
                          options);
}

TEST(RelationModesTest, FailsafeMatchesMono) {
  Options options;
  options.level = ToleranceLevel::kFailsafe;
  expect_modes_equivalent("tmr/failsafe", [] { return cs::make_tmr({}); },
                          options);
}

TEST(RelationModesTest, NonmaskingMatchesMono) {
  Options options;
  options.level = ToleranceLevel::kNonmasking;
  expect_modes_equivalent("chain/nonmasking", [] {
    cs::ChainOptions chain;
    chain.length = 5;
    return cs::make_chain(chain);
  }, options);
}

TEST(RelationModesTest, NoHeuristicMatchesMono) {
  Options options;
  options.restrict_to_reachable = false;
  expect_modes_equivalent("tmr/no-heuristic", [] { return cs::make_tmr({}); },
                          options);
}

// kAuto must resolve to one of the two compared representations — lock the
// resolution down so --rel=auto can never drift into a third path.
TEST(RelationModesTest, AutoResolvesToPartitionForMultiPartPrograms) {
  const Artifacts auto_run = run_repair([] { return cs::make_tmr({}); },
                                        sym::RelationMode::kAuto, 1);
  const Artifacts part = run_repair([] { return cs::make_tmr({}); },
                                    sym::RelationMode::kPartition, 1);
  EXPECT_TRUE(equivalent(auto_run, part, "tmr auto-vs-partition"));
}

// --- Random-model sweep ------------------------------------------------------

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 0);
}

/// Every LR_FUZZ_TOPOLOGY / LR_FUZZ_FAULTS value, with the exact strings a
/// repro needs.
constexpr const char* kTopologies[] = {"random", "ring", "tree", "star"};
constexpr const char* kFaultClasses[] = {"havoc", "corrupt"};

TEST(RelationModesFuzzTest, RandomModelsMatchMono) {
  const std::uint64_t base = env_u64("LR_FUZZ_SEED", 20160523ull);
  const std::size_t per_combo =
      static_cast<std::size_t>(env_u64("LR_FUZZ_MODELS", 16));
  std::size_t mismatches = 0;
  for (const char* topology : kTopologies) {
    ::setenv("LR_FUZZ_TOPOLOGY", topology, 1);
    for (const char* faults : kFaultClasses) {
      ::setenv("LR_FUZZ_FAULTS", faults, 1);
      for (std::size_t i = 0; i < per_combo && mismatches < 5; ++i) {
        const std::uint64_t seed = testgen::model_seed(base, i);
        const ProgramFactory make = [seed] {
          support::SplitMix64 rng(seed);
          return testgen::random_program(rng);
        };
        for (const std::size_t intra : kIntraValues) {
          const Artifacts mono =
              run_repair(make, sym::RelationMode::kMono, intra);
          const Artifacts part =
              run_repair(make, sym::RelationMode::kPartition, intra);
          const ::testing::AssertionResult ok = equivalent(
              mono, part,
              std::string(topology) + "/" + faults +
                  " par_intra=" + std::to_string(intra));
          if (!ok) {
            ++mismatches;
            std::fprintf(stderr,
                         "[fuzz] MISMATCH seed=%llu: %s\n"
                         "[fuzz] repro: LR_FUZZ_SEED=%llu LR_FUZZ_MODELS=1 "
                         "LR_FUZZ_TOPOLOGY=%s LR_FUZZ_FAULTS=%s "
                         "./test_relation_modes --gtest_filter='*Fuzz*'\n",
                         static_cast<unsigned long long>(seed), ok.message(),
                         static_cast<unsigned long long>(seed), topology,
                         faults);
            ADD_FAILURE() << "seed " << seed << ": " << ok.message();
          }
        }
      }
    }
  }
  ::unsetenv("LR_FUZZ_FAULTS");
  ::unsetenv("LR_FUZZ_TOPOLOGY");
}

}  // namespace
}  // namespace lr::repair
