// Unit tests for Step 2 (Algorithm 2) and the equivalence of its two group
// methods.

#include <gtest/gtest.h>

#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "casestudies/token_ring.hpp"
#include "repair/add_masking.hpp"
#include "repair/realize.hpp"

namespace lr::repair {
namespace {

/// Runs step 1 + step 2 with the given group method and returns the
/// per-process deltas along with the tolerance set used.
struct Realized {
  std::vector<bdd::Bdd> deltas;
  bdd::Bdd tolerance;
  Stats stats;
};

Realized realize_case(prog::DistributedProgram& p, GroupMethod method,
                      bool expand = true) {
  Realized out;
  Options options;
  options.group_method = method;
  options.use_expand_group = expand;
  const StepOneResult step1 = add_masking(
      p, p.invariant(), p.space().bdd_false(), bdd::Bdd(), options, out.stats);
  EXPECT_TRUE(step1.success);
  std::vector<bdd::Bdd> parts{step1.delta};
  for (const bdd::Bdd& f : p.fault_action_deltas()) parts.push_back(f);
  out.tolerance = p.space().forward_reachable(parts, step1.invariant);
  out.deltas = realize(p, step1.delta, out.tolerance, options, out.stats);
  return out;
}

TEST(RealizeTest, OutputIsRealizableByEachProcess) {
  auto p = cs::make_byzantine({.non_generals = 3});
  const Realized r = realize_case(*p, GroupMethod::kPaperLoop);
  for (std::size_t j = 0; j < p->process_count(); ++j) {
    EXPECT_TRUE(p->realizable_by_process(j, r.deltas[j])) << "process " << j;
    EXPECT_TRUE(r.deltas[j].disjoint(p->space().identity()));
  }
}

TEST(RealizeTest, PaperLoopAndOneShotAgreeInsideTolerance) {
  // The two methods keep exactly the same groups; compare the transitions
  // that start inside the tolerance set (outside it both keep don't-cares
  // of the accepted groups only).
  auto p1 = cs::make_byzantine({.non_generals = 3});
  const Realized loop = realize_case(*p1, GroupMethod::kPaperLoop);
  auto p2 = cs::make_byzantine({.non_generals = 3});
  const Realized oneshot = realize_case(*p2, GroupMethod::kOneShot);
  ASSERT_EQ(loop.deltas.size(), oneshot.deltas.size());
  // The spaces are different objects; compare counts of each restriction.
  for (std::size_t j = 0; j < loop.deltas.size(); ++j) {
    EXPECT_DOUBLE_EQ(
        p1->space().count_transitions(loop.deltas[j] & loop.tolerance),
        p2->space().count_transitions(oneshot.deltas[j] & oneshot.tolerance))
        << "process " << j;
    // Outside the tolerance set the methods may keep different don't-cares
    // (ExpandGroup absorbs whole don't-care groups), so full counts are
    // intentionally not compared.
  }
}

TEST(RealizeTest, ExpandGroupDoesNotChangeTheResult) {
  auto p1 = cs::make_byzantine({.non_generals = 3});
  const Realized with = realize_case(*p1, GroupMethod::kPaperLoop, true);
  auto p2 = cs::make_byzantine({.non_generals = 3});
  const Realized without = realize_case(*p2, GroupMethod::kPaperLoop, false);
  for (std::size_t j = 0; j < with.deltas.size(); ++j) {
    // Identical behavior inside the tolerance set (outside it, expansion
    // may absorb extra don't-care groups).
    EXPECT_DOUBLE_EQ(
        p1->space().count_transitions(with.deltas[j] & with.tolerance),
        p2->space().count_transitions(without.deltas[j] & without.tolerance));
  }
  // With expansion, strictly fewer loop iterations on this model.
  EXPECT_LT(with.stats.group_iterations, without.stats.group_iterations);
  EXPECT_GT(with.stats.expand_successes, 0u);
}

TEST(RealizeTest, KeepsOriginalRealizableBehavior) {
  // The chain's propagation actions are realizable and inside δ'; they must
  // survive realization wherever the tolerance retains them.
  auto p = cs::make_chain({.length = 3, .domain = 3});
  const Realized r = realize_case(*p, GroupMethod::kPaperLoop);
  for (std::size_t j = 0; j < p->process_count(); ++j) {
    const bdd::Bdd original = p->process_delta(j) & r.tolerance;
    EXPECT_TRUE(original.leq(r.deltas[j])) << "process " << j;
  }
}

TEST(RealizeTest, UnionOfDeltasWithinStepOneDeltaInsideTolerance) {
  // Inside the tolerance set, realization only removes behavior.
  auto p = cs::make_token_ring({.processes = 3, .domain = 3});
  Options options;
  Stats stats;
  const StepOneResult step1 =
      add_masking(*p, p->invariant(), p->space().bdd_false(), bdd::Bdd(),
                  options, stats);
  ASSERT_TRUE(step1.success);
  std::vector<bdd::Bdd> parts{step1.delta};
  for (const bdd::Bdd& f : p->fault_action_deltas()) parts.push_back(f);
  const bdd::Bdd tolerance =
      p->space().forward_reachable(parts, step1.invariant);
  const auto deltas = realize(*p, step1.delta, tolerance, options, stats);
  for (const bdd::Bdd& dj : deltas) {
    EXPECT_TRUE((dj & tolerance).leq(step1.delta));
  }
}

TEST(RealizeTest, GroupIterationsAreCounted) {
  auto p = cs::make_chain({.length = 3, .domain = 2});
  const Realized r = realize_case(*p, GroupMethod::kPaperLoop);
  EXPECT_GT(r.stats.group_iterations, 0u);
  auto p2 = cs::make_chain({.length = 3, .domain = 2});
  const Realized o = realize_case(*p2, GroupMethod::kOneShot);
  EXPECT_EQ(o.stats.group_iterations, 0u);
}

}  // namespace
}  // namespace lr::repair
