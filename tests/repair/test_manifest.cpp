// Tests for the batch checkpoint manifest: JSON round-trip, atomic save,
// tolerance of missing/corrupt files, and the options fingerprint.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "repair/manifest.hpp"
#include "support/fs.hpp"
#include "support/json.hpp"

namespace lr::repair {
namespace {

ManifestEntry sample_entry(const std::string& name) {
  ManifestEntry entry;
  entry.name = name;
  entry.input_hash = "fnv1a:00000000deadbeef";
  entry.options_fingerprint = "lazy|paperloop|masking";
  entry.status = "ok";
  entry.algorithm = "lazy (group loop)";
  entry.export_path = "dir/repaired/" + name + ".lr";
  entry.attempts = 2;
  entry.seconds = 1.25;
  entry.model_states = 48.0;
  entry.invariant_states = 14.0;
  entry.span_states = 16.0;
  entry.verified = true;
  entry.verify_ok = true;
  return entry;
}

TEST(ManifestTest, SaveLoadRoundTripPreservesEveryField) {
  const std::string path = ::testing::TempDir() + "manifest_roundtrip.json";
  Manifest manifest;
  manifest.set(sample_entry("tmr"));
  ManifestEntry failed = sample_entry("broken");
  failed.status = "failed";
  failed.failure_reason = "a \"quoted\" reason\nwith a newline";
  failed.export_path.clear();
  failed.verified = false;
  failed.verify_ok = false;
  manifest.set(failed);
  ASSERT_TRUE(manifest.save(path));

  const std::optional<Manifest> loaded = Manifest::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  const ManifestEntry* tmr = loaded->find("tmr");
  ASSERT_NE(tmr, nullptr);
  EXPECT_EQ(tmr->input_hash, "fnv1a:00000000deadbeef");
  EXPECT_EQ(tmr->options_fingerprint, "lazy|paperloop|masking");
  EXPECT_EQ(tmr->status, "ok");
  EXPECT_EQ(tmr->algorithm, "lazy (group loop)");
  EXPECT_EQ(tmr->export_path, "dir/repaired/tmr.lr");
  EXPECT_EQ(tmr->attempts, 2u);
  EXPECT_EQ(tmr->seconds, 1.25);
  EXPECT_EQ(tmr->model_states, 48.0);
  EXPECT_EQ(tmr->invariant_states, 14.0);
  EXPECT_EQ(tmr->span_states, 16.0);
  EXPECT_TRUE(tmr->verified);
  EXPECT_TRUE(tmr->verify_ok);
  const ManifestEntry* broken = loaded->find("broken");
  ASSERT_NE(broken, nullptr);
  EXPECT_EQ(broken->status, "failed");
  EXPECT_EQ(broken->failure_reason, "a \"quoted\" reason\nwith a newline");
  EXPECT_FALSE(broken->verified);
  std::remove(path.c_str());
}

TEST(ManifestTest, SaveIsAtomicAndLeavesNoTempFile) {
  const std::string path = ::testing::TempDir() + "manifest_atomic.json";
  Manifest manifest;
  manifest.set(sample_entry("m"));
  ASSERT_TRUE(manifest.save(path));
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "write-temp-then-rename must not leave the temp file behind";
  std::remove(path.c_str());
}

TEST(ManifestTest, ToJsonIsValidJsonWithSchemaAndSortedEntries) {
  Manifest manifest;
  manifest.set(sample_entry("zeta"));
  manifest.set(sample_entry("alpha"));
  const std::string text = manifest.to_json();
  const auto doc = support::json_parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  const support::JsonValue* schema = doc->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->number, 1.0);
  const support::JsonValue* entries = doc->find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->object.size(), 2u);
  EXPECT_EQ(entries->object[0].first, "alpha");
  EXPECT_EQ(entries->object[1].first, "zeta");
}

TEST(ManifestTest, LoadToleratesMissingCorruptAndForeignSchema) {
  EXPECT_FALSE(Manifest::load("/no/such/dir/manifest.json").has_value());

  const std::string path = ::testing::TempDir() + "manifest_bad.json";
  ASSERT_TRUE(support::write_file_atomic(path, "{ not json"));
  EXPECT_FALSE(Manifest::load(path).has_value());
  ASSERT_TRUE(
      support::write_file_atomic(path, "{\"schema\": 99, \"entries\": {}}"));
  EXPECT_FALSE(Manifest::load(path).has_value())
      << "a future schema must read as cold start, not as data";
  std::remove(path.c_str());
}

TEST(ManifestTest, EraseSimulatesATruncatedSweep) {
  Manifest manifest;
  manifest.set(sample_entry("a"));
  manifest.set(sample_entry("b"));
  EXPECT_TRUE(manifest.erase("b"));
  EXPECT_FALSE(manifest.erase("b"));
  EXPECT_EQ(manifest.size(), 1u);
  EXPECT_EQ(manifest.find("b"), nullptr);
  ASSERT_NE(manifest.find("a"), nullptr);
}

TEST(ManifestTest, FingerprintCoversEveryOutcomeRelevantOption) {
  Options base;
  const std::string fp = options_fingerprint(base, false, true);
  EXPECT_EQ(fp, "lazy|paperloop|masking|heuristic=1|expand=1|sift=0|"
                "order=decl|maxouter=64|verify=1");
  EXPECT_NE(fp, options_fingerprint(base, true, true));   // algorithm
  EXPECT_NE(fp, options_fingerprint(base, false, false)); // verify
  Options changed = base;
  changed.level = ToleranceLevel::kFailsafe;
  EXPECT_NE(fp, options_fingerprint(changed, false, true));
  changed = base;
  changed.group_method = GroupMethod::kOneShot;
  EXPECT_NE(fp, options_fingerprint(changed, false, true));
  changed = base;
  changed.restrict_to_reachable = false;
  EXPECT_NE(fp, options_fingerprint(changed, false, true));
  changed = base;
  changed.use_expand_group = false;
  EXPECT_NE(fp, options_fingerprint(changed, false, true));
  changed = base;
  changed.sift_before_repair = true;
  EXPECT_NE(fp, options_fingerprint(changed, false, true));
  changed = base;
  changed.max_outer_iterations = 7;
  EXPECT_NE(fp, options_fingerprint(changed, false, true));
  changed = base;
  changed.order_mode = sym::order::Mode::kAdjacency;
  EXPECT_NE(fp, options_fingerprint(changed, false, true));
  // Two different warm-start profiles are two different orders: the path
  // must be part of a kFile fingerprint.
  changed = base;
  changed.order_mode = sym::order::Mode::kFile;
  changed.order_file = "a.order.json";
  Options other_file = changed;
  other_file.order_file = "b.order.json";
  EXPECT_NE(options_fingerprint(changed, false, true),
            options_fingerprint(other_file, false, true));
  // Cancellation settings bound *when* a result exists, not *what* it is.
  changed = base;
  changed.cancel = CancelToken::with_timeout(1.0);
  EXPECT_EQ(fp, options_fingerprint(changed, false, true));
}

}  // namespace
}  // namespace lr::repair
