// Static variable-order differential suite: every --order mode must leave
// the *results* of a repair untouched — same invariant, same fault span,
// byte-identical exported model — because the order only changes how the
// fixpoints are computed, never what they compute. Also covers the
// heuristic planner itself (plan_order / plan_from_labels round trips).

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "casestudies/token_ring.hpp"
#include "repair/cautious.hpp"
#include "repair/export.hpp"
#include "repair/lazy.hpp"
#include "repair/order_setup.hpp"
#include "repair/verify.hpp"
#include "../support/model_gen.hpp"
#include "symbolic/order_heur.hpp"

namespace lr::repair {
namespace {

using Factory = std::function<std::unique_ptr<prog::DistributedProgram>()>;

constexpr sym::order::Mode kHeuristicModes[] = {
    sym::order::Mode::kDecl,
    sym::order::Mode::kAuto,
    sym::order::Mode::kInterleave,
    sym::order::Mode::kAdjacency,
};

/// Repairs `make()` under every heuristic mode and checks that invariant /
/// span state counts and the exported model agree with the kDecl baseline.
void expect_modes_agree(const Factory& make, bool cautious = false) {
  std::string baseline_export;
  double baseline_invariant = 0.0;
  double baseline_span = 0.0;
  bool baseline_success = false;
  for (const sym::order::Mode mode : kHeuristicModes) {
    auto program = make();
    Options options;
    options.order_mode = mode;
    const RepairResult result = cautious ? cautious_repair(*program, options)
                                         : lazy_repair(*program, options);
    const char* name = sym::order::mode_name(mode);
    if (mode == sym::order::Mode::kDecl) {
      baseline_success = result.success;
      if (result.success) {
        baseline_invariant = program->space().count_states(result.invariant);
        baseline_span = program->space().count_states(result.fault_span);
        baseline_export = export_model(*program, result);
        EXPECT_TRUE(verify_masking(*program, result).ok);
      }
      continue;
    }
    EXPECT_EQ(result.success, baseline_success) << name;
    if (!result.success || !baseline_success) continue;
    EXPECT_DOUBLE_EQ(program->space().count_states(result.invariant),
                     baseline_invariant)
        << name;
    EXPECT_DOUBLE_EQ(program->space().count_states(result.fault_span),
                     baseline_span)
        << name;
    EXPECT_TRUE(verify_masking(*program, result).ok) << name;
    EXPECT_EQ(export_model(*program, result), baseline_export)
        << "export not byte-identical under --order=" << name;
  }
}

TEST(OrderModesTest, ChainExportsAreByteIdenticalAcrossModes) {
  expect_modes_agree([] { return cs::make_chain({.length = 4, .domain = 3}); });
}

TEST(OrderModesTest, ByzantineExportsAreByteIdenticalAcrossModes) {
  expect_modes_agree([] { return cs::make_byzantine({.non_generals = 3}); });
}

TEST(OrderModesTest, TokenRingExportsAreByteIdenticalAcrossModes) {
  expect_modes_agree(
      [] { return cs::make_token_ring({.processes = 3, .domain = 3}); });
}

TEST(OrderModesTest, CautiousChainExportsAreByteIdenticalAcrossModes) {
  expect_modes_agree([] { return cs::make_chain({.length = 3, .domain = 3}); },
                     /*cautious=*/true);
}

TEST(OrderModesTest, FuzzShardExportsAreByteIdenticalAcrossModes) {
  // Seeded differential sweep over random models: same contract as the
  // case studies, across all heuristic modes. LR_FUZZ_SEED reproduces.
  std::uint64_t base_seed = 20260808;
  if (const char* env = std::getenv("LR_FUZZ_SEED")) {
    base_seed = std::strtoull(env, nullptr, 10);
  }
  constexpr std::uint64_t kModels = 12;
  for (std::uint64_t index = 0; index < kModels; ++index) {
    const std::uint64_t seed = testgen::model_seed(base_seed, index);
    SCOPED_TRACE("LR_FUZZ_SEED=" + std::to_string(seed));
    expect_modes_agree([seed] {
      support::SplitMix64 rng(seed);
      return testgen::random_program(rng);
    });
  }
}

TEST(OrderModesTest, PlanOrderProducesAPermutationPerMode) {
  auto program = cs::make_chain({.length = 4, .domain = 4});
  const sym::order::Structure structure = program->order_structure();
  for (const sym::order::Mode mode : kHeuristicModes) {
    const sym::order::Plan plan =
        sym::order::plan_order(program->space(), structure, mode);
    EXPECT_EQ(plan.requested, mode);
    const std::size_t bits = 2 * program->space().bits_per_state();
    ASSERT_EQ(plan.var_at_level.size(), bits);
    std::vector<bool> seen(bits, false);
    for (const bdd::VarIndex v : plan.var_at_level) {
      ASSERT_LT(v, bits);
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
    // cur/next interleaving is preserved: each variable's bits stay in
    // cur,next,cur,next order and contiguous.
    for (sym::VarId var = 0; var < program->space().variable_count(); ++var) {
      const sym::VariableInfo& info = program->space().info(var);
      std::vector<bdd::VarIndex> expected;
      for (std::uint32_t k = 0; k < info.bits; ++k) {
        expected.push_back(info.cur_bits[k]);
        expected.push_back(info.next_bits[k]);
      }
      std::vector<bdd::VarIndex> found;
      for (const bdd::VarIndex v : plan.var_at_level) {
        for (const bdd::VarIndex e : expected) {
          if (v == e) found.push_back(v);
        }
      }
      EXPECT_EQ(found, expected)
          << "bits of variable " << info.name << " not contiguous/interleaved"
          << " under mode " << sym::order::mode_name(mode);
    }
  }
}

TEST(OrderModesTest, AutoNeverBeatsItsOwnCandidates) {
  auto program = cs::make_token_ring({.processes = 4, .domain = 3});
  const sym::order::Structure structure = program->order_structure();
  const sym::order::Plan auto_plan = sym::order::plan_order(
      program->space(), structure, sym::order::Mode::kAuto);
  EXPECT_EQ(auto_plan.requested, sym::order::Mode::kAuto);
  // The chosen span cost is the minimum over all candidates (<= decl).
  EXPECT_LE(auto_plan.span_cost, auto_plan.decl_span_cost);
  for (const sym::order::Mode mode :
       {sym::order::Mode::kInterleave, sym::order::Mode::kAdjacency}) {
    const sym::order::Plan candidate =
        sym::order::plan_order(program->space(), structure, mode);
    EXPECT_LE(auto_plan.span_cost, candidate.span_cost)
        << sym::order::mode_name(mode);
  }
}

TEST(OrderModesTest, PlanFromLabelsRoundTripsAPlan) {
  auto program = cs::make_chain({.length = 3, .domain = 4});
  const sym::order::Structure structure = program->order_structure();
  const sym::order::Plan plan = sym::order::plan_order(
      program->space(), structure, sym::order::Mode::kAdjacency);
  // Turn the plan into profile levels (what --order-out persists)...
  const std::vector<std::string> labels =
      sym::order::bit_labels(program->space());
  std::vector<bdd::order::ProfileLevel> levels;
  for (const bdd::VarIndex v : plan.var_at_level) {
    levels.push_back({labels[v], 0});
  }
  // ...and back: the reconstructed plan realizes the same level order.
  const sym::order::Plan rebuilt =
      sym::order::plan_from_labels(program->space(), structure, levels);
  EXPECT_EQ(rebuilt.requested, sym::order::Mode::kFile);
  EXPECT_EQ(rebuilt.var_at_level, plan.var_at_level);
}

TEST(OrderModesTest, PlanFromLabelsRejectsMismatchedProfiles) {
  auto program = cs::make_chain({.length = 3, .domain = 4});
  const sym::order::Structure structure = program->order_structure();
  const std::vector<std::string> labels =
      sym::order::bit_labels(program->space());
  std::vector<bdd::order::ProfileLevel> levels;
  for (const std::string& label : labels) levels.push_back({label, 0});

  // Too few levels (truncated profile).
  std::vector<bdd::order::ProfileLevel> truncated(levels.begin(),
                                                  levels.end() - 1);
  EXPECT_THROW((void)sym::order::plan_from_labels(program->space(), structure,
                                                  truncated),
               std::runtime_error);
  // Unknown label (profile from another model).
  std::vector<bdd::order::ProfileLevel> foreign = levels;
  foreign[0].label = "nosuch.0";
  EXPECT_THROW((void)sym::order::plan_from_labels(program->space(), structure,
                                                  foreign),
               std::runtime_error);
  // Duplicate label.
  std::vector<bdd::order::ProfileLevel> duplicated = levels;
  duplicated[1].label = duplicated[0].label;
  EXPECT_THROW((void)sym::order::plan_from_labels(program->space(), structure,
                                                  duplicated),
               std::runtime_error);
}

TEST(OrderModesTest, ApplyOrderOptionsIsIdempotent) {
  auto program = cs::make_chain({.length = 3, .domain = 3});
  Options options;
  options.order_mode = sym::order::Mode::kInterleave;
  apply_order_options(*program, options);
  std::vector<bdd::VarIndex> first;
  bdd::Manager& mgr = program->space().manager();
  for (std::uint32_t l = 0; l < mgr.var_count(); ++l) {
    first.push_back(mgr.var_at_level(l));
  }
  apply_order_options(*program, options);
  for (std::uint32_t l = 0; l < mgr.var_count(); ++l) {
    EXPECT_EQ(mgr.var_at_level(l), first[l]) << "level " << l;
  }
}

TEST(OrderModesTest, OrderFileModeRoundTripsThroughRepair) {
  // Run 1 persists its end-of-run order; run 2 warm-starts from it and
  // must reach the identical result and an identical re-captured profile.
  const std::string path = ::testing::TempDir() + "order_modes_profile.json";
  std::string first_json;
  {
    auto program = cs::make_chain({.length = 4, .domain = 3});
    Options options;
    options.order_mode = sym::order::Mode::kAdjacency;
    const RepairResult result = lazy_repair(*program, options);
    ASSERT_TRUE(result.success) << result.failure_reason;
    bdd::order::OrderProfile profile =
        capture_order_profile(*program, options);
    ASSERT_TRUE(bdd::order::save_profile(profile, path));
  }
  {
    auto program = cs::make_chain({.length = 4, .domain = 3});
    Options options;
    options.order_mode = sym::order::Mode::kFile;
    options.order_file = path;
    const RepairResult result = lazy_repair(*program, options);
    ASSERT_TRUE(result.success) << result.failure_reason;
    EXPECT_TRUE(verify_masking(*program, result).ok);
    const bdd::order::OrderProfile recaptured =
        capture_order_profile(*program, options);
    const auto saved = bdd::order::load_profile(path);
    ASSERT_TRUE(saved.has_value());
    // Same level order as the profile that seeded the run.
    ASSERT_EQ(recaptured.levels.size(), saved->levels.size());
    for (std::size_t i = 0; i < saved->levels.size(); ++i) {
      EXPECT_EQ(recaptured.levels[i].label, saved->levels[i].label);
    }
    EXPECT_EQ(recaptured.source, "file");
  }
  std::remove(path.c_str());
}

TEST(OrderModesTest, RepairThrowsOnUnreadableOrderFile) {
  auto program = cs::make_chain({.length = 3, .domain = 3});
  Options options;
  options.order_mode = sym::order::Mode::kFile;
  options.order_file = "/no/such/profile.json";
  EXPECT_THROW((void)lazy_repair(*program, options), std::runtime_error);
}

}  // namespace
}  // namespace lr::repair
