// Differential equivalence suite for intra-problem parallelism
// (Options::intra_jobs / --par-intra): the sharded image computation and
// the parallel group enumeration promise *bit-identical* results to the
// sequential engine — same exported model text, same journal byte stream,
// same non-timing repair metrics. This suite locks that contract down on
// every case study and on a sweep of random models across every
// LR_FUZZ_TOPOLOGY value.
//
// Environment knobs (fuzz sweep):
//   LR_FUZZ_SEED=N     base seed (model i uses seed N+i); default 20160523
//   LR_FUZZ_MODELS=N   models per topology; default 96 (3 topologies)
//
// On a mismatch the sweep immediately prints the exact failing seed and a
// one-line repro command, e.g.
//   LR_FUZZ_SEED=20160711 LR_FUZZ_MODELS=1 LR_FUZZ_TOPOLOGY=ring \
//     ./test_intra_parallel --gtest_filter='*Fuzz*'
// which replays exactly that model (model_seed(base, 0) == base).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "casestudies/tmr.hpp"
#include "casestudies/token_ring.hpp"
#include "program/distributed_program.hpp"
#include "repair/cautious.hpp"
#include "repair/export.hpp"
#include "repair/journal.hpp"
#include "repair/lazy.hpp"
#include "support/rng.hpp"
#include "../support/model_gen.hpp"

namespace lr::repair {
namespace {

using ProgramFactory =
    std::function<std::unique_ptr<prog::DistributedProgram>()>;

/// Everything the sequential/parallel runs must agree on byte-for-byte.
struct Artifacts {
  bool success = false;
  std::string failure_reason;
  std::string exported;  ///< export_model() text (empty on failure)
  std::string journal;   ///< Journal::to_jsonl()
  std::string keys;      ///< comparable (non-timing) repair metrics
};

/// The metrics-json `repair.*` keys minus wall-clock (`*_seconds`) and the
/// allocator high-water mark (`peak_bdd_nodes` counts worker-side
/// intermediates differently by construction; see DESIGN.md).
std::string comparable_keys(const Stats& stats) {
  std::ostringstream out;
  out << "reachable_states=" << stats.reachable_states
      << " outer_iterations=" << stats.outer_iterations
      << " addmasking_rounds=" << stats.addmasking_rounds
      << " group_iterations=" << stats.group_iterations
      << " expand_accepts=" << stats.expand_successes
      << " expand_rejects=" << stats.expand_failures
      << " recovery_layers=" << stats.recovery_layers
      << " deadlock_rounds=" << stats.deadlock_rounds
      << " deadlock_states_banned=" << stats.deadlock_states_banned
      << " banned_trans_nodes=" << stats.banned_trans_nodes
      << " span_states=" << stats.span_states
      << " invariant_states=" << stats.invariant_states;
  return out.str();
}

Artifacts run_repair(const ProgramFactory& make, std::size_t intra_jobs,
                     Options options = {}, bool cautious = false) {
  std::unique_ptr<prog::DistributedProgram> program = make();
  // Declared after `program`: journal events hold Bdd handles and must not
  // outlive the program's Space.
  Journal journal;
  journal.meta("model", program->name());
  options.journal = &journal;
  options.intra_jobs = intra_jobs;
  const RepairResult result =
      cautious ? cautious_repair(*program, options) : lazy_repair(*program, options);
  Artifacts artifacts;
  artifacts.success = result.success;
  artifacts.failure_reason = result.failure_reason;
  if (result.success) artifacts.exported = export_model(*program, result);
  artifacts.journal = journal.to_jsonl();
  artifacts.keys = comparable_keys(result.stats);
  return artifacts;
}

/// Byte-compares a sequential run against one intra_jobs value; `what`
/// names the configuration in failure messages.
::testing::AssertionResult equivalent(const Artifacts& seq,
                                      const Artifacts& par,
                                      const std::string& what) {
  if (seq.success != par.success) {
    return ::testing::AssertionFailure()
           << what << ": success " << seq.success << " vs " << par.success
           << " (" << seq.failure_reason << " / " << par.failure_reason
           << ")";
  }
  if (seq.exported != par.exported) {
    return ::testing::AssertionFailure()
           << what << ": exported models differ (" << seq.exported.size()
           << " vs " << par.exported.size() << " bytes)";
  }
  if (seq.journal != par.journal) {
    return ::testing::AssertionFailure()
           << what << ": journals differ (" << seq.journal.size() << " vs "
           << par.journal.size() << " bytes)";
  }
  if (seq.keys != par.keys) {
    return ::testing::AssertionFailure() << what << ": repair metrics differ\n  seq: "
                                         << seq.keys << "\n  par: " << par.keys;
  }
  return ::testing::AssertionSuccess();
}

constexpr std::size_t kIntraValues[] = {2, 4, 8};

void expect_all_intra_equivalent(const char* name, const ProgramFactory& make,
                                 Options options = {}, bool cautious = false) {
  const Artifacts seq = run_repair(make, 1, options, cautious);
  for (const std::size_t intra : kIntraValues) {
    const Artifacts par = run_repair(make, intra, options, cautious);
    EXPECT_TRUE(equivalent(seq, par, std::string(name) + " intra_jobs=" +
                                         std::to_string(intra)));
  }
}

TEST(IntraParallelTest, TmrMatchesSequential) {
  expect_all_intra_equivalent("tmr", [] { return cs::make_tmr({}); });
}

TEST(IntraParallelTest, TokenRingMatchesSequential) {
  expect_all_intra_equivalent("token_ring",
                              [] { return cs::make_token_ring({}); });
}

TEST(IntraParallelTest, ByzantineMatchesSequential) {
  expect_all_intra_equivalent("byzantine",
                              [] { return cs::make_byzantine({}); });
}

TEST(IntraParallelTest, ChainMatchesSequential) {
  cs::ChainOptions chain;
  chain.length = 8;
  expect_all_intra_equivalent("Sc^8",
                              [chain] { return cs::make_chain(chain); });
}

// Algorithm and option variants: the parallel paths must stay equivalent
// under the cautious baseline, the one-shot group method, and the
// non-masking tolerance levels (each exercises different engine entry
// points — cautious preimages, realize's kOneShot worker branch, the
// failsafe deadlock check).
TEST(IntraParallelTest, CautiousMatchesSequential) {
  Options options;
  options.group_method = GroupMethod::kOneShot;
  expect_all_intra_equivalent(
      "token_ring/cautious", [] { return cs::make_token_ring({}); }, options,
      /*cautious=*/true);
}

TEST(IntraParallelTest, OneShotMatchesSequential) {
  Options options;
  options.group_method = GroupMethod::kOneShot;
  expect_all_intra_equivalent("tmr/oneshot", [] { return cs::make_tmr({}); },
                              options);
}

TEST(IntraParallelTest, FailsafeMatchesSequential) {
  Options options;
  options.level = ToleranceLevel::kFailsafe;
  expect_all_intra_equivalent("tmr/failsafe", [] { return cs::make_tmr({}); },
                              options);
}

TEST(IntraParallelTest, NonmaskingMatchesSequential) {
  Options options;
  options.level = ToleranceLevel::kNonmasking;
  expect_all_intra_equivalent("chain/nonmasking", [] {
    cs::ChainOptions chain;
    chain.length = 5;
    return cs::make_chain(chain);
  }, options);
}

// --- Random-model sweep ------------------------------------------------------

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 0);
}

/// Every LR_FUZZ_TOPOLOGY value, with the exact string a repro needs.
constexpr const char* kTopologies[] = {"random", "ring", "tree"};

TEST(IntraParallelFuzzTest, RandomModelsMatchSequential) {
  const std::uint64_t base = env_u64("LR_FUZZ_SEED", 20160523ull);
  const std::size_t per_topology =
      static_cast<std::size_t>(env_u64("LR_FUZZ_MODELS", 96));
  std::size_t mismatches = 0;
  for (const char* topology : kTopologies) {
    ::setenv("LR_FUZZ_TOPOLOGY", topology, 1);
    for (std::size_t i = 0; i < per_topology && mismatches < 5; ++i) {
      const std::uint64_t seed = testgen::model_seed(base, i);
      const ProgramFactory make = [seed] {
        support::SplitMix64 rng(seed);
        return testgen::random_program(rng);
      };
      const Artifacts seq = run_repair(make, 1);
      for (const std::size_t intra : kIntraValues) {
        const Artifacts par = run_repair(make, intra);
        const ::testing::AssertionResult ok = equivalent(
            seq, par,
            std::string(topology) + " intra_jobs=" + std::to_string(intra));
        if (!ok) {
          ++mismatches;
          std::fprintf(stderr,
                       "[fuzz] MISMATCH seed=%llu: %s\n"
                       "[fuzz] repro: LR_FUZZ_SEED=%llu LR_FUZZ_MODELS=1 "
                       "LR_FUZZ_TOPOLOGY=%s ./test_intra_parallel "
                       "--gtest_filter='*Fuzz*'\n",
                       static_cast<unsigned long long>(seed),
                       ok.message(),
                       static_cast<unsigned long long>(seed), topology);
          ADD_FAILURE() << "seed " << seed << ": " << ok.message();
        }
      }
    }
  }
  ::unsetenv("LR_FUZZ_TOPOLOGY");
}

}  // namespace
}  // namespace lr::repair
