// Tests for the cautious-repair baseline and its agreement with lazy
// repair.

#include <gtest/gtest.h>

#include "casestudies/byzantine.hpp"
#include "repair/cautious.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"

namespace lr::repair {
namespace {

using lang::Expr;
using lang::action;

TEST(CautiousRepairTest, ByzantineAgreementVerified) {
  auto p = cs::make_byzantine({.non_generals = 3});
  const RepairResult r = cautious_repair(*p);
  ASSERT_TRUE(r.success) << r.failure_reason;
  const VerifyReport report = verify_masking(*p, r);
  EXPECT_TRUE(report.ok);
  for (const auto& f : report.failures) ADD_FAILURE() << f;
}

TEST(CautiousRepairTest, OneShotVariantVerified) {
  auto p = cs::make_byzantine({.non_generals = 3});
  Options options;
  options.group_method = GroupMethod::kOneShot;
  const RepairResult r = cautious_repair(*p, options);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(verify_masking(*p, r).ok);
}

TEST(CautiousRepairTest, TwoGroupMethodsFindTheSameInvariant) {
  auto p1 = cs::make_byzantine({.non_generals = 3});
  const RepairResult enumerated = cautious_repair(*p1);
  auto p2 = cs::make_byzantine({.non_generals = 3});
  Options options;
  options.group_method = GroupMethod::kOneShot;
  const RepairResult oneshot = cautious_repair(*p2, options);
  ASSERT_TRUE(enumerated.success);
  ASSERT_TRUE(oneshot.success);
  EXPECT_DOUBLE_EQ(p1->space().count_states(enumerated.invariant),
                   p2->space().count_states(oneshot.invariant));
}

TEST(CautiousRepairTest, AgreesWithLazyOnSolvability) {
  // Both algorithms must agree that BA^3 is repairable and that a doomed
  // program is not.
  auto p = cs::make_byzantine({.non_generals = 3});
  EXPECT_TRUE(cautious_repair(*p).success);
  auto p2 = cs::make_byzantine({.non_generals = 3});
  EXPECT_TRUE(lazy_repair(*p2).success);

  auto doomed = std::make_unique<prog::DistributedProgram>("doomed");
  const sym::VarId x = doomed->add_variable("x", 2);
  prog::Process proc;
  proc.name = "p";
  proc.reads = {x};
  proc.writes = {x};
  doomed->add_process(std::move(proc));
  doomed->add_fault(
      action("kill", Expr::var(x) == 0u).assign(x, Expr::constant(1)));
  doomed->set_invariant(Expr::var(x) == 0u);
  doomed->add_bad_states(Expr::var(x) == 1u);
  EXPECT_FALSE(cautious_repair(*doomed).success);
  auto doomed2 = std::make_unique<prog::DistributedProgram>("doomed2");
  const sym::VarId y = doomed2->add_variable("x", 2);
  prog::Process proc2;
  proc2.name = "p";
  proc2.reads = {y};
  proc2.writes = {y};
  doomed2->add_process(std::move(proc2));
  doomed2->add_fault(
      action("kill", Expr::var(y) == 0u).assign(y, Expr::constant(1)));
  doomed2->set_invariant(Expr::var(y) == 0u);
  doomed2->add_bad_states(Expr::var(y) == 1u);
  EXPECT_FALSE(lazy_repair(*doomed2).success);
}

TEST(CautiousRepairTest, InvariantIsRicherThanLazy) {
  // A structural observation the benchmarks rely on: cautious's tolerance
  // restarts give it at least as many legitimate states on BA.
  auto p1 = cs::make_byzantine({.non_generals = 3});
  const RepairResult cautious = cautious_repair(*p1);
  auto p2 = cs::make_byzantine({.non_generals = 3});
  const RepairResult lazy = lazy_repair(*p2);
  ASSERT_TRUE(cautious.success);
  ASSERT_TRUE(lazy.success);
  EXPECT_GE(p1->space().count_states(cautious.invariant),
            p2->space().count_states(lazy.invariant));
}

TEST(CautiousRepairTest, FailStopVariantVerified) {
  auto p = cs::make_byzantine({.non_generals = 2, .fail_stop = true});
  Options options;
  options.group_method = GroupMethod::kOneShot;  // keep the test fast
  const RepairResult r = cautious_repair(*p, options);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(verify_masking(*p, r).ok);
}

}  // namespace
}  // namespace lr::repair
