// End-to-end tests for lazy repair (Algorithm 1) on the paper's case
// studies, every result cross-checked by the independent verifier.

#include <gtest/gtest.h>

#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"

namespace lr::repair {
namespace {

void expect_verified(prog::DistributedProgram& program,
                     const RepairResult& result) {
  ASSERT_TRUE(result.success) << result.failure_reason;
  const VerifyReport report = verify_masking(program, result);
  EXPECT_TRUE(report.ok);
  for (const std::string& failure : report.failures) {
    ADD_FAILURE() << "verifier: " << failure;
  }
}

TEST(LazyRepairTest, StabilizingChainSmall) {
  auto program = cs::make_chain({.length = 3, .domain = 2});
  const RepairResult result = lazy_repair(*program);
  expect_verified(*program, result);
  EXPECT_EQ(result.invariant, program->invariant());
}

TEST(LazyRepairTest, StabilizingChainWiderDomain) {
  auto program = cs::make_chain({.length = 4, .domain = 3});
  const RepairResult result = lazy_repair(*program);
  expect_verified(*program, result);
}

TEST(LazyRepairTest, ByzantineAgreementThreeNonGenerals) {
  auto program = cs::make_byzantine({.non_generals = 3});
  const RepairResult result = lazy_repair(*program);
  expect_verified(*program, result);
  // The invariant must keep some legitimate states and stay within S.
  EXPECT_TRUE(result.invariant.leq(program->invariant()));
}

TEST(LazyRepairTest, ByzantineWithFailStop) {
  auto program = cs::make_byzantine({.non_generals = 3, .fail_stop = true});
  const RepairResult result = lazy_repair(*program);
  expect_verified(*program, result);
}

}  // namespace
}  // namespace lr::repair
