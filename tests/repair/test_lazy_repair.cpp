// End-to-end tests for lazy repair (Algorithm 1) on the paper's case
// studies, every result cross-checked by the independent verifier.

#include <gtest/gtest.h>

#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "repair/lazy.hpp"
#include "repair/report.hpp"
#include "repair/verify.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace lr::repair {
namespace {

void expect_verified(prog::DistributedProgram& program,
                     const RepairResult& result) {
  ASSERT_TRUE(result.success) << result.failure_reason;
  const VerifyReport report = verify_masking(program, result);
  EXPECT_TRUE(report.ok);
  for (const std::string& failure : report.failures) {
    ADD_FAILURE() << "verifier: " << failure;
  }
}

TEST(LazyRepairTest, StabilizingChainSmall) {
  auto program = cs::make_chain({.length = 3, .domain = 2});
  const RepairResult result = lazy_repair(*program);
  expect_verified(*program, result);
  EXPECT_EQ(result.invariant, program->invariant());
}

TEST(LazyRepairTest, StabilizingChainWiderDomain) {
  auto program = cs::make_chain({.length = 4, .domain = 3});
  const RepairResult result = lazy_repair(*program);
  expect_verified(*program, result);
}

TEST(LazyRepairTest, ByzantineAgreementThreeNonGenerals) {
  auto program = cs::make_byzantine({.non_generals = 3});
  const RepairResult result = lazy_repair(*program);
  expect_verified(*program, result);
  // The invariant must keep some legitimate states and stay within S.
  EXPECT_TRUE(result.invariant.leq(program->invariant()));
}

TEST(LazyRepairTest, ByzantineWithFailStop) {
  auto program = cs::make_byzantine({.non_generals = 3, .fail_stop = true});
  const RepairResult result = lazy_repair(*program);
  expect_verified(*program, result);
}

// Observability integration: a traced repair run emits the expected nested
// span taxonomy and a parseable metrics report with the headline numbers.
TEST(LazyRepairTest, RunEmitsSpansAndMetrics) {
  support::trace::start();
  auto program = cs::make_chain({.length = 3, .domain = 2});
  const RepairResult result = lazy_repair(*program);
  support::trace::stop();
  ASSERT_TRUE(result.success) << result.failure_reason;

  const auto trace_doc = support::json_parse(support::trace::to_chrome_json());
  ASSERT_TRUE(trace_doc.has_value());
  const support::JsonValue* events = trace_doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  const auto span_duration = [&events](std::string_view name) {
    for (const support::JsonValue& event : events->array) {
      const support::JsonValue* n = event.find("name");
      if (n != nullptr && n->string == name) return event.find("dur")->number;
    }
    return -1.0;
  };
  // Step 1 and Step 2 both ran and took measurable (non-negative) time,
  // nested inside the top-level lazy_repair span.
  EXPECT_GE(span_duration("add_masking"), 0.0);
  EXPECT_GE(span_duration("realize"), 0.0);
  EXPECT_GE(span_duration("lazy_repair"), span_duration("add_masking"));
  EXPECT_GE(span_duration("lazy_repair"), span_duration("realize"));

  support::metrics::registry().clear();
  record_run_metrics(result.stats);
  const auto metrics_doc =
      support::json_parse(support::metrics::registry().to_json());
  ASSERT_TRUE(metrics_doc.has_value());
  const support::JsonValue* gauges = metrics_doc->find("gauges");
  const support::JsonValue* counters = metrics_doc->find("counters");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(counters, nullptr);
  for (const char* key :
       {"repair.step1_seconds", "repair.step2_seconds", "repair.total_seconds",
        "repair.reachable_states", "repair.invariant_states",
        "bdd.cache_hit_rate"}) {
    EXPECT_NE(gauges->find(key), nullptr) << key;
  }
  for (const char* key : {"repair.outer_iterations", "bdd.cache_lookups",
                          "bdd.cache_hits", "bdd.created_nodes"}) {
    EXPECT_NE(counters->find(key), nullptr) << key;
  }
  EXPECT_GE(gauges->find("repair.invariant_states")->number, 1.0);
  EXPECT_GE(counters->find("repair.outer_iterations")->number, 1.0);
}

}  // namespace
}  // namespace lr::repair
