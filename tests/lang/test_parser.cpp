// Tests for the textual model parser.

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"

namespace lr::lang {
namespace {

constexpr const char* kQuickstart = R"(
// comment
program quickstart;
var x : 0..2;
process worker {
  reads x;
  writes x;
  action reset: x == 1 -> x := 0;
}
fault glitch: x == 0 -> x := 1;
invariant x == 0;
bad_state x == 2;
)";

TEST(ParserTest, ParsesQuickstartModel) {
  auto p = parse_program(kQuickstart);
  EXPECT_EQ(p->name(), "quickstart");
  EXPECT_EQ(p->process_count(), 1u);
  EXPECT_EQ(p->process(0).name, "worker");
  EXPECT_DOUBLE_EQ(p->space().state_space_size(), 3.0);
  EXPECT_DOUBLE_EQ(p->space().count_states(p->invariant()), 1.0);
  EXPECT_DOUBLE_EQ(p->space().count_states(p->safety().bad_states), 1.0);
  // The parsed model repairs and verifies end to end.
  const auto result = repair::lazy_repair(*p);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(repair::verify_masking(*p, result).ok);
}

TEST(ParserTest, NondeterministicChoiceAndHavoc) {
  auto p = parse_program(R"(
program choices;
var a : 0..3;
var b : 0..1;
process p {
  reads a, b;
  writes a, b;
  action go: a == 0 -> a := {1, 2}, havoc b;
}
invariant true;
)");
  // From a=0: a' in {1,2} x b' in {0,1} = 4 transitions per b value = 8,
  // minus any accidental self-loops (none: a changes).
  EXPECT_DOUBLE_EQ(p->space().count_transitions(p->process_delta(0)), 8.0);
}

TEST(ParserTest, NextAndIteAndArithmetic) {
  auto p = parse_program(R"(
program rich;
var x : 0..4;
process p {
  reads x;
  writes x;
  action bump: x < 4 -> x := ite(x == 3, 0, x + 1);
}
fault jolt: true -> havoc x;
invariant x <= 3;
bad_transition x == 4 && next(x) != 4;
)");
  auto& sp = p->space();
  const std::uint32_t s3[1] = {3};
  const std::uint32_t s0[1] = {0};
  const std::uint32_t s1[1] = {1};
  EXPECT_TRUE(sp.transition(s3, s0).leq(p->process_delta(0)));
  EXPECT_TRUE(sp.transition(s0, s1).leq(p->process_delta(0)));
  // bad_transition mentions the post-state.
  const std::uint32_t s4[1] = {4};
  EXPECT_TRUE(sp.transition(s4, s0).leq(p->safety().bad_trans));
  EXPECT_FALSE(sp.transition(s3, s0).leq(p->safety().bad_trans));
}

TEST(ParserTest, MultipleInvariantsConjoinBadStatesDisjoin) {
  auto p = parse_program(R"(
program multi;
var a : 0..1;
var b : 0..1;
process p { reads a, b; writes a; action t: a == 0 -> a := 1; }
invariant a == 0;
invariant b == 0;
bad_state a == 1;
bad_state b == 1;
)");
  EXPECT_DOUBLE_EQ(p->space().count_states(p->invariant()), 1.0);
  EXPECT_DOUBLE_EQ(p->space().count_states(p->safety().bad_states), 3.0);
}

TEST(ParserTest, DottedIdentifiers) {
  auto p = parse_program(R"(
program dotted;
var d.g : 0..1;
var f.0 : 0..1;
process p { reads d.g, f.0; writes f.0; action t: f.0 == 0 -> f.0 := d.g; }
invariant true;
)");
  EXPECT_TRUE(p->space().find("d.g").has_value());
  EXPECT_TRUE(p->space().find("f.0").has_value());
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  try {
    (void)parse_program("program x;\nvar a : 0..1;\nbogus q;\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(ParserTest, RejectsBadInput) {
  EXPECT_THROW((void)parse_program(""), ParseError);
  EXPECT_THROW((void)parse_program("program x;"), ParseError);  // no invariant
  EXPECT_THROW((void)parse_program("program x; var a : 1..2; invariant true;"),
               ParseError);  // range must start at 0
  EXPECT_THROW(
      (void)parse_program("program x; var a : 0..1; var a : 0..1;"),
      ParseError);  // duplicate
  EXPECT_THROW(
      (void)parse_program(
          "program x; process p { reads zz; writes zz; } invariant true;"),
      ParseError);  // unknown variable
  EXPECT_THROW((void)parse_program("program x; var a : 0..1; invariant a @;"),
               ParseError);  // bad character
}

TEST(ParserTest, ModelFilesInRepositoryParseAndRepair) {
  for (const char* name : {"quickstart.lr", "mutex_ring.lr", "tmr.lr"}) {
    const std::string path = std::string(LR_SOURCE_DIR) + "/models/" + name;
    SCOPED_TRACE(path);
    auto p = parse_program_file(path);
    const auto result = repair::lazy_repair(*p);
    EXPECT_TRUE(result.success) << result.failure_reason;
    EXPECT_TRUE(repair::verify_masking(*p, result).ok);
  }
}

}  // namespace
}  // namespace lr::lang
