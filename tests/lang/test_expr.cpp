// Unit tests for the guarded-command expression language and its compiler.

#include <gtest/gtest.h>

#include <vector>

#include "lang/action.hpp"
#include "lang/expr.hpp"
#include "symbolic/space.hpp"

namespace lr::lang {
namespace {

using bdd::Bdd;
using sym::Space;
using sym::VarId;
using sym::Version;

/// Evaluates a boolean expression by brute force over all (x, y) values and
/// compares against the BDD compilation.
void check_against(Space& space, VarId x, VarId y, const Expr& e,
                   bool (*expected)(std::uint32_t, std::uint32_t)) {
  Compiler compiler(space);
  const Bdd compiled = compiler.compile_bool(e);
  const std::uint32_t dx = space.info(x).domain;
  const std::uint32_t dy = space.info(y).domain;
  for (std::uint32_t vx = 0; vx < dx; ++vx) {
    for (std::uint32_t vy = 0; vy < dy; ++vy) {
      const std::uint32_t values[2] = {vx, vy};
      const Bdd st = space.state(values);
      EXPECT_EQ(st.leq(compiled), expected(vx, vy))
          << e.to_string() << " at x=" << vx << " y=" << vy;
    }
  }
}

class ExprTest : public ::testing::Test {
 protected:
  ExprTest() {
    x_ = space_.add_variable("x", 5);
    y_ = space_.add_variable("y", 5);
  }
  Space space_;
  VarId x_ = 0;
  VarId y_ = 0;
};

TEST_F(ExprTest, ComparisonsAgainstConstants) {
  check_against(space_, x_, y_, Expr::var(0) == 3u,
                [](std::uint32_t a, std::uint32_t) { return a == 3; });
  check_against(space_, x_, y_, Expr::var(0) != 2u,
                [](std::uint32_t a, std::uint32_t) { return a != 2; });
  check_against(space_, x_, y_, Expr::var(0) < 3u,
                [](std::uint32_t a, std::uint32_t) { return a < 3; });
  check_against(space_, x_, y_, Expr::var(0) <= 1u,
                [](std::uint32_t a, std::uint32_t) { return a <= 1; });
  check_against(space_, x_, y_, Expr::var(0) > 2u,
                [](std::uint32_t a, std::uint32_t) { return a > 2; });
  check_against(space_, x_, y_, Expr::var(0) >= 4u,
                [](std::uint32_t a, std::uint32_t) { return a >= 4; });
}

TEST_F(ExprTest, VariableToVariableComparisons) {
  check_against(space_, x_, y_, Expr::var(0) == Expr::var(1),
                [](std::uint32_t a, std::uint32_t b) { return a == b; });
  check_against(space_, x_, y_, Expr::var(0) < Expr::var(1),
                [](std::uint32_t a, std::uint32_t b) { return a < b; });
  check_against(space_, x_, y_, Expr::var(0) >= Expr::var(1),
                [](std::uint32_t a, std::uint32_t b) { return a >= b; });
}

TEST_F(ExprTest, Connectives) {
  check_against(
      space_, x_, y_, (Expr::var(0) == 1u) && (Expr::var(1) == 2u),
      [](std::uint32_t a, std::uint32_t b) { return a == 1 && b == 2; });
  check_against(
      space_, x_, y_, (Expr::var(0) == 1u) || (Expr::var(1) == 2u),
      [](std::uint32_t a, std::uint32_t b) { return a == 1 || b == 2; });
  check_against(space_, x_, y_, !(Expr::var(0) == 1u),
                [](std::uint32_t a, std::uint32_t) { return a != 1; });
  check_against(
      space_, x_, y_, (Expr::var(0) == 1u).implies(Expr::var(1) == 2u),
      [](std::uint32_t a, std::uint32_t b) { return a != 1 || b == 2; });
  check_against(
      space_, x_, y_, (Expr::var(0) == 1u).iff(Expr::var(1) == 1u),
      [](std::uint32_t a, std::uint32_t b) { return (a == 1) == (b == 1); });
}

TEST_F(ExprTest, ArithmeticAddSub) {
  check_against(space_, x_, y_, Expr::var(0) + 1u == Expr::var(1),
                [](std::uint32_t a, std::uint32_t b) { return a + 1 == b; });
  check_against(
      space_, x_, y_, Expr::var(0) + Expr::var(1) == 4u,
      [](std::uint32_t a, std::uint32_t b) { return a + b == 4; });
  // Subtraction within the guaranteed-nonnegative range.
  check_against(space_, x_, y_, Expr::var(0) - Expr::var(1) == 2u,
                [](std::uint32_t a, std::uint32_t b) {
                  return a >= b && a - b == 2;
                });
}

TEST_F(ExprTest, NumericIte) {
  // ite(x == 4, 0, x + 1): the modular increment idiom.
  const Expr inc =
      Expr::ite(Expr::var(0) == 4u, Expr::constant(0), Expr::var(0) + 1u);
  check_against(space_, x_, y_, inc == Expr::var(1),
                [](std::uint32_t a, std::uint32_t b) {
                  return b == (a == 4 ? 0u : a + 1);
                });
}

TEST_F(ExprTest, BoolConstants) {
  Compiler compiler(space_);
  EXPECT_TRUE(compiler.compile_bool(Expr::bool_const(true)).is_true());
  EXPECT_TRUE(compiler.compile_bool(Expr::bool_const(false)).is_false());
}

TEST_F(ExprTest, TypeErrors) {
  Compiler compiler(space_);
  // Numeric where boolean expected.
  EXPECT_THROW((void)compiler.compile_bool(Expr::var(0)),
               std::invalid_argument);
  // Boolean where numeric expected.
  EXPECT_THROW((void)compiler.compile_bits(Expr::bool_const(true)),
               std::invalid_argument);
  // Empty expressions.
  EXPECT_THROW((void)compiler.compile_bool(Expr{}), std::invalid_argument);
  EXPECT_THROW((void)(Expr{} == 3u), std::invalid_argument);
}

TEST_F(ExprTest, ToStringIsReadable) {
  const Expr e = (Expr::var(0) == 2u) && (Expr::var(1) != Expr::var(0));
  EXPECT_EQ(e.to_string(), "((v0 == 2) && (v1 != v0))");
  EXPECT_EQ(Expr::next(1).to_string(), "next(v1)");
}

class ActionTest : public ::testing::Test {
 protected:
  ActionTest() {
    x_ = space_.add_variable("x", 3);
    y_ = space_.add_variable("y", 3);
  }

  Bdd tr(std::uint32_t x0, std::uint32_t y0, std::uint32_t x1,
         std::uint32_t y1) {
    const std::uint32_t from[2] = {x0, y0};
    const std::uint32_t to[2] = {x1, y1};
    return space_.transition(from, to);
  }

  Space space_;
  VarId x_ = 0;
  VarId y_ = 0;
};

TEST_F(ActionTest, AssignmentWithFrameRule) {
  // x == 0 --> x := y ; y must stay unchanged.
  const Action a =
      action("copy", Expr::var(x_) == 0u).assign(x_, Expr::var(y_));
  const Bdd t = compile_action(space_, a);
  EXPECT_TRUE(tr(0, 2, 2, 2).leq(t));
  EXPECT_TRUE(tr(0, 1, 1, 1).leq(t));
  EXPECT_FALSE(tr(1, 2, 2, 2).leq(t));  // guard false
  EXPECT_FALSE(tr(0, 2, 2, 1).leq(t));  // frame violated
  EXPECT_FALSE(tr(0, 2, 1, 2).leq(t));  // wrong assigned value
}

TEST_F(ActionTest, NondeterministicChoice) {
  const Action a = action("flip", Expr::var(x_) == 0u)
                       .choose(x_, {Expr::constant(1), Expr::constant(2)});
  const Bdd t = compile_action(space_, a);
  EXPECT_TRUE(tr(0, 0, 1, 0).leq(t));
  EXPECT_TRUE(tr(0, 0, 2, 0).leq(t));
  EXPECT_FALSE(tr(0, 0, 0, 0).leq(t));
}

TEST_F(ActionTest, HavocIsBoundedByDomain) {
  const Action a = action("havoc", Expr::bool_const(true)).havoc_var(y_);
  const Bdd t = compile_action(space_, a);
  // y' can be anything in-domain; x unchanged.
  EXPECT_TRUE(tr(1, 0, 1, 2).leq(t));
  EXPECT_TRUE(tr(1, 2, 1, 0).leq(t));
  EXPECT_FALSE(tr(1, 0, 2, 2).leq(t));  // x changed
  // Count: for each of 9 states, 3 choices of y'.
  EXPECT_DOUBLE_EQ(space_.count_transitions(t), 27.0);
}

TEST_F(ActionTest, RelationalGuardWithNextReference) {
  // Pure relational constraint: y' = y + 1 expressed in the guard.
  const Action a =
      action("incr", Expr::next(y_) == Expr::var(y_) + 1u).havoc_var(y_);
  const Bdd t = compile_action(space_, a);
  EXPECT_TRUE(tr(0, 0, 0, 1).leq(t));
  EXPECT_TRUE(tr(0, 1, 0, 2).leq(t));
  EXPECT_FALSE(tr(0, 2, 0, 0).leq(t));  // 3 is out of domain, not wrapped
  EXPECT_FALSE(tr(0, 0, 0, 2).leq(t));
}

TEST_F(ActionTest, CompileErrors) {
  // Empty guard.
  Action no_guard;
  no_guard.name = "broken";
  EXPECT_THROW((void)compile_action(space_, no_guard), std::invalid_argument);
  // Double assignment.
  Action twice = action("twice", Expr::bool_const(true))
                     .assign(x_, Expr::constant(0))
                     .assign(x_, Expr::constant(1));
  EXPECT_THROW((void)compile_action(space_, twice), std::invalid_argument);
  // Assign + havoc conflict.
  Action conflict = action("conflict", Expr::bool_const(true))
                        .assign(x_, Expr::constant(0))
                        .havoc_var(x_);
  EXPECT_THROW((void)compile_action(space_, conflict), std::invalid_argument);
  // Assignment with no alternatives.
  Action empty_choice = action("empty", Expr::bool_const(true))
                            .choose(x_, {});
  EXPECT_THROW((void)compile_action(space_, empty_choice),
               std::invalid_argument);
}

TEST_F(ActionTest, CompileActionsIsUnion) {
  const Action a1 =
      action("a1", Expr::var(x_) == 0u).assign(x_, Expr::constant(1));
  const Action a2 =
      action("a2", Expr::var(x_) == 1u).assign(x_, Expr::constant(2));
  const std::vector<Action> actions{a1, a2};
  const Bdd t = compile_actions(space_, actions);
  EXPECT_EQ(t, compile_action(space_, a1) | compile_action(space_, a2));
}

TEST_F(ActionTest, OutOfDomainAssignmentYieldsNoTransitions) {
  // x := y + 2 has no effect when y + 2 falls outside x's domain.
  const Action a = action("shift", Expr::bool_const(true))
                       .assign(x_, Expr::var(y_) + 2u);
  const Bdd t = compile_action(space_, a);
  EXPECT_TRUE(tr(0, 0, 2, 0).leq(t));
  // y=1 -> x'=3 invalid; no transition from y=1 exists.
  const std::uint32_t from[2] = {0, 1};
  const Bdd src = space_.state(from);
  EXPECT_TRUE(src.disjoint(space_.manager().exists(
      t, space_.cube(Version::kNext))));
}

}  // namespace
}  // namespace lr::lang
