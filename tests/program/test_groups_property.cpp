// Property tests for the read-restriction group machinery, parameterized
// over random transition predicates: groups partition the write-respecting
// transition space, closure is idempotent, and the one-shot realizable
// subset agrees with the definition checked member-by-member.

#include <gtest/gtest.h>

#include <vector>

#include "program/distributed_program.hpp"
#include "support/rng.hpp"

namespace lr::prog {
namespace {

using bdd::Bdd;
using lang::Expr;

/// Three variables with mixed domains; process pj reads {a, b} writes {b};
/// process pk reads {a, c} writes {c}.
class GroupPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  GroupPropertyTest() : program_("group-prop") {
    a_ = program_.add_variable("a", 2);
    b_ = program_.add_variable("b", 3);
    c_ = program_.add_variable("c", 2);
    Process pj;
    pj.name = "pj";
    pj.reads = {a_, b_};
    pj.writes = {b_};
    j_ = program_.add_process(std::move(pj));
    Process pk;
    pk.name = "pk";
    pk.reads = {a_, c_};
    pk.writes = {c_};
    k_ = program_.add_process(std::move(pk));
    program_.set_invariant(Expr::bool_const(true));
  }

  /// A random set of write-respecting proper transitions for process j.
  Bdd random_delta(std::size_t process, lr::support::SplitMix64& rng) {
    sym::Space& space = program_.space();
    Bdd delta = space.bdd_false();
    const std::uint32_t da = space.info(a_).domain;
    const std::uint32_t db = space.info(b_).domain;
    const std::uint32_t dc = space.info(c_).domain;
    for (std::uint32_t va = 0; va < da; ++va) {
      for (std::uint32_t vb = 0; vb < db; ++vb) {
        for (std::uint32_t vc = 0; vc < dc; ++vc) {
          const std::uint32_t written_domain =
              process == 0 ? db : dc;
          for (std::uint32_t to = 0; to < written_domain; ++to) {
            if (!rng.chance(1, 3)) continue;
            std::uint32_t from[3] = {va, vb, vc};
            std::uint32_t dest[3] = {va, vb, vc};
            (process == 0 ? dest[1] : dest[2]) = to;
            if (from[1] == dest[1] && from[2] == dest[2]) continue;
            delta |= space.transition(from, dest);
          }
        }
      }
    }
    return delta;
  }

  DistributedProgram program_;
  sym::VarId a_ = 0, b_ = 0, c_ = 0;
  std::size_t j_ = 0, k_ = 0;
};

TEST_P(GroupPropertyTest, ClosureIsIdempotentAndExtensive) {
  lr::support::SplitMix64 rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const Bdd delta = random_delta(0, rng);
    const Bdd closed = program_.group(j_, delta);
    // Extensive on the same-unreadable part.
    EXPECT_TRUE((delta & program_.same_unreadable(j_)).leq(closed));
    // Idempotent.
    EXPECT_EQ(program_.group(j_, closed), closed);
  }
}

TEST_P(GroupPropertyTest, RealizableSubsetIsLargestRealizablePart) {
  lr::support::SplitMix64 rng(GetParam() ^ 0xabcull);
  for (int round = 0; round < 10; ++round) {
    const Bdd delta = random_delta(0, rng);
    const Bdd subset = program_.realizable_subset(j_, delta);
    EXPECT_TRUE(subset.leq(delta));
    EXPECT_TRUE(program_.realizable_by_process(j_, subset));
    // Maximality: adding any dropped transition of delta breaks closure.
    const Bdd dropped = delta.minus(subset);
    if (!dropped.is_false()) {
      sym::Space& space = program_.space();
      const Bdd cube = space.cube(sym::Version::kCurrent) &
                       space.cube(sym::Version::kNext);
      const Bdd extra = space.manager().pick_minterm(dropped, cube);
      EXPECT_FALSE(program_.realizable_by_process(j_, subset | extra));
    }
  }
}

TEST_P(GroupPropertyTest, GroupsPartitionTransitions) {
  // Two transitions are either in the same group or their groups are
  // disjoint.
  lr::support::SplitMix64 rng(GetParam() ^ 0x9999ull);
  sym::Space& space = program_.space();
  const Bdd cube =
      space.cube(sym::Version::kCurrent) & space.cube(sym::Version::kNext);
  for (int round = 0; round < 10; ++round) {
    const Bdd delta = random_delta(0, rng);
    if (delta.is_false()) continue;
    const Bdd t1 = space.manager().pick_minterm(delta, cube);
    const Bdd rest = delta.minus(program_.group(j_, t1));
    if (rest.is_false()) continue;
    const Bdd t2 = space.manager().pick_minterm(rest, cube);
    const Bdd g1 = program_.group(j_, t1);
    const Bdd g2 = program_.group(j_, t2);
    EXPECT_TRUE(g1.disjoint(g2));
  }
}

TEST_P(GroupPropertyTest, RealizableSubsetMatchesBruteForce) {
  // Compare the one-shot quantification against a transition-by-transition
  // check of Definition 19.
  lr::support::SplitMix64 rng(GetParam() ^ 0x77ull);
  sym::Space& space = program_.space();
  const Bdd delta = random_delta(1, rng);  // process pk
  const Bdd subset = program_.realizable_subset(k_, delta);
  // Enumerate delta and re-derive membership manually.
  space.foreach_transition(delta, [&](std::span<const std::uint32_t> from,
                                      std::span<const std::uint32_t> to) {
    // pk cannot read b: its group varies b over its domain (unchanged).
    bool full = true;
    for (std::uint32_t vb = 0; vb < space.info(b_).domain; ++vb) {
      std::uint32_t mf[3] = {from[0], vb, from[2]};
      std::uint32_t mt[3] = {to[0], vb, to[2]};
      if (!space.transition(mf, mt).leq(delta)) {
        full = false;
        break;
      }
    }
    std::uint32_t f3[3] = {from[0], from[1], from[2]};
    std::uint32_t t3[3] = {to[0], to[1], to[2]};
    EXPECT_EQ(space.transition(f3, t3).leq(subset), full);
  });
}

TEST_P(GroupPropertyTest, UnionOfTwoProcessesRealizableByProgram) {
  lr::support::SplitMix64 rng(GetParam() ^ 0x31337ull);
  const Bdd dj = program_.realizable_subset(j_, random_delta(0, rng));
  const Bdd dk = program_.realizable_subset(k_, random_delta(1, rng));
  const auto decomposition = program_.realize_by_program(dj | dk);
  ASSERT_TRUE(decomposition.has_value());
  // The decomposition reproduces the union.
  Bdd covered = program_.space().bdd_false();
  for (const Bdd& part : *decomposition) covered |= part;
  EXPECT_EQ(covered, dj | dk);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupPropertyTest,
                         ::testing::Values(1ull, 7ull, 42ull, 1234ull,
                                           0xdeadull));

}  // namespace
}  // namespace lr::prog
