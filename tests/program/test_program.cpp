// Tests for the distributed-program model and the realizability machinery,
// including the paper's Section III-B worked example (Figures 3-5).

#include <gtest/gtest.h>

#include <vector>

#include "program/distributed_program.hpp"

namespace lr::prog {
namespace {

using bdd::Bdd;
using lang::Expr;
using lang::action;
using sym::VarId;
using sym::Version;

/// The running example of Section III-B: three binary variables v0,v1,v2;
/// process j reads {v0,v1} writes {v1}; process k reads {v0,v2} writes {v2}.
class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : program_("paper-example") {
    v0_ = program_.add_variable("v0", 2);
    v1_ = program_.add_variable("v1", 2);
    v2_ = program_.add_variable("v2", 2);
    Process pj;
    pj.name = "pj";
    pj.reads = {v0_, v1_};
    pj.writes = {v1_};
    // The action from the paper's Figure 5: if v0==0 && v1==0 then v1 := 1.
    pj.actions.push_back(action("set1", Expr::var(v0_) == 0u &&
                                            Expr::var(v1_) == 0u)
                             .assign(v1_, Expr::constant(1)));
    j_ = program_.add_process(std::move(pj));
    Process pk;
    pk.name = "pk";
    pk.reads = {v0_, v2_};
    pk.writes = {v2_};
    k_ = program_.add_process(std::move(pk));
    program_.set_invariant(Expr::bool_const(true));
  }

  Bdd tr(std::uint32_t a0, std::uint32_t b0, std::uint32_t c0,
         std::uint32_t a1, std::uint32_t b1, std::uint32_t c1) {
    const std::uint32_t from[3] = {a0, b0, c0};
    const std::uint32_t to[3] = {a1, b1, c1};
    return program_.space().transition(from, to);
  }

  DistributedProgram program_;
  VarId v0_ = 0, v1_ = 0, v2_ = 0;
  std::size_t j_ = 0, k_ = 0;
};

TEST_F(PaperExampleTest, Figure3IsNotRealizable) {
  // (000, 011) changes both v1 and v2: no single process can write both.
  const Bdd fig3 = tr(0, 0, 0, 0, 1, 1);
  EXPECT_FALSE(program_.realizable_by_process(j_, fig3));
  EXPECT_FALSE(program_.realizable_by_process(k_, fig3));
  EXPECT_FALSE(program_.realize_by_program(fig3).has_value());
}

TEST_F(PaperExampleTest, Figure4ViolatesReadRestriction) {
  // (000, 010) alone respects pj's write set but its group also contains
  // (001, 011); alone it is not realizable.
  const Bdd fig4 = tr(0, 0, 0, 0, 1, 0);
  EXPECT_TRUE(fig4.leq(program_.respects_write(j_)));
  EXPECT_FALSE(program_.realizable_by_process(j_, fig4));
  EXPECT_FALSE(program_.realize_by_program(fig4).has_value());
}

TEST_F(PaperExampleTest, Figure5IsRealizable) {
  const Bdd fig5 = tr(0, 0, 0, 0, 1, 0) | tr(0, 0, 1, 0, 1, 1);
  EXPECT_TRUE(program_.realizable_by_process(j_, fig5));
  const auto decomposition = program_.realize_by_program(fig5);
  ASSERT_TRUE(decomposition.has_value());
  EXPECT_EQ((*decomposition)[j_], fig5);
  EXPECT_TRUE((*decomposition)[k_].is_false());
}

TEST_F(PaperExampleTest, GroupOfSingleTransitionMatchesPaper) {
  // group_j((000,010)) = {(000,010), (001,011)}.
  const Bdd single = tr(0, 0, 0, 0, 1, 0);
  const Bdd expected = tr(0, 0, 0, 0, 1, 0) | tr(0, 0, 1, 0, 1, 1);
  EXPECT_EQ(program_.group(j_, single), expected);
  // Group closure is idempotent.
  EXPECT_EQ(program_.group(j_, expected), expected);
}

TEST_F(PaperExampleTest, GroupOfUnreadableChangingTransitionIsEmpty) {
  // A transition changing v2 (unreadable AND unwritable for pj) has an
  // empty group for pj.
  const Bdd changes_v2 = tr(0, 0, 0, 0, 0, 1);
  EXPECT_TRUE(program_.group(j_, changes_v2).is_false());
}

TEST_F(PaperExampleTest, RealizableSubsetKeepsExactlyFullGroups) {
  // Mix one full group (for pj) with one partial transition.
  const Bdd full = tr(0, 0, 0, 0, 1, 0) | tr(0, 0, 1, 0, 1, 1);
  const Bdd partial = tr(0, 1, 0, 0, 0, 0);  // v1: 1 -> 0, group misses 001->?
  const Bdd subset = program_.realizable_subset(j_, full | partial);
  EXPECT_EQ(subset, full);
}

TEST_F(PaperExampleTest, ProcessDeltaComesFromActions) {
  // pj's action is exactly Figure 5's group.
  const Bdd expected = tr(0, 0, 0, 0, 1, 0) | tr(0, 0, 1, 0, 1, 1);
  EXPECT_EQ(program_.process_delta(j_), expected);
  EXPECT_TRUE(program_.process_delta(k_).is_false());
  EXPECT_EQ(program_.actions_delta(), expected);
  // The program's own action set is realizable (sanity).
  EXPECT_TRUE(program_.realizable_by_process(j_, program_.process_delta(j_)));
}

TEST_F(PaperExampleTest, StutterCompletionAddsLoopsAtDisabledStates) {
  const Bdd delta = program_.actions_delta();
  const Bdd with_stutter = program_.stutter_completion(delta);
  // States where the action is disabled (v0=1 or v1=1) stutter.
  const std::uint32_t stuck[3] = {1, 0, 0};
  const std::uint32_t enabled[3] = {0, 0, 0};
  EXPECT_TRUE(program_.space()
                  .transition(stuck, stuck)
                  .leq(with_stutter));
  EXPECT_FALSE(program_.space()
                   .transition(enabled, enabled)
                   .leq(with_stutter));
  EXPECT_EQ(program_.program_delta(), with_stutter);
}

TEST_F(PaperExampleTest, WriteViolationIsNeverRealizable) {
  // Process k cannot change v1 no matter how transitions are grouped.
  const Bdd t = tr(0, 0, 0, 0, 1, 0) | tr(0, 0, 1, 0, 1, 1);
  EXPECT_FALSE(t.leq(program_.respects_write(k_)));
  EXPECT_FALSE(program_.realizable_by_process(k_, t));
}

TEST_F(PaperExampleTest, MutationAfterFreezeThrows) {
  (void)program_.invariant();
  EXPECT_THROW((void)program_.add_variable("late", 2), std::logic_error);
  EXPECT_THROW(program_.add_fault(action("f", Expr::bool_const(true))),
               std::logic_error);
  EXPECT_THROW(program_.set_invariant(Expr::bool_const(true)),
               std::logic_error);
}

TEST_F(PaperExampleTest, WriteOutsideReadSetRejected) {
  DistributedProgram bad("bad");
  const VarId a = bad.add_variable("a", 2);
  const VarId b = bad.add_variable("b", 2);
  Process p;
  p.name = "p";
  p.reads = {a};
  p.writes = {b};  // not a subset of reads
  EXPECT_THROW((void)bad.add_process(std::move(p)), std::invalid_argument);
}

/// A tiny fault-prone program: x should stay 1; a fault resets it to 0; the
/// process can restore it.
class FaultyProgramTest : public ::testing::Test {
 protected:
  FaultyProgramTest() : program_("faulty") {
    x_ = program_.add_variable("x", 2);
    y_ = program_.add_variable("y", 2);
    Process p;
    p.name = "p";
    p.reads = {x_, y_};
    p.writes = {x_, y_};
    p.actions.push_back(action("restore", Expr::var(x_) == 0u)
                            .assign(x_, Expr::constant(1)));
    program_.add_process(std::move(p));
    program_.add_fault(
        action("hit", Expr::var(x_) == 1u).assign(x_, Expr::constant(0)));
    program_.set_invariant(Expr::var(x_) == 1u);
    program_.add_bad_states(Expr::var(y_) == 1u);
  }

  DistributedProgram program_;
  VarId x_ = 0, y_ = 0;
};

TEST_F(FaultyProgramTest, FaultDeltaAndSafetyCompile) {
  // Fault: flips x from 1 to 0 (y arbitrary but unchanged): 2 transitions.
  EXPECT_DOUBLE_EQ(program_.space().count_transitions(program_.fault_delta()),
                   2.0);
  EXPECT_DOUBLE_EQ(program_.space().count_states(program_.invariant()), 2.0);
  EXPECT_DOUBLE_EQ(program_.space().count_states(program_.safety().bad_states),
                   2.0);
  EXPECT_TRUE(program_.safety().bad_trans.is_false());
}

TEST_F(FaultyProgramTest, ReachableUnderFaultsCoversFaultEffects) {
  const Bdd reach = program_.reachable_under_faults();
  // From invariant (x=1, y any), faults reach x=0; y never becomes... y is
  // never written, so reach = all 4 valid states with y as in the start.
  const std::uint32_t s10[2] = {1, 0};
  const std::uint32_t s00[2] = {0, 0};
  EXPECT_TRUE(program_.space().state(s10).leq(reach));
  EXPECT_TRUE(program_.space().state(s00).leq(reach));
  EXPECT_DOUBLE_EQ(program_.space().count_states(reach), 4.0);
}

TEST_F(FaultyProgramTest, FaultsAreNotGroupRestricted) {
  // Faults may do anything; realizability machinery applies to processes
  // only. group() of the fault delta w.r.t. the (all-reading) process is
  // itself.
  EXPECT_EQ(program_.group(0, program_.fault_delta()),
            program_.fault_delta());
}

}  // namespace
}  // namespace lr::prog
