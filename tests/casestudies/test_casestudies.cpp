// Sanity tests for the case-study model generators: state-space sizes,
// invariants, fault shapes, and repairability.

#include <gtest/gtest.h>

#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "casestudies/token_ring.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"

namespace lr::cs {
namespace {

TEST(ByzantineModelTest, StateSpaceSize) {
  auto p = make_byzantine({.non_generals = 3});
  // b.g, d.g binary; per non-general b(2) * d(3) * f(2).
  EXPECT_DOUBLE_EQ(p->space().state_space_size(), 4.0 * 12 * 12 * 12);
  auto pfs = make_byzantine({.non_generals = 3, .fail_stop = true});
  EXPECT_DOUBLE_EQ(pfs->space().state_space_size(), 4.0 * 24 * 24 * 24);
}

TEST(ByzantineModelTest, InvariantShapes) {
  auto p = make_byzantine({.non_generals = 2});
  auto& sp = p->space();
  // Variables: b.g d.g (b d f) x2
  // All-bottom undecided state with nobody byzantine is legitimate.
  const std::uint32_t fresh[8] = {0, 0, 0, 2, 0, 0, 2, 0};
  EXPECT_TRUE(sp.state(fresh).leq(p->invariant()));
  // A finalized process disagreeing with an honest general is not.
  const std::uint32_t bad[8] = {0, 0, 0, 1, 1, 0, 2, 0};
  EXPECT_FALSE(sp.state(bad).leq(p->invariant()));
  EXPECT_TRUE(sp.state(bad).leq(p->safety().bad_states));
  // One byzantine non-general with the others consistent is legitimate.
  const std::uint32_t byz[8] = {0, 0, 1, 1, 1, 0, 0, 0};
  EXPECT_TRUE(sp.state(byz).leq(p->invariant()));
}

TEST(ByzantineModelTest, AtMostOneByzantine) {
  auto p = make_byzantine({.non_generals = 2});
  auto& sp = p->space();
  // From a state where p0 is byzantine, no fault can corrupt p1 too.
  const auto reach = p->reachable_under_faults();
  lang::Compiler compiler(sp);
  const auto two_byz = compiler.compile_bool(
      lang::Expr::var(2) == 1u && lang::Expr::var(5) == 1u);
  EXPECT_TRUE(reach.disjoint(two_byz));
}

TEST(ByzantineModelTest, FaultsPreserveInvariantMembershipCount) {
  auto p = make_byzantine({.non_generals = 2});
  auto& sp = p->space();
  // Byzantine-flag faults keep the state legitimate (the invariant covers
  // single-byzantine shapes); decision-lying may leave it.
  const auto inv = p->invariant();
  const auto after =
      sp.image(p->fault_delta(), inv) & sp.valid(sym::Version::kCurrent);
  EXPECT_FALSE(after.is_false());
}

TEST(ChainModelTest, SizesAndInvariant) {
  auto p = make_chain({.length = 3, .domain = 4});
  EXPECT_DOUBLE_EQ(p->space().state_space_size(), 256.0);
  EXPECT_DOUBLE_EQ(p->space().count_states(p->invariant()), 4.0);
  EXPECT_TRUE(p->safety().bad_states.is_false());
  EXPECT_TRUE(p->safety().bad_trans.is_false());
}

TEST(ChainModelTest, EverythingReachableUnderFaults) {
  auto p = make_chain({.length = 4, .domain = 3});
  EXPECT_EQ(p->reachable_under_faults(),
            p->space().valid(sym::Version::kCurrent));
}

TEST(ChainModelTest, PropagationIsRealizableByConstruction) {
  auto p = make_chain({.length = 3, .domain = 3});
  for (std::size_t j = 0; j < p->process_count(); ++j) {
    EXPECT_TRUE(p->realizable_by_process(j, p->process_delta(j)));
  }
}

TEST(TokenRingModelTest, InvariantIsExactlyOneToken) {
  auto p = make_token_ring({.processes = 3, .domain = 3});
  auto& sp = p->space();
  // x = (0,0,0): root token only -> legitimate.
  const std::uint32_t all0[3] = {0, 0, 0};
  EXPECT_TRUE(sp.state(all0).leq(p->invariant()));
  // x = (1,0,0): p1 holds the token (root does not: x0 != x2) -> legit.
  const std::uint32_t one[3] = {1, 0, 0};
  EXPECT_TRUE(sp.state(one).leq(p->invariant()));
  // x = (2,0,1): tokens at p1 and p2 and root -> illegitimate.
  const std::uint32_t multi[3] = {2, 0, 1};
  EXPECT_FALSE(sp.state(multi).leq(p->invariant()));
}

TEST(TokenRingModelTest, TokenCirculatesInsideInvariant) {
  auto p = make_token_ring({.processes = 3, .domain = 3});
  auto& sp = p->space();
  // Within the invariant, the program moves and stays in the invariant.
  const auto inside = p->program_delta() & p->invariant();
  EXPECT_FALSE(inside.is_false());
  EXPECT_TRUE(sp.image(inside, p->invariant()).leq(p->invariant()));
}

TEST(TokenRingModelTest, LazyRepairStabilizes) {
  auto p = make_token_ring({.processes = 3, .domain = 3});
  const auto result = repair::lazy_repair(*p);
  ASSERT_TRUE(result.success) << result.failure_reason;
  const auto report = repair::verify_masking(*p, result);
  EXPECT_TRUE(report.ok);
  for (const auto& f : report.failures) ADD_FAILURE() << f;
}

TEST(TokenRingModelTest, LargerRingStabilizes) {
  auto p = make_token_ring({.processes = 4, .domain = 5});
  const auto result = repair::lazy_repair(*p);
  ASSERT_TRUE(result.success) << result.failure_reason;
  const auto report = repair::verify_masking(*p, result);
  EXPECT_TRUE(report.ok);
}

TEST(TokenRingModelTest, RejectsDegenerateParameters) {
  EXPECT_THROW((void)make_token_ring({.processes = 1}), std::invalid_argument);
  EXPECT_THROW((void)make_token_ring({.processes = 3, .domain = 1}),
               std::invalid_argument);
}

TEST(ChainModelTest, RejectsDegenerateParameters) {
  EXPECT_THROW((void)make_chain({.length = 0}), std::invalid_argument);
  EXPECT_THROW((void)make_chain({.length = 2, .domain = 1}),
               std::invalid_argument);
}

TEST(ByzantineModelTest, RejectsDegenerateParameters) {
  EXPECT_THROW((void)make_byzantine({.non_generals = 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lr::cs
