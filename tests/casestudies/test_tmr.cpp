// Tests for the triple-modular-redundancy case study: the repair must
// synthesize the majority vote.

#include <gtest/gtest.h>

#include "casestudies/tmr.hpp"
#include "explicit_model/explicit_model.hpp"
#include "repair/describe.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"

namespace lr::cs {
namespace {

TEST(TmrTest, ModelShape) {
  auto p = make_tmr({});
  // ref, 3 inputs, out: 2*2*2*2*3 = 48 states.
  EXPECT_DOUBLE_EQ(p->space().state_space_size(), 48.0);
  // Invariant: <=1 mismatch (1 + 3 patterns) x ref(2) x out in {bot, ref}.
  EXPECT_DOUBLE_EQ(p->space().count_states(p->invariant()), 16.0);
}

TEST(TmrTest, RejectsCorruptedMajority) {
  EXPECT_THROW((void)make_tmr({.replicas = 3, .max_corruptions = 2}),
               std::invalid_argument);
  EXPECT_THROW((void)make_tmr({.replicas = 2}), std::invalid_argument);
}

TEST(TmrTest, LazyRepairSynthesizesMajorityVote) {
  auto p = make_tmr({});
  const auto result = repair::lazy_repair(*p);
  ASSERT_TRUE(result.success) << result.failure_reason;
  const auto report = repair::verify_masking(*p, result);
  EXPECT_TRUE(report.ok);
  for (const auto& f : report.failures) ADD_FAILURE() << f;
  xmodel::ExplicitModel model(*p);
  EXPECT_TRUE(model.verify(result).ok);

  // The synthesized voter must emit the majority: from in = (1, 1, 0) it
  // writes 1, never 0 — even though the intolerant program copied in0
  // blindly and in0 could be the corrupted line.
  auto& sp = p->space();
  // Variables: ref in0 in1 in2 out.
  const std::uint32_t majority1[5] = {1, 1, 1, 0, 2};
  const std::uint32_t wrote1[5] = {1, 1, 1, 0, 1};
  const std::uint32_t wrote0[5] = {1, 1, 1, 0, 0};
  EXPECT_TRUE(
      sp.transition(majority1, wrote1).leq(result.process_deltas[0]));
  EXPECT_FALSE(
      sp.transition(majority1, wrote0).leq(result.process_deltas[0]));
}

TEST(TmrTest, FiveReplicasTwoCorruptions) {
  auto p = make_tmr({.replicas = 5, .max_corruptions = 2});
  const auto result = repair::lazy_repair(*p);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_TRUE(repair::verify_masking(*p, result).ok);
}

TEST(TmrTest, DescribeShowsVotes) {
  auto p = make_tmr({});
  const auto result = repair::lazy_repair(*p);
  ASSERT_TRUE(result.success);
  const auto lines = repair::describe_process_program(
      *p, 0, result.process_deltas[0], result.fault_span);
  EXPECT_FALSE(lines.empty());
  bool saw_vote = false;
  for (const auto& line : lines) {
    if (line.find("out:=") != std::string::npos) saw_vote = true;
    // The guard never mentions the unreadable reference.
    EXPECT_EQ(line.find("ref"), std::string::npos) << line;
  }
  EXPECT_TRUE(saw_vote);
}

}  // namespace
}  // namespace lr::cs
