// Interrupt/resume integration tests for `repair_cli --batch --resume`:
// run a 6-model sweep, simulate a crash by truncating the checkpoint
// manifest after 3 rows, resume, and require (a) exactly 3 tasks skipped
// and (b) stdout byte-identical to the uninterrupted run. A staleness test
// then edits one input model and requires that only it re-runs.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "repair/manifest.hpp"
#include "support/fs.hpp"
#include "support/json.hpp"

namespace {

struct CliRun {
  int exit_code = -1;
  std::string output;  ///< stdout only (stderr carries timing/log noise)
};

CliRun run_cli(const std::string& args) {
  CliRun run;
  const std::string command =
      std::string(LR_REPAIR_CLI) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buffer;
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    run.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Gauge value from a --metrics-json report; nullopt when absent.
std::optional<double> gauge(const std::string& metrics_path,
                            const std::string& key) {
  const auto doc = lr::support::json_parse(read_file(metrics_path));
  if (!doc) return std::nullopt;
  const lr::support::JsonValue* gauges = doc->find("gauges");
  if (gauges == nullptr) return std::nullopt;
  const lr::support::JsonValue* value = gauges->find(key);
  if (value == nullptr || !value->is_number()) return std::nullopt;
  return value->number;
}

class CliResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest -j runs each test as its own process of this
    // binary, so a shared directory name races between concurrent tests.
    dir_ = ::testing::TempDir() + std::string("cli_resume_sweep_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::filesystem::create_directories(dir_);
    // Six structurally identical single-counter models with distinct
    // names: small enough that the full sweep is fast, plural enough that
    // "resume skipped exactly the recorded prefix" is meaningful.
    for (int i = 1; i <= 6; ++i) {
      write_model(i, "");
    }
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  void write_model(int i, const std::string& suffix) {
    const std::string name = model_name(i);
    ASSERT_TRUE(lr::support::write_file_atomic(
        dir_ + "/" + name + ".lr",
        "program " + name + ";\n"
        "var x : 0..2;\n"
        "process worker {\n"
        "  reads x;\n  writes x;\n"
        "  action reset: x == 1 -> x := 0;\n"
        "}\n"
        "fault glitch: x == 0 -> x := 1;\n"
        "invariant x == 0;\n"
        "bad_state x == 2;\n" +
            suffix));
  }

  static std::string model_name(int i) {
    return "sweep" + std::to_string(i);
  }

  std::string manifest_path() const { return dir_ + "/batch.manifest.json"; }

  CliRun run_sweep(const std::string& metrics_name) {
    return run_cli("--batch " + dir_ + " --resume --jobs 2 --metrics-json=" +
                   dir_ + "/" + metrics_name);
  }

  std::string dir_;
};

TEST_F(CliResumeTest, TruncatedManifestResumesWithByteIdenticalStdout) {
  // Uninterrupted reference sweep (cold: the manifest does not exist yet).
  const CliRun cold = run_sweep("metrics_cold.json");
  ASSERT_EQ(cold.exit_code, 0) << cold.output;
  EXPECT_NE(cold.output.find("batch summary: 6/6 ok"), std::string::npos)
      << cold.output;

  // Simulate a crash after 3 completed tasks: drop the last 3 manifest
  // rows, exactly as if the process died before writing them.
  std::optional<lr::repair::Manifest> manifest =
      lr::repair::Manifest::load(manifest_path());
  ASSERT_TRUE(manifest.has_value());
  ASSERT_EQ(manifest->size(), 6u);
  for (int i = 4; i <= 6; ++i) {
    ASSERT_TRUE(manifest->erase(model_name(i)));
  }
  ASSERT_TRUE(manifest->save(manifest_path()));

  const CliRun resumed = run_sweep("metrics_resumed.json");
  EXPECT_EQ(resumed.exit_code, 0);
  EXPECT_EQ(resumed.output, cold.output)
      << "a resumed sweep must print byte-identical stdout";

  // Exactly the 3 recorded tasks were skipped; the 3 dropped ones re-ran.
  const std::string metrics = dir_ + "/metrics_resumed.json";
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(gauge(metrics, "batch." + model_name(i) + ".resumed"),
              std::optional<double>(1.0))
        << model_name(i);
  }
  for (int i = 4; i <= 6; ++i) {
    EXPECT_EQ(gauge(metrics, "batch." + model_name(i) + ".resumed"),
              std::optional<double>(0.0))
        << model_name(i);
  }
}

TEST_F(CliResumeTest, EditedModelAloneRerunsOnResume) {
  const CliRun cold = run_sweep("metrics_cold.json");
  ASSERT_EQ(cold.exit_code, 0) << cold.output;

  // A semantically neutral edit still changes the input hash: staleness is
  // detected at the byte level, not by re-deriving semantics.
  write_model(2, "// touched\n");

  const CliRun resumed = run_sweep("metrics_stale.json");
  EXPECT_EQ(resumed.exit_code, 0);
  EXPECT_EQ(resumed.output, cold.output)
      << "the edit is semantically neutral, so stdout must not change";
  const std::string metrics = dir_ + "/metrics_stale.json";
  for (int i = 1; i <= 6; ++i) {
    EXPECT_EQ(gauge(metrics, "batch." + model_name(i) + ".resumed"),
              std::optional<double>(i == 2 ? 0.0 : 1.0))
        << model_name(i);
  }
}

TEST_F(CliResumeTest, FullyRecordedSweepSkipsEverythingAndStaysGreen) {
  const CliRun cold = run_sweep("metrics_cold.json");
  ASSERT_EQ(cold.exit_code, 0) << cold.output;
  const CliRun warm = run_sweep("metrics_warm.json");
  EXPECT_EQ(warm.exit_code, 0);
  EXPECT_EQ(warm.output, cold.output);
  const std::string metrics = dir_ + "/metrics_warm.json";
  for (int i = 1; i <= 6; ++i) {
    EXPECT_EQ(gauge(metrics, "batch." + model_name(i) + ".resumed"),
              std::optional<double>(1.0))
        << model_name(i);
  }
}

}  // namespace
