// Drives the real repair_cli binary through the --order / --order-out
// surface: warm-start fixpoint byte-stability, the committed golden
// profile for the chain-4 case study, export canonicality across modes,
// and the exit-2 error paths for malformed order arguments.
//
// Regenerate the golden profile after an intentional format change with
//   LR_UPDATE_GOLDEN=1 ./test_cli_order

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string cli_path() { return LR_REPAIR_CLI; }

std::string golden_dir() {
  return std::string(LR_SOURCE_DIR) + "/tests/golden";
}

struct CliRun {
  int exit_code = -1;
  std::string output;  ///< stdout only (stderr carries timing/log noise)
};

CliRun run_cli(const std::string& args) {
  CliRun run;
  const std::string command = cli_path() + " " + args + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buffer;
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    run.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(CliOrderTest, WarmStartReachesAByteStableFixpoint) {
  // run1 --order=adjacency --order-out=a; run2 file:a -> b; run3 file:b ->
  // c. b and c must be byte-identical: the profile's source field records
  // the mode only, never the path, so the warm start is a fixpoint.
  const std::string a = temp_path("cli_order_a.json");
  const std::string b = temp_path("cli_order_b.json");
  const std::string c = temp_path("cli_order_c.json");
  CliRun run =
      run_cli("--chain=4 --order=adjacency --order-out=" + a + " --no-verify");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  run = run_cli("--chain=4 --order=file:" + a + " --order-out=" + b +
                " --no-verify");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  run = run_cli("--chain=4 --order=file:" + b + " --order-out=" + c +
                " --no-verify");
  ASSERT_EQ(run.exit_code, 0) << run.output;

  const std::string profile_b = read_file(b);
  const std::string profile_c = read_file(c);
  ASSERT_FALSE(profile_b.empty());
  EXPECT_EQ(profile_b, profile_c) << "warm start is not a fixpoint";
  // The warm-started profile's level order equals the seeding profile's
  // (only the source tag and node statistics may differ).
  const std::string profile_a = read_file(a);
  EXPECT_NE(profile_a.find("\"source\": \"adjacency\""), std::string::npos);
  EXPECT_NE(profile_b.find("\"source\": \"file\""), std::string::npos);
  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(c.c_str());
}

TEST(CliOrderTest, ChainProfileMatchesCommittedGolden) {
  const std::string path = temp_path("cli_order_golden.json");
  const CliRun run = run_cli("--chain=4 --order=adjacency --order-out=" +
                             path + " --no-verify");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  const std::string actual = read_file(path);
  ASSERT_FALSE(actual.empty());
  std::remove(path.c_str());

  const std::string golden_path = golden_dir() + "/chain4.order.json";
  if (std::getenv("LR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << actual;
    return;
  }
  const std::string expected = read_file(golden_path);
  ASSERT_FALSE(expected.empty())
      << "missing golden " << golden_path
      << " (regenerate with LR_UPDATE_GOLDEN=1)";
  EXPECT_EQ(actual, expected)
      << "order profile drifted from chain4.order.json "
      << "(LR_UPDATE_GOLDEN=1 to accept)";
}

TEST(CliOrderTest, ExportsAreByteIdenticalAcrossOrderModes) {
  const std::string base = temp_path("cli_order_export_decl.lr");
  CliRun run = run_cli("--chain=3 --export=" + base + " --no-verify");
  ASSERT_EQ(run.exit_code, 0) << run.output;
  const std::string baseline = read_file(base);
  ASSERT_FALSE(baseline.empty());
  std::remove(base.c_str());
  for (const char* mode : {"decl", "auto", "interleave", "adjacency"}) {
    const std::string path =
        temp_path(std::string("cli_order_export_") + mode + ".lr");
    run = run_cli("--chain=3 --order=" + std::string(mode) +
                  " --export=" + path + " --no-verify");
    ASSERT_EQ(run.exit_code, 0) << run.output;
    EXPECT_EQ(read_file(path), baseline) << "--order=" << mode;
    std::remove(path.c_str());
  }
}

TEST(CliOrderTest, StatsPrintsTheOrderSectionOnlyWhenAsked) {
  const CliRun with_order =
      run_cli("--chain=3 --order=interleave --stats --no-verify");
  ASSERT_EQ(with_order.exit_code, 0) << with_order.output;
  EXPECT_NE(with_order.output.find("bdd order:"), std::string::npos);
  EXPECT_NE(with_order.output.find("mode: interleave"), std::string::npos);

  // Default runs must not grow a new stats section (golden stability).
  const CliRun without = run_cli("--chain=3 --stats --no-verify");
  ASSERT_EQ(without.exit_code, 0) << without.output;
  EXPECT_EQ(without.output.find("bdd order:"), std::string::npos);
}

TEST(CliOrderTest, BadOrderArgumentsExitTwo) {
  EXPECT_EQ(run_cli("--chain=3 --order=sideways").exit_code, 2);
  EXPECT_EQ(run_cli("--chain=3 --order=file:").exit_code, 2);
  EXPECT_EQ(run_cli("--chain=3 --order=file:/no/such/profile.json").exit_code,
            2);
  // A profile for a different model must be rejected before the repair.
  const std::string other = temp_path("cli_order_other_model.json");
  const CliRun seed = run_cli("--chain=5 --order-out=" + other +
                              " --no-verify");
  ASSERT_EQ(seed.exit_code, 0) << seed.output;
  EXPECT_EQ(run_cli("--chain=3 --order=file:" + other).exit_code, 2);
  std::remove(other.c_str());
}

TEST(CliOrderTest, HelpMarkdownPrintsTheFlagTable) {
  const CliRun run = run_cli("--help-markdown");
  ASSERT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.output.rfind("# `repair_cli` flag reference", 0), 0u);
  EXPECT_NE(run.output.find("| `--order` |"), std::string::npos);
  EXPECT_NE(run.output.find("| `--order-out` |"), std::string::npos);
}

}  // namespace
