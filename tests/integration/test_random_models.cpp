// Sharded differential fuzz harness: random small distributed programs
// (see tests/support/model_gen.hpp) are fed to the repair algorithms
// across the batch thread pool; *whenever* repair claims success, both the
// symbolic verifier and the explicit-state checker must accept the result.
// Failures are expected and fine — unsound successes are not.
//
// Environment knobs:
//   LR_FUZZ_SEED=N     base seed (model i uses seed N+i); default 20160523
//   LR_FUZZ_MODELS=N   models in the main lazy sweep; default 512
//   LR_FUZZ_JOBS=N     worker threads; default min(8, hardware)
//
// On an unsound success the harness immediately prints the exact failing
// seed and a one-line repro command, e.g.
//   LR_FUZZ_SEED=20160711 LR_FUZZ_MODELS=1 ./test_random_models
// which replays exactly that model (model_seed(base, 0) == base).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "explicit_model/explicit_model.hpp"
#include "program/distributed_program.hpp"
#include "repair/cautious.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "../support/model_gen.hpp"

namespace lr::repair {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 0);
}

std::uint64_t base_seed() { return env_u64("LR_FUZZ_SEED", 20160523ull); }

std::size_t sweep_models(std::size_t fallback) {
  return static_cast<std::size_t>(env_u64("LR_FUZZ_MODELS", fallback));
}

std::size_t sweep_jobs() {
  const std::size_t hw = support::ThreadPool::hardware_threads();
  return static_cast<std::size_t>(
      env_u64("LR_FUZZ_JOBS", std::min<std::size_t>(8, hw)));
}

/// Collects unsound-success reports from the worker threads. gtest
/// assertions are not thread-safe, so shards push messages here and the
/// main thread fails the test after the pool drains.
class FailureLog {
 public:
  explicit FailureLog(const char* suite) : suite_(suite) {}

  /// Records one unsound success and immediately prints the seed plus a
  /// one-line repro command (so the evidence survives even a later crash).
  void record(std::uint64_t seed, const std::string& message) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::fprintf(stderr,
                 "[fuzz] UNSOUND seed=%llu: %s\n"
                 "[fuzz] repro: LR_FUZZ_SEED=%llu LR_FUZZ_MODELS=1 "
                 "./test_random_models --gtest_filter='*%s*'\n",
                 static_cast<unsigned long long>(seed), message.c_str(),
                 static_cast<unsigned long long>(seed), suite_);
    messages_.push_back("seed " + std::to_string(seed) + ": " + message);
  }

  /// Replays the log as test failures; call from the main thread.
  void flush() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& message : messages_) {
      ADD_FAILURE() << message;
    }
  }

 private:
  const char* suite_;
  std::mutex mutex_;
  std::vector<std::string> messages_;
};

TEST(ShardedFuzzTest, LazySuccessesAreSound) {
  const std::uint64_t base = base_seed();
  const std::size_t count = sweep_models(512);
  FailureLog failures("Lazy");
  std::atomic<int> successes{0};
  support::parallel_for(count, sweep_jobs(), [&](std::size_t i) {
    const std::uint64_t seed = testgen::model_seed(base, i);
    support::SplitMix64 rng(seed);
    auto program = testgen::random_program(rng);
    const RepairResult result = lazy_repair(*program);
    if (!result.success) return;
    successes.fetch_add(1, std::memory_order_relaxed);
    const VerifyReport report = verify_masking(*program, result);
    if (!report.ok) {
      std::string detail = "symbolic verifier rejected lazy success";
      for (const auto& f : report.failures) detail += "; " + f;
      failures.record(seed, detail);
    }
    xmodel::ExplicitModel model(*program);
    const auto explicit_report = model.verify(result);
    if (!explicit_report.ok) {
      std::string detail = "explicit-state checker rejected lazy success";
      for (const auto& f : explicit_report.failures) detail += "; " + f;
      failures.record(seed, detail);
    }
  });
  failures.flush();
  // The generator is tuned so a healthy fraction of models is repairable;
  // a sweep that never succeeds would test nothing.
  EXPECT_GT(successes.load(), 0) << "base seed " << base;
}

TEST(ShardedFuzzTest, CautiousSuccessesAreSound) {
  const std::uint64_t base = base_seed() ^ 0xCAB005Eull;
  const std::size_t count = sweep_models(128);
  FailureLog failures("Cautious");
  std::atomic<int> successes{0};
  Options options;
  options.group_method = GroupMethod::kOneShot;
  support::parallel_for(count, sweep_jobs(), [&](std::size_t i) {
    const std::uint64_t seed = testgen::model_seed(base, i);
    support::SplitMix64 rng(seed);
    auto program = testgen::random_program(rng);
    const RepairResult result = cautious_repair(*program, options);
    if (!result.success) return;
    successes.fetch_add(1, std::memory_order_relaxed);
    const VerifyReport report = verify_masking(*program, result);
    if (!report.ok) {
      std::string detail = "symbolic verifier rejected cautious success";
      for (const auto& f : report.failures) detail += "; " + f;
      failures.record(seed, detail);
    }
  });
  failures.flush();
  EXPECT_GT(successes.load(), 0) << "base seed " << base;
}

TEST(ShardedFuzzTest, FailsafeSuccessesAreSound) {
  const std::uint64_t base = base_seed() ^ 0xFA15AFEull;
  const std::size_t count = sweep_models(128);
  FailureLog failures("Failsafe");
  std::atomic<int> successes{0};
  Options options;
  options.level = ToleranceLevel::kFailsafe;
  support::parallel_for(count, sweep_jobs(), [&](std::size_t i) {
    const std::uint64_t seed = testgen::model_seed(base, i);
    support::SplitMix64 rng(seed);
    auto program = testgen::random_program(rng);
    const RepairResult result = lazy_repair(*program, options);
    if (!result.success) return;
    successes.fetch_add(1, std::memory_order_relaxed);
    const VerifyReport report =
        verify_masking(*program, result, ToleranceLevel::kFailsafe);
    if (!report.ok) {
      std::string detail = "symbolic verifier rejected failsafe success";
      for (const auto& f : report.failures) detail += "; " + f;
      failures.record(seed, detail);
    }
  });
  failures.flush();
  EXPECT_GT(successes.load(), 0) << "base seed " << base;
}

/// The sweep must be reproducible: the same base seed produces the same
/// models, so a shard's failure replays exactly from the printed command.
TEST(ShardedFuzzTest, ShardingIsDeterministic) {
  const std::uint64_t base = 97ull;
  for (const std::uint64_t index : {0ull, 7ull, 511ull}) {
    const std::uint64_t seed = testgen::model_seed(base, index);
    support::SplitMix64 rng_a(seed);
    support::SplitMix64 rng_b(seed);
    auto a = testgen::random_program(rng_a);
    auto b = testgen::random_program(rng_b);
    const RepairResult ra = lazy_repair(*a);
    const RepairResult rb = lazy_repair(*b);
    EXPECT_EQ(ra.success, rb.success) << "index " << index;
    if (ra.success && rb.success) {
      EXPECT_EQ(ra.stats.invariant_states, rb.stats.invariant_states);
      EXPECT_EQ(ra.stats.span_states, rb.stats.span_states);
    }
  }
}

}  // namespace
}  // namespace lr::repair
