// Fuzz-style soundness sweep: random small distributed programs (random
// topologies, actions, faults, invariants and specifications) are fed to
// lazy repair; *whenever* it claims success, both the symbolic verifier
// and the explicit-state checker must accept the result. Failures are
// expected and fine — unsound successes are not.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "explicit_model/explicit_model.hpp"
#include "program/distributed_program.hpp"
#include "repair/cautious.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"
#include "support/rng.hpp"

namespace lr::repair {
namespace {

using lang::Expr;
using prog::DistributedProgram;

/// Builds a random program: 2-3 variables of domain 2-3, 1-3 processes
/// with random read/write topology and random guarded commands, 1-2 fault
/// actions, a random nonempty invariant and a random (possibly empty)
/// safety specification.
std::unique_ptr<DistributedProgram> random_program(
    lr::support::SplitMix64& rng) {
  auto p = std::make_unique<DistributedProgram>("fuzz");
  const std::size_t nvars = 2 + rng.below(2);
  std::vector<sym::VarId> vars;
  std::vector<std::uint32_t> domains;
  for (std::size_t v = 0; v < nvars; ++v) {
    const auto domain = static_cast<std::uint32_t>(2 + rng.below(2));
    vars.push_back(p->add_variable("v" + std::to_string(v), domain));
    domains.push_back(domain);
  }

  auto random_state_expr = [&]() {
    // Random conjunction/disjunction of var==const literals.
    Expr e = Expr::var(vars[rng.below(nvars)]) ==
             static_cast<std::uint32_t>(rng.below(domains[0]));
    for (std::size_t i = 0; i < 1 + rng.below(2); ++i) {
      const std::size_t v = rng.below(nvars);
      const Expr lit =
          Expr::var(vars[v]) == static_cast<std::uint32_t>(rng.below(domains[v]));
      e = rng.flip() ? (e && lit) : (e || lit);
    }
    return e;
  };

  const std::size_t nproc = 1 + rng.below(3);
  for (std::size_t j = 0; j < nproc; ++j) {
    prog::Process proc;
    proc.name = "p" + std::to_string(j);
    // Writes: one or two variables; reads: writes + random others.
    std::vector<bool> writes(nvars, false);
    writes[rng.below(nvars)] = true;
    if (rng.chance(1, 3)) writes[rng.below(nvars)] = true;
    std::vector<bool> reads = writes;
    for (std::size_t v = 0; v < nvars; ++v) {
      if (rng.flip()) reads[v] = true;
    }
    for (std::size_t v = 0; v < nvars; ++v) {
      if (reads[v]) proc.reads.push_back(vars[v]);
      if (writes[v]) proc.writes.push_back(vars[v]);
    }
    const std::size_t nactions = 1 + rng.below(2);
    for (std::size_t a = 0; a < nactions; ++a) {
      // Guard over readable variables only (well-formed programs).
      Expr guard = Expr::bool_const(true);
      for (std::size_t v = 0; v < nvars; ++v) {
        if (reads[v] && rng.flip()) {
          guard = guard && (Expr::var(vars[v]) ==
                            static_cast<std::uint32_t>(rng.below(domains[v])));
        }
      }
      lang::Action action;
      action.name = "a" + std::to_string(a);
      action.guard = guard;
      for (std::size_t v = 0; v < nvars; ++v) {
        if (writes[v] && rng.flip()) {
          action.assigns.push_back(
              {vars[v],
               {Expr::constant(static_cast<std::uint32_t>(
                   rng.below(domains[v])))}});
        }
      }
      if (action.assigns.empty()) {
        action.assigns.push_back(
            {proc.writes[0], {Expr::constant(0)}});
      }
      proc.actions.push_back(std::move(action));
    }
    p->add_process(std::move(proc));
  }

  const std::size_t nfaults = 1 + rng.below(2);
  for (std::size_t f = 0; f < nfaults; ++f) {
    lang::Action fault;
    fault.name = "f" + std::to_string(f);
    fault.guard = rng.flip() ? Expr::bool_const(true) : random_state_expr();
    fault.havoc.push_back(vars[rng.below(nvars)]);
    p->add_fault(std::move(fault));
  }

  p->set_invariant(random_state_expr());
  if (rng.flip()) p->add_bad_states(random_state_expr());
  if (rng.chance(1, 3)) {
    const std::size_t v = rng.below(nvars);
    p->add_bad_transitions(random_state_expr() &&
                           Expr::next(vars[v]) != Expr::var(vars[v]));
  }
  return p;
}

class RandomModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomModelTest, LazySuccessesAreSound) {
  lr::support::SplitMix64 rng(GetParam());
  int successes = 0;
  for (int round = 0; round < 40; ++round) {
    auto program = random_program(rng);
    const RepairResult result = lazy_repair(*program);
    if (!result.success) continue;
    ++successes;
    const VerifyReport report = verify_masking(*program, result);
    EXPECT_TRUE(report.ok) << "seed " << GetParam() << " round " << round;
    for (const auto& f : report.failures) {
      ADD_FAILURE() << "round " << round << ": " << f;
    }
    xmodel::ExplicitModel model(*program);
    const auto explicit_report = model.verify(result);
    EXPECT_TRUE(explicit_report.ok) << "seed " << GetParam() << " round "
                                    << round;
    for (const auto& f : explicit_report.failures) {
      ADD_FAILURE() << "round " << round << " (explicit): " << f;
    }
  }
  // The generator is tuned so a healthy fraction of models is repairable;
  // a sweep that never succeeds would test nothing.
  EXPECT_GT(successes, 0) << "seed " << GetParam();
}

TEST_P(RandomModelTest, CautiousSuccessesAreSound) {
  lr::support::SplitMix64 rng(GetParam() ^ 0xCAB005Eull);
  Options options;
  options.group_method = GroupMethod::kOneShot;
  int successes = 0;
  for (int round = 0; round < 25; ++round) {
    auto program = random_program(rng);
    const RepairResult result = cautious_repair(*program, options);
    if (!result.success) continue;
    ++successes;
    const VerifyReport report = verify_masking(*program, result);
    EXPECT_TRUE(report.ok) << "seed " << GetParam() << " round " << round;
    for (const auto& f : report.failures) {
      ADD_FAILURE() << "round " << round << ": " << f;
    }
  }
  EXPECT_GT(successes, 0) << "seed " << GetParam();
}

TEST_P(RandomModelTest, FailsafeSuccessesAreSound) {
  lr::support::SplitMix64 rng(GetParam() ^ 0xFA15AFEull);
  Options options;
  options.level = ToleranceLevel::kFailsafe;
  int successes = 0;
  for (int round = 0; round < 25; ++round) {
    auto program = random_program(rng);
    const RepairResult result = lazy_repair(*program, options);
    if (!result.success) continue;
    ++successes;
    const VerifyReport report =
        verify_masking(*program, result, ToleranceLevel::kFailsafe);
    EXPECT_TRUE(report.ok) << "seed " << GetParam() << " round " << round;
    for (const auto& f : report.failures) {
      ADD_FAILURE() << "round " << round << ": " << f;
    }
  }
  EXPECT_GT(successes, 0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelTest,
                         ::testing::Values(11ull, 23ull, 37ull, 53ull,
                                           71ull, 97ull));

}  // namespace
}  // namespace lr::repair
