// Golden-file tests for the repair_cli front end: run the real binary on
// the checked-in models and compare its stdout and its --metrics-json
// report against expectations under tests/golden/. Timing fields are
// normalized away (they are the only nondeterministic output); everything
// else — state counts, verification verdicts, metric keys and counter
// values — is pinned byte-for-byte.
//
// Regenerate the goldens after an intentional output change with
//   LR_UPDATE_GOLDEN=1 ./test_cli_golden

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

namespace {

std::string cli_path() { return LR_REPAIR_CLI; }

std::string lr_report_path() { return LR_LR_REPORT; }

std::string golden_dir() { return std::string(LR_SOURCE_DIR) + "/tests/golden"; }

std::string models_dir() { return std::string(LR_SOURCE_DIR) + "/models"; }

struct CliRun {
  int exit_code = -1;
  std::string output;  ///< stdout only (stderr carries timing/log noise)
};

CliRun run_command(const std::string& command) {
  CliRun run;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buffer;
  std::size_t n = 0;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    run.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

CliRun run_cli(const std::string& args) {
  return run_command(cli_path() + " " + args + " 2>/dev/null");
}

/// Replaces duration tokens ("40ms", "0.123ms", "2.01s") with "<time>",
/// then collapses runs of spaces: the summary table pads its value column
/// to the widest entry, so a timing that crosses a digit or unit boundary
/// ("98ms" -> "102ms" -> "1.02s") would otherwise shift padding around
/// deterministic cells. State counts never match the duration pattern:
/// they are bare integers or carry an e-exponent ("6.2e10"), no unit.
std::string normalize_stdout(const std::string& text) {
  static const std::regex duration(R"((\d+(\.\d+)?)(ms|s)\b)");
  static const std::regex spaces(R"(  +)");
  return std::regex_replace(std::regex_replace(text, duration, "<time>"),
                            spaces, " ");
}

/// Blanks the values of timing gauges in the pretty-printed metrics JSON
/// (one "key": value per line, so a line-anchored regex is exact).
std::string normalize_metrics(const std::string& text) {
  static const std::regex timing(R"~(("[^"]*(seconds|_time)[^"]*":\s*)[-0-9.eE+]+)~");
  return std::regex_replace(text, timing, "$1<time>");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Compares `actual` to the golden file, or rewrites the golden when
/// LR_UPDATE_GOLDEN is set.
void expect_matches_golden(const std::string& actual,
                           const std::string& golden_name) {
  const std::string path = golden_dir() + "/" + golden_name;
  if (std::getenv("LR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    return;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden " << path
      << " (regenerate with LR_UPDATE_GOLDEN=1)";
  EXPECT_EQ(actual, expected) << "output drifted from " << golden_name
                              << " (LR_UPDATE_GOLDEN=1 to accept)";
}

class CliGoldenTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CliGoldenTest, StdoutMatchesGolden) {
  const std::string model = GetParam();
  const CliRun run = run_cli(models_dir() + "/" + model + ".lr --stats");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  expect_matches_golden(normalize_stdout(run.output),
                        model + ".stdout.golden");
}

TEST_P(CliGoldenTest, MetricsReportMatchesGolden) {
  const std::string model = GetParam();
  const std::string metrics_path =
      ::testing::TempDir() + "cli_golden_" + model + ".json";
  const CliRun run = run_cli(models_dir() + "/" + model + ".lr" +
                             " --metrics-json=" + metrics_path);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  const std::string metrics = read_file(metrics_path);
  ASSERT_FALSE(metrics.empty()) << "no metrics report at " << metrics_path;
  expect_matches_golden(normalize_metrics(metrics),
                        model + ".metrics.golden");
  std::remove(metrics_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Models, CliGoldenTest,
                         ::testing::Values("quickstart", "tmr", "mutex_ring"));

TEST(CliGoldenTest_Batch, BatchStdoutMatchesGoldenAndIsJobIndependent) {
  const CliRun jobs1 = run_cli("--batch " + models_dir() + " --jobs 1");
  const CliRun jobs8 = run_cli("--batch " + models_dir() + " --jobs 8");
  EXPECT_EQ(jobs1.exit_code, 0);
  EXPECT_EQ(jobs8.exit_code, 0);
  // The batch report prints no timing on stdout, so the two runs must be
  // byte-identical before any normalization.
  EXPECT_EQ(jobs1.output, jobs8.output);
  // Normalize the model directory path out of the header line.
  std::string stable = jobs1.output;
  const std::string dir = models_dir();
  for (std::size_t at = stable.find(dir); at != std::string::npos;
       at = stable.find(dir)) {
    stable.replace(at, dir.size(), "<models>");
  }
  expect_matches_golden(stable, "batch.stdout.golden");
}

TEST(CliGoldenTest_Batch, BatchWithIntraShardingIsJobIndependent) {
  // Intra-problem sharding must not leak into any reported result: a
  // sweep running two tasks concurrently, each sharded over two intra
  // workers, prints byte-identical stdout to the fully sequential sweep —
  // and both match the same committed golden.
  const CliRun seq = run_cli("--batch " + models_dir() + " --jobs 1");
  const CliRun par =
      run_cli("--batch " + models_dir() + " --jobs 2 --par-intra=2");
  EXPECT_EQ(seq.exit_code, 0);
  EXPECT_EQ(par.exit_code, 0);
  EXPECT_EQ(seq.output, par.output)
      << "--par-intra changed a batch-reported result";
  std::string stable = par.output;
  const std::string dir = models_dir();
  for (std::size_t at = stable.find(dir); at != std::string::npos;
       at = stable.find(dir)) {
    stable.replace(at, dir.size(), "<models>");
  }
  expect_matches_golden(stable, "batch.stdout.golden");
}

TEST(CliGoldenTest_Batch, FailingTaskYieldsNonzeroExitAndFailureSummary) {
  // A sweep with one poisoned model must finish the healthy ones, print a
  // one-line failure summary and exit nonzero — not abort the sweep.
  const std::string dir = ::testing::TempDir() + "cli_golden_failures";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream good(dir + "/healthy.lr");
    good << read_file(models_dir() + "/quickstart.lr");
  }
  {
    std::ofstream bad(dir + "/poisoned.lr");
    bad << "program poisoned;\nvar x : 0..2;\nthis is not a model\n";
  }
  const CliRun run = run_cli("--batch " + dir + " --jobs 2");
  EXPECT_EQ(run.exit_code, 1)
      << "a captured per-task failure must fail the sweep:\n" << run.output;
  EXPECT_NE(run.output.find("batch summary: 1/2 ok"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("batch failures: poisoned (failed)"),
            std::string::npos)
      << run.output;
  std::string stable = run.output;
  for (std::size_t at = stable.find(dir); at != std::string::npos;
       at = stable.find(dir)) {
    stable.replace(at, dir.size(), "<dir>");
  }
  expect_matches_golden(normalize_stdout(stable),
                        "batch_failures.stdout.golden");
  std::filesystem::remove_all(dir);
}

TEST(CliGoldenTest_Batch, CheckpointManifestMatchesGolden) {
  // Locks the manifest JSON schema: field names, nesting, sorting and the
  // always-present keys. Timing and machine-local paths are normalized.
  const std::string dir = ::testing::TempDir() + "cli_golden_manifest";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream model(dir + "/quickstart.lr");
    model << read_file(models_dir() + "/quickstart.lr");
  }
  const CliRun run =
      run_cli("--batch " + dir + " --manifest=" + dir + "/manifest.json");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  std::string manifest = read_file(dir + "/manifest.json");
  ASSERT_FALSE(manifest.empty());
  for (std::size_t at = manifest.find(dir); at != std::string::npos;
       at = manifest.find(dir)) {
    manifest.replace(at, dir.size(), "<dir>");
  }
  expect_matches_golden(normalize_metrics(manifest), "manifest.golden");
  std::filesystem::remove_all(dir);
}

TEST(CliGoldenTest_Help, HelpListsEveryFlagAndExitsZero) {
  const CliRun run = run_cli("--help");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* flag : {"--batch", "--resume", "--manifest",
                           "--task-timeout", "--retries", "--export-dir"}) {
    EXPECT_NE(run.output.find(flag), std::string::npos)
        << flag << " missing from --help:\n" << run.output;
  }
  const CliRun unknown = run_cli("--no-such-flag");
  EXPECT_EQ(unknown.exit_code, 2) << "unknown flags must be rejected";
}

TEST(CliGoldenTest_Progress, HeartbeatsNeverTouchStdout) {
  // A torture interval makes every fixpoint round emit; all of it must go
  // to stderr, leaving batch stdout byte-identical to a silent run.
  const CliRun quiet = run_cli("--batch " + models_dir() + " --jobs 2");
  const CliRun noisy =
      run_cli("--batch " + models_dir() + " --jobs 2 --progress=0.001");
  EXPECT_EQ(quiet.exit_code, 0);
  EXPECT_EQ(noisy.exit_code, 0);
  EXPECT_EQ(quiet.output, noisy.output);
}

TEST(CliGoldenTest_Progress, SingleRunHeartbeatsLandOnStderr) {
  // A built-in chain big enough to outlive the minimum 1ms interval.
  // Without 2>/dev/null the heartbeat lines are visible — and tagged.
  const CliRun run = run_command(cli_path() +
                                 " --chain=12 --domain=4 --no-verify"
                                 " --progress=0.0001 2>&1 >/dev/null");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.output.find("[progress] "), std::string::npos)
      << "expected at least one heartbeat on stderr:\n"
      << run.output;
}

/// Writes a minimal metrics report for the comparator tests.
std::string write_report(const std::string& name, double wall_seconds,
                         double rounds) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << "{\n  \"counters\": {\n    \"bdd.gc_runs\": 10,\n"
      << "    \"repair.rounds\": " << rounds << "\n  },\n"
      << "  \"gauges\": {\n    \"bdd.peak_nodes\": 1000,\n"
      << "    \"bench.wall_seconds\": " << wall_seconds << "\n  }\n}\n";
  return path;
}

TEST(CliGoldenTest_LrReport, DiffTableMatchesGoldenAndPasses) {
  const std::string baseline = write_report("lr_report_base.json", 10.0, 4);
  const std::string current = write_report("lr_report_cur.json", 12.5, 6);
  const CliRun run = run_command(lr_report_path() + " " + baseline + " " +
                                 current + " 2>/dev/null");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  // The header echoes the temp paths; normalize them out.
  std::string stable = run.output;
  for (const std::string& path : {baseline, current}) {
    const std::size_t at = stable.find(path);
    ASSERT_NE(at, std::string::npos);
    stable.replace(at, path.size(), "<report>");
  }
  expect_matches_golden(stable, "lr_report.golden");
  std::remove(baseline.c_str());
  std::remove(current.c_str());
}

TEST(CliGoldenTest_LrReport, ZeroBaselineAndOneSidedKeysReportNa) {
  // A zero baseline must print "n/a" (never inf or a division), and a key
  // present on only one side must still be listed with "n/a" on the other
  // — not silently skipped.
  const std::string baseline = ::testing::TempDir() + "lr_report_na_base.json";
  const std::string current = ::testing::TempDir() + "lr_report_na_cur.json";
  {
    std::ofstream out(baseline);
    out << "{\n  \"counters\": {\n    \"a.zero\": 0,\n    \"only.base\": 5\n"
        << "  },\n  \"gauges\": {\n    \"bench.wall_seconds\": 10\n  }\n}\n";
  }
  {
    std::ofstream out(current);
    out << "{\n  \"counters\": {\n    \"a.zero\": 3,\n    \"only.cur\": 7\n"
        << "  },\n  \"gauges\": {\n    \"bench.wall_seconds\": 10\n  }\n}\n";
  }
  const CliRun run = run_command(lr_report_path() + " " + baseline + " " +
                                 current + " --all 2>/dev/null");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("a.zero"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("only.base"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("only.cur"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("n/a"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("inf"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("nan"), std::string::npos) << run.output;

  // A zero-baseline gate with a nonzero current is a regression (the
  // metric appeared), reported with an n/a ratio — not an exception.
  const CliRun gate = run_command(lr_report_path() + " " + baseline + " " +
                                  current + " --key=a.zero 2>/dev/null");
  EXPECT_EQ(gate.exit_code, 1) << gate.output;
  EXPECT_NE(gate.output.find("gate: a.zero ratio n/a"), std::string::npos)
      << gate.output;
  std::remove(baseline.c_str());
  std::remove(current.c_str());
}

TEST(CliGoldenTest_LrReport, RegressionBeyondMaxRatioFails) {
  const std::string baseline = write_report("lr_report_base2.json", 10.0, 4);
  const std::string doctored = write_report("lr_report_bad.json", 30.0, 4);
  const CliRun run = run_command(lr_report_path() + " " + baseline + " " +
                                 doctored + " --max-ratio=2.0 2>/dev/null");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("FAIL"), std::string::npos) << run.output;

  // The same pair passes with a permissive ratio: the gate, not the diff,
  // decides the exit code.
  const CliRun lenient = run_command(lr_report_path() + " " + baseline + " " +
                                     doctored + " --max-ratio=4 2>/dev/null");
  EXPECT_EQ(lenient.exit_code, 0) << lenient.output;

  // A missing gate metric is loud (usage/parse error), not silently green.
  const CliRun missing =
      run_command(lr_report_path() + " " + baseline + " " + doctored +
                  " --key=no.such.metric 2>/dev/null");
  EXPECT_EQ(missing.exit_code, 2);
  std::remove(baseline.c_str());
  std::remove(doctored.c_str());
}

// ---------------------------------------------------------------------------
// Flamegraph export (--flamegraph) and collapsed-profile diff (--flame)

TEST(CliGoldenTest_Flame, CollapsedProfileMatchesGoldenAndIsParIntraInvariant) {
  // The default weight (work_steps) is machine-independent, so the
  // collapsed file is a byte-exact golden — and the profiled engine's
  // thread-count invariance makes the --par-intra=4 run write the very
  // same bytes.
  const std::string seq_path =
      ::testing::TempDir() + "cli_golden_tmr_seq.collapsed";
  const std::string par_path =
      ::testing::TempDir() + "cli_golden_tmr_par.collapsed";
  const CliRun seq =
      run_cli(models_dir() + "/tmr.lr --flamegraph=" + seq_path);
  EXPECT_EQ(seq.exit_code, 0) << seq.output;
  const CliRun par = run_cli(models_dir() +
                             "/tmr.lr --par-intra=4 --flamegraph=" + par_path);
  EXPECT_EQ(par.exit_code, 0) << par.output;
  const std::string collapsed = read_file(seq_path);
  ASSERT_FALSE(collapsed.empty()) << "no collapsed profile at " << seq_path;
  expect_matches_golden(collapsed, "tmr.flame.golden");
  EXPECT_EQ(collapsed, read_file(par_path))
      << "--par-intra changed the collapsed profile";
  std::remove(seq_path.c_str());
  std::remove(par_path.c_str());
}

TEST(CliGoldenTest_Flame, BadWeightAndBatchModeAreRejected) {
  const std::string path = ::testing::TempDir() + "cli_golden_rejected.collapsed";
  const CliRun bad = run_cli(models_dir() + "/tmr.lr --flamegraph=" + path +
                             " --flamegraph-weight=calories");
  EXPECT_EQ(bad.exit_code, 2) << "unknown weight must be a usage error";
  const CliRun batch =
      run_cli("--batch " + models_dir() + " --flamegraph=" + path);
  EXPECT_EQ(batch.exit_code, 2) << "--flamegraph needs a single model";
}

TEST(CliGoldenTest_LrReport, FlameDiffMatchesGoldenAndGates) {
  const std::string baseline = ::testing::TempDir() + "flame_base.collapsed";
  const std::string current = ::testing::TempDir() + "flame_cur.collapsed";
  {
    std::ofstream out(baseline);
    out << "main;hot 100\nmain;cold 50\nmain;vanished 10\n";
  }
  {
    std::ofstream out(current);
    out << "main;hot 130\nmain;cold 45\nmain;appeared 5\n";
  }
  const CliRun run = run_command(lr_report_path() + " --flame " + baseline +
                                 " " + current + " 2>/dev/null");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  std::string stable = run.output;
  for (const std::string& path : {baseline, current}) {
    const std::size_t at = stable.find(path);
    ASSERT_NE(at, std::string::npos);
    stable.replace(at, path.size(), "<collapsed>");
  }
  expect_matches_golden(stable, "lr_report_flame.golden");

  // The same pair fails a tight total-weight gate; the diff tables are
  // advisory, the gate decides the exit code.
  const CliRun gated =
      run_command(lr_report_path() + " --flame " + baseline + " " + current +
                  " --max-ratio=1.05 2>/dev/null");
  EXPECT_EQ(gated.exit_code, 1) << gated.output;
  EXPECT_NE(gated.output.find("FAIL"), std::string::npos) << gated.output;
  std::remove(baseline.c_str());
  std::remove(current.c_str());
}

TEST(CliGoldenTest_LrReport, OneSidedKeysStayOutOfTheSummaryDenominator) {
  // Regression cover: one-sided keys are listed with "n/a" but excluded
  // from the "(N of M shared keys listed)" summary, whose counts compare
  // shared keys only. Golden-pinned so the exclusion cannot silently
  // regress.
  const std::string baseline =
      ::testing::TempDir() + "lr_report_onesided_base.json";
  const std::string current =
      ::testing::TempDir() + "lr_report_onesided_cur.json";
  {
    std::ofstream out(baseline);
    out << "{\n  \"counters\": {\n    \"moved.metric\": 10,\n"
        << "    \"only.base\": 5,\n    \"steady.one\": 7,\n"
        << "    \"steady.two\": 9\n  },\n"
        << "  \"gauges\": {\n    \"bench.wall_seconds\": 10\n  }\n}\n";
  }
  {
    std::ofstream out(current);
    out << "{\n  \"counters\": {\n    \"moved.metric\": 20,\n"
        << "    \"only.cur\": 3,\n    \"steady.one\": 7,\n"
        << "    \"steady.two\": 9\n  },\n"
        << "  \"gauges\": {\n    \"bench.wall_seconds\": 10\n  }\n}\n";
  }
  const CliRun run = run_command(lr_report_path() + " " + baseline + " " +
                                 current + " 2>/dev/null");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  std::string stable = run.output;
  for (const std::string& path : {baseline, current}) {
    const std::size_t at = stable.find(path);
    ASSERT_NE(at, std::string::npos);
    stable.replace(at, path.size(), "<report>");
  }
  expect_matches_golden(stable, "lr_report_onesided.golden");
  std::remove(baseline.c_str());
  std::remove(current.c_str());
}

// ---------------------------------------------------------------------------
// Repair decision journal (--journal / --explain)

TEST(CliGoldenTest_Journal, ExplainNarrativeMatchesGolden) {
  const CliRun run = run_cli(models_dir() + "/tmr.lr --explain");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  expect_matches_golden(normalize_stdout(run.output),
                        "tmr_explain.stdout.golden");
}

TEST(CliGoldenTest_Journal, JournalJsonlMatchesGolden) {
  // The journal carries no timing and no machine-local paths, so the
  // golden is byte-exact with no normalization at all.
  const std::string path =
      ::testing::TempDir() + "cli_golden_tmr.journal.jsonl";
  const CliRun run = run_cli(models_dir() + "/tmr.lr --journal=" + path);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  const std::string journal = read_file(path);
  ASSERT_FALSE(journal.empty()) << "no journal at " << path;
  expect_matches_golden(journal, "tmr.journal.golden");
  std::remove(path.c_str());
}

TEST(CliGoldenTest_Journal, BatchJournalsAreByteIdenticalAcrossJobs) {
  // With --batch, --journal=DIR writes one NAME.journal.jsonl per model;
  // the contents depend only on the task, never on scheduling, so the
  // files must be byte-identical across --jobs counts.
  const std::string dir1 = ::testing::TempDir() + "cli_golden_journal_j1";
  const std::string dir8 = ::testing::TempDir() + "cli_golden_journal_j8";
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir8);
  const CliRun jobs1 =
      run_cli("--batch " + models_dir() + " --jobs 1 --journal=" + dir1);
  const CliRun jobs8 =
      run_cli("--batch " + models_dir() + " --jobs 8 --journal=" + dir8);
  EXPECT_EQ(jobs1.exit_code, 0);
  EXPECT_EQ(jobs8.exit_code, 0);
  std::size_t compared = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir1)) {
    const std::string name = entry.path().filename().string();
    const std::string a = read_file(entry.path().string());
    const std::string b = read_file(dir8 + "/" + name);
    ASSERT_FALSE(a.empty()) << name;
    EXPECT_EQ(a, b) << name << " differs between --jobs 1 and --jobs 8";
    ++compared;
  }
  const auto count_files = [](const std::string& dir) {
    std::size_t n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      (void)entry;
      ++n;
    }
    return n;
  };
  EXPECT_GT(compared, 2u);  // quickstart, tmr, mutex_ring, ...
  EXPECT_EQ(compared, count_files(dir8));
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir8);
}

TEST(CliGoldenTest_Journal, ExplainWithBatchIsRejected) {
  const CliRun run = run_cli("--batch " + models_dir() + " --explain");
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

TEST(CliGoldenTest_Journal, JournalDiffShowsCautiousPruningEarlier) {
  // The paper's contrast as a CLI round trip: repair mutex_ring with both
  // algorithms, diff the journals with lr_report --journal, and pin the
  // table showing cautious pruning strictly more transitions before the
  // Repair phase (lazy prunes none there).
  const std::string lazy_path = ::testing::TempDir() + "lr_mutex_lazy.jsonl";
  const std::string cautious_path =
      ::testing::TempDir() + "lr_mutex_cautious.jsonl";
  const CliRun lazy =
      run_cli(models_dir() + "/mutex_ring.lr --journal=" + lazy_path);
  EXPECT_EQ(lazy.exit_code, 0) << lazy.output;
  const CliRun cautious = run_cli(models_dir() +
                                  "/mutex_ring.lr --cautious --journal=" +
                                  cautious_path);
  // Cautious fails on mutex_ring (its closure discipline empties the
  // invariant) — nonzero exit, but the journal is still written.
  EXPECT_NE(cautious.exit_code, 0);
  const CliRun diff =
      run_command(lr_report_path() + " --journal " + lazy_path + " " +
                  cautious_path + " 2>/dev/null");
  EXPECT_EQ(diff.exit_code, 0) << diff.output;
  std::string stable = diff.output;
  for (const std::string& path : {lazy_path, cautious_path}) {
    for (std::size_t at = stable.find(path); at != std::string::npos;
         at = stable.find(path)) {
      stable.replace(at, path.size(), "<journal>");
    }
  }
  expect_matches_golden(stable, "lr_report_journal_diff.golden");
  std::remove(lazy_path.c_str());
  std::remove(cautious_path.c_str());
}

}  // namespace
