// Integration sweep: Theorems 1 and 2 of the paper, checked over a grid of
// case-study instances and algorithm configurations, by the symbolic
// verifier and (when small enough) the explicit-state checker.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "casestudies/token_ring.hpp"
#include "explicit_model/explicit_model.hpp"
#include "repair/cautious.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"

namespace lr::repair {
namespace {

struct Scenario {
  std::string name;
  std::function<std::unique_ptr<prog::DistributedProgram>()> build;
  bool run_cautious = false;
};

std::ostream& operator<<(std::ostream& os, const Scenario& s) {
  return os << s.name;
}

class TheoremsTest : public ::testing::TestWithParam<Scenario> {};

void check(prog::DistributedProgram& program, const RepairResult& result,
           const std::string& label) {
  ASSERT_TRUE(result.success) << label << ": " << result.failure_reason;
  const VerifyReport report = verify_masking(program, result);
  EXPECT_TRUE(report.ok) << label;
  for (const auto& f : report.failures) ADD_FAILURE() << label << ": " << f;
  // Explicit cross-check on small instances.
  if (program.space().state_space_size() <= 40000) {
    xmodel::ExplicitModel model(program);
    const auto explicit_report = model.verify(result);
    EXPECT_TRUE(explicit_report.ok) << label;
    for (const auto& f : explicit_report.failures) {
      ADD_FAILURE() << label << " (explicit): " << f;
    }
  }
}

TEST_P(TheoremsTest, LazyGroupLoopIsMaskingAndRealizable) {
  auto program = GetParam().build();
  check(*program, lazy_repair(*program), "lazy/group-loop");
}

TEST_P(TheoremsTest, LazyOneShotIsMaskingAndRealizable) {
  auto program = GetParam().build();
  Options options;
  options.group_method = GroupMethod::kOneShot;
  check(*program, lazy_repair(*program, options), "lazy/one-shot");
}

TEST_P(TheoremsTest, LazyWithoutHeuristicIsMaskingAndRealizable) {
  auto program = GetParam().build();
  Options options;
  options.restrict_to_reachable = false;
  options.group_method = GroupMethod::kOneShot;
  check(*program, lazy_repair(*program, options), "lazy/full-space");
}

TEST_P(TheoremsTest, CautiousIsMaskingAndRealizable) {
  if (!GetParam().run_cautious) GTEST_SKIP() << "cautious not expected here";
  auto program = GetParam().build();
  Options options;
  options.group_method = GroupMethod::kOneShot;  // keep the sweep fast
  check(*program, cautious_repair(*program, options), "cautious");
}

INSTANTIATE_TEST_SUITE_P(
    CaseStudies, TheoremsTest,
    ::testing::Values(
        Scenario{"ba3",
                 [] { return cs::make_byzantine({.non_generals = 3}); },
                 true},
        Scenario{"ba4",
                 [] { return cs::make_byzantine({.non_generals = 4}); },
                 true},
        Scenario{"ba5",
                 [] { return cs::make_byzantine({.non_generals = 5}); },
                 false},
        Scenario{"bafs2",
                 [] {
                   return cs::make_byzantine(
                       {.non_generals = 2, .fail_stop = true});
                 },
                 true},
        Scenario{"bafs3",
                 [] {
                   return cs::make_byzantine(
                       {.non_generals = 3, .fail_stop = true});
                 },
                 false},
        Scenario{"chain3x2",
                 [] { return cs::make_chain({.length = 3, .domain = 2}); },
                 false},
        Scenario{"chain4x3",
                 [] { return cs::make_chain({.length = 4, .domain = 3}); },
                 false},
        Scenario{"chain6x4",
                 [] { return cs::make_chain({.length = 6, .domain = 4}); },
                 false},
        Scenario{"ring3x3",
                 [] {
                   return cs::make_token_ring({.processes = 3, .domain = 3});
                 },
                 false},
        Scenario{"ring4x4",
                 [] {
                   return cs::make_token_ring({.processes = 4, .domain = 4});
                 },
                 false}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace lr::repair
